// Shared test helpers.
#pragma once

#include <stdexcept>
#include <unordered_map>

#include "core/algorithm.h"

namespace mutdbp::testing {

/// A scripted "algorithm" that places each item either in the bin of a
/// designated earlier item or in a new bin. Lets tests construct exact
/// packings for the analysis machinery without depending on a particular
/// online rule.
class ScriptedPlacement final : public PackingAlgorithm {
 public:
  /// join[i] = j means item i joins the bin that item j opened/lives in;
  /// items absent from the map open a new bin.
  explicit ScriptedPlacement(std::unordered_map<ItemId, ItemId> join)
      : join_(std::move(join)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "Scripted"; }

  [[nodiscard]] Placement place(const ArrivalView& item,
                                std::span<const BinSnapshot>) override {
    const auto it = join_.find(item.id);
    if (it == join_.end()) return std::nullopt;
    const auto target = bin_of_.find(it->second);
    if (target == bin_of_.end()) {
      throw std::logic_error("ScriptedPlacement: anchor item not yet placed");
    }
    bin_of_[item.id] = target->second;
    return target->second;
  }

  void on_bin_opened(BinIndex bin, const ArrivalView& first_item) override {
    bin_of_[first_item.id] = bin;
  }

  void reset() override { bin_of_.clear(); }

 private:
  std::unordered_map<ItemId, ItemId> join_;
  std::unordered_map<ItemId, BinIndex> bin_of_;
};

}  // namespace mutdbp::testing
