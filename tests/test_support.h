// Shared test helpers.
#pragma once

#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/algorithm.h"

namespace mutdbp::testing {

/// A per-test scratch directory, unique across processes AND across tests
/// within one binary (name = sanitized gtest test name + pid), removed on
/// destruction. Tests that write files must use this instead of bare
/// temp_directory_path() filenames so `ctest -j N` — which runs the same
/// binary concurrently under different gtest filters — never races on
/// shared paths.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string name = "mutdbp-test";
    if (const auto* info = ::testing::UnitTest::GetInstance()->current_test_info()) {
      name = std::string(info->test_suite_name()) + "-" + info->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
      }
    }
    path_ = std::filesystem::temp_directory_path() /
            (name + "-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

/// A scripted "algorithm" that places each item either in the bin of a
/// designated earlier item or in a new bin. Lets tests construct exact
/// packings for the analysis machinery without depending on a particular
/// online rule.
class ScriptedPlacement final : public PackingAlgorithm {
 public:
  /// join[i] = j means item i joins the bin that item j opened/lives in;
  /// items absent from the map open a new bin.
  explicit ScriptedPlacement(std::unordered_map<ItemId, ItemId> join)
      : join_(std::move(join)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "Scripted"; }

  [[nodiscard]] Placement place(const ArrivalView& item,
                                std::span<const BinSnapshot>) override {
    const auto it = join_.find(item.id);
    if (it == join_.end()) return std::nullopt;
    const auto target = bin_of_.find(it->second);
    if (target == bin_of_.end()) {
      throw std::logic_error("ScriptedPlacement: anchor item not yet placed");
    }
    bin_of_[item.id] = target->second;
    return target->second;
  }

  void on_bin_opened(BinIndex bin, const ArrivalView& first_item) override {
    bin_of_[first_item.id] = bin;
  }

  void reset() override { bin_of_.clear(); }

 private:
  std::unordered_map<ItemId, ItemId> join_;
  std::unordered_map<ItemId, BinIndex> bin_of_;
};

}  // namespace mutdbp::testing
