#include "clairvoyant/clairvoyant.h"

#include <gtest/gtest.h>

#include "algorithms/any_fit.h"
#include "core/simulation.h"
#include "opt/opt_integral.h"
#include "workload/generators.h"

namespace mutdbp::clairvoyant {
namespace {

TEST(Clairvoyant, FirstFitControlMatchesOnlineFirstFit) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 200;
  spec.seed = 31;
  spec.duration_max = 6.0;
  const ItemList items = workload::generate(spec);

  ClairvoyantFirstFit control;
  const PackingResult clairvoyant = clairvoyant_simulate(items, control);
  FirstFit online;
  const PackingResult online_result = simulate(items, online);
  EXPECT_DOUBLE_EQ(clairvoyant.total_usage_time(), online_result.total_usage_time());
  EXPECT_EQ(clairvoyant.bins_opened(), online_result.bins_opened());
}

TEST(Clairvoyant, AlignedFitPrefersMatchingDeparture) {
  // Two open bins: bin 0 closes at 10, bin 1 at 3. A new item departing at
  // 3.2 extends bin 0 by nothing (already open past 3.2) — AlignedFit picks
  // the bin with zero extension.
  AlignedFit aligned;
  const ItemList items({
      make_item(1, 0.5, 0.0, 10.0),  // bin 0
      make_item(2, 0.6, 0.5, 3.0),   // bin 1 (0.5+0.6 > 1)
      make_item(3, 0.3, 1.0, 3.2),   // fits both; extension: b0: 0, b1: 0.2
  });
  const PackingResult result = clairvoyant_simulate(items, aligned);
  EXPECT_EQ(result.bin_of(3), 0u);
}

TEST(Clairvoyant, AlignedFitMinimizesExtension) {
  // Both bins need extending; pick the smaller extension.
  AlignedFit aligned;
  const ItemList items({
      make_item(1, 0.5, 0.0, 2.0),  // bin 0 closes at 2
      make_item(2, 0.6, 0.5, 4.0),  // bin 1 closes at 4
      make_item(3, 0.3, 1.0, 5.0),  // ext: b0: 3, b1: 1 -> bin 1
  });
  const PackingResult result = clairvoyant_simulate(items, aligned);
  EXPECT_EQ(result.bin_of(3), 1u);
}

TEST(Clairvoyant, AlignedFitTieBreaksOnLatestClose) {
  AlignedFit aligned;
  const ItemList items({
      make_item(1, 0.5, 0.0, 6.0),  // bin 0 closes at 6
      make_item(2, 0.6, 0.5, 8.0),  // bin 1 closes at 8
      make_item(3, 0.3, 1.0, 5.0),  // ext 0 for both -> latest close: bin 1
  });
  const PackingResult result = clairvoyant_simulate(items, aligned);
  EXPECT_EQ(result.bin_of(3), 1u);
}

TEST(Clairvoyant, AlignedFitNeverWorseOnItsHomeTurf) {
  // On bimodal duration workloads (short vs long jobs), departure alignment
  // should beat online First Fit on average.
  double aligned_total = 0.0;
  double online_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 300;
    spec.seed = seed;
    spec.duration_dist = workload::DurationDistribution::kBimodal;
    spec.duration_max = 16.0;
    const ItemList items = workload::generate(spec);
    AlignedFit aligned;
    aligned_total += clairvoyant_simulate(items, aligned).total_usage_time();
    FirstFit ff;
    online_total += simulate(items, ff).total_usage_time();
  }
  EXPECT_LT(aligned_total, online_total);
}

TEST(Clairvoyant, StillBoundedBelowByOpt) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 40;
  spec.seed = 4;
  spec.duration_max = 8.0;
  const ItemList items = workload::generate(spec);
  AlignedFit aligned;
  const PackingResult result = clairvoyant_simulate(items, aligned);
  const opt::OptIntegral integral = opt::opt_total(items);
  // Clairvoyance does not allow repacking: OPT (which repacks) still wins.
  EXPECT_GE(result.total_usage_time(), integral.lower - 1e-9);
}

}  // namespace
}  // namespace mutdbp::clairvoyant
