#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/baselines.h"
#include "algorithms/hybrid_first_fit.h"
#include "algorithms/next_fit.h"
#include "algorithms/random_fit.h"
#include "algorithms/registry.h"
#include "core/simulation.h"

namespace mutdbp {
namespace {

std::vector<BinSnapshot> snapshots(std::initializer_list<double> levels) {
  std::vector<BinSnapshot> snaps;
  BinIndex idx = 0;
  for (const double level : levels) {
    snaps.push_back(BinSnapshot{idx++, level, 1.0, 0.0, 1});
  }
  return snaps;
}

const ArrivalView kItem25{100, 0.25, 0.0};
const ArrivalView kItem40{101, 0.40, 0.0};
const ArrivalView kItem90{102, 0.90, 0.0};

TEST(AnyFit, FirstFitPicksLowestIndexFitting) {
  FirstFit ff;
  const auto bins = snapshots({0.5, 0.7, 0.2});
  EXPECT_EQ(ff.place(kItem25, bins), Placement{0});
  // 0.40 fits bins 0 (0.9) and 2 (0.6) but not bin 1 (1.1).
  EXPECT_EQ(ff.place(kItem40, bins), Placement{0});
}

TEST(AnyFit, BestFitPicksFullestFitting) {
  BestFit bf;
  const auto bins = snapshots({0.5, 0.7, 0.2});
  EXPECT_EQ(bf.place(kItem25, bins), Placement{1});
  EXPECT_EQ(bf.place(kItem40, bins), Placement{0});  // bin 1 does not fit
}

TEST(AnyFit, WorstFitPicksEmptiestFitting) {
  WorstFit wf;
  const auto bins = snapshots({0.5, 0.7, 0.2});
  EXPECT_EQ(wf.place(kItem25, bins), Placement{2});
  EXPECT_EQ(wf.place(kItem40, bins), Placement{2});
}

TEST(AnyFit, LastFitPicksNewestFitting) {
  LastFit lf;
  const auto bins = snapshots({0.5, 0.7, 0.2});
  EXPECT_EQ(lf.place(kItem25, bins), Placement{2});
}

TEST(AnyFit, TiesGoToLowestIndex) {
  BestFit bf;
  WorstFit wf;
  const auto bins = snapshots({0.4, 0.4, 0.4});
  EXPECT_EQ(bf.place(kItem25, bins), Placement{0});
  EXPECT_EQ(wf.place(kItem25, bins), Placement{0});
}

TEST(AnyFit, OpensNewBinOnlyWhenNothingFits) {
  FirstFit ff;
  BestFit bf;
  const auto bins = snapshots({0.5, 0.7, 0.2});
  EXPECT_EQ(ff.place(kItem90, bins), std::nullopt);
  EXPECT_EQ(bf.place(kItem90, bins), std::nullopt);
  EXPECT_EQ(ff.place(kItem90, {}), std::nullopt);
}

TEST(AnyFit, ExactFitIsAFit) {
  FirstFit ff;
  const auto bins = snapshots({0.75});
  EXPECT_EQ(ff.place(kItem25, bins), Placement{0});
}

TEST(AnyFit, ZeroEpsilonRejectsHairlineOverflow) {
  FirstFit strict(0.0);
  auto bins = snapshots({0.75 + 1e-12});
  EXPECT_EQ(strict.place(kItem25, bins), std::nullopt);
  FirstFit tolerant;  // default epsilon 1e-9
  EXPECT_EQ(tolerant.place(kItem25, bins), Placement{0});
}

TEST(RandomFit, PicksOnlyFittingBins) {
  RandomFit rf(42);
  const auto bins = snapshots({0.5, 0.7, 0.2});
  for (int i = 0; i < 50; ++i) {
    const Placement p = rf.place(kItem40, bins);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(*p == 0 || *p == 2);  // bin 1 does not fit
  }
}

TEST(RandomFit, DeterministicUnderReset) {
  RandomFit rf(42);
  const auto bins = snapshots({0.1, 0.1, 0.1, 0.1});
  std::vector<Placement> first_run;
  for (int i = 0; i < 20; ++i) first_run.push_back(rf.place(kItem25, bins));
  rf.reset();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rf.place(kItem25, bins), first_run[i]);
}

TEST(NextFit, OnlyUsesAvailableBin) {
  NextFit nf;
  // a 0.5, b 0.4 share bin0; c 0.5 forces a new bin; d 0.1 would fit bin0
  // under First Fit but Next Fit may only use the available bin 1.
  const ItemList items({make_item(1, 0.5, 0.0, 10.0), make_item(2, 0.4, 0.0, 10.0),
                        make_item(3, 0.5, 0.0, 10.0), make_item(4, 0.1, 0.0, 10.0)});
  const PackingResult result = simulate(items, nf);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(2), 0u);
  EXPECT_EQ(result.bin_of(3), 1u);
  EXPECT_EQ(result.bin_of(4), 1u);

  FirstFit ff;
  const PackingResult ff_result = simulate(items, ff);
  EXPECT_EQ(ff_result.bin_of(4), 0u);  // the behavioural difference
}

TEST(NextFit, UnavailableBinsNeverBecomeAvailable) {
  NextFit nf;
  // Bin 0 (a alone, level 0.9) becomes unavailable when b arrives; after a
  // shrinks the bin... it cannot: items never shrink. Instead check that
  // when c (0.05) arrives, it goes to the available bin 1 even though bin 0
  // now has room (a departed is impossible while open) — craft via sizes.
  const ItemList items({make_item(1, 0.9, 0.0, 10.0),   // bin0
                        make_item(2, 0.5, 1.0, 10.0),   // forces bin1
                        make_item(3, 0.05, 2.0, 10.0)});  // fits bin0 too
  const PackingResult result = simulate(items, nf);
  EXPECT_EQ(result.bin_of(3), 1u);
}

TEST(NextFit, AvailableBinClosureForcesFreshBin) {
  NextFit nf;
  const ItemList items({make_item(1, 0.5, 0.0, 1.0),     // bin0, departs at 1
                        make_item(2, 0.1, 2.0, 3.0)});   // bin0 closed: new bin
  const PackingResult result = simulate(items, nf);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bin_of(2), 1u);
}

TEST(NextFit, SectionEightPairBehaviour) {
  // §VIII: pairs (1/2, 1/n) at time 0 -> one bin per pair.
  NextFit nf;
  const std::size_t n = 4;
  std::vector<Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(make_item(2 * i, 0.5, 0.0, 1.0));
    items.push_back(make_item(2 * i + 1, 0.25, 0.0, 5.0));
  }
  const PackingResult result = simulate(ItemList(std::move(items)), nf);
  EXPECT_EQ(result.bins_opened(), n);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), static_cast<double>(n) * 5.0);
}

TEST(HybridFirstFit, SeparatesClasses) {
  HybridFirstFit hff({0.5, 1.0});  // classes (0,0.5], (0.5,1]
  // A small item (0.2) and a large item (0.7) both fit in one bin, but HFF
  // keeps them in per-class bins.
  const ItemList items({make_item(1, 0.2, 0.0, 10.0), make_item(2, 0.7, 0.0, 10.0),
                        make_item(3, 0.2, 0.0, 10.0)});
  const PackingResult result = simulate(items, hff);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(3), 0u);  // first fit within the small class
  EXPECT_EQ(result.bin_of(2), 1u);
}

TEST(HybridFirstFit, FirstFitWithinClass) {
  HybridFirstFit hff({0.5, 1.0});
  const ItemList items({make_item(1, 0.4, 0.0, 10.0), make_item(2, 0.4, 0.0, 10.0),
                        make_item(3, 0.4, 0.0, 10.0),  // 3rd small: bins 0 full
                        make_item(4, 0.2, 0.0, 10.0)});
  const PackingResult result = simulate(items, hff);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(2), 0u);
  EXPECT_EQ(result.bin_of(3), 1u);
  EXPECT_EQ(result.bin_of(4), 0u);  // back to the earliest small bin
}

TEST(HybridFirstFit, ClassifyBoundaries) {
  const HybridFirstFit hff({1.0 / 3.0, 0.5, 1.0});
  EXPECT_EQ(hff.classify(0.2), 0u);
  EXPECT_EQ(hff.classify(1.0 / 3.0), 0u);  // boundary belongs to lower class
  EXPECT_EQ(hff.classify(0.4), 1u);
  EXPECT_EQ(hff.classify(0.5), 1u);
  EXPECT_EQ(hff.classify(0.75), 2u);
  EXPECT_EQ(hff.classify(1.0), 2u);
}

TEST(HybridFirstFit, RejectsBadBoundaries) {
  EXPECT_THROW(HybridFirstFit(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(HybridFirstFit({0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(HybridFirstFit({0.5, 0.3}), std::invalid_argument);
  EXPECT_THROW(HybridFirstFit({0.0, 1.0}), std::invalid_argument);
}

TEST(HybridFirstFit, ReusesIndexAfterClassBinCloses) {
  HybridFirstFit hff({0.5, 1.0});
  const ItemList items({make_item(1, 0.7, 0.0, 1.0),    // large bin, closes at 1
                        make_item(2, 0.2, 2.0, 3.0)});  // small class: new bin
  const PackingResult result = simulate(items, hff);
  EXPECT_EQ(result.bins_opened(), 2u);
}

TEST(NewBinPerItem, OneBinEach) {
  NewBinPerItem nb;
  const ItemList items({make_item(1, 0.1, 0.0, 1.0), make_item(2, 0.1, 0.0, 2.0),
                        make_item(3, 0.1, 0.0, 3.0)});
  const PackingResult result = simulate(items, nb);
  EXPECT_EQ(result.bins_opened(), 3u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 6.0);
}

TEST(Registry, CreatesEveryListedAlgorithm) {
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    ASSERT_NE(algo, nullptr) << name;
    // HybridFirstFit embeds its boundaries in the name; check the prefix.
    EXPECT_EQ(std::string(algo->name()).substr(0, name.size()), name);
  }
}

TEST(Registry, RejectsUnknownName) {
  EXPECT_THROW((void)make_algorithm("MagicFit"), std::invalid_argument);
}

}  // namespace
}  // namespace mutdbp
