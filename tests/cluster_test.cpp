#include "workload/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "algorithms/any_fit.h"
#include "core/simulation.h"

namespace mutdbp::workload {
namespace {

TEST(Cluster, GeneratesValidVms) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 1000;
  const ItemList vms = generate_cluster(spec);
  ASSERT_EQ(vms.size(), 1000u);
  const std::set<double> sizes(spec.vm_sizes.begin(), spec.vm_sizes.end());
  Time prev = 0.0;
  for (const auto& vm : vms) {
    EXPECT_TRUE(sizes.contains(vm.size));
    EXPECT_GE(vm.duration(), spec.min_lifetime - 1e-9);
    EXPECT_LE(vm.duration(), spec.max_lifetime + 1e-9);
    EXPECT_GE(vm.arrival(), prev);
    prev = vm.arrival();
  }
}

TEST(Cluster, HeavyTailProducesLargeMu) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 3000;
  const ItemList vms = generate_cluster(spec);
  // With shape 1.1 over [0.25, 168] and 3000 draws, mu should be large.
  EXPECT_GT(vms.mu(), 50.0);
  // But the majority of VMs are short (the defining trace property).
  std::size_t shorter_than_2h = 0;
  for (const auto& vm : vms) {
    if (vm.duration() < 2.0) ++shorter_than_2h;
  }
  EXPECT_GT(shorter_than_2h, vms.size() / 2);
}

TEST(Cluster, BurstsCreateSimultaneousArrivals) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 2000;
  spec.burst_probability = 0.05;
  spec.burst_size = 20;
  const ItemList vms = generate_cluster(spec);
  std::size_t max_batch = 1;
  std::size_t current = 1;
  for (std::size_t i = 1; i < vms.size(); ++i) {
    if (vms[i].arrival() == vms[i - 1].arrival()) {
      ++current;
      max_batch = std::max(max_batch, current);
    } else {
      current = 1;
    }
  }
  EXPECT_GE(max_batch, spec.burst_size);
}

TEST(Cluster, SmallVmsDominate) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 4000;
  const ItemList vms = generate_cluster(spec);
  std::size_t eighth = 0;
  std::size_t full = 0;
  for (const auto& vm : vms) {
    if (vm.size == 0.125) ++eighth;
    if (vm.size == 1.0) ++full;
  }
  EXPECT_GT(eighth, 3 * full);
}

TEST(Cluster, DeterministicPerSeed) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 200;
  const ItemList a = generate_cluster(spec);
  const ItemList b = generate_cluster(spec);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Cluster, PacksWithoutViolations) {
  ClusterWorkloadSpec spec;
  spec.num_vms = 1500;
  const ItemList vms = generate_cluster(spec);
  FirstFit ff;
  const PackingResult result = simulate(vms, ff);  // throws on violation
  EXPECT_GT(result.bins_opened(), 0u);
  EXPECT_GE(result.total_usage_time(), vms.span() - 1e-6);
}

TEST(Cluster, Validates) {
  ClusterWorkloadSpec spec;
  spec.vm_sizes = {0.5};
  spec.vm_size_weights = {1.0, 2.0};
  EXPECT_THROW((void)generate_cluster(spec), std::invalid_argument);
  spec = {};
  spec.min_lifetime = 10.0;
  spec.max_lifetime = 1.0;
  EXPECT_THROW((void)generate_cluster(spec), std::invalid_argument);
  spec = {};
  spec.vm_sizes = {1.5};
  spec.vm_size_weights = {1.0};
  EXPECT_THROW((void)generate_cluster(spec), std::invalid_argument);
  spec = {};
  spec.vm_size_weights = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW((void)generate_cluster(spec), std::invalid_argument);
}

}  // namespace
}  // namespace mutdbp::workload
