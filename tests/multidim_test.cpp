#include <gtest/gtest.h>

#include <stdexcept>

#include "multidim/md_algorithms.h"
#include "multidim/md_core.h"
#include "multidim/md_workload.h"

namespace mutdbp::md {
namespace {

MDItemList two_dim(std::vector<MDItem> items) {
  return MDItemList(std::move(items), {1.0, 1.0});
}

TEST(MDItemListTest, ValidatesDimensionsAndRanges) {
  EXPECT_THROW(MDItemList({make_md_item(1, {0.5}, 0, 1)}, {}), std::invalid_argument);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5}, 0, 1)}), std::invalid_argument);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5, 1.5}, 0, 1)}), std::invalid_argument);
  EXPECT_THROW(two_dim({make_md_item(1, {0.0, 0.0}, 0, 1)}), std::invalid_argument);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5, 0.5}, 1, 1)}), std::invalid_argument);
  EXPECT_NO_THROW(two_dim({make_md_item(1, {0.0, 0.5}, 0, 1)}));  // one zero dim ok
}

TEST(MDItemListTest, MuAndSpan) {
  const MDItemList items = two_dim({make_md_item(1, {0.5, 0.1}, 0.0, 1.0),
                                    make_md_item(2, {0.1, 0.5}, 0.5, 4.5),
                                    make_md_item(3, {0.2, 0.2}, 6.0, 7.0)});
  EXPECT_DOUBLE_EQ(items.mu(), 4.0);
  EXPECT_DOUBLE_EQ(items.span(), 5.5);  // [0,4.5) + [6,7)
}

TEST(MDItemListTest, LoadCeilingTakesWorstDimension) {
  // Dim 0 load 1.2 on [0,1): needs 2 bins; dim 1 load 0.4: needs 1.
  const MDItemList items = two_dim({make_md_item(1, {0.6, 0.2}, 0.0, 1.0),
                                    make_md_item(2, {0.6, 0.2}, 0.0, 1.0)});
  EXPECT_DOUBLE_EQ(items.load_ceiling_bound(), 2.0);
}

TEST(MDFits, PerDimensionCheck) {
  MDBinSnapshot bin;
  bin.level = {0.5, 0.9};
  bin.capacity = {1.0, 1.0};
  EXPECT_TRUE(md_fits(bin, std::vector<double>{0.5, 0.1}));
  EXPECT_FALSE(md_fits(bin, std::vector<double>{0.5, 0.2}));
  EXPECT_FALSE(md_fits(bin, std::vector<double>{0.6, 0.05}));
}

TEST(MDSimulate, FirstFitTwoDimensions) {
  // Item 2 fits dim 0 with item 1 but collides in dim 1.
  const MDItemList items = two_dim({
      make_md_item(1, {0.3, 0.8}, 0.0, 4.0),
      make_md_item(2, {0.3, 0.5}, 1.0, 3.0),  // 0.8+0.5 > 1 in dim 1 -> bin 1
      make_md_item(3, {0.6, 0.1}, 2.0, 3.0),  // fits bin 0 (0.9, 0.9)
  });
  MDFirstFit ff;
  const MDPackingResult result = md_simulate(items, ff);
  ASSERT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bins[0].items, (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(result.bins[1].items, (std::vector<ItemId>{2}));
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 4.0 + 2.0);
}

TEST(MDSimulate, ReducesToScalarInOneDimension) {
  // The 1-D MD simulator must agree with the scalar semantics: the
  // departure-before-arrival convention included.
  const MDItemList items({make_md_item(1, {1.0}, 0.0, 1.0),
                          make_md_item(2, {1.0}, 1.0, 2.0)},
                         {1.0});
  MDFirstFit ff;
  const MDPackingResult result = md_simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 2.0);
}

TEST(MDSimulate, DotProductPrefersComplementaryBin) {
  // bin 0 is dim-1 heavy (residual (0.8, 0.1)); bin 1 is dim-0 heavy
  // (residual (0.1, 0.8)). A dim-1-leaning small item fits both: First Fit
  // takes bin 0, dot-product takes bin 1 where the residual matches.
  const MDItemList items = two_dim({
      make_md_item(1, {0.2, 0.9}, 0.0, 10.0),   // bin 0
      make_md_item(2, {0.9, 0.2}, 0.0, 10.0),   // bin 1 (collides in dim 1)
      make_md_item(3, {0.05, 0.08}, 1.0, 2.0),  // fits both
  });
  MDFirstFit ff;
  const MDPackingResult ff_result = md_simulate(items, ff);
  EXPECT_EQ(ff_result.bins[0].items.size(), 2u);  // FF: item 3 -> bin 0

  MDDotProduct dp;
  const MDPackingResult dp_result = md_simulate(items, dp);
  // scores: bin0 = .05*.8 + .08*.1 = .048; bin1 = .05*.1 + .08*.8 = .069.
  EXPECT_EQ(dp_result.bins[1].items.size(), 2u);  // DP: item 3 -> bin 1
}

TEST(MDSimulate, NextFitKeepsOneAvailableBin) {
  const MDItemList items = two_dim({
      make_md_item(1, {0.6, 0.6}, 0.0, 10.0),
      make_md_item(2, {0.6, 0.1}, 0.0, 10.0),   // not fit bin0 -> bin1
      make_md_item(3, {0.1, 0.1}, 0.0, 10.0),   // fits bin0 too, but NF -> bin1
  });
  MDNextFit nf;
  const MDPackingResult result = md_simulate(items, nf);
  ASSERT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bins[1].items, (std::vector<ItemId>{2, 3}));
}

TEST(MDSimulate, BestFitPicksFullest) {
  const MDItemList items = two_dim({
      make_md_item(1, {0.7, 0.7}, 0.0, 10.0),   // bin 0 (fill 0.7)
      make_md_item(2, {0.4, 0.4}, 0.0, 10.0),   // bin 1 (does not fit bin 0)
      make_md_item(3, {0.2, 0.2}, 1.0, 2.0),    // fits both; BF -> bin 0
  });
  MDBestFit bf;
  const MDPackingResult result = md_simulate(items, bf);
  EXPECT_EQ(result.bins[0].items, (std::vector<ItemId>{1, 3}));
}

TEST(MDGenerate, RespectsSpecAndDeterminism) {
  MDWorkloadSpec spec;
  spec.num_items = 200;
  spec.dimensions = 3;
  spec.correlation = 0.5;
  const MDItemList a = generate_md(spec);
  const MDItemList b = generate_md(spec);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a.dimensions(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].demand, b[i].demand);
    for (const double dem : a[i].demand) {
      EXPECT_GE(dem, spec.demand_min - 1e-12);
      EXPECT_LE(dem, spec.demand_max + 1e-12);
    }
  }
}

TEST(MDGenerate, FullCorrelationMakesDimensionsEqual) {
  MDWorkloadSpec spec;
  spec.num_items = 50;
  spec.dimensions = 2;
  spec.correlation = 1.0;
  const MDItemList items = generate_md(spec);
  for (const auto& item : items) {
    EXPECT_NEAR(item.demand[0], item.demand[1], 1e-12);
  }
}

TEST(MDGenerate, AntiCorrelationOpposesDimensions) {
  MDWorkloadSpec spec;
  spec.num_items = 300;
  spec.dimensions = 2;
  spec.correlation = -1.0;
  const MDItemList items = generate_md(spec);
  // demand0 + demand1 should be ~constant (min+max) under full
  // anti-correlation.
  for (const auto& item : items) {
    EXPECT_NEAR(item.demand[0] + item.demand[1],
                spec.demand_min + spec.demand_max, 1e-9);
  }
}

TEST(MDGenerate, Validates) {
  MDWorkloadSpec spec;
  spec.dimensions = 0;
  EXPECT_THROW((void)generate_md(spec), std::invalid_argument);
  spec = {};
  spec.correlation = 2.0;
  EXPECT_THROW((void)generate_md(spec), std::invalid_argument);
}

TEST(MDRegistry, CreatesAll) {
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_THROW((void)make_md_algorithm("bogus"), std::invalid_argument);
}

TEST(MDInvariant, CapacityNeverViolated) {
  MDWorkloadSpec spec;
  spec.num_items = 300;
  spec.dimensions = 2;
  spec.correlation = -0.5;
  const MDItemList items = generate_md(spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    // md_simulate itself throws on overfill; completing is the assertion.
    const MDPackingResult result = md_simulate(items, *algo);
    EXPECT_GT(result.bins_opened(), 0u) << name;
    EXPECT_GE(result.total_usage_time(), items.span() - 1e-9) << name;
    EXPECT_GE(result.total_usage_time(), items.load_ceiling_bound() - 1e-6) << name;
  }
}

}  // namespace
}  // namespace mutdbp::md
