// Unit tests for the vector (DVBP) track: MDItemList validation (the
// ItemList-grade per-dimension checks), the engine's scalar-mirroring
// semantics, the vector algorithm registry, the CSV vector trace
// round-trip, and the dims == 1 digest compatibility with the scalar
// engine. The cross-cutting equivalences (streaming ≡ batch, dims=1 ≡
// scalar for every algorithm) live in multidim_differential_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "algorithms/any_fit.h"
#include "algorithms/registry.h"
#include "core/error.h"
#include "core/simulation.h"
#include "multidim/md_algorithms.h"
#include "multidim/md_core.h"
#include "multidim/md_trace.h"
#include "multidim/md_workload.h"
#include "opt/lower_bounds.h"
#include "workload/generators.h"

namespace mutdbp::md {
namespace {

MDItemList two_dim(std::vector<MDItem> items) {
  return MDItemList(std::move(items), {1.0, 1.0});
}

std::string error_of(std::vector<MDItem> items,
                     std::vector<double> capacity = {1.0, 1.0}) {
  try {
    MDItemList list(std::move(items), std::move(capacity));
  } catch (const ValidationError& e) {
    return e.what();
  }
  return "";
}

TEST(MDItemListTest, ValidatesDimensionsAndRanges) {
  EXPECT_THROW(MDItemList({make_md_item(1, {0.5}, 0, 1)}, {}), ValidationError);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5}, 0, 1)}), ValidationError);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5, 1.5}, 0, 1)}), ValidationError);
  EXPECT_THROW(two_dim({make_md_item(1, {0.0, 0.0}, 0, 1)}), ValidationError);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5, 0.5}, 1, 1)}), ValidationError);
}

TEST(MDItemListTest, RejectsZeroNegativeAndNaNPerDimension) {
  // ItemList-grade validation per dimension: the prototype accepted a zero
  // demand in one dimension ("free in dim d"); the engine's accounting and
  // the lower bounds both assume strictly positive demands, so the list
  // must reject them like the scalar list rejects non-positive sizes.
  EXPECT_THROW(two_dim({make_md_item(1, {0.0, 0.5}, 0, 1)}), ValidationError);
  EXPECT_THROW(two_dim({make_md_item(1, {0.5, -0.1}, 0, 1)}), ValidationError);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(two_dim({make_md_item(1, {nan, 0.5}, 0, 1)}), ValidationError);
  EXPECT_THROW(
      two_dim({make_md_item(
          1, {0.5, std::numeric_limits<double>::infinity()}, 0, 1)}),
      ValidationError);
}

TEST(MDItemListTest, ErrorsNameRowAndItem) {
  const std::string zero = error_of({make_md_item(7, {0.5, 0.5}, 0, 1),
                                     make_md_item(8, {0.5, 0.0}, 0, 1)});
  EXPECT_NE(zero.find("item 8"), std::string::npos) << zero;
  EXPECT_NE(zero.find("row 1"), std::string::npos) << zero;
  EXPECT_NE(zero.find("demand[1]"), std::string::npos) << zero;

  const std::string dims = error_of({make_md_item(3, {0.5}, 0, 1)});
  EXPECT_NE(dims.find("item 3"), std::string::npos) << dims;
  EXPECT_NE(dims.find("expected 2"), std::string::npos) << dims;
}

TEST(MDItemListTest, ValidatesCapacity) {
  EXPECT_THROW(MDItemList({}, {1.0, 0.0}), ValidationError);
  EXPECT_THROW(MDItemList({}, {-1.0}), ValidationError);
  EXPECT_THROW(MDItemList({}, {std::numeric_limits<double>::infinity()}),
               ValidationError);
  EXPECT_NO_THROW(MDItemList({}, {2.0, 0.5}));
}

TEST(MDItemListTest, MuAndSpan) {
  const MDItemList items = two_dim({make_md_item(1, {0.5, 0.1}, 0.0, 1.0),
                                    make_md_item(2, {0.1, 0.5}, 0.5, 4.5),
                                    make_md_item(3, {0.2, 0.2}, 6.0, 7.0)});
  EXPECT_DOUBLE_EQ(items.mu(), 4.0);
  EXPECT_DOUBLE_EQ(items.span(), 5.5);  // [0,4.5) + [6,7)
}

TEST(MDItemListTest, ScheduleIsCanonical) {
  // Departures before arrivals at equal times; id order within a kind.
  const MDItemList items = two_dim({make_md_item(2, {0.5, 0.5}, 0.0, 1.0),
                                    make_md_item(1, {0.5, 0.5}, 1.0, 2.0)});
  const auto& schedule = items.schedule();
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_TRUE(schedule[0].is_arrival);
  EXPECT_EQ(schedule[0].id, 2u);
  EXPECT_FALSE(schedule[1].is_arrival);  // t=1: departure of 2 first
  EXPECT_EQ(schedule[1].id, 2u);
  EXPECT_TRUE(schedule[2].is_arrival);
  EXPECT_EQ(schedule[2].id, 1u);
}

TEST(MDItemListTest, LoadCeilingTakesWorstDimension) {
  // Dim 0 load 1.2 on [0,1): needs 2 bins; dim 1 load 0.4: needs 1.
  const MDItemList items = two_dim({make_md_item(1, {0.6, 0.2}, 0.0, 1.0),
                                    make_md_item(2, {0.6, 0.2}, 0.0, 1.0)});
  EXPECT_DOUBLE_EQ(items.load_ceiling_bound(), 2.0);
}

TEST(MDBounds, VectorProp1AndProp2ReduceToScalarAtOneDim) {
  const std::vector<Item> scalar_items = {make_item(1, 0.5, 0.0, 2.0),
                                          make_item(2, 0.3, 1.0, 4.0),
                                          make_item(3, 0.9, 3.0, 5.0)};
  const ItemList scalar(scalar_items, 1.0);
  std::vector<MDItem> md_items;
  for (const auto& item : scalar_items) {
    md_items.push_back(
        make_md_item(item.id, {item.size}, item.arrival(), item.departure()));
  }
  const MDItemList vec(std::move(md_items), {1.0});
  const MDLowerBounds bounds = md_lower_bounds(vec);
  EXPECT_EQ(bounds.prop1, opt::prop1_time_space_bound(scalar));
  EXPECT_EQ(bounds.prop2, opt::prop2_span_bound(scalar));
  EXPECT_EQ(bounds.load_ceiling, opt::load_ceiling_bound(scalar));
  EXPECT_EQ(bounds.combined(), opt::combined_lower_bound(scalar));
}

TEST(MDFits, PerDimensionCheck) {
  MDBinSnapshot bin;
  bin.level = {0.5, 0.9};
  bin.capacity = {1.0, 1.0};
  EXPECT_TRUE(md_fits(bin, std::vector<double>{0.5, 0.1}));
  EXPECT_FALSE(md_fits(bin, std::vector<double>{0.5, 0.2}));
  EXPECT_FALSE(md_fits(bin, std::vector<double>{0.6, 0.05}));
}

TEST(MDSimulate, FirstFitTwoDimensions) {
  // Item 2 fits dim 0 with item 1 but collides in dim 1.
  const MDItemList items = two_dim({
      make_md_item(1, {0.3, 0.8}, 0.0, 4.0),
      make_md_item(2, {0.3, 0.5}, 1.0, 3.0),  // 0.8+0.5 > 1 in dim 1 -> bin 1
      make_md_item(3, {0.6, 0.1}, 2.0, 3.0),  // fits bin 0 (0.9, 0.9)
  });
  VectorFirstFit ff;
  const MDPackingResult result = md_simulate(items, ff);
  ASSERT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bins[0].item_ids(), (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(result.bins[1].item_ids(), (std::vector<ItemId>{2}));
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 4.0 + 2.0);
}

TEST(MDSimulate, ReducesToScalarInOneDimension) {
  // The 1-D MD simulator must agree with the scalar semantics: the
  // departure-before-arrival convention included.
  const MDItemList items({make_md_item(1, {1.0}, 0.0, 1.0),
                          make_md_item(2, {1.0}, 1.0, 2.0)},
                         {1.0});
  VectorFirstFit ff;
  const MDPackingResult result = md_simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 2.0);
}

TEST(MDSimulate, DotProductPrefersComplementaryBin) {
  // bin 0 is dim-1 heavy (residual (0.8, 0.1)); bin 1 is dim-0 heavy
  // (residual (0.1, 0.8)). A dim-1-leaning small item fits both: First Fit
  // takes bin 0, dot-product takes bin 1 where the residual matches.
  const MDItemList items = two_dim({
      make_md_item(1, {0.2, 0.9}, 0.0, 10.0),   // bin 0
      make_md_item(2, {0.9, 0.2}, 0.0, 10.0),   // bin 1 (collides in dim 1)
      make_md_item(3, {0.05, 0.08}, 1.0, 2.0),  // fits both
  });
  VectorFirstFit ff;
  const MDPackingResult ff_result = md_simulate(items, ff);
  EXPECT_EQ(ff_result.bins[0].items.size(), 2u);  // FF: item 3 -> bin 0

  VectorDotProduct dp;
  const MDPackingResult dp_result = md_simulate(items, dp);
  // scores: bin0 = .05*.8 + .08*.1 = .048; bin1 = .05*.1 + .08*.8 = .069.
  EXPECT_EQ(dp_result.bins[1].items.size(), 2u);  // DP: item 3 -> bin 1
}

TEST(MDSimulate, NextFitKeepsOneAvailableBin) {
  const MDItemList items = two_dim({
      make_md_item(1, {0.6, 0.6}, 0.0, 10.0),
      make_md_item(2, {0.6, 0.1}, 0.0, 10.0),   // not fit bin0 -> bin1
      make_md_item(3, {0.1, 0.1}, 0.0, 10.0),   // fits bin0 too, but NF -> bin1
  });
  VectorNextFit nf;
  const MDPackingResult result = md_simulate(items, nf);
  ASSERT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bins[1].item_ids(), (std::vector<ItemId>{2, 3}));
}

TEST(MDSimulate, BestFitPicksFullest) {
  const MDItemList items = two_dim({
      make_md_item(1, {0.7, 0.7}, 0.0, 10.0),   // bin 0 (fill 0.7)
      make_md_item(2, {0.4, 0.4}, 0.0, 10.0),   // bin 1 (does not fit bin 0)
      make_md_item(3, {0.2, 0.2}, 1.0, 2.0),    // fits both; BF -> bin 0
  });
  VectorBestFit bf;
  const MDPackingResult result = md_simulate(items, bf);
  EXPECT_EQ(result.bins[0].item_ids(), (std::vector<ItemId>{1, 3}));
}

TEST(MDSimulate, DominantMeasureDiffersFromWeightedSum) {
  // bin 0 levels (0.8, 0.1): weighted-sum fill 0.45, dominant fill 0.8.
  // bin 1 levels (0.5, 0.5): weighted-sum fill 0.50, dominant fill 0.5.
  // A small item fitting both goes to bin 1 under weighted sum (fuller)
  // but to bin 0 under the dominant-resource measure.
  const MDItemList items = two_dim({
      make_md_item(1, {0.8, 0.1}, 0.0, 10.0),  // opens bin 0
      make_md_item(2, {0.5, 0.5}, 0.0, 10.0),  // collides dim 0 -> bin 1
      make_md_item(3, {0.1, 0.1}, 1.0, 2.0),   // fits both
  });
  const auto weighted = make_md_algorithm("VectorBestFit");
  const MDPackingResult ws = md_simulate(items, *weighted);
  EXPECT_EQ(ws.bins[1].items.size(), 2u);

  const auto dominant = make_md_algorithm("DominantBestFit");
  const MDPackingResult dom = md_simulate(items, *dominant);
  EXPECT_EQ(dom.bins[0].items.size(), 2u);
}

TEST(MDSimulate, PartialResultTruncatesAtNow) {
  MDSimulationOptions options;
  options.capacity = {1.0, 1.0};
  VectorFirstFit ff;
  MDSimulation sim(ff, options);
  (void)sim.arrive(1, std::vector<double>{0.5, 0.5}, 0.0);
  (void)sim.arrive(2, std::vector<double>{0.6, 0.6}, 1.0);
  const MDPackingResult partial = sim.partial_result();
  ASSERT_EQ(partial.bins_opened(), 2u);
  EXPECT_DOUBLE_EQ(partial.bins[0].usage.right, 1.0);
  EXPECT_THROW((void)sim.finish(), SimulationError);  // items still active
  sim.depart(1, 2.0);
  sim.depart(2, 2.0);
  const MDPackingResult done = sim.finish();
  EXPECT_DOUBLE_EQ(done.total_usage_time(), 2.0 + 1.0);
}

TEST(MDDigest, OneDimDigestMatchesScalarPackingDigest) {
  // The cornerstone of the differential wall: at dims == 1 the vector
  // digest hashes the exact byte sequence of the scalar digest, so runs
  // from the two engines are directly comparable.
  workload::RandomWorkloadSpec spec;
  spec.num_items = 60;
  spec.seed = 99;
  const ItemList scalar_items = workload::generate(spec);
  std::vector<MDItem> md_items;
  for (const auto& item : scalar_items) {
    md_items.push_back(
        make_md_item(item.id, {item.size}, item.arrival(), item.departure()));
  }
  const MDItemList vector_items(std::move(md_items), {scalar_items.capacity()});

  FirstFit scalar_ff;
  const PackingResult scalar_result = simulate(scalar_items, scalar_ff);
  VectorFirstFit vector_ff;
  const MDPackingResult vector_result = md_simulate(vector_items, vector_ff);
  EXPECT_EQ(md_packing_digest(vector_result), packing_digest(scalar_result));
}

TEST(MDTrace, RoundTripsBitExactly) {
  MDWorkloadSpec spec;
  spec.num_items = 50;
  spec.dimensions = 3;
  spec.seed = 4;
  const MDItemList items = generate_md(spec);
  std::stringstream buffer;
  write_md_trace(buffer, items);
  const MDItemList reread = read_md_trace(buffer, {1.0, 1.0, 1.0});
  ASSERT_EQ(reread.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(reread[i].id, items[i].id);
    EXPECT_EQ(reread[i].demand, items[i].demand);  // bit-exact, not near
    EXPECT_EQ(reread[i].arrival(), items[i].arrival());
    EXPECT_EQ(reread[i].departure(), items[i].departure());
  }
}

TEST(MDTrace, RejectsMalformedRowsWithRowNumbers) {
  const auto read = [](const std::string& text) {
    std::istringstream in(text);
    return read_md_trace(in, {1.0, 1.0});
  };
  EXPECT_THROW((void)read("id,size0,size1,arrival,departure\n1,0.5,0.5,0\n"),
               ValidationError);  // wrong field count
  EXPECT_THROW((void)read("1,0.5,nan,0,1\n"), ValidationError);
  EXPECT_THROW((void)read("1,0.5,0.5,0,1\n1,0.2,0.2,0,1\n"),
               ValidationError);  // duplicate id
  EXPECT_THROW(
      (void)read("id,size0,size1,arrival,departure\nx,0.5,0.5,0,1\n"),
      ValidationError);  // non-integer id (header consumed separately)
  try {
    (void)read("1,0.5,0.5,0,1\n2,0.5,0.0,0,1\n");
    FAIL() << "zero demand accepted";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos)
        << e.what();
  }
}

TEST(MDGenerate, RespectsSpecAndDeterminism) {
  MDWorkloadSpec spec;
  spec.num_items = 200;
  spec.dimensions = 3;
  spec.correlation = 0.5;
  const MDItemList a = generate_md(spec);
  const MDItemList b = generate_md(spec);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a.dimensions(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].demand, b[i].demand);
    for (const double dem : a[i].demand) {
      EXPECT_GE(dem, spec.demand_min - 1e-12);
      EXPECT_LE(dem, spec.demand_max + 1e-12);
    }
  }
}

TEST(MDGenerate, FullCorrelationMakesDimensionsEqual) {
  MDWorkloadSpec spec;
  spec.num_items = 50;
  spec.dimensions = 2;
  spec.correlation = 1.0;
  const MDItemList items = generate_md(spec);
  for (const auto& item : items) {
    EXPECT_NEAR(item.demand[0], item.demand[1], 1e-12);
  }
}

TEST(MDGenerate, AntiCorrelationOpposesDimensions) {
  MDWorkloadSpec spec;
  spec.num_items = 300;
  spec.dimensions = 2;
  spec.correlation = -1.0;
  const MDItemList items = generate_md(spec);
  // demand0 + demand1 should be ~constant (min+max) under full
  // anti-correlation.
  for (const auto& item : items) {
    EXPECT_NEAR(item.demand[0] + item.demand[1],
                spec.demand_min + spec.demand_max, 1e-9);
  }
}

TEST(MDGenerate, Validates) {
  MDWorkloadSpec spec;
  spec.dimensions = 0;
  EXPECT_THROW((void)generate_md(spec), std::invalid_argument);
  spec = {};
  spec.correlation = 2.0;
  EXPECT_THROW((void)generate_md(spec), std::invalid_argument);
}

TEST(MDRegistry, CreatesAllAndNamesScalarCounterparts) {
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    EXPECT_EQ(algo->name(), name);
    if (const auto scalar = md_scalar_counterpart(name)) {
      // The counterpart must exist in the scalar registry.
      EXPECT_NO_THROW((void)make_algorithm(*scalar)) << name;
    }
  }
  EXPECT_FALSE(md_scalar_counterpart("DotProduct").has_value());
  EXPECT_THROW((void)make_md_algorithm("bogus"), std::invalid_argument);
}

TEST(MDInvariant, CapacityNeverViolated) {
  MDWorkloadSpec spec;
  spec.num_items = 300;
  spec.dimensions = 2;
  spec.correlation = -0.5;
  const MDItemList items = generate_md(spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    // md_simulate itself throws on overfill; completing is the assertion.
    const MDPackingResult result = md_simulate(items, *algo);
    EXPECT_GT(result.bins_opened(), 0u) << name;
    EXPECT_GE(result.total_usage_time(), items.span() - 1e-9) << name;
    EXPECT_GE(result.total_usage_time(), items.load_ceiling_bound() - 1e-6)
        << name;
  }
}

}  // namespace
}  // namespace mutdbp::md
