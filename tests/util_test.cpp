#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.h"
#include "util/flags.h"
#include "util/flat_hash.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mutdbp {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[rng.uniform_u64(0, 5)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
  EXPECT_THROW((void)rng.uniform_u64(5, 4), std::invalid_argument);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(1.5, 1.0, 10.0);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 10.0 + 1e-9);
  }
  EXPECT_THROW((void)rng.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(std::span<int>(copy));
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(values, 101.0), std::invalid_argument);
}

TEST(Percentile, RejectsNaNEverywhere) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> values{1.0, 2.0, 3.0};
  // NaN p used to slip past the old `p < 0 || p > 100` range check (every
  // ordered comparison against NaN is false) and poison the interpolation.
  EXPECT_THROW((void)percentile(values, nan), std::invalid_argument);
  // NaN data breaks std::sort's strict weak ordering: the result would
  // depend on where the NaN happened to land, so it is rejected up front.
  EXPECT_THROW((void)percentile({1.0, nan, 3.0}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({nan}, 50.0), std::invalid_argument);
  // Infinities are ordered and stay legal.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(percentile({1.0, inf}, 0.0), 1.0);
}

TEST(Percentile, NamedQuantileHelpers) {
  std::vector<double> values;
  for (int i = 1; i <= 101; ++i) values.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p50(values), percentile(values, 50.0));
  EXPECT_DOUBLE_EQ(p90(values), percentile(values, 90.0));
  EXPECT_DOUBLE_EQ(p99(values), percentile(values, 99.0));
  EXPECT_DOUBLE_EQ(p50(values), 51.0);
  EXPECT_DOUBLE_EQ(p99(values), 100.0);
}

TEST(Table, FormatsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", Table::num(1.5, 2)});
  table.add_row({"beta", Table::num(std::size_t{42})});
  std::ostringstream out;
  out << table;
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, WritesCsvWithQuoting) {
  Table table({"algorithm", "value"});
  table.add_row({"HybridFirstFit(0.333,0.5,1)", "1.25"});
  table.add_row({"plain", "2"});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(),
            "algorithm,value\n"
            "\"HybridFirstFit(0.333,0.5,1)\",1.25\n"
            "plain,2\n");
}

TEST(Table, CsvEscapesEmbeddedQuotes) {
  Table table({"note"});
  table.add_row({"say \"hi\""});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "note\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, SplitsAndTrims) {
  const auto fields = split_csv_line(" a , b,c ,, d ");
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[3], "");
  EXPECT_EQ(fields[4], "d");
}

TEST(Csv, DetectsHeaderAndSkipsComments) {
  std::stringstream in("# hello\ncol_a,col_b\n1,2\n3,4\n");
  const CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "col_a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(Csv, NoHeaderWhenFirstRowNumeric) {
  std::stringstream in("1,2\n3,4\n");
  const CsvDocument doc = read_csv(in);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, ParseDoubleErrorsCarryContext) {
  try {
    (void)parse_double("xyz", "row 3");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos);
  }
}

TEST(Flags, ParsesFormsAndTypes) {
  const char* argv[] = {"prog", "--alpha=2.5", "--count", "7", "--name=ff", "--flag"};
  Flags flags(6, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(flags.get_int("count", 0), 7);
  EXPECT_EQ(flags.get_string("name", ""), "ff");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_int("absent", 42), 42);
  EXPECT_FALSE(flags.finish("test"));
}

TEST(Flags, RejectsUnknownAndMalformed) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, argv);
  (void)flags.get_int("count", 0);
  EXPECT_THROW((void)flags.finish("test"), std::invalid_argument);

  const char* argv2[] = {"prog", "--count=abc"};
  Flags flags2(2, argv2);
  EXPECT_THROW((void)flags2.get_int("count", 0), std::invalid_argument);

  const char* argv3[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, argv3), std::invalid_argument);
}

TEST(Parallel, ComputesAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, NestedCallsRunSerially) {
  // A parallel_for issued from inside a pool task must not deadlock waiting
  // for the pool; it runs inline on the calling thread.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 8, [&](std::size_t outer) {
    parallel_for(0, 8,
                 [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); }, 4);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PoolIsReusableAcrossCalls) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); }, 4);
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.insert(7, 70));
  EXPECT_TRUE(map.insert(8, 80));
  EXPECT_FALSE(map.insert(7, 71)) << "duplicate insert must be rejected";
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70);
  EXPECT_EQ(map.find(9), nullptr);
  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_FALSE(map.contains(7));
  EXPECT_TRUE(map.contains(8));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SurvivesGrowthAndChurn) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(map.insert(k, k * 3));
  EXPECT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 3);
  }
  // Erase the even keys; odd keys must survive the backward-shift deletions.
  for (std::uint64_t k = 0; k < kN; k += 2) ASSERT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), kN / 2);
  for (std::uint64_t k = 0; k < kN; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), k * 3);
    }
  }
}

TEST(FlatMap, BackwardShiftKeepsCollidingProbeChainsIntact) {
  // Keys a multiple of a large stride apart tend to share home slots after
  // masking; erasing chain members in every order must keep lookups correct.
  FlatMap<std::uint64_t, int> map;
  const std::vector<std::uint64_t> keys{1, 17, 33, 49, 65, 81, 97, 113};
  for (std::size_t order = 0; order < keys.size(); ++order) {
    map.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(map.insert(keys[i], static_cast<int>(i)));
    }
    ASSERT_TRUE(map.erase(keys[order]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i == order) {
        EXPECT_EQ(map.find(keys[i]), nullptr);
      } else {
        ASSERT_NE(map.find(keys[i]), nullptr) << "order " << order << " key " << keys[i];
        EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i));
      }
    }
  }
}

TEST(FlatMap, ClearAndReserve) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(map.insert(k, 1));
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  EXPECT_TRUE(map.insert(5, 2));
  EXPECT_EQ(*map.find(5), 2);
}

TEST(FlatMap, TryInsertReturnsSlotOrRejectsDuplicate) {
  FlatMap<std::uint64_t, int> map;
  int* slot = map.try_insert(7, 70);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(*slot, 70);
  *slot = 71;  // the returned pointer aliases the stored value
  EXPECT_EQ(*map.find(7), 71);
  EXPECT_EQ(map.try_insert(7, 99), nullptr) << "duplicate must leave the map unchanged";
  EXPECT_EQ(*map.find(7), 71);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, TakeRemovesAndReturnsValue) {
  FlatMap<std::uint64_t, int> map;
  ASSERT_TRUE(map.insert(3, 30));
  ASSERT_TRUE(map.insert(4, 40));
  int out = -1;
  EXPECT_FALSE(map.take(9, out));
  EXPECT_EQ(out, -1) << "a missing key must leave out untouched";
  EXPECT_TRUE(map.take(3, out));
  EXPECT_EQ(out, 30);
  EXPECT_FALSE(map.contains(3));
  EXPECT_EQ(map.size(), 1u);
  // take() shares erase()'s backward-shift path: colliding survivors must
  // stay reachable.
  map.clear();
  const std::vector<std::uint64_t> keys{1, 17, 33, 49, 65, 81, 97, 113};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(map.insert(keys[i], static_cast<int>(i)));
  }
  EXPECT_TRUE(map.take(keys[2], out));
  EXPECT_EQ(out, 2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 2) continue;
    ASSERT_NE(map.find(keys[i]), nullptr) << keys[i];
    EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace mutdbp
