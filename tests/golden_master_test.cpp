// Golden-master regression suite: pins the exact packing every registered
// algorithm produces on a fixed set of workloads — the checked-in demo
// trace plus the paper's adversarial constructions — to goldens committed
// in tests/goldens/. Any change to placement decisions, event ordering, or
// floating-point evaluation order shows up as a digest mismatch here, even
// when aggregate objectives barely move.
//
// Updating intentionally (after reviewing the diff):
//   MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster
// (ctest inherits the environment; the test then rewrites the goldens file
// in the source tree and passes).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "core/checkpoint.h"
#include "core/simulation.h"
#include "multidim/md_algorithms.h"
#include "multidim/md_trace.h"
#include "workload/adversarial.h"
#include "workload/trace.h"

#ifndef MUTDBP_GOLDENS_DIR
#error "tests/CMakeLists.txt must define MUTDBP_GOLDENS_DIR"
#endif
#ifndef MUTDBP_DEMO_TRACE_PATH
#error "tests/CMakeLists.txt must define MUTDBP_DEMO_TRACE_PATH"
#endif
#ifndef MUTDBP_VECTOR_TRACE_PATH
#error "tests/CMakeLists.txt must define MUTDBP_VECTOR_TRACE_PATH"
#endif

namespace mutdbp {
namespace {

struct Golden {
  std::size_t bins = 0;
  std::uint64_t usage_bits = 0;  ///< total usage time, IEEE-754 bit pattern
  std::uint64_t digest = 0;      ///< FNV-1a over every placement, bin order
};

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// The placement digest itself is packing_digest() (core/packing_result.h) —
// shared with trace_replay's "result digest:" lines, so the goldens pinned
// here and the CI ingest-parity gate speak the same hash.

struct Workload {
  std::string name;
  ItemList items;
  double fit_epsilon = kDefaultFitEpsilon;
};

std::vector<Workload> golden_workloads() {
  std::vector<Workload> workloads;
  workloads.push_back(
      {"demo_trace", workload::read_trace_file(MUTDBP_DEMO_TRACE_PATH),
       kDefaultFitEpsilon});
  const auto nf = workload::next_fit_lower_bound_instance(8, 6.0);
  workloads.push_back({"next_fit_lower_bound", nf.items, nf.recommended_fit_epsilon});
  const auto pin = workload::any_fit_pinning_instance(8, 6.0);
  workloads.push_back({"any_fit_pinning", pin.items, pin.recommended_fit_epsilon});
  const auto decoy = workload::best_fit_decoy_instance(4, 6.0);
  workloads.push_back({"best_fit_decoy", decoy.items, decoy.recommended_fit_epsilon});
  return workloads;
}

std::string goldens_path() {
  return std::string(MUTDBP_GOLDENS_DIR) + "/packing_goldens.txt";
}

/// Key: "<workload>/<algorithm>". Values parsed from / written to the
/// goldens file, one `key bins usage_bits digest` line each.
std::map<std::string, Golden> read_goldens() {
  std::map<std::string, Golden> goldens;
  std::ifstream in(goldens_path());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    Golden golden;
    if (fields >> key >> golden.bins >> std::hex >> golden.usage_bits >>
        golden.digest) {
      goldens[key] = golden;
    }
    // (the std::hex sticks per-stream, not per-line: each line re-creates
    // its own istringstream, so the decimal `bins` field parses correctly)
  }
  return goldens;
}

void write_goldens(const std::map<std::string, Golden>& goldens) {
  std::ofstream out(goldens_path(), std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << goldens_path();
  out << "# Golden packings: <workload>/<algorithm> <bins> <usage_bits_hex> "
         "<digest_hex>\n"
      << "# Regenerate: MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster\n";
  for (const auto& [key, golden] : goldens) {
    out << key << ' ' << std::dec << golden.bins << ' ' << std::hex
        << golden.usage_bits << ' ' << golden.digest << '\n';
  }
}

TEST(GoldenMaster, PackingsMatchCheckedInGoldens) {
  const bool update = []() {
    const char* env = std::getenv("MUTDBP_UPDATE_GOLDENS");
    return env != nullptr && std::string(env) == "1";
  }();

  std::map<std::string, Golden> expected = read_goldens();
  std::map<std::string, Golden> actual;
  for (const Workload& workload : golden_workloads()) {
    for (const std::string& algorithm : algorithm_names()) {
      const auto algo = make_algorithm(algorithm, /*seed=*/1, workload.fit_epsilon);
      SimulationOptions options;
      options.fit_epsilon = workload.fit_epsilon;
      const PackingResult result = simulate(workload.items, *algo, options);
      Golden golden;
      golden.bins = result.bins_opened();
      golden.usage_bits = bits_of(result.total_usage_time());
      golden.digest = packing_digest(result);
      actual[workload.name + "/" + algorithm] = golden;
    }
  }

  // The DVBP track pins its packings in the same goldens file: the
  // committed 2-D vector trace through every registered vector algorithm,
  // keyed "vector_demo/<algorithm>", digests from md_packing_digest()
  // (byte-compatible with packing_digest() — same FNV-1a stream).
  const md::MDItemList vector_items =
      md::read_md_trace_file(MUTDBP_VECTOR_TRACE_PATH, {1.0, 1.0});
  for (const std::string& algorithm : md::md_algorithm_names()) {
    const auto algo = md::make_md_algorithm(algorithm);
    const md::MDPackingResult result = md::md_simulate(vector_items, *algo);
    Golden golden;
    golden.bins = result.bins_opened();
    golden.usage_bits = bits_of(result.total_usage_time());
    golden.digest = md::md_packing_digest(result);
    actual["vector_demo/" + algorithm] = golden;
  }

  if (update) {
    write_goldens(actual);
    GTEST_SKIP() << "goldens rewritten at " << goldens_path();
  }

  ASSERT_FALSE(expected.empty())
      << "no goldens at " << goldens_path()
      << " — generate them once with: MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster";

  for (const auto& [key, golden] : actual) {
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end())
        << "no golden for " << key << "; if this workload/algorithm pair is "
        << "new, regenerate with: MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster";
    EXPECT_EQ(golden.bins, it->second.bins) << key;
    EXPECT_EQ(golden.usage_bits, it->second.usage_bits)
        << key << ": total usage changed; if intentional, regenerate with "
        << "MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster";
    EXPECT_EQ(golden.digest, it->second.digest)
        << key << ": placement digest changed — the algorithm made different "
        << "decisions (or event ordering/fp evaluation changed); if "
        << "intentional, regenerate with MUTDBP_UPDATE_GOLDENS=1 ctest -R "
        << "GoldenMaster";
  }
  // Stale entries (pair removed from the matrix) should be pruned too.
  for (const auto& [key, golden] : expected) {
    EXPECT_TRUE(actual.count(key) != 0)
        << "stale golden " << key << "; regenerate with "
        << "MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenMaster";
  }
}

}  // namespace
}  // namespace mutdbp
