// mutdbpd end-to-end tests: wire protocol round-trips, the DaemonCore state
// machine (exactly-once admission, shed/backpressure, checkpoint/restore),
// the in-process DaemonServer + DaemonClient loop under fault injection,
// and the kill-9 chaos test against the real mutdbpd binary.
//
// The load-bearing assertion throughout: a daemon run — interrupted,
// overloaded, fault-injected, or crashed and restored — produces a final
// ResultDigest bit-identical to an uninterrupted batch run_sharded() of the
// same trace (docs/daemon.md).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/item_list.h"
#include "core/sharded.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "telemetry/flight_recorder.h"
#include "test_support.h"
#include "workload/generators.h"
#include "workload/trace.h"

extern char** environ;

namespace mutdbp {
namespace {

using daemon::DaemonConfig;
using daemon::DaemonCore;
using daemon::DaemonServer;
using daemon::Outgoing;
using daemon::RequestType;
using daemon::ResponseType;
using daemon::ResultDigest;
using daemon::WireRequest;
using daemon::WireResponse;

// ---------------------------------------------------------------------------
// helpers

[[nodiscard]] ItemList demo_items() {
  return workload::read_trace_file(MUTDBP_DEMO_TRACE_PATH, 1.0);
}

[[nodiscard]] std::vector<StreamEvent> stream_events(const ItemList& items) {
  std::vector<StreamEvent> events;
  events.reserve(items.schedule().size());
  for (const ScheduledEvent& event : items.schedule()) {
    StreamEvent stream_event;
    stream_event.kind = event.is_arrival ? StreamEvent::Kind::kArrival
                                         : StreamEvent::Kind::kDeparture;
    stream_event.id = event.id;
    stream_event.size = event.is_arrival ? event.size : 0.0;
    stream_event.t = event.t;
    events.push_back(stream_event);
  }
  return events;
}

[[nodiscard]] ResultDigest batch_digest(const ItemList& items,
                                        const std::string& algorithm,
                                        std::size_t shards) {
  ShardedOptions options;
  options.num_shards = shards;
  options.capacity = items.capacity();
  return daemon::digest_of(
      run_sharded(items, registry_factory(algorithm), options));
}

[[nodiscard]] WireRequest hello_request(const std::string& client) {
  WireRequest request;
  request.type = RequestType::kHello;
  request.client = client;
  return request;
}

[[nodiscard]] WireRequest event_request(const StreamEvent& event,
                                        std::uint64_t seq) {
  WireRequest request;
  request.seq = seq;
  request.id = event.id;
  request.t = event.t;
  if (event.kind == StreamEvent::Kind::kArrival) {
    request.type = RequestType::kArrival;
    request.size = event.size;
  } else {
    request.type = RequestType::kDeparture;
  }
  return request;
}

/// Drives the full event list through a DaemonCore with client-style
/// retries (Overloaded → flush, then retry the same seq), asserting that
/// every request got exactly one typed outcome — an eventual Ack, or a
/// typed nack that was retried. Returns the number of Overloaded nacks.
std::size_t drive_core(DaemonCore& core, const std::vector<StreamEvent>& events,
                       std::uint64_t conn, std::size_t flush_every = 64) {
  std::size_t shed = 0;
  std::size_t acked = 0;
  auto collect = [&](const std::vector<Outgoing>& outgoings) {
    for (const Outgoing& outgoing : outgoings) {
      EXPECT_EQ(outgoing.response.type, ResponseType::kAck)
          << outgoing.response.text;
      ++acked;
    }
  };
  std::uint64_t seq = 1;
  for (const StreamEvent& event : events) {
    while (true) {
      const std::vector<Outgoing> out =
          core.handle(conn, event_request(event, seq));
      // Admitted events produce no immediate response (group-commit ack).
      if (out.empty()) break;
      EXPECT_EQ(out.size(), 1u) << "seq " << seq;
      const WireResponse& response = out.back().response;
      if (response.type == ResponseType::kOverloaded) {
        ++shed;
        collect(core.flush());  // let the fleet drain, then retry the seq
        continue;
      }
      EXPECT_EQ(response.type, ResponseType::kDuplicate) << response.text;
      break;
    }
    ++seq;
    if (seq % flush_every == 0) collect(core.flush());
  }
  collect(core.flush());
  EXPECT_EQ(acked, events.size()) << "every admitted event must be acked";
  return shed;
}

// ---------------------------------------------------------------------------
// wire protocol round-trips

TEST(DaemonProtocol, RequestRoundTripsExactly) {
  std::vector<WireRequest> requests;
  requests.push_back(hello_request("client-a"));
  WireRequest arrival;
  arrival.type = RequestType::kArrival;
  arrival.seq = 42;
  arrival.id = 7;
  arrival.size = 0.375;
  arrival.t = 12.5;
  requests.push_back(arrival);
  WireRequest departure;
  departure.type = RequestType::kDeparture;
  departure.seq = 43;
  departure.id = 7;
  departure.t = 19.25;
  requests.push_back(departure);
  for (const RequestType type : {RequestType::kFinish, RequestType::kMetrics,
                                 RequestType::kStats, RequestType::kShutdown}) {
    WireRequest request;
    request.type = type;
    requests.push_back(request);
  }
  for (const WireRequest& request : requests) {
    const std::vector<std::uint8_t> frame = daemon::encode_request(request);
    daemon::FrameAssembler assembler(CheckpointKind::kWireRequest);
    assembler.feed(frame.data(), frame.size());
    const auto payload = assembler.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(daemon::decode_request(*payload), request);
    EXPECT_FALSE(assembler.next().has_value());
  }
}

TEST(DaemonProtocol, ResponseRoundTripsExactly) {
  std::vector<WireResponse> responses;
  WireResponse ack;
  ack.type = ResponseType::kAck;
  ack.seq = 9;
  ack.next_expected = 10;
  ack.shard = 3;
  ack.bin = 17;
  responses.push_back(ack);
  WireResponse hello;
  hello.type = ResponseType::kHelloOk;
  hello.algorithm = "BestFit";
  hello.num_shards = 4;
  hello.capacity = 2.0;
  hello.fit_epsilon = 1e-9;
  hello.algorithm_seed = 11;
  hello.resume_from = 101;
  hello.next_expected = 101;
  responses.push_back(hello);
  WireResponse overloaded;
  overloaded.type = ResponseType::kOverloaded;
  overloaded.seq = 12;
  overloaded.next_expected = 12;
  overloaded.retry_after_ms = 25;
  responses.push_back(overloaded);
  WireResponse result;
  result.type = ResponseType::kResult;
  result.digest.bins_opened = 386;
  result.digest.items = 500;
  result.digest.events = 1000;
  result.digest.usage = 1549.2;
  result.digest.lower_bound = 1521.0;
  result.digest.placements = 0x1f56477bba985e8aULL;
  responses.push_back(result);
  WireResponse invalid;
  invalid.type = ResponseType::kInvalid;
  invalid.seq = 4;
  invalid.text = "arrival size must be in (0, capacity]";
  responses.push_back(invalid);
  // kWireStats carries the deepest payload in the protocol: nested frontier,
  // shard-health, and histogram-summary lists all round-trip field-exactly.
  WireResponse wire_stats;
  wire_stats.type = ResponseType::kWireStats;
  wire_stats.stats.uptime_seconds = 12.5;
  wire_stats.stats.last_checkpoint_age_seconds = 0.25;
  wire_stats.stats.last_t = 99.5;
  wire_stats.stats.events_admitted = 1000;
  wire_stats.stats.events_shed = 3;
  wire_stats.stats.duplicates_suppressed = 2;
  wire_stats.stats.out_of_order = 1;
  wire_stats.stats.malformed_frames = 4;
  wire_stats.stats.checkpoints_written = 7;
  wire_stats.stats.watchdog_fires = 1;
  wire_stats.stats.events_applied = 998;
  wire_stats.stats.open_bins = 42;
  wire_stats.stats.connections = 2;
  wire_stats.stats.retry_after_ms = 10;
  wire_stats.stats.admission_wait_us = 500;
  wire_stats.stats.frontiers = {{"alpha", 1001}, {"beta", 1}};
  wire_stats.stats.shards = {{0, 500, 500, 0, 17, 2, 0.125},
                             {1, 498, 498, 0, 9, 0, 0.0}};
  wire_stats.stats.histograms = {
      {"mutdbp_daemon_flush_latency", 31, 0.5, 0.001, 0.125, 0.01, 0.05, 0.1},
      {"mutdbp_daemon_ack_latency", 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}};
  responses.push_back(wire_stats);
  WireResponse empty_stats;  // a fresh daemon: all lists empty, never NaN
  empty_stats.type = ResponseType::kWireStats;
  responses.push_back(empty_stats);
  for (const WireResponse& response : responses) {
    const std::vector<std::uint8_t> frame = daemon::encode_response(response);
    daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
    assembler.feed(frame.data(), frame.size());
    const auto payload = assembler.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(daemon::decode_response(*payload), response);
  }
}

TEST(DaemonProtocol, AssemblerHandlesPartialAndCoalescedReads) {
  // Three frames in one byte stream, fed one byte at a time: exactly three
  // payloads come out, in order, regardless of read fragmentation.
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    WireRequest request;
    request.type = RequestType::kDeparture;
    request.seq = seq;
    request.id = seq * 10;
    request.t = static_cast<double>(seq);
    const std::vector<std::uint8_t> frame = daemon::encode_request(request);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  daemon::FrameAssembler assembler(CheckpointKind::kWireRequest);
  std::uint64_t decoded = 0;
  for (const std::uint8_t byte : bytes) {
    assembler.feed(&byte, 1);
    while (const auto payload = assembler.next()) {
      const WireRequest request = daemon::decode_request(*payload);
      EXPECT_EQ(request.seq, decoded + 1);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 3u);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(DaemonProtocol, WrongFrameKindIsRejected) {
  const std::vector<std::uint8_t> frame =
      daemon::encode_request(hello_request("x"));
  daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);  // wrong kind
  assembler.feed(frame.data(), frame.size());
  EXPECT_THROW((void)assembler.next(), ValidationError);
}

// ---------------------------------------------------------------------------
// DaemonCore: exactly-once admission

TEST(DaemonCore, AcksCarryPlacementsAndFrontier) {
  DaemonConfig config;
  config.shards = 1;
  DaemonCore core(config);
  core.register_connection(1);
  const std::vector<Outgoing> hello = core.handle(1, hello_request("c"));
  ASSERT_EQ(hello.size(), 1u);
  EXPECT_EQ(hello[0].response.type, ResponseType::kHelloOk);
  EXPECT_EQ(hello[0].response.resume_from, 1u);

  StreamEvent arrival{StreamEvent::Kind::kArrival, 1, 0.5, 1.0};
  EXPECT_TRUE(core.handle(1, event_request(arrival, 1)).empty());
  const std::vector<Outgoing> acks = core.flush();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].conn, 1u);
  EXPECT_EQ(acks[0].response.type, ResponseType::kAck);
  EXPECT_EQ(acks[0].response.seq, 1u);
  EXPECT_EQ(acks[0].response.next_expected, 2u);
  EXPECT_EQ(acks[0].response.bin, 0u);  // only item, first bin

  // A departure acks with the sentinel (the item is no longer resident).
  StreamEvent departure{StreamEvent::Kind::kDeparture, 1, 0.0, 2.0};
  EXPECT_TRUE(core.handle(1, event_request(departure, 2)).empty());
  const std::vector<Outgoing> acks2 = core.flush();
  ASSERT_EQ(acks2.size(), 1u);
  EXPECT_EQ(acks2[0].response.type, ResponseType::kAck);
  EXPECT_EQ(acks2[0].response.bin, daemon::kNoBin);
}

TEST(DaemonCore, DuplicatesAreSuppressedAndReacked) {
  DaemonCore core(DaemonConfig{});
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));
  StreamEvent arrival{StreamEvent::Kind::kArrival, 1, 0.5, 1.0};
  EXPECT_TRUE(core.handle(1, event_request(arrival, 1)).empty());
  (void)core.flush();

  // The resend of an applied sequence is acknowledged, never re-applied.
  const std::vector<Outgoing> out = core.handle(1, event_request(arrival, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].response.type, ResponseType::kDuplicate);
  EXPECT_EQ(out[0].response.next_expected, 2u);
  EXPECT_EQ(core.events_admitted(), 1u);
}

TEST(DaemonCore, GapsAreNackedOutOfOrder) {
  DaemonCore core(DaemonConfig{});
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));
  StreamEvent arrival{StreamEvent::Kind::kArrival, 1, 0.5, 1.0};
  const std::vector<Outgoing> out = core.handle(1, event_request(arrival, 5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].response.type, ResponseType::kOutOfOrder);
  EXPECT_EQ(out[0].response.next_expected, 1u);
  EXPECT_EQ(core.events_admitted(), 0u);
}

TEST(DaemonCore, InvalidEventsNeverReachTheFleet) {
  DaemonCore core(DaemonConfig{});
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));

  auto expect_invalid = [&](const WireRequest& request, const char* what) {
    const std::vector<Outgoing> out = core.handle(1, request);
    ASSERT_EQ(out.size(), 1u) << what;
    EXPECT_EQ(out[0].response.type, ResponseType::kInvalid) << what;
    EXPECT_FALSE(out[0].response.text.empty()) << what;
  };

  StreamEvent oversized{StreamEvent::Kind::kArrival, 1, 1.5, 1.0};
  expect_invalid(event_request(oversized, 1), "size > capacity");
  StreamEvent zero{StreamEvent::Kind::kArrival, 1, 0.0, 1.0};
  expect_invalid(event_request(zero, 1), "zero size");
  StreamEvent ghost{StreamEvent::Kind::kDeparture, 9, 0.0, 1.0};
  expect_invalid(event_request(ghost, 1), "departure of unknown item");

  // Nothing was admitted: the frontier did not move, the fleet saw nothing.
  EXPECT_EQ(core.events_admitted(), 0u);

  StreamEvent ok{StreamEvent::Kind::kArrival, 1, 0.5, 5.0};
  EXPECT_TRUE(core.handle(1, event_request(ok, 1)).empty());
  StreamEvent backwards{StreamEvent::Kind::kArrival, 2, 0.5, 4.0};
  expect_invalid(event_request(backwards, 2), "time going backwards");
  StreamEvent twice{StreamEvent::Kind::kArrival, 1, 0.5, 6.0};
  expect_invalid(event_request(twice, 2), "already-active arrival");
  (void)core.flush();
}

TEST(DaemonCore, FinishRejectedWhileItemsAreActive) {
  DaemonCore core(DaemonConfig{});
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));
  StreamEvent arrival{StreamEvent::Kind::kArrival, 1, 0.5, 1.0};
  (void)core.handle(1, event_request(arrival, 1));
  WireRequest finish;
  finish.type = RequestType::kFinish;
  const std::vector<Outgoing> out = core.handle(1, finish);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().response.type, ResponseType::kInvalid);
  EXPECT_FALSE(core.finished());
}

TEST(DaemonCore, FullTraceMatchesBatchDigest) {
  const ItemList items = demo_items();
  const std::vector<StreamEvent> events = stream_events(items);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    DaemonConfig config;
    config.shards = shards;
    DaemonCore core(config);
    core.register_connection(1);
    (void)core.handle(1, hello_request("c"));
    drive_core(core, events, 1);
    WireRequest finish;
    finish.type = RequestType::kFinish;
    const std::vector<Outgoing> out = core.handle(1, finish);
    ASSERT_FALSE(out.empty());
    ASSERT_EQ(out.back().response.type, ResponseType::kResult)
        << out.back().response.text;
    EXPECT_EQ(out.back().response.digest,
              batch_digest(items, "FirstFit", shards))
        << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// DaemonCore: admission control and backpressure

TEST(DaemonCore, OverloadShedsWithTypedNacksAndZeroSilentDrops) {
  // A 2-slot ring and no admission wait: a tight producer loop must outrun
  // the shard worker at least sometimes. Every request gets exactly one
  // typed outcome (ack now or later, or an Overloaded nack) — drive_core
  // asserts the "exactly one" part, the counters prove real shedding.
  workload::RandomWorkloadSpec spec;
  spec.num_items = 2000;
  spec.seed = 77;
  const ItemList items = workload::generate(spec);
  const std::vector<StreamEvent> events = stream_events(items);

  DaemonConfig config;
  config.shards = 1;
  config.ring_capacity = 2;
  config.admission_wait = std::chrono::microseconds(0);
  config.retry_after_ms = 1;
  DaemonCore core(config);
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));
  const std::size_t shed = drive_core(core, events, 1, /*flush_every=*/4096);
  EXPECT_GT(shed, 0u) << "a 2-slot ring never filled — overload path untested";

  const auto snapshot = core.telemetry().metrics().snapshot();
  const auto* shed_counter = snapshot.find_counter("mutdbp_daemon_shed_total");
  const auto* admitted = snapshot.find_counter("mutdbp_daemon_admitted_total");
  ASSERT_NE(shed_counter, nullptr);
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(shed_counter->value, shed);
  EXPECT_EQ(admitted->value, events.size());

  // Shedding lost nothing: the run still finishes bit-identical to batch.
  WireRequest finish;
  finish.type = RequestType::kFinish;
  const std::vector<Outgoing> out = core.handle(1, finish);
  ASSERT_EQ(out.back().response.type, ResponseType::kResult);
  EXPECT_EQ(out.back().response.digest, batch_digest(items, "FirstFit", 1));
}

// ---------------------------------------------------------------------------
// DaemonCore: live introspection (kWireStats)

TEST(DaemonCore, WireStatsSnapshotAgreesWithTheCounters) {
  const ItemList items = demo_items();
  const std::vector<StreamEvent> events = stream_events(items);
  DaemonConfig config;
  config.shards = 2;
  config.retry_after_ms = 25;
  config.admission_wait = std::chrono::microseconds(250);
  DaemonCore core(config);
  core.register_connection(1);
  (void)core.handle(1, hello_request("c"));
  drive_core(core, events, 1);

  WireRequest request;
  request.type = RequestType::kWireStats;
  const std::vector<Outgoing> out = core.handle(1, request);
  ASSERT_FALSE(out.empty());
  const WireResponse& response = out.back().response;
  ASSERT_EQ(response.type, ResponseType::kWireStats);
  const daemon::WireStatsSnapshot& stats = response.stats;

  EXPECT_EQ(stats.version, daemon::kWireStatsVersion);
  EXPECT_GE(stats.uptime_seconds, 0.0);
  EXPECT_LT(stats.last_checkpoint_age_seconds, 0.0);  // no checkpoint config
  EXPECT_EQ(stats.events_admitted, events.size());
  EXPECT_EQ(stats.events_applied, events.size());
  EXPECT_EQ(stats.checkpoints_written, 0u);
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.retry_after_ms, 25u);
  EXPECT_EQ(stats.admission_wait_us, 250u);
  EXPECT_EQ(stats.open_bins, 0u);  // every demo item departed
  EXPECT_DOUBLE_EQ(stats.last_t, events.back().t);

  ASSERT_EQ(stats.frontiers.size(), 1u);
  EXPECT_EQ(stats.frontiers[0].client, "c");
  EXPECT_EQ(stats.frontiers[0].next_expected, events.size() + 1);

  ASSERT_EQ(stats.shards.size(), 2u);
  std::uint64_t drained = 0;
  for (const daemon::WireShardHealth& shard : stats.shards) {
    drained += shard.events_drained;
    EXPECT_EQ(shard.queue_depth, 0u) << "fleet must be quiescent post-flush";
    EXPECT_EQ(shard.events_pushed, shard.events_drained);
    EXPECT_GE(shard.queue_depth_high_water, shard.queue_depth);
  }
  EXPECT_EQ(drained, events.size());

  // Only the operation-latency family travels, and the ops that ran have
  // consistent summaries (quantiles bracketed by min/max, p50 <= p99).
  bool saw_flush = false;
  bool saw_ack = false;
  for (const daemon::WireHistogramSummary& histogram : stats.histograms) {
    EXPECT_NE(histogram.name.find("_latency"), std::string::npos)
        << histogram.name;
    if (histogram.count == 0) continue;
    EXPECT_LE(histogram.min, histogram.max) << histogram.name;
    EXPECT_LE(histogram.p50, histogram.p99) << histogram.name;
    EXPECT_LE(histogram.p99, histogram.max) << histogram.name;
    if (histogram.name == "mutdbp_daemon_flush_latency") saw_flush = true;
    if (histogram.name == "mutdbp_daemon_ack_latency") {
      saw_ack = true;
      EXPECT_EQ(histogram.count, events.size())
          << "every admitted event contributes one ack-latency sample";
    }
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_ack);

  // The live snapshot survives the wire bit-exactly.
  const std::vector<std::uint8_t> frame = daemon::encode_response(response);
  daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
  assembler.feed(frame.data(), frame.size());
  const auto payload = assembler.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(daemon::decode_response(*payload), response);
}

// ---------------------------------------------------------------------------
// DaemonCore: checkpoint / restore

TEST(DaemonCore, CheckpointRestoreResumesFromTheAckedFrontier) {
  const ItemList items = demo_items();
  const std::vector<StreamEvent> events = stream_events(items);
  const std::size_t cut = events.size() / 2;
  testing::ScopedTempDir temp;
  const std::string checkpoint = temp.file("daemon.ckpt").string();

  {
    DaemonConfig config;
    config.shards = 4;
    config.checkpoint_path = checkpoint;
    DaemonCore core(config);
    core.register_connection(1);
    (void)core.handle(1, hello_request("c"));
    std::uint64_t seq = 1;
    for (std::size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(core.handle(1, event_request(events[i], seq++)).empty());
    }
    (void)core.flush();
    core.checkpoint();
    // The core is dropped here mid-run — admitted-but-unacked state beyond
    // the checkpoint does not exist (flush() settled everything).
  }

  DaemonConfig config;
  config.shards = 1;  // overridden by the checkpoint header (4 shards)
  config.checkpoint_path = checkpoint;
  config.restore = true;
  DaemonCore core(config);
  EXPECT_EQ(core.config().shards, 4u);
  EXPECT_EQ(core.events_admitted(), cut);
  core.register_connection(7);
  const std::vector<Outgoing> hello = core.handle(7, hello_request("c"));
  ASSERT_EQ(hello.size(), 1u);
  EXPECT_EQ(hello[0].response.resume_from, cut + 1);

  std::uint64_t seq = cut + 1;
  for (std::size_t i = cut; i < events.size(); ++i) {
    ASSERT_TRUE(core.handle(7, event_request(events[i], seq++)).empty());
  }
  (void)core.flush();
  WireRequest finish;
  finish.type = RequestType::kFinish;
  const std::vector<Outgoing> out = core.handle(7, finish);
  ASSERT_EQ(out.back().response.type, ResponseType::kResult)
      << out.back().response.text;
  EXPECT_EQ(out.back().response.digest, batch_digest(items, "FirstFit", 4));
}

TEST(DaemonCore, MissingRestoreFileIsAFreshFirstBoot) {
  testing::ScopedTempDir temp;
  DaemonConfig config;
  config.checkpoint_path = temp.file("never-written.ckpt").string();
  config.restore = true;
  DaemonCore core(config);  // must not throw
  EXPECT_EQ(core.events_admitted(), 0u);
}

// ---------------------------------------------------------------------------
// DaemonServer + DaemonClient, in process (TCP on an ephemeral port)

class ServerThread {
 public:
  ServerThread(DaemonCore& core, daemon::ServerOptions options)
      : server_(core, std::move(options)) {
    server_.bind();
    thread_ = std::thread([this] { exit_code_ = server_.run(); });
  }
  ~ServerThread() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }
  [[nodiscard]] DaemonServer& server() noexcept { return server_; }
  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

 private:
  DaemonServer server_;
  std::thread thread_;
  int exit_code_ = -1;
};

[[nodiscard]] daemon::ServerOptions test_server_options() {
  daemon::ServerOptions options;
  options.tcp = true;
  options.tcp_port = 0;  // ephemeral
  options.poll_interval_ms = 2;
  options.announce = false;
  return options;
}

TEST(DaemonServer, ClientReplayMatchesBatchDigest) {
  const ItemList items = demo_items();
  DaemonConfig config;
  config.shards = 4;
  DaemonCore core(config);
  ServerThread server(core, test_server_options());

  daemon::ClientOptions client_options;
  client_options.port = server.server().tcp_port();
  client_options.client_id = "replay-test";
  daemon::DaemonClient client(client_options);
  client.connect();
  EXPECT_EQ(client.hello().algorithm, "FirstFit");
  EXPECT_EQ(client.hello().num_shards, 4u);

  const std::vector<StreamEvent> events = stream_events(items);
  EXPECT_EQ(client.replay(events), events.size());
  EXPECT_EQ(client.finish(), batch_digest(items, "FirstFit", 4));

  const std::string metrics = client.metrics();
  EXPECT_NE(metrics.find("mutdbp_daemon_admitted_total"), std::string::npos);
  client.shutdown();
}

TEST(DaemonServer, FaultShimDropDuplicateReorderStillBitIdentical) {
  // The seeded shim drops, duplicates, and reorders admitted requests on
  // the server's ingest path; the client's retry/idempotency machinery must
  // reconverge to the exact batch packing anyway.
  workload::RandomWorkloadSpec spec;
  spec.num_items = 300;
  spec.seed = 5;
  spec.duration_max = 6.0;
  const ItemList items = workload::generate(spec);

  DaemonConfig config;
  config.shards = 2;
  config.shim.seed = 99;
  config.shim.drop = 0.04;
  config.shim.duplicate = 0.04;
  config.shim.reorder = 0.04;
  config.shim.bound_k = 3;
  DaemonCore core(config);
  ServerThread server(core, test_server_options());

  daemon::ClientOptions client_options;
  client_options.port = server.server().tcp_port();
  client_options.client_id = "shim-test";
  client_options.window = 16;
  client_options.timeout = std::chrono::milliseconds(300);
  daemon::DaemonClient client(client_options);
  client.connect();
  const std::vector<StreamEvent> events = stream_events(items);
  EXPECT_EQ(client.replay(events), events.size());
  EXPECT_EQ(client.finish(), batch_digest(items, "FirstFit", 2));

  // The shim's faults must be visible in the daemon's own counters: a drop
  // forces a resend (suppressed duplicate or out-of-order rewind).
  const auto snapshot = core.telemetry().metrics().snapshot();
  const auto* duplicates =
      snapshot.find_counter("mutdbp_daemon_duplicate_suppressed_total");
  const auto* out_of_order =
      snapshot.find_counter("mutdbp_daemon_out_of_order_total");
  ASSERT_NE(duplicates, nullptr);
  ASSERT_NE(out_of_order, nullptr);
  EXPECT_GT(duplicates->value + out_of_order->value, 0u);
}

TEST(DaemonServer, MalformedBytesGetNackedAndConnectionCloses) {
  DaemonConfig config;
  DaemonCore core(config);
  ServerThread server(core, test_server_options());

  // Raw socket speaking garbage: expect one kMalformed response, then EOF.
  daemon::ClientOptions options;
  options.port = server.server().tcp_port();
  options.client_id = "raw";
  daemon::DaemonClient probe(options);
  probe.connect();  // sanity: the daemon is accepting

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.server().tcp_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[] = "this is definitely not a MUTDBPC1 frame at all....";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);

  daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
  bool nacked = false;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;  // EOF after the nack: connection closed
    assembler.feed(reinterpret_cast<const std::uint8_t*>(buffer),
                   static_cast<std::size_t>(got));
    while (const auto payload = assembler.next()) {
      const WireResponse response = daemon::decode_response(*payload);
      EXPECT_EQ(response.type, ResponseType::kMalformed);
      nacked = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(nacked);

  // The daemon survived: the healthy client still works.
  EXPECT_EQ(probe.stats().type, ResponseType::kStats);
}

// ---------------------------------------------------------------------------
// chaos: kill -9 the real daemon mid-replay, restart with --restore

/// Spawns the real mutdbpd binary (fork+exec via posix_spawn — never an
/// in-process fork: TSan forbids running on after fork in a threaded
/// process). crash_after > 0 plants the deterministic kill point.
[[nodiscard]] pid_t spawn_daemon(const std::vector<std::string>& args,
                                 std::uint64_t crash_after) {
  std::vector<std::string> storage;
  storage.push_back(MUTDBP_DAEMON_BIN);
  storage.insert(storage.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(storage.size() + 1);
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** env = environ; *env != nullptr; ++env) {
    if (std::string_view(*env).rfind("MUTDBP_CRASH_AFTER_EVENTS=", 0) == 0) {
      continue;
    }
    env_storage.emplace_back(*env);
  }
  if (crash_after > 0) {
    env_storage.push_back("MUTDBP_CRASH_AFTER_EVENTS=" +
                          std::to_string(crash_after));
  }
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& env : env_storage) envp.push_back(env.data());
  envp.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, MUTDBP_DAEMON_BIN, nullptr, nullptr, argv.data(),
                    envp.data());
  EXPECT_EQ(rc, 0) << "posix_spawn(" << MUTDBP_DAEMON_BIN << ") failed";
  return rc == 0 ? pid : -1;
}

TEST(DaemonChaos, Kill9RecoveryIsBitIdenticalToUninterruptedRun) {
  const ItemList items = demo_items();
  const std::vector<StreamEvent> events = stream_events(items);
  testing::ScopedTempDir temp;
  const std::string socket_path = temp.file("mutdbpd.sock").string();
  const std::string checkpoint = temp.file("mutdbpd.ckpt").string();
  const std::vector<std::string> daemon_args = {
      "--socket=" + socket_path,
      "--shards=4",
      "--checkpoint=" + checkpoint,
      "--checkpoint-every-events=50",
      "--poll-interval-ms=2",
      "--announce=0",
      "--restore=1",  // tolerant of a missing file on the very first boot
  };

  // Deterministic chaos schedule: the daemon aborts (no cleanup, exactly
  // like kill -9) after applying N events — mid-replay, twice — then runs
  // to completion. Each restart restores the latest checkpoint. Note the
  // budget also counts events re-applied during restore, so each kill
  // point must exceed the previous checkpoint's event count.
  const std::uint64_t kill_points[] = {events.size() / 3,
                                       (2 * events.size()) / 3, 0};

  std::thread client_thread;
  ResultDigest digest;
  std::string client_error;
  client_thread = std::thread([&] {
    try {
      daemon::ClientOptions options;
      options.unix_socket = socket_path;
      options.client_id = "chaos";
      options.window = 32;
      options.timeout = std::chrono::milliseconds(500);
      options.max_attempts = 120;  // restarts happen under this client
      daemon::DaemonClient client(options);
      client.replay(events);
      digest = client.finish();
      client.shutdown();
    } catch (const std::exception& error) {
      client_error = error.what();
    }
  });

  for (const std::uint64_t kill_point : kill_points) {
    const pid_t pid = spawn_daemon(daemon_args, kill_point);
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (kill_point == 0) {
      // The final run must have drained gracefully after the client's
      // shutdown request.
      EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
      EXPECT_EQ(WEXITSTATUS(status), 0);
    } else {
      EXPECT_TRUE(WIFSIGNALED(status))
          << "daemon was expected to die at the kill point";
      // The flight recorder defaults to <checkpoint>.flight; a crash must
      // leave a parseable postmortem dump whose records stop at the crash
      // point. Admission runs ahead of the crash budget (which counts shard
      // applies) by at most the client's in-flight window (32).
      const std::string flight = checkpoint + ".flight";
      ASSERT_TRUE(std::filesystem::exists(flight))
          << "no postmortem flight dump at " << flight;
      const telemetry::FlightDump dump = telemetry::read_flight_dump(flight);
      ASSERT_FALSE(dump.records.empty());
      std::uint64_t max_admitted = 0;
      for (const telemetry::FlightRecord& record : dump.records) {
        if (record.kind ==
            static_cast<std::uint32_t>(telemetry::FlightKind::kAdmission)) {
          max_admitted = std::max(max_admitted, record.a);
        }
      }
      EXPECT_GT(max_admitted, 0u)
          << "a mid-replay crash must have recorded admissions";
      EXPECT_LE(max_admitted, kill_point + 64)
          << "flight records claim admissions past the crash point";
    }
  }
  client_thread.join();

  ASSERT_TRUE(client_error.empty()) << client_error;
  EXPECT_EQ(digest, batch_digest(items, "FirstFit", 4))
      << "crash-recovered packing diverges from the uninterrupted batch run";
}

}  // namespace
}  // namespace mutdbp
