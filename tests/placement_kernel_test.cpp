// Differential property tests for the O(log m) placement kernel: every
// kernelized algorithm, driven through the incremental hook path, must
// produce bit-identical packings to the same rule forced onto the legacy
// snapshot-scan path via the WithSnapshots<> adapter. The corpus mixes
// random workloads (several size distributions, simultaneous-arrival
// batches, dyadic epsilon-boundary instances run with fit_epsilon 0) with
// the adversarial families from workload/adversarial.h.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/hybrid_first_fit.h"
#include "algorithms/next_fit.h"
#include "core/simulation.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace mutdbp {
namespace {

using workload::ArrivalProcess;
using workload::DurationDistribution;
using workload::RandomWorkloadSpec;
using workload::SizeDistribution;

using AlgorithmFactory = std::function<std::unique_ptr<PackingAlgorithm>()>;

struct KernelCase {
  std::string label;
  /// Makes the kernel-path instance (needs_snapshots() == false).
  std::function<std::unique_ptr<PackingAlgorithm>(double eps)> kernel;
  /// Makes the identical rule forced onto the legacy snapshot path.
  std::function<std::unique_ptr<PackingAlgorithm>(double eps)> legacy;
};

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  cases.push_back({"FirstFit",
                   [](double e) { return std::make_unique<FirstFit>(e); },
                   [](double e) { return std::make_unique<WithSnapshots<FirstFit>>(e); }});
  cases.push_back({"BestFit",
                   [](double e) { return std::make_unique<BestFit>(e); },
                   [](double e) { return std::make_unique<WithSnapshots<BestFit>>(e); }});
  cases.push_back({"WorstFit",
                   [](double e) { return std::make_unique<WorstFit>(e); },
                   [](double e) { return std::make_unique<WithSnapshots<WorstFit>>(e); }});
  cases.push_back({"LastFit",
                   [](double e) { return std::make_unique<LastFit>(e); },
                   [](double e) { return std::make_unique<WithSnapshots<LastFit>>(e); }});
  cases.push_back({"NextFit",
                   [](double e) { return std::make_unique<NextFit>(e); },
                   [](double e) { return std::make_unique<WithSnapshots<NextFit>>(e); }});
  const std::vector<double> boundaries{1.0 / 3.0, 0.5, 1.0};
  cases.push_back(
      {"HybridFirstFit",
       [boundaries](double e) { return std::make_unique<HybridFirstFit>(boundaries, e); },
       [boundaries](double e) {
         return std::make_unique<WithSnapshots<HybridFirstFit>>(boundaries, e);
       }});
  return cases;
}

/// One random instance of the differential corpus: the item list plus the
/// fit epsilon it must be run with (0 for the dyadic boundary family).
struct CorpusInstance {
  std::string label;
  ItemList items;
  double fit_epsilon = kDefaultFitEpsilon;
};

std::vector<CorpusInstance> build_corpus() {
  std::vector<CorpusInstance> corpus;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const double mu : {1.0, 2.5, 6.0, 12.0}) {
      RandomWorkloadSpec base;
      base.num_items = 120;
      base.seed = seed * 1000 + static_cast<std::uint64_t>(mu * 10);
      base.arrival_rate = 2.0;
      base.duration_min = 1.0;
      base.duration_max = mu;
      const std::string suffix =
          "_mu" + std::to_string(static_cast<int>(mu * 10)) + "_s" + std::to_string(seed);

      RandomWorkloadSpec uniform = base;
      uniform.size_min = 0.02;
      uniform.size_max = 1.0;
      corpus.push_back({"uniform" + suffix, workload::generate(uniform)});

      RandomWorkloadSpec bimodal = base;
      bimodal.size_dist = SizeDistribution::kBimodal;
      bimodal.duration_dist = DurationDistribution::kBimodal;
      corpus.push_back({"bimodal" + suffix, workload::generate(bimodal)});

      // Many small items per bin: deep bins stress level bookkeeping.
      RandomWorkloadSpec small = base;
      small.size_min = 0.01;
      small.size_max = 0.2;
      corpus.push_back({"small" + suffix, workload::generate(small)});

      // Simultaneous arrivals stress tie-breaking at equal timestamps.
      RandomWorkloadSpec batched = base;
      batched.arrivals = ArrivalProcess::kBatched;
      batched.batch_size = 6;
      corpus.push_back({"batched" + suffix, workload::generate(batched)});

      // Dyadic sizes that fill bins *exactly*, run with fit_epsilon 0: a
      // single rounding difference between the kernel and the snapshot scan
      // would flip these boundary fits.
      RandomWorkloadSpec dyadic = base;
      dyadic.size_dist = SizeDistribution::kDiscrete;
      dyadic.size_choices = {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1.0};
      corpus.push_back({"dyadic" + suffix, workload::generate(dyadic), 0.0});
    }
  }
  return corpus;  // 10 seeds x 4 mus x 5 families = 200 instances
}

const std::vector<CorpusInstance>& corpus() {
  static const std::vector<CorpusInstance> instances = build_corpus();
  return instances;
}

/// Runs one rule down both paths and requires bit-identical packings.
void expect_paths_identical(const KernelCase& algo, const ItemList& items,
                            double fit_epsilon, const std::string& context) {
  const auto kernel = algo.kernel(fit_epsilon);
  const auto legacy = algo.legacy(fit_epsilon);
  ASSERT_FALSE(kernel->needs_snapshots()) << algo.label;
  ASSERT_TRUE(legacy->needs_snapshots()) << algo.label;

  SimulationOptions options;
  options.fit_epsilon = fit_epsilon;
  const PackingResult kernel_result = simulate(items, *kernel, options);
  const PackingResult legacy_result = simulate(items, *legacy, options);

  ASSERT_EQ(kernel_result.bins_opened(), legacy_result.bins_opened())
      << algo.label << " on " << context;
  // Exact equality, not near-equality: both paths must make the same
  // placement decisions, so the costs are the same doubles.
  ASSERT_EQ(kernel_result.total_usage_time(), legacy_result.total_usage_time())
      << algo.label << " on " << context;
  ASSERT_EQ(kernel_result.assignment(), legacy_result.assignment())
      << algo.label << " on " << context;
}

class PlacementKernel : public ::testing::TestWithParam<KernelCase> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PlacementKernel,
                         ::testing::ValuesIn(kernel_cases()),
                         [](const auto& param_info) { return param_info.param.label; });

TEST_P(PlacementKernel, MatchesSnapshotPathOnRandomCorpus) {
  ASSERT_GE(corpus().size(), 200u);
  for (const CorpusInstance& instance : corpus()) {
    expect_paths_identical(GetParam(), instance.items, instance.fit_epsilon,
                           instance.label);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(PlacementKernel, MatchesSnapshotPathOnAdversarialFamilies) {
  const auto next_fit_lb = workload::next_fit_lower_bound_instance(8, 6.0);
  const auto pinning = workload::any_fit_pinning_instance(24, 6.0);
  const auto decoy = workload::best_fit_decoy_instance(8, 12.0);
  expect_paths_identical(GetParam(), next_fit_lb.items,
                         next_fit_lb.recommended_fit_epsilon, "next_fit_lower_bound");
  expect_paths_identical(GetParam(), pinning.items, pinning.recommended_fit_epsilon,
                         "any_fit_pinning");
  expect_paths_identical(GetParam(), decoy.items, decoy.recommended_fit_epsilon,
                         "best_fit_decoy");
}

TEST_P(PlacementKernel, ReusableAcrossSimulateCalls) {
  // simulate() calls reset(); a single instance must give identical results
  // when reused, including after having been attached to a previous run.
  const auto algo = GetParam().kernel(kDefaultFitEpsilon);
  const CorpusInstance& instance = corpus().front();
  const PackingResult first = simulate(instance.items, *algo);
  const PackingResult second = simulate(instance.items, *algo);
  EXPECT_EQ(first.bins_opened(), second.bins_opened());
  EXPECT_EQ(first.total_usage_time(), second.total_usage_time());
  EXPECT_EQ(first.assignment(), second.assignment());
}

}  // namespace
}  // namespace mutdbp
