#include "analysis/subperiods.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "algorithms/any_fit.h"
#include "core/simulation.h"
#include "test_support.h"

namespace mutdbp::analysis {
namespace {

// Scenario B: bin 0 holds a large long item; bin 1 holds a medium item plus
// small visitors. Durations: min 2, max 10 -> µ = 5, window = 10.
ItemList scenario_b() {
  return ItemList({
      make_item(1, 0.8, 0.0, 10.0),  // bin 0 (large)
      make_item(2, 0.5, 0.0, 10.0),  // bin 1 (large: threshold is strict <)
      make_item(3, 0.3, 1.0, 3.0),   // small -> bin 1
      make_item(4, 0.3, 4.0, 6.0),   // small -> bin 1
  });
}

TEST(Subperiods, ScenarioBStructure) {
  FirstFit ff;
  const ItemList items = scenario_b();
  const PackingResult result = simulate(items, ff);
  ASSERT_EQ(result.bins_opened(), 2u);
  ASSERT_EQ(result.bin_of(3), 1u);
  ASSERT_EQ(result.bin_of(4), 1u);

  const SubperiodAnalysis analysis(items, result);
  EXPECT_DOUBLE_EQ(analysis.window(), 10.0);       // max duration
  EXPECT_DOUBLE_EQ(analysis.small_threshold_abs(), 0.5);

  const auto& per_bin = analysis.per_bin();
  ASSERT_EQ(per_bin.size(), 2u);
  // Bin 0 has V_0 empty: no subperiods at all.
  EXPECT_TRUE(per_bin[0].subperiods.empty());

  // Bin 1: V_1 = [0,10). First small arrival at t=1 triggers termination
  // condition (i) immediately (1 >= 10 - 10): selected = {item 3}.
  const auto& bin1 = per_bin[1];
  ASSERT_EQ(bin1.selected.size(), 1u);
  EXPECT_EQ(bin1.selected[0], 3u);
  ASSERT_EQ(bin1.subperiods.size(), 2u);
  EXPECT_EQ(bin1.subperiods[0].kind, SubperiodKind::kHigh);
  EXPECT_EQ(bin1.subperiods[0].period, (Interval{0.0, 1.0}));
  EXPECT_EQ(bin1.subperiods[1].kind, SubperiodKind::kLow);
  EXPECT_EQ(bin1.subperiods[1].period, (Interval{1.0, 10.0}));
  EXPECT_EQ(bin1.subperiods[1].selected_item, 3u);
}

// Scripted long-lived two-bin scenario. Bin 0 is a chain of 0.5 items kept
// alive on [0, 12.5), so E_1 covers all of bin 1's life and V_1 is bin 1's
// whole usage period [0.5, 9.7). Bin 1 is a chain of LARGE (0.5) items with
// sliver overlaps near 2.49/4.48/6.47/8.46 plus small (0.1) visitors, which
// must avoid the overlap slivers (level would exceed 1 there).
// Max duration 2, min duration 1 -> µ = 2, window = 2.
struct ScriptedScenario {
  ItemList items;
  PackingResult result;
};

ScriptedScenario long_v_scenario(std::vector<Item> smalls) {
  std::vector<Item> v;
  std::unordered_map<ItemId, ItemId> join;
  // Bin 0 chain: ids 0..7, 0.5 each, [1.5i, 1.5i + 2).
  for (ItemId i = 0; i <= 7; ++i) {
    v.push_back(make_item(i, 0.5, 1.5 * static_cast<double>(i),
                          1.5 * static_cast<double>(i) + 2.0));
    if (i > 0) join[i] = 0;
  }
  // Bin 1 chain: ids 20..24, large 0.5 items with 0.01 overlaps.
  v.push_back(make_item(20, 0.5, 0.5, 2.5));
  v.push_back(make_item(21, 0.5, 2.49, 4.49));
  v.push_back(make_item(22, 0.5, 4.48, 6.48));
  v.push_back(make_item(23, 0.5, 6.47, 8.47));
  v.push_back(make_item(24, 0.5, 8.46, 9.7));
  for (ItemId i = 21; i <= 24; ++i) join[i] = 20;
  for (const auto& s : smalls) {
    v.push_back(s);
    join[s.id] = 20;  // all smalls live in bin 1
  }
  ItemList items(std::move(v));
  mutdbp::testing::ScriptedPlacement scripted(std::move(join));
  PackingResult result = simulate(items, scripted);
  return {std::move(items), std::move(result)};
}

TEST(Subperiods, SelectionPicksLastSmallInsideWindow) {
  // Bin 1 smalls (size 0.1) arrive at 1.0, 1.3, 2.55, 5.0. Window after
  // t=1.0: (1,3] -> last is 2.55 (not 1.3); window after 2.55: (2.55,4.55]
  // -> empty -> first small beyond: 5.0; 5.0 is the last small, so stop.
  auto scenario = long_v_scenario({
      make_item(100, 0.1, 1.0, 2.0),
      make_item(101, 0.1, 1.3, 2.3),
      make_item(102, 0.1, 2.55, 3.55),
      make_item(103, 0.1, 5.0, 6.0),
  });
  ASSERT_DOUBLE_EQ(scenario.items.mu(), 2.0);
  const SubperiodAnalysis analysis(scenario.items, scenario.result);
  ASSERT_DOUBLE_EQ(analysis.window(), 2.0);
  const auto& bin1 = analysis.per_bin()[1];
  // V_1 is the whole of bin 1's usage [0.5, 9.7) (E_1 = bin 0 close = 12.5).
  EXPECT_EQ(bin1.v, (Interval{0.5, 9.7}));
  ASSERT_EQ(bin1.selected.size(), 3u);
  EXPECT_EQ(bin1.selected[0], 100u);
  EXPECT_EQ(bin1.selected[1], 102u);  // last inside (1, 3], not 101
  EXPECT_EQ(bin1.selected[2], 103u);
}

TEST(Subperiods, NoSmallItemsMeansOneHighSubperiod) {
  const ItemList items({make_item(1, 0.9, 0.0, 4.0),    // bin 0
                        make_item(2, 0.9, 1.0, 3.0)});  // bin 1, V=[1,3)
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const SubperiodAnalysis analysis(items, result);
  const auto& bin1 = analysis.per_bin()[1];
  ASSERT_EQ(bin1.subperiods.size(), 1u);
  EXPECT_EQ(bin1.subperiods[0].kind, SubperiodKind::kHigh);
  EXPECT_EQ(bin1.subperiods[0].period, (Interval{1.0, 3.0}));
}

TEST(Subperiods, PeriodLongerThanWindowSplitsIntoLAndH) {
  // One small item at t=0.6 and nothing after it: x_1 = [0.6, 9.7) is far
  // longer than the window (2), so it splits into l [0.6, 2.6) + h.
  auto scenario = long_v_scenario({make_item(100, 0.1, 0.6, 1.6)});
  const SubperiodAnalysis analysis(scenario.items, scenario.result);
  const auto& bin1 = analysis.per_bin()[1];
  ASSERT_EQ(bin1.subperiods.size(), 3u);
  EXPECT_EQ(bin1.subperiods[0].kind, SubperiodKind::kHigh);
  EXPECT_EQ(bin1.subperiods[0].period, (Interval{0.5, 0.6}));
  EXPECT_EQ(bin1.subperiods[1].kind, SubperiodKind::kLow);
  EXPECT_DOUBLE_EQ(bin1.subperiods[1].period.left, 0.6);
  EXPECT_NEAR(bin1.subperiods[1].period.right, 2.6, 1e-12);  // 0.6 + window
  EXPECT_EQ(bin1.subperiods[1].selected_item, 100u);
  EXPECT_EQ(bin1.subperiods[2].kind, SubperiodKind::kHigh);
  EXPECT_NEAR(bin1.subperiods[2].period.left, 2.6, 1e-12);
  EXPECT_DOUBLE_EQ(bin1.subperiods[2].period.right, 9.7);
}

TEST(Subperiods, Proposition6NoSmallItemInHighSubperiods) {
  auto scenario = long_v_scenario({
      make_item(100, 0.1, 0.6, 1.6),
      make_item(101, 0.1, 1.1, 2.4),
      make_item(102, 0.1, 6.6, 7.6),
  });
  const SubperiodAnalysis analysis(scenario.items, scenario.result);
  const double small_abs = analysis.small_threshold_abs();
  for (const auto& sp : analysis.all_h_subperiods()) {
    const auto& record = scenario.result.bins()[sp.bin];
    for (const auto& placed : record.items) {
      if (placed.size < small_abs) {
        EXPECT_FALSE(placed.active.overlaps(sp.period))
            << "small item " << placed.item << " active during h-subperiod "
            << to_string(sp.period);
      }
    }
    // Therefore the bin level is at least 1/2 throughout (Prop 6).
    EXPECT_GE(record.timeline.min_over(sp.period), 0.5 - 1e-9);
  }
}

TEST(Subperiods, Proposition4SelectedItemAtLeftEndpoint) {
  FirstFit ff;
  const ItemList items = scenario_b();
  const PackingResult result = simulate(items, ff);
  const SubperiodAnalysis analysis(items, result);
  for (const auto& sp : analysis.all_l_subperiods()) {
    EXPECT_GT(sp.selected_size, 0.0);
    EXPECT_LT(sp.selected_size, analysis.small_threshold_abs());
  }
}

TEST(Subperiods, SubperiodsTileEachV) {
  FirstFit ff;
  const ItemList items = scenario_b();
  const PackingResult result = simulate(items, ff);
  const SubperiodAnalysis analysis(items, result);
  for (const auto& bin : analysis.per_bin()) {
    if (bin.v.empty()) continue;
    Time cursor = bin.v.left;
    Time covered = 0.0;
    for (const auto& sp : bin.subperiods) {
      EXPECT_DOUBLE_EQ(sp.period.left, cursor);
      cursor = sp.period.right;
      covered += sp.period.length();
    }
    EXPECT_DOUBLE_EQ(cursor, bin.v.right);
    EXPECT_NEAR(covered, bin.v.length(), 1e-9);
  }
}

TEST(Subperiods, CustomConfigOverridesWindowAndThreshold) {
  FirstFit ff;
  const ItemList items = scenario_b();
  const PackingResult result = simulate(items, ff);
  SubperiodConfig config;
  config.small_threshold = 0.25;  // now nothing in bin 1 is small
  config.window = 3.0;
  const SubperiodAnalysis analysis(items, result, config);
  EXPECT_DOUBLE_EQ(analysis.window(), 3.0);
  const auto& bin1 = analysis.per_bin()[1];
  ASSERT_EQ(bin1.subperiods.size(), 1u);  // all high: no small items
  EXPECT_EQ(bin1.subperiods[0].kind, SubperiodKind::kHigh);
}

}  // namespace
}  // namespace mutdbp::analysis
