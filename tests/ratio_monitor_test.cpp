// RatioMonitor tests: the accumulator's known-value bounds, the tentpole
// bit-for-bit guarantee (incremental monitor == batch opt:: sweep) on
// random, adversarial, and streaming-with-restore runs, the Theorem 1
// envelope on the adversarial families, gauge publication, the bounded
// sampler, and the finished-run archive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "core/simulation.h"
#include "core/streaming.h"
#include "opt/lower_bounds.h"
#include "telemetry/ratio_monitor.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace mutdbp::telemetry {
namespace {

ItemList demo_items() {
  // Same fixture as tests/opt_integral_test.cpp: 0.6 over [0,2) and 0.6
  // over [1,3) — prop1 2.4, span 3, ceiling 4 (two bins where load > 1).
  return ItemList({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.6, 1.0, 3.0)});
}

void feed_schedule(LowerBoundAccumulator& acc, const ItemList& items) {
  for (const ScheduledEvent& event : items.schedule()) {
    acc.advance_to(event.t);
    if (event.is_arrival) {
      acc.apply_arrival(event.size);
    } else {
      acc.apply_departure(event.size);
    }
  }
}

TEST(LowerBoundAccumulator, KnownValuesOnTheDemoFixture) {
  LowerBoundAccumulator acc(1.0);
  feed_schedule(acc, demo_items());
  EXPECT_DOUBLE_EQ(acc.prop1(), 2.4);
  EXPECT_DOUBLE_EQ(acc.prop2(), 3.0);
  EXPECT_DOUBLE_EQ(acc.load_ceiling(), 4.0);
  EXPECT_DOUBLE_EQ(acc.combined(), 4.0);
  EXPECT_EQ(acc.active(), 0u);
  EXPECT_DOUBLE_EQ(acc.load(), 0.0);
}

TEST(LowerBoundAccumulator, IdleGapsContributeNothing) {
  LowerBoundAccumulator acc(1.0);
  acc.advance_to(0.0);
  acc.apply_arrival(0.5);
  acc.advance_to(1.0);
  acc.apply_departure(0.5);
  // A long idle stretch, then a second burst.
  acc.advance_to(100.0);
  acc.apply_arrival(0.25);
  acc.advance_to(101.0);
  acc.apply_departure(0.25);
  EXPECT_DOUBLE_EQ(acc.prop2(), 2.0);
  EXPECT_DOUBLE_EQ(acc.prop1(), 0.75);
  EXPECT_DOUBLE_EQ(acc.load_ceiling(), 2.0);  // one bin during each burst
}

TEST(LowerBoundAccumulator, ResetClearsEverything) {
  LowerBoundAccumulator acc(2.0);
  acc.advance_to(0.0);
  acc.apply_arrival(1.0);
  acc.advance_to(5.0);
  acc.apply_departure(1.0);
  EXPECT_GT(acc.combined(), 0.0);
  acc.reset(1.0);
  EXPECT_DOUBLE_EQ(acc.combined(), 0.0);
  EXPECT_DOUBLE_EQ(acc.capacity(), 1.0);
  EXPECT_EQ(acc.active(), 0u);
}

// ---- the tentpole guarantee: incremental == batch, bit for bit ------

void expect_monitor_matches_batch(const Telemetry& telemetry,
                                  const ItemList& items, double usage,
                                  const std::string& label) {
  const RatioRunState state = telemetry.monitor().current();
  ASSERT_TRUE(state.finished) << label;
  // Exact double equality is the contract, not a tolerance: both sides run
  // the identical FP ops in the identical canonical event order.
  ASSERT_EQ(state.lb_prop1, opt::prop1_time_space_bound(items)) << label;
  ASSERT_EQ(state.lb_prop2, opt::prop2_span_bound(items)) << label;
  ASSERT_EQ(state.lb_load_ceiling, opt::load_ceiling_bound(items)) << label;
  ASSERT_EQ(state.lower_bound, opt::combined_lower_bound(items)) << label;
  ASSERT_NEAR(state.usage, usage, 1e-9 * std::max(1.0, usage)) << label;
}

TEST(RatioMonitor, FinalBoundsMatchBatchBitForBitOnRandomRuns) {
  Rng rng(0x4A7105);
  for (const std::string& name : algorithm_names()) {
    for (int trial = 0; trial < 4; ++trial) {
      workload::RandomWorkloadSpec spec;
      spec.num_items = 50 + static_cast<std::size_t>(rng.uniform_u64(0, 250));
      spec.seed = rng.uniform_u64(1, 1u << 30);
      spec.arrival_rate = 1.0 + 3.0 * rng.next_double();
      spec.duration_max = 2.0 + 6.0 * rng.next_double();
      const ItemList items = workload::generate(spec);

      Telemetry telemetry;
      SimulationOptions options;
      options.telemetry = &telemetry;
      const auto algorithm = make_algorithm(name);
      const PackingResult result = simulate(items, *algorithm, options);
      expect_monitor_matches_batch(telemetry, items, result.total_usage_time(),
                                   name + " trial " + std::to_string(trial));
      // simulate() reported the list's µ; the envelope gauge must be live.
      const RatioRunState state = telemetry.monitor().current();
      EXPECT_EQ(state.mu_reference, items.mu());
      EXPECT_FALSE(std::isnan(state.bound_gap_mu_plus_4()));
    }
  }
}

TEST(RatioMonitor, AdversarialFamiliesStayInsideTheoremOneEnvelope) {
  struct Family {
    std::string name;
    workload::AdversarialInstance instance;
  };
  const double mu = 10.0;
  std::vector<Family> families;
  families.push_back({"next_fit", workload::next_fit_lower_bound_instance(24, mu)});
  families.push_back({"pinning", workload::any_fit_pinning_instance(40, mu)});
  // Decoy rounds are capped by 1.5*(rounds-1) + 0.5 < mu: 7 rounds at mu 10.
  families.push_back({"decoy", workload::best_fit_decoy_instance(7, mu)});

  for (const Family& family : families) {
    Telemetry telemetry;
    SimulationOptions options;
    options.telemetry = &telemetry;
    options.fit_epsilon = family.instance.recommended_fit_epsilon;
    const auto algorithm =
        make_algorithm("FirstFit", 1, family.instance.recommended_fit_epsilon);
    const PackingResult result = simulate(family.instance.items, *algorithm, options);
    expect_monitor_matches_batch(telemetry, family.instance.items,
                                 result.total_usage_time(), family.name);

    // Theorem 1: once past warm-up, First Fit never exceeds (µ+4)·LB.
    const RatioRunState state = telemetry.monitor().current();
    const double list_mu = family.instance.items.mu();
    EXPECT_LE(state.peak_ratio, list_mu + 4.0) << family.name;
    EXPECT_GE(state.bound_gap_mu_plus_4(), 0.0) << family.name;
  }
}

TEST(RatioMonitor, SurvivesStreamingCheckpointRestore) {
  Rng rng(0xC4EC);
  for (int trial = 0; trial < 6; ++trial) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 80 + static_cast<std::size_t>(rng.uniform_u64(0, 120));
    spec.seed = rng.uniform_u64(1, 1u << 30);
    const ItemList items = workload::generate(spec);
    const auto& schedule = items.schedule();
    const std::size_t cut = rng.uniform_u64(1, schedule.size() - 1);

    Telemetry telemetry;
    const auto algo = make_algorithm("FirstFit");
    StreamingOptions options;
    options.capacity = items.capacity();
    options.telemetry = &telemetry;
    auto stream = std::make_unique<StreamingSimulation>(*algo, options);

    std::unique_ptr<PackingAlgorithm> restored_algo;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const ScheduledEvent& event = schedule[i];
      if (event.is_arrival) {
        stream->push_arrival(event.id, event.size, event.t);
      } else {
        stream->push_departure(event.id, event.t);
      }
      stream->flush();
      if (i == cut) {
        // Restore re-creates the engine and replays the applied log, which
        // rebinds the monitor and rebuilds its state from time zero — the
        // monitor "survives" the cut by deterministic reconstruction.
        std::ostringstream out(std::ios::binary);
        stream->snapshot(out);
        std::istringstream in(out.str(), std::ios::binary);
        restored_algo = make_algorithm("FirstFit");
        stream = std::make_unique<StreamingSimulation>(
            StreamingSimulation::restore(in, *restored_algo, &telemetry));
      }
    }
    const PackingResult result = stream->finish();
    expect_monitor_matches_batch(telemetry, items, result.total_usage_time(),
                                 "restore trial " + std::to_string(trial));
  }
}

// ---- gauges, sampler, archive ---------------------------------------

TEST(RatioMonitor, PublishesGaugesThroughTheRegistry) {
  Telemetry telemetry;
  const ItemList items = demo_items();
  SimulationOptions options;
  options.telemetry = &telemetry;
  const auto algorithm = make_algorithm("FirstFit");
  (void)simulate(items, *algorithm, options);

  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  const RatioRunState state = telemetry.monitor().current();
  for (const char* name : {"mutdbp_ratio_current", "mutdbp_lb_prop1",
                           "mutdbp_lb_prop2", "mutdbp_lb_load_ceiling",
                           "mutdbp_bound_gap_mu_plus_4"}) {
    ASSERT_NE(snap.find_gauge(name), nullptr) << name;
  }
  EXPECT_EQ(snap.find_gauge("mutdbp_ratio_current")->value, state.ratio);
  EXPECT_EQ(snap.find_gauge("mutdbp_lb_prop1")->value, state.lb_prop1);
  EXPECT_EQ(snap.find_gauge("mutdbp_lb_prop2")->value, state.lb_prop2);
  EXPECT_EQ(snap.find_gauge("mutdbp_lb_load_ceiling")->value,
            state.lb_load_ceiling);
  EXPECT_EQ(snap.find_gauge("mutdbp_bound_gap_mu_plus_4")->value,
            state.bound_gap_mu_plus_4());
}

TEST(RatioMonitor, GapGaugeIsNaNWithoutAReferenceMu) {
  Telemetry telemetry;
  RatioMonitor& monitor = telemetry.monitor();
  monitor.begin_run(&telemetry, "manual", 1.0);
  monitor.on_arrival(&telemetry, 0.5, 0.0, 1);
  monitor.on_departure(&telemetry, 0.5, 2.0);
  EXPECT_TRUE(std::isnan(monitor.current().bound_gap_mu_plus_4()));
  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_TRUE(std::isnan(snap.find_gauge("mutdbp_bound_gap_mu_plus_4")->value));

  monitor.set_reference_mu(&telemetry, 4.0);
  EXPECT_FALSE(std::isnan(monitor.current().bound_gap_mu_plus_4()));
}

TEST(RatioMonitor, EventsFromOtherOwnersAreIgnored) {
  Telemetry telemetry;
  RatioMonitor& monitor = telemetry.monitor();
  int bound_run = 0, stranger = 0;
  monitor.begin_run(&bound_run, "bound", 1.0);
  monitor.on_arrival(&bound_run, 0.5, 0.0, 1);
  monitor.on_arrival(&stranger, 0.9, 0.0, 7);  // must not perturb the run
  monitor.set_reference_mu(&stranger, 99.0);
  const RatioRunState state = monitor.current();
  EXPECT_EQ(state.events, 1u);
  EXPECT_EQ(state.mu_reference, 0.0);
  monitor.finish_run(&stranger, 5.0);
  EXPECT_FALSE(monitor.current().finished);
}

TEST(RatioMonitor, SamplerStaysBoundedAndTimeOrdered) {
  Telemetry telemetry;
  RatioMonitor& monitor = telemetry.monitor();
  monitor.set_sample_capacity(64);
  monitor.begin_run(&telemetry, "sampler", 1.0);
  // Alternating arrivals/departures: thousands of events through a 64-slot
  // sampler must decimate, not grow.
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    monitor.on_arrival(&telemetry, 0.5, t, 1);
    t += 0.5;
    monitor.on_departure(&telemetry, 0.5, t);
    t += 0.5;
  }
  monitor.finish_run(&telemetry, t);

  const std::vector<RatioSample> samples = monitor.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), 64u + 1);  // +1: the retained final sample
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t, samples[i].t);
    EXPECT_LE(samples[i - 1].usage, samples[i].usage + 1e-12);
  }
  // The final state is always retained.
  const RatioRunState state = monitor.current();
  EXPECT_EQ(samples.back().t, state.now);
  EXPECT_EQ(samples.back().usage, state.usage);
}

TEST(RatioMonitor, ArchivesOneSummaryPerFinishedRun) {
  Telemetry telemetry;
  SimulationOptions options;
  options.telemetry = &telemetry;
  const ItemList items = demo_items();
  for (const char* name : {"FirstFit", "NextFit"}) {
    const auto algorithm = make_algorithm(name);
    (void)simulate(items, *algorithm, options);
  }
  const std::vector<RatioRunSummary> runs = telemetry.monitor().completed_runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].algorithm, "FirstFit");
  EXPECT_EQ(runs[1].algorithm, "NextFit");
  for (const RatioRunSummary& run : runs) {
    EXPECT_EQ(run.lower_bound, opt::combined_lower_bound(items));
    EXPECT_GT(run.ratio, 0.0);
    EXPECT_EQ(run.events, 2 * items.size());
    EXPECT_EQ(run.mu_reference, items.mu());
  }
  EXPECT_EQ(telemetry.monitor().runs_dropped(), 0u);
}

TEST(RatioMonitor, WarmupGatesPeakRatioTracking) {
  Telemetry telemetry;
  RatioMonitor& monitor = telemetry.monitor();
  monitor.set_warmup_lb(10.0);
  EXPECT_DOUBLE_EQ(monitor.warmup_lb(), 10.0);
  monitor.begin_run(&telemetry, "warmup", 1.0);
  // A short spiky prefix: LB stays below 10, so no peak is recorded even
  // though the instantaneous ratio is large.
  monitor.on_arrival(&telemetry, 0.1, 0.0, 3);
  monitor.on_departure(&telemetry, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(monitor.current().peak_ratio, 0.0);
  // Push the LB past warm-up; now the peak engages.
  monitor.on_arrival(&telemetry, 0.9, 1.0, 3);
  monitor.on_departure(&telemetry, 0.9, 30.0);
  EXPECT_GT(monitor.current().peak_ratio, 0.0);
  monitor.set_warmup_lb(1.0);  // restore the default for later tests
}

}  // namespace
}  // namespace mutdbp::telemetry
