#include "algorithms/classified_next_fit.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simulation.h"

namespace mutdbp {
namespace {

TEST(ClassifiedNextFit, RoutesClassesToSeparateBins) {
  ClassifiedNextFit cnf({0.5, 1.0});
  // Small (0.2) and large (0.7) both fit together, but classes separate.
  const ItemList items({make_item(1, 0.2, 0.0, 10.0), make_item(2, 0.7, 0.0, 10.0),
                        make_item(3, 0.2, 0.0, 10.0)});
  const PackingResult result = simulate(items, cnf);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(3), 0u);  // the small class's available bin
  EXPECT_EQ(result.bin_of(2), 1u);
}

TEST(ClassifiedNextFit, NextFitSemanticsWithinClass) {
  ClassifiedNextFit cnf({0.5, 1.0});
  const ItemList items({
      make_item(1, 0.4, 0.0, 10.0),  // small class bin 0
      make_item(2, 0.4, 0.0, 10.0),  // fits bin 0 (0.8)
      make_item(3, 0.4, 0.0, 10.0),  // does not fit: bin 0 retired, bin 1
      make_item(4, 0.1, 0.0, 10.0),  // bin 1 (bin 0 never available again)
  });
  const PackingResult result = simulate(items, cnf);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(2), 0u);
  EXPECT_EQ(result.bin_of(3), 1u);
  EXPECT_EQ(result.bin_of(4), 1u);  // plain NextFit within the class
}

TEST(ClassifiedNextFit, ClassBinClosureForcesFreshBin) {
  ClassifiedNextFit cnf({0.5, 1.0});
  const ItemList items({make_item(1, 0.3, 0.0, 1.0),     // small bin closes at 1
                        make_item(2, 0.3, 2.0, 3.0)});   // new small bin
  const PackingResult result = simulate(items, cnf);
  EXPECT_EQ(result.bins_opened(), 2u);
}

TEST(ClassifiedNextFit, InterleavedClassesKeepIndependentAvailability) {
  ClassifiedNextFit cnf({0.5, 1.0});
  const ItemList items({
      make_item(1, 0.4, 0.0, 10.0),  // small -> bin 0
      make_item(2, 0.6, 0.0, 10.0),  // large -> bin 1
      make_item(3, 0.4, 0.0, 10.0),  // small -> bin 0 (still available)
      make_item(4, 0.3, 0.0, 10.0),  // small: 1.1 > 1 -> bin 2
      make_item(5, 0.4, 0.0, 10.0),  // large? no: small -> bin 2 (0.7)
  });
  const PackingResult result = simulate(items, cnf);
  EXPECT_EQ(result.bin_of(2), 1u);
  EXPECT_EQ(result.bin_of(3), 0u);
  EXPECT_EQ(result.bin_of(4), 2u);
  EXPECT_EQ(result.bin_of(5), 2u);
}

TEST(ClassifiedNextFit, RejectsBadBoundariesAndOversizedItems) {
  EXPECT_THROW(ClassifiedNextFit(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(ClassifiedNextFit({0.5, 0.5}), std::invalid_argument);
  ClassifiedNextFit half({0.5});
  EXPECT_THROW((void)half.classify(0.7), std::invalid_argument);
}

TEST(HarmonicBoundaries, ProducesHarmonicSequence) {
  const auto b4 = harmonic_boundaries(4);
  ASSERT_EQ(b4.size(), 4u);
  EXPECT_DOUBLE_EQ(b4[0], 0.25);
  EXPECT_DOUBLE_EQ(b4[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(b4[2], 0.5);
  EXPECT_DOUBLE_EQ(b4[3], 1.0);
  const auto b1 = harmonic_boundaries(1);
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_DOUBLE_EQ(b1[0], 1.0);
  // Scales with capacity.
  EXPECT_DOUBLE_EQ(harmonic_boundaries(2, 8.0)[0], 4.0);
  EXPECT_THROW((void)harmonic_boundaries(0), std::invalid_argument);
}

TEST(HarmonicBoundaries, HarmonicClassification) {
  // Items in (1/(c+1), 1/c] share a class.
  ClassifiedNextFit harmonic(harmonic_boundaries(4), kDefaultFitEpsilon, "Harmonic4");
  EXPECT_EQ(harmonic.name(), "Harmonic4");
  EXPECT_EQ(harmonic.classify(0.2), 0u);    // <= 1/4
  EXPECT_EQ(harmonic.classify(0.25), 0u);
  EXPECT_EQ(harmonic.classify(0.3), 1u);    // (1/4, 1/3]
  EXPECT_EQ(harmonic.classify(0.5), 2u);    // (1/3, 1/2]
  EXPECT_EQ(harmonic.classify(0.9), 3u);    // (1/2, 1]
}

TEST(ClassifiedNextFit, ResetClearsAvailability) {
  ClassifiedNextFit cnf({0.5, 1.0});
  const ItemList items({make_item(1, 0.4, 0.0, 10.0), make_item(2, 0.4, 0.0, 10.0)});
  const PackingResult first = simulate(items, cnf);
  const PackingResult second = simulate(items, cnf);  // simulate() resets
  EXPECT_EQ(first.bins_opened(), second.bins_opened());
}

}  // namespace
}  // namespace mutdbp
