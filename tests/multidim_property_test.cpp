// Parameterized sweeps for the DVBP track, mirroring the scalar property
// suite: structural invariants (every item placed once, capacity never
// exceeded), the Any Fit property for the vector Any Fit family, lower
// bounds below every algorithm's usage, fit-predicate monotonicity, and
// bit-level determinism — across dimensionality × demand correlation ×
// seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "multidim/md_algorithms.h"
#include "multidim/md_workload.h"

namespace mutdbp::md {
namespace {

struct MDSweepCase {
  std::string label;
  MDWorkloadSpec spec;
};

std::vector<MDSweepCase> md_cases() {
  std::vector<MDSweepCase> cases;
  for (const std::size_t dims : {1u, 2u, 3u}) {
    for (const double correlation : {1.0, 0.0, -1.0}) {
      if (dims == 1 && correlation != 1.0) continue;
      for (const std::uint64_t seed : {5ull, 6ull}) {
        MDWorkloadSpec spec;
        spec.num_items = 150;
        spec.dimensions = dims;
        spec.correlation = correlation;
        spec.seed = seed;
        spec.duration_max = 5.0;
        const int corr_label = static_cast<int>(correlation * 10.0);
        cases.push_back({"d" + std::to_string(dims) + "_c" +
                             (corr_label < 0 ? "m" + std::to_string(-corr_label)
                                             : std::to_string(corr_label)) +
                             "_s" + std::to_string(seed),
                         spec});
      }
    }
  }
  return cases;
}

class MDSweep : public ::testing::TestWithParam<MDSweepCase> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, MDSweep, ::testing::ValuesIn(md_cases()),
                         [](const auto& param_info) { return param_info.param.label; });

TEST_P(MDSweep, EveryItemPlacedOnce) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    std::size_t placed = 0;
    for (const auto& bin : result.bins) placed += bin.items.size();
    EXPECT_EQ(placed, items.size()) << name;
  }
}

TEST_P(MDSweep, UsageAtLeastSpanAndLoadCeiling) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    EXPECT_GE(result.total_usage_time(), items.span() - 1e-6) << name;
    EXPECT_GE(result.total_usage_time(), items.load_ceiling_bound() - 1e-6) << name;
  }
}

TEST_P(MDSweep, EveryLowerBoundBelowEveryAlgorithmsUsage) {
  // The point of the vector Prop 1 / Prop 2 / load-ceiling generalizations:
  // each is a certified lower bound on OPT_total, so every online
  // algorithm's usage must sit at or above all three — on every workload.
  const MDItemList items = generate_md(GetParam().spec);
  const MDLowerBounds bounds = md_lower_bounds(items);
  EXPECT_GE(bounds.prop1, 0.0);
  EXPECT_GE(bounds.prop2, 0.0);
  EXPECT_GE(bounds.load_ceiling, bounds.prop1 - 1e-9);  // ceiling dominates load
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    EXPECT_GE(result.total_usage_time(), bounds.combined() - 1e-6) << name;
  }
}

TEST_P(MDSweep, AnyFitPropertyForVectorAnyFitFamily) {
  const MDItemList items = generate_md(GetParam().spec);
  // The vector Any Fit family (and the scoring rules built on it) opens a
  // new bin only when the arriving vector fits no open bin. Verify by
  // reconstructing every other bin's level vector at each opening instant.
  for (const auto& name : {"VectorFirstFit", "VectorBestFit", "DotProduct"}) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    for (const auto& bin : result.bins) {
      const MDPlacementRecord& opener = bin.items.front();
      const Time t = opener.active.left;
      for (const auto& other : result.bins) {
        if (other.index == bin.index || !other.usage.contains(t)) continue;
        if (other.usage.left == t) continue;  // opened at the same instant
        // The other bin's level just before the opener was placed: every
        // member active at t, except same-instant arrivals at or after the
        // opener in id order (they were not yet placed).
        std::vector<double> level(items.dimensions(), 0.0);
        for (const MDPlacementRecord& member : other.items) {
          if (!member.active.contains(t)) continue;
          if (member.active.left == t && member.item >= opener.item) continue;
          for (std::size_t d = 0; d < level.size(); ++d) {
            level[d] += member.demand[d];
          }
        }
        bool fits_everywhere = true;
        for (std::size_t d = 0; d < level.size(); ++d) {
          if (level[d] + opener.demand[d] > items.capacity()[d] + 1e-12) {
            fits_everywhere = false;
          }
        }
        EXPECT_FALSE(fits_everywhere)
            << name << ": bin " << bin.index << " opened although bin "
            << other.index << " had room";
      }
    }
  }
}

TEST_P(MDSweep, FitPredicateIsMonotoneInDemand) {
  // md_fits is per-dimension and monotone: shrinking any demand component
  // never turns a fit into a non-fit. Checked over every bin snapshot the
  // workload's own placements produce.
  const MDItemList items = generate_md(GetParam().spec);
  const auto algo = make_md_algorithm("VectorFirstFit");
  const MDPackingResult result = md_simulate(items, *algo);
  for (const auto& bin : result.bins) {
    MDBinSnapshot snapshot;
    snapshot.index = bin.index;
    snapshot.capacity = items.capacity();
    snapshot.level.assign(items.dimensions(), 0.0);
    for (const auto& member : bin.items) {
      for (std::size_t d = 0; d < snapshot.level.size(); ++d) {
        snapshot.level[d] += 0.5 * member.demand[d];
      }
    }
    for (const auto& probe : items) {
      if (!md_fits(snapshot, probe.demand)) continue;
      std::vector<double> smaller = probe.demand;
      for (double& x : smaller) x *= 0.5;
      EXPECT_TRUE(md_fits(snapshot, smaller))
          << "shrinking the demand broke a fit in bin " << bin.index;
    }
  }
}

TEST_P(MDSweep, DeterministicToTheBit) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto a1 = make_md_algorithm(name);
    const auto a2 = make_md_algorithm(name);
    const MDPackingResult r1 = md_simulate(items, *a1);
    const MDPackingResult r2 = md_simulate(items, *a2);
    EXPECT_EQ(md_packing_digest(r1), md_packing_digest(r2)) << name;
    EXPECT_EQ(r1.bins_opened(), r2.bins_opened()) << name;
  }
}

}  // namespace
}  // namespace mutdbp::md
