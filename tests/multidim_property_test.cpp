// Parameterized sweeps for the multi-dimensional extension, mirroring the
// scalar property suite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "multidim/md_algorithms.h"
#include "multidim/md_workload.h"

namespace mutdbp::md {
namespace {

struct MDSweepCase {
  std::string label;
  MDWorkloadSpec spec;
};

std::vector<MDSweepCase> md_cases() {
  std::vector<MDSweepCase> cases;
  for (const std::size_t dims : {1u, 2u, 3u}) {
    for (const double correlation : {1.0, 0.0, -1.0}) {
      if (dims == 1 && correlation != 1.0) continue;
      for (const std::uint64_t seed : {5ull, 6ull}) {
        MDWorkloadSpec spec;
        spec.num_items = 150;
        spec.dimensions = dims;
        spec.correlation = correlation;
        spec.seed = seed;
        spec.duration_max = 5.0;
        const int corr_label = static_cast<int>(correlation * 10.0);
        cases.push_back({"d" + std::to_string(dims) + "_c" +
                             (corr_label < 0 ? "m" + std::to_string(-corr_label)
                                             : std::to_string(corr_label)) +
                             "_s" + std::to_string(seed),
                         spec});
      }
    }
  }
  return cases;
}

class MDSweep : public ::testing::TestWithParam<MDSweepCase> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, MDSweep, ::testing::ValuesIn(md_cases()),
                         [](const auto& param_info) { return param_info.param.label; });

TEST_P(MDSweep, EveryItemPlacedOnce) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    std::size_t placed = 0;
    for (const auto& bin : result.bins) placed += bin.items.size();
    EXPECT_EQ(placed, items.size()) << name;
  }
}

TEST_P(MDSweep, UsageAtLeastSpanAndLoadCeiling) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    EXPECT_GE(result.total_usage_time(), items.span() - 1e-6) << name;
    EXPECT_GE(result.total_usage_time(), items.load_ceiling_bound() - 1e-6) << name;
  }
}

TEST_P(MDSweep, AnyFitPropertyForMDAnyFitFamily) {
  const MDItemList items = generate_md(GetParam().spec);
  // MDFirstFit/MDBestFit/MDDotProduct derive from MDAnyFit: a new bin means
  // nothing fit. Verify by replaying levels at each opening.
  for (const auto& name : {"MDFirstFit", "MDBestFit", "MDDotProduct"}) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(items, *algo);
    // For each bin's opening item, every other bin open at that instant
    // must have lacked room in some dimension.
    for (const auto& bin : result.bins) {
      const ItemId opener = bin.items.front();
      const MDItem* opener_item = nullptr;
      for (const auto& item : items) {
        if (item.id == opener) opener_item = &item;
      }
      ASSERT_NE(opener_item, nullptr);
      const Time t = opener_item->arrival();
      for (const auto& other : result.bins) {
        if (other.index == bin.index || !other.usage.contains(t)) continue;
        if (other.usage.left == t) continue;  // opened at the same instant
        // Reconstruct the other bin's level just before t.
        std::vector<double> level(items.dimensions(), 0.0);
        for (const ItemId member : other.items) {
          for (const auto& item : items) {
            if (item.id != member) continue;
            if (item.active.contains(t) &&
                !(item.arrival() == t && item.id >= opener)) {
              for (std::size_t d = 0; d < level.size(); ++d) {
                level[d] += item.demand[d];
              }
            }
          }
        }
        bool fits_everywhere = true;
        for (std::size_t d = 0; d < level.size(); ++d) {
          if (level[d] + opener_item->demand[d] > items.capacity()[d] + 1e-12) {
            fits_everywhere = false;
          }
        }
        EXPECT_FALSE(fits_everywhere)
            << name << ": bin " << bin.index << " opened although bin "
            << other.index << " had room";
      }
    }
  }
}

TEST_P(MDSweep, Deterministic) {
  const MDItemList items = generate_md(GetParam().spec);
  for (const auto& name : md_algorithm_names()) {
    const auto a1 = make_md_algorithm(name);
    const auto a2 = make_md_algorithm(name);
    const MDPackingResult r1 = md_simulate(items, *a1);
    const MDPackingResult r2 = md_simulate(items, *a2);
    EXPECT_DOUBLE_EQ(r1.total_usage_time(), r2.total_usage_time()) << name;
    EXPECT_EQ(r1.bins_opened(), r2.bins_opened()) << name;
  }
}

}  // namespace
}  // namespace mutdbp::md
