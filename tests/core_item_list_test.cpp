#include "core/item_list.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mutdbp {
namespace {

ItemList three_items() {
  // Figure 1 style: r1 [0,2), r2 [1,3), r3 [5,7).
  return ItemList({make_item(1, 0.5, 0.0, 2.0), make_item(2, 0.25, 1.0, 3.0),
                   make_item(3, 0.75, 5.0, 7.0)});
}

TEST(Item, DerivedQuantities) {
  const Item r = make_item(7, 0.4, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(r.arrival(), 2.0);
  EXPECT_DOUBLE_EQ(r.departure(), 5.0);
  EXPECT_DOUBLE_EQ(r.duration(), 3.0);
  EXPECT_DOUBLE_EQ(r.time_space_demand(), 1.2);
  EXPECT_TRUE(r.active_at(2.0));
  EXPECT_TRUE(r.active_at(4.999));
  EXPECT_FALSE(r.active_at(5.0));
  EXPECT_FALSE(r.active_at(1.999));
}

TEST(ItemList, ValidatesSizes) {
  EXPECT_THROW(ItemList({make_item(1, 0.0, 0.0, 1.0)}), std::invalid_argument);
  EXPECT_THROW(ItemList({make_item(1, -0.5, 0.0, 1.0)}), std::invalid_argument);
  EXPECT_THROW(ItemList({make_item(1, 1.5, 0.0, 1.0)}), std::invalid_argument);
  EXPECT_NO_THROW(ItemList({make_item(1, 1.0, 0.0, 1.0)}));  // size == capacity ok
}

TEST(ItemList, ValidatesDurations) {
  EXPECT_THROW(ItemList({make_item(1, 0.5, 1.0, 1.0)}), std::invalid_argument);
  EXPECT_THROW(ItemList({make_item(1, 0.5, 2.0, 1.0)}), std::invalid_argument);
}

TEST(ItemList, ValidatesAgainstCustomCapacity) {
  EXPECT_NO_THROW(ItemList({make_item(1, 3.0, 0.0, 1.0)}, 4.0));
  EXPECT_THROW(ItemList({make_item(1, 5.0, 0.0, 1.0)}, 4.0), std::invalid_argument);
  EXPECT_THROW(ItemList({}, 0.0), std::invalid_argument);
}

TEST(ItemList, PushBackValidates) {
  ItemList list;
  list.push_back(make_item(1, 0.5, 0.0, 1.0));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_THROW(list.push_back(make_item(2, 2.0, 0.0, 1.0)), std::invalid_argument);
}

TEST(ItemList, Mu) {
  EXPECT_DOUBLE_EQ(ItemList{}.mu(), 1.0);
  const ItemList list({make_item(1, 0.5, 0.0, 1.0),    // duration 1
                       make_item(2, 0.5, 0.0, 4.0),    // duration 4
                       make_item(3, 0.5, 3.0, 5.0)});  // duration 2
  EXPECT_DOUBLE_EQ(list.mu(), 4.0);
  EXPECT_DOUBLE_EQ(list.min_duration(), 1.0);
  EXPECT_DOUBLE_EQ(list.max_duration(), 4.0);
}

TEST(ItemList, SpanMergesOverlapsAndSkipsGaps) {
  const ItemList list = three_items();
  // Active on [0,3) and [5,7): span = 3 + 2 = 5.
  EXPECT_DOUBLE_EQ(list.span(), 5.0);
  const auto pieces = list.active_union().pieces();
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (Interval{0.0, 3.0}));
  EXPECT_EQ(pieces[1], (Interval{5.0, 7.0}));
}

TEST(ItemList, PackingPeriod) {
  EXPECT_TRUE(ItemList{}.packing_period().empty());
  EXPECT_EQ(three_items().packing_period(), (Interval{0.0, 7.0}));
}

TEST(ItemList, TotalTimeSpaceDemand) {
  // 0.5*2 + 0.25*2 + 0.75*2 = 3.0
  EXPECT_DOUBLE_EQ(three_items().total_time_space_demand(), 3.0);
}

TEST(ItemList, LoadAt) {
  const ItemList list = three_items();
  EXPECT_DOUBLE_EQ(list.load_at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(list.load_at(1.5), 0.75);
  EXPECT_DOUBLE_EQ(list.load_at(2.5), 0.25);
  EXPECT_DOUBLE_EQ(list.load_at(4.0), 0.0);
  EXPECT_DOUBLE_EQ(list.load_at(5.0), 0.75);
}

TEST(ItemList, SortedByArrivalBreaksTiesById) {
  const ItemList list({make_item(5, 0.1, 1.0, 2.0), make_item(2, 0.1, 1.0, 2.0),
                       make_item(9, 0.1, 0.5, 2.0)});
  const auto sorted = list.sorted_by_arrival();
  EXPECT_EQ(sorted[0].id, 9u);
  EXPECT_EQ(sorted[1].id, 2u);
  EXPECT_EQ(sorted[2].id, 5u);
}

TEST(ItemList, EventTimesSortedDeduplicated) {
  const ItemList list({make_item(1, 0.5, 0.0, 2.0), make_item(2, 0.5, 2.0, 4.0)});
  const auto times = list.event_times();
  ASSERT_EQ(times.size(), 3u);  // 0, 2 (dedup), 4
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
}

}  // namespace
}  // namespace mutdbp
