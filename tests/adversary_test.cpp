#include "adversary/stranding.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "algorithms/any_fit.h"
#include "algorithms/baselines.h"
#include "opt/lower_bounds.h"
#include "opt/opt_integral.h"

namespace mutdbp::adversary {
namespace {

TEST(Stranding, RealizedItemsAreValid) {
  StrandingSpec spec;
  spec.num_items = 100;
  spec.mu = 6.0;
  FirstFit ff;
  const GameResult game = play_stranding(ff, spec);
  ASSERT_EQ(game.items.size(), 100u);
  for (const auto& item : game.items) {
    EXPECT_GE(item.duration(), 1.0 - 1e-9);
    EXPECT_LE(item.duration(), spec.mu + 1e-9);
  }
  // The realized µ never exceeds the spec µ.
  EXPECT_LE(game.items.mu(), spec.mu + 1e-9);
}

TEST(Stranding, DepartsSharedItemsAtMinimumDuration) {
  StrandingSpec spec;
  spec.num_items = 80;
  spec.mu = 8.0;
  FirstFit ff;
  const GameResult game = play_stranding(ff, spec);
  // Every item either leaves at duration exactly 1 (it shared a bin at its
  // decision point) or exactly mu (it was stranded alone).
  for (const auto& item : game.items) {
    const bool min_dur = std::abs(item.duration() - 1.0) < 1e-9;
    const bool max_dur = std::abs(item.duration() - spec.mu) < 1e-9;
    EXPECT_TRUE(min_dur || max_dur) << "duration " << item.duration();
  }
}

TEST(Stranding, PinsEveryBinOfFirstFit) {
  StrandingSpec spec;
  spec.num_items = 120;
  spec.mu = 10.0;
  FirstFit ff;
  const GameResult game = play_stranding(ff, spec);
  // Each bin's last item was alone -> pinned for mu: the bin's usage is at
  // least mu long... unless the bin's only items departed shared. At least
  // the cost must clearly exceed the volume-based lower bound.
  const double lb = opt::combined_lower_bound(game.items);
  EXPECT_GT(game.algorithm_cost(), lb);
}

TEST(Stranding, AdaptivityBeatsObliviousDurations) {
  // The adaptive game must achieve a worse (larger) ratio against First Fit
  // than the same arrival/size stream with every duration forced to 1.
  StrandingSpec spec;
  spec.num_items = 150;
  spec.mu = 12.0;
  FirstFit ff;
  const GameResult game = play_stranding(ff, spec);
  const double adaptive_ratio =
      game.algorithm_cost() / opt::combined_lower_bound(game.items);

  std::vector<Item> oblivious;
  for (const auto& item : game.items) {
    oblivious.push_back(
        make_item(item.id, item.size, item.arrival(), item.arrival() + 1.0));
  }
  const ItemList oblivious_items(std::move(oblivious));
  FirstFit ff2;
  const PackingResult oblivious_result = simulate(oblivious_items, ff2);
  const double oblivious_ratio = oblivious_result.total_usage_time() /
                                 opt::combined_lower_bound(oblivious_items);
  EXPECT_GT(adaptive_ratio, oblivious_ratio);
}

TEST(Stranding, DeterministicPerSeed) {
  StrandingSpec spec;
  spec.num_items = 60;
  FirstFit a;
  FirstFit b;
  const GameResult g1 = play_stranding(a, spec);
  const GameResult g2 = play_stranding(b, spec);
  EXPECT_DOUBLE_EQ(g1.algorithm_cost(), g2.algorithm_cost());
  ASSERT_EQ(g1.items.size(), g2.items.size());
  for (std::size_t i = 0; i < g1.items.size(); ++i) {
    EXPECT_EQ(g1.items[i], g2.items[i]);
  }
}

TEST(Stranding, WorksAgainstEveryAlgorithmShape) {
  StrandingSpec spec;
  spec.num_items = 60;
  BestFit bf;
  WorstFit wf;
  NewBinPerItem nb;
  for (PackingAlgorithm* algo :
       std::initializer_list<PackingAlgorithm*>{&bf, &wf, &nb}) {
    const GameResult game = play_stranding(*algo, spec);
    EXPECT_EQ(game.items.size(), 60u) << algo->name();
    EXPECT_GT(game.algorithm_cost(), 0.0) << algo->name();
    // Consistency: the packing's cost is the sum of its bins' usage.
    EXPECT_DOUBLE_EQ(game.algorithm_cost(), game.packing.total_usage_time());
  }
}

TEST(Stranding, ValidatesSpec) {
  FirstFit ff;
  StrandingSpec spec;
  spec.mu = 0.5;
  EXPECT_THROW((void)play_stranding(ff, spec), std::invalid_argument);
  spec = {};
  spec.size_min = 0.0;
  EXPECT_THROW((void)play_stranding(ff, spec), std::invalid_argument);
  spec = {};
  spec.inter_arrival = 0.0;
  EXPECT_THROW((void)play_stranding(ff, spec), std::invalid_argument);
}

}  // namespace
}  // namespace mutdbp::adversary
