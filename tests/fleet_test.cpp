#include "cloud/fleet.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/cluster.h"

namespace mutdbp::cloud {
namespace {

FleetOptions two_type_fleet() {
  FleetOptions options;
  options.types = {
      {"small", 1.0, BillingPolicy{1.0, 1.0}},
      {"large", 4.0, BillingPolicy{1.0, 3.0}},  // 3x price for 4x capacity
  };
  return options;
}

TEST(Fleet, RoutesToSmallestFittingType) {
  FleetDispatcher fleet(two_type_fleet());
  const FleetServerId a = fleet.submit(1, 0.5, 0.0);
  EXPECT_EQ(a.type, 0u);  // fits the small type
  const FleetServerId b = fleet.submit(2, 2.5, 0.0);
  EXPECT_EQ(b.type, 1u);  // only the large type fits
  fleet.complete(1, 1.0);
  fleet.complete(2, 1.0);
}

TEST(Fleet, CheapestPerCapacityRouting) {
  FleetOptions options = two_type_fleet();
  options.routing = RoutingPolicy::kCheapestPerCapacity;
  FleetDispatcher fleet(options);
  // large: 3/4 = 0.75 per capacity unit beats small: 1/1.
  const FleetServerId a = fleet.submit(1, 0.5, 0.0);
  EXPECT_EQ(a.type, 1u);
  fleet.complete(1, 1.0);
}

TEST(Fleet, TypesPackIndependently) {
  FleetDispatcher fleet(two_type_fleet());
  // Two 0.6 jobs: each fits the small type but not together in one server.
  const FleetServerId a = fleet.submit(1, 0.6, 0.0);
  const FleetServerId b = fleet.submit(2, 0.6, 0.0);
  EXPECT_EQ(a.type, 0u);
  EXPECT_EQ(b.type, 0u);
  EXPECT_NE(a.server, b.server);
  // A large job opens a server of the other type; indices are per type.
  const FleetServerId c = fleet.submit(3, 3.0, 0.0);
  EXPECT_EQ(c.type, 1u);
  EXPECT_EQ(c.server, 0u);
  EXPECT_EQ(fleet.rented_servers(), 3u);
  EXPECT_EQ(fleet.running_jobs(), 3u);
  fleet.complete(1, 2.0);
  fleet.complete(2, 2.0);
  fleet.complete(3, 2.0);
}

TEST(Fleet, ReportAggregatesPerTypeBilling) {
  FleetDispatcher fleet(two_type_fleet());
  fleet.submit(1, 0.5, 0.0);
  fleet.submit(2, 3.0, 0.0);
  fleet.complete(1, 1.5);   // small: 1.5h -> billed 2h * 1.0
  fleet.complete(2, 0.5);   // large: 0.5h -> billed 1h * 3.0
  const auto report = fleet.finish();
  ASSERT_EQ(report.per_type.size(), 2u);
  EXPECT_EQ(report.per_type[0].type_name, "small");
  EXPECT_DOUBLE_EQ(report.per_type[0].billing.total_cost, 2.0);
  EXPECT_DOUBLE_EQ(report.per_type[1].billing.total_cost, 3.0);
  EXPECT_DOUBLE_EQ(report.total_cost(), 5.0);
  EXPECT_DOUBLE_EQ(report.total_usage(), 2.0);
  EXPECT_EQ(report.servers_used(), 2u);
}

TEST(Fleet, RejectsOversizedJobsAndUnknownCompletions) {
  FleetDispatcher fleet(two_type_fleet());
  EXPECT_THROW((void)fleet.submit(1, 5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fleet.complete(99, 1.0), std::invalid_argument);
}

TEST(Fleet, ValidatesOptions) {
  FleetOptions empty;
  EXPECT_THROW(FleetDispatcher{empty}, std::invalid_argument);
  FleetOptions bad = two_type_fleet();
  bad.types[0].capacity = 0.0;
  EXPECT_THROW(FleetDispatcher{bad}, std::invalid_argument);
  FleetOptions bogus = two_type_fleet();
  bogus.algorithm = "MagicFit";
  EXPECT_THROW(FleetDispatcher{bogus}, std::invalid_argument);
}

TEST(Fleet, HandlesClusterWorkloadEndToEnd) {
  workload::ClusterWorkloadSpec spec;
  spec.num_vms = 500;
  const ItemList vms = workload::generate_cluster(spec);

  FleetOptions options;
  options.types = {
      {"quarter", 0.25, BillingPolicy{1.0, 0.3}},
      {"half", 0.5, BillingPolicy{1.0, 0.55}},
      {"full", 1.0, BillingPolicy{1.0, 1.0}},
  };
  FleetDispatcher fleet(options);

  // Drive arrivals/departures in event order.
  struct Event {
    Time t;
    bool arrival;
    const Item* vm;
  };
  std::vector<Event> events;
  for (const auto& vm : vms) {
    events.push_back({vm.arrival(), true, &vm});
    events.push_back({vm.departure(), false, &vm});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.arrival != b.arrival) return !a.arrival;
    return a.vm->id < b.vm->id;
  });
  for (const auto& event : events) {
    if (event.arrival) {
      fleet.submit(event.vm->id, event.vm->size, event.t);
    } else {
      fleet.complete(event.vm->id, event.t);
    }
  }
  const auto report = fleet.finish();
  EXPECT_EQ(report.per_type.size(), 3u);
  EXPECT_GT(report.total_cost(), 0.0);
  std::size_t placed = 0;
  for (const auto& tr : report.per_type) {
    for (const auto& bin : tr.packing.bins()) placed += bin.items.size();
  }
  EXPECT_EQ(placed, vms.size());
}

}  // namespace
}  // namespace mutdbp::cloud
