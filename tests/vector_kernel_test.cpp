// VectorCapacityTree kernel tests: every query is checked against a
// brute-force linear scan over a mirrored bin set — the tree is an index,
// never an authority, so any divergence from the scan is a kernel bug.
// The randomized sweeps churn bins (append/update/close) to exercise the
// backtracking descent, the fill-order index, and the amortized
// compaction; dedicated tests pin dims == 1 scalar-exactness and the
// documented tie-breaking rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "core/algorithm.h"
#include "core/error.h"
#include "multidim/vector_capacity_tree.h"
#include "util/rng.h"

namespace mutdbp::md {
namespace {

/// Brute-force mirror of the tree: flat level vectors plus an open flag.
class ScanModel {
 public:
  ScanModel(std::vector<double> capacity, double fit_epsilon, FitMeasure measure)
      : capacity_(std::move(capacity)),
        fit_epsilon_(fit_epsilon),
        measure_(measure) {}

  BinIndex append(std::span<const double> level) {
    bins_.emplace_back(level.begin(), level.end());
    open_.push_back(true);
    return static_cast<BinIndex>(bins_.size() - 1);
  }
  void set_levels(BinIndex bin, std::span<const double> level) {
    bins_[bin].assign(level.begin(), level.end());
  }
  void close(BinIndex bin) { open_[bin] = false; }

  [[nodiscard]] bool fits(BinIndex bin, std::span<const double> demand) const {
    if (!open_[bin]) return false;
    for (std::size_t d = 0; d < capacity_.size(); ++d) {
      if (!(bins_[bin][d] + demand[d] <= capacity_[d] + fit_epsilon_)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] double fill(BinIndex bin) const {
    const auto& level = bins_[bin];
    if (capacity_.size() == 1) return level[0];  // raw level in 1-D
    double value = 0.0;
    switch (measure_) {
      case FitMeasure::kWeightedSum:
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          value += (level[d] / capacity_[d]) /
                   static_cast<double>(capacity_.size());
        }
        break;
      case FitMeasure::kDominant:
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          value = std::max(value, level[d] / capacity_[d]);
        }
        break;
      case FitMeasure::kL2:
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          const double frac = level[d] / capacity_[d];
          value += frac * frac;
        }
        break;
    }
    return value;
  }

  [[nodiscard]] std::optional<BinIndex> first_fit(
      std::span<const double> demand) const {
    for (BinIndex bin = 0; bin < bins_.size(); ++bin) {
      if (fits(bin, demand)) return bin;
    }
    return std::nullopt;
  }
  [[nodiscard]] std::optional<BinIndex> last_fit(
      std::span<const double> demand) const {
    for (BinIndex bin = bins_.size(); bin-- > 0;) {
      if (fits(bin, demand)) return bin;
    }
    return std::nullopt;
  }
  /// Fullest fitting bin, ties to the lowest index ((fill ↑, index ↓)
  /// order scanned from the top — the documented rule).
  [[nodiscard]] std::optional<BinIndex> best_fit(
      std::span<const double> demand) const {
    std::optional<BinIndex> best;
    for (BinIndex bin = 0; bin < bins_.size(); ++bin) {
      if (!fits(bin, demand)) continue;
      if (!best || fill(bin) > fill(*best)) best = bin;
    }
    return best;
  }
  [[nodiscard]] std::optional<BinIndex> worst_fit(
      std::span<const double> demand) const {
    std::optional<BinIndex> worst;
    for (BinIndex bin = 0; bin < bins_.size(); ++bin) {
      if (!fits(bin, demand)) continue;
      if (!worst || fill(bin) < fill(*worst)) worst = bin;
    }
    return worst;
  }
  [[nodiscard]] std::vector<BinIndex> collect_fitting(
      std::span<const double> demand) const {
    std::vector<BinIndex> out;
    for (BinIndex bin = 0; bin < bins_.size(); ++bin) {
      if (fits(bin, demand)) out.push_back(bin);
    }
    return out;
  }
  [[nodiscard]] std::size_t open_count() const {
    return static_cast<std::size_t>(
        std::count(open_.begin(), open_.end(), true));
  }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] const std::vector<bool>& open() const { return open_; }

 private:
  std::vector<double> capacity_;
  double fit_epsilon_;
  FitMeasure measure_;
  std::vector<std::vector<double>> bins_;
  std::vector<bool> open_;
};

std::vector<double> random_vector(Rng& rng, std::size_t dims, double lo,
                                  double hi) {
  std::vector<double> v(dims);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Churns `rounds` random operations through tree and model in lockstep,
/// cross-checking every query against the scan after each mutation.
void churn_and_check(std::size_t dims, FitMeasure measure, std::uint64_t seed,
                     std::size_t rounds) {
  Rng rng(seed);
  const std::vector<double> capacity(dims, 1.0);
  VectorCapacityTree tree;
  tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true, measure);
  ScanModel model(capacity, kDefaultFitEpsilon, measure);

  std::vector<BinIndex> open_bins;
  std::vector<BinIndex> scratch;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t op = rng.uniform_u64(0, 9);
    if (op < 4 || open_bins.empty()) {
      const auto level = random_vector(rng, dims, 0.0, 0.9);
      const BinIndex from_tree = tree.append(level);
      const BinIndex from_model = model.append(level);
      ASSERT_EQ(from_tree, from_model);
      open_bins.push_back(from_tree);
    } else if (op < 8) {
      const BinIndex bin = open_bins[rng.index(open_bins.size())];
      const auto level = random_vector(rng, dims, 0.0, 1.0);
      tree.set_levels(bin, level);
      model.set_levels(bin, level);
    } else {
      const std::size_t pick = rng.index(open_bins.size());
      const BinIndex bin = open_bins[pick];
      tree.close(bin);
      model.close(bin);
      open_bins.erase(open_bins.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    ASSERT_EQ(tree.open_count(), model.open_count());
    const auto demand = random_vector(rng, dims, 0.05, 0.7);
    ASSERT_EQ(tree.first_fit(demand), model.first_fit(demand)) << "round " << round;
    ASSERT_EQ(tree.last_fit(demand), model.last_fit(demand)) << "round " << round;
    ASSERT_EQ(tree.best_fit(demand), model.best_fit(demand)) << "round " << round;
    ASSERT_EQ(tree.worst_fit(demand), model.worst_fit(demand)) << "round " << round;
    scratch.clear();
    tree.collect_fitting(demand, scratch);
    ASSERT_EQ(scratch, model.collect_fitting(demand)) << "round " << round;
    for (const BinIndex bin : open_bins) {
      ASSERT_DOUBLE_EQ(tree.fill_of(bin), model.fill(bin));
    }
  }
}

TEST(VectorKernel, MatchesLinearScanOneDimension) {
  churn_and_check(1, FitMeasure::kWeightedSum, 21, 400);
}

TEST(VectorKernel, MatchesLinearScanTwoDimensionsEveryMeasure) {
  churn_and_check(2, FitMeasure::kWeightedSum, 22, 400);
  churn_and_check(2, FitMeasure::kDominant, 23, 400);
  churn_and_check(2, FitMeasure::kL2, 24, 400);
}

TEST(VectorKernel, MatchesLinearScanFourDimensions) {
  churn_and_check(4, FitMeasure::kDominant, 25, 300);
}

TEST(VectorKernel, BacktrackingFindsBinBehindMisleadingMinima) {
  // Two bins arranged so the subtree minima (0.1, 0.1) pass the fit test
  // while neither bin's actual vector does in both dimensions at once —
  // except bin 2, deeper in the tree. A non-backtracking descent that
  // trusts the minima would stop early.
  VectorCapacityTree tree;
  const std::vector<double> capacity{1.0, 1.0};
  tree.begin(capacity, kDefaultFitEpsilon);
  (void)tree.append(std::vector<double>{0.1, 0.9});  // room in 0 only
  (void)tree.append(std::vector<double>{0.9, 0.1});  // room in 1 only
  const BinIndex fits_both = tree.append(std::vector<double>{0.3, 0.3});
  const std::vector<double> demand{0.5, 0.5};
  ASSERT_EQ(tree.first_fit(demand), std::optional<BinIndex>(fits_both));
  ASSERT_EQ(tree.last_fit(demand), std::optional<BinIndex>(fits_both));
  // Saturate the only fitting bin: now every leaf fails even though the
  // root minima still look feasible (0.1, 0.1).
  tree.set_levels(fits_both, std::vector<double>{0.9, 0.9});
  ASSERT_EQ(tree.first_fit(demand), std::nullopt);
  ASSERT_EQ(tree.last_fit(demand), std::nullopt);
}

TEST(VectorKernel, BestAndWorstBreakFillTiesTowardLowestIndex) {
  VectorCapacityTree tree;
  const std::vector<double> capacity{1.0, 1.0};
  tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true);
  (void)tree.append(std::vector<double>{0.4, 0.4});
  (void)tree.append(std::vector<double>{0.4, 0.4});  // identical fill
  (void)tree.append(std::vector<double>{0.4, 0.4});
  const std::vector<double> demand{0.1, 0.1};
  EXPECT_EQ(tree.best_fit(demand), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.worst_fit(demand), std::optional<BinIndex>(0));
}

TEST(VectorKernel, MeasuresDisagreeOnTheFullestBin) {
  // bin 0 is fullest under kDominant (one hot dimension), bin 1 under
  // kWeightedSum (higher average) — the pluggable measure must change the
  // best_fit answer on the same bin set.
  const std::vector<double> capacity{1.0, 1.0};
  const std::vector<double> hot{0.8, 0.1};   // dominant 0.8, mean 0.45
  const std::vector<double> even{0.5, 0.5};  // dominant 0.5, mean 0.50
  const std::vector<double> demand{0.1, 0.1};
  for (const FitMeasure measure :
       {FitMeasure::kWeightedSum, FitMeasure::kDominant}) {
    VectorCapacityTree tree;
    tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true, measure);
    (void)tree.append(hot);
    (void)tree.append(even);
    const BinIndex expected = measure == FitMeasure::kDominant ? 0 : 1;
    EXPECT_EQ(tree.best_fit(demand), std::optional<BinIndex>(expected))
        << "measure " << static_cast<int>(measure);
  }
}

TEST(VectorKernel, WeightedSumHonorsCustomWeights) {
  // With all weight on dimension 0, bin 0 (heavy in dim 0) is fuller than
  // bin 1 even though bin 1 has the higher uniform average.
  const std::vector<double> capacity{1.0, 1.0};
  const std::vector<double> weights{1.0, 0.0};
  VectorCapacityTree tree;
  tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true,
             FitMeasure::kWeightedSum, weights);
  (void)tree.append(std::vector<double>{0.6, 0.0});
  (void)tree.append(std::vector<double>{0.4, 0.9});
  const std::vector<double> demand{0.05, 0.05};
  EXPECT_EQ(tree.best_fit(demand), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.worst_fit(demand), std::optional<BinIndex>(1));
}

TEST(VectorKernel, ClosedBinsNeverComeBack) {
  VectorCapacityTree tree;
  const std::vector<double> capacity{1.0};
  tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true);
  const BinIndex a = tree.append(std::vector<double>{0.2});
  const BinIndex b = tree.append(std::vector<double>{0.3});
  tree.close(a);
  EXPECT_FALSE(tree.is_open(a));
  EXPECT_TRUE(tree.is_open(b));
  EXPECT_EQ(tree.open_count(), 1u);
  const std::vector<double> demand{0.1};
  EXPECT_EQ(tree.first_fit(demand), std::optional<BinIndex>(b));
  tree.close(b);
  EXPECT_EQ(tree.open_count(), 0u);
  EXPECT_EQ(tree.first_fit(demand), std::nullopt);
  // Indices are stable forever: the next append continues the sequence.
  const BinIndex c = tree.append(std::vector<double>{0.0});
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(tree.first_fit(demand), std::optional<BinIndex>(c));
}

TEST(VectorKernel, CompactionSurvivesMassChurn) {
  // Open and close thousands of bins with a handful alive at a time; the
  // amortized compaction must keep queries exact throughout (checked via
  // the model) and bin_count() reflects every index ever assigned.
  Rng rng(26);
  const std::vector<double> capacity{1.0, 1.0};
  VectorCapacityTree tree;
  tree.begin(capacity, kDefaultFitEpsilon, /*track_fill_order=*/true);
  ScanModel model(capacity, kDefaultFitEpsilon, FitMeasure::kWeightedSum);
  std::vector<BinIndex> open_bins;
  for (std::size_t round = 0; round < 3000; ++round) {
    if (open_bins.size() < 8) {
      const auto level = random_vector(rng, 2, 0.0, 0.8);
      const BinIndex bin = tree.append(level);
      ASSERT_EQ(bin, model.append(level));
      open_bins.push_back(bin);
    } else {
      const std::size_t pick = rng.index(open_bins.size());
      tree.close(open_bins[pick]);
      model.close(open_bins[pick]);
      open_bins.erase(open_bins.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 64 == 0) {
      const auto demand = random_vector(rng, 2, 0.05, 0.5);
      ASSERT_EQ(tree.first_fit(demand), model.first_fit(demand));
      ASSERT_EQ(tree.best_fit(demand), model.best_fit(demand));
    }
  }
  EXPECT_EQ(tree.bin_count(), model.bin_count());
  EXPECT_EQ(tree.open_count(), model.open_count());
}

TEST(VectorKernel, RejectsOperationsOnClosedBins) {
  VectorCapacityTree tree;
  const std::vector<double> capacity{1.0};
  tree.begin(capacity, kDefaultFitEpsilon);
  const BinIndex bin = tree.append(std::vector<double>{0.5});
  tree.close(bin);
  EXPECT_THROW(tree.set_levels(bin, std::vector<double>{0.1}), SimulationError);
  EXPECT_THROW(tree.close(bin), SimulationError);
  // best/worst without the fill index is a contract violation, not a miss.
  EXPECT_THROW((void)tree.best_fit(std::vector<double>{0.1}), SimulationError);
  EXPECT_THROW((void)tree.worst_fit(std::vector<double>{0.1}), SimulationError);
}

}  // namespace
}  // namespace mutdbp::md
