#include "clairvoyant/predictions.h"

#include <gtest/gtest.h>

#include "algorithms/any_fit.h"
#include "clairvoyant/clairvoyant.h"
#include "core/simulation.h"
#include "workload/generators.h"

namespace mutdbp::clairvoyant {
namespace {

ItemList bimodal_workload(std::uint64_t seed) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 250;
  spec.seed = seed;
  spec.duration_dist = workload::DurationDistribution::kBimodal;
  spec.duration_max = 12.0;
  return workload::generate(spec);
}

TEST(Predictions, ZeroNoiseIsPerfect) {
  const ItemList items = bimodal_workload(1);
  const auto predicted = predict_departures(items, PredictionModel{0.0, 1});
  for (const auto& item : items) {
    EXPECT_DOUBLE_EQ(predicted.at(item.id), item.departure());
  }
}

TEST(Predictions, DeterministicPerSeedAndItem) {
  const ItemList items = bimodal_workload(2);
  const PredictionModel model{0.5, 42};
  const auto a = predict_departures(items, model);
  const auto b = predict_departures(items, model);
  for (const auto& item : items) {
    EXPECT_DOUBLE_EQ(a.at(item.id), b.at(item.id));
    EXPECT_GT(a.at(item.id), item.arrival());  // never before arrival
  }
  const auto c = predict_departures(items, PredictionModel{0.5, 43});
  bool any_different = false;
  for (const auto& item : items) {
    if (a.at(item.id) != c.at(item.id)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Predictions, PerfectPredictionsMatchClairvoyantAlignedFit) {
  const ItemList items = bimodal_workload(3);
  const auto predicted = predict_departures(items, PredictionModel{0.0, 1});
  const PackingResult with_predictions = predicted_aligned_simulate(items, predicted);
  AlignedFit aligned;
  const PackingResult clairvoyant = clairvoyant_simulate(items, aligned);
  EXPECT_DOUBLE_EQ(with_predictions.total_usage_time(),
                   clairvoyant.total_usage_time());
  EXPECT_EQ(with_predictions.bins_opened(), clairvoyant.bins_opened());
}

TEST(Predictions, EveryItemStillPlacedAndValid) {
  const ItemList items = bimodal_workload(4);
  const auto predicted = predict_departures(items, PredictionModel{1.0, 9});
  const PackingResult result = predicted_aligned_simulate(items, predicted);
  EXPECT_EQ(result.assignment().size(), items.size());
  for (const auto& bin : result.bins()) {
    for (std::size_t i = 0; i < bin.timeline.levels.size(); ++i) {
      EXPECT_LE(bin.timeline.levels[i], items.capacity() + 1e-6);
    }
  }
}

TEST(Predictions, MildNoiseStillBeatsOnlineFirstFit) {
  double noisy_total = 0.0;
  double online_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ItemList items = bimodal_workload(seed);
    const auto predicted = predict_departures(items, PredictionModel{0.1, seed});
    noisy_total += predicted_aligned_simulate(items, predicted).total_usage_time();
    FirstFit ff;
    online_total += simulate(items, ff).total_usage_time();
  }
  EXPECT_LT(noisy_total, online_total);
}

TEST(Predictions, QualityDegradesMonotonicallyOnAverage) {
  // Aggregate over seeds: sigma 0 <= sigma 0.3 (cost), and huge noise is no
  // better than perfect.
  double perfect = 0.0;
  double mild = 0.0;
  double wild = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ItemList items = bimodal_workload(seed + 100);
    perfect += predicted_aligned_simulate(
                   items, predict_departures(items, PredictionModel{0.0, seed}))
                   .total_usage_time();
    mild += predicted_aligned_simulate(
                items, predict_departures(items, PredictionModel{0.3, seed}))
                .total_usage_time();
    wild += predicted_aligned_simulate(
                items, predict_departures(items, PredictionModel{2.0, seed}))
                .total_usage_time();
  }
  EXPECT_LE(perfect, mild + 1e-9);
  EXPECT_LE(perfect, wild + 1e-9);
}

}  // namespace
}  // namespace mutdbp::clairvoyant
