#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "algorithms/any_fit.h"
#include "cloud/billing.h"
#include "cloud/dispatcher.h"
#include "cloud/gaming.h"
#include "core/simulation.h"

namespace mutdbp::cloud {
namespace {

TEST(Billing, RoundsUpToGranularity) {
  const BillingPolicy hourly{1.0, 1.0};
  EXPECT_DOUBLE_EQ(billed_cost(0.0, hourly), 0.0);
  EXPECT_DOUBLE_EQ(billed_cost(0.1, hourly), 1.0);
  EXPECT_DOUBLE_EQ(billed_cost(1.0, hourly), 1.0);  // exact boundary: no extra hour
  EXPECT_DOUBLE_EQ(billed_cost(1.2, hourly), 2.0);
  EXPECT_DOUBLE_EQ(billed_cost(2.0000000001, hourly), 2.0);  // tolerance
}

TEST(Billing, ExactBillingWhenGranularityZero) {
  const BillingPolicy exact{0.0, 2.0};
  EXPECT_DOUBLE_EQ(billed_cost(1.3, exact), 2.6);
}

TEST(Billing, PriceScales) {
  const BillingPolicy policy{1.0, 0.25};
  EXPECT_DOUBLE_EQ(billed_cost(3.5, policy), 1.0);  // 4 hours * 0.25
}

TEST(Billing, RejectsNegativeParameters) {
  EXPECT_THROW((void)billed_cost(1.0, BillingPolicy{-1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)billed_cost(1.0, BillingPolicy{1.0, -1.0}), std::invalid_argument);
}

TEST(Billing, BillsWholePacking) {
  FirstFit ff;
  // Two bins: [0, 1.5) and [0, 0.5).
  const ItemList items({make_item(1, 0.9, 0.0, 1.5), make_item(2, 0.9, 0.0, 0.5)});
  const PackingResult result = simulate(items, ff);
  const BillingSummary summary = bill(result, BillingPolicy{1.0, 1.0});
  EXPECT_EQ(summary.servers_used, 2u);
  EXPECT_DOUBLE_EQ(summary.total_usage, 2.0);
  EXPECT_DOUBLE_EQ(summary.total_billed_time, 3.0);  // 2 + 1 hours
  EXPECT_DOUBLE_EQ(summary.total_cost, 3.0);
  EXPECT_DOUBLE_EQ(summary.rounding_overhead(), 1.5);
}

TEST(Dispatcher, EndToEndFlow) {
  FirstFit ff;
  JobDispatcher dispatcher(ff, DispatcherOptions{1.0, BillingPolicy{1.0, 0.5}, 1e-9});
  const ServerId s1 = dispatcher.submit(1, 0.6, 0.0);
  const ServerId s2 = dispatcher.submit(2, 0.6, 0.1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(dispatcher.running_jobs(), 2u);
  EXPECT_EQ(dispatcher.rented_servers(), 2u);
  EXPECT_EQ(dispatcher.server_of(1), s1);

  dispatcher.complete(1, 2.0);
  EXPECT_EQ(dispatcher.rented_servers(), 1u);
  const ServerId s3 = dispatcher.submit(3, 0.3, 2.5);
  EXPECT_EQ(s3, s2);  // joins the surviving server
  dispatcher.complete(2, 3.0);
  dispatcher.complete(3, 3.0);

  const auto report = dispatcher.finish();
  EXPECT_EQ(report.billing.servers_used, 2u);
  // Server 1: [0,2) -> 2h; server 2: [0.1,3) -> 2.9h -> 3h. Price 0.5.
  EXPECT_DOUBLE_EQ(report.billing.total_cost, (2.0 + 3.0) * 0.5);
  EXPECT_DOUBLE_EQ(report.packing.total_usage_time(), 2.0 + 2.9);
}

TEST(Dispatcher, CapacityIsEnforced) {
  FirstFit ff;
  JobDispatcher dispatcher(ff, DispatcherOptions{2.0, {}, 1e-9});
  dispatcher.submit(1, 1.5, 0.0);
  const ServerId s2 = dispatcher.submit(2, 1.0, 0.0);  // 1.5+1.0 > 2: new server
  EXPECT_EQ(s2, 1u);
  const ServerId s3 = dispatcher.submit(3, 0.5, 0.0);  // fits server 0 exactly
  EXPECT_EQ(s3, 0u);
}

TEST(Gaming, GeneratesValidSessions) {
  GamingWorkloadSpec spec;
  spec.num_sessions = 300;
  const ItemList sessions = generate_gaming_workload(spec);
  ASSERT_EQ(sessions.size(), 300u);
  std::set<double> allowed;
  for (const auto& title : spec.titles) allowed.insert(title.gpu_fraction);
  Time prev = 0.0;
  for (const auto& session : sessions) {
    EXPECT_TRUE(allowed.contains(session.size));
    EXPECT_GE(session.duration(), spec.min_session_hours - 1e-12);
    EXPECT_LE(session.duration(), spec.max_session_hours + 1e-12);
    EXPECT_GE(session.arrival(), prev);  // arrivals non-decreasing
    prev = session.arrival();
  }
}

TEST(Gaming, TitleAssignmentIsDeterministic) {
  const GamingWorkloadSpec spec;
  const ItemList sessions = generate_gaming_workload(spec);
  for (const auto& session : sessions) {
    EXPECT_DOUBLE_EQ(session.size, title_of(spec, session.id).gpu_fraction);
  }
}

TEST(Gaming, PopularTitlesAppearMoreOften) {
  GamingWorkloadSpec spec;
  spec.num_sessions = 2000;
  const ItemList sessions = generate_gaming_workload(spec);
  std::size_t light = 0;
  std::size_t heavy = 0;
  for (const auto& session : sessions) {
    if (session.size == 0.125) ++light;   // popularity 4
    if (session.size == 1.0) ++heavy;     // popularity 1
  }
  EXPECT_GT(light, 2 * heavy);
}

TEST(Gaming, ValidatesSpec) {
  GamingWorkloadSpec spec;
  spec.titles.clear();
  EXPECT_THROW((void)generate_gaming_workload(spec), std::invalid_argument);
  spec = {};
  spec.diurnal_swing = 0.5;
  EXPECT_THROW((void)generate_gaming_workload(spec), std::invalid_argument);
  spec = {};
  spec.titles[0].gpu_fraction = 1.5;
  EXPECT_THROW((void)generate_gaming_workload(spec), std::invalid_argument);
}

TEST(Gaming, SessionsPackable) {
  GamingWorkloadSpec spec;
  spec.num_sessions = 500;
  const ItemList sessions = generate_gaming_workload(spec);
  FirstFit ff;
  const PackingResult result = simulate(sessions, ff);
  EXPECT_GT(result.bins_opened(), 0u);
  EXPECT_GT(result.average_utilization(), 0.2);  // sane packing density
}

}  // namespace
}  // namespace mutdbp::cloud
