#include "opt/bin_packing.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mutdbp::opt {
namespace {

TEST(Ffd, PacksKnownInstance) {
  const std::vector<double> sizes{0.6, 0.5, 0.4, 0.3, 0.2};
  EXPECT_EQ(ffd_bin_count(sizes), 2u);  // (0.6,0.4) (0.5,0.3,0.2)
}

TEST(Ffd, EmptyInstance) { EXPECT_EQ(ffd_bin_count({}), 0u); }

TEST(Ffd, SingleFullItems) {
  const std::vector<double> sizes{1.0, 1.0, 1.0};
  EXPECT_EQ(ffd_bin_count(sizes), 3u);
}

TEST(Ffd, RespectsCustomCapacity) {
  BinPackingOptions options;
  options.capacity = 10.0;
  const std::vector<double> sizes{6.0, 5.0, 4.0, 3.0, 2.0};
  EXPECT_EQ(ffd_bin_count(sizes, options), 2u);
}

TEST(Ffd, RejectsOversizedItems) {
  EXPECT_THROW((void)ffd_bin_count(std::vector<double>{1.5}), std::invalid_argument);
  EXPECT_THROW((void)ffd_bin_count(std::vector<double>{0.0}), std::invalid_argument);
}

TEST(ContinuousLowerBound, CeilOfTotal) {
  EXPECT_EQ(continuous_lower_bound(std::vector<double>{0.5, 0.5, 0.1}), 2u);
  EXPECT_EQ(continuous_lower_bound(std::vector<double>{0.5, 0.5}), 1u);
  EXPECT_EQ(continuous_lower_bound({}), 0u);
}

TEST(ContinuousLowerBound, ToleratesRepresentationError) {
  // 3 * (1/3) must count as one bin despite 1/3 not being representable.
  const std::vector<double> sizes{1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  EXPECT_EQ(continuous_lower_bound(sizes), 1u);
}

TEST(L2LowerBound, BeatsContinuousOnAllLargeItems) {
  // Three items of 0.6: continuous bound is ceil(1.8)=2, but each needs its
  // own bin.
  const std::vector<double> sizes{0.6, 0.6, 0.6};
  EXPECT_EQ(continuous_lower_bound(sizes), 2u);
  EXPECT_EQ(l2_lower_bound(sizes), 3u);
}

TEST(L2LowerBound, MatchesContinuousWhenItemsAreSmall) {
  const std::vector<double> sizes{0.2, 0.2, 0.2, 0.2, 0.2};
  EXPECT_EQ(l2_lower_bound(sizes), 1u);
}

TEST(L2LowerBound, MixedInstance) {
  // 0.7 items pair with nothing > 0.3: {0.7,0.7} + 0.35s.
  const std::vector<double> sizes{0.7, 0.7, 0.35, 0.35};
  // alpha = 0.35: J1 = {s > 0.65} = 2 items; J2 empty; J3 = {0.35,0.35},
  // slack in J1 bins is not counted by L2 -> bound = 2 + ceil(0.7) = 3.
  EXPECT_GE(l2_lower_bound(sizes), 3u);
}

TEST(MinBinCount, SolvesSmallInstancesExactly) {
  EXPECT_EQ(min_bin_count(std::vector<double>{0.5, 0.5, 0.5, 0.5}).bins(), 2u);
  EXPECT_EQ(min_bin_count(std::vector<double>{0.6, 0.6, 0.6}).bins(), 3u);
  const std::vector<double> sizes{0.4, 0.4, 0.4, 0.3, 0.3, 0.3, 0.3};
  const BinCountResult result = min_bin_count(sizes);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.bins(), 3u);  // (.4,.3,.3) (.4,.3,.3) (.4)
  EXPECT_EQ(result.lower, result.upper);
}

TEST(MinBinCount, EmptyIsZero) {
  const BinCountResult result = min_bin_count({});
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.bins(), 0u);
}

TEST(MinBinCount, BeatsFfdWhenFfdIsSuboptimal) {
  // Classic FFD-suboptimal instance (capacity 1):
  // FFD: (0.45,0.45) (0.35,0.35,0.3)... build one where FFD wastes a bin.
  const std::vector<double> sizes{0.42, 0.42, 0.3, 0.3, 0.28, 0.28};
  // Optimal: (0.42,0.3,0.28) x2 = 2 bins. FFD: 0.42+0.42 -> bin1 (0.84),
  // 0.3+0.3+0.28 -> bin2 (0.88), 0.28 -> bin3 = 3 bins.
  EXPECT_EQ(ffd_bin_count(sizes), 3u);
  const BinCountResult result = min_bin_count(sizes);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.bins(), 2u);
}

TEST(MinBinCount, ExactFitDominanceStillOptimal) {
  const std::vector<double> sizes{0.75, 0.25, 0.75, 0.25};
  const BinCountResult result = min_bin_count(sizes);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.bins(), 2u);
}

TEST(MinBinCount, NodeBudgetFallsBackToBounds) {
  BinPackingOptions options;
  options.max_nodes = 1;  // force inexactness on a nontrivial instance
  const std::vector<double> sizes{0.42, 0.42, 0.3, 0.3, 0.28, 0.28};
  const BinCountResult result = min_bin_count(sizes, options);
  EXPECT_FALSE(result.exact);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_GE(result.lower, 2u);
  EXPECT_LE(result.upper, 3u);
}

TEST(MinBinCount, TwentyItemStress) {
  // 10 pairs summing exactly to 1 -> optimal 10 bins; FFD also finds it but
  // the solver must prove optimality.
  std::vector<double> sizes;
  for (int i = 1; i <= 10; ++i) {
    const double a = 0.5 + static_cast<double>(i) * 0.04;
    sizes.push_back(a);
    sizes.push_back(1.0 - a);
  }
  const BinCountResult result = min_bin_count(sizes);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.bins(), 10u);
}

TEST(MinBinCount, LowerNeverExceedsUpper) {
  const std::vector<double> sizes{0.9, 0.8, 0.7, 0.2, 0.15, 0.1, 0.1, 0.05};
  const BinCountResult result = min_bin_count(sizes);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_LE(result.upper, ffd_bin_count(sizes));
  EXPECT_GE(result.lower, l2_lower_bound(sizes));
}

}  // namespace
}  // namespace mutdbp::opt
