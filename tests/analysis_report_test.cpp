#include <gtest/gtest.h>

#include "algorithms/any_fit.h"
#include "algorithms/next_fit.h"
#include "analysis/ascii.h"
#include "analysis/report.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "workload/generators.h"

namespace mutdbp::analysis {
namespace {

ItemList small_items() {
  return ItemList({make_item(1, 0.6, 0.0, 4.0), make_item(2, 0.5, 1.0, 3.0),
                   make_item(3, 0.4, 2.0, 5.0)});
}

TEST(Evaluate, FieldsMatchDirectComputation) {
  const ItemList items = small_items();
  FirstFit ff;
  const Evaluation eval = evaluate(items, ff);

  FirstFit ff2;
  const PackingResult direct = simulate(items, ff2);
  EXPECT_EQ(eval.algorithm, "FirstFit");
  EXPECT_DOUBLE_EQ(eval.total_usage, direct.total_usage_time());
  EXPECT_EQ(eval.bins_opened, direct.bins_opened());
  EXPECT_EQ(eval.max_concurrent, direct.max_concurrent_bins());
  EXPECT_DOUBLE_EQ(eval.mu, items.mu());
  EXPECT_DOUBLE_EQ(eval.opt_lower, opt::combined_lower_bound(items));
  EXPECT_DOUBLE_EQ(eval.opt_upper, direct.total_usage_time());
}

TEST(Evaluate, ExactOptTightensBounds) {
  const ItemList items = small_items();
  FirstFit ff;
  EvalOptions options;
  options.exact_opt = true;
  const Evaluation eval = evaluate(items, ff);
  const Evaluation exact = evaluate(items, ff, options);
  EXPECT_GE(exact.opt_lower + 1e-12, eval.opt_lower);
  EXPECT_LE(exact.opt_upper, eval.opt_upper + 1e-12);
  EXPECT_LE(exact.ratio_lower_estimate(), exact.ratio_upper_estimate() + 1e-12);
}

TEST(Evaluate, RatioEstimatesBracketTruth) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 50;
  spec.seed = 21;
  const ItemList items = workload::generate(spec);
  NextFit nf;
  EvalOptions options;
  options.exact_opt = true;
  const Evaluation eval = evaluate(items, nf, options);
  EXPECT_GE(eval.ratio_upper_estimate() + 1e-12, eval.ratio_lower_estimate());
  EXPECT_GE(eval.ratio_lower_estimate(), 1.0 - 1e-9);  // nobody beats OPT
}

TEST(Ascii, RenderBinsShowsEveryBin) {
  const ItemList items = small_items();
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const std::string text = render_bins(items, result);
  for (std::size_t k = 1; k <= result.bins_opened(); ++k) {
    EXPECT_NE(text.find("b" + std::to_string(k)), std::string::npos);
  }
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find(')'), std::string::npos);
  EXPECT_NE(text.find("level"), std::string::npos);
}

TEST(Ascii, RenderBinsWithoutLevels) {
  const ItemList items = small_items();
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  RenderOptions options;
  options.show_levels = false;
  const std::string text = render_bins(items, result, options);
  EXPECT_EQ(text.find("level"), std::string::npos);
}

TEST(Ascii, UsageSplitMarksVAndW) {
  // One bin fully inside another: the inner bin is all 'v', the outer 'w'.
  const ItemList items({make_item(1, 0.9, 0.0, 10.0), make_item(2, 0.9, 2.0, 4.0)});
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const std::string text = render_usage_split(items, result);
  EXPECT_NE(text.find('v'), std::string::npos);
  EXPECT_NE(text.find('w'), std::string::npos);
}

}  // namespace
}  // namespace mutdbp::analysis
