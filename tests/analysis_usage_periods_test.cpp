#include "analysis/usage_periods.h"

#include <gtest/gtest.h>

#include "algorithms/any_fit.h"
#include "core/simulation.h"

namespace mutdbp::analysis {
namespace {

PackingResult pack_first_fit(const ItemList& items) {
  FirstFit ff;
  return simulate(items, ff);
}

TEST(UsagePeriods, ScenarioWithThreeBins) {
  // Bins: U1=[0,10), U2=[1,3), U3=[3,5) (see core_simulation_test).
  const ItemList items({make_item(1, 0.6, 0.0, 10.0), make_item(2, 0.5, 1.0, 3.0),
                        make_item(3, 0.4, 2.0, 4.0), make_item(4, 0.3, 3.0, 5.0)});
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  const auto& bins = decomposition.bins();
  ASSERT_EQ(bins.size(), 3u);

  // First bin: E_1 = U_1^-, V_1 empty, W_1 = U_1.
  EXPECT_DOUBLE_EQ(bins[0].e_k, 0.0);
  EXPECT_TRUE(bins[0].v.empty());
  EXPECT_EQ(bins[0].w, (Interval{0.0, 10.0}));

  // Second bin opens at 1 and closes at 3, fully before E_2 = 10.
  EXPECT_DOUBLE_EQ(bins[1].e_k, 10.0);
  EXPECT_EQ(bins[1].v, (Interval{1.0, 3.0}));
  EXPECT_TRUE(bins[1].w.empty());

  // Third bin: also entirely inside an earlier bin's usage.
  EXPECT_DOUBLE_EQ(bins[2].e_k, 10.0);
  EXPECT_EQ(bins[2].v, (Interval{3.0, 5.0}));
  EXPECT_TRUE(bins[2].w.empty());

  EXPECT_DOUBLE_EQ(decomposition.total_v(), 4.0);
  EXPECT_DOUBLE_EQ(decomposition.total_w(), 10.0);
  EXPECT_DOUBLE_EQ(decomposition.total_usage(), 14.0);
}

TEST(UsagePeriods, PartialOverlapSplitsUsage) {
  // Bin 2 opens during bin 1's life but outlives it:
  // V_2 = [1, 2), W_2 = [2, 5).
  const ItemList items({make_item(1, 0.9, 0.0, 2.0), make_item(2, 0.9, 1.0, 5.0)});
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  const auto& bins = decomposition.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[1].v, (Interval{1.0, 2.0}));
  EXPECT_EQ(bins[1].w, (Interval{2.0, 5.0}));
}

TEST(UsagePeriods, DisjointBinsAreAllW) {
  const ItemList items({make_item(1, 0.9, 0.0, 1.0), make_item(2, 0.9, 2.0, 3.0)});
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  EXPECT_TRUE(decomposition.bins()[1].v.empty());
  EXPECT_EQ(decomposition.bins()[1].w, (Interval{2.0, 3.0}));
}

TEST(UsagePeriods, EkUsesLatestClosingNotLatestOpened) {
  // Bin 1 closes late; bin 2 opens and closes early; bin 3 must take E from
  // bin 1's closing, not bin 2's.
  const ItemList items({make_item(1, 0.9, 0.0, 10.0),   // bin 0
                        make_item(2, 0.9, 1.0, 2.0),    // bin 1 [1,2)
                        make_item(3, 0.9, 3.0, 4.0)});  // bin 2 [3,4)
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  EXPECT_DOUBLE_EQ(decomposition.bins()[2].e_k, 10.0);
  EXPECT_EQ(decomposition.bins()[2].v, (Interval{3.0, 4.0}));
}

TEST(UsagePeriods, IdentityEquationOne) {
  // FF_total = Σ|V_k| + span(R)  (equation (1) of the paper).
  const ItemList items({make_item(1, 0.6, 0.0, 10.0), make_item(2, 0.5, 1.0, 3.0),
                        make_item(3, 0.4, 2.0, 4.0), make_item(4, 0.3, 3.0, 5.0),
                        make_item(5, 0.9, 12.0, 15.0)});
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  EXPECT_NEAR(result.total_usage_time(), decomposition.total_v() + items.span(), 1e-9);
  EXPECT_NEAR(decomposition.total_w(), items.span(), 1e-9);
}

TEST(UsagePeriods, WPeriodsAreDisjoint) {
  const ItemList items({make_item(1, 0.9, 0.0, 4.0), make_item(2, 0.9, 1.0, 6.0),
                        make_item(3, 0.9, 2.0, 8.0), make_item(4, 0.9, 7.0, 9.0)});
  const PackingResult result = pack_first_fit(items);
  const UsagePeriodDecomposition decomposition(result);
  IntervalSet seen;
  for (const auto& bin : decomposition.bins()) {
    if (bin.w.empty()) continue;
    EXPECT_FALSE(seen.intersects(bin.w)) << "W_k overlap at bin " << bin.index;
    seen.insert(bin.w);
  }
}

TEST(UsagePeriods, EmptyResult) {
  const UsagePeriodDecomposition decomposition{PackingResult{}};
  EXPECT_TRUE(decomposition.bins().empty());
  EXPECT_DOUBLE_EQ(decomposition.total_v(), 0.0);
}

}  // namespace
}  // namespace mutdbp::analysis
