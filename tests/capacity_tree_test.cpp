// Unit tests for the CapacityTree placement kernel: query semantics,
// tie-breaking, epsilon-boundary exactness, closing, and growth.
#include "core/capacity_tree.h"

#include <gtest/gtest.h>

#include <optional>

namespace mutdbp {
namespace {

CapacityTree make_tree(bool track_level_order = true) {
  CapacityTree tree;
  tree.begin(/*capacity=*/1.0, /*fit_epsilon=*/0.0, track_level_order);
  return tree;
}

TEST(CapacityTree, EmptyTreeAnswersNothing) {
  CapacityTree tree = make_tree();
  EXPECT_EQ(tree.first_fit(0.5), std::nullopt);
  EXPECT_EQ(tree.last_fit(0.5), std::nullopt);
  EXPECT_EQ(tree.worst_fit(0.5), std::nullopt);
  EXPECT_EQ(tree.best_fit(0.5), std::nullopt);
  EXPECT_EQ(tree.bin_count(), 0u);
  EXPECT_EQ(tree.open_count(), 0u);
}

TEST(CapacityTree, AppendAssignsSequentialIndices) {
  CapacityTree tree = make_tree();
  EXPECT_EQ(tree.append(0.3), 0u);
  EXPECT_EQ(tree.append(0.6), 1u);
  EXPECT_EQ(tree.append(0.9), 2u);
  EXPECT_EQ(tree.bin_count(), 3u);
  EXPECT_EQ(tree.open_count(), 3u);
  EXPECT_DOUBLE_EQ(tree.level(1), 0.6);
}

TEST(CapacityTree, FirstFitPicksLowestIndexedFittingBin) {
  CapacityTree tree = make_tree();
  tree.append(0.9);  // gap 0.1
  tree.append(0.5);  // gap 0.5
  tree.append(0.2);  // gap 0.8
  EXPECT_EQ(tree.first_fit(0.4), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.first_fit(0.05), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.first_fit(0.7), std::optional<BinIndex>(2));
  EXPECT_EQ(tree.first_fit(0.9), std::nullopt);
}

TEST(CapacityTree, LastFitPicksHighestIndexedFittingBin) {
  CapacityTree tree = make_tree();
  tree.append(0.2);  // gap 0.8
  tree.append(0.5);  // gap 0.5
  tree.append(0.9);  // gap 0.1
  EXPECT_EQ(tree.last_fit(0.4), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.last_fit(0.05), std::optional<BinIndex>(2));
  EXPECT_EQ(tree.last_fit(0.7), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.last_fit(0.9), std::nullopt);
}

TEST(CapacityTree, WorstFitPicksEmptiestBinOrNothing) {
  CapacityTree tree = make_tree();
  tree.append(0.5);
  tree.append(0.2);  // emptiest
  tree.append(0.8);
  EXPECT_EQ(tree.worst_fit(0.3), std::optional<BinIndex>(1));
  // If the item does not fit in the emptiest bin, it fits nowhere.
  EXPECT_EQ(tree.worst_fit(0.85), std::nullopt);
}

TEST(CapacityTree, WorstFitBreaksLevelTiesByLowestIndex) {
  CapacityTree tree = make_tree();
  tree.append(0.4);
  tree.append(0.4);
  tree.append(0.4);
  EXPECT_EQ(tree.worst_fit(0.1), std::optional<BinIndex>(0));
  tree.close(0);
  EXPECT_EQ(tree.worst_fit(0.1), std::optional<BinIndex>(1));
}

TEST(CapacityTree, BestFitPicksFullestFittingBin) {
  CapacityTree tree = make_tree();
  tree.append(0.5);
  tree.append(0.9);  // fullest, gap 0.1
  tree.append(0.2);
  EXPECT_EQ(tree.best_fit(0.1), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.best_fit(0.3), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.best_fit(0.6), std::optional<BinIndex>(2));
  EXPECT_EQ(tree.best_fit(0.95), std::nullopt);
}

TEST(CapacityTree, BestFitBreaksLevelTiesByLowestIndex) {
  CapacityTree tree = make_tree();
  tree.append(0.7);
  tree.append(0.7);
  tree.append(0.1);
  EXPECT_EQ(tree.best_fit(0.2), std::optional<BinIndex>(0));
  tree.close(0);
  EXPECT_EQ(tree.best_fit(0.2), std::optional<BinIndex>(1));
}

TEST(CapacityTree, SetLevelMovesBinsAcrossQueries) {
  CapacityTree tree = make_tree();
  tree.append(0.5);
  tree.append(0.5);
  tree.set_level(0, 0.95);
  EXPECT_EQ(tree.first_fit(0.3), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.best_fit(0.05), std::optional<BinIndex>(0));
  tree.set_level(0, 0.1);
  EXPECT_EQ(tree.first_fit(0.3), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.worst_fit(0.3), std::optional<BinIndex>(0));
  EXPECT_DOUBLE_EQ(tree.level(0), 0.1);
}

TEST(CapacityTree, ClosedBinsAreNeverSelected) {
  CapacityTree tree = make_tree();
  tree.append(0.1);
  tree.append(0.2);
  tree.close(0);
  EXPECT_FALSE(tree.is_open(0));
  EXPECT_TRUE(tree.is_open(1));
  EXPECT_EQ(tree.open_count(), 1u);
  EXPECT_EQ(tree.first_fit(0.1), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.worst_fit(0.1), std::optional<BinIndex>(1));
  EXPECT_EQ(tree.best_fit(0.1), std::optional<BinIndex>(1));
  tree.close(1);
  EXPECT_EQ(tree.first_fit(0.1), std::nullopt);
  EXPECT_EQ(tree.worst_fit(0.1), std::nullopt);
  EXPECT_EQ(tree.best_fit(0.1), std::nullopt);
}

TEST(CapacityTree, ClosingTwiceOrTouchingClosedBinsThrows) {
  CapacityTree tree = make_tree();
  tree.append(0.4);
  tree.close(0);
  EXPECT_THROW(tree.close(0), std::logic_error);
  EXPECT_THROW(tree.set_level(0, 0.2), std::logic_error);
  EXPECT_THROW(tree.close(7), std::logic_error);
}

TEST(CapacityTree, EpsilonBoundaryUsesExactPredicate) {
  CapacityTree tree;
  const double eps = 1e-9;
  tree.begin(1.0, eps, /*track_level_order=*/true);
  tree.append(0.5);
  // level + size == capacity + eps fits (non-strict); one ulp beyond does not.
  const double exactly = 0.5 + eps;
  EXPECT_EQ(tree.first_fit(exactly), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.best_fit(exactly), std::optional<BinIndex>(0));
  const double beyond = 0.5 + 3e-9;
  EXPECT_EQ(tree.first_fit(beyond), std::nullopt);
  EXPECT_EQ(tree.best_fit(beyond), std::nullopt);
}

TEST(CapacityTree, ZeroEpsilonDyadicExactFill) {
  CapacityTree tree;
  tree.begin(1.0, 0.0, /*track_level_order=*/true);
  tree.append(0.75);
  // 0.75 + 0.25 == 1.0 exactly in binary floating point: fits with eps 0.
  EXPECT_EQ(tree.first_fit(0.25), std::optional<BinIndex>(0));
  tree.set_level(0, 1.0);
  EXPECT_EQ(tree.first_fit(0.25), std::nullopt);
}

TEST(CapacityTree, GrowsPastInitialLeafCapacity) {
  CapacityTree tree = make_tree();
  constexpr std::size_t kBins = 300;  // > the initial 64-leaf tree, twice doubled
  for (std::size_t i = 0; i < kBins; ++i) {
    ASSERT_EQ(tree.append(0.5), i);
  }
  EXPECT_EQ(tree.bin_count(), kBins);
  EXPECT_EQ(tree.open_count(), kBins);
  EXPECT_EQ(tree.first_fit(0.4), std::optional<BinIndex>(0));
  EXPECT_EQ(tree.last_fit(0.4), std::optional<BinIndex>(kBins - 1));
  // Fill everything except bin 123 and re-query all four rules.
  for (std::size_t i = 0; i < kBins; ++i) {
    if (i != 123) tree.set_level(i, 1.0);
  }
  EXPECT_EQ(tree.first_fit(0.4), std::optional<BinIndex>(123));
  EXPECT_EQ(tree.last_fit(0.4), std::optional<BinIndex>(123));
  EXPECT_EQ(tree.worst_fit(0.4), std::optional<BinIndex>(123));
  EXPECT_EQ(tree.best_fit(0.4), std::optional<BinIndex>(123));
}

TEST(CapacityTree, BeginResetsAllState) {
  CapacityTree tree = make_tree();
  tree.append(0.5);
  tree.append(0.6);
  tree.close(0);
  tree.begin(2.0, 0.0, /*track_level_order=*/true);
  EXPECT_EQ(tree.bin_count(), 0u);
  EXPECT_EQ(tree.open_count(), 0u);
  EXPECT_DOUBLE_EQ(tree.capacity(), 2.0);
  EXPECT_EQ(tree.append(1.5), 0u);
  EXPECT_EQ(tree.first_fit(0.5), std::optional<BinIndex>(0));
}

}  // namespace
}  // namespace mutdbp
