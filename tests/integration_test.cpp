// End-to-end scenarios across module boundaries: workload -> dispatch ->
// billing -> analysis, trace round trips through the dispatcher, and
// cross-checks between independent code paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/registry.h"
#include "analysis/report.h"
#include "analysis/subperiods.h"
#include "analysis/supplier.h"
#include "analysis/usage_periods.h"
#include "cloud/dispatcher.h"
#include "cloud/gaming.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "test_support.h"
#include "workload/adversarial.h"
#include "workload/cluster.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace mutdbp {
namespace {

// Drives an ItemList through the cloud dispatcher (event order) and checks
// the dispatcher agrees with the plain simulator on the same algorithm.
TEST(Integration, DispatcherMatchesSimulatorOnGamingWorkload) {
  cloud::GamingWorkloadSpec spec;
  spec.num_sessions = 800;
  const ItemList sessions = cloud::generate_gaming_workload(spec);

  FirstFit dispatcher_algo;
  cloud::JobDispatcher dispatcher(dispatcher_algo,
                                  cloud::DispatcherOptions{1.0, {1.0, 1.0}, 1e-9});
  struct Event {
    Time t;
    bool arrival;
    const Item* session;
  };
  std::vector<Event> events;
  for (const auto& session : sessions) {
    events.push_back({session.arrival(), true, &session});
    events.push_back({session.departure(), false, &session});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.arrival != b.arrival) return !a.arrival;
    return a.session->id < b.session->id;
  });
  for (const auto& event : events) {
    if (event.arrival) {
      dispatcher.submit(event.session->id, event.session->size, event.t);
    } else {
      dispatcher.complete(event.session->id, event.t);
    }
  }
  const auto report = dispatcher.finish();

  FirstFit simulator_algo;
  const PackingResult direct = simulate(sessions, simulator_algo);
  EXPECT_DOUBLE_EQ(report.packing.total_usage_time(), direct.total_usage_time());
  EXPECT_EQ(report.packing.bins_opened(), direct.bins_opened());
  EXPECT_DOUBLE_EQ(report.billing.total_usage, direct.total_usage_time());
  EXPECT_GE(report.billing.total_cost, report.billing.total_usage - 1e-9);
}

TEST(Integration, TraceRoundTripPreservesPackingExactly) {
  workload::ClusterWorkloadSpec spec;
  spec.num_vms = 400;
  const ItemList original = workload::generate_cluster(spec);

  const mutdbp::testing::ScopedTempDir tmp;
  const std::string path = tmp.file("integration_trace.csv").string();
  workload::write_trace_file(path, original);
  const ItemList loaded = workload::read_trace_file(path);

  for (const auto& name : {"FirstFit", "NextFit", "BestFit"}) {
    const auto a1 = make_algorithm(name);
    const auto a2 = make_algorithm(name);
    const PackingResult r1 = simulate(original, *a1);
    const PackingResult r2 = simulate(loaded, *a2);
    EXPECT_DOUBLE_EQ(r1.total_usage_time(), r2.total_usage_time()) << name;
    EXPECT_EQ(r1.bins_opened(), r2.bins_opened()) << name;
  }
}

TEST(Integration, FullAnalysisPipelineOnAdversarialInstance) {
  // Run the complete §IV-VII pipeline on the Section VIII construction.
  const auto instance = workload::next_fit_lower_bound_instance(16, 6.0);
  FirstFit ff;
  const PackingResult result = simulate(instance.items, ff);

  const analysis::UsagePeriodDecomposition usage(result);
  EXPECT_NEAR(result.total_usage_time(), usage.total_v() + instance.items.span(),
              1e-9);
  const analysis::SubperiodAnalysis subs(instance.items, result);
  const analysis::SupplierAnalysis sup(instance.items, result, subs);
  EXPECT_EQ(sup.missing_suppliers(), 0u);
  EXPECT_EQ(sup.count_intersections(), 0u);
}

TEST(Integration, EvaluationConsistentAcrossAllAlgorithms) {
  workload::ClusterWorkloadSpec spec;
  spec.num_vms = 300;
  const ItemList vms = workload::generate_cluster(spec);
  const double lb = opt::combined_lower_bound(vms);
  double best_usage = std::numeric_limits<double>::infinity();
  double worst_usage = 0.0;
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    const analysis::Evaluation eval = analysis::evaluate(vms, *algo);
    EXPECT_GE(eval.total_usage, lb - 1e-6) << name;          // nobody beats OPT lb
    EXPECT_GE(eval.total_usage, vms.span() - 1e-6) << name;  // Prop 2
    EXPECT_LE(eval.average_utilization, 1.0 + 1e-9) << name;
    best_usage = std::min(best_usage, eval.total_usage);
    worst_usage = std::max(worst_usage, eval.total_usage);
  }
  // NewBinPerItem (no sharing) must be the worst by a clear margin.
  const auto nb = make_algorithm("NewBinPerItem");
  const analysis::Evaluation nb_eval = analysis::evaluate(vms, *nb);
  EXPECT_DOUBLE_EQ(nb_eval.total_usage, worst_usage);
  EXPECT_GT(worst_usage, 1.5 * best_usage);
}

TEST(Integration, CapacityScalingIsSizeInvariant) {
  // Scaling all sizes and the capacity by the same factor must not change
  // any packing decision.
  workload::RandomWorkloadSpec spec;
  spec.num_items = 200;
  spec.seed = 63;
  const ItemList unit = workload::generate(spec);
  std::vector<Item> scaled_items;
  for (const auto& item : unit) {
    scaled_items.push_back(
        make_item(item.id, item.size * 16.0, item.arrival(), item.departure()));
  }
  const ItemList scaled(std::move(scaled_items), 16.0);

  FirstFit a;
  FirstFit b;
  const PackingResult unit_result = simulate(unit, a);
  const PackingResult scaled_result = simulate(scaled, b);
  EXPECT_EQ(unit_result.bins_opened(), scaled_result.bins_opened());
  for (const auto& item : unit) {
    EXPECT_EQ(unit_result.bin_of(item.id), scaled_result.bin_of(item.id));
  }
}

TEST(Integration, TheoremOneOnEveryAdversarialFamily) {
  // The µ+4 guarantee must hold against each family's *described* OPT
  // packing cost (a valid upper bound on OPT_total).
  for (const double mu : {2.0, 8.0, 32.0}) {
    const auto nf_instance = workload::next_fit_lower_bound_instance(32, mu);
    FirstFit ff1;
    EXPECT_LE(simulate(nf_instance.items, ff1).total_usage_time(),
              (mu + 4.0) * nf_instance.predicted_opt_cost + 1e-6);

    const auto pin = workload::any_fit_pinning_instance(24, mu);
    FirstFit ff2(0.0);
    SimulationOptions strict;
    strict.fit_epsilon = 0.0;
    EXPECT_LE(simulate(pin.items, ff2, strict).total_usage_time(),
              (mu + 4.0) * pin.predicted_opt_cost + 1e-6);
  }
  const auto decoy = workload::best_fit_decoy_instance(20, 30.0);
  FirstFit ff3(0.0);
  SimulationOptions strict;
  strict.fit_epsilon = 0.0;
  EXPECT_LE(simulate(decoy.items, ff3, strict).total_usage_time(),
            (decoy.items.mu() + 4.0) * decoy.predicted_opt_cost + 1e-6);
}

}  // namespace
}  // namespace mutdbp
