// MUTDBPT1 binary trace tests (src/trace/): round-trip and CSV-equivalence
// properties, O(1) footer metadata, the stream_events() ordering contract,
// writer/reader misuse rejections, and a golden binary trace pinned next to
// the packing goldens so any byte-level format drift fails loudly.
//
// The central property (ISSUE satellite): for every ItemList,
//   read_trace(write_trace(items)) == BinaryTraceReader(convert(...)).read_all()
// item for item, bit for bit — CSV at max_digits10 and MUTDBPT1 columns are
// two lossless encodings of the same item tuples, so trace digests and
// replay digests agree across formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/item_list.h"
#include "core/streaming.h"
#include "test_support.h"
#include "trace/binary_trace.h"
#include "trace/codec.h"
#include "trace/format.h"
#include "workload/generators.h"
#include "workload/trace.h"

#ifndef MUTDBP_GOLDENS_DIR
#error "tests/CMakeLists.txt must define MUTDBP_GOLDENS_DIR"
#endif
#ifndef MUTDBP_DEMO_TRACE_PATH
#error "tests/CMakeLists.txt must define MUTDBP_DEMO_TRACE_PATH"
#endif

namespace mutdbp::trace {
namespace {

using mutdbp::testing::ScopedTempDir;

void expect_items_equal(const ItemList& expected, const ItemList& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  EXPECT_EQ(expected.capacity(), actual.capacity()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected.items()[i], actual.items()[i]) << what << ", item " << i;
  }
}

/// Families that stress the columnar codec: id deltas that are negative,
/// huge, or wrap; times with full 17-digit mantissas; sizes down at the
/// bottom of the subnormal range. All are valid items (finite, size in
/// (0, capacity], departure > arrival) — the point is that encoding is
/// lossless for them, not that they are rejected.
ItemList adversarial_items() {
  std::vector<Item> items;
  const std::uint64_t max_id = std::numeric_limits<std::uint64_t>::max();
  items.push_back(make_item(max_id, 0.5, 0.0, 1.0));             // first delta = max u64
  items.push_back(make_item(0, 1e-300, 0.25, 0.75));             // delta wraps negative
  items.push_back(make_item(max_id / 2, 1.0, 1.0 / 3.0, 2.0 / 3.0 + 1.0));
  items.push_back(make_item(7, 0.1234567890123456, 0.1 + 0.2, 1e9 + 0.1));
  items.push_back(make_item(8, std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::denorm_min(), 4e5));
  items.push_back(make_item(9, 0.875, 1e-17, 1e17));
  return ItemList(std::move(items), 1.0);
}

std::vector<ItemList> property_workloads() {
  std::vector<ItemList> workloads;
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 200 + 37 * seed;
    spec.seed = seed;
    spec.size_dist = workload::SizeDistribution::kBoundedPareto;
    spec.duration_dist = workload::DurationDistribution::kLogNormalClipped;
    workloads.push_back(workload::generate(spec));
  }
  workloads.push_back(adversarial_items());
  workloads.push_back(ItemList({make_item(3, 0.5, 0.0, 1.0)}, 2.5));  // capacity != 1
  return workloads;
}

// ---------------------------------------------------------------------------
// Codec primitives

TEST(TraceCodec, ZigzagRoundTripsExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(), std::int64_t{123456789},
        std::int64_t{-987654321}}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes — the reason deltas compress.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(TraceCodec, DeltaColumnRoundTripsHostileSequences) {
  const std::vector<std::uint64_t> values = {
      std::numeric_limits<std::uint64_t>::max(), 0, 5, 4,
      std::numeric_limits<std::uint64_t>::max() / 2, 6, 7};
  std::vector<std::uint8_t> encoded;
  encode_delta_column(values.data(), values.size(), encoded);
  DeltaColumnReader reader(encoded.data(), encoded.size());
  for (const std::uint64_t v : values) {
    EXPECT_EQ(reader.next(), v);
  }
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW((void)reader.next(), ValidationError);  // past the end
}

TEST(TraceCodec, TruncatedVarintIsACleanError) {
  // First value 2^63: the delta from 0 is int64 min, whose zigzag code is
  // u64 max — the one varint that needs all 10 bytes.
  std::vector<std::uint8_t> encoded;
  const std::uint64_t big = std::uint64_t{1} << 63;
  encode_delta_column(&big, 1, encoded);
  ASSERT_EQ(encoded.size(), kMaxVarintBytes);
  for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
    DeltaColumnReader reader(encoded.data(), keep);
    EXPECT_THROW((void)reader.next(), ValidationError) << "kept " << keep;
  }
}

// ---------------------------------------------------------------------------
// Round-trip and CSV-equivalence properties

TEST(BinaryTrace, RoundTripIsBitExactAcrossBlockSizes) {
  ScopedTempDir tmp;
  const std::string path = tmp.file("trace.mtrace").string();
  for (const ItemList& items : property_workloads()) {
    // 1-item blocks, tiny blocks, one big block: same items either way.
    for (const std::size_t block_items : {std::size_t{1}, std::size_t{7},
                                          kDefaultTraceBlockItems}) {
      const TraceMeta written = write_binary_trace_file(path, items, block_items);
      EXPECT_EQ(written.items, items.size());
      EXPECT_EQ(written.digest, trace_digest(items));
      const auto reader = BinaryTraceReader::open(path);
      expect_items_equal(items, reader.read_all(),
                         "block_items=" + std::to_string(block_items));
    }
  }
}

TEST(BinaryTrace, CsvAndBinaryReadsAgreeItemForItem) {
  // The satellite property: read_trace(csv) ≡ BinaryTraceReader(convert(csv)).
  ScopedTempDir tmp;
  const std::string csv_path = tmp.file("trace.csv").string();
  const std::string bin_path = tmp.file("trace.mtrace").string();
  for (const ItemList& items : property_workloads()) {
    workload::write_trace_file(csv_path, items);
    const ItemList from_csv =
        workload::read_trace_file(csv_path, items.capacity());
    // CSV at max_digits10 is itself lossless...
    expect_items_equal(items, from_csv, "csv round trip");
    // ...and converting what the CSV reader produced yields identical items
    // and an identical content digest through the binary path.
    write_binary_trace_file(bin_path, from_csv, /*block_items=*/64);
    const auto reader = BinaryTraceReader::open(bin_path);
    expect_items_equal(from_csv, reader.read_all(), "csv->binary");
    EXPECT_EQ(reader.meta().digest, trace_digest(from_csv));
  }
}

TEST(BinaryTrace, ReadTraceAnyDispatchesOnMagicAndChecksCapacity) {
  ScopedTempDir tmp;
  const ItemList items = property_workloads().front();
  const std::string csv_path = tmp.file("t.csv").string();
  const std::string bin_path = tmp.file("t.mtrace").string();
  workload::write_trace_file(csv_path, items);
  write_binary_trace_file(bin_path, items);

  EXPECT_EQ(detect_trace_format(csv_path), TraceFormat::kCsv);
  EXPECT_EQ(detect_trace_format(bin_path), TraceFormat::kBinary);
  expect_items_equal(items, read_trace_any(csv_path), "any/csv");
  expect_items_equal(items, read_trace_any(bin_path), "any/binary");
  // Forcing the wrong format on a binary file is a clean rejection.
  EXPECT_THROW((void)read_trace_any(bin_path, TraceFormat::kCsv), ValidationError);
  // A non-zero capacity must agree with what the binary file recorded.
  EXPECT_THROW((void)read_trace_any(bin_path, TraceFormat::kBinary, 2.0),
               ValidationError);
  EXPECT_NO_THROW((void)read_trace_any(bin_path, TraceFormat::kBinary, 1.0));
  EXPECT_THROW((void)parse_trace_format("yaml"), ValidationError);
}

// ---------------------------------------------------------------------------
// Metadata, block iteration, event streaming

TEST(BinaryTrace, FooterMetadataMatchesRecomputedValues) {
  ScopedTempDir tmp;
  const std::string path = tmp.file("meta.mtrace").string();
  const ItemList items = property_workloads().front();
  write_binary_trace_file(path, items, /*block_items=*/32);
  const auto reader = BinaryTraceReader::open(path);
  const TraceMeta& meta = reader.meta();

  EXPECT_EQ(meta.items, items.size());
  EXPECT_EQ(meta.capacity, items.capacity());
  EXPECT_EQ(meta.digest, trace_digest(items));
  double min_arrival = std::numeric_limits<double>::infinity();
  double max_departure = -std::numeric_limits<double>::infinity();
  for (const auto& item : items) {
    min_arrival = std::min(min_arrival, item.arrival());
    max_departure = std::max(max_departure, item.departure());
  }
  EXPECT_EQ(meta.min_arrival, min_arrival);
  EXPECT_EQ(meta.max_departure, max_departure);

  // The block index tiles the item sequence: counts sum to the total and
  // every per-block range brackets exactly its own items.
  ASSERT_EQ(reader.block_count(), (items.size() + 31) / 32);
  std::uint64_t indexed = 0;
  std::size_t next_item = 0;
  std::vector<Item> block;
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    const TraceBlockMeta& bm = meta.blocks[b];
    indexed += bm.items;
    reader.read_block(b, block);
    ASSERT_EQ(block.size(), bm.items);
    for (const Item& item : block) {
      EXPECT_EQ(item, items.items()[next_item++]);
      EXPECT_GE(item.id, bm.min_id);
      EXPECT_LE(item.id, bm.max_id);
      EXPECT_GE(item.arrival(), bm.min_arrival);
      EXPECT_LE(item.departure(), bm.max_departure);
    }
  }
  EXPECT_EQ(indexed, meta.items);
  EXPECT_EQ(next_item, items.size());
}

TEST(BinaryTrace, ForEachBlockStreamsEveryItemOnce) {
  ScopedTempDir tmp;
  const std::string path = tmp.file("blocks.mtrace").string();
  const ItemList items = property_workloads().front();
  write_binary_trace_file(path, items, /*block_items=*/17);
  const auto reader = BinaryTraceReader::open(path);
  std::vector<Item> streamed;
  reader.for_each_block([&](std::span<const Item> block) {
    streamed.insert(streamed.end(), block.begin(), block.end());
  });
  expect_items_equal(items, ItemList(std::move(streamed), items.capacity()),
                     "for_each_block");
}

TEST(BinaryTrace, StreamEventsMatchTheCanonicalSchedule) {
  ScopedTempDir tmp;
  const std::string path = tmp.file("events.mtrace").string();
  for (const ItemList& items : property_workloads()) {
    write_binary_trace_file(path, items, /*block_items=*/16);
    const auto reader = BinaryTraceReader::open(path);
    const std::vector<StreamEvent> events = reader.stream_events();
    const std::vector<ScheduledEvent>& schedule = items.schedule();
    ASSERT_EQ(events.size(), schedule.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].t, schedule[i].t) << i;
      EXPECT_EQ(events[i].id, schedule[i].id) << i;
      EXPECT_EQ(events[i].kind == StreamEvent::Kind::kArrival,
                schedule[i].is_arrival)
          << i;
      if (schedule[i].is_arrival) {
        EXPECT_EQ(events[i].size, schedule[i].size) << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases and misuse

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  ScopedTempDir tmp;
  const std::string path = tmp.file("empty.mtrace").string();
  const TraceMeta written = write_binary_trace_file(path, ItemList({}, 3.0));
  EXPECT_EQ(written.items, 0u);
  EXPECT_TRUE(written.blocks.empty());
  const auto reader = BinaryTraceReader::open(path);
  EXPECT_EQ(reader.block_count(), 0u);
  const ItemList back = reader.read_all();
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.capacity(), 3.0);
  EXPECT_TRUE(reader.stream_events().empty());
}

TEST(BinaryTrace, WriterRejectsInvalidItemsAndMisuse) {
  std::ostringstream out;
  BinaryTraceWriter writer(out, {.capacity = 1.0, .block_items = 4});
  EXPECT_THROW(writer.add(make_item(1, 0.0, 0.0, 1.0)), ValidationError);  // size 0
  EXPECT_THROW(writer.add(make_item(1, 1.5, 0.0, 1.0)), ValidationError);  // > capacity
  EXPECT_THROW(writer.add(make_item(1, 0.5, 1.0, 1.0)), ValidationError);  // empty interval
  EXPECT_THROW(writer.add(make_item(1, std::numeric_limits<double>::quiet_NaN(),
                                    0.0, 1.0)),
               ValidationError);
  writer.add(make_item(1, 0.5, 0.0, 1.0));
  (void)writer.finish();
  EXPECT_THROW(writer.add(make_item(2, 0.5, 0.0, 1.0)), ValidationError);
  EXPECT_THROW((void)writer.finish(), ValidationError);

  std::ostringstream out2;
  EXPECT_THROW((BinaryTraceWriter(out2, {.capacity = 0.0})), ValidationError);
  EXPECT_THROW((BinaryTraceWriter(out2, {.capacity = 1.0, .block_items = 0})),
               ValidationError);
  EXPECT_THROW(
      (BinaryTraceWriter(out2, {.capacity = 1.0,
                                .block_items = kMaxTraceBlockItems + 1})),
      ValidationError);
}

TEST(BinaryTrace, DuplicateIdsAreRejectedLikeTheCsvReader) {
  // The writer streams and cannot see duplicates across blocks; read_all()
  // enforces the same uniqueness contract read_trace does.
  std::ostringstream out;
  BinaryTraceWriter writer(out, {.capacity = 1.0, .block_items = 1});
  writer.add(make_item(5, 0.5, 0.0, 1.0));
  writer.add(make_item(5, 0.25, 2.0, 3.0));
  (void)writer.finish();
  const std::string bytes = out.str();
  const auto reader = BinaryTraceReader::from_view(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  EXPECT_THROW((void)reader.read_all(), ValidationError);
  // Block-level access still works: each block alone is valid.
  std::vector<Item> block;
  EXPECT_NO_THROW(reader.read_block(1, block));
}

TEST(BinaryTrace, OpenRejectsMissingAndForeignFiles) {
  ScopedTempDir tmp;
  EXPECT_THROW((void)BinaryTraceReader::open(tmp.file("absent.mtrace").string()),
               ValidationError);
  const std::string csv = tmp.file("plain.csv").string();
  workload::write_trace_file(csv, adversarial_items());
  EXPECT_THROW((void)BinaryTraceReader::open(csv), ValidationError);
}

// ---------------------------------------------------------------------------
// Golden binary trace
//
// tests/goldens/demo_trace.mtrace is the checked-in MUTDBPT1 encoding of the
// demo CSV trace. Pinning actual bytes (not just behaviour) makes any format
// drift — codec changes, frame layout, footer fields — fail here even when
// round-trips still pass, exactly like the packing goldens. Regenerate after
// reviewing the diff: MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenBinaryTrace

std::string golden_trace_path() {
  return std::string(MUTDBP_GOLDENS_DIR) + "/demo_trace.mtrace";
}

TEST(GoldenBinaryTrace, DemoTraceEncodingIsStable) {
  const bool update = []() {
    const char* env = std::getenv("MUTDBP_UPDATE_GOLDENS");
    return env != nullptr && std::string(env) == "1";
  }();
  const ItemList demo = workload::read_trace_file(MUTDBP_DEMO_TRACE_PATH);

  if (update) {
    write_binary_trace_file(golden_trace_path(), demo);
    GTEST_SKIP() << "golden binary trace rewritten at " << golden_trace_path();
  }

  ScopedTempDir tmp;
  const std::string fresh = tmp.file("demo.mtrace").string();
  write_binary_trace_file(fresh, demo);

  const auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path
                    << " — generate it once with: MUTDBP_UPDATE_GOLDENS=1 "
                       "ctest -R GoldenBinaryTrace";
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string golden_bytes = read_bytes(golden_trace_path());
  const std::string fresh_bytes = read_bytes(fresh);
  ASSERT_FALSE(golden_bytes.empty());
  EXPECT_EQ(golden_bytes, fresh_bytes)
      << "the MUTDBPT1 encoding of the demo trace changed; if the format "
         "change is intentional, bump kTraceFormatVersion and regenerate "
         "with MUTDBP_UPDATE_GOLDENS=1 ctest -R GoldenBinaryTrace";

  // And the golden file itself reads back to the demo items with the
  // expected content digest.
  const auto reader = BinaryTraceReader::open(golden_trace_path());
  EXPECT_EQ(reader.meta().digest, trace_digest(demo));
  expect_items_equal(demo, reader.read_all(), "golden binary trace");
}

}  // namespace
}  // namespace mutdbp::trace
