#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "algorithms/any_fit.h"
#include "algorithms/next_fit.h"
#include "core/simulation.h"
#include "workload/adversarial.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace mutdbp::workload {
namespace {

TEST(Generators, DeterministicUnderSeed) {
  RandomWorkloadSpec spec;
  spec.num_items = 200;
  spec.seed = 99;
  const ItemList a = generate(spec);
  const ItemList b = generate(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  spec.seed = 100;
  const ItemList c = generate(spec);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Generators, RespectsRanges) {
  RandomWorkloadSpec spec;
  spec.num_items = 500;
  spec.size_min = 0.1;
  spec.size_max = 0.8;
  spec.duration_min = 2.0;
  spec.duration_max = 6.0;
  const ItemList items = generate(spec);
  for (const auto& item : items) {
    EXPECT_GE(item.size, 0.1);
    EXPECT_LE(item.size, 0.8);
    EXPECT_GE(item.duration(), 2.0 - 1e-12);
    EXPECT_LE(item.duration(), 6.0 + 1e-12);
  }
  EXPECT_LE(items.mu(), 3.0 + 1e-9);
}

TEST(Generators, PoissonArrivalsIncrease) {
  RandomWorkloadSpec spec;
  spec.num_items = 100;
  spec.arrivals = ArrivalProcess::kPoisson;
  const ItemList items = generate(spec);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i].arrival(), items[i - 1].arrival());
  }
}

TEST(Generators, BatchedArrivalsShareTimes) {
  RandomWorkloadSpec spec;
  spec.num_items = 12;
  spec.arrivals = ArrivalProcess::kBatched;
  spec.batch_size = 4;
  spec.arrival_rate = 1.0;
  const ItemList items = generate(spec);
  EXPECT_DOUBLE_EQ(items[0].arrival(), items[3].arrival());
  EXPECT_DOUBLE_EQ(items[4].arrival(), items[7].arrival());
  EXPECT_NE(items[0].arrival(), items[4].arrival());
}

TEST(Generators, BimodalDurationsAreExtremes) {
  RandomWorkloadSpec spec;
  spec.num_items = 100;
  spec.duration_dist = DurationDistribution::kBimodal;
  spec.duration_min = 1.0;
  spec.duration_max = 8.0;
  const ItemList items = generate(spec);
  std::size_t shorts = 0;
  std::size_t longs = 0;
  for (const auto& item : items) {
    // duration() = (arrival + d) - arrival can be one ulp off d.
    if (std::abs(item.duration() - 1.0) < 1e-9) ++shorts;
    if (std::abs(item.duration() - 8.0) < 1e-9) ++longs;
  }
  EXPECT_EQ(shorts + longs, items.size());
  EXPECT_GT(shorts, 20u);
  EXPECT_GT(longs, 20u);
}

TEST(Generators, DiscreteSizesComeFromChoices) {
  RandomWorkloadSpec spec;
  spec.num_items = 100;
  spec.size_dist = SizeDistribution::kDiscrete;
  spec.size_choices = {0.25, 0.5, 1.0};
  const ItemList items = generate(spec);
  for (const auto& item : items) {
    EXPECT_TRUE(item.size == 0.25 || item.size == 0.5 || item.size == 1.0);
  }
}

TEST(Generators, ValidatesSpec) {
  RandomWorkloadSpec spec;
  spec.size_min = 0.0;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
  spec = {};
  spec.duration_min = 5.0;
  spec.duration_max = 2.0;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
  spec = {};
  spec.size_dist = SizeDistribution::kDiscrete;  // empty choices
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
}

TEST(Adversarial, NextFitInstanceMatchesPrediction) {
  const auto instance = next_fit_lower_bound_instance(8, 5.0);
  NextFit nf;
  const PackingResult result = simulate(instance.items, nf);
  EXPECT_EQ(result.bins_opened(), 8u);
  EXPECT_NEAR(result.total_usage_time(), instance.predicted_algorithm_cost, 1e-9);
  EXPECT_NEAR(instance.predicted_algorithm_cost, 40.0, 1e-12);
  EXPECT_NEAR(instance.predicted_opt_cost, 4.0 + 5.0, 1e-12);

  // First Fit is strictly better on this instance.
  FirstFit ff;
  const PackingResult ff_result = simulate(instance.items, ff);
  EXPECT_LT(ff_result.total_usage_time(), result.total_usage_time());
}

TEST(Adversarial, NextFitPredictedOptIsAchievable) {
  // The described optimal packing must not violate the closed-form lower
  // bounds: prop2 gives µ, prop1 gives n(1/2·1 + 1/n·µ)/1 = n/2 + µ.
  const auto instance = next_fit_lower_bound_instance(10, 4.0);
  EXPECT_GE(instance.predicted_opt_cost,
            instance.items.span() - 1e-9);
  EXPECT_GE(instance.predicted_opt_cost,
            instance.items.total_time_space_demand() - 1e-9);
}

TEST(Adversarial, NextFitInstanceValidation) {
  EXPECT_THROW((void)next_fit_lower_bound_instance(2, 5.0), std::invalid_argument);
  EXPECT_THROW((void)next_fit_lower_bound_instance(8, 0.5), std::invalid_argument);
}

TEST(Adversarial, PinningForcesEveryAnyFitAlgorithm) {
  const auto instance = any_fit_pinning_instance(10, 6.0);
  SimulationOptions options;
  options.fit_epsilon = instance.recommended_fit_epsilon;  // 0: dyadic sizes
  FirstFit ff(0.0);
  BestFit bf(0.0);
  WorstFit wf(0.0);
  LastFit lf(0.0);
  for (PackingAlgorithm* algo :
       std::initializer_list<PackingAlgorithm*>{&ff, &bf, &wf, &lf}) {
    const PackingResult result = simulate(instance.items, *algo, options);
    EXPECT_EQ(result.bins_opened(), 10u) << algo->name();
    EXPECT_NEAR(result.total_usage_time(), instance.predicted_algorithm_cost, 1e-9)
        << algo->name();
  }
  EXPECT_NEAR(instance.predicted_ratio(), 60.0 / 16.0, 1e-12);
}

TEST(Adversarial, PinningValidation) {
  EXPECT_THROW((void)any_fit_pinning_instance(0, 5.0), std::invalid_argument);
  EXPECT_THROW((void)any_fit_pinning_instance(49, 5.0), std::invalid_argument);
}

TEST(Adversarial, BestFitDecoySeparatesBestFitFromFirstFit) {
  const double mu = 20.0;
  const std::size_t rounds = 13;  // 1.5*12 + 0.5 = 18.5 < 20
  const auto instance = best_fit_decoy_instance(rounds, mu);
  SimulationOptions options;
  options.fit_epsilon = 0.0;
  BestFit bf(0.0);
  FirstFit ff(0.0);
  const PackingResult bf_result = simulate(instance.items, bf, options);
  const PackingResult ff_result = simulate(instance.items, ff, options);
  EXPECT_NEAR(bf_result.total_usage_time(), instance.predicted_algorithm_cost, 1e-9);
  EXPECT_NEAR(ff_result.total_usage_time(), instance.predicted_opt_cost, 1e-9);
  EXPECT_GT(bf_result.total_usage_time(), 3.0 * ff_result.total_usage_time());
}

TEST(Adversarial, BestFitDecoyValidation) {
  EXPECT_THROW((void)best_fit_decoy_instance(10, 5.0), std::invalid_argument);
  EXPECT_THROW((void)best_fit_decoy_instance(0, 50.0), std::invalid_argument);
}

TEST(Trace, RoundTripsExactly) {
  RandomWorkloadSpec spec;
  spec.num_items = 50;
  spec.seed = 5;
  const ItemList original = generate(spec);
  std::stringstream buffer;
  write_trace(buffer, original);
  const ItemList loaded = read_trace(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "item " << i;
  }
}

TEST(Trace, ReadsCommentsAndHeader) {
  std::stringstream in(
      "# a comment\n"
      "id,size,arrival,departure\n"
      "1,0.5,0,2\n"
      "\n"
      "2,0.25,1,3\n");
  const ItemList items = read_trace(in);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_DOUBLE_EQ(items[0].size, 0.5);
  EXPECT_DOUBLE_EQ(items[1].departure(), 3.0);
}

TEST(Trace, RejectsMalformedRows) {
  std::stringstream missing("1,0.5,0\n");
  EXPECT_THROW((void)read_trace(missing), std::invalid_argument);
  // A non-numeric field in the FIRST row would be taken as a header (by
  // design); garbage in a later row must throw.
  std::stringstream garbage("1,0.5,0,2\n2,abc,0,2\n");
  EXPECT_THROW((void)read_trace(garbage), std::invalid_argument);
  std::stringstream bad_item("1,0.5,5,2\n");  // departure before arrival
  EXPECT_THROW((void)read_trace(bad_item), std::invalid_argument);
}

}  // namespace
}  // namespace mutdbp::workload
