// Tests for the telemetry subsystem: metrics registry (sharding, merge
// determinism, histogram quantiles), event tracer ring semantics, exporter
// golden outputs, and the differential guarantee that attaching telemetry
// never changes a simulation's results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "analysis/disruption.h"
#include "cloud/faults.h"
#include "core/checkpoint.h"
#include "core/error.h"
#include "core/simulation.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "test_support.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace mutdbp::telemetry {
namespace {

workload::RandomWorkloadSpec test_spec(std::size_t n, std::uint64_t seed) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = n;
  spec.seed = seed;
  spec.arrival_rate = 2.0;
  spec.duration_max = 5.0;
  return spec;
}

// ---- registry basics ------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndHistogramsRoundTrip) {
  MetricsRegistry registry;
  const CounterHandle c = registry.counter("t_requests_total", "requests");
  const GaugeHandle g = registry.gauge("t_depth");
  const HistogramHandle h = registry.histogram("t_latency", {1.0, 2.0});

  registry.add(c);
  registry.add(c, 2);
  registry.set(g, -3.5);
  registry.observe(h, 0.5);
  registry.observe(h, 1.5);
  registry.observe(h, 9.0);  // overflow bucket

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.find_counter("t_requests_total"), nullptr);
  EXPECT_EQ(snap.find_counter("t_requests_total")->value, 3u);
  ASSERT_NE(snap.find_gauge("t_depth"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find_gauge("t_depth")->value, -3.5);

  const HistogramSnapshot* hist = snap.find_histogram("t_latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(hist->count, 3u);
  EXPECT_DOUBLE_EQ(hist->sum, 11.0);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 9.0);
  EXPECT_EQ(snap.find_counter("no_such_metric"), nullptr);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  const CounterHandle a = registry.counter("t_total");
  const CounterHandle b = registry.counter("t_total");
  EXPECT_EQ(a.index, b.index);

  const HistogramHandle h1 = registry.histogram("t_h", {1.0, 2.0});
  const HistogramHandle h2 = registry.histogram("t_h", {1.0, 2.0});
  EXPECT_EQ(h1.index, h2.index);

  // Cross-kind and bucket mismatches are structural bugs, not merges.
  EXPECT_THROW((void)registry.gauge("t_total"), ValidationError);
  EXPECT_THROW((void)registry.histogram("t_h", {1.0, 3.0}), ValidationError);
}

TEST(MetricsRegistry, BucketBuildersValidate) {
  EXPECT_EQ(linear_buckets(0.0, 0.05, 20).size(), 20u);
  EXPECT_DOUBLE_EQ(linear_buckets(0.0, 0.5, 3)[2], 1.5);
  EXPECT_DOUBLE_EQ(exponential_buckets(1.0, 2.0, 3)[2], 4.0);
  EXPECT_THROW((void)linear_buckets(0.0, 0.0, 5), ValidationError);
  EXPECT_THROW((void)linear_buckets(0.0, 1.0, 0), ValidationError);
  EXPECT_THROW((void)exponential_buckets(0.0, 2.0, 5), ValidationError);
  EXPECT_THROW((void)exponential_buckets(1.0, 1.0, 5), ValidationError);
  MetricsRegistry registry;
  EXPECT_THROW((void)registry.histogram("t_bad", {}), ValidationError);
  EXPECT_THROW((void)registry.histogram("t_bad", {2.0, 1.0}), ValidationError);
}

// ---- histogram quantiles vs exact percentiles -----------------------

TEST(HistogramQuantile, WithinOneBucketWidthOfExactPercentile) {
  MetricsRegistry registry;
  const double width = 0.05;
  const HistogramHandle h =
      registry.histogram("t_fill", linear_buckets(0.0, width, 20));

  // Deterministic but irregular sample in [0, 1).
  std::vector<double> values;
  for (std::size_t i = 0; i < 1000; ++i) {
    const double v = std::fmod(static_cast<double>(i) * 0.618033988749895, 1.0);
    values.push_back(v);
    registry.observe(h, v);
  }

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.find_histogram("t_fill");
  ASSERT_NE(hist, nullptr);
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double exact = percentile(values, p);
    const double est = hist->quantile(p / 100.0);
    EXPECT_NEAR(est, exact, width) << "p" << p;
  }
}

TEST(HistogramQuantile, ExtremesClampToObservedRange) {
  MetricsRegistry registry;
  const HistogramHandle h = registry.histogram("t_h", {10.0, 20.0});
  registry.observe(h, 12.0);
  registry.observe(h, 17.0);
  registry.observe(h, 55.0);  // overflow: quantile must pin to max, not +Inf

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.find_histogram("t_h");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 12.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 55.0);
  EXPECT_GE(hist->quantile(0.5), 12.0);
  EXPECT_LE(hist->quantile(0.5), 55.0);

  const HistogramSnapshot empty{};
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
}

// ---- shard merge across threads -------------------------------------

TEST(MetricsRegistry, MergeAcrossThreadsIsDeterministic) {
  // Two identical parallel runs must produce identical snapshots: counter
  // totals are integers, and the observed values are exactly representable
  // (multiples of 0.25) so the double sums are order-independent too.
  const auto run = [] {
    MetricsRegistry registry;
    const CounterHandle c = registry.counter("t_ops_total");
    const HistogramHandle h = registry.histogram("t_v", {0.5, 1.0, 1.5});
    parallel_for(0, 4000, [&](std::size_t i) {
      registry.add(c);
      registry.observe(h, static_cast<double>(i % 8) * 0.25);
    });
    return registry.snapshot();
  };

  const MetricsSnapshot a = run();
  const MetricsSnapshot b = run();

  ASSERT_NE(a.find_counter("t_ops_total"), nullptr);
  EXPECT_EQ(a.find_counter("t_ops_total")->value, 4000u);
  const HistogramSnapshot* ha = a.find_histogram("t_v");
  const HistogramSnapshot* hb = b.find_histogram("t_v");
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->count, 4000u);
  // 500 each of {0, 0.25, ..., 1.75}: sum = 500 * 7 = 3500.
  EXPECT_DOUBLE_EQ(ha->sum, 3500.0);
  EXPECT_EQ(ha->counts, hb->counts);
  EXPECT_EQ(ha->sum, hb->sum);
  EXPECT_EQ(ha->min, hb->min);
  EXPECT_EQ(ha->max, hb->max);
  EXPECT_EQ(a.find_counter("t_ops_total")->value,
            b.find_counter("t_ops_total")->value);
}

// ---- latency histograms across shard splits -------------------------

TEST(MetricsRegistry, LatencyMergeIsDeterministicAcrossShardCounts) {
  // The same 6000 observations, split across 2, 3, or 4 per-shard
  // registries and merged, must produce the identical histogram the
  // kWireStats snapshot serves: counters are integers and every observed
  // value is a dyadic rational (k/1024, k < 64), so the double sums are
  // exact and therefore split- and order-independent.
  const auto merged = [](std::size_t shards) {
    std::vector<MetricsSnapshot> snaps;
    for (std::size_t s = 0; s < shards; ++s) {
      MetricsRegistry registry;
      const CounterHandle c = registry.counter("t_drained_total");
      const HistogramHandle h = registry.histogram(
          "t_flush_latency", exponential_buckets(1e-6, 2.0, 22));
      for (std::size_t i = s; i < 6000; i += shards) {
        registry.add(c);
        registry.observe(h, static_cast<double>(i % 64) / 1024.0);
      }
      snaps.push_back(registry.snapshot());
    }
    return merge_snapshots(snaps);
  };

  const MetricsSnapshot two = merged(2);
  for (const std::size_t shards : {std::size_t{3}, std::size_t{4}}) {
    const MetricsSnapshot other = merged(shards);
    ASSERT_NE(two.find_counter("t_drained_total"), nullptr);
    ASSERT_NE(other.find_counter("t_drained_total"), nullptr);
    EXPECT_EQ(two.find_counter("t_drained_total")->value, 6000u);
    EXPECT_EQ(other.find_counter("t_drained_total")->value, 6000u);
    const HistogramSnapshot* a = two.find_histogram("t_flush_latency");
    const HistogramSnapshot* b = other.find_histogram("t_flush_latency");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->counts, b->counts) << "shards=" << shards;
    EXPECT_EQ(a->count, 6000u);
    EXPECT_EQ(a->count, b->count);
    EXPECT_EQ(a->sum, b->sum);  // bitwise: exact dyadic accumulation
    EXPECT_EQ(a->min, b->min);
    EXPECT_EQ(a->max, b->max);
    EXPECT_EQ(a->quantile(0.5), b->quantile(0.5));
    EXPECT_EQ(a->quantile(0.99), b->quantile(0.99));
  }
}

// ---- flight recorder ------------------------------------------------

TEST(FlightRecorder, RingOverflowKeepsTheNewestRecords) {
  FlightRecorder recorder(8, /*enabled=*/true);
  EXPECT_EQ(recorder.capacity_per_thread(), 8u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    recorder.record(FlightKind::kAdmission, i, 1000 + i);
  }
  EXPECT_EQ(recorder.total_recorded(), 50u);
  EXPECT_EQ(recorder.total_dropped(), 42u);

  // Overwrite keeps exactly the newest ring-capacity records; a single
  // writer's order survives the (stable) nanos merge.
  const std::vector<FlightRecord> records = recorder.records();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].kind,
              static_cast<std::uint32_t>(FlightKind::kAdmission));
    EXPECT_EQ(records[i].a, 42u + i);
    EXPECT_EQ(records[i].b, 1042u + i);
  }
}

TEST(FlightRecorder, DisabledRecorderCostsOnlyTheBranch) {
  FlightRecorder recorder(8);  // disabled is the default
  EXPECT_FALSE(recorder.enabled());
  recorder.record(FlightKind::kFlushBegin, 1);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.records().empty());

  recorder.set_enabled(true);
  recorder.record(FlightKind::kFlushBegin, 2);
  EXPECT_EQ(recorder.total_recorded(), 1u);
}

TEST(FlightRecorder, DumpRoundTripsAndSpeaksMutdbpc1) {
  testing::ScopedTempDir temp;
  const std::string path = temp.file("postmortem.flight").string();
  FlightRecorder recorder(16, /*enabled=*/true);
  recorder.record(FlightKind::kFlushBegin, 3);
  recorder.record(FlightKind::kFlushEnd, 3, 12345);
  recorder.record(FlightKind::kCheckpointEnd, 100, 67890);
  ASSERT_TRUE(recorder.dump(path));

  const FlightDump dump = read_flight_dump(path);
  EXPECT_EQ(dump.version, FlightRecorder::kDumpVersion);
  EXPECT_EQ(dump.capacity_per_thread, 16u);
  EXPECT_EQ(dump.dropped, 0u);
  ASSERT_EQ(dump.records.size(), 3u);
  EXPECT_EQ(dump.records[0].kind,
            static_cast<std::uint32_t>(FlightKind::kFlushBegin));
  EXPECT_EQ(dump.records[0].a, 3u);
  EXPECT_EQ(dump.records[1].b, 12345u);
  EXPECT_EQ(dump.records[2].a, 100u);
  EXPECT_EQ(dump.records, recorder.records());
  EXPECT_EQ(to_string(FlightKind::kFlushBegin), "flush_begin");

  // The dump is a standard MUTDBPC1 frame: the core checkpoint reader must
  // accept its magic, kind, and checksum byte-for-byte.
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  const std::vector<std::uint8_t> payload =
      read_checkpoint_frame(in, CheckpointKind::kFlightRecorder);
  EXPECT_FALSE(payload.empty());

  // The signal-safe armed path writes an identical parse.
  const std::string armed_path = temp.file("armed.flight").string();
  recorder.arm(armed_path);
  EXPECT_TRUE(recorder.armed());
  ASSERT_TRUE(recorder.dump_armed());
  const FlightDump armed = read_flight_dump(armed_path);
  EXPECT_EQ(armed.records, dump.records);
  EXPECT_EQ(armed.capacity_per_thread, dump.capacity_per_thread);
  recorder.disarm();
  EXPECT_FALSE(recorder.armed());
  EXPECT_FALSE(recorder.dump_armed());  // unarmed: refuses, returns false

  // Corruption surfaces as a typed error, never a misparse.
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.seekp(30);  // inside the record payload
  out.put('\xFF');
  out.close();
  EXPECT_THROW((void)read_flight_dump(path), ValidationError);
}

// ---- event tracer ring ----------------------------------------------

TEST(EventTracer, RingOverflowKeepsNewestInOrder) {
  EventTracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record({static_cast<double>(i), i, 0, 0.1, 0.1, TraceKind::kPlacement});
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].item, 6u + i);  // oldest-to-newest, events 6..9
  }
}

TEST(EventTracer, NoOverflowKeepsEverything) {
  EventTracer tracer(8);
  tracer.record({1.0, 7, 2, 0.3, 0.3, TraceKind::kBinOpen});
  tracer.record({2.0, 8, 2, 0.2, 0.5, TraceKind::kPlacement});
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].item, 7u);
  EXPECT_EQ(events[1].kind, TraceKind::kPlacement);

  EXPECT_THROW(EventTracer(0), ValidationError);
}

TEST(EventTracer, ExportersEmitParseableShapes) {
  EventTracer tracer(8);
  tracer.record({1.0, 1, 0, 0.5, 0.5, TraceKind::kBinOpen});
  tracer.record({1.0, 1, 0, 0.5, 0.5, TraceKind::kPlacement});
  tracer.record({3.0, 0, 0, 2.0, 0.0, TraceKind::kBinClose});

  std::ostringstream json;
  tracer.write_chrome_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"B\""), std::string::npos);  // bin open
  EXPECT_NE(j.find("\"ph\":\"E\""), std::string::npos);  // bin close
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);  // placement instant
  EXPECT_EQ(j.back(), '}');

  std::ostringstream csv;
  tracer.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("kind,shard,t,item,bin,size,level", 0), 0u);
  EXPECT_NE(c.find("\nbin_open,"), std::string::npos);
  EXPECT_NE(c.find("\nbin_close,"), std::string::npos);
}

TEST(EventTracer, ShardTagStampsRecordsAndExporters) {
  EventTracer tracer(8);
  tracer.record({1.0, 1, 0, 0.5, 0.5, TraceKind::kPlacement});  // pre-tag: shard 0
  tracer.set_shard(3);
  EXPECT_EQ(tracer.shard(), 3u);
  tracer.record({2.0, 2, 1, 0.4, 0.4, TraceKind::kPlacement});

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].shard, 0u);
  EXPECT_EQ(events[1].shard, 3u);

  // CSV rows carry the shard column; the Chrome exporter renders one
  // process lane per shard.
  std::ostringstream csv;
  tracer.write_csv(csv);
  EXPECT_NE(csv.str().find("placement,3,2,"), std::string::npos);
  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_NE(json.str().find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.str().find("\"pid\":0"), std::string::npos);
}

// ---- profiler -------------------------------------------------------

TEST(Profiler, SectionsAreIdempotentAndAccumulate) {
  Profiler profiler;
  const SectionHandle a = profiler.section("phase.a");
  const SectionHandle same = profiler.section("phase.a");
  EXPECT_EQ(a.index, same.index);

  profiler.add_sample(a, 100);
  profiler.add_sample(a, 300);
  { ScopedTimer timer(&profiler, profiler.section("phase.b")); }
  { ScopedTimer inert(nullptr, SectionHandle{}); }  // must be a no-op

  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "phase.a");
  EXPECT_EQ(stats[0].calls, 2u);
  EXPECT_EQ(stats[0].total_ns, 400u);
  EXPECT_EQ(stats[0].max_ns, 300u);
  EXPECT_DOUBLE_EQ(stats[0].mean_ns(), 200.0);
  EXPECT_EQ(stats[1].name, "phase.b");
  EXPECT_EQ(stats[1].calls, 1u);
}

TEST(Profiler, SelfTimeExcludesNestedSections) {
  Profiler profiler;
  const SectionHandle outer = profiler.section("outer");
  const SectionHandle inner = profiler.section("inner");

  {
    ScopedTimer a(&profiler, outer);
    ScopedTimer b(&profiler, inner);
    // Both scopes close here: inner's total is charged to outer's children.
  }

  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "outer");
  EXPECT_LE(stats[0].self_ns, stats[0].total_ns);
  EXPECT_EQ(stats[1].name, "inner");
  // The innermost scope has no children, so self == total exactly.
  EXPECT_EQ(stats[1].self_ns, stats[1].total_ns);

  // Explicit split samples pass straight through.
  profiler.add_sample(outer, 100, 60);
  const auto after = profiler.stats();
  EXPECT_EQ(after[0].total_ns, stats[0].total_ns + 100);
  EXPECT_EQ(after[0].self_ns, stats[0].self_ns + 60);
}

TEST(EventTracer, RecordReportsOverwriteAndExportsNoteDrops) {
  EventTracer tracer(2);
  EXPECT_FALSE(tracer.record({1.0, 1, 0, 0.5, 0.5, TraceKind::kPlacement}));
  EXPECT_FALSE(tracer.record({2.0, 2, 0, 0.5, 0.5, TraceKind::kPlacement}));
  EXPECT_TRUE(tracer.record({3.0, 3, 0, 0.5, 0.5, TraceKind::kPlacement}));
  EXPECT_EQ(tracer.dropped(), 1u);

  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_NE(json.str().find("\"droppedEvents\":1"), std::string::npos);

  std::ostringstream csv;
  tracer.write_csv(csv);
  EXPECT_NE(csv.str().find("# dropped 1 events (ring capacity 2)"),
            std::string::npos);

  // A non-overflowing ring keeps its exports trailer-free.
  EventTracer roomy(8);
  roomy.record({1.0, 1, 0, 0.5, 0.5, TraceKind::kPlacement});
  std::ostringstream clean;
  roomy.write_csv(clean);
  EXPECT_EQ(clean.str().find("# dropped"), std::string::npos);
}

// ---- exporter golden outputs ----------------------------------------

TEST(Exporters, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  const CounterHandle c = registry.counter("t_requests_total", "requests served");
  const GaugeHandle g = registry.gauge("t_temp");
  const HistogramHandle h = registry.histogram("t_lat", {1.0, 2.0});
  registry.add(c, 3);
  registry.set(g, 1.5);
  registry.observe(h, 0.5);
  registry.observe(h, 1.5);
  registry.observe(h, 5.0);

  std::ostringstream os;
  write_prometheus(os, registry.snapshot());
  const std::string expected =
      "# HELP t_requests_total requests served\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total 3\n"
      "# TYPE t_temp gauge\n"
      "t_temp 1.5\n"
      "# TYPE t_lat histogram\n"
      "t_lat_bucket{le=\"1\"} 1\n"
      "t_lat_bucket{le=\"2\"} 2\n"
      "t_lat_bucket{le=\"+Inf\"} 3\n"
      "t_lat_sum 7\n"
      "t_lat_count 3\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Exporters, JsonGoldenOutput) {
  MetricsRegistry registry;
  const CounterHandle c = registry.counter("t_requests_total");
  const GaugeHandle g = registry.gauge("t_temp");
  const HistogramHandle h = registry.histogram("t_lat", {1.0, 2.0});
  registry.add(c, 3);
  registry.set(g, 1.5);
  registry.observe(h, 0.5);
  registry.observe(h, 1.5);
  registry.observe(h, 5.0);

  std::ostringstream os;
  write_json(os, registry.snapshot());
  const std::string j = os.str();
  EXPECT_EQ(j.rfind("{\"counters\":{\"t_requests_total\":3},"
                    "\"gauges\":{\"t_temp\":1.5},\"histograms\":{\"t_lat\":{",
                    0),
            0u);
  EXPECT_NE(j.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(j.find("\"counts\":[1,1,1]"), std::string::npos);
  EXPECT_NE(j.find("\"count\":3,\"sum\":7,\"min\":0.5,\"max\":5"),
            std::string::npos);
  EXPECT_NE(j.find("\"p50\":"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(j.back(), '}');

  std::ostringstream prof;
  Profiler profiler;
  profiler.add_sample(profiler.section("s"), 250);
  write_profiler_json(prof, profiler.stats());
  EXPECT_EQ(prof.str(),
            "{\"profiler\":{\"s\":{\"calls\":1,\"total_ns\":250,"
            "\"self_ns\":250,\"max_ns\":250,\"mean_ns\":250}}}");

  std::ostringstream prom;
  write_profiler_prometheus(prom, profiler.stats());
  EXPECT_NE(prom.str().find("mutdbp_profile_self_ns{section=\"s\"} 250"),
            std::string::npos);
}

// ---- telemetry facade + engine integration --------------------------

TEST(Telemetry, ResolvePrefersExplicitPointer) {
  Telemetry local;
  EXPECT_EQ(Telemetry::resolve(&local), &local);
  if (!Telemetry::global_enabled()) {
    EXPECT_EQ(Telemetry::resolve(nullptr), nullptr);
  }
}

TEST(Telemetry, MetricsOnAndOffProduceIdenticalPackings) {
  const ItemList items = workload::generate(test_spec(2000, 77));
  const auto ff_off = make_algorithm("FirstFit");
  const auto ff_on = make_algorithm("FirstFit");

  const PackingResult off = simulate(items, *ff_off);

  Telemetry telemetry;
  SimulationOptions options;
  options.telemetry = &telemetry;
  const PackingResult on = simulate(items, *ff_on, options);

  // Differential guarantee: instrumentation observes, never perturbs.
  ASSERT_EQ(off.bins_opened(), on.bins_opened());
  EXPECT_EQ(off.total_usage_time(), on.total_usage_time());  // bitwise equal
  EXPECT_EQ(off.max_concurrent_bins(), on.max_concurrent_bins());
  for (std::size_t b = 0; b < off.bins().size(); ++b) {
    EXPECT_EQ(off.bins()[b].usage.left, on.bins()[b].usage.left);
    EXPECT_EQ(off.bins()[b].usage.right, on.bins()[b].usage.right);
  }
}

TEST(Telemetry, EngineCountersMatchPackingResult) {
  const ItemList items = workload::generate(test_spec(1500, 11));
  const auto algorithm = make_algorithm("FirstFit");

  Telemetry telemetry;
  SimulationOptions options;
  options.telemetry = &telemetry;
  const PackingResult result = simulate(items, *algorithm, options);

  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.find_counter("mutdbp_items_placed_total")->value, items.size());
  EXPECT_EQ(snap.find_counter("mutdbp_items_departed_total")->value, items.size());
  EXPECT_EQ(snap.find_counter("mutdbp_bins_opened_total")->value,
            result.bins_opened());
  EXPECT_EQ(snap.find_counter("mutdbp_bins_closed_total")->value,
            result.bins_opened());
  EXPECT_DOUBLE_EQ(snap.find_gauge("mutdbp_open_bins")->value, 0.0);

  // usage-time-by-bin: one observation per closed bin; the sum equals the
  // MinUsageTime objective up to FP accumulation order.
  const HistogramSnapshot* usage = snap.find_histogram("mutdbp_bin_usage_time");
  ASSERT_NE(usage, nullptr);
  EXPECT_EQ(usage->count, result.bins_opened());
  EXPECT_NEAR(usage->sum, result.total_usage_time(),
              1e-9 * std::max(1.0, result.total_usage_time()));

  const HistogramSnapshot* fill = snap.find_histogram("mutdbp_fill_level");
  ASSERT_NE(fill, nullptr);
  EXPECT_EQ(fill->count, items.size());  // one fill-level sample per placement
  EXPECT_LE(fill->max, 1.0 + 1e-9);

  // Placement + bin-open records flowed into the trace ring.
  EXPECT_EQ(telemetry.tracer().recorded(),
            items.size() + 2 * result.bins_opened());

  // The simulate() hot sections were profiled.
  const auto stats = telemetry.profiler().stats();
  bool saw_events = false;
  for (const auto& s : stats) {
    if (s.name == "simulate.events") {
      saw_events = true;
      EXPECT_EQ(s.calls, 1u);
      EXPECT_GT(s.total_ns, 0u);
    }
  }
  EXPECT_TRUE(saw_events);
}

TEST(Telemetry, FaultCountersMatchRunWithFaultsReport) {
  const ItemList items = workload::generate(test_spec(400, 5));

  std::vector<Time> schedule;
  for (double t = 1.0; t < 60.0; t += 1.5) schedule.push_back(t);

  cloud::FaultyRunOptions options;
  options.fault_schedule = schedule;
  options.victim = cloud::VictimPolicy::kFullest;
  options.retry.kind = cloud::RetryPolicy::Kind::kBackoff;
  options.retry.base_delay = 0.25;
  options.retry.max_attempts = 2;

  Telemetry telemetry;
  options.sim.telemetry = &telemetry;
  const auto algorithm = make_algorithm("FirstFit");
  const cloud::FaultyRunReport report =
      cloud::run_with_faults(items, *algorithm, options);

  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  const auto counter = [&](const char* name) {
    const auto* c = snap.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value : 0;
  };
  EXPECT_EQ(counter("mutdbp_faults_injected_total"), report.faults_injected);
  EXPECT_EQ(counter("mutdbp_faults_idle_total"), report.faults_idle);
  EXPECT_EQ(counter("mutdbp_items_evicted_total"), report.evictions);
  EXPECT_EQ(counter("mutdbp_jobs_replaced_total"), report.replacements);
  EXPECT_EQ(counter("mutdbp_jobs_dropped_total"), report.drops);
  EXPECT_EQ(counter("mutdbp_jobs_submitted_total"), items.size());
  EXPECT_EQ(counter("mutdbp_jobs_completed_total"), report.completed);
  EXPECT_GT(report.faults_injected, 0u);  // the schedule actually hit servers

  // The same counters drive analysis::summarize_disruption: building the
  // inputs from telemetry must agree with building them from the report.
  analysis::DisruptionInputs from_report;
  from_report.jobs = items.size();
  from_report.faults_injected = report.faults_injected;
  from_report.evictions = report.evictions;
  from_report.replacements = report.replacements;
  from_report.drops = report.drops;
  analysis::DisruptionInputs from_telemetry = from_report;
  from_telemetry.faults_injected = counter("mutdbp_faults_injected_total");
  from_telemetry.evictions = counter("mutdbp_items_evicted_total");
  from_telemetry.replacements = counter("mutdbp_jobs_replaced_total");
  from_telemetry.drops = counter("mutdbp_jobs_dropped_total");
  const auto a = analysis::summarize_disruption(from_report);
  const auto b = analysis::summarize_disruption(from_telemetry);
  EXPECT_DOUBLE_EQ(a.loss_rate(), b.loss_rate());
  EXPECT_DOUBLE_EQ(a.evictions_per_job(), b.evictions_per_job());
}

TEST(Telemetry, TraceCanBeDisabledWhileMetricsStayOn) {
  TelemetryOptions topts;
  topts.trace = false;
  topts.trace_capacity = 16;
  Telemetry telemetry(topts);

  const ItemList items = workload::generate(test_spec(200, 3));
  const auto algorithm = make_algorithm("FirstFit");
  SimulationOptions options;
  options.telemetry = &telemetry;
  const PackingResult result = simulate(items, *algorithm, options);

  EXPECT_EQ(telemetry.tracer().recorded(), 0u);
  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.find_counter("mutdbp_bins_opened_total")->value,
            result.bins_opened());
}

TEST(Telemetry, TraceDroppedCounterMatchesRingOverflow) {
  TelemetryOptions topts;
  topts.trace_capacity = 8;  // force the ring to wrap on any real workload
  Telemetry telemetry(topts);

  const ItemList items = workload::generate(test_spec(300, 9));
  const auto algorithm = make_algorithm("FirstFit");
  SimulationOptions options;
  options.telemetry = &telemetry;
  (void)simulate(items, *algorithm, options);

  const std::uint64_t dropped = telemetry.tracer().dropped();
  EXPECT_GT(dropped, 0u);
  const MetricsSnapshot snap = telemetry.metrics().snapshot();
  ASSERT_NE(snap.find_counter("mutdbp_trace_dropped_total"), nullptr);
  EXPECT_EQ(snap.find_counter("mutdbp_trace_dropped_total")->value, dropped);
}

}  // namespace
}  // namespace mutdbp::telemetry
