#include "opt/opt_integral.h"

#include <gtest/gtest.h>

#include "opt/lower_bounds.h"

namespace mutdbp::opt {
namespace {

TEST(LowerBounds, Proposition1) {
  // Σ s(r)|I(r)| = 0.6*2 + 0.6*2 = 2.4
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.6, 1.0, 3.0)});
  EXPECT_DOUBLE_EQ(prop1_time_space_bound(items), 2.4);
}

TEST(LowerBounds, Proposition1ScalesWithCapacity) {
  const ItemList items({make_item(1, 2.0, 0.0, 3.0)}, 4.0);
  EXPECT_DOUBLE_EQ(prop1_time_space_bound(items), 1.5);
}

TEST(LowerBounds, Proposition2IsSpan) {
  const ItemList items({make_item(1, 0.1, 0.0, 2.0), make_item(2, 0.1, 5.0, 6.0)});
  EXPECT_DOUBLE_EQ(prop2_span_bound(items), 3.0);
}

TEST(LowerBounds, LoadCeilingKnownValue) {
  // A 0.6 [0,2), B 0.6 [1,3): ceil(load) = 1,2,1 on unit segments -> 4.
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.6, 1.0, 3.0)});
  EXPECT_DOUBLE_EQ(load_ceiling_bound(items), 4.0);
}

TEST(LowerBounds, LoadCeilingCountsIdleGapsAsZero) {
  const ItemList items({make_item(1, 0.1, 0.0, 1.0), make_item(2, 0.1, 5.0, 6.0)});
  EXPECT_DOUBLE_EQ(load_ceiling_bound(items), 2.0);
}

TEST(LowerBounds, LoadCeilingAtLeastOneWhenActive) {
  // Tiny load still requires one bin.
  const ItemList items({make_item(1, 0.01, 0.0, 10.0)});
  EXPECT_DOUBLE_EQ(load_ceiling_bound(items), 10.0);
}

TEST(LowerBounds, CombinedDominatesEachBound) {
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.6, 1.0, 3.0),
                        make_item(3, 0.3, 5.0, 9.0)});
  const double combined = combined_lower_bound(items);
  EXPECT_GE(combined, prop1_time_space_bound(items) - 1e-12);
  EXPECT_GE(combined, prop2_span_bound(items) - 1e-12);
  EXPECT_GE(combined, load_ceiling_bound(items) - 1e-12);
}

TEST(LowerBounds, EmptyList) {
  EXPECT_DOUBLE_EQ(load_ceiling_bound(ItemList{}), 0.0);
  EXPECT_DOUBLE_EQ(combined_lower_bound(ItemList{}), 0.0);
}

TEST(OptIntegral, TwoOverlappingLargeItems) {
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.6, 1.0, 3.0)});
  const OptIntegral result = opt_total(items);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower, 4.0);  // 1*1 + 2*1 + 1*1
  EXPECT_DOUBLE_EQ(result.upper, 4.0);
  EXPECT_EQ(result.segments, 3u);
  EXPECT_EQ(result.max_active_items, 2u);
}

TEST(OptIntegral, RepackingBeatsAnyOnlineAlgorithm) {
  // Two 0.3 items can always share one bin.
  const ItemList items({make_item(1, 0.3, 0.0, 4.0), make_item(2, 0.4, 1.0, 2.0)});
  const OptIntegral result = opt_total(items);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower, 4.0);  // one bin on [0,4)
}

TEST(OptIntegral, SkipsIdleGaps) {
  const ItemList items({make_item(1, 0.5, 0.0, 1.0), make_item(2, 0.5, 3.0, 4.0)});
  const OptIntegral result = opt_total(items);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower, 2.0);
  EXPECT_EQ(result.segments, 2u);  // the idle [1,3) contributes nothing
}

TEST(OptIntegral, HalfOpenDepartures) {
  // A departs at 1 exactly when B arrives: they never coexist.
  const ItemList items({make_item(1, 0.9, 0.0, 1.0), make_item(2, 0.9, 1.0, 2.0)});
  const OptIntegral result = opt_total(items);
  EXPECT_DOUBLE_EQ(result.lower, 2.0);
  EXPECT_DOUBLE_EQ(result.upper, 2.0);
}

TEST(OptIntegral, EmptyList) {
  const OptIntegral result = opt_total(ItemList{});
  EXPECT_DOUBLE_EQ(result.lower, 0.0);
  EXPECT_DOUBLE_EQ(result.upper, 0.0);
  EXPECT_TRUE(result.exact);
}

TEST(OptIntegral, DominatesClosedFormLowerBounds) {
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.7, 0.5, 2.5),
                        make_item(3, 0.2, 1.0, 4.0), make_item(4, 0.9, 3.0, 6.0)});
  const OptIntegral result = opt_total(items);
  ASSERT_TRUE(result.exact);
  EXPECT_GE(result.lower + 1e-9, combined_lower_bound(items));
}

TEST(OptIntegral, FallbackBracketsWhenSegmentTooLarge) {
  OptIntegralOptions options;
  options.exact_item_limit = 2;  // force the FFD/L2 bracket path
  std::vector<Item> items;
  for (ItemId i = 0; i < 6; ++i) items.push_back(make_item(i, 0.4, 0.0, 1.0));
  const OptIntegral result = opt_total(ItemList(std::move(items)), options);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_GE(result.lower, 2.4 - 1e-9);  // continuous bound 6*0.4
  EXPECT_LE(result.upper, 3.0 + 1e-9);  // FFD packs 2-2-2
}

}  // namespace
}  // namespace mutdbp::opt
