// The DVBP differential wall. Three equivalences, each enforced for every
// registered vector algorithm:
//
//  1. dims == 1 ≡ scalar: a 1-D vector run must be BIT-IDENTICAL (bins,
//     usage bit patterns, placement digest) to its scalar counterpart
//     (md_scalar_counterpart) on the same workload — random workloads and
//     the paper's adversarial families alike. This is what certifies the
//     vector engine, kernel, and fill measures as a strict generalization.
//  2. streaming ≡ batch: feeding any batch granularity, shuffled inside
//     each chunk, through MDStreamingSimulation must reproduce one-shot
//     md_simulate() digests exactly — with a checkpoint→restore at a
//     random cut in the loop.
//  3. tree kernel ≡ snapshot reference: the VectorCapacityTree fast path
//     and the MDWithSnapshots<> linear-scan path must make identical
//     decisions (vector_kernel_test.cpp drills the tree itself).
//
// The `MDDifferential` suite is the tier-1 subset; `SlowMDDifferential`
// (ctest label `slow`) widens the sweep; `FuzzMultidim` (label `fuzz`)
// flips checkpoint bits and asserts every corruption dies as a
// ValidationError, never as a crash or a silently different packing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "core/error.h"
#include "core/packing_result.h"
#include "core/simulation.h"
#include "multidim/md_algorithms.h"
#include "multidim/md_streaming.h"
#include "multidim/md_workload.h"
#include "opt/lower_bounds.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace mutdbp::md {
namespace {

/// Lifts a scalar workload to a 1-D vector list, id-for-id.
MDItemList to_one_dim(const ItemList& items) {
  std::vector<MDItem> md_items;
  md_items.reserve(items.size());
  for (const Item& item : items) {
    md_items.push_back(
        make_md_item(item.id, {item.size}, item.arrival(), item.departure()));
  }
  return MDItemList(std::move(md_items), {items.capacity()});
}

MDItemList random_md_workload(Rng& rng, std::size_t dims) {
  MDWorkloadSpec spec;
  spec.num_items = 40 + static_cast<std::size_t>(rng.uniform_u64(0, 120));
  spec.dimensions = dims;
  spec.seed = rng.uniform_u64(1, 1u << 30);
  spec.correlation = -1.0 + 2.0 * rng.next_double();
  spec.duration_max = 2.0 + 5.0 * rng.next_double();
  return generate_md(spec);
}

void expect_md_identical(const MDPackingResult& a, const MDPackingResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.bins_opened(), b.bins_opened()) << label;
  ASSERT_EQ(a.total_usage_time(), b.total_usage_time()) << label;
  ASSERT_EQ(md_packing_digest(a), md_packing_digest(b)) << label;
}

// ---- 1. dims == 1 ≡ scalar --------------------------------------------

void expect_scalar_equivalence(const ItemList& scalar_items,
                               double fit_epsilon, const std::string& label) {
  const MDItemList vector_items = to_one_dim(scalar_items);
  for (const auto& name : md_algorithm_names()) {
    const auto counterpart = md_scalar_counterpart(name);
    if (!counterpart) continue;  // DotProduct: no scalar twin
    const auto scalar_algo =
        make_algorithm(*counterpart, /*seed=*/1, fit_epsilon);
    SimulationOptions scalar_options;
    scalar_options.fit_epsilon = fit_epsilon;
    const PackingResult scalar =
        simulate(scalar_items, *scalar_algo, scalar_options);

    const auto vector_algo = make_md_algorithm(name, fit_epsilon);
    const MDPackingResult vector =
        md_simulate(vector_items, *vector_algo, fit_epsilon);

    const std::string context = label + "/" + name + " vs " + *counterpart;
    ASSERT_EQ(vector.bins_opened(), scalar.bins_opened()) << context;
    ASSERT_EQ(vector.total_usage_time(), scalar.total_usage_time()) << context;
    // The two digests hash identical byte sequences at dims == 1, so this
    // single comparison pins every placement, demand bit pattern, and
    // usage interval across the two engines.
    ASSERT_EQ(md_packing_digest(vector), packing_digest(scalar)) << context;
  }
}

TEST(MDDifferential, Dims1BitIdenticalToScalarOnRandomWorkloads) {
  Rng rng(2026);
  for (int round = 0; round < 3; ++round) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 80 + 40 * static_cast<std::size_t>(round);
    spec.seed = rng.uniform_u64(1, 1u << 30);
    spec.duration_max = 3.0 + 2.0 * round;
    expect_scalar_equivalence(workload::generate(spec), kDefaultFitEpsilon,
                              "random" + std::to_string(round));
  }
}

TEST(MDDifferential, Dims1BitIdenticalToScalarOnAdversarialFamilies) {
  const auto nf = workload::next_fit_lower_bound_instance(8, 6.0);
  expect_scalar_equivalence(nf.items, nf.recommended_fit_epsilon, "next_fit");
  const auto pin = workload::any_fit_pinning_instance(8, 6.0);
  expect_scalar_equivalence(pin.items, pin.recommended_fit_epsilon, "pinning");
  const auto decoy = workload::best_fit_decoy_instance(4, 6.0);
  expect_scalar_equivalence(decoy.items, decoy.recommended_fit_epsilon,
                            "decoy");
}

// ---- 2. streaming ≡ batch ---------------------------------------------

/// One randomized scenario: random chunking of the canonical schedule,
/// shuffled inside each chunk, an optional checkpoint→restore at a random
/// flush boundary, then a digest comparison against batch md_simulate().
void run_md_scenario(const std::string& algorithm, const MDItemList& items,
                     Rng& rng, bool with_restore) {
  const auto batch_algo = make_md_algorithm(algorithm);
  const MDPackingResult batch = md_simulate(items, *batch_algo);

  auto stream_algo = make_md_algorithm(algorithm);
  MDStreamingOptions options;
  options.capacity = items.capacity();
  auto stream =
      std::make_unique<MDStreamingSimulation>(*stream_algo, options);

  const std::size_t total = items.schedule().size();
  const std::size_t restore_at =
      with_restore ? rng.uniform_u64(0, total) : total + 1;

  std::unique_ptr<MDPackingAlgorithm> restored_algo;
  std::size_t i = 0;
  std::vector<MDStreamEvent> chunk;
  while (i < total) {
    const std::size_t chunk_size =
        std::min<std::size_t>(1 + rng.uniform_u64(0, 15), total - i);
    chunk.clear();
    for (std::size_t k = 0; k < chunk_size; ++k, ++i) {
      const MDScheduledEvent& event = items.schedule()[i];
      if (event.is_arrival) {
        chunk.push_back({MDStreamEvent::Kind::kArrival, event.id,
                         items[event.item_pos].demand, event.t});
      } else {
        chunk.push_back({MDStreamEvent::Kind::kDeparture, event.id, {}, event.t});
      }
    }
    // Shuffle inside the chunk: flush() owns the canonical re-ordering.
    for (std::size_t k = chunk.size(); k > 1; --k) {
      std::swap(chunk[k - 1], chunk[rng.uniform_u64(0, k - 1)]);
    }
    for (MDStreamEvent& event : chunk) stream->push(std::move(event));
    stream->flush();

    if (with_restore && stream->events_applied() >= restore_at &&
        restored_algo == nullptr) {
      std::ostringstream out(std::ios::binary);
      stream->snapshot(out);
      std::istringstream in(out.str(), std::ios::binary);
      restored_algo = make_md_algorithm(algorithm);
      stream = std::make_unique<MDStreamingSimulation>(
          MDStreamingSimulation::restore(in, *restored_algo));
    }
  }

  const std::string label =
      algorithm + (with_restore ? "+restore" : "") + " dims=" +
      std::to_string(items.dimensions());
  expect_md_identical(stream->finish(), batch, label);
}

TEST(MDDifferential, StreamingMatchesBatchForEveryAlgorithm) {
  Rng rng(7);
  for (const std::size_t dims : {1u, 2u, 3u}) {
    const MDItemList items = random_md_workload(rng, dims);
    for (const auto& name : md_algorithm_names()) {
      run_md_scenario(name, items, rng, /*with_restore=*/false);
    }
  }
}

TEST(MDDifferential, CheckpointRestoreAtRandomCutsForEveryAlgorithm) {
  Rng rng(8);
  const MDItemList items = random_md_workload(rng, 2);
  for (const auto& name : md_algorithm_names()) {
    run_md_scenario(name, items, rng, /*with_restore=*/true);
  }
}

TEST(MDDifferential, RestoreRejectsAlgorithmMismatch) {
  Rng rng(9);
  const MDItemList items = random_md_workload(rng, 2);
  auto ff = make_md_algorithm("VectorFirstFit");
  MDStreamingOptions options;
  options.capacity = items.capacity();
  MDStreamingSimulation stream(*ff, options);
  const MDScheduledEvent& first = items.schedule().front();
  stream.push_arrival(first.id, items[first.item_pos].demand, first.t);
  (void)stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);

  std::istringstream in(out.str(), std::ios::binary);
  auto bf = make_md_algorithm("VectorBestFit");
  EXPECT_THROW((void)MDStreamingSimulation::restore(in, *bf), ValidationError);
}

// ---- live bounds & telemetry -------------------------------------------

TEST(MDDifferential, LiveBoundsMatchBatchSweepBitForBit) {
  Rng rng(10);
  for (const std::size_t dims : {1u, 3u}) {
    const MDItemList items = random_md_workload(rng, dims);
    VectorFirstFit ff;
    MDSimulationOptions options;
    options.capacity = items.capacity();
    MDSimulation sim(ff, options);
    for (const MDScheduledEvent& event : items.schedule()) {
      if (event.is_arrival) {
        (void)sim.arrive(event.id, items[event.item_pos].demand, event.t);
      } else {
        sim.depart(event.id, event.t);
      }
    }
    const MDBoundsState live = sim.bounds_state();
    const MDLowerBounds batch = md_lower_bounds(items);
    ASSERT_EQ(live.prop1, batch.prop1);
    ASSERT_EQ(live.prop2, batch.prop2);
    ASSERT_EQ(live.load_ceiling, batch.load_ceiling);
    ASSERT_EQ(live.lower_bound, batch.combined());
    (void)sim.finish();
  }
}

TEST(MDDifferential, RatioMonitorSeesVectorBounds) {
  Rng rng(11);
  const MDItemList items = random_md_workload(rng, 2);
  telemetry::Telemetry telemetry;
  VectorFirstFit ff;
  const MDPackingResult result =
      md_simulate(items, ff, kDefaultFitEpsilon, &telemetry);
  const telemetry::RatioRunState state = telemetry.monitor().current();
  ASSERT_TRUE(state.finished);
  const MDLowerBounds batch = md_lower_bounds(items);
  ASSERT_EQ(state.lb_prop1, batch.prop1);
  ASSERT_EQ(state.lb_prop2, batch.prop2);
  ASSERT_EQ(state.lb_load_ceiling, batch.load_ceiling);
  ASSERT_EQ(state.lower_bound, batch.combined());
  ASSERT_NEAR(state.usage, result.total_usage_time(),
              1e-9 * std::max(1.0, result.total_usage_time()));

  const auto snapshot = telemetry.metrics().snapshot();
  const auto* placed = snapshot.find_counter("mutdbp_md_items_placed_total");
  ASSERT_NE(placed, nullptr);
  ASSERT_EQ(placed->value, static_cast<double>(items.size()));
}

// ---- slow tier ----------------------------------------------------------

TEST(SlowMDDifferential, WideRandomizedSweep) {
  Rng rng(12);
  for (int round = 0; round < 12; ++round) {
    const std::size_t dims = 1 + static_cast<std::size_t>(rng.uniform_u64(0, 3));
    const MDItemList items = random_md_workload(rng, dims);
    for (const auto& name : md_algorithm_names()) {
      run_md_scenario(name, items, rng, /*with_restore=*/(round % 2 == 1));
    }
  }
}

TEST(SlowMDDifferential, Dims1ScalarSweep) {
  Rng rng(13);
  for (int round = 0; round < 20; ++round) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 40 + static_cast<std::size_t>(rng.uniform_u64(0, 160));
    spec.seed = rng.uniform_u64(1, 1u << 30);
    spec.arrival_rate = 1.0 + 4.0 * rng.next_double();
    spec.duration_max = 2.0 + 6.0 * rng.next_double();
    expect_scalar_equivalence(workload::generate(spec), kDefaultFitEpsilon,
                              "sweep" + std::to_string(round));
  }
}

// ---- fuzz tier ----------------------------------------------------------

std::size_t fuzz_iterations(std::size_t base) {
  if (const char* env = std::getenv("MUTDBP_FUZZ_ITERS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return base;
}

TEST(FuzzMultidim, CorruptCheckpointsNeverCrashOrDivergeSilently) {
  Rng rng(14);
  const MDItemList items = random_md_workload(rng, 2);
  auto ff = make_md_algorithm("VectorFirstFit");
  MDStreamingOptions options;
  options.capacity = items.capacity();
  MDStreamingSimulation stream(*ff, options);
  const std::size_t half = items.schedule().size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const MDScheduledEvent& event = items.schedule()[i];
    if (event.is_arrival) {
      stream.push_arrival(event.id, items[event.item_pos].demand, event.t);
    } else {
      stream.push_departure(event.id, event.t);
    }
  }
  (void)stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);
  const std::string pristine = out.str();

  // The pristine frame restores; every single-bit flip and every
  // truncation must throw ValidationError (frame checksum, bounds-checked
  // reader, payload validation) — never crash, never restore quietly into
  // a different packing.
  const std::size_t iters = fuzz_iterations(300);
  for (std::size_t round = 0; round < iters; ++round) {
    std::string corrupt = pristine;
    if (round % 4 == 0) {
      corrupt.resize(rng.uniform_u64(0, corrupt.size() - 1));
    } else {
      const std::size_t byte = rng.uniform_u64(0, corrupt.size() - 1);
      corrupt[byte] = static_cast<char>(
          corrupt[byte] ^ static_cast<char>(1u << rng.uniform_u64(0, 7)));
    }
    std::istringstream in(corrupt, std::ios::binary);
    auto fresh = make_md_algorithm("VectorFirstFit");
    try {
      const MDStreamingSimulation restored =
          MDStreamingSimulation::restore(in, *fresh);
      // A flip that survives the checksum is astronomically unlikely; a
      // truncation at exactly full length is the one benign case.
      ASSERT_EQ(corrupt.size(), pristine.size());
      ASSERT_EQ(corrupt, pristine);
      ASSERT_EQ(restored.events_applied(), stream.events_applied());
    } catch (const ValidationError&) {
      // expected
    }
  }
}

TEST(FuzzMultidim, RandomWorkloadsKeepAllEquivalences) {
  Rng rng(15);
  const std::size_t iters = fuzz_iterations(10);
  for (std::size_t round = 0; round < iters; ++round) {
    const std::size_t dims = 1 + static_cast<std::size_t>(rng.uniform_u64(0, 3));
    const MDItemList items = random_md_workload(rng, dims);
    const auto names = md_algorithm_names();
    const auto& name = names[rng.uniform_u64(0, names.size() - 1)];
    run_md_scenario(name, items, rng, /*with_restore=*/(round % 3 == 0));
  }
}

}  // namespace
}  // namespace mutdbp::md
