#include "core/interval.h"

#include <gtest/gtest.h>

namespace mutdbp {
namespace {

TEST(Interval, LengthAndEmptiness) {
  const Interval iv{2.0, 5.0};
  EXPECT_DOUBLE_EQ(iv.length(), 3.0);
  EXPECT_FALSE(iv.empty());

  const Interval empty{5.0, 5.0};
  EXPECT_DOUBLE_EQ(empty.length(), 0.0);
  EXPECT_TRUE(empty.empty());

  const Interval inverted{5.0, 2.0};
  EXPECT_DOUBLE_EQ(inverted.length(), 0.0);
  EXPECT_TRUE(inverted.empty());
}

TEST(Interval, HalfOpenContains) {
  const Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));   // left endpoint included
  EXPECT_FALSE(iv.contains(2.0));  // right endpoint excluded
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(Interval, HalfOpenOverlap) {
  EXPECT_FALSE((Interval{0.0, 1.0}).overlaps(Interval{1.0, 2.0}));
  EXPECT_TRUE((Interval{0.0, 1.5}).overlaps(Interval{1.0, 2.0}));
  EXPECT_TRUE((Interval{0.0, 3.0}).overlaps(Interval{1.0, 2.0}));
  EXPECT_FALSE((Interval{0.0, 1.0}).overlaps(Interval{2.0, 3.0}));
}

TEST(Interval, Intersect) {
  const Interval a{0.0, 2.0};
  const Interval b{1.0, 3.0};
  EXPECT_EQ(a.intersect(b), (Interval{1.0, 2.0}));
  EXPECT_TRUE(a.intersect(Interval{2.0, 3.0}).empty());
}

TEST(Interval, ContainsInterval) {
  const Interval outer{0.0, 10.0};
  EXPECT_TRUE(outer.contains(Interval{0.0, 10.0}));
  EXPECT_TRUE(outer.contains(Interval{3.0, 4.0}));
  EXPECT_TRUE(outer.contains(Interval{5.0, 5.0}));  // empty is contained
  EXPECT_FALSE(outer.contains(Interval{-1.0, 5.0}));
  EXPECT_FALSE(outer.contains(Interval{5.0, 10.5}));
}

TEST(IntervalSet, InsertDisjointPieces) {
  IntervalSet set;
  set.insert({0.0, 1.0});
  set.insert({2.0, 3.0});
  EXPECT_EQ(set.pieces().size(), 2u);
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet set;
  set.insert({0.0, 2.0});
  set.insert({1.0, 3.0});
  ASSERT_EQ(set.pieces().size(), 1u);
  EXPECT_EQ(set.pieces().front(), (Interval{0.0, 3.0}));
  EXPECT_DOUBLE_EQ(set.total_length(), 3.0);
}

TEST(IntervalSet, MergesTouching) {
  IntervalSet set;
  set.insert({0.0, 1.0});
  set.insert({1.0, 2.0});
  ASSERT_EQ(set.pieces().size(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
}

TEST(IntervalSet, MergeBridgesManyPieces) {
  IntervalSet set;
  set.insert({0.0, 1.0});
  set.insert({2.0, 3.0});
  set.insert({4.0, 5.0});
  set.insert({0.5, 4.5});  // bridges all three
  ASSERT_EQ(set.pieces().size(), 1u);
  EXPECT_EQ(set.pieces().front(), (Interval{0.0, 5.0}));
}

TEST(IntervalSet, IgnoresEmptyInsert) {
  IntervalSet set;
  set.insert({3.0, 3.0});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OutOfOrderInsertStaysSorted) {
  IntervalSet set;
  set.insert({8.0, 9.0});
  set.insert({0.0, 1.0});
  set.insert({4.0, 5.0});
  ASSERT_EQ(set.pieces().size(), 3u);
  EXPECT_LT(set.pieces()[0].left, set.pieces()[1].left);
  EXPECT_LT(set.pieces()[1].left, set.pieces()[2].left);
}

TEST(IntervalSet, ContainsAndIntersects) {
  IntervalSet set;
  set.insert({0.0, 1.0});
  set.insert({2.0, 3.0});
  EXPECT_TRUE(set.contains(0.5));
  EXPECT_FALSE(set.contains(1.5));
  EXPECT_FALSE(set.contains(1.0));  // half-open
  EXPECT_TRUE(set.intersects({0.5, 0.6}));
  EXPECT_TRUE(set.intersects({1.5, 2.5}));
  EXPECT_FALSE(set.intersects({1.0, 2.0}));
  EXPECT_FALSE(set.intersects({3.0, 4.0}));
}

TEST(IntervalSet, Hull) {
  IntervalSet set;
  EXPECT_TRUE(set.hull().empty());
  set.insert({1.0, 2.0});
  set.insert({5.0, 6.0});
  EXPECT_EQ(set.hull(), (Interval{1.0, 6.0}));
}

TEST(IntervalToString, Formats) {
  EXPECT_EQ(to_string(Interval{0.0, 2.5}), "[0, 2.5)");
}

}  // namespace
}  // namespace mutdbp
