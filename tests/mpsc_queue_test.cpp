// util/mpsc_queue.h contracts: per-producer FIFO, bounded capacity with
// backpressure (never drops), slot-order drain, and clean close semantics.
// The stress test runs multiple producers against tiny rings so wraparound
// and contention paths are exercised constantly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/error.h"
#include "util/mpsc_queue.h"

namespace mutdbp {
namespace {

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  // A capacity-8 ring accepts exactly 8 items before reporting full.
  int accepted = 0;
  while (ring.try_push(accepted)) ++accepted;
  EXPECT_EQ(accepted, 8);
}

TEST(SpscRing, FifoAcrossWraparound) {
  SpscRing<int> ring(4);
  std::vector<int> seen;
  int next = 0;
  for (int round = 0; round < 10; ++round) {
    while (ring.try_push(next)) ++next;
    ring.drain([&](int v) { seen.push_back(v); });
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscQueue, TryPushReportsFullWithoutDropping) {
  MpscQueue<int> queue(/*producers=*/1, /*capacity=*/4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(0, i));
  EXPECT_FALSE(queue.try_push(0, 99));  // full: rejected, not dropped

  std::vector<int> seen;
  queue.drain([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MpscQueue, DrainVisitsProducersInSlotOrder) {
  MpscQueue<int> queue(/*producers=*/3, /*capacity=*/8);
  // Interleave pushes; drain must still group by producer slot 0, 1, 2.
  ASSERT_TRUE(queue.try_push(2, 20));
  ASSERT_TRUE(queue.try_push(0, 0));
  ASSERT_TRUE(queue.try_push(1, 10));
  ASSERT_TRUE(queue.try_push(0, 1));
  std::vector<int> seen;
  queue.drain([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 10, 20}));
}

TEST(MpscQueue, PushAfterCloseOnFullRingThrows) {
  MpscQueue<int> queue(1, 2);
  ASSERT_TRUE(queue.try_push(0, 1));
  ASSERT_TRUE(queue.try_push(0, 2));
  queue.close();
  // A blocking push cannot ever succeed now: the consumer is gone.
  EXPECT_THROW(queue.push(0, 3), ValidationError);
}

TEST(MpscQueue, PushForTimesOutOnAFullRingWithoutEnqueueing) {
  MpscQueue<int> queue(1, 2);
  ASSERT_TRUE(queue.try_push(0, 1));
  ASSERT_TRUE(queue.try_push(0, 2));
  // No consumer drains: the bounded wait must expire and report the shed.
  EXPECT_FALSE(queue.push_for(0, 3, std::chrono::microseconds(200)));

  // The rejected value was NOT stored: draining yields exactly the two
  // admitted elements, and the freed ring accepts a retry immediately.
  std::vector<int> seen;
  queue.drain([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
  EXPECT_TRUE(queue.push_for(0, 3, std::chrono::microseconds(0)));
}

TEST(MpscQueue, PushForSucceedsOnceAConsumerFreesSpace) {
  MpscQueue<int> queue(1, 2);
  ASSERT_TRUE(queue.try_push(0, 1));
  ASSERT_TRUE(queue.try_push(0, 2));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.drain([](int) {});
  });
  // Generous bound: the drain above lands well inside it, so the waiting
  // push admits instead of shedding.
  EXPECT_TRUE(queue.push_for(0, 3, std::chrono::seconds(5)));
  consumer.join();
  std::vector<int> seen;
  queue.drain([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{3}));
}

TEST(MpscQueue, PushForThrowsWhenClosedWhileWaiting) {
  MpscQueue<int> queue(1, 2);
  ASSERT_TRUE(queue.try_push(0, 1));
  ASSERT_TRUE(queue.try_push(0, 2));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.close();
  });
  // The ring never frees and the queue closes mid-wait: the push must
  // surface the shutdown as an error, not keep spinning or return false.
  EXPECT_THROW((void)queue.push_for(0, 3, std::chrono::seconds(60)),
               ValidationError);
  closer.join();
}

TEST(MpscQueue, CloseWakesAWaitingConsumer) {
  MpscQueue<int> queue(1, 8);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    while (!queue.closed() || !queue.empty()) {
      std::size_t n = 0;
      queue.drain([&](int) { ++n; });
      if (n == 0) queue.wait();
    }
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

// Multi-producer stress against deliberately tiny rings: blocking push
// provides backpressure, so every element must arrive exactly once and in
// per-producer order even though rings wrap thousands of times.
TEST(MpscQueue, StressPreservesPerProducerSequences) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> queue(kProducers, /*capacity=*/16);

  std::vector<std::vector<std::uint32_t>> received(kProducers);
  std::thread consumer([&] {
    std::size_t total = 0;
    while (total < kProducers * kPerProducer) {
      std::size_t n = 0;
      queue.drain([&](std::uint64_t packed) {
        const auto producer = static_cast<std::size_t>(packed >> 32);
        received[producer].push_back(static_cast<std::uint32_t>(packed));
        ++n;
      });
      total += n;
      if (n == 0) queue.wait();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        queue.push(p, (static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  queue.close();

  for (std::size_t p = 0; p < kProducers; ++p) {
    ASSERT_EQ(received[p].size(), kPerProducer) << "producer " << p;
    for (std::uint32_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(received[p][i], i) << "producer " << p << " lost order at " << i;
    }
  }
}

}  // namespace
}  // namespace mutdbp
