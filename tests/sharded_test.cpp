// The sharded fleet's load-bearing invariants (core/sharded.h):
//
//  1. N = 1 sharded ≡ single-threaded simulate() bit-for-bit, for every
//     registered algorithm, on random and adversarial traces.
//  2. For any N, the merged usage / lower-bound / ratio aggregates are
//     bitwise equal to the shard-order fold of N standalone batch runs of
//     the same routing partition.
//  3. The pipelined (MPSC-fed, worker-thread) path and the batch
//     run_sharded() path agree bit-for-bit at every shard count, and a
//     given (trace, N) reproduces identically across runs.
//  4. Checkpoints round-trip mid-stream and corruption is always a clean
//     ValidationError.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "core/error.h"
#include "core/sharded.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "telemetry/telemetry.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace mutdbp {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 4, 7};

ItemList random_workload(Rng& rng, std::size_t max_items = 200) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 40 + static_cast<std::size_t>(rng.uniform_u64(0, max_items - 40));
  spec.seed = rng.uniform_u64(1, 1u << 30);
  spec.arrival_rate = 1.0 + 4.0 * rng.next_double();
  spec.duration_max = 2.0 + 6.0 * rng.next_double();
  spec.size_min = 0.02;
  spec.size_max = 0.3 + 0.6 * rng.next_double();
  return workload::generate(spec);
}

/// Feeds the items' canonical schedule through a pipelined fleet, one
/// producer, event at a time — the trace-replay ingest shape.
ShardedResult run_pipelined(const ItemList& items, const std::string& algorithm,
                            ShardedOptions options) {
  options.capacity = items.capacity();
  ShardedSimulation fleet(registry_factory(algorithm, options.algorithm_seed,
                                           options.fit_epsilon),
                          options);
  fleet.set_reference_mu(items.mu());
  for (const ScheduledEvent& event : items.schedule()) {
    if (event.is_arrival) {
      fleet.push_arrival(event.id, event.size, event.t);
    } else {
      fleet.push_departure(event.id, event.t);
    }
  }
  return fleet.finish();
}

void expect_identical_packing(const PackingResult& actual,
                              const PackingResult& expected,
                              const ItemList& items, const std::string& label) {
  ASSERT_EQ(actual.bins_opened(), expected.bins_opened()) << label;
  // Bit-identical, not approximately equal: both paths must execute the
  // exact same floating-point operations in the exact same order.
  ASSERT_EQ(actual.total_usage_time(), expected.total_usage_time()) << label;
  for (const Item& item : items) {
    ASSERT_EQ(actual.bin_of(item.id), expected.bin_of(item.id))
        << label << " item " << item.id;
  }
  const auto& ab = actual.bins();
  const auto& eb = expected.bins();
  for (std::size_t b = 0; b < ab.size(); ++b) {
    ASSERT_EQ(ab[b].usage.left, eb[b].usage.left) << label << " bin " << b;
    ASSERT_EQ(ab[b].usage.right, eb[b].usage.right) << label << " bin " << b;
  }
}

void expect_identical_sharded(const ShardedResult& a, const ShardedResult& b,
                              const ItemList& items, const std::string& label) {
  ASSERT_EQ(a.num_shards, b.num_shards) << label;
  ASSERT_EQ(a.bin_offset, b.bin_offset) << label;
  expect_identical_packing(a.merged, b.merged, items, label);
  ASSERT_EQ(a.bounds.usage, b.bounds.usage) << label;
  ASSERT_EQ(a.bounds.lb_prop1, b.bounds.lb_prop1) << label;
  ASSERT_EQ(a.bounds.lb_prop2, b.bounds.lb_prop2) << label;
  ASSERT_EQ(a.bounds.lb_load_ceiling, b.bounds.lb_load_ceiling) << label;
  ASSERT_EQ(a.bounds.lower_bound, b.bounds.lower_bound) << label;
  ASSERT_EQ(a.bounds.ratio, b.bounds.ratio) << label;
  for (std::size_t s = 0; s < a.num_shards; ++s) {
    ASSERT_EQ(a.shards[s].usage, b.shards[s].usage) << label << " shard " << s;
    ASSERT_EQ(a.shards[s].lower_bound, b.shards[s].lower_bound)
        << label << " shard " << s;
    ASSERT_EQ(a.shards[s].items, b.shards[s].items) << label << " shard " << s;
    ASSERT_EQ(a.shards[s].events, b.shards[s].events) << label << " shard " << s;
  }
}

// ---- invariant 1: N = 1 ≡ simulate(), the whole registry --------------

TEST(Sharded, SingleShardMatchesBatchSimulateForEveryAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0x5A4D + static_cast<std::uint64_t>(name.size()));
    for (int trial = 0; trial < 4; ++trial) {
      const ItemList items = random_workload(rng);
      const auto reference_algo = make_algorithm(name);
      const PackingResult reference = simulate(items, *reference_algo);

      ShardedOptions options;
      options.num_shards = 1;
      const ShardedResult batch =
          run_sharded(items, registry_factory(name), options);
      expect_identical_packing(batch.merged, reference, items, name + "/batch");
      ASSERT_EQ(batch.bounds.usage, reference.total_usage_time()) << name;

      const ShardedResult pipelined = run_pipelined(items, name, options);
      expect_identical_packing(pipelined.merged, reference, items,
                               name + "/pipelined");

      // One shard sees the full canonical schedule, so its accumulator must
      // be bit-identical to the batch opt:: sweep of the whole workload.
      ASSERT_EQ(batch.bounds.lb_prop1, opt::prop1_time_space_bound(items)) << name;
      ASSERT_EQ(batch.bounds.lb_prop2, opt::prop2_span_bound(items)) << name;
      ASSERT_EQ(batch.bounds.lb_load_ceiling, opt::load_ceiling_bound(items))
          << name;
      ASSERT_EQ(batch.bounds.lower_bound, opt::combined_lower_bound(items)) << name;
    }
  }
}

TEST(Sharded, SingleShardMatchesBatchSimulateOnAdversarialTraces) {
  struct Family {
    std::string label;
    workload::AdversarialInstance instance;
  };
  const std::vector<Family> families = {
      {"pinning", workload::any_fit_pinning_instance(24, 10.0)},
      {"next_fit", workload::next_fit_lower_bound_instance(16, 8.0)},
      {"decoy", workload::best_fit_decoy_instance(6, 10.0)},
  };
  for (const std::string& name : algorithm_names()) {
    for (const Family& family : families) {
      const ItemList& items = family.instance.items;
      const double epsilon = family.instance.recommended_fit_epsilon;
      const auto reference_algo = make_algorithm(name, 1, epsilon);
      const PackingResult reference = simulate(items, *reference_algo);

      ShardedOptions options;
      options.num_shards = 1;
      options.fit_epsilon = epsilon;
      const ShardedResult sharded =
          run_sharded(items, registry_factory(name, 1, epsilon), options);
      expect_identical_packing(sharded.merged, reference, items,
                               name + "/" + family.label);
    }
  }
}

// ---- invariants 2 + 3: shard-count suite at N ∈ {1, 2, 4, 7} ----------

TEST(Sharded, PipelinedMatchesBatchAtEveryShardCount) {
  Rng rng(0xF1EE7);
  const ItemList items = random_workload(rng, 400);
  for (const std::size_t n : kShardCounts) {
    ShardedOptions options;
    options.num_shards = n;
    const ShardedResult batch =
        run_sharded(items, registry_factory("FirstFit"), options);
    const ShardedResult pipelined = run_pipelined(items, "FirstFit", options);
    expect_identical_sharded(pipelined, batch, items,
                             "N=" + std::to_string(n));
    // And a second pipelined run reproduces the first: (trace, N) fully
    // determines the run, regardless of thread timing.
    const ShardedResult again = run_pipelined(items, "FirstFit", options);
    expect_identical_sharded(again, pipelined, items,
                             "N=" + std::to_string(n) + "/rerun");
  }
}

TEST(Sharded, MergedAggregatesEqualShardOrderFoldOfStandaloneRuns) {
  Rng rng(0xFA11B);
  const ItemList items = random_workload(rng, 300);
  for (const std::size_t n : kShardCounts) {
    ShardedOptions options;
    options.num_shards = n;
    const ShardedResult sharded =
        run_sharded(items, registry_factory("FirstFit"), options);

    // Reference: split the workload by the routing hash, run each part as
    // an independent single-threaded batch, and fold in shard order with
    // the same left-fold operations the merge performs.
    std::vector<std::vector<Item>> parts(n);
    for (const Item& item : items) {
      parts[shard_of(item.id, n)].push_back(item);
    }
    double usage = 0.0, prop1 = 0.0, prop2 = 0.0, ceiling = 0.0, combined = 0.0;
    std::size_t bins = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const ItemList part(parts[s], items.capacity());
      const auto algo = make_algorithm("FirstFit");
      const PackingResult result = simulate(part, *algo);
      ASSERT_EQ(sharded.shards[s].usage, result.total_usage_time())
          << "N=" << n << " shard " << s;
      ASSERT_EQ(sharded.shards[s].items, parts[s].size())
          << "N=" << n << " shard " << s;
      ASSERT_EQ(sharded.bin_offset[s], bins) << "N=" << n << " shard " << s;
      bins += result.bins_opened();
      usage += result.total_usage_time();
      prop1 += opt::prop1_time_space_bound(part);
      prop2 += opt::prop2_span_bound(part);
      ceiling += opt::load_ceiling_bound(part);
      combined += opt::combined_lower_bound(part);
    }
    ASSERT_EQ(sharded.merged.bins_opened(), bins) << "N=" << n;
    ASSERT_EQ(sharded.bounds.usage, usage) << "N=" << n;
    ASSERT_EQ(sharded.bounds.lb_prop1, prop1) << "N=" << n;
    ASSERT_EQ(sharded.bounds.lb_prop2, prop2) << "N=" << n;
    ASSERT_EQ(sharded.bounds.lb_load_ceiling, ceiling) << "N=" << n;
    ASSERT_EQ(sharded.bounds.lower_bound, combined) << "N=" << n;
  }
}

TEST(Sharded, ShardCountInvariantQuantities) {
  Rng rng(0x1471);
  const ItemList items = random_workload(rng, 300);
  const double global_prop1 = opt::prop1_time_space_bound(items);
  for (const std::size_t n : kShardCounts) {
    ShardedOptions options;
    options.num_shards = n;
    options.telemetry = true;
    const ShardedResult sharded =
        run_sharded(items, registry_factory("FirstFit"), options);

    // Every item is placed and departs exactly once, no matter the routing.
    const auto* placed = sharded.metrics.find_counter("mutdbp_items_placed_total");
    const auto* departed =
        sharded.metrics.find_counter("mutdbp_items_departed_total");
    ASSERT_NE(placed, nullptr);
    ASSERT_NE(departed, nullptr);
    EXPECT_EQ(placed->value, items.size()) << "N=" << n;
    EXPECT_EQ(departed->value, items.size()) << "N=" << n;

    // Prop 1 is partition-invariant up to summation order: the time-space
    // demand of a partition sums to the global demand.
    EXPECT_NEAR(sharded.bounds.lb_prop1, global_prop1,
                1e-9 * std::max(1.0, global_prop1))
        << "N=" << n;

    // The merged ratio gauges are the folded values, verbatim.
    const auto* ratio = sharded.metrics.find_gauge("mutdbp_ratio_current");
    const auto* lb1 = sharded.metrics.find_gauge("mutdbp_lb_prop1");
    ASSERT_NE(ratio, nullptr);
    ASSERT_NE(lb1, nullptr);
    EXPECT_EQ(ratio->value, sharded.bounds.ratio) << "N=" << n;
    EXPECT_EQ(lb1->value, sharded.bounds.lb_prop1) << "N=" << n;
  }
}

// ---- telemetry merge --------------------------------------------------

TEST(Sharded, TelemetryMergeSumsCountersAndTagsTrace) {
  Rng rng(0x7E1E5);
  const ItemList items = random_workload(rng);
  ShardedOptions options;
  options.num_shards = 4;
  options.telemetry = true;
  const ShardedResult sharded =
      run_sharded(items, registry_factory("FirstFit"), options);

  // Counter fold: merged bins_opened equals the per-shard packing total.
  const auto* bins = sharded.metrics.find_counter("mutdbp_bins_opened_total");
  ASSERT_NE(bins, nullptr);
  EXPECT_EQ(bins->value, sharded.merged.bins_opened());

  // The merged trace is timestamp-ordered and shard-tagged with real ids.
  ASSERT_FALSE(sharded.trace.empty());
  bool saw_nonzero_shard = false;
  for (std::size_t i = 0; i < sharded.trace.size(); ++i) {
    ASSERT_LT(sharded.trace[i].shard, options.num_shards);
    saw_nonzero_shard = saw_nonzero_shard || sharded.trace[i].shard != 0;
    if (i > 0) {
      ASSERT_GE(sharded.trace[i].t, sharded.trace[i - 1].t);
    }
  }
  EXPECT_TRUE(saw_nonzero_shard);

  // Histogram fold: every placement observed exactly once fleet-wide.
  const auto* fill = sharded.metrics.find_histogram("mutdbp_fill_level");
  ASSERT_NE(fill, nullptr);
  EXPECT_EQ(fill->count, items.size());
}

// ---- checkpoint/restore ----------------------------------------------

TEST(Sharded, CheckpointRoundTripsMidStream) {
  Rng rng(0xC4E4);
  const ItemList items = random_workload(rng, 300);
  const auto& schedule = items.schedule();

  ShardedOptions options;
  options.num_shards = 4;
  options.capacity = items.capacity();
  ShardedSimulation fleet(registry_factory("FirstFit"), options);

  const std::size_t cut = schedule.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) {
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      fleet.push_arrival(event.id, event.size, event.t);
    } else {
      fleet.push_departure(event.id, event.t);
    }
  }
  std::ostringstream out(std::ios::binary);
  fleet.snapshot(out);
  ASSERT_EQ(fleet.events_applied(), cut);

  std::istringstream in(out.str(), std::ios::binary);
  const ShardedCheckpoint checkpoint = ShardedCheckpoint::read(in);
  EXPECT_EQ(checkpoint.algorithm, "FirstFit");
  EXPECT_EQ(checkpoint.options.num_shards, options.num_shards);
  ShardedSimulation restored = ShardedSimulation::restore(
      checkpoint, registry_factory(checkpoint.algorithm,
                                   checkpoint.options.algorithm_seed,
                                   checkpoint.options.fit_epsilon));
  ASSERT_EQ(restored.events_applied(), cut);

  // Run both fleets to completion on the identical tail.
  for (std::size_t i = cut; i < schedule.size(); ++i) {
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      fleet.push_arrival(event.id, event.size, event.t);
      restored.push_arrival(event.id, event.size, event.t);
    } else {
      fleet.push_departure(event.id, event.t);
      restored.push_departure(event.id, event.t);
    }
  }
  const ShardedResult original = fleet.finish();
  const ShardedResult resumed = restored.finish();
  expect_identical_sharded(resumed, original, items, "restored");
}

TEST(Sharded, CheckpointCorruptionIsACleanValidationError) {
  Rng rng(0xBAD);
  const ItemList items = random_workload(rng);
  ShardedOptions options;
  options.num_shards = 2;
  options.capacity = items.capacity();
  ShardedSimulation fleet(registry_factory("FirstFit"), options);
  for (const ScheduledEvent& event : items.schedule()) {
    if (event.is_arrival) {
      fleet.push_arrival(event.id, event.size, event.t);
    } else {
      fleet.push_departure(event.id, event.t);
    }
  }
  std::ostringstream out(std::ios::binary);
  fleet.snapshot(out);
  (void)fleet.finish();
  const std::string bytes = out.str();

  // Flip one byte in the header frame and one deep in a shard frame.
  for (const std::size_t at : {std::size_t{30}, bytes.size() - 40}) {
    std::string corrupted = bytes;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x20);
    std::istringstream in(corrupted, std::ios::binary);
    EXPECT_THROW((void)ShardedCheckpoint::read(in), ValidationError) << at;
  }

  // A truncated stream (missing shard frames) must also fail cleanly.
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2),
                               std::ios::binary);
  EXPECT_THROW((void)ShardedCheckpoint::read(truncated), ValidationError);

  // A shard-count mismatch (frames recorded under a different routing)
  // surfaces as a routing validation error, not silent divergence.
  std::istringstream in(bytes, std::ios::binary);
  ShardedCheckpoint checkpoint = ShardedCheckpoint::read(in);
  checkpoint.options.num_shards = 3;
  checkpoint.shards.push_back(checkpoint.shards.back());
  EXPECT_THROW(
      (void)ShardedSimulation::restore(
          checkpoint, registry_factory(checkpoint.algorithm)),
      ValidationError);
}

// ---- failure propagation and API misuse --------------------------------

TEST(Sharded, ShardFailurePropagatesToTheCaller) {
  ShardedOptions options;
  options.num_shards = 2;
  ShardedSimulation fleet(registry_factory("FirstFit"), options);
  fleet.push_arrival(1, 0.5, 0.0);
  fleet.drain();
  // Duplicate arrival: the owning shard's engine rejects it; the error must
  // surface on the ingest thread, not die on the worker.
  fleet.push_arrival(1, 0.5, 1.0);
  EXPECT_THROW(fleet.finish(), Error);
}

TEST(Sharded, FailedShardKeepsDrainingSoBackpressureNeverDeadlocks) {
  // A deliberately tiny ring behind a poisoned shard: after the failure the
  // worker must keep draining (and discarding), so producers riding the
  // blocking backpressure path always make progress — a dead worker plus a
  // full ring would hang this test forever. The error then surfaces on the
  // ingest thread at the next drain(), and stays sticky.
  ShardedOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  ShardedSimulation fleet(registry_factory("FirstFit"), options);
  // Poison: departure of an item that never arrived (the engine throws).
  fleet.push_departure(42, 0.0);
  // Many times the ring capacity of further events, all blocking pushes.
  for (ItemId id = 0; id < 64; ++id) {
    fleet.push_arrival(1000 + id, 0.25, 1.0 + static_cast<double>(id));
  }
  EXPECT_THROW(fleet.drain(), Error);
  EXPECT_THROW(fleet.drain(), Error);  // the failure is sticky
}

TEST(Sharded, TryPushShedsOnAFullRingWithoutEnqueueing) {
  // The daemon's admission-control primitive: a full ring reports false and
  // the event is NOT stored — after the shard drains, everything admitted
  // (and only that) has been applied.
  ShardedOptions options;
  options.num_shards = 1;
  options.queue_capacity = 4;
  ShardedSimulation fleet(registry_factory("FirstFit"), options);
  std::size_t admitted = 0;
  std::size_t shed = 0;
  for (ItemId id = 0; id < 4096; ++id) {
    const double t = static_cast<double>(id);
    if (fleet.try_push_arrival(id, 0.01, t)) {
      ++admitted;
    } else {
      ++shed;
    }
  }
  fleet.drain();
  EXPECT_EQ(fleet.events_applied(), admitted);
  EXPECT_EQ(admitted + shed, 4096u);
  EXPECT_GT(admitted, 0u);
}

TEST(Sharded, RoutingIsDeterministicAndCoversAllShards) {
  EXPECT_EQ(shard_of(12345, 1), 0u);
  for (const std::size_t n : kShardCounts) {
    std::vector<bool> hit(n, false);
    for (ItemId id = 0; id < 512; ++id) {
      const std::size_t s = shard_of(id, n);
      ASSERT_LT(s, n);
      ASSERT_EQ(s, shard_of(id, n));  // pure function of (id, n)
      hit[s] = true;
    }
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_TRUE(hit[s]) << "shard " << s << " of " << n << " never hit";
    }
  }
}

TEST(Sharded, OptionsAreValidated) {
  ShardedOptions bad;
  bad.num_shards = 2;
  bad.producers = 0;
  EXPECT_THROW(ShardedSimulation(registry_factory("FirstFit"), bad),
               ValidationError);
  bad.producers = 1;
  bad.queue_capacity = 0;
  EXPECT_THROW(ShardedSimulation(registry_factory("FirstFit"), bad),
               ValidationError);

  ShardedOptions defaults;  // num_shards = 0 → hardware_shard_count()
  ShardedSimulation fleet(registry_factory("FirstFit"), defaults);
  EXPECT_GE(fleet.num_shards(), 1u);
  EXPECT_EQ(fleet.num_shards(), hardware_shard_count());
  EXPECT_EQ(fleet.algorithm_name(), "FirstFit");
  (void)fleet.finish();
}

}  // namespace
}  // namespace mutdbp
