// Randomized cross-validation: independent reference implementations and
// model-based fuzzing for the core data structures and solvers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/any_fit.h"
#include "core/error.h"
#include "core/simulation.h"
#include "core/streaming.h"
#include "daemon/protocol.h"
#include "daemon/server.h"
#include "opt/bin_packing.h"
#include "opt/opt_integral.h"
#include "trace/binary_trace.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace mutdbp {
namespace {

// ---- IntervalSet vs a boolean-grid reference model ----

TEST(FuzzIntervalSet, MatchesBooleanGridModel) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    // Grid model over [0, 400) quarters: cell g covers [g/4, (g+1)/4).
    std::vector<bool> grid(400, false);
    const int inserts = 1 + static_cast<int>(rng.uniform_u64(0, 19));
    for (int i = 0; i < inserts; ++i) {
      const auto a = rng.uniform_u64(0, 395);
      const auto b = rng.uniform_u64(a, 399);
      set.insert({static_cast<double>(a) / 4.0, static_cast<double>(b) / 4.0});
      for (std::uint64_t g = a; g < b; ++g) grid[g] = true;
    }
    double expected_length = 0.0;
    for (const bool cell : grid) expected_length += cell ? 0.25 : 0.0;
    EXPECT_NEAR(set.total_length(), expected_length, 1e-9);
    // Point containment on cell midpoints.
    for (std::size_t g = 0; g < grid.size(); g += 7) {
      const double midpoint = (static_cast<double>(g) + 0.5) / 4.0;
      EXPECT_EQ(set.contains(midpoint), grid[g]) << "trial " << trial << " g " << g;
    }
    // Pieces must be sorted, disjoint and non-touching.
    const auto& pieces = set.pieces();
    for (std::size_t p = 1; p < pieces.size(); ++p) {
      EXPECT_GT(pieces[p].left, pieces[p - 1].right);
    }
  }
}

// ---- exact bin packing vs brute force ----

std::size_t brute_force_bins(const std::vector<double>& sizes, double capacity) {
  // Assign items one by one into bins 0..k (k = current count): classic
  // exhaustive search with symmetry breaking (an item may open at most one
  // new bin).
  std::vector<double> levels;
  std::size_t best = sizes.size();
  auto rec = [&](auto&& self, std::size_t i) -> void {
    if (levels.size() >= best) return;
    if (i == sizes.size()) {
      best = std::min(best, levels.size());
      return;
    }
    // Index-based: the recursive call may push_back and reallocate.
    for (std::size_t b = 0; b < levels.size(); ++b) {
      if (levels[b] + sizes[i] <= capacity + 1e-12) {
        levels[b] += sizes[i];
        self(self, i + 1);
        levels[b] -= sizes[i];
      }
    }
    levels.push_back(sizes[i]);
    self(self, i + 1);
    levels.pop_back();
  };
  rec(rec, 0);
  return best;
}

TEST(FuzzBinPacking, ExactSolverMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.index(8);
    std::vector<double> sizes;
    for (std::size_t i = 0; i < n; ++i) {
      // Sizes on a 0.05 grid keep the brute force exact.
      sizes.push_back(0.05 * static_cast<double>(rng.uniform_u64(1, 20)));
    }
    const std::size_t expected = brute_force_bins(sizes, 1.0);
    const opt::BinCountResult result = opt::min_bin_count(sizes);
    ASSERT_TRUE(result.exact) << "trial " << trial;
    EXPECT_EQ(result.bins(), expected) << "trial " << trial;
    EXPECT_LE(opt::l2_lower_bound(sizes), expected) << "trial " << trial;
    EXPECT_GE(opt::ffd_bin_count(sizes), expected) << "trial " << trial;
  }
}

// ---- incremental Simulation vs batch simulate() ----

TEST(FuzzSimulation, IncrementalMatchesBatch) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 150;
    spec.seed = seed;
    spec.duration_max = 5.0;
    const ItemList items = workload::generate(spec);

    FirstFit batch_algo;
    const PackingResult batch = simulate(items, batch_algo);

    FirstFit incr_algo;
    Simulation sim(incr_algo);
    struct Event {
      Time t;
      bool arrival;
      const Item* item;
    };
    std::vector<Event> events;
    for (const auto& item : items) {
      events.push_back({item.arrival(), true, &item});
      events.push_back({item.departure(), false, &item});
    }
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.arrival != b.arrival) return !a.arrival;
      return a.item->id < b.item->id;
    });
    for (const auto& event : events) {
      if (event.arrival) {
        sim.arrive(event.item->id, event.item->size, event.t);
      } else {
        sim.depart(event.item->id, event.t);
      }
    }
    const PackingResult incremental = sim.finish();

    EXPECT_DOUBLE_EQ(incremental.total_usage_time(), batch.total_usage_time());
    ASSERT_EQ(incremental.bins_opened(), batch.bins_opened());
    for (const auto& item : items) {
      EXPECT_EQ(incremental.bin_of(item.id), batch.bin_of(item.id));
    }
  }
}

// ---- LevelTimeline vs recomputation from placements ----

TEST(FuzzTimeline, TimelineMatchesPlacementRecomputation) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 200;
  spec.seed = 12;
  spec.duration_max = 4.0;
  const ItemList items = workload::generate(spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  Rng rng(5);
  for (const auto& bin : result.bins()) {
    for (int probe = 0; probe < 10; ++probe) {
      const Time t = rng.uniform(bin.usage.left, bin.usage.right);
      double expected = 0.0;
      for (const auto& placed : bin.items) {
        if (placed.active.contains(t)) expected += placed.size;
      }
      EXPECT_NEAR(bin.timeline.at(t), expected, 1e-9);
    }
  }
}

// ---- opt integral: permutation invariance & monotonicity ----

TEST(FuzzOptIntegral, InvariantUnderItemPermutation) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 30;
  spec.seed = 9;
  const ItemList items = workload::generate(spec);
  const opt::OptIntegral base = opt::opt_total(items);

  std::vector<Item> shuffled = items.items();
  Rng rng(77);
  rng.shuffle(std::span<Item>(shuffled));
  const opt::OptIntegral permuted = opt::opt_total(ItemList(std::move(shuffled)));
  EXPECT_NEAR(base.lower, permuted.lower, 1e-9);
  EXPECT_NEAR(base.upper, permuted.upper, 1e-9);
}

TEST(FuzzOptIntegral, AddingItemsNeverDecreasesOpt) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 24;
  spec.seed = 3;
  const ItemList items = workload::generate(spec);
  std::vector<Item> prefix;
  double last = 0.0;
  for (const auto& item : items) {
    prefix.push_back(item);
    const opt::OptIntegral integral = opt::opt_total(ItemList(prefix));
    EXPECT_GE(integral.upper + 1e-9, last);
    last = integral.lower;
  }
}

// ---- trace persistence: write -> read round-trip & corruption rejection ----

TEST(FuzzTrace, WriteReadRoundTripIsExact) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 120;
    spec.seed = seed;
    spec.duration_max = 5.0;
    const ItemList original = workload::generate(spec);

    std::stringstream buffer;
    workload::write_trace(buffer, original);
    const ItemList restored = workload::read_trace(buffer, original.capacity());

    ASSERT_EQ(restored.size(), original.size()) << "seed " << seed;
    for (std::size_t i = 0; i < original.size(); ++i) {
      const Item& a = original.items()[i];
      const Item& b = restored.items()[i];
      EXPECT_EQ(a.id, b.id);
      // %.17g round-trips doubles bit-exactly — no tolerance needed.
      EXPECT_EQ(a.size, b.size);
      EXPECT_EQ(a.arrival(), b.arrival());
      EXPECT_EQ(a.departure(), b.departure());
    }
  }
}

TEST(FuzzTrace, CorruptedRowsAreRejectedNotMisread) {
  // Corrupt one random field of a valid trace per trial: the reader must
  // throw (never silently produce a different item list).
  Rng rng(404);
  // Each poison is invalid in every column: non-integer for the id field,
  // non-finite or non-numeric for size/arrival/departure.
  const char* const poisons[] = {"nan", "inf", "-inf", "abc"};
  for (int trial = 0; trial < 30; ++trial) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 20;
    spec.seed = static_cast<std::uint64_t>(trial) + 1;
    const ItemList items = workload::generate(spec);
    std::stringstream buffer;
    workload::write_trace(buffer, items);

    // Rewrite one field of one data row.
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(buffer, line)) lines.push_back(line);
    const std::size_t row = 1 + rng.index(lines.size() - 1);  // skip header
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t pos = lines[row].find(','); pos != std::string::npos;
         start = pos + 1, pos = lines[row].find(',', start)) {
      fields.push_back(lines[row].substr(start, pos - start));
    }
    fields.push_back(lines[row].substr(start));
    ASSERT_EQ(fields.size(), 4u);
    const std::size_t field = rng.index(4);
    fields[field] = poisons[rng.index(std::size(poisons))];
    lines[row] = fields[0] + "," + fields[1] + "," + fields[2] + "," + fields[3];

    std::string corrupted;
    for (const auto& l : lines) corrupted += l + "\n";
    std::istringstream in(corrupted);
    EXPECT_THROW((void)workload::read_trace(in), ValidationError)
        << "trial " << trial << " row " << row << " field " << field
        << " poison " << fields[field];
  }
}

// ---- checkpoint frames vs truncation and bit flips ----
//
// Contract (core/checkpoint.h): any corrupted checkpoint must surface as a
// clean ValidationError — never a crash, never a silently different run.
// Iteration budget scales with MUTDBP_FUZZ_ITERS (the CI fuzz job raises
// it); failures dump a replayable artifact (original + corrupted bytes +
// metadata) into a crash directory printed in the test log.

std::size_t fuzz_iters(std::size_t base) {
  if (const char* env = std::getenv("MUTDBP_FUZZ_ITERS")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return base;
}

std::filesystem::path fuzz_crash_dir() {
  if (const char* env = std::getenv("MUTDBP_FUZZ_CRASH_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::temp_directory_path() / "mutdbp_fuzz_crashes";
}

/// Writes a replayable artifact for one failing checkpoint mutant and
/// returns the directory it landed in (also printed, so CI can upload it).
std::filesystem::path dump_crash_artifact(const std::string& test,
                                          std::uint64_t seed,
                                          const std::string& original,
                                          const std::string& corrupted,
                                          const std::string& detail) {
  const std::filesystem::path dir =
      fuzz_crash_dir() / (test + "-seed" + std::to_string(seed));
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "original.ckpt", std::ios::binary) << original;
  std::ofstream(dir / "corrupted.ckpt", std::ios::binary) << corrupted;
  std::ofstream(dir / "meta.txt") << "test: " << test << "\nseed: " << seed
                                  << "\n" << detail << "\n";
  std::cout << "[  ARTIFACT] replayable crash artifact: " << dir << "\n";
  return dir;
}

/// A valid checkpoint of a randomized mid-run streaming simulation.
std::string random_checkpoint_bytes(std::uint64_t seed) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 30 + seed % 70;
  spec.seed = seed;
  const ItemList items = workload::generate(spec);
  FirstFit algo;
  StreamingOptions options;
  options.capacity = items.capacity();
  StreamingSimulation stream(algo, options);
  Rng rng(seed ^ 0xC4C4);
  const std::size_t cut = rng.uniform_u64(1, items.schedule().size());
  for (std::size_t i = 0; i < cut; ++i) {
    const ScheduledEvent& event = items.schedule()[i];
    if (event.is_arrival) {
      stream.push_arrival(event.id, event.size, event.t);
    } else {
      stream.push_departure(event.id, event.t);
    }
  }
  stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);
  return out.str();
}

TEST(FuzzCheckpoint, TruncationIsAlwaysACleanValidationError) {
  const std::size_t iters = fuzz_iters(40);
  Rng rng(0x77C0);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::uint64_t seed = rng.uniform_u64(1, 1u << 24);
    const std::string bytes = random_checkpoint_bytes(seed);
    const std::size_t len = rng.uniform_u64(0, bytes.size() - 1);
    const std::string truncated = bytes.substr(0, len);
    std::istringstream in(truncated, std::ios::binary);
    FirstFit algo;
    try {
      (void)StreamingSimulation::restore(in, algo);
      dump_crash_artifact("truncation", seed, bytes, truncated,
                          "truncated to " + std::to_string(len) + " bytes, "
                          "restore unexpectedly succeeded");
      FAIL() << "truncated checkpoint (len " << len << "/" << bytes.size()
             << ") was accepted";
    } catch (const ValidationError&) {
      // the contract
    } catch (const std::exception& e) {
      dump_crash_artifact("truncation", seed, bytes, truncated,
                          std::string("unexpected exception type: ") + e.what());
      FAIL() << "truncation raised a non-ValidationError: " << e.what();
    }
  }
}

TEST(FuzzCheckpoint, BitFlipsNeverCauseSilentDivergence) {
  const std::size_t iters = fuzz_iters(60);
  Rng rng(0xB17F);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::uint64_t seed = rng.uniform_u64(1, 1u << 24);
    const std::string bytes = random_checkpoint_bytes(seed);
    std::string corrupted = bytes;
    const std::size_t flips = 1 + rng.uniform_u64(0, 7);
    std::string detail = "bit flips at:";
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_u64(0, corrupted.size() - 1);
      const int bit = static_cast<int>(rng.uniform_u64(0, 7));
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
      detail += " " + std::to_string(pos) + ":" + std::to_string(bit);
    }
    if (corrupted == bytes) continue;  // flips cancelled out

    std::istringstream in(corrupted, std::ios::binary);
    FirstFit algo;
    try {
      StreamingSimulation restored = StreamingSimulation::restore(in, algo);
      // The checksum should make this unreachable; if a mutant ever slips
      // through, the restored run must still be THE original run (no silent
      // divergence): its re-serialization must reproduce the original bytes.
      std::ostringstream again(std::ios::binary);
      restored.snapshot(again);
      if (again.str() != bytes) {
        dump_crash_artifact("bitflip", seed, bytes, corrupted,
                            detail + "\nrestore accepted the mutant and "
                            "produced a DIFFERENT run (silent divergence)");
        FAIL() << "corrupted checkpoint restored to a different run (" << detail
               << ")";
      }
    } catch (const ValidationError&) {
      // the contract
    } catch (const std::exception& e) {
      dump_crash_artifact("bitflip", seed, bytes, corrupted,
                          detail + "\nunexpected exception type: " + e.what());
      FAIL() << "bit flip raised a non-ValidationError: " << e.what();
    }
  }
}

TEST(FuzzCheckpoint, RandomBytesNeverCrashTheReader) {
  const std::size_t iters = fuzz_iters(60);
  Rng rng(0x5EED);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    // Garbage of random length, occasionally seeded with the real magic so
    // the fuzzer also exercises the post-header validation paths.
    std::string garbage(rng.uniform_u64(0, 256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_u64(0, 255));
    if (rng.bernoulli(0.3) && garbage.size() >= 8) {
      garbage.replace(0, 8, "MUTDBPC1");
    }
    std::istringstream in(garbage, std::ios::binary);
    FirstFit algo;
    try {
      (void)StreamingSimulation::restore(in, algo);
      dump_crash_artifact("garbage", trial, "", garbage,
                          "random bytes were accepted as a checkpoint");
      FAIL() << "random garbage was accepted as a checkpoint";
    } catch (const ValidationError&) {
      // the contract
    } catch (const std::exception& e) {
      dump_crash_artifact("garbage", trial, "", garbage,
                          std::string("unexpected exception type: ") + e.what());
      FAIL() << "garbage raised a non-ValidationError: " << e.what();
    }
  }
}

// ---- MUTDBPT1 binary traces vs truncation, bit flips, and hostile metadata
//
// Contract (trace/binary_trace.h): any corrupted trace file — truncation,
// bit flips, hostile block lengths, garbage footers — surfaces as a clean
// ValidationError from the reader, never a crash, never a silently
// different item list. Same budget and artifact scheme as the checkpoint
// fuzzers above.

/// A valid random binary trace (the mutation baseline).
std::string random_binary_trace_bytes(std::uint64_t seed, ItemList* out_items) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 20 + seed % 100;
  spec.seed = seed;
  const ItemList items = workload::generate(spec);
  std::ostringstream out(std::ios::binary);
  trace::BinaryTraceWriter writer(
      out, {items.capacity(), 16 + static_cast<std::size_t>(seed % 48)});
  for (const Item& item : items) writer.add(item);
  (void)writer.finish();
  if (out_items != nullptr) *out_items = items;
  return out.str();
}

enum class TraceReadOutcome { kOk, kRejected };

/// Runs the full reader pipeline (skeleton parse + every block + read_all)
/// over in-memory bytes. ValidationError -> kRejected; any other exception
/// propagates (the fuzzers turn that into a FAIL with an artifact).
TraceReadOutcome try_read_binary_trace(const std::string& bytes, ItemList* out) {
  try {
    const auto reader = trace::BinaryTraceReader::from_view(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ItemList items = reader.read_all();
    if (out != nullptr) *out = std::move(items);
    return TraceReadOutcome::kOk;
  } catch (const ValidationError&) {
    return TraceReadOutcome::kRejected;
  }
}

[[nodiscard]] std::uint64_t read_u64_le_at(const std::string& bytes,
                                           std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void write_u64_le_at(std::string& bytes, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// Recomputes the FNV-1a checksum of the frame starting at `frame_offset`
/// after its payload was mutated, so hostile *semantic* values reach the
/// validation layers behind the checksum. No-op when the frame's claimed
/// extent no longer fits the buffer (the length checks reject it first).
void fix_frame_checksum(std::string& bytes, std::size_t frame_offset) {
  if (frame_offset + kFrameHeaderBytes > bytes.size()) return;
  const std::uint64_t payload_size = read_u64_le_at(bytes, frame_offset + 16);
  const std::uint64_t head = kFrameHeaderBytes + payload_size;
  if (payload_size > bytes.size() ||
      frame_offset + head + kFrameChecksumBytes > bytes.size()) {
    return;
  }
  const std::uint64_t checksum =
      fnv1a64(bytes.data() + frame_offset, static_cast<std::size_t>(head));
  write_u64_le_at(bytes, frame_offset + static_cast<std::size_t>(head), checksum);
}

TEST(FuzzBinaryTrace, TruncationIsAlwaysACleanValidationError) {
  const std::size_t iters = fuzz_iters(40);
  Rng rng(0x7ACE);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::uint64_t seed = rng.uniform_u64(1, 1u << 24);
    const std::string bytes = random_binary_trace_bytes(seed, nullptr);
    const std::size_t len = rng.uniform_u64(0, bytes.size() - 1);
    const std::string truncated = bytes.substr(0, len);
    try {
      if (try_read_binary_trace(truncated, nullptr) == TraceReadOutcome::kOk) {
        dump_crash_artifact("trace-truncation", seed, bytes, truncated,
                            "truncated to " + std::to_string(len) +
                                " bytes but still read successfully");
        FAIL() << "truncated trace (len " << len << "/" << bytes.size()
               << ") was accepted";
      }
    } catch (const std::exception& e) {
      dump_crash_artifact("trace-truncation", seed, bytes, truncated,
                          std::string("unexpected exception type: ") + e.what());
      FAIL() << "truncation raised a non-ValidationError: " << e.what();
    }
  }
}

TEST(FuzzBinaryTrace, BitFlipsAreRejectedOrReadIdentically) {
  const std::size_t iters = fuzz_iters(60);
  Rng rng(0xB1F5);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::uint64_t seed = rng.uniform_u64(1, 1u << 24);
    ItemList original;
    const std::string bytes = random_binary_trace_bytes(seed, &original);
    std::string corrupted = bytes;
    const std::size_t flips = 1 + rng.uniform_u64(0, 7);
    std::string detail = "bit flips at:";
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_u64(0, corrupted.size() - 1);
      const int bit = static_cast<int>(rng.uniform_u64(0, 7));
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
      detail += " " + std::to_string(pos) + ":" + std::to_string(bit);
    }
    if (corrupted == bytes) continue;  // flips cancelled out
    try {
      ItemList read_back;
      if (try_read_binary_trace(corrupted, &read_back) == TraceReadOutcome::kOk) {
        // The checksums should make this unreachable; a mutant that slips
        // through must still read as THE original trace.
        const bool identical = read_back.size() == original.size() &&
                               read_back.capacity() == original.capacity() &&
                               std::equal(read_back.begin(), read_back.end(),
                                          original.begin());
        if (!identical) {
          dump_crash_artifact("trace-bitflip", seed, bytes, corrupted,
                              detail + "\nmutant read as a DIFFERENT item list "
                              "(silent divergence)");
          FAIL() << "bit-flipped trace read differently (" << detail << ")";
        }
      }
    } catch (const std::exception& e) {
      dump_crash_artifact("trace-bitflip", seed, bytes, corrupted,
                          detail + "\nunexpected exception type: " + e.what());
      FAIL() << "bit flip raised a non-ValidationError: " << e.what();
    }
  }
}

TEST(FuzzBinaryTrace, GarbageNeverCrashesTheReader) {
  const std::size_t iters = fuzz_iters(60);
  Rng rng(0x6AB5);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    std::string garbage(rng.uniform_u64(0, 512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_u64(0, 255));
    if (rng.bernoulli(0.4) && garbage.size() >= 8) {
      // Real magic so the fuzzer reaches the tail/footer/header validation.
      garbage.replace(0, 8, "MUTDBPT1");
    }
    try {
      if (try_read_binary_trace(garbage, nullptr) == TraceReadOutcome::kOk) {
        dump_crash_artifact("trace-garbage", trial, "", garbage,
                            "random bytes were accepted as a binary trace");
        FAIL() << "garbage was accepted as a binary trace";
      }
    } catch (const std::exception& e) {
      dump_crash_artifact("trace-garbage", trial, "", garbage,
                          std::string("unexpected exception type: ") + e.what());
      FAIL() << "garbage raised a non-ValidationError: " << e.what();
    }
  }
}

TEST(FuzzBinaryTrace, HostileLengthsAndFootersAreCleanRejections) {
  // Target the length-bearing metadata specifically: the trailing footer
  // offset, block frames' size fields, and the footer payload's block index
  // — with checksums *re-fixed* after the mutation, so the hostile values
  // reach the structural validation behind the checksum instead of being
  // absorbed by it. A mutation that happens to reproduce a valid image must
  // read back identically; everything else must be a ValidationError.
  const std::size_t iters = fuzz_iters(80);
  Rng rng(0x0FF5);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::uint64_t seed = rng.uniform_u64(1, 1u << 24);
    ItemList original;
    const std::string bytes = random_binary_trace_bytes(seed, &original);
    std::string corrupted = bytes;
    const std::size_t footer_offset =
        static_cast<std::size_t>(read_u64_le_at(bytes, bytes.size() - 8));
    std::string detail;

    const std::uint64_t hostile =
        rng.bernoulli(0.5) ? rng.uniform_u64(0, bytes.size() * 2)
                           : rng.uniform_u64(0, ~std::uint64_t{0});
    switch (rng.uniform_u64(0, 2)) {
      case 0: {  // tail: point the footer offset anywhere
        write_u64_le_at(corrupted, corrupted.size() - 8, hostile);
        detail = "tail footer offset := " + std::to_string(hostile);
        break;
      }
      case 1: {  // a frame's declared payload size (header or first block)
        const std::size_t frame_offset =
            rng.bernoulli(0.5) ? 8 : footer_offset;
        write_u64_le_at(corrupted, frame_offset + 16, hostile);
        fix_frame_checksum(corrupted, frame_offset);
        detail = "frame@" + std::to_string(frame_offset) +
                 " payload size := " + std::to_string(hostile);
        break;
      }
      default: {  // a u64 inside the footer payload (counts, offsets, index)
        const std::size_t payload_size = static_cast<std::size_t>(
            read_u64_le_at(bytes, footer_offset + 16));
        const std::size_t pos = footer_offset + kFrameHeaderBytes +
                                rng.uniform_u64(0, payload_size - 8);
        write_u64_le_at(corrupted, pos, hostile);
        fix_frame_checksum(corrupted, footer_offset);
        detail = "footer payload u64@" + std::to_string(pos) +
                 " := " + std::to_string(hostile);
        break;
      }
    }
    if (corrupted == bytes) continue;

    try {
      ItemList read_back;
      if (try_read_binary_trace(corrupted, &read_back) == TraceReadOutcome::kOk) {
        const bool identical = read_back.size() == original.size() &&
                               std::equal(read_back.begin(), read_back.end(),
                                          original.begin());
        if (!identical) {
          dump_crash_artifact("trace-hostile", seed, bytes, corrupted,
                              detail + "\nhostile metadata read as a DIFFERENT "
                              "item list");
          FAIL() << "hostile metadata read differently (" << detail << ")";
        }
      }
    } catch (const std::exception& e) {
      dump_crash_artifact("trace-hostile", seed, bytes, corrupted,
                          detail + "\nunexpected exception type: " + e.what());
      FAIL() << "hostile metadata raised a non-ValidationError: " << e.what();
    }
  }
}

// ---- daemon wire protocol vs truncation, bit flips, and garbage ----
//
// Contract (daemon/protocol.h): every malformed frame surfaces as a clean
// ValidationError from the FrameAssembler/decoder — which the daemon
// answers with a typed kMalformed nack — and the DaemonCore behind it stays
// alive and consistent. Same artifact scheme as the checkpoint fuzzers.

/// A valid random request frame (the mutation baseline).
std::string random_request_bytes(Rng& rng) {
  daemon::WireRequest request;
  switch (rng.uniform_u64(0, 4)) {
    case 0:
      request.type = daemon::RequestType::kHello;
      request.client = "fuzz-" + std::to_string(rng.uniform_u64(0, 999));
      break;
    case 1:
      request.type = daemon::RequestType::kArrival;
      request.seq = rng.uniform_u64(1, 1u << 20);
      request.id = rng.uniform_u64(0, 1u << 20);
      request.size = 0.05 + 0.9 * rng.next_double();
      request.t = 100.0 * rng.next_double();
      break;
    case 2:
      request.type = daemon::RequestType::kDeparture;
      request.seq = rng.uniform_u64(1, 1u << 20);
      request.id = rng.uniform_u64(0, 1u << 20);
      request.t = 100.0 * rng.next_double();
      break;
    case 3:
      request.type = daemon::RequestType::kStats;
      break;
    default:
      request.type = daemon::RequestType::kMetrics;
      break;
  }
  const std::vector<std::uint8_t> frame = daemon::encode_request(request);
  return std::string(frame.begin(), frame.end());
}

/// Feeds raw bytes to an assembler exactly like the daemon's read path:
/// complete frames decode, ValidationError means "nack + close". Returns
/// the number of cleanly decoded requests; throws nothing but asserts the
/// error type via gtest on the caller's side.
enum class WireOutcome { kDecoded, kIncomplete, kRejected };

WireOutcome feed_wire(const std::string& bytes, std::size_t chunk,
                      std::string* error_out) {
  daemon::FrameAssembler assembler(CheckpointKind::kWireRequest);
  std::size_t offset = 0;
  bool decoded = false;
  while (offset < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - offset);
    assembler.feed(reinterpret_cast<const std::uint8_t*>(bytes.data()) + offset,
                   n);
    offset += n;
    while (true) {
      std::optional<std::vector<std::uint8_t>> payload;
      try {
        payload = assembler.next();
      } catch (const ValidationError& error) {
        *error_out = error.what();
        return WireOutcome::kRejected;
      }
      if (!payload.has_value()) break;
      try {
        (void)daemon::decode_request(*payload);
        decoded = true;
      } catch (const ValidationError& error) {
        *error_out = error.what();
        return WireOutcome::kRejected;
      }
    }
  }
  return decoded ? WireOutcome::kDecoded : WireOutcome::kIncomplete;
}

TEST(FuzzWireProtocol, TruncatedFramesNeverDecodeAndNeverCrash) {
  const std::size_t iters = fuzz_iters(80);
  Rng rng(0x0F1A);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::string bytes = random_request_bytes(rng);
    const std::size_t len = rng.uniform_u64(0, bytes.size() - 1);
    const std::string truncated = bytes.substr(0, len);
    const std::size_t chunk = 1 + rng.uniform_u64(0, 63);
    std::string error;
    // A truncated frame either waits for more bytes (header says more is
    // coming) or is rejected; it must never decode as a complete request.
    const WireOutcome outcome = feed_wire(truncated, chunk, &error);
    if (outcome == WireOutcome::kDecoded) {
      dump_crash_artifact("wire-truncation", trial, bytes, truncated,
                          "truncated to " + std::to_string(len) +
                              " bytes but a request still decoded");
      FAIL() << "truncated frame (len " << len << "/" << bytes.size()
             << ") decoded as complete";
    }
  }
}

TEST(FuzzWireProtocol, BitFlippedFramesAreRejectedOrIdentical) {
  const std::size_t iters = fuzz_iters(80);
  Rng rng(0xF11B);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::string bytes = random_request_bytes(rng);
    std::string corrupted = bytes;
    std::string detail = "bit flips at:";
    const std::size_t flips = 1 + rng.uniform_u64(0, 7);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform_u64(0, corrupted.size() - 1);
      const int bit = static_cast<int>(rng.uniform_u64(0, 7));
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
      detail += " " + std::to_string(pos) + ":" + std::to_string(bit);
    }
    if (corrupted == bytes) continue;
    std::string error;
    const WireOutcome outcome = feed_wire(corrupted, 64, &error);
    // The checksum makes a decode of corrupted bytes astronomically
    // unlikely; a frame that still decodes must decode to the original
    // request (flips confined to padding do not exist in this format, so
    // anything else is silent corruption).
    if (outcome == WireOutcome::kDecoded) {
      daemon::FrameAssembler assembler(CheckpointKind::kWireRequest);
      assembler.feed(reinterpret_cast<const std::uint8_t*>(corrupted.data()),
                     corrupted.size());
      const auto payload = assembler.next();
      daemon::FrameAssembler reference(CheckpointKind::kWireRequest);
      reference.feed(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                     bytes.size());
      const auto original = reference.next();
      if (!payload.has_value() || !original.has_value() ||
          !(daemon::decode_request(*payload) ==
            daemon::decode_request(*original))) {
        dump_crash_artifact("wire-bitflip", trial, bytes, corrupted,
                            detail + "\ncorrupted frame decoded DIFFERENTLY");
        FAIL() << "bit-flipped frame decoded to a different request (" << detail
               << ")";
      }
    }
  }
}

TEST(FuzzWireProtocol, GarbageAndOversizedLengthsAreCleanRejections) {
  const std::size_t iters = fuzz_iters(80);
  Rng rng(0x6A3B);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    std::string garbage(rng.uniform_u64(1, 512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_u64(0, 255));
    if (rng.bernoulli(0.4) && garbage.size() >= 24) {
      // Real magic + plausible version/kind but a hostile length field:
      // must be rejected by the payload cap, never drive an allocation.
      garbage.replace(0, 8, "MUTDBPC1");
      if (rng.bernoulli(0.5)) {
        const std::uint64_t huge =
            daemon::kMaxWirePayloadBytes + 1 + rng.uniform_u64(0, 1u << 30);
        for (int b = 0; b < 8; ++b) {
          garbage[16 + b] = static_cast<char>((huge >> (8 * b)) & 0xFF);
        }
      }
    }
    std::string error;
    const WireOutcome outcome = feed_wire(garbage, 96, &error);
    if (outcome == WireOutcome::kDecoded) {
      dump_crash_artifact("wire-garbage", trial, "", garbage,
                          "random bytes decoded as a request");
      FAIL() << "garbage decoded as a request";
    }
  }
}

/// Builds a fully-populated kWireStats response — the deepest, most nested
/// frame in the protocol (three variable-length lists, strings, doubles) —
/// with deterministic but varied contents.
std::string random_stats_response_bytes(Rng& rng) {
  daemon::WireResponse response;
  response.type = daemon::ResponseType::kWireStats;
  daemon::WireStatsSnapshot& stats = response.stats;
  stats.uptime_seconds = 1000.0 * rng.next_double();
  stats.last_checkpoint_age_seconds = rng.bernoulli(0.5) ? rng.next_double() : -1.0;
  stats.last_t = 100.0 * rng.next_double();
  stats.events_admitted = rng.uniform_u64(0, 1u << 20);
  stats.events_shed = rng.uniform_u64(0, 1u << 10);
  stats.events_applied = stats.events_admitted;
  stats.checkpoints_written = rng.uniform_u64(0, 64);
  stats.connections = rng.uniform_u64(0, 8);
  stats.retry_after_ms = rng.uniform_u64(0, 100);
  stats.admission_wait_us = rng.uniform_u64(0, 1000);
  const std::size_t clients = rng.uniform_u64(0, 4);
  for (std::size_t i = 0; i < clients; ++i) {
    stats.frontiers.push_back(
        {"client-" + std::to_string(i), rng.uniform_u64(1, 1u << 20)});
  }
  const std::size_t shards = 1 + rng.uniform_u64(0, 7);
  for (std::size_t i = 0; i < shards; ++i) {
    stats.shards.push_back({i, rng.uniform_u64(0, 1u << 16),
                            rng.uniform_u64(0, 1u << 16), rng.uniform_u64(0, 64),
                            rng.uniform_u64(0, 256), rng.uniform_u64(0, 16),
                            rng.next_double()});
  }
  const std::size_t histograms = rng.uniform_u64(0, 3);
  for (std::size_t i = 0; i < histograms; ++i) {
    stats.histograms.push_back({"mutdbp_fuzz_" + std::to_string(i) + "_latency",
                                rng.uniform_u64(0, 1u << 16), rng.next_double(),
                                rng.next_double(), rng.next_double(),
                                rng.next_double(), rng.next_double(),
                                rng.next_double()});
  }
  const std::vector<std::uint8_t> frame = daemon::encode_response(response);
  return std::string(frame.begin(), frame.end());
}

/// feed_wire for the response direction (kWireResponse frames).
WireOutcome feed_response(const std::string& bytes, std::size_t chunk,
                          std::string* error_out) {
  daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
  std::size_t offset = 0;
  bool decoded = false;
  while (offset < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - offset);
    assembler.feed(reinterpret_cast<const std::uint8_t*>(bytes.data()) + offset,
                   n);
    offset += n;
    while (true) {
      std::optional<std::vector<std::uint8_t>> payload;
      try {
        payload = assembler.next();
      } catch (const ValidationError& error) {
        *error_out = error.what();
        return WireOutcome::kRejected;
      }
      if (!payload.has_value()) break;
      try {
        (void)daemon::decode_response(*payload);
        decoded = true;
      } catch (const ValidationError& error) {
        *error_out = error.what();
        return WireOutcome::kRejected;
      }
    }
  }
  return decoded ? WireOutcome::kDecoded : WireOutcome::kIncomplete;
}

TEST(FuzzWireProtocol, MalformedStatsFramesAreCleanRejections) {
  const std::size_t iters = fuzz_iters(60);
  Rng rng(0x57A7);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    const std::string bytes = random_stats_response_bytes(rng);

    // Truncation: a partial snapshot either waits for more bytes or is
    // rejected; its nested lists must never decode as complete.
    {
      const std::size_t len = rng.uniform_u64(0, bytes.size() - 1);
      const std::string truncated = bytes.substr(0, len);
      const std::size_t chunk = 1 + rng.uniform_u64(0, 63);
      std::string error;
      if (feed_response(truncated, chunk, &error) == WireOutcome::kDecoded) {
        dump_crash_artifact("stats-truncation", trial, bytes, truncated,
                            "truncated to " + std::to_string(len) +
                                " bytes but a stats response still decoded");
        FAIL() << "truncated stats frame (len " << len << "/" << bytes.size()
               << ") decoded as complete";
      }
    }

    // Bit flips: rejected by the checksum, or decoded bit-identically —
    // never a crash, never a silently different snapshot (the list counts
    // are length-bounded, so a corrupt count cannot drive an allocation).
    {
      std::string corrupted = bytes;
      std::string detail = "bit flips at:";
      const std::size_t flips = 1 + rng.uniform_u64(0, 7);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t pos = rng.uniform_u64(0, corrupted.size() - 1);
        const int bit = static_cast<int>(rng.uniform_u64(0, 7));
        corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
        detail += " " + std::to_string(pos) + ":" + std::to_string(bit);
      }
      if (corrupted == bytes) continue;
      std::string error;
      if (feed_response(corrupted, 64, &error) == WireOutcome::kDecoded) {
        daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
        assembler.feed(reinterpret_cast<const std::uint8_t*>(corrupted.data()),
                       corrupted.size());
        const auto payload = assembler.next();
        daemon::FrameAssembler reference(CheckpointKind::kWireResponse);
        reference.feed(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       bytes.size());
        const auto original = reference.next();
        if (!payload.has_value() || !original.has_value() ||
            !(daemon::decode_response(*payload) ==
              daemon::decode_response(*original))) {
          dump_crash_artifact("stats-bitflip", trial, bytes, corrupted,
                              detail + "\nstats frame decoded DIFFERENTLY");
          FAIL() << "bit-flipped stats frame decoded to a different snapshot ("
                 << detail << ")";
        }
      }
    }
  }

  // A snapshot from the future (unknown version) is a typed error, not a
  // misparse: the version gate fires before any field is trusted.
  daemon::WireResponse future;
  future.type = daemon::ResponseType::kWireStats;
  future.stats.version = daemon::kWireStatsVersion + 1;
  const std::vector<std::uint8_t> frame = daemon::encode_response(future);
  daemon::FrameAssembler assembler(CheckpointKind::kWireResponse);
  assembler.feed(frame.data(), frame.size());
  const auto payload = assembler.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_THROW((void)daemon::decode_response(*payload), ValidationError);
}

TEST(FuzzWireProtocol, MalformedFramesLeaveTheDaemonCoreAlive) {
  // End-to-end on the state machine: interleave valid traffic with decode
  // failures (as the server loop experiences them) and check the core keeps
  // admitting, acking, and finishing correctly afterwards.
  const std::size_t iters = fuzz_iters(20);
  Rng rng(0xDAE1);
  for (std::size_t trial = 0; trial < iters; ++trial) {
    daemon::DaemonConfig config;
    config.shards = 1 + rng.uniform_u64(0, 3);
    daemon::DaemonCore core(config);
    core.register_connection(1);
    daemon::WireRequest hello;
    hello.type = daemon::RequestType::kHello;
    hello.client = "fuzz";
    (void)core.handle(1, hello);

    // A malformed frame on the read path never reaches handle(); the server
    // nacks and closes. Simulate the close/reopen churn around real events.
    std::uint64_t seq = 1;
    const std::size_t items = 5 + rng.uniform_u64(0, 20);
    for (std::size_t i = 0; i < items; ++i) {
      if (rng.bernoulli(0.3)) {
        core.drop_connection(1);
        core.register_connection(1);
        (void)core.handle(1, hello);  // reconnect handshake
      }
      daemon::WireRequest arrival;
      arrival.type = daemon::RequestType::kArrival;
      arrival.seq = seq++;
      arrival.id = i;
      arrival.size = 0.1 + 0.8 * rng.next_double();
      arrival.t = static_cast<double>(i);
      (void)core.handle(1, arrival);
      daemon::WireRequest departure;
      departure.type = daemon::RequestType::kDeparture;
      departure.seq = seq++;
      departure.id = i;
      departure.t = static_cast<double>(i) + 0.5;
      (void)core.handle(1, departure);
    }
    (void)core.flush();
    daemon::WireRequest finish;
    finish.type = daemon::RequestType::kFinish;
    const std::vector<daemon::Outgoing> out = core.handle(1, finish);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back().response.type, daemon::ResponseType::kResult)
        << out.back().response.text;
    EXPECT_EQ(out.back().response.digest.items, items);
  }
}

}  // namespace
}  // namespace mutdbp
