# Processed by CTest after the gtest discovery scripts (TEST_INCLUDE_FILES
# run in registration order), so `multidim_discovered_tests` — the TEST_LIST
# of the DVBP discovery block — is already populated. gtest_discover_tests
# flattens multi-element LABELS lists while forwarding properties, so the
# dual tier1+multidim labeling is applied here instead, where the list
# literal reaches set_tests_properties intact.
foreach(mutdbp_md_test ${multidim_discovered_tests})
  set_tests_properties("${mutdbp_md_test}" PROPERTIES LABELS "tier1;multidim")
endforeach()
