// StreamingSimulation and the checkpoint frame layer: batch-merge
// semantics, partial results, snapshot/restore round trips (engine,
// dispatcher, fleet), and the corruption contract (every malformed frame
// is a ValidationError, never a crash or a silently wrong run).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/registry.h"
#include "cloud/dispatcher.h"
#include "cloud/fleet.h"
#include "core/checkpoint.h"
#include "core/error.h"
#include "core/streaming.h"
#include "workload/generators.h"

namespace mutdbp {
namespace {

ItemList small_workload(std::uint64_t seed, std::size_t n = 120) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = n;
  spec.seed = seed;
  spec.duration_max = 5.0;
  return workload::generate(spec);
}

StreamingOptions options_for(const ItemList& items) {
  StreamingOptions options;
  options.capacity = items.capacity();
  return options;
}

/// Feeds the whole schedule, flushing every `batch` events; returns the
/// finished result.
PackingResult stream_all(const ItemList& items, PackingAlgorithm& algo,
                         std::size_t batch) {
  StreamingSimulation stream(algo, options_for(items));
  std::size_t buffered = 0;
  for (const ScheduledEvent& event : items.schedule()) {
    if (event.is_arrival) {
      stream.push_arrival(event.id, event.size, event.t);
    } else {
      stream.push_departure(event.id, event.t);
    }
    if (++buffered == batch) {
      stream.flush();
      buffered = 0;
    }
  }
  return stream.finish();
}

void expect_identical(const PackingResult& a, const PackingResult& b,
                      const ItemList& items) {
  ASSERT_EQ(a.bins_opened(), b.bins_opened());
  EXPECT_EQ(a.total_usage_time(), b.total_usage_time());  // bit-identical
  for (const Item& item : items) {
    EXPECT_EQ(a.bin_of(item.id), b.bin_of(item.id)) << "item " << item.id;
  }
}

// ---- streaming semantics ----

TEST(Streaming, AnyBatchGranularityMatchesBatchSimulate) {
  const ItemList items = small_workload(11);
  FirstFit reference_algo;
  const PackingResult batch = simulate(items, reference_algo);
  for (const std::size_t granularity : {std::size_t{1}, std::size_t{7},
                                        std::size_t{64}, items.schedule().size()}) {
    FirstFit algo;
    const PackingResult streamed = stream_all(items, algo, granularity);
    expect_identical(streamed, batch, items);
  }
}

TEST(Streaming, OutOfOrderEventsWithinABatchAreMergedCanonically) {
  const ItemList items = small_workload(12);
  FirstFit reference_algo;
  const PackingResult batch = simulate(items, reference_algo);

  // Push the whole schedule reversed into one batch: flush() must re-derive
  // the canonical order (time; departures first at equal times; id).
  FirstFit algo;
  StreamingSimulation stream(algo, options_for(items));
  const auto& schedule = items.schedule();
  for (auto it = schedule.rbegin(); it != schedule.rend(); ++it) {
    if (it->is_arrival) {
      stream.push_arrival(it->id, it->size, it->t);
    } else {
      stream.push_departure(it->id, it->t);
    }
  }
  EXPECT_EQ(stream.flush(), schedule.size());
  expect_identical(stream.finish(), batch, items);
}

TEST(Streaming, EventBeforeAppliedFrontierIsRejectedBeforeAnyApply) {
  FirstFit algo;
  StreamingSimulation stream(algo);
  stream.push_arrival(1, 0.4, 1.0);
  stream.push_departure(1, 3.0);
  stream.flush();
  ASSERT_EQ(stream.now(), 3.0);

  // A batch reaching back across the flush boundary: rejected as a whole,
  // engine untouched (the valid arrival at t=4 must NOT have been applied).
  stream.push_arrival(2, 0.3, 4.0);
  stream.push_arrival(3, 0.3, 2.0);
  EXPECT_THROW(stream.flush(), ValidationError);
  EXPECT_EQ(stream.events_applied(), 2u);
  EXPECT_EQ(stream.active_items(), 0u);
}

TEST(Streaming, BufferedForceCloseIsRejected) {
  FirstFit algo;
  StreamingSimulation stream(algo);
  EXPECT_THROW(stream.push({StreamEvent::Kind::kForceClose, 0, 0.0, 1.0}),
               ValidationError);
}

TEST(Streaming, PartialResultTruncatesAtNowAndRunContinues) {
  FirstFit algo;
  StreamingSimulation stream(algo);
  stream.push_arrival(1, 0.5, 0.0);
  stream.push_arrival(2, 0.5, 1.0);
  stream.flush();

  const PackingResult partial = stream.partial_result();
  EXPECT_EQ(partial.bins_opened(), 1u);
  EXPECT_EQ(partial.total_usage_time(), 1.0);  // [0, now=1)

  // The partial materialization must not disturb the live run.
  stream.push_departure(1, 4.0);
  stream.push_departure(2, 6.0);
  stream.flush();
  const PackingResult final_result = stream.finish();
  EXPECT_EQ(final_result.bins_opened(), 1u);
  EXPECT_EQ(final_result.total_usage_time(), 6.0);
}

TEST(Streaming, ForceCloseFlushesAndIsReplayedFromCheckpoints) {
  const auto run = [](StreamingSimulation& stream) {
    stream.push_arrival(1, 0.4, 0.0);
    stream.push_arrival(2, 0.4, 0.5);
    stream.flush();
    const auto evicted = stream.force_close_bin(0, 1.0);
    EXPECT_EQ(evicted.size(), 2u);
  };
  FirstFit algo;
  StreamingSimulation stream(algo);
  run(stream);

  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);
  std::istringstream in(out.str(), std::ios::binary);
  FirstFit fresh;
  StreamingSimulation restored = StreamingSimulation::restore(in, fresh);
  EXPECT_EQ(restored.events_applied(), 3u);  // 2 arrivals + 1 force-close
  EXPECT_EQ(restored.open_bin_count(), 0u);
  EXPECT_EQ(restored.bins_opened(), 1u);
  EXPECT_EQ(restored.now(), 1.0);
}

// ---- snapshot / restore ----

TEST(Streaming, SnapshotRestoreContinuesBitIdentically) {
  const ItemList items = small_workload(21);
  FirstFit reference_algo;
  const PackingResult batch = simulate(items, reference_algo);

  const auto& schedule = items.schedule();
  const std::size_t cut = schedule.size() / 3;

  FirstFit algo;
  StreamingSimulation stream(algo, options_for(items));
  for (std::size_t i = 0; i < cut; ++i) {
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      stream.push_arrival(event.id, event.size, event.t);
    } else {
      stream.push_departure(event.id, event.t);
    }
  }
  stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);

  // "Fresh process": a new algorithm instance, rebuilt purely from bytes.
  std::istringstream in(out.str(), std::ios::binary);
  FirstFit fresh;
  StreamingSimulation restored = StreamingSimulation::restore(in, fresh);
  EXPECT_EQ(restored.events_applied(), cut);
  EXPECT_EQ(restored.now(), stream.now());
  EXPECT_EQ(restored.open_bin_count(), stream.open_bin_count());
  EXPECT_EQ(restored.active_items(), stream.active_items());

  for (std::size_t i = cut; i < schedule.size(); ++i) {
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      restored.push_arrival(event.id, event.size, event.t);
    } else {
      restored.push_departure(event.id, event.t);
    }
    restored.flush();
  }
  expect_identical(restored.finish(), batch, items);
}

TEST(Streaming, RestoreValidatesAlgorithmName) {
  FirstFit algo;
  StreamingSimulation stream(algo);
  stream.push_arrival(1, 0.4, 0.0);
  stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);

  std::istringstream in(out.str(), std::ios::binary);
  BestFit wrong;
  EXPECT_THROW((void)StreamingSimulation::restore(in, wrong), ValidationError);
}

TEST(Streaming, CheckpointRecordsSeedForRegistryConsumers) {
  const auto algo = make_algorithm("RandomFit", /*seed=*/99);
  StreamingOptions options;
  options.algorithm_seed = 99;
  StreamingSimulation stream(*algo, options);
  stream.push_arrival(1, 0.4, 0.0);
  stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);

  std::istringstream in(out.str(), std::ios::binary);
  const StreamingCheckpoint checkpoint = StreamingCheckpoint::read(in);
  EXPECT_EQ(checkpoint.algorithm, "RandomFit");
  EXPECT_EQ(checkpoint.options.algorithm_seed, 99u);
  ASSERT_EQ(checkpoint.events.size(), 1u);
  EXPECT_EQ(checkpoint.events[0].kind, StreamEvent::Kind::kArrival);
}

// ---- frame-level corruption contract ----

std::string valid_checkpoint_bytes() {
  FirstFit algo;
  StreamingSimulation stream(algo);
  stream.push_arrival(1, 0.4, 0.0);
  stream.push_arrival(2, 0.3, 0.5);
  stream.push_departure(1, 2.0);
  stream.flush();
  std::ostringstream out(std::ios::binary);
  stream.snapshot(out);
  return out.str();
}

void expect_rejected(std::string bytes) {
  std::istringstream in(bytes, std::ios::binary);
  FirstFit algo;
  EXPECT_THROW((void)StreamingSimulation::restore(in, algo), ValidationError);
}

TEST(Checkpoint, BadMagicIsRejected) {
  std::string bytes = valid_checkpoint_bytes();
  bytes[0] = 'X';
  expect_rejected(bytes);
}

TEST(Checkpoint, UnsupportedVersionIsRejected) {
  std::string bytes = valid_checkpoint_bytes();
  bytes[8] = static_cast<char>(0xFF);  // version field follows the magic
  expect_rejected(bytes);
}

TEST(Checkpoint, WrongFrameKindIsRejected) {
  // A dispatcher frame is not a streaming frame, even if the bytes are
  // intact: the kind field routes each consumer to its own format.
  FirstFit algo;
  cloud::JobDispatcher dispatcher(algo);
  dispatcher.submit(1, 0.4, 0.0);
  std::ostringstream out(std::ios::binary);
  dispatcher.checkpoint(out);
  expect_rejected(out.str());
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  const std::string bytes = valid_checkpoint_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    expect_rejected(bytes.substr(0, len));
  }
}

TEST(Checkpoint, ChecksumCatchesPayloadCorruption) {
  const std::string bytes = valid_checkpoint_bytes();
  // Flip one bit in every byte position in turn — header, payload, and the
  // checksum itself; some structural or checksum check must reject each
  // mutant.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutant = bytes;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    expect_rejected(mutant);
  }
}

TEST(Checkpoint, TrailingGarbageAfterPayloadIsRejected) {
  // Declared-size corruption in the other direction: a frame whose payload
  // is longer than its header claims fails the checksum/structure checks.
  std::string bytes = valid_checkpoint_bytes();
  bytes += "extra";
  std::istringstream in(bytes, std::ios::binary);
  FirstFit algo;
  StreamingSimulation restored = StreamingSimulation::restore(in, algo);
  // The frame itself is intact; the garbage is simply not consumed. A
  // second read from the same stream then fails cleanly.
  EXPECT_EQ(restored.events_applied(), 3u);
  FirstFit another;
  EXPECT_THROW((void)StreamingSimulation::restore(in, another), ValidationError);
}

TEST(Checkpoint, BinaryReaderGuardsOversizedCounts) {
  // A count field claiming more elements than the payload could possibly
  // hold must be rejected up front (no attempt to allocate it).
  BinaryWriter payload;
  payload.u64(std::uint64_t{1} << 60);
  BinaryReader reader(payload.bytes());
  EXPECT_THROW((void)reader.count(/*min_element_bytes=*/8), ValidationError);
}

// ---- dispatcher / fleet round trips ----

TEST(DispatcherCheckpoint, RoundTripMidRunWithPendingRetries) {
  cloud::DispatcherOptions options;
  options.retry.kind = cloud::RetryPolicy::Kind::kBackoff;
  options.retry.base_delay = 0.5;

  FirstFit algo;
  cloud::JobDispatcher dispatcher(algo, options);
  dispatcher.submit(1, 0.5, 0.0);
  dispatcher.submit(2, 0.5, 0.1);
  dispatcher.submit(3, 0.8, 0.2);
  const cloud::ServerId victim = dispatcher.server_of(1);
  dispatcher.fail_server(victim, 1.0);  // jobs 1+2 queue for retry
  ASSERT_GT(dispatcher.pending_retries(), 0u);

  std::ostringstream out(std::ios::binary);
  dispatcher.checkpoint(out);
  std::istringstream in(out.str(), std::ios::binary);
  FirstFit fresh;
  const auto restored = cloud::JobDispatcher::restore(in, fresh);

  EXPECT_EQ(restored->pending_retries(), dispatcher.pending_retries());
  EXPECT_EQ(restored->running_jobs(), dispatcher.running_jobs());
  EXPECT_EQ(restored->jobs_evicted(), dispatcher.jobs_evicted());

  // Both timelines continue identically: retries come due, jobs complete.
  const auto drive = [](cloud::JobDispatcher& d) {
    (void)d.advance_to(2.0);
    d.complete(1, 3.0);
    d.complete(2, 3.5);
    d.complete(3, 4.0);
    return d.finish();
  };
  const auto original_report = drive(dispatcher);
  const auto restored_report = drive(*restored);
  EXPECT_EQ(original_report.packing.bins_opened(),
            restored_report.packing.bins_opened());
  EXPECT_EQ(original_report.packing.total_usage_time(),
            restored_report.packing.total_usage_time());
  EXPECT_EQ(original_report.billing.total_cost, restored_report.billing.total_cost);
  EXPECT_EQ(original_report.replacements, restored_report.replacements);
  EXPECT_EQ(original_report.completed, restored_report.completed);
}

TEST(DispatcherCheckpoint, RestoreValidatesAlgorithmName) {
  FirstFit algo;
  cloud::JobDispatcher dispatcher(algo);
  dispatcher.submit(1, 0.4, 0.0);
  std::ostringstream out(std::ios::binary);
  dispatcher.checkpoint(out);

  std::istringstream in(out.str(), std::ios::binary);
  BestFit wrong;
  EXPECT_THROW((void)cloud::JobDispatcher::restore(in, wrong), ValidationError);
}

TEST(FleetCheckpoint, RoundTripIsSelfContained) {
  cloud::FleetOptions options;
  options.types = {{"small", 1.0, {}}, {"large", 2.0, {}}};
  options.retry.kind = cloud::RetryPolicy::Kind::kBackoff;

  cloud::FleetDispatcher fleet(options);
  const cloud::FleetServerId first = fleet.submit(1, 0.5, 0.0);
  fleet.submit(2, 1.5, 0.1);  // only fits the large type
  fleet.submit(3, 0.4, 0.2);
  fleet.submit(4, 0.3, 0.3);
  (void)fleet.fail_server(first, 0.5);

  std::ostringstream out(std::ios::binary);
  fleet.checkpoint(out);
  std::istringstream in(out.str(), std::ios::binary);
  const auto restored = cloud::FleetDispatcher::restore(in);

  EXPECT_EQ(restored->running_jobs(), fleet.running_jobs());
  EXPECT_EQ(restored->rented_servers(), fleet.rented_servers());
  EXPECT_EQ(restored->pending_retries(), fleet.pending_retries());
  EXPECT_EQ(restored->jobs_evicted(), fleet.jobs_evicted());

  const auto drive = [](cloud::FleetDispatcher& f) {
    (void)f.advance_to(2.0);
    f.complete(1, 3.0);
    f.complete(3, 3.5);
    f.complete(2, 4.0);
    f.complete(4, 4.5);
    return f.finish();
  };
  const auto a = drive(fleet);
  const auto b = drive(*restored);
  EXPECT_EQ(a.total_cost(), b.total_cost());
  EXPECT_EQ(a.total_usage(), b.total_usage());
  EXPECT_EQ(a.servers_used(), b.servers_used());
}

}  // namespace
}  // namespace mutdbp
