// Fault injection, recovery, the invariant auditor, and the error
// hierarchy (docs/robustness.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/registry.h"
#include "analysis/disruption.h"
#include "cloud/dispatcher.h"
#include "cloud/faults.h"
#include "cloud/fleet.h"
#include "core/auditor.h"
#include "core/error.h"
#include "core/simulation.h"
#include "workload/faults.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace mutdbp {
namespace {

// ---- error hierarchy ----

TEST(ErrorHierarchy, ConcreteTypesDualDeriveFromStdAndMarker) {
  const ValidationError validation("bad input");
  EXPECT_STREQ(validation.what(), "bad input");
  EXPECT_NE(dynamic_cast<const std::invalid_argument*>(&validation), nullptr);
  EXPECT_NE(dynamic_cast<const Error*>(&validation), nullptr);

  const SimulationError simulation("bad engine call");
  EXPECT_NE(dynamic_cast<const std::logic_error*>(&simulation), nullptr);
  EXPECT_NE(dynamic_cast<const Error*>(&simulation), nullptr);

  const AuditError audit("invariant broken");
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&audit), nullptr);
  EXPECT_NE(dynamic_cast<const Error*>(&audit), nullptr);
}

TEST(ErrorHierarchy, CatchableAsMarkerAndAsStdException) {
  // The marker root must not introduce a second std::exception base:
  // catch(const std::exception&) stays unambiguous.
  bool caught_marker = false;
  try {
    throw ValidationError("x");
  } catch (const Error& e) {
    caught_marker = true;
    EXPECT_STREQ(e.what(), "x");
  }
  EXPECT_TRUE(caught_marker);

  bool caught_std = false;
  try {
    throw SimulationError("y");
  } catch (const std::exception& e) {
    caught_std = true;
    EXPECT_STREQ(e.what(), "y");
  }
  EXPECT_TRUE(caught_std);
}

TEST(ErrorHierarchy, MigratedThrowSitesUseTheHierarchy) {
  // Input validation (was std::invalid_argument, still is — plus the marker).
  FirstFit ff;
  Simulation sim(ff);
  EXPECT_THROW(sim.arrive(1, -0.5, 0.0), ValidationError);
  EXPECT_THROW(sim.arrive(1, -0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(sim.depart(42, 0.0), ValidationError);

  // Engine misuse (was std::logic_error, still is).
  sim.arrive(1, 0.5, 0.0);
  sim.depart(1, 1.0);
  (void)sim.finish();
  EXPECT_THROW(sim.arrive(2, 0.5, 2.0), SimulationError);
  EXPECT_THROW(sim.arrive(2, 0.5, 2.0), std::logic_error);
}

// ---- hardened trace reading ----

TEST(TraceHardening, RejectsNonFiniteSizesAndTimes) {
  const auto read = [](const std::string& csv) {
    std::istringstream in(csv);
    return workload::read_trace(in);
  };
  try {
    (void)read("id,size,arrival,departure\n1,nan,0,1\n");
    FAIL() << "nan size accepted";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("trace row 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("not finite"), std::string::npos);
  }
  EXPECT_THROW((void)read("id,size,arrival,departure\n1,0.5,inf,2\n"),
               ValidationError);
  EXPECT_THROW((void)read("id,size,arrival,departure\n1,0.5,0,-inf\n"),
               ValidationError);
  EXPECT_THROW((void)read("id,size,arrival,departure\n1,0.5,0,1\n2,nan,0,1\n"),
               ValidationError);
}

TEST(TraceHardening, RejectsMalformedAndDuplicateIds) {
  const auto read = [](const std::string& csv) {
    std::istringstream in(csv);
    return workload::read_trace(in);
  };
  EXPECT_THROW((void)read("id,size,arrival,departure\nabc,0.5,0,1\n"),
               ValidationError);
  EXPECT_THROW((void)read("id,size,arrival,departure\n-1,0.5,0,1\n"),
               ValidationError);
  EXPECT_THROW((void)read("id,size,arrival,departure\n1.5,0.5,0,1\n"),
               ValidationError);
  try {
    (void)read("id,size,arrival,departure\n7,0.5,0,1\n7,0.4,2,3\n");
    FAIL() << "duplicate id accepted";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("trace row 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("duplicate item id 7"), std::string::npos);
  }
}

// ---- fault schedules (workload layer) ----

TEST(FaultSchedule, FixedTimesAreSortedAndValidated) {
  workload::FaultScheduleSpec spec;
  spec.fixed_times = {5.0, 1.0, 3.0};
  EXPECT_EQ(workload::fault_times(spec), (std::vector<Time>{1.0, 3.0, 5.0}));

  spec.fixed_times = {-1.0};
  EXPECT_THROW((void)workload::fault_times(spec), ValidationError);
  spec.fixed_times = {1.0};
  spec.rate = -0.5;
  EXPECT_THROW((void)workload::fault_times(spec), ValidationError);
  spec.rate = 0.5;
  spec.horizon = 0.0;  // positive rate needs a positive horizon
  EXPECT_THROW((void)workload::fault_times(spec), ValidationError);
}

TEST(FaultSchedule, PoissonScheduleIsDeterministicPerSeed) {
  workload::FaultScheduleSpec spec;
  spec.rate = 0.5;
  spec.horizon = 100.0;
  spec.seed = 42;
  const std::vector<Time> a = workload::fault_times(spec);
  const std::vector<Time> b = workload::fault_times(spec);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (const Time t : a) EXPECT_LT(t, 100.0);

  spec.seed = 43;
  EXPECT_NE(workload::fault_times(spec), a);
}

TEST(FaultSchedule, CsvRoundTripIsExact) {
  workload::FaultScheduleSpec spec;
  spec.rate = 0.3;
  spec.horizon = 50.0;
  const std::vector<Time> times = workload::fault_times(spec);
  std::stringstream buffer;
  workload::write_fault_trace(buffer, times);
  EXPECT_EQ(workload::read_fault_trace(buffer), times);

  std::istringstream bad("time\n-3.0\n");
  EXPECT_THROW((void)workload::read_fault_trace(bad), ValidationError);
  std::istringstream nan("time\nnan\n");
  EXPECT_THROW((void)workload::read_fault_trace(nan), ValidationError);
}

// ---- Simulation::force_close_bin ----

TEST(ForceCloseBin, EvictsResidentsInArrivalOrderAndTruncatesUsage) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 0.0);
  sim.arrive(2, 0.4, 1.0);  // joins bin 0
  ASSERT_EQ(sim.open_bin_count(), 1u);

  const std::vector<EvictedItem> evicted = sim.force_close_bin(0, 4.0);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].id, 1u);
  EXPECT_DOUBLE_EQ(evicted[0].size, 0.5);
  EXPECT_DOUBLE_EQ(evicted[0].placed_at, 0.0);
  EXPECT_EQ(evicted[1].id, 2u);
  EXPECT_DOUBLE_EQ(evicted[1].placed_at, 1.0);
  EXPECT_EQ(sim.open_bin_count(), 0u);
  EXPECT_EQ(sim.active_items(), 0u);

  // Re-place both (the recovery path) and finish normally.
  EXPECT_EQ(sim.arrive(1, 0.5, 4.0), 1u);
  EXPECT_EQ(sim.arrive(2, 0.4, 4.0), 1u);
  sim.depart(1, 10.0);
  sim.depart(2, 10.0);
  const PackingResult result = sim.finish();
  ASSERT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.bins()[0].usage, (Interval{0.0, 4.0}));
  EXPECT_EQ(result.bins()[1].usage, (Interval{4.0, 10.0}));
  // The evicted placements were truncated to the fault time.
  EXPECT_EQ(result.bins()[0].items[0].active, (Interval{0.0, 4.0}));
  EXPECT_EQ(result.bins()[0].items[1].active, (Interval{1.0, 4.0}));
}

TEST(ForceCloseBin, RejectsClosedUnknownAndFinishedTargets) {
  FirstFit ff;
  Simulation sim(ff);
  EXPECT_THROW((void)sim.force_close_bin(0, 1.0), SimulationError);  // never opened

  sim.arrive(1, 0.5, 0.0);
  sim.depart(1, 2.0);  // bin 0 closes naturally
  EXPECT_THROW((void)sim.force_close_bin(0, 3.0), SimulationError);

  sim.arrive(2, 0.5, 3.0);
  EXPECT_THROW((void)sim.force_close_bin(0, 4.0), SimulationError);  // 0 closed
  sim.depart(2, 5.0);
  (void)sim.finish();
  EXPECT_THROW((void)sim.force_close_bin(1, 6.0), SimulationError);  // finished
}

TEST(ForceCloseBin, TimeMustNotGoBackwards) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 5.0);
  EXPECT_THROW((void)sim.force_close_bin(0, 4.0), SimulationError);
}

// Incremental kernels (CapacityTree, NextFit pointer) must stay consistent
// with the reference snapshot path across forced closes: drive both in
// lockstep with random faults and compare every placement.
TEST(ForceCloseBin, IncrementalKernelsStayInSyncWithSnapshotPath) {
  for (const char* name : {"FirstFit", "BestFit", "NextFit"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      workload::RandomWorkloadSpec spec;
      spec.num_items = 120;
      spec.seed = seed;
      spec.duration_max = 5.0;
      const ItemList items = workload::generate(spec);

      const auto tree_algo = make_algorithm(name);
      std::unique_ptr<PackingAlgorithm> snap_algo;
      if (std::string(name) == "FirstFit") {
        snap_algo = std::make_unique<WithSnapshots<FirstFit>>();
      } else if (std::string(name) == "BestFit") {
        snap_algo = std::make_unique<WithSnapshots<BestFit>>();
      } else {
        snap_algo = make_algorithm(name);  // NextFit validated against itself
      }
      Simulation tree_sim(*tree_algo);
      Simulation snap_sim(*snap_algo);

      Rng rng(seed * 31 + 7);
      std::size_t step = 0;
      std::vector<ItemId> alive;
      for (const ScheduledEvent& event : items.schedule()) {
        if (event.is_arrival) {
          const BinIndex a = tree_sim.arrive(event.id, event.size, event.t);
          const BinIndex b = snap_sim.arrive(event.id, event.size, event.t);
          ASSERT_EQ(a, b) << name << " seed " << seed << " item " << event.id;
          alive.push_back(event.id);
        } else if (std::find(alive.begin(), alive.end(), event.id) != alive.end()) {
          tree_sim.depart(event.id, event.t);
          snap_sim.depart(event.id, event.t);
          alive.erase(std::remove(alive.begin(), alive.end(), event.id),
                      alive.end());
        }
        // Every ~20 events, crash a random open server in both simulations.
        if (++step % 20 == 0 && tree_sim.open_bin_count() > 0) {
          const auto open = tree_sim.open_snapshots();
          const BinIndex victim = open[rng.index(open.size())].index;
          const auto evicted_tree = tree_sim.force_close_bin(victim, event.t);
          const auto evicted_snap = snap_sim.force_close_bin(victim, event.t);
          ASSERT_EQ(evicted_tree.size(), evicted_snap.size());
          for (std::size_t i = 0; i < evicted_tree.size(); ++i) {
            EXPECT_EQ(evicted_tree[i].id, evicted_snap[i].id);
            // Evicted jobs are abandoned (not re-placed) in this test.
            alive.erase(std::remove(alive.begin(), alive.end(),
                                    evicted_tree[i].id),
                        alive.end());
          }
        }
      }
      for (const ItemId id : alive) {
        tree_sim.depart(id, 1e6);
        snap_sim.depart(id, 1e6);
      }
      const PackingResult tree_result = tree_sim.finish();
      const PackingResult snap_result = snap_sim.finish();
      EXPECT_EQ(tree_result.total_usage_time(), snap_result.total_usage_time())
          << name << " seed " << seed;
      EXPECT_EQ(tree_result.bins_opened(), snap_result.bins_opened());
    }
  }
}

// ---- FaultInjector ----

TEST(FaultInjector, AdversarialPoliciesPickTheWorstServer) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 0.0);   // bin 0
  sim.arrive(2, 0.95, 1.0);  // bin 1
  sim.arrive(3, 0.3, 2.0);   // bin 0 (0.8)
  sim.arrive(4, 0.4, 3.0);   // bin 2
  // Levels: bin0 = 0.8, bin1 = 0.95, bin2 = 0.4.

  cloud::FaultInjector fullest(cloud::VictimPolicy::kFullest, 1);
  EXPECT_EQ(fullest.pick_victim(sim), std::optional<cloud::ServerId>(1));
  cloud::FaultInjector oldest(cloud::VictimPolicy::kOldest, 1);
  EXPECT_EQ(oldest.pick_victim(sim), std::optional<cloud::ServerId>(0));
  cloud::FaultInjector youngest(cloud::VictimPolicy::kYoungest, 1);
  EXPECT_EQ(youngest.pick_victim(sim), std::optional<cloud::ServerId>(2));
}

TEST(FaultInjector, FullestBreaksTiesTowardTheOldestBin) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.8, 0.0);  // bin 0
  sim.arrive(2, 0.8, 1.0);  // bin 1, same level
  cloud::FaultInjector fullest(cloud::VictimPolicy::kFullest, 1);
  EXPECT_EQ(fullest.pick_victim(sim), std::optional<cloud::ServerId>(0));
}

TEST(FaultInjector, RandomPolicyIsSeedDeterministicAndIdleFaultsAreNoops) {
  FirstFit ff;
  Simulation sim(ff);
  cloud::FaultInjector injector(cloud::VictimPolicy::kRandom, 9);
  EXPECT_EQ(injector.pick_victim(sim), std::nullopt);  // nothing rented

  sim.arrive(1, 0.9, 0.0);
  sim.arrive(2, 0.9, 1.0);
  sim.arrive(3, 0.9, 2.0);
  std::vector<cloud::ServerId> picks_a;
  std::vector<cloud::ServerId> picks_b;
  cloud::FaultInjector a(cloud::VictimPolicy::kRandom, 123);
  cloud::FaultInjector b(cloud::VictimPolicy::kRandom, 123);
  for (int i = 0; i < 20; ++i) {
    picks_a.push_back(*a.pick_victim(sim));
    picks_b.push_back(*b.pick_victim(sim));
  }
  EXPECT_EQ(picks_a, picks_b);
  // All three servers get hit eventually (sanity of the uniform pick).
  for (const cloud::ServerId server : {0u, 1u, 2u}) {
    EXPECT_NE(std::find(picks_a.begin(), picks_a.end(), server), picks_a.end());
  }
}

// ---- RetryScheduler ----

TEST(RetryScheduler, DecidesFatePerPolicy) {
  using Fate = cloud::RetryScheduler::Fate;
  cloud::RetryScheduler immediate({cloud::RetryPolicy::Kind::kImmediate});
  EXPECT_EQ(immediate.decide(5, 1.0).fate, Fate::kResubmitNow);

  cloud::RetryScheduler drop({cloud::RetryPolicy::Kind::kDrop});
  const auto drop_decision = drop.decide(0, 1.0);
  EXPECT_EQ(drop_decision.fate, Fate::kDropped);
  EXPECT_EQ(drop_decision.reason, cloud::DropReason::kPolicy);

  cloud::RetryPolicy backoff{cloud::RetryPolicy::Kind::kBackoff, 2, 0.5, 2.0};
  cloud::RetryScheduler scheduler(backoff);
  const auto first = scheduler.decide(0, 10.0);
  EXPECT_EQ(first.fate, Fate::kQueued);
  EXPECT_DOUBLE_EQ(first.retry_at, 10.5);  // base delay
  const auto second = scheduler.decide(1, 20.0);
  EXPECT_DOUBLE_EQ(second.retry_at, 21.0);  // base * factor
  const auto third = scheduler.decide(2, 30.0);  // budget (2) exhausted
  EXPECT_EQ(third.fate, Fate::kDropped);
  EXPECT_EQ(third.reason, cloud::DropReason::kRetryBudget);
}

TEST(RetryScheduler, QueueIsFifoPerInstantAndSupportsCancel) {
  cloud::RetryScheduler scheduler({cloud::RetryPolicy::Kind::kBackoff, 3, 1.0, 2.0});
  scheduler.schedule(1, 0.5, 5.0);
  scheduler.schedule(2, 0.4, 5.0);
  scheduler.schedule(3, 0.3, 4.0);
  EXPECT_EQ(scheduler.pending(), 3u);
  EXPECT_EQ(scheduler.next_due(), std::optional<Time>(4.0));
  EXPECT_TRUE(scheduler.cancel(2));
  EXPECT_FALSE(scheduler.cancel(2));
  EXPECT_EQ(scheduler.pending(), 2u);

  const auto due = scheduler.take_due(5.0);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].job, 3u);  // earlier time first
  EXPECT_EQ(due[1].job, 1u);  // cancelled job skipped
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(scheduler.next_due(), std::nullopt);

  scheduler.schedule(1, 0.5, 9.0);
  EXPECT_THROW(scheduler.schedule(1, 0.5, 10.0), SimulationError);
  EXPECT_THROW(cloud::RetryScheduler({cloud::RetryPolicy::Kind::kBackoff, 3,
                                      -1.0, 2.0}),
               ValidationError);
}

// ---- run_with_faults ----

ItemList shared_bin_items() {
  // Both jobs ride one FirstFit bin until a fault splits them off.
  return ItemList({make_item(1, 0.5, 0.0, 10.0), make_item(2, 0.4, 1.0, 10.0)});
}

TEST(RunWithFaults, HandCheckedEvictionAndImmediateRecovery) {
  FirstFit ff;
  cloud::FaultyRunOptions options;
  options.fault_schedule = {4.0};
  options.victim = cloud::VictimPolicy::kOldest;
  options.retry.kind = cloud::RetryPolicy::Kind::kImmediate;
  options.billing.granularity = 0.0;
  const cloud::FaultyRunReport report =
      cloud::run_with_faults(shared_bin_items(), ff, options);

  EXPECT_EQ(report.faults_scheduled, 1u);
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.faults_idle, 0u);
  EXPECT_EQ(report.evictions, 2u);
  EXPECT_EQ(report.replacements, 2u);
  EXPECT_EQ(report.drops, 0u);
  EXPECT_EQ(report.completed, 2u);

  using Kind = cloud::DisruptionEvent::Kind;
  ASSERT_EQ(report.events.size(), 4u);
  EXPECT_EQ(report.events[0],
            (cloud::DisruptionEvent{Kind::kEviction, 4.0, 1, 0,
                                    cloud::DropReason::kNone}));
  EXPECT_EQ(report.events[1],
            (cloud::DisruptionEvent{Kind::kReplacement, 4.0, 1, 1,
                                    cloud::DropReason::kNone}));
  EXPECT_EQ(report.events[2].job, 2u);
  EXPECT_EQ(report.events[3].kind, Kind::kReplacement);

  // Usage: bin0 [0,4) + bin1 [4,10) = 10 exactly.
  ASSERT_EQ(report.packing.bins_opened(), 2u);
  EXPECT_DOUBLE_EQ(report.packing.total_usage_time(), 10.0);
  EXPECT_DOUBLE_EQ(report.billing.total_cost, 10.0);
}

TEST(RunWithFaults, DropPolicyAccountsEveryEvictedJob) {
  FirstFit ff;
  cloud::FaultyRunOptions options;
  options.fault_schedule = {4.0};
  options.victim = cloud::VictimPolicy::kOldest;
  options.retry.kind = cloud::RetryPolicy::Kind::kDrop;
  const cloud::FaultyRunReport report =
      cloud::run_with_faults(shared_bin_items(), ff, options);

  EXPECT_EQ(report.evictions, 2u);
  EXPECT_EQ(report.replacements, 0u);
  EXPECT_EQ(report.drops, 2u);
  EXPECT_EQ(report.completed, 0u);
  // Conservation: every job completed or dropped.
  EXPECT_EQ(report.completed + report.drops, shared_bin_items().size());
  // The servers only ran until the crash.
  EXPECT_DOUBLE_EQ(report.packing.total_usage_time(), 4.0);
  for (const auto& event : report.events) {
    if (event.kind == cloud::DisruptionEvent::Kind::kDrop) {
      EXPECT_EQ(event.reason, cloud::DropReason::kPolicy);
    }
  }
}

TEST(RunWithFaults, BackoffRetriesLandAfterTheDelay) {
  FirstFit ff;
  cloud::FaultyRunOptions options;
  options.fault_schedule = {4.0};
  options.victim = cloud::VictimPolicy::kOldest;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 2.0, 2.0};
  const cloud::FaultyRunReport report =
      cloud::run_with_faults(shared_bin_items(), ff, options);

  // Both jobs evicted at 4, re-placed at 6, run until 10.
  EXPECT_EQ(report.replacements, 2u);
  EXPECT_EQ(report.drops, 0u);
  EXPECT_EQ(report.completed, 2u);
  bool saw_replacement = false;
  for (const auto& event : report.events) {
    if (event.kind == cloud::DisruptionEvent::Kind::kReplacement) {
      saw_replacement = true;
      EXPECT_DOUBLE_EQ(event.t, 6.0);
    }
  }
  EXPECT_TRUE(saw_replacement);
  // bin0 [0,4) + bin1 [6,10): the backoff gap is not billed.
  EXPECT_DOUBLE_EQ(report.packing.total_usage_time(), 8.0);
}

TEST(RunWithFaults, BackoffPastDepartureExpiresTheJob) {
  // Job 2 departs at 5; evicted at 4 with delay 2 -> retry at 6 >= 5: dropped.
  const ItemList items({make_item(1, 0.5, 0.0, 10.0), make_item(2, 0.4, 1.0, 5.0)});
  FirstFit ff;
  cloud::FaultyRunOptions options;
  options.fault_schedule = {4.0};
  options.victim = cloud::VictimPolicy::kOldest;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 2.0, 2.0};
  const cloud::FaultyRunReport report = cloud::run_with_faults(items, ff, options);

  EXPECT_EQ(report.evictions, 2u);
  EXPECT_EQ(report.replacements, 1u);  // job 1 comes back at 6
  EXPECT_EQ(report.drops, 1u);         // job 2 expires
  EXPECT_EQ(report.completed, 1u);
  bool saw_expired_drop = false;
  for (const auto& event : report.events) {
    if (event.kind == cloud::DisruptionEvent::Kind::kDrop) {
      saw_expired_drop = true;
      EXPECT_EQ(event.job, 2u);
      EXPECT_EQ(event.reason, cloud::DropReason::kExpired);
    }
  }
  EXPECT_TRUE(saw_expired_drop);
}

TEST(RunWithFaults, RetryBudgetDropsRepeatedlyEvictedJobs) {
  // One long job, killed every 2 time units; budget of 2 re-placements.
  const ItemList items({make_item(1, 0.5, 0.0, 100.0)});
  FirstFit ff;
  cloud::FaultyRunOptions options;
  options.fault_schedule = {2.0, 4.0, 6.0, 8.0};
  options.victim = cloud::VictimPolicy::kOldest;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 2, 0.5, 1.0};
  const cloud::FaultyRunReport report = cloud::run_with_faults(items, ff, options);

  // Evictions at 2 and 4 queue retries (2.5, 4.5); the third eviction at 6
  // exhausts the budget.
  EXPECT_EQ(report.evictions, 3u);
  EXPECT_EQ(report.replacements, 2u);
  EXPECT_EQ(report.drops, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.faults_idle, 1u);  // the fault at 8 hits an empty fleet
  EXPECT_EQ(report.events.back().reason, cloud::DropReason::kRetryBudget);
}

TEST(RunWithFaults, ZeroFaultScheduleIsBitIdenticalToSimulate) {
  for (const char* name : {"FirstFit", "BestFit", "NextFit"}) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 250;
    spec.seed = 77;
    spec.duration_max = 6.0;
    const ItemList items = workload::generate(spec);

    const auto baseline_algo = make_algorithm(name);
    const PackingResult baseline = simulate(items, *baseline_algo);

    const auto faulty_algo = make_algorithm(name);
    cloud::FaultyRunOptions options;  // empty schedule
    const cloud::FaultyRunReport report =
        cloud::run_with_faults(items, *faulty_algo, options);

    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.evictions, 0u);
    EXPECT_TRUE(report.events.empty());
    EXPECT_EQ(report.completed, items.size());

    // Bit-identical: exact usage, same bins, same per-bin usage periods,
    // same assignment.
    EXPECT_EQ(report.packing.total_usage_time(), baseline.total_usage_time())
        << name;
    ASSERT_EQ(report.packing.bins_opened(), baseline.bins_opened()) << name;
    for (std::size_t b = 0; b < baseline.bins_opened(); ++b) {
      EXPECT_EQ(report.packing.bins()[b].usage, baseline.bins()[b].usage);
    }
    for (const auto& item : items) {
      EXPECT_EQ(report.packing.bin_of(item.id), baseline.bin_of(item.id));
    }
  }
}

TEST(RunWithFaults, ReplayIsDeterministic) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 200;
  spec.seed = 5;
  spec.duration_max = 5.0;
  const ItemList items = workload::generate(spec);

  workload::FaultScheduleSpec schedule;
  schedule.rate = 0.2;
  schedule.horizon = items.span();
  schedule.seed = 11;

  cloud::FaultyRunOptions options;
  options.fault_schedule = workload::fault_times(schedule);
  options.victim = cloud::VictimPolicy::kRandom;
  options.victim_seed = 3;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 0.25, 2.0};

  FirstFit a;
  FirstFit b;
  const cloud::FaultyRunReport first = cloud::run_with_faults(items, a, options);
  const cloud::FaultyRunReport second = cloud::run_with_faults(items, b, options);

  ASSERT_GT(first.evictions, 0u);  // the scenario actually exercises faults
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.billing.total_cost, second.billing.total_cost);
  EXPECT_EQ(first.billing.total_usage, second.billing.total_usage);
  EXPECT_EQ(first.packing.total_usage_time(), second.packing.total_usage_time());
}

// Satellite 4's property test: any random trace x fault schedule x retry
// policy runs with the auditor attached and conserves every job.
TEST(RunWithFaults, PropertyAuditedConservationAcrossPolicies) {
  const cloud::RetryPolicy policies[] = {
      {cloud::RetryPolicy::Kind::kImmediate, 0, 0.25, 2.0},
      {cloud::RetryPolicy::Kind::kBackoff, 2, 0.5, 2.0},
      {cloud::RetryPolicy::Kind::kDrop, 0, 0.25, 2.0},
  };
  const cloud::VictimPolicy victims[] = {
      cloud::VictimPolicy::kRandom, cloud::VictimPolicy::kFullest,
      cloud::VictimPolicy::kOldest, cloud::VictimPolicy::kYoungest};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 80;
    spec.seed = seed;
    spec.duration_max = 4.0;
    const ItemList items = workload::generate(spec);

    workload::FaultScheduleSpec schedule;
    schedule.rate = 0.25;
    schedule.horizon = items.span();
    schedule.seed = seed * 13 + 1;

    for (const cloud::RetryPolicy& retry : policies) {
      cloud::FaultyRunOptions options;
      options.sim.audit = true;  // every event re-checked by the auditor
      options.fault_schedule = workload::fault_times(schedule);
      options.victim = victims[seed % 4];
      options.victim_seed = seed;
      options.retry = retry;

      FirstFit ff;
      const cloud::FaultyRunReport report =
          cloud::run_with_faults(items, ff, options);

      // Conservation: every job completed or was dropped with a reason.
      EXPECT_EQ(report.completed + report.drops, items.size())
          << "seed " << seed << " policy "
          << static_cast<int>(retry.kind);
      // Each eviction resolved to at most one replacement or drop.
      EXPECT_LE(report.replacements + report.drops, report.evictions + report.drops);
      EXPECT_EQ(report.faults_injected + report.faults_idle,
                report.faults_scheduled);
    }
  }
}

// ---- disruption metrics ----

TEST(Disruption, DerivedMetricsAndValidation) {
  analysis::DisruptionInputs in;
  in.jobs = 100;
  in.faults_injected = 4;
  in.evictions = 10;
  in.replacements = 7;
  in.drops = 3;
  in.usage = 120.0;
  in.fault_free_usage = 100.0;
  in.cost = 130.0;
  in.fault_free_cost = 104.0;
  const analysis::DisruptionReport report = analysis::summarize_disruption(in);
  EXPECT_DOUBLE_EQ(report.loss_rate(), 0.03);
  EXPECT_DOUBLE_EQ(report.evictions_per_job(), 0.1);
  EXPECT_DOUBLE_EQ(report.extra_usage(), 20.0);
  EXPECT_DOUBLE_EQ(report.usage_ratio(), 1.2);
  EXPECT_DOUBLE_EQ(report.cost_ratio(), 1.25);

  in.replacements = 9;  // 9 + 3 > 10 evictions: inconsistent
  EXPECT_THROW((void)analysis::summarize_disruption(in), ValidationError);
  in.replacements = 7;
  in.usage = -1.0;
  EXPECT_THROW((void)analysis::summarize_disruption(in), ValidationError);
}

// ---- JobDispatcher recovery & misuse contract ----

TEST(DispatcherMisuse, DuplicateLiveSubmitThrows) {
  FirstFit ff;
  cloud::JobDispatcher dispatcher(ff);
  dispatcher.submit(1, 0.5, 0.0);
  EXPECT_THROW(dispatcher.submit(1, 0.3, 1.0), ValidationError);
  // Completing frees the id for reuse.
  dispatcher.complete(1, 2.0);
  EXPECT_NO_THROW(dispatcher.submit(1, 0.3, 3.0));
}

TEST(DispatcherMisuse, CompleteOfUnknownOrCompletedJobThrows) {
  FirstFit ff;
  cloud::JobDispatcher dispatcher(ff);
  EXPECT_THROW(dispatcher.complete(99, 1.0), ValidationError);
  dispatcher.submit(1, 0.5, 0.0);
  dispatcher.complete(1, 2.0);
  EXPECT_THROW(dispatcher.complete(1, 3.0), ValidationError);
}

TEST(DispatcherRecovery, FailServerWithImmediateRetryMovesJobs) {
  FirstFit ff;
  cloud::DispatcherOptions options;
  options.retry.kind = cloud::RetryPolicy::Kind::kImmediate;
  options.billing.granularity = 0.0;
  cloud::JobDispatcher dispatcher(ff, options);
  dispatcher.submit(1, 0.5, 0.0);
  dispatcher.submit(2, 0.4, 1.0);
  ASSERT_EQ(dispatcher.rented_servers(), 1u);

  const auto outcomes = dispatcher.fail_server(0, 4.0);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.fate, cloud::RetryScheduler::Fate::kResubmitNow);
    EXPECT_EQ(outcome.server, 1u);
  }
  EXPECT_EQ(dispatcher.jobs_evicted(), 2u);
  EXPECT_EQ(dispatcher.jobs_replaced(), 2u);
  EXPECT_EQ(dispatcher.running_jobs(), 2u);
  EXPECT_EQ(dispatcher.server_of(1), 1u);

  dispatcher.complete(1, 10.0);
  dispatcher.complete(2, 10.0);
  const auto report = dispatcher.finish();
  EXPECT_EQ(report.evictions, 2u);
  EXPECT_EQ(report.replacements, 2u);
  EXPECT_EQ(report.drops, 0u);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_DOUBLE_EQ(report.billing.total_usage, 10.0);  // [0,4) + [4,10)
}

TEST(DispatcherRecovery, BackoffQueuesAndAdvanceToReplaces) {
  FirstFit ff;
  cloud::DispatcherOptions options;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 2.0, 2.0};
  cloud::JobDispatcher dispatcher(ff, options);
  dispatcher.submit(1, 0.5, 0.0);

  const auto outcomes = dispatcher.fail_server(0, 4.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].fate, cloud::RetryScheduler::Fate::kQueued);
  EXPECT_DOUBLE_EQ(outcomes[0].retry_at, 6.0);
  EXPECT_EQ(dispatcher.pending_retries(), 1u);
  EXPECT_EQ(dispatcher.running_jobs(), 0u);

  EXPECT_TRUE(dispatcher.advance_to(5.0).empty());  // not due yet
  const auto replaced = dispatcher.advance_to(6.5);
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(replaced[0].job, 1u);
  EXPECT_EQ(dispatcher.pending_retries(), 0u);
  EXPECT_EQ(dispatcher.running_jobs(), 1u);

  dispatcher.complete(1, 8.0);
  const auto report = dispatcher.finish();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.drops, 0u);
}

TEST(DispatcherRecovery, CompletingAWaitingJobCancelsItsRetry) {
  FirstFit ff;
  cloud::DispatcherOptions options;
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 2.0, 2.0};
  cloud::JobDispatcher dispatcher(ff, options);
  dispatcher.submit(1, 0.5, 0.0);
  (void)dispatcher.fail_server(0, 4.0);
  ASSERT_EQ(dispatcher.pending_retries(), 1u);

  dispatcher.complete(1, 5.0);  // finishes while waiting: retry cancelled
  EXPECT_EQ(dispatcher.pending_retries(), 0u);
  EXPECT_TRUE(dispatcher.advance_to(10.0).empty());
  const auto report = dispatcher.finish();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.drops, 0u);
  EXPECT_DOUBLE_EQ(report.billing.total_usage, 4.0);  // truncated rental
}

TEST(DispatcherRecovery, DropPolicyAndFinishExpiry) {
  FirstFit ff;
  cloud::DispatcherOptions drop_options;
  drop_options.retry.kind = cloud::RetryPolicy::Kind::kDrop;
  cloud::JobDispatcher dropper(ff, drop_options);
  dropper.submit(1, 0.5, 0.0);
  const auto outcomes = dropper.fail_server(0, 2.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].fate, cloud::RetryScheduler::Fate::kDropped);
  EXPECT_EQ(outcomes[0].reason, cloud::DropReason::kPolicy);
  // The dropped id may be reused.
  EXPECT_NO_THROW(dropper.submit(1, 0.5, 3.0));
  dropper.complete(1, 4.0);
  EXPECT_EQ(dropper.finish().drops, 1u);

  // A retry still pending at finish() is dropped there.
  FirstFit ff2;
  cloud::DispatcherOptions backoff_options;
  backoff_options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 100.0, 2.0};
  cloud::JobDispatcher waiter(ff2, backoff_options);
  waiter.submit(7, 0.5, 0.0);
  (void)waiter.fail_server(0, 1.0);
  const auto report = waiter.finish();
  EXPECT_EQ(report.drops, 1u);
  EXPECT_EQ(report.completed, 0u);
}

// ---- FleetDispatcher recovery ----

cloud::FleetOptions two_type_fleet() {
  cloud::FleetOptions options;
  options.types = {
      {"small", 0.5, cloud::BillingPolicy{1.0, 0.6}},
      {"large", 1.0, cloud::BillingPolicy{1.0, 1.0}},
  };
  return options;
}

TEST(FleetRecovery, FailServerReroutesEvictedJobs) {
  cloud::FleetOptions options = two_type_fleet();
  options.retry.kind = cloud::RetryPolicy::Kind::kImmediate;
  cloud::FleetDispatcher fleet(options);
  fleet.submit(1, 0.4, 0.0);  // routes to "small"
  fleet.submit(2, 0.3, 0.0);  // a second small server (0.4+0.3 > 0.5)
  ASSERT_EQ(fleet.rented_servers(), 2u);

  const auto outcomes = fleet.fail_server({0, 0}, 2.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].job, 1u);
  EXPECT_EQ(outcomes[0].fate, cloud::RetryScheduler::Fate::kResubmitNow);
  EXPECT_EQ(outcomes[0].server.type, 0u);  // re-routed, still smallest fitting
  EXPECT_EQ(fleet.jobs_evicted(), 1u);
  EXPECT_EQ(fleet.running_jobs(), 2u);

  fleet.complete(1, 5.0);
  fleet.complete(2, 5.0);
  const auto report = fleet.finish();
  EXPECT_EQ(report.servers_used(), 3u);  // the crash forced a third rental
}

TEST(FleetRecovery, QueuedRetryAndMisuseContract) {
  cloud::FleetOptions options = two_type_fleet();
  options.retry = {cloud::RetryPolicy::Kind::kBackoff, 3, 1.0, 2.0};
  cloud::FleetDispatcher fleet(options);
  fleet.submit(1, 0.4, 0.0);
  EXPECT_THROW(fleet.submit(1, 0.2, 0.5), ValidationError);  // duplicate live id

  const auto outcomes = fleet.fail_server({0, 0}, 2.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].fate, cloud::RetryScheduler::Fate::kQueued);
  EXPECT_EQ(fleet.pending_retries(), 1u);
  EXPECT_THROW(fleet.submit(1, 0.2, 2.5), ValidationError);  // still live (waiting)

  const auto replaced = fleet.advance_to(3.0);
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(fleet.running_jobs(), 1u);
  fleet.complete(1, 4.0);
  EXPECT_THROW(fleet.complete(1, 5.0), ValidationError);  // already completed
  (void)fleet.finish();
}

TEST(FleetRecovery, DropPolicyCounts) {
  cloud::FleetOptions options = two_type_fleet();
  options.retry.kind = cloud::RetryPolicy::Kind::kDrop;
  cloud::FleetDispatcher fleet(options);
  fleet.submit(1, 0.4, 0.0);
  const auto outcomes = fleet.fail_server({0, 0}, 2.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reason, cloud::DropReason::kPolicy);
  EXPECT_EQ(fleet.jobs_dropped(), 1u);
  EXPECT_EQ(fleet.running_jobs(), 0u);
  (void)fleet.finish();
}

// ---- InvariantAuditor ----

TEST(Auditor, AcceptsAConsistentEventStream) {
  InvariantAuditor auditor(1.0, 1e-9);
  auditor.on_arrive(1, 0.5, 0, 0.0);
  auditor.on_arrive(2, 0.4, 0, 1.0);
  auditor.on_depart(1, 0, 2.0);
  auditor.on_depart(2, 0, 3.0);
  auditor.on_bin_closed(0, 3.0);
  EXPECT_EQ(auditor.items_arrived(), 2u);
  EXPECT_EQ(auditor.items_completed(), 2u);
  EXPECT_EQ(auditor.items_evicted(), 0u);
  EXPECT_GE(auditor.events_checked(), 5u);
}

TEST(Auditor, DetectsEngineInvariantViolations) {
  {
    InvariantAuditor auditor(1.0, 1e-9);
    EXPECT_THROW(auditor.on_depart(1, 0, 0.0), AuditError);  // unknown item
  }
  {
    InvariantAuditor auditor(1.0, 1e-9);
    auditor.on_arrive(1, 0.5, 0, 0.0);
    EXPECT_THROW(auditor.on_arrive(1, 0.5, 1, 1.0), AuditError);  // duplicate id
  }
  {
    InvariantAuditor auditor(1.0, 1e-9);
    auditor.on_arrive(1, 0.6, 0, 0.0);
    EXPECT_THROW(auditor.on_arrive(2, 0.6, 0, 1.0), AuditError);  // overflow
  }
  {
    InvariantAuditor auditor(1.0, 1e-9);
    auditor.on_arrive(1, 0.5, 0, 0.0);
    EXPECT_THROW(auditor.on_arrive(2, 0.4, 5, 1.0), AuditError);  // bad new bin
  }
  {
    InvariantAuditor auditor(1.0, 1e-9);
    auditor.on_arrive(1, 0.5, 0, 0.0);
    EXPECT_THROW(auditor.on_bin_closed(0, 1.0), AuditError);  // closes non-empty
  }
  {
    InvariantAuditor auditor(1.0, 1e-9);
    auditor.on_arrive(1, 0.5, 0, 0.0);
    auditor.on_depart(1, 0, 1.0);
    auditor.on_bin_closed(0, 1.0);
    EXPECT_THROW(auditor.on_arrive(2, 0.4, 0, 2.0), AuditError);  // reopen
  }
}

TEST(Auditor, AttachesViaSimulationOptions) {
  FirstFit ff;
  SimulationOptions options;
  options.audit = true;
  Simulation sim(ff, options);
  EXPECT_TRUE(sim.auditing());

  sim.arrive(1, 0.5, 0.0);
  sim.arrive(2, 0.4, 1.0);
  (void)sim.force_close_bin(0, 2.0);
  sim.arrive(1, 0.5, 3.0);
  sim.depart(1, 4.0);
  const PackingResult result = sim.finish();  // telescoping check passes
  EXPECT_EQ(result.bins_opened(), 2u);

  FirstFit ff2;
  Simulation plain(ff2);
  EXPECT_EQ(plain.auditing(), audit_enabled_by_env());
}

TEST(Auditor, AuditedSimulationMatchesUnauditedExactly) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 150;
  spec.seed = 21;
  const ItemList items = workload::generate(spec);

  FirstFit plain_algo;
  const PackingResult plain = simulate(items, plain_algo);

  FirstFit audited_algo;
  SimulationOptions options;
  options.audit = true;
  const PackingResult audited = simulate(items, audited_algo, options);

  EXPECT_EQ(plain.total_usage_time(), audited.total_usage_time());
  EXPECT_EQ(plain.bins_opened(), audited.bins_opened());
}

}  // namespace
}  // namespace mutdbp
