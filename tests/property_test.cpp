// Parameterized property sweeps: the paper's propositions, lemmas, and
// Theorem 1 checked on families of random workloads. Each property runs
// over a grid of (generator config, seed) pairs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/any_fit.h"
#include "algorithms/hybrid_first_fit.h"
#include "algorithms/next_fit.h"
#include "algorithms/registry.h"
#include "clairvoyant/clairvoyant.h"
#include "analysis/subperiods.h"
#include "analysis/supplier.h"
#include "analysis/usage_periods.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "opt/opt_integral.h"
#include "workload/generators.h"

namespace mutdbp {
namespace {

using workload::ArrivalProcess;
using workload::DurationDistribution;
using workload::RandomWorkloadSpec;
using workload::SizeDistribution;

struct SweepCase {
  std::string label;
  RandomWorkloadSpec spec;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const double mu : {1.0, 2.0, 5.0, 12.0}) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      RandomWorkloadSpec spec;
      spec.num_items = 120;
      spec.seed = seed;
      spec.arrival_rate = 2.0;
      spec.duration_min = 1.0;
      spec.duration_max = mu;
      spec.size_min = 0.02;
      spec.size_max = 1.0;
      cases.push_back({"uniform_mu" + std::to_string(static_cast<int>(mu)) + "_s" +
                           std::to_string(seed),
                       spec});

      RandomWorkloadSpec bimodal = spec;
      bimodal.size_dist = SizeDistribution::kBimodal;
      bimodal.duration_dist = DurationDistribution::kBimodal;
      cases.push_back({"bimodal_mu" + std::to_string(static_cast<int>(mu)) + "_s" +
                           std::to_string(seed),
                       bimodal});
    }
  }
  // A bursty case: simultaneous arrivals stress tie-breaking.
  RandomWorkloadSpec batched;
  batched.num_items = 120;
  batched.seed = 77;
  batched.arrivals = ArrivalProcess::kBatched;
  batched.batch_size = 6;
  batched.duration_max = 6.0;
  cases.push_back({"batched_mu6_s77", batched});
  return cases;
}

class WorkloadSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, WorkloadSweep, ::testing::ValuesIn(sweep_cases()),
                         [](const auto& param_info) { return param_info.param.label; });

// ---- simulator invariants ----

TEST_P(WorkloadSweep, CapacityNeverExceeded) {
  const ItemList items = workload::generate(GetParam().spec);
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    const PackingResult result = simulate(items, *algo);
    for (const auto& bin : result.bins()) {
      for (std::size_t i = 0; i < bin.timeline.levels.size(); ++i) {
        EXPECT_LE(bin.timeline.levels[i], items.capacity() + 1e-6)
            << name << " bin " << bin.index;
      }
    }
  }
}

TEST_P(WorkloadSweep, EveryItemPlacedExactlyOnce) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  EXPECT_EQ(result.assignment().size(), items.size());
  std::size_t placements = 0;
  for (const auto& bin : result.bins()) placements += bin.items.size();
  EXPECT_EQ(placements, items.size());
}

TEST_P(WorkloadSweep, UsagePeriodsSpanFirstToLastItem) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  for (const auto& bin : result.bins()) {
    ASSERT_FALSE(bin.items.empty());
    EXPECT_DOUBLE_EQ(bin.usage.left, bin.items.front().active.left);
    Time last_departure = 0.0;
    for (const auto& placed : bin.items) {
      last_departure = std::max(last_departure, placed.active.right);
      EXPECT_TRUE(bin.usage.contains(placed.active.left));
    }
    EXPECT_DOUBLE_EQ(bin.usage.right, last_departure);
  }
}

// ---- the First Fit rule and the Any Fit property ----

TEST_P(WorkloadSweep, FirstFitAlwaysPicksLowestIndexedFit) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  // Reconstruct each bin's level at every arrival and check the rule.
  const auto sorted = items.sorted_by_arrival();
  for (const auto& item : sorted) {
    const BinIndex chosen = result.bin_of(item.id);
    for (const auto& bin : result.bins()) {
      if (bin.index >= chosen) break;
      // Bin open strictly before this arrival and still open?
      if (!(bin.usage.left < item.arrival() ||
            (bin.usage.left == item.arrival() && bin.index < chosen))) {
        continue;
      }
      if (!bin.usage.contains(item.arrival())) continue;
      const double level = bin.timeline.at(item.arrival());
      // The level timeline at the arrival instant may already include items
      // that arrived at the same instant but later in sequence; use the
      // recorded placements instead.
      double level_before = 0.0;
      for (const auto& placed : bin.items) {
        if (placed.active.contains(item.arrival()) &&
            !(placed.active.left == item.arrival() && placed.item >= item.id)) {
          level_before += placed.size;
        }
      }
      (void)level;
      EXPECT_GT(level_before + item.size, items.capacity() + 1e-12)
          << "FirstFit skipped fitting bin " << bin.index << " for item " << item.id;
    }
  }
}

TEST_P(WorkloadSweep, AnyFitNeverOpensWhenSomethingFits) {
  const ItemList items = workload::generate(GetParam().spec);
  for (const auto& name : {"FirstFit", "BestFit", "WorstFit", "LastFit", "RandomFit"}) {
    const auto algo = make_algorithm(name);
    const PackingResult result = simulate(items, *algo);
    const auto sorted = items.sorted_by_arrival();
    for (const auto& item : sorted) {
      const BinIndex chosen = result.bin_of(item.id);
      const bool opened_new = result.bins()[chosen].usage.left == item.arrival() &&
                              result.bins()[chosen].items.front().item == item.id;
      if (!opened_new) continue;
      // No open bin may have had room.
      for (const auto& bin : result.bins()) {
        if (bin.index == chosen || !bin.usage.contains(item.arrival())) continue;
        if (bin.usage.left == item.arrival()) continue;  // opened simultaneously later
        double level_before = 0.0;
        for (const auto& placed : bin.items) {
          if (placed.active.contains(item.arrival()) &&
              !(placed.active.left == item.arrival() && placed.item >= item.id)) {
            level_before += placed.size;
          }
        }
        EXPECT_GT(level_before + item.size, items.capacity() + 1e-12)
            << name << " opened a bin although bin " << bin.index << " fit item "
            << item.id;
      }
    }
  }
}

// ---- Section IV identities ----

TEST_P(WorkloadSweep, EquationOneHoldsForEveryAlgorithm) {
  const ItemList items = workload::generate(GetParam().spec);
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    const PackingResult result = simulate(items, *algo);
    const analysis::UsagePeriodDecomposition decomposition(result);
    EXPECT_NEAR(result.total_usage_time(),
                decomposition.total_v() + items.span(), 1e-6)
        << name;
    EXPECT_NEAR(decomposition.total_w(), items.span(), 1e-6) << name;
  }
}

TEST_P(WorkloadSweep, WPeriodsDisjoint) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const analysis::UsagePeriodDecomposition decomposition(result);
  IntervalSet seen;
  for (const auto& bin : decomposition.bins()) {
    if (bin.w.empty()) continue;
    EXPECT_FALSE(seen.intersects(bin.w));
    seen.insert(bin.w);
  }
}

// ---- Section V propositions ----

TEST_P(WorkloadSweep, Propositions3Through6) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const analysis::SubperiodAnalysis analysis(items, result);
  const double window = analysis.window();
  const double small_abs = analysis.small_threshold_abs();

  for (const auto& bin : analysis.per_bin()) {
    const auto ls = bin.l_subperiods();
    for (std::size_t i = 0; i < ls.size(); ++i) {
      // Proposition 3: |x_l,i| <= window.
      EXPECT_LE(ls[i].period.length(), window + 1e-9);
      // Proposition 4: a small item is placed at the left endpoint.
      bool found = false;
      for (const auto& placed : result.bins()[bin.bin].items) {
        if (placed.item == ls[i].selected_item) {
          EXPECT_DOUBLE_EQ(placed.active.left, ls[i].period.left);
          EXPECT_LT(placed.size, small_abs);
          found = true;
        }
      }
      EXPECT_TRUE(found);
      // Proposition 5: consecutive l-subperiod lengths sum beyond window.
      if (i + 1 < ls.size()) {
        EXPECT_GT(ls[i].period.length() + ls[i + 1].period.length(), window - 1e-9);
      }
    }
    // Proposition 6: no small item of this bin active in h-subperiods, and
    // the level stays >= 1/2 there.
    for (const auto& sp : bin.h_subperiods()) {
      const auto& record = result.bins()[bin.bin];
      for (const auto& placed : record.items) {
        if (placed.size < small_abs) {
          EXPECT_FALSE(placed.active.overlaps(sp.period))
              << "bin " << bin.bin << " small " << placed.item;
        }
      }
      EXPECT_GE(record.timeline.min_over(sp.period),
                0.5 * items.capacity() - 1e-9);
    }
  }
}

// ---- Section VI: supplier structure and Lemma 2 ----

TEST_P(WorkloadSweep, SupplierStructureAndLemma2) {
  const ItemList items = workload::generate(GetParam().spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const analysis::SubperiodAnalysis subs(items, result);
  const analysis::SupplierAnalysis sup(items, result, subs);

  // Every l-subperiod has a supplier bin (the W/V dichotomy guarantees it).
  EXPECT_EQ(sup.missing_suppliers(), 0u);

  // Proposition 7: paired l-subperiods are adjacent (empty h between them).
  for (const auto& infos : sup.per_bin()) {
    for (std::size_t i = 0; i + 1 < infos.size(); ++i) {
      if (infos[i].pairs_with_next) {
        EXPECT_NEAR(infos[i].sub.period.right, infos[i + 1].sub.period.left, 1e-9);
      }
    }
  }

  // Lemma 1: consolidated supplier periods are shorter than the sum of
  // their members' single-form periods.
  for (const auto& group : sup.groups()) {
    if (!group.consolidated()) continue;
    double sum = 0.0;
    for (const auto& member : group.members) {
      sum += 2.0 * sup.rho() * member.period.length();
    }
    EXPECT_LT(group.supplier_period.length(), sum + 1e-9);
  }

  // Lemma 2: supplier periods never intersect.
  EXPECT_EQ(sup.count_intersections(), 0u);
}

// ---- Propositions 1-2 and Theorem 1 ----

TEST_P(WorkloadSweep, LowerBoundsNeverExceedOptIntegral) {
  RandomWorkloadSpec spec = GetParam().spec;
  spec.num_items = 40;  // keep the exact integral cheap
  const ItemList items = workload::generate(spec);
  const opt::OptIntegral integral = opt::opt_total(items);
  EXPECT_LE(opt::prop1_time_space_bound(items), integral.upper + 1e-6);
  EXPECT_LE(opt::prop2_span_bound(items), integral.upper + 1e-6);
  EXPECT_LE(opt::load_ceiling_bound(items), integral.upper + 1e-6);
  EXPECT_LE(integral.lower, integral.upper + 1e-9);
}

TEST_P(WorkloadSweep, Theorem1FirstFitWithinMuPlus4OfOpt) {
  RandomWorkloadSpec spec = GetParam().spec;
  spec.num_items = 40;
  const ItemList items = workload::generate(spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);
  const opt::OptIntegral integral = opt::opt_total(items);
  const double mu = items.mu();
  // FF_total <= (µ+4) OPT_total <= (µ+4) * integral.upper.
  EXPECT_LE(result.total_usage_time(), (mu + 4.0) * integral.upper + 1e-6)
      << "mu=" << mu;
}

TEST_P(WorkloadSweep, NextFitWithinKamaliBound) {
  // NF <= (2µ+1) OPT [12]; checked against the exact repacking integral.
  RandomWorkloadSpec spec = GetParam().spec;
  spec.num_items = 40;
  const ItemList items = workload::generate(spec);
  NextFit nf;
  const PackingResult result = simulate(items, nf);
  const opt::OptIntegral integral = opt::opt_total(items);
  EXPECT_LE(result.total_usage_time(),
            (2.0 * items.mu() + 1.0) * integral.upper + 1e-6);
}

TEST_P(WorkloadSweep, HybridFirstFitNeverMixesClasses) {
  const ItemList items = workload::generate(GetParam().spec);
  HybridFirstFit hff;  // default boundaries {1/3, 1/2, 1}
  const PackingResult result = simulate(items, hff);
  for (const auto& bin : result.bins()) {
    const std::size_t cls = hff.classify(bin.items.front().size);
    for (const auto& placed : bin.items) {
      EXPECT_EQ(hff.classify(placed.size), cls)
          << "bin " << bin.index << " mixes size classes";
    }
  }
}

TEST_P(WorkloadSweep, ClairvoyantControlEqualsOnlineFirstFit) {
  // ClairvoyantFirstFit ignores the departures it is shown: it must place
  // identically to the online FirstFit on every workload.
  const ItemList items = workload::generate(GetParam().spec);
  clairvoyant::ClairvoyantFirstFit control;
  const PackingResult a = clairvoyant::clairvoyant_simulate(items, control);
  FirstFit ff;
  const PackingResult b = simulate(items, ff);
  EXPECT_DOUBLE_EQ(a.total_usage_time(), b.total_usage_time());
  EXPECT_EQ(a.bins_opened(), b.bins_opened());
  for (const auto& item : items) {
    EXPECT_EQ(a.bin_of(item.id), b.bin_of(item.id));
  }
}

TEST_P(WorkloadSweep, DeterministicResults) {
  const ItemList items = workload::generate(GetParam().spec);
  for (const auto& name : algorithm_names()) {
    const auto a1 = make_algorithm(name, 9);
    const auto a2 = make_algorithm(name, 9);
    const PackingResult r1 = simulate(items, *a1);
    const PackingResult r2 = simulate(items, *a2);
    EXPECT_DOUBLE_EQ(r1.total_usage_time(), r2.total_usage_time()) << name;
    EXPECT_EQ(r1.bins_opened(), r2.bins_opened()) << name;
  }
}

}  // namespace
}  // namespace mutdbp
