#include "analysis/bounds_catalog.h"

#include <gtest/gtest.h>

namespace mutdbp::analysis {
namespace {

TEST(BoundsCatalog, Theorem1IsTheBestFirstFitBound) {
  // mu+4 beats the superseded 2mu+7 for every mu >= 1.
  for (const double mu : {1.0, 4.0, 100.0}) {
    const auto best = best_upper_bound("FirstFit", mu);
    ASSERT_TRUE(best.has_value());
    EXPECT_DOUBLE_EQ(*best, mu + 4.0);
  }
}

TEST(BoundsCatalog, NextFitBoundsBracketSectionEight) {
  const auto upper = best_upper_bound("NextFit", 10.0);
  ASSERT_TRUE(upper.has_value());
  EXPECT_DOUBLE_EQ(*upper, 21.0);  // 2mu+1
  // The Section VIII lower bound 2mu sits below it.
  bool found_lower = false;
  for (const auto& bound : bounds_catalog()) {
    if (bound.algorithm == "NextFit" && bound.kind == BoundKind::kLower) {
      EXPECT_DOUBLE_EQ(bound.at(10.0), 20.0);
      EXPECT_LT(bound.at(10.0), *upper);
      found_lower = true;
    }
  }
  EXPECT_TRUE(found_lower);
}

TEST(BoundsCatalog, BestFitIsUnbounded) {
  EXPECT_FALSE(best_upper_bound("BestFit", 5.0).has_value());
  EXPECT_NE(bound_label("BestFit", 5.0).find("unbounded"), std::string::npos);
}

TEST(BoundsCatalog, UniversalLowerBoundIsMu) {
  bool found = false;
  for (const auto& bound : bounds_catalog()) {
    if (bound.algorithm == "Any" && bound.kind == BoundKind::kLower) {
      EXPECT_DOUBLE_EQ(bound.at(7.0), 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BoundsCatalog, TheoremOneDominatesUniversalLowerBound) {
  // Consistency: every upper bound must sit above the universal lower bound.
  for (const auto& bound : bounds_catalog()) {
    if (bound.kind != BoundKind::kUpper) continue;
    for (const double mu : {1.0, 2.0, 16.0}) {
      EXPECT_GE(bound.at(mu), mu) << bound.source << " at mu=" << mu;
    }
  }
}

TEST(BoundsCatalog, LabelsAreInformative) {
  EXPECT_NE(bound_label("FirstFit", 4.0).find("8.0"), std::string::npos);
  EXPECT_NE(bound_label("FirstFit", 4.0).find("Theorem 1"), std::string::npos);
  // Unknown Any Fit members fall back to the family lower bound.
  EXPECT_NE(bound_label("WorstFit", 4.0).find(">="), std::string::npos);
  EXPECT_NE(bound_label("ClassifiedNextFit", 4.0).find("semi-online"),
            std::string::npos);
}

}  // namespace
}  // namespace mutdbp::analysis
