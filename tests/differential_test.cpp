// Differential equivalence layer: for EVERY registered algorithm, feeding a
// workload through StreamingSimulation — at any batch granularity, with
// events shuffled inside each batch, with a snapshot→restore at any cut —
// must produce results bit-identical to the one-shot batch simulate() of
// the same workload. The `Differential` suite is the tier-1 subset; the
// `SlowDifferential` suite (ctest label `slow`) drives 200+ randomized
// scenarios per algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "core/checkpoint.h"
#include "core/error.h"
#include "core/streaming.h"
#include "opt/lower_bounds.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mutdbp {
namespace {

ItemList random_workload(Rng& rng) {
  workload::RandomWorkloadSpec spec;
  spec.num_items = 40 + static_cast<std::size_t>(rng.uniform_u64(0, 160));
  spec.seed = rng.uniform_u64(1, 1u << 30);
  spec.arrival_rate = 1.0 + 4.0 * rng.next_double();
  spec.duration_max = 2.0 + 6.0 * rng.next_double();
  spec.size_min = 0.02;
  spec.size_max = 0.3 + 0.6 * rng.next_double();
  return workload::generate(spec);
}

void expect_identical(const PackingResult& streamed, const PackingResult& batch,
                      const ItemList& items, const std::string& label) {
  ASSERT_EQ(streamed.bins_opened(), batch.bins_opened()) << label;
  // Bit-identical, not approximately equal: both paths must execute the
  // exact same floating-point operations in the exact same order.
  ASSERT_EQ(streamed.total_usage_time(), batch.total_usage_time()) << label;
  for (const Item& item : items) {
    ASSERT_EQ(streamed.bin_of(item.id), batch.bin_of(item.id))
        << label << " item " << item.id;
  }
  const auto& sb = streamed.bins();
  const auto& bb = batch.bins();
  for (std::size_t b = 0; b < sb.size(); ++b) {
    ASSERT_EQ(sb[b].usage.left, bb[b].usage.left) << label << " bin " << b;
    ASSERT_EQ(sb[b].usage.right, bb[b].usage.right) << label << " bin " << b;
  }
}

/// One randomized scenario: random chunking of the schedule, shuffled
/// within each chunk, an optional snapshot→restore at a random flush
/// boundary, then a full comparison against batch simulate().
void run_scenario(const std::string& algorithm, Rng& rng, bool with_restore,
                  bool with_telemetry) {
  const ItemList items = random_workload(rng);

  const auto batch_algo = make_algorithm(algorithm);
  SimulationOptions batch_options;
  telemetry::Telemetry batch_telemetry;
  if (with_telemetry) batch_options.telemetry = &batch_telemetry;
  const PackingResult batch = simulate(items, *batch_algo, batch_options);

  const auto stream_algo = make_algorithm(algorithm);
  StreamingOptions options;
  options.capacity = items.capacity();
  telemetry::Telemetry stream_telemetry;
  if (with_telemetry) options.telemetry = &stream_telemetry;
  auto stream = std::make_unique<StreamingSimulation>(*stream_algo, options);

  // Fresh instances for the restored half, created up front so the restore
  // cut can happen at any flush boundary.
  const std::size_t total = items.schedule().size();
  const std::size_t restore_at =
      with_restore ? rng.uniform_u64(0, total) : total + 1;

  std::unique_ptr<PackingAlgorithm> restored_algo;
  std::size_t i = 0;
  std::vector<StreamEvent> chunk;
  while (i < total) {
    const std::size_t chunk_size =
        std::min<std::size_t>(1 + rng.uniform_u64(0, 15), total - i);
    chunk.clear();
    for (std::size_t k = 0; k < chunk_size; ++k, ++i) {
      const ScheduledEvent& event = items.schedule()[i];
      chunk.push_back({event.is_arrival ? StreamEvent::Kind::kArrival
                                        : StreamEvent::Kind::kDeparture,
                       event.id, event.size, event.t});
    }
    // Shuffle inside the chunk: flush() owns the canonical re-ordering.
    for (std::size_t k = chunk.size(); k > 1; --k) {
      std::swap(chunk[k - 1], chunk[rng.uniform_u64(0, k - 1)]);
    }
    for (const StreamEvent& event : chunk) stream->push(event);
    stream->flush();

    if (with_restore && stream->events_applied() >= restore_at &&
        restored_algo == nullptr) {
      std::ostringstream out(std::ios::binary);
      stream->snapshot(out);
      std::istringstream in(out.str(), std::ios::binary);
      restored_algo = make_algorithm(algorithm);
      stream = std::make_unique<StreamingSimulation>(StreamingSimulation::restore(
          in, *restored_algo, with_telemetry ? &stream_telemetry : nullptr));
    }
  }

  const std::string label = algorithm + (with_restore ? "+restore" : "") +
                            (with_telemetry ? "+telemetry" : "");
  expect_identical(stream->finish(), batch, items, label);

  if (with_telemetry) {
    // The ratio monitor's incremental lower bounds must equal the batch
    // sweep BIT-FOR-BIT: both are the same LowerBoundAccumulator fed the
    // same canonical event order. Unlike counters, this holds across a
    // restore cut too — replay rebinds the monitor and rebuilds its state
    // from scratch, so nothing is double-counted.
    const telemetry::RatioRunState monitored =
        stream_telemetry.monitor().current();
    ASSERT_TRUE(monitored.finished) << label;
    ASSERT_EQ(monitored.lb_prop1, opt::prop1_time_space_bound(items)) << label;
    ASSERT_EQ(monitored.lb_prop2, opt::prop2_span_bound(items)) << label;
    ASSERT_EQ(monitored.lb_load_ceiling, opt::load_ceiling_bound(items)) << label;
    ASSERT_EQ(monitored.lower_bound, opt::combined_lower_bound(items)) << label;
    ASSERT_NEAR(monitored.usage, batch.total_usage_time(),
                1e-9 * std::max(1.0, batch.total_usage_time()))
        << label;

    // Replay regenerates the counters, so the streamed sink must agree with
    // the batch sink on every integer counter — except that a restore run
    // counts its pre-cut events twice (once live, once during replay).
    // Restore runs therefore attach a *fresh* sink below instead.
    if (!with_restore) {
      const auto batch_snap = batch_telemetry.metrics().snapshot();
      const auto stream_snap = stream_telemetry.metrics().snapshot();
      for (const char* name :
           {"mutdbp_bins_opened_total", "mutdbp_bins_closed_total",
            "mutdbp_items_placed_total"}) {
        const auto* expected = batch_snap.find_counter(name);
        const auto* actual = stream_snap.find_counter(name);
        ASSERT_NE(expected, nullptr) << name;
        ASSERT_NE(actual, nullptr) << name;
        ASSERT_EQ(actual->value, expected->value) << label << " " << name;
      }
    }
  }
}

/// Fault differential: the same arrive/depart/force_close sequence driven
/// through a StreamingSimulation and a raw Simulation must agree exactly —
/// including which items each crash evicts.
void run_fault_scenario(const std::string& algorithm, Rng& rng) {
  const ItemList items = random_workload(rng);

  const auto make_options = [&] {
    SimulationOptions options;
    options.capacity = items.capacity();
    return options;
  };
  const auto reference_algo = make_algorithm(algorithm);
  reference_algo->reset();
  Simulation reference(*reference_algo, make_options());

  const auto stream_algo = make_algorithm(algorithm);
  StreamingOptions stream_options;
  stream_options.capacity = items.capacity();
  StreamingSimulation stream(*stream_algo, stream_options);

  std::vector<bool> evicted_ids(1 << 16, false);
  std::size_t events_since_fault = 0;
  for (const ScheduledEvent& event : items.schedule()) {
    if (event.is_arrival) {
      const BinIndex expected = reference.arrive(event.id, event.size, event.t);
      stream.push_arrival(event.id, event.size, event.t);
      stream.flush();
      ASSERT_EQ(stream.engine().bin_of_active(event.id), expected);
    } else {
      // An item evicted by a crash has already left both engines.
      if (event.id < evicted_ids.size() && evicted_ids[event.id]) continue;
      reference.depart(event.id, event.t);
      stream.push_departure(event.id, event.t);
      stream.flush();
    }
    // Roughly every 25 events, crash a random open server in BOTH engines.
    if (++events_since_fault >= 25 && reference.open_bin_count() > 0) {
      events_since_fault = 0;
      const auto snapshots = reference.open_snapshots();
      const BinIndex victim =
          snapshots[rng.uniform_u64(0, snapshots.size() - 1)].index;
      const auto expected = reference.force_close_bin(victim, reference.now());
      const auto actual = stream.force_close_bin(victim, stream.now());
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t k = 0; k < expected.size(); ++k) {
        ASSERT_EQ(actual[k].id, expected[k].id);
        ASSERT_EQ(actual[k].size, expected[k].size);
        if (expected[k].id < evicted_ids.size()) evicted_ids[expected[k].id] = true;
      }
    }
  }
  ASSERT_EQ(stream.open_bin_count(), reference.open_bin_count());
  ASSERT_EQ(stream.bins_opened(), reference.bins_opened());
  ASSERT_EQ(stream.now(), reference.now());
}

// ---- tier-1 subset ----

TEST(Differential, StreamingMatchesBatchForEveryAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0xD1F0 + static_cast<std::uint64_t>(name.size()));
    for (int trial = 0; trial < 8; ++trial) {
      run_scenario(name, rng, /*with_restore=*/false, /*with_telemetry=*/false);
    }
  }
}

TEST(Differential, SnapshotRestoreAtRandomCutsForEveryAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0xC0FFEE + static_cast<std::uint64_t>(name.size()));
    for (int trial = 0; trial < 8; ++trial) {
      run_scenario(name, rng, /*with_restore=*/true, /*with_telemetry=*/false);
    }
  }
}

TEST(Differential, TelemetryCountersMatchBatch) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0x7E1E);
    run_scenario(name, rng, /*with_restore=*/false, /*with_telemetry=*/true);
    run_scenario(name, rng, /*with_restore=*/true, /*with_telemetry=*/true);
  }
}

TEST(Differential, FaultSequencesMatchRawSimulation) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0xFA017 + static_cast<std::uint64_t>(name.size()));
    for (int trial = 0; trial < 4; ++trial) {
      run_fault_scenario(name, rng);
    }
  }
}

TEST(Differential, AuditedStreamingRunStaysClean) {
  // The always-on auditor's shadow model must follow a streamed (and
  // restored) run exactly as it follows a batch run: zero violations.
  Rng rng(0xA0D17);
  const ItemList items = random_workload(rng);
  const auto algo = make_algorithm("FirstFit");
  StreamingOptions options;
  options.capacity = items.capacity();
  options.audit = true;
  StreamingSimulation stream(*algo, options);
  const auto& schedule = items.schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      stream.push_arrival(event.id, event.size, event.t);
    } else {
      stream.push_departure(event.id, event.t);
    }
    stream.flush();
    if (i == schedule.size() / 2) {
      // Restore mid-run: replay re-audits the whole applied history.
      std::ostringstream out(std::ios::binary);
      stream.snapshot(out);
      std::istringstream in(out.str(), std::ios::binary);
      const auto fresh = make_algorithm("FirstFit");
      StreamingSimulation restored = StreamingSimulation::restore(in, *fresh);
      EXPECT_TRUE(restored.engine().auditing());
      EXPECT_EQ(restored.events_applied(), stream.events_applied());
    }
  }
  EXPECT_NO_THROW((void)stream.finish());
}

// ---- the 200+-scenario sweep (ctest label: slow) ----

TEST(SlowDifferential, TwoHundredScenariosPerAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0x51057 + fnv1a64(name.data(), name.size()));
    for (int trial = 0; trial < 200; ++trial) {
      const bool with_restore = (trial % 2) == 1;
      const bool with_telemetry = (trial % 5) == 0;
      run_scenario(name, rng, with_restore, with_telemetry);
    }
  }
}

TEST(SlowDifferential, FaultSweep) {
  for (const std::string& name : algorithm_names()) {
    Rng rng(0xFA5C + fnv1a64(name.data(), name.size()));
    for (int trial = 0; trial < 40; ++trial) {
      run_fault_scenario(name, rng);
    }
  }
}

}  // namespace
}  // namespace mutdbp
