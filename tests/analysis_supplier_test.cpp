#include "analysis/supplier.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "algorithms/any_fit.h"
#include "core/simulation.h"
#include "test_support.h"

namespace mutdbp::analysis {
namespace {

struct Packed {
  ItemList items;
  PackingResult result;
};

Packed pack_ff(std::vector<Item> v) {
  ItemList items(std::move(v));
  FirstFit ff;
  PackingResult result = simulate(items, ff);
  return {std::move(items), std::move(result)};
}

TEST(Supplier, SupplierBinIsHighestIndexedEarlierOpenBin) {
  // Bin 0 [0,10) (0.8), bin 1 [1,9) (0.7 chain... single item), bin 2
  // opened at 2 by a large item, small at 3 in bin 2.
  auto packed = pack_ff({
      make_item(1, 0.8, 0.0, 10.0),  // bin 0
      make_item(2, 0.7, 1.0, 9.0),   // bin 1
      make_item(3, 0.8, 2.0, 10.0),  // bin 2
      make_item(4, 0.2, 3.0, 5.0),   // small -> fits bin 0 (1.0)... size 0.2
  });
  // The 0.2 item fits bin 0 exactly (0.8+0.2): FF puts it there — adjust by
  // checking where it actually landed and only asserting supplier logic for
  // l-subperiods that exist.
  const SubperiodAnalysis subs(packed.items, packed.result);
  const SupplierAnalysis sup(packed.items, packed.result, subs);
  EXPECT_EQ(sup.missing_suppliers(), 0u);
  for (const auto& infos : sup.per_bin()) {
    for (const auto& info : infos) {
      ASSERT_TRUE(info.supplier.has_value());
      EXPECT_LT(*info.supplier, info.sub.bin);
      // The supplier bin must be open at the l-subperiod's left endpoint.
      const auto& record = packed.result.bins()[*info.supplier];
      EXPECT_TRUE(record.usage.contains(info.sub.period.left));
      // And no later-opened earlier-indexed bin may also be open there.
      for (BinIndex j = *info.supplier + 1; j < info.sub.bin; ++j) {
        EXPECT_FALSE(packed.result.bins()[j].usage.contains(info.sub.period.left));
      }
    }
  }
}

// Deterministic supplier scenario built with scripted placement:
// bin 0: anchor chain alive [0, 12.5); bin 1 opens at 1 with a large item
// and receives a small item at 2 -> one l-subperiod with supplier bin 0.
TEST(Supplier, SingleLSubperiodSupplierPeriod) {
  std::unordered_map<ItemId, ItemId> join;
  std::vector<Item> v;
  for (ItemId i = 0; i <= 7; ++i) {
    v.push_back(make_item(i, 0.5, 1.5 * static_cast<double>(i),
                          1.5 * static_cast<double>(i) + 2.0));
    if (i > 0) join[i] = 0;
  }
  v.push_back(make_item(20, 0.6, 1.0, 3.0));  // opens bin 1
  v.push_back(make_item(21, 0.2, 2.0, 3.0));  // small in bin 1
  join[21] = 20;
  ItemList items(std::move(v));
  mutdbp::testing::ScriptedPlacement scripted(std::move(join));
  const PackingResult result = simulate(items, scripted);

  const SubperiodAnalysis subs(items, result);
  ASSERT_DOUBLE_EQ(subs.window(), 2.0);  // µ=2 (durations 1..2)
  const SupplierAnalysis sup(items, result, subs);
  // rho = d_min / (2*window) = 1 / 4.
  EXPECT_DOUBLE_EQ(sup.rho(), 0.25);

  ASSERT_EQ(sup.per_bin().size(), 2u);
  const auto& infos = sup.per_bin()[1];
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].supplier, std::optional<BinIndex>{0});
  // l-subperiod = [2, 3) (V_1 = [1,3), x_0 = [1,2) high, x_1 = [2,3) low).
  EXPECT_EQ(infos[0].sub.period, (Interval{2.0, 3.0}));
  // supplier period = [2 - 0.25, 2 + 0.25).
  EXPECT_EQ(infos[0].single_supplier_period, (Interval{1.75, 2.25}));

  ASSERT_EQ(sup.groups().size(), 1u);
  EXPECT_FALSE(sup.groups()[0].consolidated());
  EXPECT_EQ(sup.groups()[0].supplier, 0u);
  EXPECT_EQ(sup.count_intersections(), 0u);

  // §VII accounting, by hand: own-bin demand over [2,3) = 0.6 + 0.2 = 0.8;
  // supplier bin demand over [1.75, 2.25): chain item [0,2) contributes
  // 0.5*0.25, [1.5,3.5) contributes 0.5*0.5 -> 0.375. Lengths 1 + 0.5.
  const auto amortized = sup.low_period_demand(result);
  EXPECT_NEAR(amortized.demand, 0.8 + 0.375, 1e-9);
  EXPECT_NEAR(amortized.length, 1.5, 1e-9);
  EXPECT_NEAR(amortized.level(), 1.175 / 1.5, 1e-9);
}

// Two l-subperiods in one bin close together with the same supplier: they
// pair (their single supplier periods overlap) and consolidate.
TEST(Supplier, PairingAndConsolidation) {
  std::unordered_map<ItemId, ItemId> join;
  std::vector<Item> v;
  for (ItemId i = 0; i <= 7; ++i) {
    v.push_back(make_item(i, 0.5, 1.5 * static_cast<double>(i),
                          1.5 * static_cast<double>(i) + 2.0));
    if (i > 0) join[i] = 0;
  }
  // Bin 1: large chain alive [0.5, 9.7) as in the subperiod tests.
  v.push_back(make_item(20, 0.5, 0.5, 2.5));
  v.push_back(make_item(21, 0.5, 2.49, 4.49));
  v.push_back(make_item(22, 0.5, 4.48, 6.48));
  v.push_back(make_item(23, 0.5, 6.47, 8.47));
  v.push_back(make_item(24, 0.5, 8.46, 9.7));
  for (ItemId i = 21; i <= 24; ++i) join[i] = 20;
  // Smalls at 1.0 and 1.2: selection picks 1.2 as "last in window" after
  // 1.0: l-subperiods [1.0, 1.2) and [1.2, ...). Their lengths 0.2 and ~
  // window-sized; supplier periods [1.0±0.05) and [1.2±...) — need overlap:
  // [1.0-0.05, 1.0+0.05) vs [1.2-..., ...): rho=0.25, second l-subperiod
  // runs [1.2, 3.2) (split at window 2) -> supplier period [0.7, 1.7):
  // overlaps [0.95, 1.05). They pair and consolidate.
  v.push_back(make_item(100, 0.1, 1.0, 2.0));
  v.push_back(make_item(101, 0.1, 1.2, 2.2));
  join[100] = 20;
  join[101] = 20;
  ItemList items(std::move(v));
  mutdbp::testing::ScriptedPlacement scripted(std::move(join));
  const PackingResult result = simulate(items, scripted);

  const SubperiodAnalysis subs(items, result);
  const SupplierAnalysis sup(items, result, subs);
  const auto& infos = sup.per_bin()[1];
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_TRUE(infos[0].pairs_with_next);

  ASSERT_EQ(sup.groups().size(), 1u);
  EXPECT_TRUE(sup.groups()[0].consolidated());
  EXPECT_EQ(sup.groups()[0].members.size(), 2u);
  // Consolidated supplier period = hull of the members' periods.
  EXPECT_DOUBLE_EQ(sup.groups()[0].supplier_period.left,
                   infos[0].single_supplier_period.left);
  EXPECT_DOUBLE_EQ(sup.groups()[0].supplier_period.right,
                   infos[1].single_supplier_period.right);
  // Lemma 1: consolidated supplier period shorter than the sum of members'.
  EXPECT_LT(sup.groups()[0].supplier_period.length(),
            infos[0].single_supplier_period.length() +
                infos[1].single_supplier_period.length());
  // Proposition 7: the h-subperiod between paired l-subperiods is empty,
  // i.e. the two l-subperiods are adjacent.
  EXPECT_DOUBLE_EQ(infos[0].sub.period.right, infos[1].sub.period.left);

  EXPECT_EQ(sup.count_intersections(), 0u);
}

TEST(Supplier, RhoOverrideDetectsIntersections) {
  // With an absurdly large rho the supplier periods of distinct l-subperiods
  // must collide — showing the intersection counter actually counts.
  std::unordered_map<ItemId, ItemId> join;
  std::vector<Item> v;
  for (ItemId i = 0; i <= 7; ++i) {
    v.push_back(make_item(i, 0.5, 1.5 * static_cast<double>(i),
                          1.5 * static_cast<double>(i) + 2.0));
    if (i > 0) join[i] = 0;
  }
  // Two separate bins each with one small late item, same supplier bin 0.
  v.push_back(make_item(20, 0.6, 1.0, 3.0));   // bin 1
  v.push_back(make_item(21, 0.2, 2.0, 3.0));   // small in bin 1
  v.push_back(make_item(30, 0.6, 4.0, 6.0));   // bin 2
  v.push_back(make_item(31, 0.2, 5.0, 6.0));   // small in bin 2
  join[21] = 20;
  join[31] = 30;
  ItemList items(std::move(v));
  mutdbp::testing::ScriptedPlacement scripted(std::move(join));
  const PackingResult result = simulate(items, scripted);

  const SubperiodAnalysis subs(items, result);
  const SupplierAnalysis provable(items, result, subs);
  EXPECT_EQ(provable.count_intersections(), 0u);

  SupplierConfig config;
  config.rho = 5.0;  // huge half-width: periods [2±5) and [5±5) collide
  const SupplierAnalysis broken(items, result, subs, config);
  EXPECT_GT(broken.count_intersections(), 0u);
}

}  // namespace
}  // namespace mutdbp::analysis
