#include "core/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "algorithms/any_fit.h"

namespace mutdbp {
namespace {

// A deliberately broken algorithm used to exercise the simulator's
// validation of placements.
class MisbehavingAlgorithm final : public PackingAlgorithm {
 public:
  explicit MisbehavingAlgorithm(Placement fixed) : fixed_(fixed) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "Misbehaving"; }
  [[nodiscard]] Placement place(const ArrivalView&,
                                std::span<const BinSnapshot>) override {
    return fixed_;
  }

 private:
  Placement fixed_;
};

ItemList scenario_a() {
  // r1 0.6 [0,10); r2 0.5 [1,3); r3 0.4 [2,4); r4 0.3 [3,5)
  return ItemList({make_item(1, 0.6, 0.0, 10.0), make_item(2, 0.5, 1.0, 3.0),
                   make_item(3, 0.4, 2.0, 4.0), make_item(4, 0.3, 3.0, 5.0)});
}

TEST(Simulation, FirstFitScenario) {
  FirstFit ff;
  const PackingResult result = simulate(scenario_a(), ff);

  ASSERT_EQ(result.bins_opened(), 3u);
  EXPECT_EQ(result.bin_of(1), 0u);
  EXPECT_EQ(result.bin_of(2), 1u);  // 0.5 does not fit with 0.6
  EXPECT_EQ(result.bin_of(3), 0u);  // 0.6 + 0.4 = 1.0 fits exactly
  EXPECT_EQ(result.bin_of(4), 2u);  // bin1 closed at t=3 before r4 arrives

  EXPECT_EQ(result.bins()[0].usage, (Interval{0.0, 10.0}));
  EXPECT_EQ(result.bins()[1].usage, (Interval{1.0, 3.0}));
  EXPECT_EQ(result.bins()[2].usage, (Interval{3.0, 5.0}));
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 14.0);
  EXPECT_EQ(result.max_concurrent_bins(), 2u);
}

TEST(Simulation, DepartureProcessedBeforeArrivalAtEqualTime) {
  // A departs exactly when B arrives: the bin is closed, B opens a new one.
  FirstFit ff;
  const ItemList items({make_item(1, 1.0, 0.0, 1.0), make_item(2, 1.0, 1.0, 2.0)});
  const PackingResult result = simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_EQ(result.max_concurrent_bins(), 1u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 2.0);
}

TEST(Simulation, BinNeverReopens) {
  // Even a tiny item arriving after bin closure must open a new bin.
  FirstFit ff;
  const ItemList items({make_item(1, 0.1, 0.0, 1.0), make_item(2, 0.1, 2.0, 3.0)});
  const PackingResult result = simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 2u);
}

TEST(Simulation, RecordsLevelTimeline) {
  FirstFit ff;
  const PackingResult result = simulate(scenario_a(), ff);
  const LevelTimeline& tl = result.bins()[0].timeline;
  EXPECT_DOUBLE_EQ(tl.at(0.0), 0.6);
  EXPECT_DOUBLE_EQ(tl.at(1.5), 0.6);
  EXPECT_DOUBLE_EQ(tl.at(2.0), 1.0);   // r3 joined
  EXPECT_DOUBLE_EQ(tl.at(3.9), 1.0);
  EXPECT_DOUBLE_EQ(tl.at(4.0), 0.6);   // r3 departed
  EXPECT_DOUBLE_EQ(tl.at(10.0), 0.0);  // closed
  EXPECT_DOUBLE_EQ(tl.at(-1.0), 0.0);  // before opening
  EXPECT_DOUBLE_EQ(tl.min_over({0.0, 10.0}), 0.6);
  EXPECT_DOUBLE_EQ(tl.min_over({2.0, 4.0}), 1.0);
}

TEST(Simulation, TimelineRecordingCanBeDisabled) {
  FirstFit ff;
  SimulationOptions options;
  options.record_timelines = false;
  const PackingResult result = simulate(scenario_a(), ff, options);
  EXPECT_TRUE(result.bins()[0].timeline.times.empty());
}

TEST(Simulation, PlacementRecordsHaveActualIntervals) {
  FirstFit ff;
  const PackingResult result = simulate(scenario_a(), ff);
  const auto& b0 = result.bins()[0];
  ASSERT_EQ(b0.items.size(), 2u);
  EXPECT_EQ(b0.items[0].item, 1u);
  EXPECT_EQ(b0.items[0].active, (Interval{0.0, 10.0}));
  EXPECT_EQ(b0.items[1].item, 3u);
  EXPECT_EQ(b0.items[1].active, (Interval{2.0, 4.0}));
}

TEST(Simulation, IncrementalInterface) {
  FirstFit ff;
  Simulation sim(ff);
  EXPECT_EQ(sim.arrive(1, 0.7, 0.0), 0u);
  EXPECT_EQ(sim.arrive(2, 0.7, 0.5), 1u);
  EXPECT_EQ(sim.open_bin_count(), 2u);
  EXPECT_EQ(sim.active_items(), 2u);
  EXPECT_EQ(sim.bin_of_active(2), 1u);
  sim.depart(1, 1.0);
  EXPECT_EQ(sim.open_bin_count(), 1u);
  // Bin 0 is closed forever; a fitting item goes to bin 1.
  EXPECT_EQ(sim.arrive(3, 0.2, 1.5), 1u);
  sim.depart(2, 2.0);
  sim.depart(3, 2.0);
  const PackingResult result = sim.finish();
  EXPECT_EQ(result.bins_opened(), 2u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), 1.0 + 1.5);
}

TEST(Simulation, RejectsTimeTravel) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 5.0);
  EXPECT_THROW(sim.arrive(2, 0.5, 4.0), std::logic_error);
  EXPECT_THROW(sim.depart(1, 4.0), std::logic_error);
}

TEST(Simulation, RejectsDuplicateAndUnknownItems) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 0.0);
  EXPECT_THROW(sim.arrive(1, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.depart(99, 1.0), std::invalid_argument);
}

TEST(Simulation, RejectsBadSizes) {
  FirstFit ff;
  Simulation sim(ff);
  EXPECT_THROW(sim.arrive(1, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sim.arrive(2, 1.5, 0.0), std::invalid_argument);
}

TEST(Simulation, FinishRequiresAllDepartures) {
  FirstFit ff;
  Simulation sim(ff);
  sim.arrive(1, 0.5, 0.0);
  EXPECT_THROW((void)sim.finish(), std::logic_error);
}

TEST(Simulation, DetectsOverfillingAlgorithm) {
  MisbehavingAlgorithm bad{Placement{0}};
  Simulation sim(bad);
  // First arrival: the algorithm points at bin 0 which does not exist yet.
  EXPECT_THROW(sim.arrive(1, 0.5, 0.0), std::logic_error);
}

// Opens a bin for the first item, then stuffs everything into bin 0 —
// regardless of fit or whether bin 0 is still open.
class StuffBinZero final : public PackingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "StuffBinZero"; }
  [[nodiscard]] Placement place(const ArrivalView&,
                                std::span<const BinSnapshot>) override {
    if (first_) {
      first_ = false;
      return std::nullopt;
    }
    return Placement{0};
  }
  void reset() override { first_ = true; }

 private:
  bool first_ = true;
};

TEST(Simulation, DetectsOverfillPlacement) {
  StuffBinZero bad;
  const ItemList items({make_item(1, 0.9, 0.0, 2.0), make_item(2, 0.9, 1.0, 2.0)});
  EXPECT_THROW(simulate(items, bad), std::logic_error);
}

TEST(Simulation, DetectsPlacementIntoClosedBin) {
  StuffBinZero bad;
  // Bin 0 closes at t=1; the second item still targets it.
  const ItemList items({make_item(1, 0.1, 0.0, 1.0), make_item(2, 0.1, 2.0, 3.0)});
  EXPECT_THROW(simulate(items, bad), std::logic_error);
}

TEST(Simulation, CapacityScalesWithItemList) {
  // Items validated against capacity 4; simulate() adopts the list capacity.
  FirstFit ff;
  const ItemList items({make_item(1, 3.0, 0.0, 2.0), make_item(2, 1.0, 0.0, 2.0)},
                       4.0);
  const PackingResult result = simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 1u);
}

TEST(Simulation, ExactCapacityFillAllowed) {
  // "The total resource demand ... cannot exceed its capacity": equality ok.
  FirstFit ff;
  const ItemList items({make_item(1, 0.5, 0.0, 1.0), make_item(2, 0.5, 0.0, 1.0)});
  const PackingResult result = simulate(items, ff);
  EXPECT_EQ(result.bins_opened(), 1u);
}

TEST(Simulation, DefaultOptionsInheritListCapacity) {
  // Leaving options.capacity at its default adopts items.capacity().
  FirstFit ff;
  const ItemList items({make_item(1, 3.0, 0.0, 2.0), make_item(2, 1.0, 0.0, 2.0)},
                       4.0);
  SimulationOptions options;  // capacity left at the default
  options.record_timelines = false;
  const PackingResult result = simulate(items, ff, options);
  EXPECT_EQ(result.bins_opened(), 1u);
}

TEST(Simulation, ExplicitMatchingCapacityAccepted) {
  FirstFit ff;
  const ItemList items({make_item(1, 3.0, 0.0, 2.0), make_item(2, 1.0, 0.0, 2.0)},
                       4.0);
  SimulationOptions options;
  options.capacity = 4.0;  // agrees with the list: fine
  const PackingResult result = simulate(items, ff, options);
  EXPECT_EQ(result.bins_opened(), 1u);
}

TEST(Simulation, ConflictingCapacityThrowsInsteadOfSilentOverride) {
  // Regression: simulate() used to silently replace options.capacity with
  // items.capacity(), so a caller's explicit (wrong) choice was ignored.
  FirstFit ff;
  const ItemList items({make_item(1, 3.0, 0.0, 2.0)}, 4.0);
  SimulationOptions options;
  options.capacity = 8.0;  // contradicts the list's 4.0
  EXPECT_THROW((void)simulate(items, ff, options), std::invalid_argument);
}

TEST(Simulation, SameInstantDepartureAndArrivalCoalesceTimelineEntry) {
  // record_level() coalesces on *exactly equal* Time values: when an item
  // departs and another arrives at the identical t, the bin's timeline must
  // hold a single entry at t with the settled level — never two entries at
  // one time. (Same-instant events reach the bin with bitwise-equal t; the
  // contract is exact equality, not an epsilon.)
  FirstFit ff;
  // r1 0.6 [0,2); r2 0.3 [0,5); r3 0.6 arrives exactly at t=2, fits only
  // after r1's same-instant departure is processed (departures first).
  const ItemList items({make_item(1, 0.6, 0.0, 2.0), make_item(2, 0.3, 0.0, 5.0),
                        make_item(3, 0.6, 2.0, 4.0)});
  const PackingResult result = simulate(items, ff);
  ASSERT_EQ(result.bins_opened(), 1u);
  const LevelTimeline& tl = result.bins()[0].timeline;
  for (std::size_t i = 1; i < tl.times.size(); ++i) {
    EXPECT_LT(tl.times[i - 1], tl.times[i]) << "duplicate timeline entry at index " << i;
  }
  // At t=2 the r1-departure and r3-arrival collapse into one entry holding
  // the final level 0.3 + 0.6.
  EXPECT_DOUBLE_EQ(tl.at(2.0), 0.9);
  EXPECT_DOUBLE_EQ(tl.min_over({0.0, 2.0}), 0.9);  // half-open: min at the seam
}

TEST(Simulation, LazyItemMaterializationMatchesEagerView) {
  // finish() hands PackingResult a placement pool; per-bin `items` are
  // bucketed on the first bins() call. Aggregate objectives and the
  // assignment answer identically before and after that bucketing.
  FirstFit ff;
  const ItemList items({make_item(1, 0.7, 0.0, 2.0), make_item(2, 0.7, 0.5, 3.0),
                        make_item(3, 0.2, 1.5, 2.5), make_item(4, 0.5, 4.0, 6.0)});
  const PackingResult result = simulate(items, ff);
  // Pool-backed queries, before any bins() call:
  EXPECT_EQ(result.bins_opened(), 3u);
  const Time usage_before = result.total_usage_time();
  const double util_before = result.average_utilization();
  EXPECT_EQ(result.bin_of(2), 1u);
  // Materialize and re-check: same answers, items in arrival order.
  const std::vector<BinRecord>& bins = result.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].items.size(), 2u);  // r1 then r3
  EXPECT_EQ(bins[0].items[0].item, 1u);
  EXPECT_EQ(bins[0].items[1].item, 3u);
  EXPECT_EQ(bins[1].items.size(), 1u);
  EXPECT_EQ(bins[2].items.size(), 1u);
  EXPECT_DOUBLE_EQ(result.total_usage_time(), usage_before);
  EXPECT_DOUBLE_EQ(result.average_utilization(), util_before);
  EXPECT_EQ(result.bin_of(2), 1u);
}

TEST(PackingResult, PooledConstructionRejectsNonDenseBins) {
  std::vector<BinRecord> skeleton(1);
  skeleton[0].index = 5;  // not the dense 0,1,2,... the pool indexes into
  EXPECT_THROW((PackingResult{std::move(skeleton), std::vector<PooledPlacement>{}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mutdbp
