// Walkthrough of the paper's analysis machinery (Figures 1-4) on a small
// First Fit packing: span, usage-period decomposition (U/V/W), small-item
// selection with l/h subperiods, and supplier bins/periods.
//
//   ./examples/analysis_walkthrough [--items 60] [--seed 3] [--mu 4]
#include <cstdio>
#include <iostream>

#include "algorithms/any_fit.h"
#include "analysis/ascii.h"
#include "analysis/subperiods.h"
#include "analysis/supplier.h"
#include "core/simulation.h"
#include "util/flags.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  workload::RandomWorkloadSpec spec;
  spec.num_items = static_cast<std::size_t>(flags.get_int("items", 60, "item count"));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3, "workload seed"));
  spec.duration_max = flags.get_double("mu", 4.0, "max/min duration ratio");
  spec.arrival_rate = 2.0;
  if (flags.finish("Walk through the paper's Sections IV-VI machinery")) return 0;

  const ItemList items = workload::generate(spec);
  FirstFit ff;
  const PackingResult result = simulate(items, ff);

  std::printf("--- Figure 1: span ---\n");
  std::printf("packing period %s, span(R) = %.3f\n\n",
              to_string(items.packing_period()).c_str(), items.span());

  std::printf("--- packing (one row per bin) ---\n");
  analysis::RenderOptions render;
  render.show_levels = false;
  std::cout << analysis::render_bins(items, result, render) << "\n";

  std::printf("--- Figure 2: usage periods U_k = V_k + W_k ---\n");
  std::cout << analysis::render_usage_split(items, result);
  const analysis::UsagePeriodDecomposition decomposition(result);
  std::printf("sum V = %.3f, sum W = %.3f (= span), total = %.3f\n",
              decomposition.total_v(), decomposition.total_w(),
              decomposition.total_usage());
  std::printf("equation (1): FF_total = sum V + span = %.3f + %.3f = %.3f ✓\n\n",
              decomposition.total_v(), items.span(),
              decomposition.total_v() + items.span());

  std::printf("--- Figure 3: small-item selection and l/h subperiods ---\n");
  const analysis::SubperiodAnalysis subs(items, result);
  std::printf("small threshold %.2f, selection window = mu = %.2f\n",
              subs.small_threshold_abs(), subs.window());
  std::size_t l_count = 0;
  std::size_t h_count = 0;
  for (const auto& bin : subs.per_bin()) {
    if (bin.subperiods.empty()) continue;
    std::printf("bin %zu: V=%s, selected smalls:", bin.bin + 1,
                to_string(bin.v).c_str());
    for (const ItemId id : bin.selected) std::printf(" %llu", (unsigned long long)id);
    std::printf("\n  subperiods:");
    for (const auto& sp : bin.subperiods) {
      std::printf(" %c%s", sp.kind == analysis::SubperiodKind::kLow ? 'l' : 'h',
                  to_string(sp.period).c_str());
      ++(sp.kind == analysis::SubperiodKind::kLow ? l_count : h_count);
    }
    std::printf("\n");
  }
  std::printf("total: %zu l-subperiods, %zu h-subperiods\n\n", l_count, h_count);

  std::printf("--- Figure 4: supplier bins and periods ---\n");
  const analysis::SupplierAnalysis sup(items, result, subs);
  std::printf("rho = %.4f (supplier period half-width / l-subperiod length)\n",
              sup.rho());
  std::size_t singles = 0;
  std::size_t consolidated = 0;
  for (const auto& group : sup.groups()) {
    (group.consolidated() ? consolidated : singles) += 1;
    std::printf("bin %zu <- supplier bin %zu: %zu member(s), supplier period %s\n",
                group.bin + 1, group.supplier + 1, group.members.size(),
                to_string(group.supplier_period).c_str());
  }
  std::printf("groups: %zu single, %zu consolidated\n", singles, consolidated);
  std::printf("missing suppliers: %zu (must be 0)\n", sup.missing_suppliers());
  std::printf("Lemma 2 intersections: %zu (must be 0)\n", sup.count_intersections());
  return 0;
}
