// Gallery of the adversarial constructions: Section VIII's Next Fit family,
// the Any Fit pinning family (Ω(µ)), and the Best Fit decoy family, each
// rendered as an ASCII packing so the bad behaviour is visible.
//
//   ./examples/adversarial_gallery [--mu 6] [--n 8]
#include <cstdio>
#include <iostream>

#include "algorithms/any_fit.h"
#include "algorithms/next_fit.h"
#include "analysis/ascii.h"
#include "core/simulation.h"
#include "util/flags.h"
#include "workload/adversarial.h"

namespace {

void show(const char* title, const mutdbp::workload::AdversarialInstance& instance,
          mutdbp::PackingAlgorithm& algorithm) {
  using namespace mutdbp;
  SimulationOptions options;
  options.fit_epsilon = instance.recommended_fit_epsilon;
  const PackingResult result = simulate(instance.items, algorithm, options);
  std::printf("=== %s (algorithm: %s) ===\n", title,
              std::string(algorithm.name()).c_str());
  std::printf("items: %zu, mu: %.2f\n", instance.items.size(), instance.items.mu());
  analysis::RenderOptions render;
  render.show_levels = false;
  std::cout << analysis::render_bins(instance.items, result, render);
  std::printf("simulated cost: %.3f (predicted %.3f), described OPT: %.3f, ratio %.3f\n\n",
              result.total_usage_time(), instance.predicted_algorithm_cost,
              instance.predicted_opt_cost,
              result.total_usage_time() / instance.predicted_opt_cost);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const double mu = flags.get_double("mu", 6.0, "max/min duration ratio");
  const auto n =
      static_cast<std::size_t>(flags.get_int("n", 8, "instance size parameter"));
  if (flags.finish("Adversarial construction gallery")) return 0;

  {
    NextFit nf;
    show("Section VIII: Next Fit lower bound (ratio -> 2mu)",
         workload::next_fit_lower_bound_instance(n, mu), nf);
  }
  {
    FirstFit ff(0.0);
    show("Any Fit pinning family (ratio -> mu, here against First Fit)",
         workload::any_fit_pinning_instance(n, mu), ff);
  }
  {
    const double decoy_mu = std::max(mu, 1.5 * static_cast<double>(n - 1) + 1.0);
    const auto instance = workload::best_fit_decoy_instance(n, decoy_mu);
    BestFit bf(0.0);
    show("Best Fit decoy family (Best Fit strands pins; First Fit does not)",
         instance, bf);
    FirstFit ff(0.0);
    SimulationOptions options;
    options.fit_epsilon = 0.0;
    const PackingResult ff_result = simulate(instance.items, ff, options);
    std::printf("First Fit on the same instance: %.3f (%.2fx cheaper)\n\n",
                ff_result.total_usage_time(),
                instance.predicted_algorithm_cost / ff_result.total_usage_time());
  }
  return 0;
}
