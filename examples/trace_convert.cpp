// Convert item traces between the CSV text format (workload/trace.h) and
// the MUTDBPT1 binary columnar format (trace/binary_trace.h, docs/traces.md).
//
//   ./examples/trace_convert --in trace.csv --out trace.mtrace
//   ./examples/trace_convert --in trace.mtrace --out back.csv --verify
//   ./examples/trace_convert --in trace.mtrace --info
//
// Formats are sniffed from the file contents by default (--from/--to
// override; --to defaults to the opposite of the input format, so the
// common invocation needs no format flags at all). --verify reads the
// written file back and requires every item to round-trip bit-exactly —
// ids, sizes, and times compared as IEEE-754 bit patterns, the same
// equality the replay digests rely on. --info prints a binary trace's
// footer metadata without decoding any block (O(1) in the trace size).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/error.h"
#include "telemetry/flight_recorder.h"
#include "trace/binary_trace.h"
#include "trace/format.h"
#include "util/flags.h"
#include "workload/trace.h"

namespace {

using mutdbp::trace::TraceFormat;

/// `--flight`: print a flight-recorder postmortem dump (docs/observability.md
/// "Flight recorder") as one line per record, oldest first, timestamps
/// relative to the first record.
int print_flight(const std::string& path) {
  using namespace mutdbp::telemetry;
  const FlightDump dump = read_flight_dump(path);
  std::printf("flight dump: %s\n", path.c_str());
  std::printf("version:  %u\n", dump.version);
  std::printf("capacity: %" PRIu64 " records/thread\n", dump.capacity_per_thread);
  std::printf("dropped:  %" PRIu64 "\n", dump.dropped);
  std::printf("records:  %zu\n", dump.records.size());
  const std::uint64_t epoch = dump.records.empty() ? 0 : dump.records.front().nanos;
  for (const FlightRecord& record : dump.records) {
    std::printf("  +%14.6f ms  %-16s thread=%-3u a=%-20" PRIu64 " b=%" PRIu64 "\n",
                static_cast<double>(record.nanos - epoch) * 1e-6,
                std::string(to_string(static_cast<FlightKind>(record.kind))).c_str(),
                record.thread, record.a, record.b);
  }
  return 0;
}

int print_info(const std::string& path, TraceFormat format, double capacity) {
  using namespace mutdbp;
  if (format == TraceFormat::kCsv) {
    const ItemList items = workload::read_trace_file(path, capacity == 0.0 ? 1.0 : capacity);
    std::printf("format:   csv\n");
    std::printf("items:    %zu\n", items.size());
    std::printf("capacity: %.17g\n", items.capacity());
    if (!items.empty()) {
      const Interval period = items.packing_period();
      std::printf("period:   [%.17g, %.17g)\n", period.left, period.right);
    }
    std::printf("digest:   %016" PRIx64 "\n", trace::trace_digest(items));
    return 0;
  }
  // Binary: everything below comes from the footer — no block is decoded.
  const auto reader = trace::BinaryTraceReader::open(path);
  const trace::TraceMeta& meta = reader.meta();
  std::printf("format:   binary (MUTDBPT1)\n");
  std::printf("items:    %" PRIu64 "\n", meta.items);
  std::printf("capacity: %.17g\n", meta.capacity);
  if (meta.items > 0) {
    std::printf("period:   [%.17g, %.17g)\n", meta.min_arrival, meta.max_departure);
  }
  std::printf("digest:   %016" PRIx64 "\n", meta.digest);
  std::printf("blocks:   %zu\n", reader.block_count());
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    const trace::TraceBlockMeta& block = meta.blocks[b];
    std::printf("  block %zu: offset %" PRIu64 ", %" PRIu64 " items, ids "
                "[%" PRIu64 ", %" PRIu64 "], t [%.6g, %.6g)\n",
                b, block.offset, block.items, block.min_id, block.max_id,
                block.min_arrival, block.max_departure);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const std::string in_path = flags.get_string("in", "", "input trace file");
  const std::string out_path = flags.get_string("out", "", "output trace file");
  const std::string from_name = flags.get_string(
      "from", "auto", "input format: auto | csv | binary (auto: sniff the file)");
  const std::string to_name = flags.get_string(
      "to", "auto", "output format: auto | csv | binary (auto: the opposite)");
  const double capacity = flags.get_double(
      "capacity", 0.0,
      "bin capacity for CSV input (0: 1.0; binary input records its own)");
  const std::int64_t block_size = flags.get_int(
      "block-size", static_cast<std::int64_t>(trace::kDefaultTraceBlockItems),
      "items per binary block");
  const bool verify = flags.get_bool(
      "verify", false, "read the output back and require a bit-exact round-trip");
  const bool info = flags.get_bool(
      "info", false, "print the input's metadata and exit (no conversion)");
  const std::string flight = flags.get_string(
      "flight", "", "print a flight-recorder postmortem dump and exit");
  if (flags.finish("Convert traces between CSV and MUTDBPT1 binary")) return 0;

  try {
    if (!flight.empty()) return print_flight(flight);
    if (in_path.empty()) {
      std::fprintf(stderr, "--in is required\n");
      return 1;
    }
    const TraceFormat from =
        trace::detect_trace_format(in_path, trace::parse_trace_format(from_name));
    if (info) return print_info(in_path, from, capacity);

    if (out_path.empty()) {
      std::fprintf(stderr, "--out is required (or pass --info)\n");
      return 1;
    }
    TraceFormat to = trace::parse_trace_format(to_name);
    if (to == TraceFormat::kAuto) {
      to = from == TraceFormat::kCsv ? TraceFormat::kBinary : TraceFormat::kCsv;
    }
    if (block_size <= 0 ||
        static_cast<std::uint64_t>(block_size) > trace::kMaxTraceBlockItems) {
      std::fprintf(stderr, "--block-size must be in [1, %" PRIu64 "]\n",
                   trace::kMaxTraceBlockItems);
      return 1;
    }

    const ItemList items = trace::read_trace_any(in_path, from, capacity);
    if (to == TraceFormat::kCsv) {
      workload::write_trace_file(out_path, items);
    } else {
      trace::write_binary_trace_file(out_path, items,
                                     static_cast<std::size_t>(block_size));
    }
    std::printf("%s (%s) -> %s (%s): %zu items, digest %016" PRIx64 "\n",
                in_path.c_str(), std::string(to_string(from)).c_str(),
                out_path.c_str(), std::string(to_string(to)).c_str(),
                items.size(), trace::trace_digest(items));

    if (verify) {
      const ItemList back = trace::read_trace_any(out_path, to, items.capacity());
      bool identical = back.size() == items.size() &&
                       back.capacity() == items.capacity();
      for (std::size_t i = 0; identical && i < items.size(); ++i) {
        // Item::operator== compares doubles by value; equal values imply
        // equal bit patterns here because both readers reject NaN fields
        // and %.17g / the binary codec round-trip every finite double.
        identical = back[i] == items[i];
      }
      if (!identical) {
        std::fprintf(stderr, "VERIFY FAILED: %s does not round-trip %s\n",
                     out_path.c_str(), in_path.c_str());
        return 1;
      }
      std::printf("verified: %s round-trips all %zu items bit-exactly\n",
                  out_path.c_str(), items.size());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "trace_convert: %s\n", e.what());
    return 1;
  }
  return 0;
}
