// Replay an item trace (CSV: id,size,arrival,departure) through a chosen
// algorithm. Without --trace, generates a demo trace, writes it next to the
// binary, and replays it — so the example is runnable out of the box.
//
//   ./examples/trace_replay [--trace file.csv] [--algorithm FirstFit]
//                           [--capacity 1.0] [--save demo_trace.csv] [--audit]
//
// --audit attaches the InvariantAuditor (core/auditor.h) to the replay: the
// whole run is re-checked event by event against a shadow model and any
// engine-invariant violation aborts with an AuditError diagnosis.
//
// --metrics <file> / --trace-out <file> attach a Telemetry sink
// (telemetry/telemetry.h) and export it after the replay: Prometheus text
// (or JSON when the metrics file ends in .json) and Chrome trace JSON (or
// CSV when the trace file ends in .csv). The exported counters are
// cross-checked against the evaluation itself — a mismatch exits non-zero.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "algorithms/registry.h"
#include "analysis/report.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "util/flags.h"
#include "workload/generators.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const std::string trace_path =
      flags.get_string("trace", "", "input trace CSV (empty: generate a demo)");
  const std::string algorithm_name =
      flags.get_string("algorithm", "FirstFit", "packing algorithm name");
  const double capacity = flags.get_double("capacity", 1.0, "bin capacity");
  const std::string save_path =
      flags.get_string("save", "demo_trace.csv", "where to save the demo trace");
  const bool audit = flags.get_bool(
      "audit", false, "re-check engine invariants after every replayed event");
  const std::string metrics_path = flags.get_string(
      "metrics", "", "write metrics to this file (.json: JSON, else Prometheus)");
  const std::string trace_out_path = flags.get_string(
      "trace-out", "",
      "write the event trace to this file (.csv: CSV, else Chrome trace JSON)");
  if (flags.finish("Replay an item trace through a packing algorithm")) return 0;

  ItemList items;
  if (trace_path.empty()) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 500;
    spec.seed = 2026;
    spec.duration_max = 6.0;
    items = workload::generate(spec);
    workload::write_trace_file(save_path, items);
    std::printf("no --trace given: generated a demo trace (%zu items) -> %s\n\n",
                items.size(), save_path.c_str());
  } else {
    items = workload::read_trace_file(trace_path, capacity);
    std::printf("loaded %zu items from %s\n\n", items.size(), trace_path.c_str());
  }

  const auto algorithm = make_algorithm(algorithm_name);
  analysis::EvalOptions options;
  options.exact_opt = items.size() <= 600;  // integral is cheap enough here
  options.sim.audit = audit;
  const bool want_telemetry = !metrics_path.empty() || !trace_out_path.empty();
  telemetry::Telemetry telemetry;
  if (want_telemetry) options.sim.telemetry = &telemetry;
  const analysis::Evaluation eval = analysis::evaluate(items, *algorithm, options);

  if (audit) std::printf("auditor: every event re-checked, zero violations\n");
  std::printf("algorithm:        %s\n", eval.algorithm.c_str());
  std::printf("mu:               %.3f\n", eval.mu);
  std::printf("total usage:      %.3f\n", eval.total_usage);
  std::printf("bins opened:      %zu (max concurrent %zu)\n", eval.bins_opened,
              eval.max_concurrent);
  std::printf("avg utilization:  %.3f\n", eval.average_utilization);
  std::printf("OPT_total bounds: [%.3f, %.3f]%s\n", eval.opt_lower, eval.opt_upper,
              eval.opt_exact ? " (tight)" : "");
  std::printf("achieved ratio:   <= %.3f (First Fit guarantee: mu+4 = %.3f)\n",
              eval.ratio_upper_estimate(), eval.mu + 4.0);

  if (want_telemetry) {
    // Cross-check: the exported counters must agree with the evaluation the
    // replay just computed. Bin counts are integers and must match exactly;
    // the usage-time histogram sums per-bin lengths in close order, so it is
    // compared with a tiny relative tolerance.
    const telemetry::MetricsSnapshot snap = telemetry.metrics().snapshot();
    const auto* bins_opened = snap.find_counter("mutdbp_bins_opened_total");
    const auto* bins_closed = snap.find_counter("mutdbp_bins_closed_total");
    const auto* placed = snap.find_counter("mutdbp_items_placed_total");
    const auto* usage = snap.find_histogram("mutdbp_bin_usage_time");
    bool ok = bins_opened != nullptr && bins_closed != nullptr &&
              placed != nullptr && usage != nullptr;
    if (ok && bins_opened->value != eval.bins_opened) ok = false;
    if (ok && bins_closed->value != eval.bins_opened) ok = false;
    if (ok && placed->value != items.size()) ok = false;
    if (ok && usage->count != eval.bins_opened) ok = false;
    if (ok && std::abs(usage->sum - eval.total_usage) >
                  1e-9 * std::max(1.0, eval.total_usage)) {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "telemetry cross-check FAILED: exported counters disagree "
                   "with the evaluation\n");
      return 1;
    }
    std::printf("telemetry: counters cross-checked against the evaluation\n");
    if (!metrics_path.empty()) {
      telemetry::write_metrics_file(metrics_path, telemetry);
      std::printf("[metrics written to %s]\n", metrics_path.c_str());
    }
    if (!trace_out_path.empty()) {
      telemetry::write_trace_file(trace_out_path, telemetry);
      std::printf("[trace written to %s]\n", trace_out_path.c_str());
    }
  }
  return 0;
}
