// Replay an item trace through a chosen algorithm. Traces may be CSV
// (id,size,arrival,departure) or MUTDBPT1 binary (docs/traces.md); --format
// defaults to sniffing the file, so both work with no extra flags. Without
// --trace, generates a demo trace, writes it next to the binary, and
// replays it — so the example is runnable out of the box.
//
//   ./examples/trace_replay [--trace file.csv|file.mtrace] [--format auto]
//                           [--algorithm FirstFit] [--capacity 1.0]
//                           [--save demo_trace.csv] [--audit]
//
// Every replay ends with a "result digest:" line — the packing_digest() of
// the final PackingResult — so CI can assert that the CSV and binary ingest
// paths of the same trace make bit-identical decisions.
//
// --audit attaches the InvariantAuditor (core/auditor.h) to the replay: the
// whole run is re-checked event by event against a shadow model and any
// engine-invariant violation aborts with an AuditError diagnosis.
//
// --metrics <file> / --trace-out <file> attach a Telemetry sink
// (telemetry/telemetry.h) and export it after the replay: Prometheus text
// (or JSON when the metrics file ends in .json) and Chrome trace JSON (or
// CSV when the trace file ends in .csv). The exported counters are
// cross-checked against the evaluation itself — a mismatch exits non-zero.
//
// Streaming mode (docs/streaming.md): --checkpoint-every N feeds the trace
// through a StreamingSimulation and writes a checkpoint every N applied
// events; --stop-after-events M abandons the run mid-trace (simulating a
// crash); --restore FILE resumes from a checkpoint and continues with the
// remaining events of the same trace. A streaming run that reaches the end
// of the trace verifies its result bit-for-bit against a one-shot batch
// simulate() of the same trace and exits non-zero on any divergence.
// SIGINT/SIGTERM during a streaming or sharded replay (with --checkpoint
// given) writes a final checkpoint and exits 0 — Ctrl-C is resumable.
//
// Sharded mode (docs/performance.md, "Sharded scaling"): --shards N replays
// the trace through an N-shard ShardedSimulation fleet (core/sharded.h) —
// items are hash-routed to per-shard engines fed over MPSC queues, and the
// per-shard results are folded deterministically at the end. The merged
// result is verified bit-for-bit against a batch run_sharded() of the same
// trace, and at N=1 additionally against single-threaded simulate().
// --checkpoint-every / --stop-after-events / --restore work here too: the
// checkpoint file is a MUTDBPC1 fleet header frame followed by one
// per-shard streaming frame.
//
// Vector mode (docs/multidim.md): --dims N replays a D-dimensional vector
// trace (CSV columns id,size0..size{D-1},arrival,departure) through the
// multidim engine instead; without --trace a deterministic demo vector
// trace is generated and saved. --algorithm accepts the vector registry
// names (VectorFirstFit, DominantBestFit, ...) or the scalar shorthand
// (FirstFit -> VectorFirstFit). --checkpoint-every / --stop-after-events /
// --restore work identically — checkpoints are kVectorStreamingSimulation
// MUTDBPC1 frames — and a completed streaming run is digest-verified
// against a one-shot batch md_simulate() of the same trace.
//
// Ratio monitoring (docs/observability.md): --report out.html writes the
// self-contained HTML dashboard. --adversarial next_fit|pinning|decoy
// replays a generated adversarial family (size --n, duration spread --mu)
// instead of a trace. --enforce-bound exits 2 when the monitor saw First
// Fit's ratio exceed µ+4 past the --bound-warmup-lb threshold — the CI
// bound-sentinel gate. Whenever telemetry is attached, the monitor's final
// lower bounds are cross-checked bit-for-bit against the batch opt:: sweep
// and the replay exits non-zero on mismatch.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <utility>

#include "algorithms/registry.h"
#include "analysis/report.h"
#include "core/sharded.h"
#include "core/simulation.h"
#include "core/streaming.h"
#include "multidim/md_algorithms.h"
#include "multidim/md_streaming.h"
#include "multidim/md_trace.h"
#include "opt/lower_bounds.h"
#include "telemetry/export.h"
#include "trace/format.h"
#include "telemetry/report_html.h"
#include "telemetry/telemetry.h"
#include "util/flags.h"
#include "workload/adversarial.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace {

// SIGINT/SIGTERM during a streaming or sharded replay: finish the current
// event, write a final checkpoint, and exit cleanly — a Ctrl-C'd replay is
// resumable with --restore exactly like a --stop-after-events "crash".
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void replay_signal_handler(int) { g_interrupted = 1; }

// Installs the handlers for the duration of a replay loop (restores the
// previous dispositions on scope exit, so batch mode keeps default Ctrl-C).
class ScopedSignalGuard {
 public:
  ScopedSignalGuard() {
    g_interrupted = 0;
    previous_int_ = std::signal(SIGINT, replay_signal_handler);
    previous_term_ = std::signal(SIGTERM, replay_signal_handler);
  }
  ~ScopedSignalGuard() {
    std::signal(SIGINT, previous_int_);
    std::signal(SIGTERM, previous_term_);
  }
  ScopedSignalGuard(const ScopedSignalGuard&) = delete;
  ScopedSignalGuard& operator=(const ScopedSignalGuard&) = delete;

 private:
  void (*previous_int_)(int) = SIG_DFL;
  void (*previous_term_)(int) = SIG_DFL;
};

// The monitor's final lower bounds must be bit-for-bit identical to the
// batch opt:: sweep over the same items — both sides run the one shared
// LowerBoundAccumulator (src/opt/lower_bounds.cpp), so any drift is a bug.
// Usage is compared with a tiny relative tolerance (summation order).
// Returns false (after printing a diagnosis) on any disagreement.
bool check_monitor(const mutdbp::ItemList& items,
                   const mutdbp::telemetry::Telemetry& telemetry,
                   double reference_usage) {
  using namespace mutdbp;
  const telemetry::RatioRunState state = telemetry.monitor().current();
  bool ok = state.finished;
  if (ok && state.lb_prop1 != opt::prop1_time_space_bound(items)) ok = false;
  if (ok && state.lb_prop2 != opt::prop2_span_bound(items)) ok = false;
  if (ok && state.lb_load_ceiling != opt::load_ceiling_bound(items)) ok = false;
  if (ok && state.lower_bound != opt::combined_lower_bound(items)) ok = false;
  if (ok && std::abs(state.usage - reference_usage) >
                1e-9 * std::max(1.0, reference_usage)) {
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "ratio-monitor cross-check FAILED: live bounds diverge from "
                 "the batch opt:: sweep (finished=%d usage=%.17g/%.17g "
                 "LB=%.17g/%.17g)\n",
                 state.finished ? 1 : 0, state.usage, reference_usage,
                 state.lower_bound, opt::combined_lower_bound(items));
    return false;
  }
  std::printf("ratio monitor: final ratio %.3f, bounds bit-identical to the "
              "batch opt:: sweep\n", state.ratio);
  return true;
}

// --enforce-bound: the peak monitored ratio (past the warm-up threshold)
// must stay inside Theorem 1's mu+4 envelope. Returns false on violation.
bool enforce_theorem_bound(const mutdbp::telemetry::Telemetry& telemetry,
                           double mu) {
  const mutdbp::telemetry::RatioRunState state = telemetry.monitor().current();
  const double envelope = mu + 4.0;
  if (state.peak_ratio > envelope) {
    std::fprintf(stderr,
                 "BOUND VIOLATION: peak ratio %.6f at t=%.6f exceeds "
                 "mu+4 = %.6f\n",
                 state.peak_ratio, state.peak_ratio_t, envelope);
    return false;
  }
  std::printf("bound sentinel: peak ratio %.3f stayed inside mu+4 = %.3f\n",
              state.peak_ratio, envelope);
  return true;
}

// Periodic live re-export during a streaming replay, atomic tmp + rename: a
// scraper tailing the file never sees a torn exposition (same publish
// contract as the daemon's checkpoints).
bool export_metrics_atomic(const std::string& path,
                           const mutdbp::telemetry::Telemetry& telemetry) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    mutdbp::telemetry::write_prometheus(out, telemetry.metrics().snapshot());
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void write_exports(const mutdbp::telemetry::Telemetry& telemetry,
                   const std::string& metrics_path,
                   const std::string& trace_out_path,
                   const std::string& report_path) {
  using namespace mutdbp;
  if (!metrics_path.empty()) {
    telemetry::write_metrics_file(metrics_path, telemetry);
    std::printf("[metrics written to %s]\n", metrics_path.c_str());
  }
  if (!trace_out_path.empty()) {
    telemetry::write_trace_file(trace_out_path, telemetry);
    std::printf("[trace written to %s]\n", trace_out_path.c_str());
  }
  if (!report_path.empty()) {
    telemetry::write_report_file(report_path, telemetry);
    std::printf("[report written to %s]\n", report_path.c_str());
  }
}

// The one line CI greps to compare ingest paths: identical digests mean the
// two runs made bit-identical packing decisions (core/packing_result.h).
void print_result_digest(const mutdbp::PackingResult& result) {
  std::printf("result digest: %016" PRIx64 "\n", mutdbp::packing_digest(result));
}

// Feeds `items` through a StreamingSimulation (optionally resuming from a
// checkpoint), checkpointing every `checkpoint_every` applied events. When
// the whole trace is applied, verifies against batch simulate().
int run_streaming(const mutdbp::ItemList& items, const std::string& algorithm_name,
                  bool audit, double fit_epsilon, std::int64_t checkpoint_every,
                  const std::string& checkpoint_path, const std::string& restore_path,
                  std::int64_t stop_after_events, std::int64_t metrics_every,
                  mutdbp::telemetry::Telemetry* telemetry, bool enforce_bound,
                  const std::string& metrics_path, const std::string& trace_out_path,
                  const std::string& report_path) {
  using namespace mutdbp;

  std::unique_ptr<PackingAlgorithm> algorithm;
  std::unique_ptr<StreamingSimulation> stream;
  if (!restore_path.empty()) {
    std::ifstream in(restore_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open checkpoint %s\n", restore_path.c_str());
      return 1;
    }
    const StreamingCheckpoint checkpoint = StreamingCheckpoint::read(in);
    algorithm = make_algorithm(checkpoint.algorithm,
                               checkpoint.options.algorithm_seed,
                               checkpoint.options.fit_epsilon);
    stream = std::make_unique<StreamingSimulation>(
        StreamingSimulation::restore(checkpoint, *algorithm, telemetry));
    std::printf("restored from %s: algorithm %s, %zu events applied, "
                "%zu servers rented, %zu jobs running\n",
                restore_path.c_str(), checkpoint.algorithm.c_str(),
                stream->events_applied(), stream->open_bin_count(),
                stream->active_items());
  } else {
    algorithm = make_algorithm(algorithm_name, 1, fit_epsilon);
    StreamingOptions options;
    options.capacity = items.capacity();
    options.audit = audit;
    options.fit_epsilon = fit_epsilon;
    options.telemetry = telemetry;
    stream = std::make_unique<StreamingSimulation>(*algorithm, options);
  }
  if (telemetry != nullptr) {
    telemetry->set_reference_mu(&stream->engine(), items.mu());
  }

  const auto& schedule = items.schedule();
  if (stream->events_applied() > schedule.size()) {
    std::fprintf(stderr, "checkpoint has %zu events but the trace only has %zu — "
                 "restored against the wrong trace?\n",
                 stream->events_applied(), schedule.size());
    return 1;
  }

  auto write_checkpoint = [&]() -> bool {
    std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n", checkpoint_path.c_str());
      return false;
    }
    stream->snapshot(out);
    return true;
  };

  std::size_t checkpoints_written = 0;
  ScopedSignalGuard signal_guard;
  for (std::size_t i = stream->events_applied(); i < schedule.size(); ++i) {
    if (g_interrupted != 0 && !checkpoint_path.empty()) {
      if (!write_checkpoint()) return 1;
      std::printf("interrupted after %zu events; final checkpoint -> %s "
                  "(resume with --restore)\n",
                  stream->events_applied(), checkpoint_path.c_str());
      return 0;
    }
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      stream->push_arrival(event.id, event.size, event.t);
    } else {
      stream->push_departure(event.id, event.t);
    }
    stream->flush();
    if (metrics_every > 0 && telemetry != nullptr && !metrics_path.empty() &&
        stream->events_applied() % static_cast<std::size_t>(metrics_every) == 0) {
      if (!export_metrics_atomic(metrics_path, *telemetry)) {
        std::fprintf(stderr, "cannot re-export metrics to %s\n",
                     metrics_path.c_str());
        return 1;
      }
    }
    if (checkpoint_every > 0 &&
        stream->events_applied() % static_cast<std::size_t>(checkpoint_every) == 0) {
      if (!write_checkpoint()) return 1;
      ++checkpoints_written;
    }
    if (stop_after_events > 0 &&
        stream->events_applied() >= static_cast<std::size_t>(stop_after_events)) {
      if (!write_checkpoint()) return 1;
      std::printf("stopped after %zu events (simulated crash); checkpoint -> %s\n",
                  stream->events_applied(), checkpoint_path.c_str());
      return 0;
    }
  }
  if (checkpoints_written > 0) {
    std::printf("%zu checkpoints written to %s\n", checkpoints_written,
                checkpoint_path.c_str());
  }

  const PackingResult streamed = stream->finish();

  // End-to-end verification: the streamed (and possibly restored) run must
  // be indistinguishable from one uninterrupted batch run.
  const auto reference_algorithm = make_algorithm(
      std::string(stream->algorithm_name()), stream->options().algorithm_seed,
      stream->options().fit_epsilon);
  const PackingResult batch = simulate(items, *reference_algorithm);
  bool identical = streamed.bins_opened() == batch.bins_opened() &&
                   streamed.total_usage_time() == batch.total_usage_time();
  if (identical) {
    for (const Item& item : items) {
      if (streamed.bin_of(item.id) != batch.bin_of(item.id)) {
        identical = false;
        break;
      }
    }
  }
  std::printf("streaming run: %zu events, %zu servers, total usage %.3f\n",
              stream->events_applied(), streamed.bins_opened(),
              streamed.total_usage_time());
  if (!identical) {
    std::fprintf(stderr, "VERIFICATION FAILED: streaming result diverges from "
                 "batch simulate()\n");
    return 1;
  }
  std::printf("verified: placements and usage identical to an uninterrupted "
              "batch run\n");
  print_result_digest(streamed);
  if (telemetry != nullptr) {
    if (!check_monitor(items, *telemetry, streamed.total_usage_time())) return 1;
    if (enforce_bound && !enforce_theorem_bound(*telemetry, items.mu())) return 2;
    write_exports(*telemetry, metrics_path, trace_out_path, report_path);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Vector (DVBP) replay: --dims N.
// ---------------------------------------------------------------------------

// The vector counterpart of print_result_digest — same grep-able line, so
// the CI digest-parity smoke compares scalar and vector runs identically.
void print_md_result_digest(const mutdbp::md::MDPackingResult& result) {
  std::printf("result digest: %016" PRIx64 "\n",
              mutdbp::md::md_packing_digest(result));
}

// Deterministic demo vector workload: the scalar demo generator drives
// dimension 0 and a splitmix64 hash of (id, d) fills the others, so every
// platform produces byte-identical traces (the CI smoke pins digests).
mutdbp::md::MDItemList generate_md_demo(std::size_t dims, std::size_t num_items) {
  using namespace mutdbp;
  workload::RandomWorkloadSpec spec;
  spec.num_items = num_items;
  spec.seed = 2026;
  spec.duration_max = 6.0;
  const ItemList scalar = workload::generate(spec);
  std::vector<md::MDItem> md_items;
  md_items.reserve(scalar.size());
  for (const Item& item : scalar) {
    std::vector<double> demand(dims);
    demand[0] = item.size;
    for (std::size_t d = 1; d < dims; ++d) {
      std::uint64_t x = item.id * 0x9e3779b97f4a7c15ULL + d;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      demand[d] = 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
    }
    md_items.push_back(md::make_md_item(item.id, std::move(demand),
                                        item.arrival(), item.departure()));
  }
  return md::MDItemList(std::move(md_items), std::vector<double>(dims, 1.0));
}

// Accepts both registry spellings: the vector names ("VectorFirstFit") and
// the scalar shorthand ("FirstFit", the --algorithm default).
std::string resolve_md_algorithm_name(const std::string& name) {
  const std::vector<std::string> names = mutdbp::md::md_algorithm_names();
  if (std::find(names.begin(), names.end(), name) != names.end()) return name;
  const std::string prefixed = "Vector" + name;
  if (std::find(names.begin(), names.end(), prefixed) != names.end()) {
    return prefixed;
  }
  return name;  // let make_md_algorithm produce the canonical error
}

// Replays a D-dimensional trace through the vector engine — batch
// md_simulate() by default, MDStreamingSimulation when any streaming flag
// is given. A streaming run that reaches the end of the trace verifies its
// digest against a one-shot batch run, exactly like the scalar path.
int run_multidim(std::size_t dims, const std::string& trace_path,
                 const std::string& algorithm_flag, double capacity_flag,
                 const std::string& save_path, std::int64_t checkpoint_every,
                 const std::string& checkpoint_path,
                 const std::string& restore_path, std::int64_t stop_after_events,
                 mutdbp::telemetry::Telemetry* telemetry,
                 const std::string& metrics_path) {
  using namespace mutdbp;
  using namespace mutdbp::md;

  MDItemList items;
  if (trace_path.empty()) {
    items = generate_md_demo(dims, 200);
    write_md_trace_file(save_path, items);
    std::printf("no --trace given: generated a %zu-dimensional demo trace "
                "(%zu items) -> %s\n\n",
                dims, items.size(), save_path.c_str());
  } else {
    const double cap = capacity_flag > 0.0 ? capacity_flag : 1.0;
    items = read_md_trace_file(trace_path, std::vector<double>(dims, cap));
    std::printf("loaded %zu vector items (%zu dims) from %s\n\n", items.size(),
                dims, trace_path.c_str());
  }

  const bool streaming = checkpoint_every > 0 || stop_after_events > 0 ||
                         !restore_path.empty();
  const MDLowerBounds bounds = md_lower_bounds(items);

  if (!streaming) {
    const auto algorithm =
        make_md_algorithm(resolve_md_algorithm_name(algorithm_flag));
    const MDPackingResult result =
        md_simulate(items, *algorithm, kDefaultFitEpsilon, telemetry);
    const double usage = result.total_usage_time();
    const double lb = bounds.combined();
    std::printf("algorithm:        %s\n",
                std::string(algorithm->name()).c_str());
    std::printf("dimensions:       %zu\n", dims);
    std::printf("mu:               %.3f\n", items.mu());
    std::printf("total usage:      %.3f\n", usage);
    std::printf("bins opened:      %zu\n", result.bins_opened());
    std::printf("OPT lower bound:  %.3f (prop1 %.3f, prop2 %.3f, "
                "load-ceiling %.3f)\n",
                lb, bounds.prop1, bounds.prop2, bounds.load_ceiling);
    if (lb > 0.0) std::printf("achieved ratio:   <= %.3f\n", usage / lb);
    print_md_result_digest(result);
    if (telemetry != nullptr && !metrics_path.empty()) {
      telemetry::write_metrics_file(metrics_path, *telemetry);
      std::printf("[metrics written to %s]\n", metrics_path.c_str());
    }
    return 0;
  }

  std::unique_ptr<MDPackingAlgorithm> algorithm;
  std::unique_ptr<MDStreamingSimulation> stream;
  if (!restore_path.empty()) {
    std::ifstream in(restore_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open checkpoint %s\n", restore_path.c_str());
      return 1;
    }
    const MDStreamingCheckpoint checkpoint = MDStreamingCheckpoint::read(in);
    algorithm = make_md_algorithm(checkpoint.algorithm,
                                  checkpoint.options.fit_epsilon);
    stream = std::make_unique<MDStreamingSimulation>(
        MDStreamingSimulation::restore(checkpoint, *algorithm, telemetry));
    std::printf("restored from %s: algorithm %s, %zu events applied, "
                "%zu servers rented, %zu jobs running\n",
                restore_path.c_str(), checkpoint.algorithm.c_str(),
                stream->events_applied(), stream->open_bin_count(),
                stream->active_items());
    if (stream->engine().dimensions() != dims) {
      std::fprintf(stderr, "checkpoint has %zu dimensions but --dims is %zu\n",
                   stream->engine().dimensions(), dims);
      return 1;
    }
  } else {
    algorithm = make_md_algorithm(resolve_md_algorithm_name(algorithm_flag));
    MDStreamingOptions options;
    options.capacity = items.capacity();
    options.telemetry = telemetry;
    stream = std::make_unique<MDStreamingSimulation>(*algorithm, options);
  }

  const auto& schedule = items.schedule();
  if (stream->events_applied() > schedule.size()) {
    std::fprintf(stderr, "checkpoint has %zu events but the trace only has %zu — "
                 "restored against the wrong trace?\n",
                 stream->events_applied(), schedule.size());
    return 1;
  }

  auto write_checkpoint = [&]() -> bool {
    std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n",
                   checkpoint_path.c_str());
      return false;
    }
    stream->snapshot(out);
    return true;
  };

  std::size_t checkpoints_written = 0;
  ScopedSignalGuard signal_guard;
  for (std::size_t i = stream->events_applied(); i < schedule.size(); ++i) {
    if (g_interrupted != 0 && !checkpoint_path.empty()) {
      if (!write_checkpoint()) return 1;
      std::printf("interrupted after %zu events; final checkpoint -> %s "
                  "(resume with --restore)\n",
                  stream->events_applied(), checkpoint_path.c_str());
      return 0;
    }
    const MDScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      stream->push_arrival(event.id, items[event.item_pos].demand, event.t);
    } else {
      stream->push_departure(event.id, event.t);
    }
    stream->flush();
    if (checkpoint_every > 0 &&
        stream->events_applied() % static_cast<std::size_t>(checkpoint_every) ==
            0) {
      if (!write_checkpoint()) return 1;
      ++checkpoints_written;
    }
    if (stop_after_events > 0 &&
        stream->events_applied() >=
            static_cast<std::size_t>(stop_after_events)) {
      if (!write_checkpoint()) return 1;
      std::printf("stopped after %zu events (simulated crash); checkpoint -> "
                  "%s\n",
                  stream->events_applied(), checkpoint_path.c_str());
      return 0;
    }
  }
  if (checkpoints_written > 0) {
    std::printf("%zu checkpoints written to %s\n", checkpoints_written,
                checkpoint_path.c_str());
  }

  const std::string algorithm_name(stream->algorithm_name());
  const double stream_fit_epsilon = stream->options().fit_epsilon;
  const MDPackingResult streamed = stream->finish();

  // End-to-end verification: the streamed (and possibly restored) run must
  // be digest-identical to one uninterrupted batch run.
  const auto reference = make_md_algorithm(algorithm_name, stream_fit_epsilon);
  const MDPackingResult batch = md_simulate(items, *reference, stream_fit_epsilon);
  std::printf("streaming run: %zu events, %zu servers, total usage %.3f, "
              "OPT lower bound %.3f\n",
              stream->events_applied(), streamed.bins_opened(),
              streamed.total_usage_time(), bounds.combined());
  if (md_packing_digest(streamed) != md_packing_digest(batch)) {
    std::fprintf(stderr, "VERIFICATION FAILED: vector streaming result "
                 "diverges from batch md_simulate()\n");
    return 1;
  }
  std::printf("verified: vector placements digest-identical to an "
              "uninterrupted batch run\n");
  print_md_result_digest(streamed);
  if (telemetry != nullptr && !metrics_path.empty()) {
    telemetry::write_metrics_file(metrics_path, *telemetry);
    std::printf("[metrics written to %s]\n", metrics_path.c_str());
  }
  return 0;
}

// Feeds the trace through an already-constructed fleet (fresh or restored),
// handling the checkpoint/crash flags, then verifies the merged result
// against a batch run_sharded() of the same trace — and, for one shard,
// against single-threaded simulate().
int drive_sharded(mutdbp::ShardedSimulation& fleet, const mutdbp::ItemList& items,
                  std::int64_t checkpoint_every, const std::string& checkpoint_path,
                  std::int64_t stop_after_events, const std::string& metrics_path) {
  using namespace mutdbp;
  fleet.set_reference_mu(items.mu());

  const auto& schedule = items.schedule();
  if (fleet.events_applied() > schedule.size()) {
    std::fprintf(stderr, "checkpoint has %zu events but the trace only has %zu — "
                 "restored against the wrong trace?\n",
                 static_cast<std::size_t>(fleet.events_applied()), schedule.size());
    return 1;
  }

  auto write_checkpoint = [&]() -> bool {
    std::ofstream out(checkpoint_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write checkpoint %s\n", checkpoint_path.c_str());
      return false;
    }
    fleet.snapshot(out);  // drains, so events_applied() is exact afterwards
    return true;
  };

  std::size_t checkpoints_written = 0;
  ScopedSignalGuard signal_guard;
  for (std::size_t i = fleet.events_applied(); i < schedule.size(); ++i) {
    if (g_interrupted != 0 && !checkpoint_path.empty()) {
      if (!write_checkpoint()) return 1;  // drains first, so the count is exact
      std::printf("interrupted after %zu events; final fleet checkpoint -> %s "
                  "(resume with --restore)\n",
                  static_cast<std::size_t>(fleet.events_applied()),
                  checkpoint_path.c_str());
      return 0;
    }
    const ScheduledEvent& event = schedule[i];
    if (event.is_arrival) {
      fleet.push_arrival(event.id, event.size, event.t);
    } else {
      fleet.push_departure(event.id, event.t);
    }
    const std::size_t pushed = i + 1;
    if (checkpoint_every > 0 &&
        pushed % static_cast<std::size_t>(checkpoint_every) == 0) {
      if (!write_checkpoint()) return 1;
      ++checkpoints_written;
    }
    if (stop_after_events > 0 &&
        pushed >= static_cast<std::size_t>(stop_after_events)) {
      if (!write_checkpoint()) return 1;
      std::printf("stopped after %zu events (simulated crash); "
                  "fleet checkpoint -> %s\n", pushed, checkpoint_path.c_str());
      return 0;
    }
  }
  if (checkpoints_written > 0) {
    std::printf("%zu fleet checkpoints written to %s\n", checkpoints_written,
                checkpoint_path.c_str());
  }

  const std::string algorithm_name(fleet.algorithm_name());
  const ShardedOptions options = fleet.options();
  const ShardedResult result = fleet.finish();

  std::printf("sharded replay: %zu shards, algorithm %s\n", result.num_shards,
              algorithm_name.c_str());
  for (std::size_t s = 0; s < result.num_shards; ++s) {
    const ShardOutcome& shard = result.shards[s];
    std::printf("  shard %zu: %zu items, %zu servers, usage %.3f\n", s,
                static_cast<std::size_t>(shard.items),
                shard.result.bins_opened(), shard.usage);
  }
  std::printf("merged: %zu servers, usage %.3f, OPT lower bound %.3f, "
              "ratio <= %.3f\n", result.merged.bins_opened(),
              result.bounds.usage, result.bounds.lower_bound,
              result.bounds.ratio);

  // The pipelined (MPSC-fed, possibly restored) fleet must be byte-for-byte
  // indistinguishable from one uninterrupted batch sharded run.
  const ShardedResult batch = run_sharded(
      items,
      registry_factory(algorithm_name, options.algorithm_seed,
                       options.fit_epsilon),
      options);
  bool identical = result.merged.bins_opened() == batch.merged.bins_opened() &&
                   result.bounds.usage == batch.bounds.usage &&
                   result.bounds.lower_bound == batch.bounds.lower_bound;
  if (identical) {
    for (const Item& item : items) {
      if (result.bin_of(item.id) != batch.bin_of(item.id)) {
        identical = false;
        break;
      }
    }
  }
  if (!identical) {
    std::fprintf(stderr, "VERIFICATION FAILED: pipelined fleet diverges from "
                 "batch run_sharded()\n");
    return 1;
  }
  std::printf("verified: merged placements and folded bounds identical to an "
              "uninterrupted batch sharded run\n");
  print_result_digest(result.merged);

  if (result.num_shards == 1) {
    const auto reference = make_algorithm(algorithm_name, options.algorithm_seed,
                                          options.fit_epsilon);
    const PackingResult single = simulate(items, *reference);
    if (result.merged.bins_opened() != single.bins_opened() ||
        result.merged.total_usage_time() != single.total_usage_time()) {
      std::fprintf(stderr, "VERIFICATION FAILED: one-shard fleet diverges from "
                   "single-threaded simulate()\n");
      return 1;
    }
    std::printf("verified: one-shard fleet bit-identical to single-threaded "
                "simulate()\n");
  }

  if (!metrics_path.empty()) {
    if (options.telemetry) {
      std::ofstream out(metrics_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
      }
      telemetry::write_prometheus(out, result.metrics);
      std::printf("[merged metrics written to %s]\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "--metrics ignored: fleet was restored from a "
                   "checkpoint taken without telemetry\n");
    }
  }
  return 0;
}

int run_sharded_replay(const mutdbp::ItemList& items,
                       const std::string& algorithm_name, double fit_epsilon,
                       std::size_t shards, std::int64_t checkpoint_every,
                       const std::string& checkpoint_path,
                       const std::string& restore_path,
                       std::int64_t stop_after_events, bool want_telemetry,
                       const std::string& metrics_path) {
  using namespace mutdbp;
  if (!restore_path.empty()) {
    std::ifstream in(restore_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open checkpoint %s\n", restore_path.c_str());
      return 1;
    }
    const ShardedCheckpoint checkpoint = ShardedCheckpoint::read(in);
    ShardedSimulation fleet = ShardedSimulation::restore(
        checkpoint,
        registry_factory(checkpoint.algorithm, checkpoint.options.algorithm_seed,
                         checkpoint.options.fit_epsilon));
    std::printf("restored fleet from %s: algorithm %s, %zu shards, %zu events "
                "applied, %zu servers rented\n",
                restore_path.c_str(), checkpoint.algorithm.c_str(),
                fleet.num_shards(),
                static_cast<std::size_t>(fleet.events_applied()),
                fleet.open_bin_count());
    return drive_sharded(fleet, items, checkpoint_every, checkpoint_path,
                         stop_after_events, metrics_path);
  }
  ShardedOptions options;
  options.num_shards = shards;
  options.capacity = items.capacity();
  options.fit_epsilon = fit_epsilon;
  options.telemetry = want_telemetry;
  ShardedSimulation fleet(registry_factory(algorithm_name, 1, fit_epsilon),
                          options);
  return drive_sharded(fleet, items, checkpoint_every, checkpoint_path,
                       stop_after_events, metrics_path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const std::string trace_path = flags.get_string(
      "trace", "", "input trace, CSV or MUTDBPT1 binary (empty: generate a demo)");
  const std::string format_name = flags.get_string(
      "format", "auto", "trace format: auto | csv | binary (auto: sniff the file)");
  const std::string algorithm_name =
      flags.get_string("algorithm", "FirstFit", "packing algorithm name");
  const double capacity = flags.get_double(
      "capacity", 0.0,
      "bin capacity (0: a binary trace's recorded capacity, 1.0 for CSV)");
  const std::string save_path =
      flags.get_string("save", "demo_trace.csv", "where to save the demo trace");
  const bool audit = flags.get_bool(
      "audit", false, "re-check engine invariants after every replayed event");
  const std::string metrics_path = flags.get_string(
      "metrics", "", "write metrics to this file (.json: JSON, else Prometheus)");
  const std::string trace_out_path = flags.get_string(
      "trace-out", "",
      "write the event trace to this file (.csv: CSV, else Chrome trace JSON)");
  const std::int64_t checkpoint_every = flags.get_int(
      "checkpoint-every", 0, "streaming mode: checkpoint every N applied events");
  const std::string checkpoint_path = flags.get_string(
      "checkpoint", "trace_replay.ckpt", "streaming mode: checkpoint file path");
  const std::string restore_path = flags.get_string(
      "restore", "", "resume a streaming run from this checkpoint file");
  const std::int64_t stop_after_events = flags.get_int(
      "stop-after-events", 0,
      "streaming mode: abandon the run after N events (simulated crash)");
  const std::int64_t metrics_every = flags.get_int(
      "metrics-every", 0,
      "streaming mode: re-export --metrics (Prometheus, atomic tmp+rename) "
      "every N applied events");
  const std::string report_path = flags.get_string(
      "report", "", "write a self-contained HTML run dashboard to this file");
  const std::string adversarial = flags.get_string(
      "adversarial", "",
      "replay a generated adversarial family instead of a trace: "
      "next_fit | pinning | decoy");
  const std::int64_t adversarial_n = flags.get_int(
      "n", 40, "adversarial family size (pairs / pins / rounds)");
  const double adversarial_mu = flags.get_double(
      "mu", 10.0, "adversarial family duration spread (max/min duration)");
  const bool enforce_bound = flags.get_bool(
      "enforce-bound", false,
      "exit 2 if the monitored peak ratio exceeds mu+4 past warm-up");
  const double bound_warmup_lb = flags.get_double(
      "bound-warmup-lb", 1.0,
      "ignore ratios while the OPT lower bound is below this (warm-up)");
  const std::int64_t shards = flags.get_int(
      "shards", 0,
      "replay through an N-shard allocator fleet (0: single-threaded)");
  const std::int64_t dims = flags.get_int(
      "dims", 0,
      "vector (DVBP) mode: replay a D-dimensional vector trace through the "
      "multidim engine (0: scalar)");
  if (flags.finish("Replay an item trace through a packing algorithm")) return 0;

  if (dims > 0) {
    if (!adversarial.empty() || shards > 0 || !trace_out_path.empty() ||
        !report_path.empty() || enforce_bound || audit) {
      std::fprintf(stderr,
                   "--dims is not wired for --adversarial/--shards/"
                   "--trace-out/--report/--enforce-bound/--audit; use the "
                   "scalar replay for those\n");
      return 1;
    }
    telemetry::Telemetry md_telemetry;
    return run_multidim(static_cast<std::size_t>(dims), trace_path,
                        algorithm_name, capacity, save_path, checkpoint_every,
                        checkpoint_path, restore_path, stop_after_events,
                        metrics_path.empty() ? nullptr : &md_telemetry,
                        metrics_path);
  }

  ItemList items;
  double fit_epsilon = kDefaultFitEpsilon;
  if (!adversarial.empty()) {
    workload::AdversarialInstance instance;
    const auto size = static_cast<std::size_t>(std::max<std::int64_t>(
        adversarial_n, 3));
    if (adversarial == "next_fit") {
      instance = workload::next_fit_lower_bound_instance(size, adversarial_mu);
    } else if (adversarial == "pinning") {
      instance = workload::any_fit_pinning_instance(std::min<std::size_t>(size, 48),
                                                    adversarial_mu);
    } else if (adversarial == "decoy") {
      // Every pin must arrive while the collector anchor is alive:
      // 1.5*(rounds-1) + 0.5 < mu caps the usable round count for this mu.
      const auto mu_cap = static_cast<std::size_t>(std::max(
          3.0, std::floor((adversarial_mu - 0.5) / 1.5 - 1e-9) + 1.0));
      instance = workload::best_fit_decoy_instance(
          std::min({size, std::size_t{44}, mu_cap}), adversarial_mu);
    } else {
      std::fprintf(stderr, "unknown --adversarial family '%s' "
                   "(expected next_fit | pinning | decoy)\n", adversarial.c_str());
      return 1;
    }
    items = std::move(instance.items);
    fit_epsilon = instance.recommended_fit_epsilon;
    std::printf("adversarial family '%s': %zu items, mu %.1f, predicted ratio "
                "%.3f, fit_epsilon %g\n\n",
                adversarial.c_str(), items.size(), adversarial_mu,
                instance.predicted_ratio(), fit_epsilon);
  } else if (trace_path.empty()) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 500;
    spec.seed = 2026;
    spec.duration_max = 6.0;
    items = workload::generate(spec);
    workload::write_trace_file(save_path, items);
    std::printf("no --trace given: generated a demo trace (%zu items) -> %s\n\n",
                items.size(), save_path.c_str());
  } else {
    const trace::TraceFormat format = trace::detect_trace_format(
        trace_path, trace::parse_trace_format(format_name));
    items = trace::read_trace_any(trace_path, format, capacity);
    std::printf("loaded %zu items from %s (%s)\n\n", items.size(),
                trace_path.c_str(), std::string(to_string(format)).c_str());
  }

  if (shards > 0) {
    if (!trace_out_path.empty() || !report_path.empty() || enforce_bound) {
      std::fprintf(stderr,
                   "--trace-out/--report/--enforce-bound are not wired for "
                   "--shards; use the single-threaded replay for those\n");
      return 1;
    }
    return run_sharded_replay(items, algorithm_name, fit_epsilon,
                              static_cast<std::size_t>(shards), checkpoint_every,
                              checkpoint_path, restore_path, stop_after_events,
                              !metrics_path.empty(), metrics_path);
  }

  const bool want_telemetry = !metrics_path.empty() || !trace_out_path.empty() ||
                              !report_path.empty() || enforce_bound;
  telemetry::Telemetry telemetry;
  telemetry.monitor().set_warmup_lb(bound_warmup_lb);

  const bool streaming = checkpoint_every > 0 || stop_after_events > 0 ||
                         metrics_every > 0 || !restore_path.empty();
  if (streaming) {
    return run_streaming(items, algorithm_name, audit, fit_epsilon,
                         checkpoint_every, checkpoint_path, restore_path,
                         stop_after_events, metrics_every,
                         want_telemetry ? &telemetry : nullptr, enforce_bound,
                         metrics_path, trace_out_path, report_path);
  }

  const auto algorithm = make_algorithm(algorithm_name, 1, fit_epsilon);
  analysis::EvalOptions options;
  options.exact_opt = items.size() <= 600;  // integral is cheap enough here
  options.sim.audit = audit;
  options.sim.fit_epsilon = fit_epsilon;
  if (want_telemetry) options.sim.telemetry = &telemetry;
  const analysis::Evaluation eval = analysis::evaluate(items, *algorithm, options);

  if (audit) std::printf("auditor: every event re-checked, zero violations\n");
  std::printf("algorithm:        %s\n", eval.algorithm.c_str());
  std::printf("mu:               %.3f\n", eval.mu);
  std::printf("total usage:      %.3f\n", eval.total_usage);
  std::printf("bins opened:      %zu (max concurrent %zu)\n", eval.bins_opened,
              eval.max_concurrent);
  std::printf("avg utilization:  %.3f\n", eval.average_utilization);
  std::printf("OPT_total bounds: [%.3f, %.3f]%s\n", eval.opt_lower, eval.opt_upper,
              eval.opt_exact ? " (tight)" : "");
  std::printf("achieved ratio:   <= %.3f (First Fit guarantee: mu+4 = %.3f)\n",
              eval.ratio_upper_estimate(), eval.mu + 4.0);

  // Digest via a bare re-simulate: the reset contract makes the placements
  // identical to the evaluation's run, and attaching no telemetry keeps the
  // counters cross-checked below from double-counting.
  {
    SimulationOptions digest_options;
    digest_options.fit_epsilon = fit_epsilon;
    digest_options.audit = false;
    print_result_digest(simulate(items, *algorithm, digest_options));
  }

  if (want_telemetry) {
    // Cross-check: the exported counters must agree with the evaluation the
    // replay just computed. Bin counts are integers and must match exactly;
    // the usage-time histogram sums per-bin lengths in close order, so it is
    // compared with a tiny relative tolerance.
    const telemetry::MetricsSnapshot snap = telemetry.metrics().snapshot();
    const auto* bins_opened = snap.find_counter("mutdbp_bins_opened_total");
    const auto* bins_closed = snap.find_counter("mutdbp_bins_closed_total");
    const auto* placed = snap.find_counter("mutdbp_items_placed_total");
    const auto* usage = snap.find_histogram("mutdbp_bin_usage_time");
    bool ok = bins_opened != nullptr && bins_closed != nullptr &&
              placed != nullptr && usage != nullptr;
    if (ok && bins_opened->value != eval.bins_opened) ok = false;
    if (ok && bins_closed->value != eval.bins_opened) ok = false;
    if (ok && placed->value != items.size()) ok = false;
    if (ok && usage->count != eval.bins_opened) ok = false;
    if (ok && std::abs(usage->sum - eval.total_usage) >
                  1e-9 * std::max(1.0, eval.total_usage)) {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "telemetry cross-check FAILED: exported counters disagree "
                   "with the evaluation\n");
      return 1;
    }
    std::printf("telemetry: counters cross-checked against the evaluation\n");
    // The monitor is compared against the opt:: sweep directly rather than
    // eval.opt_lower: with exact_opt the evaluation may tighten its bound
    // past what the live lower-bound accumulator can know.
    if (!check_monitor(items, telemetry, eval.total_usage)) return 1;
    if (enforce_bound && !enforce_theorem_bound(telemetry, eval.mu)) return 2;
    write_exports(telemetry, metrics_path, trace_out_path, report_path);
  }
  return 0;
}
