// Replay an item trace (CSV: id,size,arrival,departure) through a chosen
// algorithm. Without --trace, generates a demo trace, writes it next to the
// binary, and replays it — so the example is runnable out of the box.
//
//   ./examples/trace_replay [--trace file.csv] [--algorithm FirstFit]
//                           [--capacity 1.0] [--save demo_trace.csv] [--audit]
//
// --audit attaches the InvariantAuditor (core/auditor.h) to the replay: the
// whole run is re-checked event by event against a shadow model and any
// engine-invariant violation aborts with an AuditError diagnosis.
#include <cstdio>

#include "algorithms/registry.h"
#include "analysis/report.h"
#include "util/flags.h"
#include "workload/generators.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const std::string trace_path =
      flags.get_string("trace", "", "input trace CSV (empty: generate a demo)");
  const std::string algorithm_name =
      flags.get_string("algorithm", "FirstFit", "packing algorithm name");
  const double capacity = flags.get_double("capacity", 1.0, "bin capacity");
  const std::string save_path =
      flags.get_string("save", "demo_trace.csv", "where to save the demo trace");
  const bool audit = flags.get_bool(
      "audit", false, "re-check engine invariants after every replayed event");
  if (flags.finish("Replay an item trace through a packing algorithm")) return 0;

  ItemList items;
  if (trace_path.empty()) {
    workload::RandomWorkloadSpec spec;
    spec.num_items = 500;
    spec.seed = 2026;
    spec.duration_max = 6.0;
    items = workload::generate(spec);
    workload::write_trace_file(save_path, items);
    std::printf("no --trace given: generated a demo trace (%zu items) -> %s\n\n",
                items.size(), save_path.c_str());
  } else {
    items = workload::read_trace_file(trace_path, capacity);
    std::printf("loaded %zu items from %s\n\n", items.size(), trace_path.c_str());
  }

  const auto algorithm = make_algorithm(algorithm_name);
  analysis::EvalOptions options;
  options.exact_opt = items.size() <= 600;  // integral is cheap enough here
  options.sim.audit = audit;
  const analysis::Evaluation eval = analysis::evaluate(items, *algorithm, options);

  if (audit) std::printf("auditor: every event re-checked, zero violations\n");
  std::printf("algorithm:        %s\n", eval.algorithm.c_str());
  std::printf("mu:               %.3f\n", eval.mu);
  std::printf("total usage:      %.3f\n", eval.total_usage);
  std::printf("bins opened:      %zu (max concurrent %zu)\n", eval.bins_opened,
              eval.max_concurrent);
  std::printf("avg utilization:  %.3f\n", eval.average_utilization);
  std::printf("OPT_total bounds: [%.3f, %.3f]%s\n", eval.opt_lower, eval.opt_upper,
              eval.opt_exact ? " (tight)" : "");
  std::printf("achieved ratio:   <= %.3f (First Fit guarantee: mu+4 = %.3f)\n",
              eval.ratio_upper_estimate(), eval.mu + 4.0);
  return 0;
}
