// mutdbp_client — replays a trace against a live mutdbpd and verifies the
// daemon's final packing against a local batch run (docs/daemon.md).
//
// The client numbers the trace's canonical event schedule 1..n, streams it
// through a pipelined window, and survives daemon crashes mid-replay: on a
// connection loss it reconnects with backoff, re-Hellos, and rewinds to the
// resume_from frontier the (restarted) daemon reports. After kFinish it
// compares the daemon's ResultDigest bit-for-bit with run_sharded() over
// the same trace under the daemon's own configuration — the end-to-end
// crash-recovery gate CI runs with a kill -9 in the middle.
//
//   mutdbp_client --socket=/tmp/mutdbp.sock --trace=trace.csv
//   mutdbp_client --socket=/tmp/mutdbp.sock --trace=trace.mtrace
//   mutdbp_client ... --stop-after-events=300 --finish=0   # partial replay
//
// Traces may be CSV or MUTDBPT1 binary (--format, default sniffed). A
// binary trace streams straight from the mmap'd columnar reader to wire
// frames — BinaryTraceReader::stream_events() already yields the canonical
// event order, so no CSV parse and no ItemList sit in the send path (the
// ItemList is materialized only when --verify replays locally).
//
// Exit codes: 0 ok, 1 error, 2 digest mismatch.

#include <cstdio>
#include <exception>
#include <fstream>
#include <vector>

#include "core/error.h"
#include "core/item_list.h"
#include "core/sharded.h"
#include "core/streaming.h"
#include "daemon/client.h"
#include "trace/binary_trace.h"
#include "trace/format.h"
#include "util/flags.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  mutdbp::Flags flags(argc, argv);
  mutdbp::daemon::ClientOptions options;
  options.unix_socket =
      flags.get_string("socket", "", "daemon Unix socket path");
  options.host = flags.get_string("host", "127.0.0.1", "daemon TCP host");
  options.port = static_cast<std::uint16_t>(
      flags.get_int("port", 0, "daemon TCP port (with empty --socket)"));
  options.client_id =
      flags.get_string("client-id", "mutdbp_client", "client identity");
  options.window = static_cast<std::size_t>(
      flags.get_int("window", 64, "max unacked events in flight"));
  options.timeout = std::chrono::milliseconds(
      flags.get_int("timeout-ms", 2000, "response wait before a resend"));
  options.max_attempts = static_cast<std::size_t>(flags.get_int(
      "max-attempts", 30, "consecutive failed attempts before giving up"));
  const std::string trace_path =
      flags.get_string("trace", "", "trace to replay (CSV or MUTDBPT1 binary)");
  const std::string format_name = flags.get_string(
      "format", "auto", "trace format: auto | csv | binary (auto: sniff the file)");
  const std::int64_t stop_after =
      flags.get_int("stop-after-events", -1, "send at most N events (-1 = all)");
  const bool do_finish = flags.get_bool(
      "finish", true, "finish the fleet and fetch the result digest");
  const bool do_verify = flags.get_bool(
      "verify", true, "verify the digest against a local batch run_sharded()");
  const bool do_shutdown =
      flags.get_bool("shutdown", false, "ask the daemon to drain and exit 0");
  const std::string metrics_out = flags.get_string(
      "metrics-out", "", "fetch daemon metrics into this file before exiting");
  if (flags.finish("mutdbp_client: trace replay client for mutdbpd")) return 0;

  try {
    mutdbp::daemon::DaemonClient client(options);
    client.connect();
    const mutdbp::daemon::WireResponse& hello = client.hello();
    std::printf("mutdbp_client: connected (algorithm=%s shards=%llu "
                "capacity=%g resume_from=%llu)\n",
                hello.algorithm.c_str(),
                static_cast<unsigned long long>(hello.num_shards),
                hello.capacity,
                static_cast<unsigned long long>(hello.resume_from));

    mutdbp::ItemList items;
    bool items_loaded = false;
    if (!trace_path.empty()) {
      const auto format = mutdbp::trace::detect_trace_format(
          trace_path, mutdbp::trace::parse_trace_format(format_name));
      std::vector<mutdbp::StreamEvent> events;
      if (format == mutdbp::trace::TraceFormat::kBinary) {
        // Zero-copy send path: mmap'd columns -> canonical event order ->
        // wire frames. The ItemList is deferred to --verify below.
        const auto reader = mutdbp::trace::BinaryTraceReader::open(trace_path);
        if (reader.meta().capacity != hello.capacity) {
          throw mutdbp::ValidationError(
              "trace records capacity " +
              std::to_string(reader.meta().capacity) +
              " but the daemon packs at " + std::to_string(hello.capacity));
        }
        events = reader.stream_events();
      } else {
        items = mutdbp::workload::read_trace_file(trace_path, hello.capacity);
        items_loaded = true;
        events.reserve(items.schedule().size());
        for (const mutdbp::ScheduledEvent& event : items.schedule()) {
          mutdbp::StreamEvent stream_event;
          stream_event.kind = event.is_arrival
                                  ? mutdbp::StreamEvent::Kind::kArrival
                                  : mutdbp::StreamEvent::Kind::kDeparture;
          stream_event.id = event.id;
          stream_event.size = event.is_arrival ? event.size : 0.0;
          stream_event.t = event.t;
          events.push_back(stream_event);
        }
      }
      const std::size_t budget = stop_after < 0
                                     ? static_cast<std::size_t>(-1)
                                     : static_cast<std::size_t>(stop_after);
      const std::uint64_t acked = client.replay(events, budget);
      std::printf("mutdbp_client: %llu/%zu events acked (%s trace)\n",
                  static_cast<unsigned long long>(acked), events.size(),
                  std::string(to_string(format)).c_str());
    }

    int exit_code = 0;
    if (do_finish) {
      const mutdbp::daemon::ResultDigest digest = client.finish();
      std::printf("mutdbp_client: daemon result %s\n", digest.to_string().c_str());
      if (do_verify) {
        if (trace_path.empty()) {
          throw mutdbp::ValidationError("--verify needs --trace");
        }
        if (!items_loaded) {
          items = mutdbp::trace::BinaryTraceReader::open(trace_path).read_all();
        }
        mutdbp::ShardedOptions sharded;
        sharded.num_shards = hello.num_shards;
        sharded.capacity = hello.capacity;
        sharded.fit_epsilon = hello.fit_epsilon;
        sharded.algorithm_seed = hello.algorithm_seed;
        const mutdbp::daemon::ResultDigest local =
            mutdbp::daemon::digest_of(mutdbp::run_sharded(
                items,
                mutdbp::registry_factory(hello.algorithm, hello.algorithm_seed,
                                         hello.fit_epsilon),
                sharded));
        if (local == digest) {
          std::printf("mutdbp_client: VERIFIED bit-identical to local batch "
                      "run (shards=%llu)\n",
                      static_cast<unsigned long long>(hello.num_shards));
        } else {
          std::printf("mutdbp_client: DIGEST MISMATCH\n  daemon: %s\n  local:  %s\n",
                      digest.to_string().c_str(), local.to_string().c_str());
          exit_code = 2;
        }
      }
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << client.metrics();
    }
    if (do_shutdown) client.shutdown();
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mutdbp_client: %s\n", error.what());
    return 1;
  }
}
