// mutdbpd — the crash-safe allocator daemon (docs/daemon.md).
//
// Serves the MUTDBPC1 wire protocol on a Unix socket and/or loopback TCP,
// feeding a ShardedSimulation fleet. Checkpoints on an event/wall-clock
// cadence, drains gracefully on SIGTERM/SIGINT (final checkpoint, exit 0),
// and recovers from kill -9 via --restore. The seeded --shim-* flags inject
// deterministic drop/duplicate/reorder faults on the ingest path for chaos
// runs.
//
//   mutdbpd --socket=/tmp/mutdbp.sock --checkpoint=/tmp/mutdbp.ckpt \
//           --checkpoint-every-events=256
//   mutdbpd --socket=/tmp/mutdbp.sock --checkpoint=/tmp/mutdbp.ckpt --restore

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>

#include "daemon/server.h"
#include "telemetry/flight_recorder.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  mutdbp::Flags flags(argc, argv);
  mutdbp::daemon::DaemonConfig config;
  config.algorithm =
      flags.get_string("algorithm", "FirstFit", "registry algorithm name");
  config.shards = static_cast<std::size_t>(
      flags.get_int("shards", 1, "placement shards (0 = one per core)"));
  config.capacity = flags.get_double("capacity", 1.0, "bin capacity");
  config.fit_epsilon =
      flags.get_double("fit-epsilon", mutdbp::kDefaultFitEpsilon, "fit tolerance");
  config.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 1, "algorithm seed (randomized algorithms)"));
  config.ring_capacity = static_cast<std::size_t>(
      flags.get_int("ring", 1 << 12, "slots per shard ingest ring"));
  config.admission_wait = std::chrono::microseconds(
      flags.get_int("admission-wait-us", 500,
                    "bounded wait before an event is shed (0 = immediate)"));
  config.retry_after_ms = static_cast<std::uint64_t>(
      flags.get_int("retry-after-ms", 10, "pacing hint in kOverloaded nacks"));
  config.checkpoint_path =
      flags.get_string("checkpoint", "", "checkpoint file ('' = off)");
  config.restore = flags.get_bool(
      "restore", false, "restore from --checkpoint (missing file = fresh)");
  config.checkpoint_every_events = static_cast<std::uint64_t>(flags.get_int(
      "checkpoint-every-events", 0, "checkpoint cadence in admitted events"));
  config.checkpoint_every = std::chrono::milliseconds(flags.get_int(
      "checkpoint-every-ms", 0, "checkpoint cadence in wall-clock ms"));
  config.watchdog_budget = std::chrono::milliseconds(flags.get_int(
      "watchdog-budget-ms", 0,
      "record (never kill) flush/checkpoint/ack slower than this (0 = off)"));
  config.flight_dump_path = flags.get_string(
      "flight-dump", "",
      "postmortem flight-recorder dump path ('' = checkpoint + '.flight', "
      "'off' = disabled)");
  config.metrics_path = flags.get_string(
      "metrics-every-path", "",
      "periodic Prometheus re-export target (atomic tmp+rename)");
  config.metrics_every_events = static_cast<std::uint64_t>(flags.get_int(
      "metrics-every", 0,
      "re-export metrics every N admitted events (needs --metrics-every-path)"));
  config.shim.seed = static_cast<std::uint64_t>(
      flags.get_int("shim-seed", 0, "fault-injection shim seed"));
  config.shim.drop =
      flags.get_double("shim-drop", 0.0, "P(drop an admitted event request)");
  config.shim.duplicate =
      flags.get_double("shim-duplicate", 0.0, "P(deliver a request twice)");
  config.shim.reorder =
      flags.get_double("shim-reorder", 0.0, "P(hold a request back)");
  config.shim.bound_k = static_cast<std::size_t>(
      flags.get_int("shim-bound-k", 4, "max events a held request waits"));

  mutdbp::daemon::ServerOptions server_options;
  server_options.unix_socket =
      flags.get_string("socket", "", "Unix socket path ('' = TCP only)");
  const std::int64_t port =
      flags.get_int("port", -1, "TCP port (0 = ephemeral, unset = no TCP)");
  server_options.tcp = port >= 0;
  server_options.tcp_port = port > 0 ? static_cast<std::uint16_t>(port) : 0;
  server_options.poll_interval_ms = static_cast<int>(
      flags.get_int("poll-interval-ms", 20, "poll timeout between group commits"));
  server_options.announce =
      flags.get_bool("announce", true, "print the 'listening' line on stdout");
  const std::string metrics_out = flags.get_string(
      "metrics-out", "", "write final Prometheus metrics to this file");

  if (flags.finish("mutdbpd: crash-safe online bin-packing allocator daemon")) {
    return 0;
  }

  // Flight recorder defaults on next to the checkpoint: a kill -9 postmortem
  // should not require anyone to have thought of a flag first.
  if (config.flight_dump_path == "off") {
    config.flight_dump_path.clear();
  } else if (config.flight_dump_path.empty() && !config.checkpoint_path.empty()) {
    config.flight_dump_path = config.checkpoint_path + ".flight";
  }

  try {
    mutdbp::daemon::DaemonCore core(config);
    if (!config.flight_dump_path.empty()) {
      mutdbp::telemetry::install_flight_dump_on_fatal_signals();
    }
    mutdbp::daemon::DaemonServer server(core, server_options);
    const int exit_code = server.run();
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << core.metrics_text();
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mutdbpd: %s\n", error.what());
    return 1;
  }
}
