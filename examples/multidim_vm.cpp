// Multi-dimensional cloud allocation (the paper's §IX extension): VMs
// demand CPU and memory fractions of a server; compare the MD packing
// rules as demand correlation varies.
//
//   ./examples/multidim_vm [--vms 800] [--correlation 0.0] [--seed 5]
#include <cstdio>
#include <iostream>

#include "multidim/md_algorithms.h"
#include "multidim/md_workload.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  using namespace mutdbp::md;
  Flags flags(argc, argv);
  MDWorkloadSpec spec;
  spec.num_items = static_cast<std::size_t>(flags.get_int("vms", 800, "number of VMs"));
  spec.dimensions = 2;  // CPU, memory
  spec.correlation =
      flags.get_double("correlation", 0.0, "CPU/memory demand correlation [-1,1]");
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5, "workload seed"));
  spec.duration_max = 8.0;
  if (flags.finish("2-D (CPU+memory) online VM allocation")) return 0;

  const MDItemList vms = generate_md(spec);
  std::printf("VMs: %zu, dimensions: CPU+memory, correlation %.2f, mu %.2f\n",
              vms.size(), spec.correlation, vms.mu());
  const double lower = vms.load_ceiling_bound();
  std::printf("lower bound on total server hours: %.1f\n\n", lower);

  Table table({"algorithm", "servers", "server_hours", "vs_lower_bound"});
  for (const auto& name : md_algorithm_names()) {
    const auto algo = make_md_algorithm(name);
    const MDPackingResult result = md_simulate(vms, *algo);
    table.add_row({std::string(name), Table::num(result.bins_opened()),
                   Table::num(result.total_usage_time(), 1),
                   Table::num(result.total_usage_time() / lower, 3)});
  }
  std::cout << table;
  std::printf("\ntry --correlation -1 (anti-correlated CPU/memory): every rule pays\n"
              "for stranded capacity; note how rules that consolidate (FirstFit,\n"
              "BestFit) beat balance-seeking ones under the usage-time objective.\n");
  return 0;
}
