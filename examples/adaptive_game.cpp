// Play the adaptive stranding game interactively-from-code: the adversary
// watches where your chosen algorithm places items and departs them so that
// every bin stays pinned by one cheap long item.
//
//   ./examples/adaptive_game [--algorithm FirstFit] [--items 200] [--mu 12]
#include <cstdio>

#include "adversary/stranding.h"
#include "algorithms/registry.h"
#include "opt/lower_bounds.h"
#include "opt/opt_integral.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  const std::string algorithm_name =
      flags.get_string("algorithm", "FirstFit", "packing algorithm to play against");
  adversary::StrandingSpec spec;
  spec.num_items = static_cast<std::size_t>(flags.get_int("items", 200, "item count"));
  spec.mu = flags.get_double("mu", 12.0, "max/min duration ratio");
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1, "size-stream seed"));
  if (flags.finish("Adaptive departure-choosing adversary vs a packing algorithm"))
    return 0;

  const auto algorithm = make_algorithm(algorithm_name);
  const adversary::GameResult game = adversary::play_stranding(*algorithm, spec);

  std::size_t stranded = 0;
  for (const auto& item : game.items) {
    if (item.duration() > 1.5) ++stranded;  // the adversary kept it to µ
  }
  std::printf("algorithm:           %s\n", algorithm_name.c_str());
  std::printf("items:               %zu (%zu stranded to duration mu=%.0f)\n",
              game.items.size(), stranded, spec.mu);
  std::printf("bins opened:         %zu\n", game.packing.bins_opened());
  std::printf("algorithm cost:      %.2f\n", game.algorithm_cost());
  const double lb = opt::combined_lower_bound(game.items);
  std::printf("OPT lower bound:     %.2f\n", lb);
  if (game.items.size() <= 400) {
    const opt::OptIntegral integral = opt::opt_total(game.items);
    std::printf("OPT integral:        [%.2f, %.2f]\n", integral.lower, integral.upper);
    std::printf("achieved ratio:      >= %.3f\n",
                game.algorithm_cost() / integral.upper);
  } else {
    std::printf("achieved ratio:      <= %.3f (vs closed-form lower bound)\n",
                game.algorithm_cost() / lb);
  }
  std::printf("\nReplay with --algorithm NextFit or BestFit to see how different\n"
              "placement rules expose different amounts of surface to the adversary.\n");
  return 0;
}
