// Quickstart: pack a handful of jobs with First Fit, inspect the result,
// and compare against the offline optimum.
//
//   ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "algorithms/any_fit.h"
#include "analysis/ascii.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "opt/opt_integral.h"

int main() {
  using namespace mutdbp;

  // A job stream: (id, resource demand, arrival, departure). Departures are
  // only used by the simulator's event loop — the packing algorithm never
  // sees them (the online constraint of MinUsageTime DBP).
  const ItemList jobs({
      make_item(1, 0.60, 0.0, 10.0),
      make_item(2, 0.50, 1.0, 3.0),
      make_item(3, 0.40, 2.0, 4.0),
      make_item(4, 0.30, 3.0, 5.0),
      make_item(5, 0.45, 6.0, 12.0),
      make_item(6, 0.35, 7.0, 9.0),
  });

  FirstFit first_fit;
  const PackingResult packing = simulate(jobs, first_fit);

  std::printf("jobs:                %zu\n", jobs.size());
  std::printf("mu (max/min dur):    %.3f\n", jobs.mu());
  std::printf("bins opened:         %zu\n", packing.bins_opened());
  std::printf("total usage time:    %.3f   <- the MinUsageTime objective\n",
              packing.total_usage_time());
  std::printf("max concurrent bins: %zu   <- the classic DBP objective\n",
              packing.max_concurrent_bins());
  std::printf("avg utilization:     %.3f\n\n", packing.average_utilization());

  std::cout << analysis::render_bins(jobs, packing) << "\n";

  const opt::OptIntegral opt = opt::opt_total(jobs);
  std::printf("OPT_total (exact repacking integral): [%.3f, %.3f]%s\n", opt.lower,
              opt.upper, opt.exact ? " (exact)" : "");
  std::printf("Proposition 1 bound (time-space):     %.3f\n",
              opt::prop1_time_space_bound(jobs));
  std::printf("Proposition 2 bound (span):           %.3f\n",
              opt::prop2_span_bound(jobs));
  std::printf("achieved ratio FF/OPT:                %.3f (guarantee: mu+4 = %.3f)\n",
              packing.total_usage_time() / opt.upper, jobs.mu() + 4.0);
  return 0;
}
