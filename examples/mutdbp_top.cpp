// mutdbp_top — live fleet introspection for a running mutdbpd
// (docs/daemon.md "kWireStats", docs/observability.md).
//
// Polls the daemon's kWireStats snapshot and renders a refreshing table:
// admission counters, per-shard health (queue depth, high-water, stalls),
// and operation-latency quantiles. One daemon, one terminal, zero setup:
//
//   ./examples/mutdbp_top --socket=/tmp/mutdbp.sock
//   ./examples/mutdbp_top --port=7070 --interval-ms=500
//   ./examples/mutdbp_top --socket=/tmp/mutdbp.sock --once
//
// --once polls a single snapshot and prints it as stable "key value" lines
// (no screen control), which is what the CI smoke greps:
//
//   admitted 1000
//   shed 0
//   ...
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "daemon/client.h"
#include "util/flags.h"

namespace {

using mutdbp::daemon::WireStatsSnapshot;

/// Human scale for a latency in seconds: "854ns", "12.3us", "4.56ms", "1.2s".
std::string fmt_seconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-6) {
    std::snprintf(buffer, sizeof(buffer), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  }
  return buffer;
}

void render(const WireStatsSnapshot& stats, const std::string& endpoint,
            bool live) {
  if (live) std::printf("\x1b[H\x1b[2J");  // home + clear: a true refresh
  std::printf("mutdbp_top — %s  (snapshot v%u)\n", endpoint.c_str(),
              stats.version);
  std::printf("uptime %.1fs   last checkpoint %s   connections %" PRIu64
              "   clients %zu\n",
              stats.uptime_seconds,
              stats.last_checkpoint_age_seconds < 0.0
                  ? "never"
                  : (fmt_seconds(stats.last_checkpoint_age_seconds) + " ago")
                        .c_str(),
              stats.connections, stats.frontiers.size());
  std::printf("admitted %" PRIu64 "   applied %" PRIu64 "   open bins %" PRIu64
              "   last_t %.3f\n",
              stats.events_admitted, stats.events_applied, stats.open_bins,
              stats.last_t);
  std::printf("shed %" PRIu64 "   duplicates %" PRIu64 "   out-of-order %" PRIu64
              "   malformed %" PRIu64 "   checkpoints %" PRIu64
              "   watchdog %" PRIu64 "\n",
              stats.events_shed, stats.duplicates_suppressed,
              stats.out_of_order, stats.malformed_frames,
              stats.checkpoints_written, stats.watchdog_fires);
  std::printf("admission: wait budget %" PRIu64 "us, overload retry hint %" PRIu64
              "ms\n",
              stats.admission_wait_us, stats.retry_after_ms);

  if (!stats.shards.empty()) {
    std::printf("\n%5s %10s %10s %7s %9s %7s %10s\n", "shard", "pushed",
                "drained", "depth", "hi-water", "stalls", "stalled");
    for (const auto& shard : stats.shards) {
      std::printf("%5" PRIu64 " %10" PRIu64 " %10" PRIu64 " %7" PRIu64
                  " %9" PRIu64 " %7" PRIu64 " %10s\n",
                  shard.shard, shard.events_pushed, shard.events_drained,
                  shard.queue_depth, shard.queue_depth_high_water, shard.stalls,
                  fmt_seconds(shard.stall_seconds).c_str());
    }
  }

  bool header = false;
  for (const auto& histogram : stats.histograms) {
    if (histogram.count == 0) continue;  // a quiet op earns no row
    if (!header) {
      std::printf("\n%-40s %8s %9s %9s %9s %9s\n", "latency", "count", "p50",
                  "p90", "p99", "max");
      header = true;
    }
    std::printf("%-40s %8" PRIu64 " %9s %9s %9s %9s\n", histogram.name.c_str(),
                histogram.count, fmt_seconds(histogram.p50).c_str(),
                fmt_seconds(histogram.p90).c_str(),
                fmt_seconds(histogram.p99).c_str(),
                fmt_seconds(histogram.max).c_str());
  }

  if (!live && !stats.frontiers.empty()) {
    std::printf("\n");
    for (const auto& frontier : stats.frontiers) {
      std::printf("frontier %s %" PRIu64 "\n", frontier.client.c_str(),
                  frontier.next_expected);
    }
  }
  std::fflush(stdout);
}

/// --once: every field as one "key value" line, stable enough to grep in CI.
void render_once_keys(const WireStatsSnapshot& stats) {
  std::printf("version %u\n", stats.version);
  std::printf("uptime_seconds %.3f\n", stats.uptime_seconds);
  std::printf("last_checkpoint_age_seconds %.3f\n",
              stats.last_checkpoint_age_seconds);
  std::printf("admitted %" PRIu64 "\n", stats.events_admitted);
  std::printf("applied %" PRIu64 "\n", stats.events_applied);
  std::printf("shed %" PRIu64 "\n", stats.events_shed);
  std::printf("duplicates %" PRIu64 "\n", stats.duplicates_suppressed);
  std::printf("out_of_order %" PRIu64 "\n", stats.out_of_order);
  std::printf("malformed %" PRIu64 "\n", stats.malformed_frames);
  std::printf("checkpoints %" PRIu64 "\n", stats.checkpoints_written);
  std::printf("watchdog %" PRIu64 "\n", stats.watchdog_fires);
  std::printf("open_bins %" PRIu64 "\n", stats.open_bins);
  std::printf("connections %" PRIu64 "\n", stats.connections);
  std::printf("clients %zu\n", stats.frontiers.size());
  std::printf("shards %zu\n", stats.shards.size());
  std::printf("histograms %zu\n", stats.histograms.size());
}

}  // namespace

int main(int argc, char** argv) {
  mutdbp::Flags flags(argc, argv);
  mutdbp::daemon::ClientOptions options;
  options.unix_socket =
      flags.get_string("socket", "", "daemon Unix socket path ('' = TCP)");
  options.host = flags.get_string("host", "127.0.0.1", "daemon TCP host");
  options.port = static_cast<std::uint16_t>(
      flags.get_int("port", 0, "daemon TCP port (with no --socket)"));
  options.client_id = flags.get_string(
      "client-id", "mutdbp_top", "client identity (must not collide with a "
      "replaying client)");
  const std::int64_t interval_ms = flags.get_int(
      "interval-ms", 1000, "refresh interval between polls");
  const std::int64_t count = flags.get_int(
      "count", 0, "stop after N refreshes (0 = until interrupted)");
  const bool once = flags.get_bool(
      "once", false, "poll one snapshot, print greppable key/value lines, exit");
  if (flags.finish("mutdbp_top: live introspection of a running mutdbpd")) {
    return 0;
  }
  if (options.unix_socket.empty() && options.port == 0) {
    std::fprintf(stderr, "mutdbp_top: need --socket or --port\n");
    return 1;
  }
  const std::string endpoint =
      options.unix_socket.empty()
          ? options.host + ":" + std::to_string(options.port)
          : options.unix_socket;

  try {
    mutdbp::daemon::DaemonClient client(options);
    if (once) {
      const WireStatsSnapshot stats = client.wire_stats().stats;
      render(stats, endpoint, /*live=*/false);
      std::printf("\n");
      render_once_keys(stats);
      return 0;
    }
    for (std::int64_t polls = 0; count == 0 || polls < count; ++polls) {
      if (polls > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
      render(client.wire_stats().stats, endpoint, /*live=*/true);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mutdbp_top: %s\n", error.what());
    return 1;
  }
}
