// Cloud gaming dispatch (the paper's §I motivating application): play
// sessions demand GPU fractions and are dispatched to rented cloud servers;
// servers bill by the hour. Compares the renting cost of the packing
// algorithms on the same session stream.
//
//   ./examples/cloud_gaming [--sessions 4000] [--seed 7] [--granularity 1.0]
#include <cstdio>
#include <iostream>
#include <string>

#include "algorithms/registry.h"
#include "cloud/billing.h"
#include "cloud/gaming.h"
#include "core/simulation.h"
#include "opt/lower_bounds.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mutdbp;
  Flags flags(argc, argv);
  cloud::GamingWorkloadSpec spec;
  spec.num_sessions = static_cast<std::size_t>(
      flags.get_int("sessions", 4000, "number of play sessions"));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7, "workload seed"));
  cloud::BillingPolicy billing;
  billing.granularity = flags.get_double("granularity", 1.0, "billing quantum in hours");
  if (flags.finish("Cloud gaming dispatch: compare server renting cost per algorithm"))
    return 0;

  const ItemList sessions = cloud::generate_gaming_workload(spec);
  std::printf("sessions: %zu over %.1f hours, GPU demand classes:", sessions.size(),
              sessions.packing_period().length());
  for (const auto& title : spec.titles) {
    std::printf(" %s=%.3f", title.name, title.gpu_fraction);
  }
  std::printf("\nmu = %.2f, hourly billing granularity = %.2f\n\n", sessions.mu(),
              billing.granularity);

  const double opt_lb = opt::combined_lower_bound(sessions);

  Table table({"algorithm", "servers", "usage_h", "billed_h", "cost", "vs_opt_lb"});
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    const PackingResult packing = simulate(sessions, *algo);
    const cloud::BillingSummary bill = cloud::bill(packing, billing);
    table.add_row({std::string(algo->name()), Table::num(bill.servers_used),
                   Table::num(bill.total_usage, 1), Table::num(bill.total_billed_time, 1),
                   Table::num(bill.total_cost, 1),
                   Table::num(bill.total_usage / opt_lb, 3)});
  }
  std::cout << table;
  std::printf("\nvs_opt_lb = raw usage / lower bound on OPT_total (%.1f h)\n", opt_lb);
  return 0;
}
