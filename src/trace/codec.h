// Delta/varint column codec for the MUTDBPT1 binary trace format.
//
// A column of u64 values (item ids, or IEEE-754 bit patterns of times) is
// stored as zigzag(v[i] - v[i-1]) LEB128 varints, with the delta chain
// starting from 0 at the head of every block (blocks decode independently,
// so the reader can random-access or parallelize over them). Sorted id
// columns collapse to one byte per element; sorted time columns shrink
// because the bit patterns of nearby same-sign doubles are themselves
// nearby integers (the IEEE-754 ordering trick). Unsorted columns stay
// correct — deltas wrap mod 2^64 and zigzag round-trips every value — they
// just compress less.
//
// The decode loop is branch-light in the style of SNIPPETS.md §3
// (pbwt_exp.hpp): <bit> intrinsics size the varints and the hot path reads
// one byte per continuation bit with no function calls. Every read is
// bounds-checked against the column's declared byte length; overruns and
// over-long varints throw ValidationError (the frame checksum in front of
// this codec makes corruption astronomically unlikely to reach it, but the
// fuzzers drive it directly).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/error.h"

namespace mutdbp::trace {

/// Maps signed deltas to small unsigned values: 0,-1,1,-2,2 -> 0,1,2,3,4.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

/// LEB128: 7 value bits per byte, high bit = continuation; at most 10 bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Encoded size without encoding: ceil(bit_width / 7), and 1 for zero.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) noexcept {
  return v == 0 ? 1
               : (static_cast<std::size_t>(64 - std::countl_zero(v)) + 6) / 7;
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Appends a u64 column as a zigzag-delta varint stream (chain starts at 0).
inline void encode_delta_column(const std::uint64_t* values, std::size_t count,
                                std::vector<std::uint8_t>& out) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Two's-complement wraparound keeps the delta exact for any u64 pair.
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(values[i] - prev)));
    prev = values[i];
  }
}

/// Bounds-checked decoder over one encoded column.
class DeltaColumnReader {
 public:
  DeltaColumnReader(const std::uint8_t* data, std::size_t size) noexcept
      : p_(data), end_(data + size) {}

  /// Next value of the chain. Throws ValidationError on a truncated or
  /// over-long varint.
  [[nodiscard]] std::uint64_t next() {
    std::uint64_t raw = 0;
    int shift = 0;
    while (true) {
      if (p_ == end_) {
        throw ValidationError("trace codec: varint column truncated");
      }
      const std::uint8_t byte = *p_++;
      if (shift == 63 && byte > 1) {
        // The 10th byte may only contribute bit 63: anything else encodes
        // more than 64 bits and can never come from the writer.
        throw ValidationError("trace codec: over-long varint");
      }
      raw |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) {
        throw ValidationError("trace codec: over-long varint");
      }
    }
    prev_ += static_cast<std::uint64_t>(zigzag_decode(raw));
    return prev_;
  }

  /// True when the column's declared bytes were consumed exactly.
  [[nodiscard]] bool exhausted() const noexcept { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::uint64_t prev_ = 0;
};

}  // namespace mutdbp::trace
