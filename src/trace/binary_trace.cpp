#include "trace/binary_trace.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <string>
#include <utility>

#include "core/checkpoint.h"
#include "core/error.h"
#include "trace/codec.h"

#if defined(__unix__) || defined(__APPLE__)
#define MUTDBP_TRACE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MUTDBP_TRACE_HAS_MMAP 0
#endif

namespace mutdbp::trace {

namespace {

constexpr std::size_t kMagicBytes = sizeof(kTraceMagic);
constexpr std::size_t kTailBytes = 8;  // trailing u64 LE footer offset

// A block payload is bounded by its columns' worst-case encodings: count,
// three (length + <= 10 bytes/value) varint columns, one raw f64 column.
constexpr std::uint64_t kMaxBlockPayload =
    8 + 3 * (8 + kMaxTraceBlockItems * kMaxVarintBytes) + kMaxTraceBlockItems * 8;

[[nodiscard]] std::uint64_t bits_of(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

[[nodiscard]] double double_of(std::uint64_t v) noexcept {
  return std::bit_cast<double>(v);
}

void put_u64_le(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

[[nodiscard]] std::uint64_t get_u64_le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void validate_item(const Item& item, double capacity, const std::string& where) {
  // Mirrors ItemList::validate plus read_trace's finiteness screen, so a
  // binary trace is exactly as strict as the CSV path.
  if (!std::isfinite(item.size) || !std::isfinite(item.active.left) ||
      !std::isfinite(item.active.right)) {
    throw ValidationError(where + ": item " + std::to_string(item.id) +
                          " has a non-finite field");
  }
  if (!(item.size > 0.0) || item.size > capacity) {
    throw ValidationError(where + ": item " + std::to_string(item.id) +
                          ": size must be in (0, capacity]");
  }
  if (!(item.active.left < item.active.right)) {
    throw ValidationError(where + ": item " + std::to_string(item.id) +
                          ": departure must be after arrival");
  }
}

void write_all(std::ostream& out, const std::uint8_t* data, std::size_t size) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!out) throw SimulationError("binary trace: stream write failed");
}

/// Appends one u64 column as (byte length, zigzag-delta varints).
void put_column(BinaryWriter& payload, const std::vector<std::uint64_t>& values,
                std::vector<std::uint8_t>& scratch) {
  scratch.clear();
  encode_delta_column(values.data(), values.size(), scratch);
  payload.u64(scratch.size());
  payload.raw(scratch.data(), scratch.size());
}

#if MUTDBP_TRACE_HAS_MMAP
/// Owns one read-only file mapping; stored as the reader's holder.
struct Mapping {
  void* addr = nullptr;
  std::size_t size = 0;

  Mapping(void* a, std::size_t s) noexcept : addr(a), size(s) {}
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, size);
  }
};
#endif

}  // namespace

std::uint64_t trace_digest_mix(std::uint64_t h, const Item& item) {
  // FNV-1a folded one u64 word per step, not one byte: four multiplies per
  // item instead of 32. The content digest runs over every item on the
  // read_all() ingest hot path (on top of the byte-wise frame checksums,
  // which stay MUTDBPC1-compatible), so its serial multiply chain is kept as
  // short as possible.
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * kFnvPrime; };
  mix(item.id);
  mix(bits_of(item.size));
  mix(bits_of(item.active.left));
  mix(bits_of(item.active.right));
  return h;
}

std::uint64_t trace_digest(const ItemList& items) {
  std::uint64_t h = fnv1a64(nullptr, 0);
  for (const Item& item : items) h = trace_digest_mix(h, item);
  return h;
}

// ---------------------------------------------------------------------------
// Writer

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out,
                                     BinaryTraceWriterOptions options)
    : out_(out), options_(options), digest_(fnv1a64(nullptr, 0)) {
  if (!(options_.capacity > 0.0) || !std::isfinite(options_.capacity)) {
    throw ValidationError("binary trace: capacity must be finite and > 0");
  }
  if (options_.block_items == 0 || options_.block_items > kMaxTraceBlockItems) {
    throw ValidationError("binary trace: block_items must be in [1, " +
                          std::to_string(kMaxTraceBlockItems) + "]");
  }
  meta_.capacity = options_.capacity;
  block_.reserve(options_.block_items);

  write_all(out_, reinterpret_cast<const std::uint8_t*>(kTraceMagic), kMagicBytes);
  offset_ += kMagicBytes;

  BinaryWriter header;
  header.u32(kTraceFormatVersion);
  header.f64(options_.capacity);
  header.u64(options_.block_items);
  const std::vector<std::uint8_t> frame = encode_frame(CheckpointKind::kTraceHeader, header);
  write_all(out_, frame.data(), frame.size());
  offset_ += frame.size();
}

void BinaryTraceWriter::add(const Item& item) {
  if (finished_) {
    throw ValidationError("binary trace: add() after finish()");
  }
  validate_item(item, options_.capacity, "binary trace writer");
  block_.push_back(item);
  if (block_.size() >= options_.block_items) flush_block();
}

void BinaryTraceWriter::flush_block() {
  if (block_.empty()) return;

  TraceBlockMeta block_meta;
  block_meta.offset = offset_;
  block_meta.items = block_.size();
  block_meta.min_id = block_meta.max_id = block_.front().id;
  block_meta.min_arrival = block_.front().active.left;
  block_meta.max_departure = block_.front().active.right;

  // Column-major staging: one pass splits the AoS buffer into SoA columns
  // and folds the items into the running content digest + block ranges.
  std::vector<std::uint64_t> ids, arrivals, departures;
  ids.reserve(block_.size());
  arrivals.reserve(block_.size());
  departures.reserve(block_.size());
  for (const Item& item : block_) {
    ids.push_back(item.id);
    arrivals.push_back(bits_of(item.active.left));
    departures.push_back(bits_of(item.active.right));
    block_meta.min_id = std::min(block_meta.min_id, item.id);
    block_meta.max_id = std::max(block_meta.max_id, item.id);
    block_meta.min_arrival = std::min(block_meta.min_arrival, item.active.left);
    block_meta.max_departure = std::max(block_meta.max_departure, item.active.right);
    digest_ = trace_digest_mix(digest_, item);
  }

  BinaryWriter payload;
  payload.u64(block_.size());
  std::vector<std::uint8_t> scratch;
  put_column(payload, ids, scratch);
  for (const Item& item : block_) payload.f64(item.size);
  put_column(payload, arrivals, scratch);
  put_column(payload, departures, scratch);

  const std::vector<std::uint8_t> frame = encode_frame(CheckpointKind::kTraceBlock, payload);
  write_all(out_, frame.data(), frame.size());
  offset_ += frame.size();

  if (meta_.blocks.empty()) {
    meta_.min_arrival = block_meta.min_arrival;
    meta_.max_departure = block_meta.max_departure;
  } else {
    meta_.min_arrival = std::min(meta_.min_arrival, block_meta.min_arrival);
    meta_.max_departure = std::max(meta_.max_departure, block_meta.max_departure);
  }
  meta_.items += block_.size();
  meta_.blocks.push_back(block_meta);
  block_.clear();
}

const TraceMeta& BinaryTraceWriter::finish() {
  if (finished_) {
    throw ValidationError("binary trace: finish() called twice");
  }
  flush_block();
  finished_ = true;
  meta_.digest = digest_;

  BinaryWriter footer;
  footer.u64(meta_.items);
  footer.f64(meta_.min_arrival);
  footer.f64(meta_.max_departure);
  footer.f64(meta_.capacity);
  footer.u64(meta_.digest);
  footer.u64(meta_.blocks.size());
  for (const TraceBlockMeta& block : meta_.blocks) {
    footer.u64(block.offset);
    footer.u64(block.items);
    footer.u64(block.min_id);
    footer.u64(block.max_id);
    footer.f64(block.min_arrival);
    footer.f64(block.max_departure);
  }

  const std::uint64_t footer_offset = offset_;
  const std::vector<std::uint8_t> frame = encode_frame(CheckpointKind::kTraceFooter, footer);
  write_all(out_, frame.data(), frame.size());

  std::uint8_t tail[kTailBytes];
  put_u64_le(tail, footer_offset);
  write_all(out_, tail, kTailBytes);
  offset_ += frame.size() + kTailBytes;
  out_.flush();
  if (!out_) throw SimulationError("binary trace: stream flush failed");
  return meta_;
}

TraceMeta write_binary_trace_file(const std::string& path, const ItemList& items,
                                  std::size_t block_items) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ValidationError("write_binary_trace_file: cannot open " + path);
  BinaryTraceWriter writer(out, {items.capacity(), block_items});
  for (const Item& item : items) writer.add(item);
  return writer.finish();
}

// ---------------------------------------------------------------------------
// Reader

BinaryTraceReader::BinaryTraceReader(std::shared_ptr<const void> holder,
                                     const std::uint8_t* data, std::size_t size)
    : holder_(std::move(holder)), data_(data), size_(size) {
  parse_skeleton();
}

BinaryTraceReader BinaryTraceReader::open(const std::string& path) {
#if MUTDBP_TRACE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw ValidationError("binary trace: cannot open " + path);
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw ValidationError("binary trace: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (addr != MAP_FAILED) {
#if defined(MADV_SEQUENTIAL)
      // Replay is a forward scan; tell the kernel to read ahead.
      ::madvise(addr, size, MADV_SEQUENTIAL);
#endif
      auto mapping = std::make_shared<Mapping>(addr, size);
      const auto* data = static_cast<const std::uint8_t*>(mapping->addr);
      return BinaryTraceReader(std::move(mapping), data, size);
    }
  } else {
    ::close(fd);
  }
  // Fall through to buffered reading: empty files and filesystems that
  // refuse mmap still get the same validation path.
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ValidationError("binary trace: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return from_bytes(std::move(bytes));
}

BinaryTraceReader BinaryTraceReader::from_bytes(std::vector<std::uint8_t> bytes) {
  auto owned = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
  const std::uint8_t* data = owned->data();
  const std::size_t size = owned->size();
  return BinaryTraceReader(std::move(owned), data, size);
}

BinaryTraceReader BinaryTraceReader::from_view(const std::uint8_t* data,
                                               std::size_t size) {
  return BinaryTraceReader(nullptr, data, size);
}

void BinaryTraceReader::parse_skeleton() {
  if (size_ < kMagicBytes ||
      std::memcmp(data_, kTraceMagic, kMagicBytes) != 0) {
    throw ValidationError("binary trace: bad magic (not a MUTDBPT1 trace)");
  }
  if (size_ < kMagicBytes + kTailBytes) {
    throw ValidationError("binary trace: truncated (no footer offset tail)");
  }

  // Tail → footer frame. The footer must end exactly at the tail, so a
  // garbage offset can only point at bytes that fail frame validation.
  footer_offset_ = get_u64_le(data_ + size_ - kTailBytes);
  const std::size_t footer_end = size_ - kTailBytes;
  if (footer_offset_ < kMagicBytes || footer_offset_ >= footer_end) {
    throw ValidationError("binary trace: footer offset " +
                          std::to_string(footer_offset_) +
                          " is outside the file");
  }
  const auto footer_at = static_cast<std::size_t>(footer_offset_);
  const FrameRef footer_frame =
      parse_frame_view(data_ + footer_at, footer_end - footer_at,
                       CheckpointKind::kTraceFooter, footer_end - footer_at);
  if (footer_frame.consumed == 0 ||
      footer_at + footer_frame.consumed != footer_end) {
    throw ValidationError("binary trace: footer frame does not span to the "
                          "footer offset tail");
  }

  // Header frame right after the magic.
  const FrameRef header_frame =
      parse_frame_view(data_ + kMagicBytes, footer_at - kMagicBytes,
                       CheckpointKind::kTraceHeader, 4096);
  if (header_frame.consumed == 0) {
    throw ValidationError("binary trace: truncated header frame");
  }
  BinaryReader header(header_frame.payload, header_frame.payload_size);
  const std::uint32_t version = header.u32();
  if (version != kTraceFormatVersion) {
    throw ValidationError("binary trace: unsupported trace version " +
                          std::to_string(version) + " (this build reads version " +
                          std::to_string(kTraceFormatVersion) + ")");
  }
  const double capacity = header.f64();
  const std::uint64_t block_items_hint = header.u64();
  header.expect_end();
  if (!(capacity > 0.0) || !std::isfinite(capacity)) {
    throw ValidationError("binary trace: header capacity must be finite and > 0");
  }
  if (block_items_hint == 0 || block_items_hint > kMaxTraceBlockItems) {
    throw ValidationError("binary trace: header block-size hint " +
                          std::to_string(block_items_hint) + " out of range");
  }

  // Footer payload → TraceMeta + block index.
  BinaryReader footer(footer_frame.payload, footer_frame.payload_size);
  meta_.items = footer.u64();
  meta_.min_arrival = footer.f64();
  meta_.max_departure = footer.f64();
  meta_.capacity = footer.f64();
  meta_.digest = footer.u64();
  const std::size_t num_blocks = footer.count(6 * 8);
  if (meta_.capacity != capacity) {
    throw ValidationError("binary trace: footer capacity disagrees with header");
  }
  meta_.blocks.reserve(num_blocks);
  const std::size_t first_block = kMagicBytes + header_frame.consumed;
  std::uint64_t expected_offset = first_block;
  std::uint64_t indexed_items = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    TraceBlockMeta block;
    block.offset = footer.u64();
    block.items = footer.u64();
    block.min_id = footer.u64();
    block.max_id = footer.u64();
    block.min_arrival = footer.f64();
    block.max_departure = footer.f64();
    // Blocks tile the region between the header and the footer: each one
    // must start where the previous ended, so a hostile index can never
    // point two entries at overlapping bytes or skip unvalidated ranges.
    if (block.offset != expected_offset || block.offset >= footer_at) {
      throw ValidationError("binary trace: block " + std::to_string(b) +
                            " offset " + std::to_string(block.offset) +
                            " breaks the block tiling");
    }
    if (block.items == 0 || block.items > kMaxTraceBlockItems) {
      throw ValidationError("binary trace: block " + std::to_string(b) +
                            " item count " + std::to_string(block.items) +
                            " out of range");
    }
    // Peek only the frame header (first 24 bytes) to learn the block's
    // extent without touching its payload — skeleton parsing stays O(blocks).
    const std::size_t avail = footer_at - static_cast<std::size_t>(block.offset);
    if (avail < kFrameHeaderBytes) {
      throw ValidationError("binary trace: block " + std::to_string(b) +
                            " frame header truncated");
    }
    const std::uint64_t payload_size =
        get_u64_le(data_ + static_cast<std::size_t>(block.offset) + 16);
    if (payload_size > kMaxBlockPayload ||
        kFrameHeaderBytes + payload_size + kFrameChecksumBytes > avail) {
      throw ValidationError("binary trace: block " + std::to_string(b) +
                            " declared payload size " +
                            std::to_string(payload_size) + " overruns the file");
    }
    expected_offset =
        block.offset + kFrameHeaderBytes + payload_size + kFrameChecksumBytes;
    indexed_items += block.items;
    meta_.blocks.push_back(block);
  }
  footer.expect_end();
  if (expected_offset != footer_at) {
    throw ValidationError("binary trace: " +
                          std::to_string(footer_at - expected_offset) +
                          " unindexed bytes before the footer");
  }
  if (indexed_items != meta_.items) {
    throw ValidationError("binary trace: footer item count " +
                          std::to_string(meta_.items) +
                          " disagrees with the block index (" +
                          std::to_string(indexed_items) + ")");
  }
}

std::pair<const std::uint8_t*, std::size_t> BinaryTraceReader::block_payload(
    std::size_t b) const {
  if (b >= meta_.blocks.size()) {
    throw ValidationError("binary trace: block index " + std::to_string(b) +
                          " out of range");
  }
  const TraceBlockMeta& block = meta_.blocks[b];
  const auto at = static_cast<std::size_t>(block.offset);
  // parse_skeleton proved the blocks tile [header end, footer) exactly, so
  // this block's frame must consume precisely its tile — anything else means
  // the index and the frame header disagree about the frame's extent.
  const std::size_t tile_end =
      b + 1 < meta_.blocks.size()
          ? static_cast<std::size_t>(meta_.blocks[b + 1].offset)
          : static_cast<std::size_t>(footer_offset_);
  const std::size_t avail = tile_end - at;
  const FrameRef frame = parse_frame_view(data_ + at, avail,
                                          CheckpointKind::kTraceBlock,
                                          kMaxBlockPayload);
  if (frame.consumed != avail) {
    throw ValidationError("binary trace: block " + std::to_string(b) +
                          " frame size disagrees with the footer index");
  }
  return {frame.payload, frame.payload_size};
}

void BinaryTraceReader::read_block(std::size_t b, std::vector<Item>& out) const {
  out.clear();
  const auto [payload, payload_size] = block_payload(b);
  const TraceBlockMeta& block = meta_.blocks[b];
  BinaryReader reader(payload, payload_size);

  const std::uint64_t count = reader.u64();
  if (count != block.items) {
    throw ValidationError("binary trace: block " + std::to_string(b) +
                          " count " + std::to_string(count) +
                          " disagrees with the footer index (" +
                          std::to_string(block.items) + ")");
  }

  const auto column = [&reader](const char* name) {
    const std::uint64_t bytes = reader.u64();
    if (bytes > reader.remaining()) {
      throw ValidationError("binary trace: " + std::string(name) +
                            " column length " + std::to_string(bytes) +
                            " exceeds the block payload");
    }
    const std::uint8_t* data = reader.raw(static_cast<std::size_t>(bytes));
    return DeltaColumnReader(data, static_cast<std::size_t>(bytes));
  };

  DeltaColumnReader ids = column("id");
  const std::uint8_t* sizes = reader.raw(static_cast<std::size_t>(count) * 8);
  DeltaColumnReader arrivals = column("arrival");
  DeltaColumnReader departures = column("departure");
  reader.expect_end();

  out.reserve(static_cast<std::size_t>(count));
  const std::string where = "binary trace block " + std::to_string(b);
  for (std::uint64_t i = 0; i < count; ++i) {
    Item item;
    item.id = ids.next();
    item.size = double_of(get_u64_le(sizes + i * 8));
    item.active.left = double_of(arrivals.next());
    item.active.right = double_of(departures.next());
    validate_item(item, meta_.capacity, where);
    if (item.id < block.min_id || item.id > block.max_id ||
        item.active.left < block.min_arrival ||
        item.active.right > block.max_departure) {
      throw ValidationError(where + ": item " + std::to_string(item.id) +
                            " falls outside the footer's block ranges");
    }
    out.push_back(item);
  }
  if (!ids.exhausted() || !arrivals.exhausted() || !departures.exhausted()) {
    throw ValidationError(where + ": trailing bytes in a varint column");
  }
}

ItemList BinaryTraceReader::read_all() const {
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(meta_.items));
  std::uint64_t digest = fnv1a64(nullptr, 0);
  for_each_block([&](std::span<const Item> block) {
    for (const Item& item : block) digest = trace_digest_mix(digest, item);
    items.insert(items.end(), block.begin(), block.end());
  });
  // Same uniqueness contract as the CSV reader, but via a sort instead of a
  // hash set: one cache-friendly O(n log n) pass over the ids is ~5x cheaper
  // per item than 50k unordered_set inserts on the ingest hot path (the 5x
  // binary-vs-CSV throughput gate in CI watches this).
  std::vector<ItemId> ids;
  ids.reserve(items.size());
  for (const Item& item : items) ids.push_back(item.id);
  std::sort(ids.begin(), ids.end());
  const auto dup = std::adjacent_find(ids.begin(), ids.end());
  if (dup != ids.end()) {
    throw ValidationError("binary trace: duplicate item id " +
                          std::to_string(*dup));
  }
  if (digest != meta_.digest) {
    throw ValidationError("binary trace: content digest mismatch (footer says " +
                          std::to_string(meta_.digest) + ", blocks hash to " +
                          std::to_string(digest) + ")");
  }
  return ItemList(std::move(items), meta_.capacity);
}

std::vector<StreamEvent> BinaryTraceReader::stream_events() const {
  std::vector<StreamEvent> events;
  events.reserve(static_cast<std::size_t>(meta_.items) * 2);
  for_each_block([&](std::span<const Item> block) {
    for (const Item& item : block) {
      events.push_back({StreamEvent::Kind::kArrival, item.id, item.size,
                        item.active.left});
      events.push_back({StreamEvent::Kind::kDeparture, item.id, 0.0,
                        item.active.right});
    }
  });
  // The engine's canonical event order (ItemList::schedule()): primary key
  // time, departures before arrivals at equal times, ties in id order —
  // digest parity with the CSV path depends on matching it exactly.
  std::sort(events.begin(), events.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.kind != b.kind) {
                return a.kind == StreamEvent::Kind::kDeparture;
              }
              return a.id < b.id;
            });
  return events;
}

}  // namespace mutdbp::trace
