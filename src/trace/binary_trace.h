// MUTDBPT1: the binary columnar on-disk trace format, with a streaming
// writer and an mmap zero-copy reader (docs/traces.md).
//
// CSV read_trace is row-by-row text parsing — fine for demo traces, a wall
// at the hundreds-of-millions-of-events scale the ROADMAP targets. This
// format stores the same items column-wise and replays as a sequential
// scan of checksummed blocks:
//
//   offset 0   magic            "MUTDBPT1" (8 bytes)
//   frame      kTraceHeader     trace version, capacity, block-size hint
//   frame*     kTraceBlock      columnar SoA block (<= block_items items)
//   frame      kTraceFooter     counts, min/max times, digest, block index
//   tail       footer offset    u64 LE byte offset of the footer frame
//
// Every frame is a MUTDBPC1 checkpoint frame (core/checkpoint.h) — magic,
// version, kind, length, FNV-1a checksum — so truncation and bit flips
// surface as clean ValidationErrors exactly like corrupted checkpoints (the
// fuzz suite enforces this, tests/fuzz_test.cpp). Inside a block the
// columns are:
//
//   u64  count
//   u64  id_bytes        + zigzag-delta varints of the id column
//   f64* sizes           raw IEEE-754 bit patterns, count * 8 bytes
//   u64  arrival_bytes   + zigzag-delta varints of arrival bit patterns
//   u64  departure_bytes + zigzag-delta varints of departure bit patterns
//
// (trace/codec.h; delta chains restart per block, so blocks decode
// independently). The footer's per-block index (offset, count, id and time
// ranges) makes metadata queries O(1) without touching any block, and lets
// the reader hand out one block at a time — a replay never has to
// materialize the full ItemList.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/item_list.h"
#include "core/streaming.h"

namespace mutdbp::trace {

/// Current MUTDBPT1 format version (carried in the header frame's payload,
/// on top of the frame machinery's own version). Bump on layout changes;
/// readers reject other versions with a ValidationError naming both.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// The 8-byte file magic; also what detect_trace_format() sniffs.
inline constexpr char kTraceMagic[8] = {'M', 'U', 'T', 'D', 'B', 'P', 'T', '1'};

/// Default items per block: big enough to amortize frame overhead, small
/// enough that a block decode stays cache-friendly.
inline constexpr std::size_t kDefaultTraceBlockItems = 4096;

/// Hard per-block cap enforced by reader and writer: a hostile count field
/// can never drive a larger allocation than this.
inline constexpr std::uint64_t kMaxTraceBlockItems = 1u << 22;

/// One entry of the footer's block index.
struct TraceBlockMeta {
  std::uint64_t offset = 0;  ///< file offset of the block's frame
  std::uint64_t items = 0;
  ItemId min_id = 0;
  ItemId max_id = 0;
  Time min_arrival = 0.0;
  Time max_departure = 0.0;
};

/// Footer metadata: everything about a trace that is knowable in O(1).
struct TraceMeta {
  std::uint64_t items = 0;
  double capacity = 1.0;
  Time min_arrival = 0.0;    ///< 0 when the trace is empty
  Time max_departure = 0.0;  ///< 0 when the trace is empty
  /// FNV-1a over every item tuple (id, size, arrival, departure bit
  /// patterns) in file order — the same digest trace_digest() computes
  /// from an ItemList, so CSV and binary content can be compared without
  /// a full item-by-item diff.
  std::uint64_t digest = 0;
  std::vector<TraceBlockMeta> blocks;
};

/// Content digest of an item sequence (see TraceMeta::digest).
[[nodiscard]] std::uint64_t trace_digest(const ItemList& items);
/// Incremental form: fold one item into a running digest (seed with
/// fnv1a64(nullptr, 0)).
[[nodiscard]] std::uint64_t trace_digest_mix(std::uint64_t h, const Item& item);

struct BinaryTraceWriterOptions {
  double capacity = 1.0;
  std::size_t block_items = kDefaultTraceBlockItems;
};

/// Streaming writer: items go out block by block as they are add()ed, so a
/// converter never holds more than one block in memory. finish() writes the
/// footer and tail; the destructor does NOT finish (an abandoned writer
/// leaves a truncated file the reader rejects, never a silently short one).
class BinaryTraceWriter {
 public:
  BinaryTraceWriter(std::ostream& out, BinaryTraceWriterOptions options = {});

  /// Validates like ItemList does (finite values, size in (0, capacity],
  /// departure after arrival) so every written trace is readable.
  void add(const Item& item);

  /// Flushes the open block, writes footer + tail, and returns the final
  /// metadata. Must be called exactly once, after which add() throws.
  const TraceMeta& finish();

  [[nodiscard]] std::uint64_t items_written() const noexcept {
    return meta_.items + block_.size();
  }

 private:
  void flush_block();

  std::ostream& out_;
  BinaryTraceWriterOptions options_;
  std::vector<Item> block_;  ///< buffered items of the open block
  TraceMeta meta_;
  std::uint64_t offset_ = 0;  ///< bytes written so far
  std::uint64_t digest_;
  bool finished_ = false;
};

/// Writes `items` as one binary trace file (convenience over the streaming
/// writer; the ItemList's capacity is recorded in the file).
TraceMeta write_binary_trace_file(const std::string& path, const ItemList& items,
                                  std::size_t block_items = kDefaultTraceBlockItems);

/// mmap-based zero-copy reader. Construction validates magic, header,
/// footer, and the block index (O(blocks), touching no block data); block
/// payloads are checksum-verified and decoded on access, straight out of
/// the mapping. Any corruption — truncation, bit flips, hostile lengths,
/// garbage footers — throws ValidationError, never crashes or misparses.
class BinaryTraceReader {
 public:
  /// Maps `path` read-only (falls back to buffered reading when mmap is
  /// unavailable for the file) and validates the skeleton.
  [[nodiscard]] static BinaryTraceReader open(const std::string& path);
  /// Reader over an in-memory image (takes ownership). Fuzzers and tests.
  [[nodiscard]] static BinaryTraceReader from_bytes(std::vector<std::uint8_t> bytes);
  /// Reader over borrowed bytes; the caller keeps them alive.
  [[nodiscard]] static BinaryTraceReader from_view(const std::uint8_t* data,
                                                   std::size_t size);

  /// O(1) metadata straight from the footer.
  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return meta_.blocks.size();
  }

  /// Decodes block `b` into `out` (cleared first). The vector is reusable
  /// across calls — the block-at-a-time replay loop allocates once.
  void read_block(std::size_t b, std::vector<Item>& out) const;

  /// Streams every block through `fn(std::span<const Item>)` with one
  /// reusable buffer: replaying never materializes the full ItemList.
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    std::vector<Item> buffer;
    for (std::size_t b = 0; b < meta_.blocks.size(); ++b) {
      read_block(b, buffer);
      fn(std::span<const Item>(buffer));
    }
  }

  /// Full decode into a validated ItemList (capacity from the file).
  /// Rejects duplicate item ids exactly like the CSV reader.
  [[nodiscard]] ItemList read_all() const;

  /// The canonical event schedule as StreamEvents — primary key time,
  /// departures before arrivals at equal times, ties in id order (exactly
  /// ItemList::schedule()) — built straight from the mapped columns. This
  /// is what mutdbp_client streams to the daemon without a CSV parse or an
  /// ItemList in the loop.
  [[nodiscard]] std::vector<StreamEvent> stream_events() const;

 private:
  BinaryTraceReader(std::shared_ptr<const void> holder, const std::uint8_t* data,
                    std::size_t size);

  /// Parses + validates magic, header frame, footer frame, block index.
  void parse_skeleton();
  /// Validated zero-copy view of block `b`'s frame payload.
  [[nodiscard]] std::pair<const std::uint8_t*, std::size_t> block_payload(
      std::size_t b) const;

  std::shared_ptr<const void> holder_;  ///< keeps the mapping/bytes alive
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t footer_offset_ = 0;
  TraceMeta meta_;
};

}  // namespace mutdbp::trace
