#include "trace/format.h"

#include <cstring>
#include <fstream>
#include <string>

#include "core/error.h"
#include "trace/binary_trace.h"
#include "workload/trace.h"

namespace mutdbp::trace {

TraceFormat parse_trace_format(std::string_view value) {
  if (value == "auto") return TraceFormat::kAuto;
  if (value == "csv") return TraceFormat::kCsv;
  if (value == "binary") return TraceFormat::kBinary;
  throw ValidationError("trace format '" + std::string(value) +
                        "' is not one of auto, csv, binary");
}

std::string_view to_string(TraceFormat format) noexcept {
  switch (format) {
    case TraceFormat::kAuto: return "auto";
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kBinary: return "binary";
  }
  return "?";
}

TraceFormat detect_trace_format(const std::string& path, TraceFormat requested) {
  if (requested != TraceFormat::kAuto) return requested;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ValidationError("trace: cannot open " + path);
  char head[sizeof(kTraceMagic)] = {};
  in.read(head, sizeof(head));
  const bool is_binary =
      static_cast<std::size_t>(in.gcount()) == sizeof(head) &&
      std::memcmp(head, kTraceMagic, sizeof(head)) == 0;
  return is_binary ? TraceFormat::kBinary : TraceFormat::kCsv;
}

ItemList read_trace_any(const std::string& path, TraceFormat format,
                        double capacity) {
  switch (detect_trace_format(path, format)) {
    case TraceFormat::kCsv:
      return workload::read_trace_file(path, capacity == 0.0 ? 1.0 : capacity);
    case TraceFormat::kBinary: {
      const BinaryTraceReader reader = BinaryTraceReader::open(path);
      if (capacity != 0.0 && capacity != reader.meta().capacity) {
        throw ValidationError(
            "trace: requested capacity " + std::to_string(capacity) +
            " disagrees with the capacity recorded in " + path + " (" +
            std::to_string(reader.meta().capacity) + ")");
      }
      return reader.read_all();
    }
    case TraceFormat::kAuto:
      break;  // unreachable: detect_trace_format never returns kAuto
  }
  throw ValidationError("trace: unresolved format for " + path);
}

}  // namespace mutdbp::trace
