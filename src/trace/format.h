// Trace format selection: the `--format auto|csv|binary` plumbing shared by
// trace_replay, trace_convert, mutdbp_client, and the benches.
#pragma once

#include <string>
#include <string_view>

#include "core/item_list.h"

namespace mutdbp::trace {

enum class TraceFormat {
  kAuto,    ///< sniff the file's first bytes (MUTDBPT1 magic → binary)
  kCsv,     ///< workload::read_trace / write_trace text format
  kBinary,  ///< MUTDBPT1 columnar format (binary_trace.h)
};

/// Parses a --format flag value ("auto", "csv", "binary"); throws
/// ValidationError on anything else, naming the accepted spellings.
[[nodiscard]] TraceFormat parse_trace_format(std::string_view value);

[[nodiscard]] std::string_view to_string(TraceFormat format) noexcept;

/// Resolves kAuto by sniffing `path`'s first 8 bytes for the MUTDBPT1
/// magic (anything else — including a short file — is CSV, matching the
/// text reader's row-level diagnostics). kCsv/kBinary pass through.
[[nodiscard]] TraceFormat detect_trace_format(const std::string& path,
                                              TraceFormat requested = TraceFormat::kAuto);

/// Reads `path` as `format` (kAuto sniffs first) into a validated ItemList.
/// CSV uses `capacity`; binary uses the capacity recorded in the file and
/// throws ValidationError if `capacity` is given (non-zero) and disagrees.
[[nodiscard]] ItemList read_trace_any(const std::string& path,
                                      TraceFormat format = TraceFormat::kAuto,
                                      double capacity = 0.0);

}  // namespace mutdbp::trace
