#include "workload/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/error.h"
#include "util/csv.h"
#include "util/rng.h"

namespace mutdbp::workload {

std::vector<Time> fault_times(const FaultScheduleSpec& spec) {
  if (!(spec.rate >= 0.0) || !std::isfinite(spec.rate)) {
    throw ValidationError("fault_times: rate must be finite and >= 0");
  }
  if (spec.rate > 0.0 && !(spec.horizon > 0.0)) {
    throw ValidationError("fault_times: positive rate needs a positive horizon");
  }
  if (!std::isfinite(spec.horizon) || spec.horizon < 0.0) {
    throw ValidationError("fault_times: horizon must be finite and >= 0");
  }
  std::vector<Time> times;
  for (const Time t : spec.fixed_times) {
    if (!std::isfinite(t) || t < 0.0) {
      throw ValidationError("fault_times: fixed fault time " + std::to_string(t) +
                            " must be finite and >= 0");
    }
    times.push_back(t);
  }
  if (spec.rate > 0.0) {
    Rng rng(spec.seed);
    // Poisson process: exponential inter-arrival gaps until the horizon.
    Time t = rng.exponential(spec.rate);
    while (t < spec.horizon) {
      times.push_back(t);
      t += rng.exponential(spec.rate);
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

void write_fault_trace(std::ostream& out, const std::vector<Time>& times) {
  out << "time\n";
  char buf[64];
  for (const Time t : times) {
    // %.17g round-trips doubles exactly.
    std::snprintf(buf, sizeof(buf), "%.17g\n", t);
    out << buf;
  }
}

void write_fault_trace_file(const std::string& path, const std::vector<Time>& times) {
  std::ofstream out(path);
  if (!out) throw ValidationError("write_fault_trace_file: cannot open " + path);
  write_fault_trace(out, times);
}

std::vector<Time> read_fault_trace(std::istream& in) {
  const CsvDocument doc = read_csv(in);
  std::vector<Time> times;
  times.reserve(doc.rows.size());
  std::size_t line = 0;
  for (const auto& row : doc.rows) {
    ++line;
    const std::string context = "fault trace row " + std::to_string(line);
    if (row.size() != 1) {
      throw ValidationError(context + ": expected 1 field (time)");
    }
    const Time t = parse_double(row[0], context);
    if (!std::isfinite(t) || t < 0.0) {
      throw ValidationError(context + ": fault time '" + row[0] +
                            "' must be finite and >= 0");
    }
    times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<Time> read_fault_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ValidationError("read_fault_trace_file: cannot open " + path);
  return read_fault_trace(in);
}

}  // namespace mutdbp::workload
