// Adversarial instance families from the paper and its companion
// literature, each returned together with its closed-form predictions so
// benches and tests can check the simulated costs exactly.
#pragma once

#include <cstddef>

#include "core/item_list.h"

namespace mutdbp::workload {

/// An instance plus the closed-form costs the construction guarantees.
struct AdversarialInstance {
  ItemList items;
  double predicted_algorithm_cost = 0.0;  ///< cost of the targeted algorithm
  double predicted_opt_cost = 0.0;        ///< cost of the described offline packing
  /// Set when all sizes are dyadic rationals and the discriminating gaps are
  /// below the default fit epsilon, in which case run with fit_epsilon = 0.
  double recommended_fit_epsilon = 1e-9;

  [[nodiscard]] double predicted_ratio() const noexcept {
    return predicted_algorithm_cost / predicted_opt_cost;
  }
};

/// Section VIII construction (Next Fit lower bound). n >= 3 pairs arrive in
/// sequence at time 0; pair = (size 1/2, size 1/n). The size-1/2 items
/// depart at time 1, the size-1/n items at time µ. Next Fit opens one bin
/// per pair (cost nµ); the optimal packing uses ceil(n/2) bins for the
/// size-1/2 items plus one bin for all size-1/n items (cost n/2 + µ).
/// Ratio nµ/(n/2 + µ) -> 2µ as n -> ∞.
[[nodiscard]] AdversarialInstance next_fit_lower_bound_instance(std::size_t n, double mu);

/// The pinning family realizing the Ω(µ) lower bound against every Any Fit
/// algorithm (and in particular First Fit — showing Theorem 1's µ term is
/// real). Interleaved at time 0: big_i of size 1 - 2^-(i+2) (duration 1)
/// and pin_i of size 2^-(i+2) (duration µ). pin_i fits only big_i's bin
/// (every earlier bin is exactly full), so any Any Fit algorithm keeps all
/// n bins open until µ: cost nµ. The optimal packing uses one bin per big
/// item for time 1 and a single bin for all pins: cost n + µ.
/// Ratio nµ/(n + µ) -> µ. Sizes are dyadic: run with fit_epsilon 0.
/// Requires n <= 48 so the discriminating gaps stay well above 2^-52.
[[nodiscard]] AdversarialInstance any_fit_pinning_instance(std::size_t n, double mu);

/// A decoy family separating Best Fit from First Fit (the paper states Best
/// Fit's ratio is unbounded for any µ; this family drives Best Fit to Θ(µ)
/// while First Fit stays O(1) on the very same instance). A collector bin
/// holds an anchor of size 1/8 for the whole horizon. Round i (at time
/// 1.5·i) brings bait_i of size 1 - 2^-(i+4) (duration 1, fits in no open
/// bin) and then pin_i of size 2^-(i+4) (duration µ). The pin fits both the
/// collector and the bait's bin; Best Fit picks the fuller bait bin and
/// strands the pin there for µ, First Fit picks the earlier collector.
/// predicted_algorithm_cost is the Best Fit cost; predicted_opt_cost is the
/// cost of the packing that mirrors First Fit's behaviour.
/// Requires rounds <= 44 (dyadic sizes; run with fit_epsilon 0) and
/// mu > 2.5 (the pin must outlive its round).
[[nodiscard]] AdversarialInstance best_fit_decoy_instance(std::size_t rounds, double mu);

}  // namespace mutdbp::workload
