#include "workload/cluster.h"

#include <stdexcept>

#include "core/error.h"
#include "util/rng.h"

namespace mutdbp::workload {

ItemList generate_cluster(const ClusterWorkloadSpec& spec) {
  if (spec.vm_sizes.empty() || spec.vm_sizes.size() != spec.vm_size_weights.size()) {
    throw ValidationError("generate_cluster: sizes/weights mismatch");
  }
  for (const double s : spec.vm_sizes) {
    if (!(s > 0.0) || s > 1.0) {
      throw ValidationError("generate_cluster: vm sizes must be in (0, 1]");
    }
  }
  if (!(spec.min_lifetime > 0.0) || spec.min_lifetime >= spec.max_lifetime) {
    throw ValidationError("generate_cluster: bad lifetime range");
  }
  if (spec.burst_probability < 0.0 || spec.burst_probability > 1.0) {
    throw ValidationError("generate_cluster: burst_probability in [0, 1]");
  }

  double total_weight = 0.0;
  for (const double w : spec.vm_size_weights) {
    if (w < 0.0) throw ValidationError("generate_cluster: negative weight");
    total_weight += w;
  }
  if (!(total_weight > 0.0)) {
    throw ValidationError("generate_cluster: all weights are zero");
  }

  Rng rng(spec.seed);
  auto draw_size = [&] {
    const double u = rng.next_double() * total_weight;
    double acc = 0.0;
    for (std::size_t i = 0; i < spec.vm_sizes.size(); ++i) {
      acc += spec.vm_size_weights[i];
      if (u < acc) return spec.vm_sizes[i];
    }
    return spec.vm_sizes.back();
  };

  std::vector<Item> vms;
  vms.reserve(spec.num_vms);
  double clock = 0.0;
  std::size_t burst_remaining = 0;
  for (ItemId id = 0; id < spec.num_vms; ++id) {
    if (burst_remaining > 0) {
      --burst_remaining;  // burst members share the arrival instant
    } else {
      clock += rng.exponential(spec.base_rate_per_hour);
      if (rng.bernoulli(spec.burst_probability)) {
        burst_remaining = spec.burst_size > 0 ? spec.burst_size - 1 : 0;
      }
    }
    const double lifetime =
        rng.bounded_pareto(spec.pareto_shape, spec.min_lifetime, spec.max_lifetime);
    vms.push_back(make_item(id, draw_size(), clock, clock + lifetime));
  }
  return ItemList(std::move(vms));
}

}  // namespace mutdbp::workload
