// Server-failure schedules: deterministic traces of the instants at which a
// rented server crashes. A schedule is only a sorted list of times — *which*
// server dies at each instant is the injector's decision (see
// cloud/faults.h), so the same schedule can stress different victim
// policies and algorithms.
//
// Like item workloads, a (spec, seed) pair names exactly one schedule on
// every platform (util/rng.h), and schedules round-trip through a CSV
// trace (one `time` column, '#' comments) for replaying recorded outages.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/interval.h"

namespace mutdbp::workload {

struct FaultScheduleSpec {
  /// Explicit fault instants (deterministic "kill at t" faults). May be
  /// unsorted; the generated schedule is always sorted.
  std::vector<Time> fixed_times;
  /// Additional Poisson faults at this rate over [0, horizon). Zero means
  /// none (a spec with no fixed times and rate 0 is the fault-free schedule).
  double rate = 0.0;
  Time horizon = 0.0;
  std::uint64_t seed = 1;
};

/// Generates the sorted fault-time schedule for `spec`. Throws
/// ValidationError for negative/non-finite times, rate < 0, or a positive
/// rate with a non-positive horizon.
[[nodiscard]] std::vector<Time> fault_times(const FaultScheduleSpec& spec);

/// Writes a schedule as CSV (header `time`, %.17g — exact round-trip).
void write_fault_trace(std::ostream& out, const std::vector<Time>& times);
void write_fault_trace_file(const std::string& path, const std::vector<Time>& times);

/// Reads a schedule; rejects non-finite or negative times with row-numbered
/// ValidationErrors and returns the times sorted.
[[nodiscard]] std::vector<Time> read_fault_trace(std::istream& in);
[[nodiscard]] std::vector<Time> read_fault_trace_file(const std::string& path);

}  // namespace mutdbp::workload
