// Item trace persistence: CSV with columns id,size,arrival,departure.
// Lines beginning with '#' are comments; a header row is optional.
#pragma once

#include <iosfwd>
#include <string>

#include "core/item_list.h"

namespace mutdbp::workload {

/// Writes `items` as CSV (with a header row).
void write_trace(std::ostream& out, const ItemList& items);
void write_trace_file(const std::string& path, const ItemList& items);

/// Reads a trace; validates sizes/durations like ItemList does, and
/// additionally rejects malformed rows with a row-numbered ValidationError:
/// non-integer ids, duplicate item ids, and NaN/inf sizes or times (which
/// parse as numbers but would corrupt every derived quantity downstream).
[[nodiscard]] ItemList read_trace(std::istream& in, double capacity = 1.0);
[[nodiscard]] ItemList read_trace_file(const std::string& path, double capacity = 1.0);

}  // namespace mutdbp::workload
