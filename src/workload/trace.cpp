#include "workload/trace.h"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/error.h"
#include "util/csv.h"

namespace mutdbp::workload {

// Emitting max_digits10 significant digits makes text round-trips bit-exact
// for every finite double: read_trace(write_trace(items)) reproduces the
// identical IEEE-754 bit patterns, which the trace digests
// (trace/binary_trace.h) and the binary<->CSV conversion property test rely
// on. The static_assert pins the %.*g precision to the IEEE-754 binary64
// guarantee rather than a magic 17.
static_assert(std::numeric_limits<double>::max_digits10 == 17,
              "write_trace precision assumes IEEE-754 binary64");

void write_trace(std::ostream& out, const ItemList& items) {
  constexpr int kPrecision = std::numeric_limits<double>::max_digits10;
  out << "id,size,arrival,departure\n";
  char buf[160];
  for (const auto& item : items) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%.*g,%.*g,%.*g\n", item.id,
                  kPrecision, item.size, kPrecision, item.arrival(),
                  kPrecision, item.departure());
    out << buf;
  }
}

void write_trace_file(const std::string& path, const ItemList& items) {
  std::ofstream out(path);
  if (!out) throw ValidationError("write_trace_file: cannot open " + path);
  write_trace(out, items);
}

namespace {

ItemId parse_item_id(const std::string& field, const std::string& context) {
  ItemId id = 0;
  const auto* begin = field.data();
  const auto* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, id);
  if (ec != std::errc() || ptr != end) {
    throw ValidationError(context + ": item id '" + field +
                          "' is not a non-negative integer");
  }
  return id;
}

double parse_finite(const std::string& field, const std::string& context,
                    const char* what) {
  // parse_double accepts "nan"/"inf" spellings (std::from_chars does); a
  // trace containing them would silently corrupt every derived quantity
  // (span, usage times, billing), so reject non-finite values here with the
  // row number. parse_double lives in the util layer (below core/error.h),
  // so its bare std::invalid_argument is translated to keep read_trace's
  // documented all-ValidationError contract.
  double value = 0.0;
  try {
    value = parse_double(field, context);
  } catch (const std::invalid_argument& e) {
    throw ValidationError(e.what());
  }
  if (!std::isfinite(value)) {
    throw ValidationError(context + ": " + what + " '" + field +
                          "' is not finite");
  }
  return value;
}

}  // namespace

ItemList read_trace(std::istream& in, double capacity) {
  const CsvDocument doc = read_csv(in);
  std::vector<Item> items;
  items.reserve(doc.rows.size());
  std::unordered_set<ItemId> seen;
  seen.reserve(doc.rows.size());
  std::size_t line = 0;
  for (const auto& row : doc.rows) {
    ++line;
    if (row.size() != 4) {
      throw ValidationError("trace row " + std::to_string(line) +
                                  ": expected 4 fields (id,size,arrival,departure)");
    }
    const std::string context = "trace row " + std::to_string(line);
    const ItemId id = parse_item_id(row[0], context);
    const double size = parse_finite(row[1], context, "size");
    const double arrival = parse_finite(row[2], context, "arrival");
    const double departure = parse_finite(row[3], context, "departure");
    if (!seen.insert(id).second) {
      throw ValidationError(context + ": duplicate item id " + std::to_string(id));
    }
    items.push_back(make_item(id, size, arrival, departure));
  }
  return ItemList(std::move(items), capacity);
}

ItemList read_trace_file(const std::string& path, double capacity) {
  std::ifstream in(path);
  if (!in) throw ValidationError("read_trace_file: cannot open " + path);
  return read_trace(in, capacity);
}

}  // namespace mutdbp::workload
