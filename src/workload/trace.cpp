#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace mutdbp::workload {

void write_trace(std::ostream& out, const ItemList& items) {
  out << "id,size,arrival,departure\n";
  char buf[160];
  for (const auto& item : items) {
    // %.17g round-trips doubles exactly.
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%.17g,%.17g,%.17g\n", item.id,
                  item.size, item.arrival(), item.departure());
    out << buf;
  }
}

void write_trace_file(const std::string& path, const ItemList& items) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, items);
}

ItemList read_trace(std::istream& in, double capacity) {
  const CsvDocument doc = read_csv(in);
  std::vector<Item> items;
  items.reserve(doc.rows.size());
  std::size_t line = 0;
  for (const auto& row : doc.rows) {
    ++line;
    if (row.size() != 4) {
      throw std::invalid_argument("trace row " + std::to_string(line) +
                                  ": expected 4 fields (id,size,arrival,departure)");
    }
    const std::string context = "trace row " + std::to_string(line);
    const auto id = static_cast<ItemId>(parse_double(row[0], context));
    const double size = parse_double(row[1], context);
    const double arrival = parse_double(row[2], context);
    const double departure = parse_double(row[3], context);
    items.push_back(make_item(id, size, arrival, departure));
  }
  return ItemList(std::move(items), capacity);
}

ItemList read_trace_file(const std::string& path, double capacity) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in, capacity);
}

}  // namespace mutdbp::workload
