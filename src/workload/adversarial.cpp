#include "workload/adversarial.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/error.h"

namespace mutdbp::workload {

AdversarialInstance next_fit_lower_bound_instance(std::size_t n, double mu) {
  if (n < 3) throw ValidationError("next_fit_lower_bound_instance: n >= 3");
  if (mu < 1.0) throw ValidationError("next_fit_lower_bound_instance: mu >= 1");

  std::vector<Item> items;
  items.reserve(2 * n);
  const double small = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Pair i arrives in sequence at time 0 (ids define the arrival order).
    items.push_back(make_item(2 * i, 0.5, 0.0, 1.0));        // departs at 1
    items.push_back(make_item(2 * i + 1, small, 0.0, mu));   // departs at µ
  }

  AdversarialInstance instance{ItemList(std::move(items))};
  instance.predicted_algorithm_cost = static_cast<double>(n) * mu;
  instance.predicted_opt_cost =
      std::ceil(static_cast<double>(n) / 2.0) + mu;
  return instance;
}

AdversarialInstance any_fit_pinning_instance(std::size_t n, double mu) {
  if (n < 1 || n > 48) {
    throw ValidationError("any_fit_pinning_instance: 1 <= n <= 48");
  }
  if (mu < 1.0) throw ValidationError("any_fit_pinning_instance: mu >= 1");

  std::vector<Item> items;
  items.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = std::ldexp(1.0, -static_cast<int>(i) - 2);  // 2^-(i+2)
    items.push_back(make_item(2 * i, 1.0 - gap, 0.0, 1.0));  // big_i, duration 1
    items.push_back(make_item(2 * i + 1, gap, 0.0, mu));     // pin_i, duration µ
  }

  AdversarialInstance instance{ItemList(std::move(items))};
  instance.predicted_algorithm_cost = static_cast<double>(n) * mu;
  instance.predicted_opt_cost = static_cast<double>(n) + mu;
  instance.recommended_fit_epsilon = 0.0;  // dyadic sizes, gaps below 1e-9
  return instance;
}

AdversarialInstance best_fit_decoy_instance(std::size_t rounds, double mu) {
  if (rounds < 1 || rounds > 44) {
    throw ValidationError("best_fit_decoy_instance: 1 <= rounds <= 44");
  }
  const double last_pin_arrival = 1.5 * static_cast<double>(rounds - 1) + 0.5;
  if (!(last_pin_arrival < mu)) {
    throw ValidationError(
        "best_fit_decoy_instance: need 1.5*(rounds-1) + 0.5 < mu so every pin "
        "arrives while the collector anchor is alive");
  }

  std::vector<Item> items;
  items.reserve(1 + 2 * rounds);
  items.push_back(make_item(0, 0.125, 0.0, mu));  // collector anchor
  for (std::size_t i = 0; i < rounds; ++i) {
    const double t = 1.5 * static_cast<double>(i);
    const double gap = std::ldexp(1.0, -static_cast<int>(i) - 4);  // 2^-(i+4)
    items.push_back(make_item(1 + 2 * i, 1.0 - gap, t, t + 1.0));     // bait_i
    items.push_back(make_item(2 + 2 * i, gap, t + 0.5, t + 0.5 + mu));  // pin_i
  }

  AdversarialInstance instance{ItemList(std::move(items))};
  const auto k = static_cast<double>(rounds);
  // Best Fit strands every pin with its bait: collector open [0, µ), each
  // bait bin open [t_i, t_i + 0.5 + µ).
  instance.predicted_algorithm_cost = mu + k * (mu + 0.5);
  // First Fit's packing (pins join the collector, bait bins live 1 each) is
  // a concrete offline-feasible packing, hence an upper bound on OPT.
  instance.predicted_opt_cost = (last_pin_arrival + mu) + k;
  instance.recommended_fit_epsilon = 0.0;  // dyadic sizes
  return instance;
}

}  // namespace mutdbp::workload
