// Synthetic VM-cluster workload, standing in for production cloud traces
// (which are not available offline). Shapes mirror what published cluster
// traces consistently show:
//   * discrete VM sizes at binary fractions of a server (1/8 ... 1),
//     smaller sizes far more common,
//   * heavy-tailed lifetimes (bounded Pareto): most VMs are short, a fat
//     tail runs orders of magnitude longer — exactly the high-µ regime the
//     paper's analysis targets,
//   * bursty arrivals: a Poisson base with occasional batch spikes
//     (deployments).
#pragma once

#include <cstdint>
#include <vector>

#include "core/item_list.h"

namespace mutdbp::workload {

struct ClusterWorkloadSpec {
  std::size_t num_vms = 5000;
  std::uint64_t seed = 11;

  /// VM size catalogue (fraction of a server) and relative frequencies.
  std::vector<double> vm_sizes{0.125, 0.25, 0.5, 1.0};
  std::vector<double> vm_size_weights{8.0, 4.0, 2.0, 1.0};

  /// Lifetime: bounded Pareto(shape) on [min_lifetime, max_lifetime] hours.
  double pareto_shape = 1.1;
  double min_lifetime = 0.25;
  double max_lifetime = 168.0;  ///< one week; µ = max/min = 672 by default

  /// Arrivals: Poisson base rate plus deployment bursts.
  double base_rate_per_hour = 40.0;
  double burst_probability = 0.02;  ///< per arrival: start a batch burst
  std::size_t burst_size = 25;
};

[[nodiscard]] ItemList generate_cluster(const ClusterWorkloadSpec& spec);

}  // namespace mutdbp::workload
