// Random workload generation. A (spec, seed) pair deterministically names a
// workload on every platform (see util/rng.h).
#pragma once

#include <cstdint>
#include <vector>

#include "core/item_list.h"

namespace mutdbp::workload {

enum class ArrivalProcess {
  kPoisson,   ///< exponential inter-arrival times with rate `arrival_rate`
  kUniform,   ///< arrivals uniform over [0, horizon)
  kBatched,   ///< batches of `batch_size` at integer multiples of 1/rate
};

enum class SizeDistribution {
  kUniform,       ///< uniform in [size_min, size_max]
  kConstant,      ///< size_min
  kBimodal,       ///< small uniform [size_min, 0.3] or large uniform [0.5, size_max]
  kDiscrete,      ///< uniform over size_choices
  kBoundedPareto, ///< bounded Pareto(alpha) on [size_min, size_max]
};

enum class DurationDistribution {
  kUniform,           ///< uniform in [duration_min, duration_max]
  kBimodal,           ///< duration_min or duration_max, fifty-fifty
  kLogNormalClipped,  ///< lognormal clipped into [duration_min, duration_max]
  kExponentialClipped ///< duration_min + Exp(1), clipped at duration_max
};

struct RandomWorkloadSpec {
  std::size_t num_items = 1000;
  std::uint64_t seed = 1;
  double capacity = 1.0;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double arrival_rate = 1.0;  ///< items per unit time (Poisson/Batched)
  double horizon = 100.0;     ///< kUniform only
  std::size_t batch_size = 4; ///< kBatched only

  SizeDistribution size_dist = SizeDistribution::kUniform;
  double size_min = 0.05;
  double size_max = 1.0;
  std::vector<double> size_choices;  ///< kDiscrete only
  double pareto_alpha = 1.5;

  DurationDistribution duration_dist = DurationDistribution::kUniform;
  double duration_min = 1.0;
  double duration_max = 4.0;  ///< duration_max / duration_min bounds µ
  double lognormal_sigma = 0.75;
};

[[nodiscard]] ItemList generate(const RandomWorkloadSpec& spec);

}  // namespace mutdbp::workload
