#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/error.h"
#include "util/rng.h"

namespace mutdbp::workload {
namespace {

double draw_size(const RandomWorkloadSpec& spec, Rng& rng) {
  switch (spec.size_dist) {
    case SizeDistribution::kUniform:
      return rng.uniform(spec.size_min, spec.size_max);
    case SizeDistribution::kConstant:
      return spec.size_min;
    case SizeDistribution::kBimodal:
      return rng.bernoulli(0.5) ? rng.uniform(spec.size_min, std::min(0.3, spec.size_max))
                                : rng.uniform(std::max(0.5, spec.size_min), spec.size_max);
    case SizeDistribution::kDiscrete:
      if (spec.size_choices.empty()) {
        throw ValidationError("kDiscrete requires non-empty size_choices");
      }
      return spec.size_choices[rng.index(spec.size_choices.size())];
    case SizeDistribution::kBoundedPareto:
      return rng.bounded_pareto(spec.pareto_alpha, spec.size_min, spec.size_max);
  }
  throw std::logic_error("unknown size distribution");
}

double draw_duration(const RandomWorkloadSpec& spec, Rng& rng) {
  const double lo = spec.duration_min;
  const double hi = spec.duration_max;
  switch (spec.duration_dist) {
    case DurationDistribution::kUniform:
      return rng.uniform(lo, hi);
    case DurationDistribution::kBimodal:
      return rng.bernoulli(0.5) ? lo : hi;
    case DurationDistribution::kLogNormalClipped: {
      // Median at the geometric mean of the range.
      const double log_mean = 0.5 * (std::log(lo) + std::log(hi));
      return std::clamp(rng.lognormal(log_mean, spec.lognormal_sigma), lo, hi);
    }
    case DurationDistribution::kExponentialClipped:
      return std::min(lo + rng.exponential(1.0 / std::max(1e-12, (hi - lo) / 3.0)), hi);
  }
  throw std::logic_error("unknown duration distribution");
}

}  // namespace

ItemList generate(const RandomWorkloadSpec& spec) {
  if (!(spec.size_min > 0.0) || spec.size_max > spec.capacity ||
      spec.size_min > spec.size_max) {
    throw ValidationError("generate: need 0 < size_min <= size_max <= capacity");
  }
  if (!(spec.duration_min > 0.0) || spec.duration_min > spec.duration_max) {
    throw ValidationError("generate: need 0 < duration_min <= duration_max");
  }

  Rng rng(spec.seed);
  std::vector<Item> items;
  items.reserve(spec.num_items);
  double clock = 0.0;
  for (std::size_t i = 0; i < spec.num_items; ++i) {
    Time arrival = 0.0;
    switch (spec.arrivals) {
      case ArrivalProcess::kPoisson:
        clock += rng.exponential(spec.arrival_rate);
        arrival = clock;
        break;
      case ArrivalProcess::kUniform:
        arrival = rng.uniform(0.0, spec.horizon);
        break;
      case ArrivalProcess::kBatched:
        arrival = std::floor(static_cast<double>(i) /
                             static_cast<double>(std::max<std::size_t>(1, spec.batch_size))) /
                  spec.arrival_rate;
        break;
    }
    const double size = draw_size(spec, rng);
    const double duration = draw_duration(spec, rng);
    items.push_back(make_item(static_cast<ItemId>(i), size, arrival, arrival + duration));
  }
  return ItemList(std::move(items), spec.capacity);
}

}  // namespace mutdbp::workload
