#include "clairvoyant/clairvoyant.h"

#include <algorithm>
#include <unordered_map>

#include "core/simulation.h"

namespace mutdbp::clairvoyant {

Placement AlignedFit::choose(const Item& item,
                             std::span<const ClairvoyantBin> fitting) {
  if (fitting.empty()) return std::nullopt;
  const ClairvoyantBin* best = nullptr;
  double best_extension = 0.0;
  for (const auto& bin : fitting) {
    const double extension = std::max(0.0, item.departure() - bin.scheduled_close);
    if (best == nullptr || extension < best_extension ||
        (extension == best_extension && bin.scheduled_close > best->scheduled_close)) {
      best = &bin;
      best_extension = extension;
    }
  }
  return best->index;
}

namespace {

/// Relays an externally computed decision into the Simulation, so the
/// clairvoyant driver reuses all of the simulator's bookkeeping and
/// placement validation.
class InjectedDecision final : public PackingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Clairvoyant";
  }
  [[nodiscard]] Placement place(const ArrivalView&,
                                std::span<const BinSnapshot>) override {
    return next_;
  }
  void set(Placement next) { next_ = next; }

 private:
  Placement next_;
};

}  // namespace

PackingResult clairvoyant_simulate(const ItemList& items, ClairvoyantPolicy& policy,
                                   double fit_epsilon) {
  policy.reset();
  InjectedDecision relay;
  SimulationOptions options;
  options.capacity = items.capacity();
  options.fit_epsilon = fit_epsilon;
  Simulation sim(relay, options);

  // scheduled close per open bin = max departure among its items so far.
  std::unordered_map<BinIndex, Time> scheduled_close;

  struct Event {
    Time t;
    bool is_arrival;
    const Item* item;
  };
  std::vector<Event> events;
  events.reserve(items.size() * 2);
  for (const auto& item : items) {
    events.push_back({item.arrival(), true, &item});
    events.push_back({item.departure(), false, &item});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.is_arrival != b.is_arrival) return !a.is_arrival;
    return a.item->id < b.item->id;
  });

  std::vector<ClairvoyantBin> fitting;
  for (const auto& event : events) {
    const Item& item = *event.item;
    if (!event.is_arrival) {
      sim.depart(item.id, event.t);
      continue;
    }
    fitting.clear();
    for (const auto& snap : sim.open_snapshots()) {
      if (!fits(snap, item.size, fit_epsilon)) continue;
      fitting.push_back(ClairvoyantBin{snap.index, snap.level, snap.capacity,
                                       snap.open_time, scheduled_close.at(snap.index),
                                       snap.item_count});
    }
    relay.set(policy.choose(item, fitting));
    const BinIndex placed = sim.arrive(item.id, item.size, event.t);
    auto [it, inserted] = scheduled_close.try_emplace(placed, item.departure());
    if (!inserted) it->second = std::max(it->second, item.departure());
  }
  return sim.finish();
}

}  // namespace mutdbp::clairvoyant
