// Learning-augmented packing: departure times are not known (the online
// model) but a *prediction* of each departure is available — e.g. from a
// session-length model in the cloud-gaming application of §I. The policy
// aligns departures like clairvoyant::AlignedFit, but on predicted values;
// sweeping the prediction error interpolates between the clairvoyant and
// purely online regimes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/item_list.h"
#include "core/packing_result.h"

namespace mutdbp::clairvoyant {

struct PredictionModel {
  /// Multiplicative lognormal error: predicted = true * exp(N(0, sigma)).
  /// sigma = 0 reproduces the clairvoyant AlignedFit exactly.
  double sigma = 0.0;
  std::uint64_t seed = 1;
};

/// Deterministically generates a predicted departure for every item.
[[nodiscard]] std::unordered_map<ItemId, Time> predict_departures(
    const ItemList& items, const PredictionModel& model);

/// Runs departure-aligned fit using `predicted` departures; actual
/// departures still drive the simulation (and are never shown to the
/// policy). Bins track a predicted close = max predicted departure of
/// their active items.
[[nodiscard]] PackingResult predicted_aligned_simulate(
    const ItemList& items, const std::unordered_map<ItemId, Time>& predicted,
    double fit_epsilon = kDefaultFitEpsilon);

}  // namespace mutdbp::clairvoyant
