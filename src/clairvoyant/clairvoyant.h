// Clairvoyant packing: what is knowing departure times worth?
//
// The paper's model makes departures invisible to the algorithm (§I); its
// related-work section contrasts this with interval scheduling, where "the
// ending times of jobs are known". This module implements that middle
// ground: non-migratory packing rules that DO see each item's departure at
// placement time (but still cannot repack). Comparing them with the online
// algorithms and with the repacking OPT splits the competitive gap into
// "cost of not knowing departures" vs "cost of not migrating".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/item_list.h"
#include "core/packing_result.h"

namespace mutdbp::clairvoyant {

/// What a clairvoyant rule sees about an open bin.
struct ClairvoyantBin {
  BinIndex index = 0;
  double level = 0.0;
  double capacity = 1.0;
  Time open_time = 0.0;
  /// Latest departure among the bin's active items = when the bin would
  /// close if nothing more is added.
  Time scheduled_close = 0.0;
  std::size_t item_count = 0;
};

class ClairvoyantPolicy {
 public:
  virtual ~ClairvoyantPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// The full item (including departure) is visible. `open_bins` is sorted
  /// by index and pre-filtered to bins the item fits in; empty -> new bin.
  [[nodiscard]] virtual Placement choose(const Item& item,
                                         std::span<const ClairvoyantBin> fitting) = 0;
  virtual void reset() {}
};

/// Departure-aligned fit: choose the fitting bin minimizing the usage-time
/// increase, i.e. max(0, item.departure - bin.scheduled_close); ties go to
/// the bin with the latest scheduled close (best alignment).
class AlignedFit final : public ClairvoyantPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "AlignedFit"; }
  [[nodiscard]] Placement choose(const Item& item,
                                 std::span<const ClairvoyantBin> fitting) override;
};

/// First Fit with departures visible but ignored — the control policy: any
/// difference between this and AlignedFit is pure departure knowledge.
class ClairvoyantFirstFit final : public ClairvoyantPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ClairvoyantFirstFit";
  }
  [[nodiscard]] Placement choose(const Item&,
                                 std::span<const ClairvoyantBin> fitting) override {
    return fitting.empty() ? Placement{} : Placement{fitting.front().index};
  }
};

/// Runs a clairvoyant policy over the item list (non-migratory, like the
/// online simulator, but the policy sees departures).
[[nodiscard]] PackingResult clairvoyant_simulate(const ItemList& items,
                                                 ClairvoyantPolicy& policy,
                                                 double fit_epsilon = kDefaultFitEpsilon);

}  // namespace mutdbp::clairvoyant
