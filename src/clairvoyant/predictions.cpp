#include "clairvoyant/predictions.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "clairvoyant/clairvoyant.h"
#include "core/simulation.h"
#include "util/rng.h"

namespace mutdbp::clairvoyant {

std::unordered_map<ItemId, Time> predict_departures(const ItemList& items,
                                                    const PredictionModel& model) {
  std::unordered_map<ItemId, Time> predicted;
  predicted.reserve(items.size());
  for (const auto& item : items) {
    // Per-item deterministic noise, independent of iteration order.
    SplitMix64 mix(model.seed ^ (item.id * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL));
    Rng rng(mix.next());
    const double noise = model.sigma > 0.0 ? std::exp(rng.normal(0.0, model.sigma)) : 1.0;
    // The prediction errs on the duration (a departure before the arrival
    // would be meaningless).
    predicted[item.id] = item.arrival() + item.duration() * noise;
  }
  return predicted;
}

namespace {

class InjectedDecision final : public PackingAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "PredictedAlignedFit";
  }
  [[nodiscard]] Placement place(const ArrivalView&,
                                std::span<const BinSnapshot>) override {
    return next_;
  }
  void set(Placement next) { next_ = next; }

 private:
  Placement next_;
};

}  // namespace

PackingResult predicted_aligned_simulate(
    const ItemList& items, const std::unordered_map<ItemId, Time>& predicted,
    double fit_epsilon) {
  InjectedDecision relay;
  SimulationOptions options;
  options.capacity = items.capacity();
  options.fit_epsilon = fit_epsilon;
  Simulation sim(relay, options);

  // Predicted departures of the active items per bin (multiset: max = the
  // bin's predicted close).
  std::unordered_map<BinIndex, std::multiset<Time>> bin_predictions;
  std::unordered_map<ItemId, BinIndex> placed_bin;

  struct Event {
    Time t;
    bool is_arrival;
    const Item* item;
  };
  std::vector<Event> events;
  events.reserve(items.size() * 2);
  for (const auto& item : items) {
    events.push_back({item.arrival(), true, &item});
    events.push_back({item.departure(), false, &item});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.is_arrival != b.is_arrival) return !a.is_arrival;
    return a.item->id < b.item->id;
  });

  AlignedFit aligner;
  std::vector<ClairvoyantBin> fitting;
  for (const auto& event : events) {
    const Item& item = *event.item;
    if (!event.is_arrival) {
      const BinIndex bin = placed_bin.at(item.id);
      auto& preds = bin_predictions.at(bin);
      preds.erase(preds.find(predicted.at(item.id)));
      sim.depart(item.id, event.t);
      continue;
    }
    fitting.clear();
    for (const auto& snap : sim.open_snapshots()) {
      if (!fits(snap, item.size, fit_epsilon)) continue;
      const auto& preds = bin_predictions.at(snap.index);
      fitting.push_back(ClairvoyantBin{snap.index, snap.level, snap.capacity,
                                       snap.open_time,
                                       preds.empty() ? snap.open_time : *preds.rbegin(),
                                       snap.item_count});
    }
    // The policy sees the *predicted* departure, never the true one.
    Item believed = item;
    believed.active.right = predicted.at(item.id);
    relay.set(aligner.choose(believed, fitting));
    const BinIndex bin = sim.arrive(item.id, item.size, event.t);
    placed_bin[item.id] = bin;
    bin_predictions[bin].insert(predicted.at(item.id));
  }
  return sim.finish();
}

}  // namespace mutdbp::clairvoyant
