// Vector item trace persistence: CSV with columns
// id,size0,...,size{D-1},arrival,departure — the multidim counterpart of
// workload/trace.h. Lines beginning with '#' are comments; a header row is
// optional. Round-trips are bit-exact (max_digits10 output, like the
// scalar writer).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "multidim/md_core.h"

namespace mutdbp::md {

/// Writes `items` as CSV (with a header row naming every dimension).
void write_md_trace(std::ostream& out, const MDItemList& items);
void write_md_trace_file(const std::string& path, const MDItemList& items);

/// Reads a vector trace against `capacity` (its size fixes the expected
/// per-row dimension count). Validates demands/durations like MDItemList
/// does, and additionally rejects malformed rows with a row-numbered
/// ValidationError: wrong field counts, non-integer ids, duplicate item
/// ids, and NaN/inf demands or times.
[[nodiscard]] MDItemList read_md_trace(std::istream& in,
                                       std::vector<double> capacity);
[[nodiscard]] MDItemList read_md_trace_file(const std::string& path,
                                            std::vector<double> capacity);

}  // namespace mutdbp::md
