// Multi-dimensional MinUsageTime DBP — the extension the paper names as
// future work in §IX: "extend the MinUsageTime DBP problem to the
// multi-dimensional version to model multiple types of resources (e.g.,
// CPU and memory) for online cloud server allocation."
//
// Items demand a vector of resources; a bin (server) holds a vector
// capacity, and feasibility is per-dimension. Everything else (half-open
// activity intervals, usage periods, the MinUsageTime objective, the
// online constraint) carries over from the scalar core.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/interval.h"
#include "core/item.h"

namespace mutdbp::md {

struct MDItem {
  ItemId id = 0;
  std::vector<double> demand;  ///< one entry per resource dimension
  Interval active;

  [[nodiscard]] Time arrival() const noexcept { return active.left; }
  [[nodiscard]] Time departure() const noexcept { return active.right; }
  [[nodiscard]] Time duration() const noexcept { return active.length(); }
};

[[nodiscard]] inline MDItem make_md_item(ItemId id, std::vector<double> demand,
                                         Time arrival, Time departure) {
  return MDItem{id, std::move(demand), {arrival, departure}};
}

/// A validated multi-dimensional item list with vector capacity.
class MDItemList {
 public:
  MDItemList() = default;
  MDItemList(std::vector<MDItem> items, std::vector<double> capacity);

  [[nodiscard]] const std::vector<MDItem>& items() const noexcept { return items_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] const MDItem& operator[](std::size_t i) const noexcept {
    return items_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }
  [[nodiscard]] const std::vector<double>& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t dimensions() const noexcept { return capacity_.size(); }

  [[nodiscard]] double mu() const noexcept;
  [[nodiscard]] Time span() const;

  /// Lower bound on OPT_total: max over dimensions d of
  /// integral of max(ceil(load_d(t)/cap_d), [anything active]) dt.
  [[nodiscard]] double load_ceiling_bound() const;

 private:
  std::vector<MDItem> items_;
  std::vector<double> capacity_;
};

struct MDBinSnapshot {
  BinIndex index = 0;
  std::vector<double> level;            ///< per-dimension usage
  std::vector<double> capacity;         ///< per-dimension capacity
  Time open_time = 0.0;
  std::size_t item_count = 0;
};

struct MDArrivalView {
  ItemId id = 0;
  std::vector<double> demand;
  Time time = 0.0;
};

[[nodiscard]] bool md_fits(const MDBinSnapshot& bin, std::span<const double> demand,
                           double fit_epsilon = kDefaultFitEpsilon) noexcept;

class MDPackingAlgorithm {
 public:
  virtual ~MDPackingAlgorithm() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual Placement place(const MDArrivalView& item,
                                        std::span<const MDBinSnapshot> open_bins) = 0;
  virtual void on_bin_opened(BinIndex /*bin*/, const MDArrivalView& /*first*/) {}
  virtual void on_bin_closed(BinIndex /*bin*/, Time /*close_time*/) {}
  virtual void reset() {}
};

/// One packed bin's record (usage period + member items).
struct MDBinRecord {
  BinIndex index = 0;
  Interval usage;
  std::vector<ItemId> items;
  [[nodiscard]] Time usage_time() const noexcept { return usage.length(); }
};

struct MDPackingResult {
  std::vector<MDBinRecord> bins;

  [[nodiscard]] Time total_usage_time() const noexcept {
    Time total = 0.0;
    for (const auto& bin : bins) total += bin.usage_time();
    return total;
  }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins.size(); }
};

/// Batch driver, mirroring the scalar simulate(): departures before
/// arrivals at equal times; placements validated per dimension.
[[nodiscard]] MDPackingResult md_simulate(const MDItemList& items,
                                          MDPackingAlgorithm& algorithm,
                                          double fit_epsilon = kDefaultFitEpsilon);

}  // namespace mutdbp::md
