// Multi-dimensional MinUsageTime DBP — the extension the paper names as
// future work in §IX ("extend the MinUsageTime DBP problem to the
// multi-dimensional version to model multiple types of resources (e.g.,
// CPU and memory) for online cloud server allocation"), grown here into
// the full Dynamic Vector Bin Packing track (docs/multidim.md; Murhekar
// et al. 2023, Lee & Tang).
//
// Items demand a vector of resources; a bin (server) holds a vector
// capacity, and feasibility is per-dimension. Everything else — half-open
// activity intervals, usage periods, the MinUsageTime objective, the
// online constraint, the canonical event order (time ascending, departures
// before arrivals at equal times, id order within a kind) — carries over
// from the scalar core, and so does the engine architecture: MDSimulation
// is the incremental arrive/depart engine (the vector Simulation),
// md_simulate() the batch wrapper over it, and MDStreamingSimulation
// (md_streaming.h) the buffered/checkpointable face.
//
// Exactness contract: a dims == 1 vector run executes the same decisions
// and the same floating-point operations as the scalar engine, so its
// md_packing_digest() equals the scalar packing_digest() bit-for-bit for
// every algorithm pair with a scalar counterpart
// (tests/multidim_differential_test.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"
#include "core/interval.h"
#include "core/item.h"
#include "multidim/md_bounds.h"
#include "telemetry/metrics.h"

namespace mutdbp::telemetry {
class Telemetry;
}  // namespace mutdbp::telemetry

namespace mutdbp::md {

struct MDItem {
  ItemId id = 0;
  std::vector<double> demand;  ///< one entry per resource dimension
  Interval active;

  [[nodiscard]] Time arrival() const noexcept { return active.left; }
  [[nodiscard]] Time departure() const noexcept { return active.right; }
  [[nodiscard]] Time duration() const noexcept { return active.length(); }
};

[[nodiscard]] inline MDItem make_md_item(ItemId id, std::vector<double> demand,
                                         Time arrival, Time departure) {
  return MDItem{id, std::move(demand), {arrival, departure}};
}

/// One event of the canonical schedule (the vector ScheduledEvent).
struct MDScheduledEvent {
  Time t = 0.0;
  ItemId id = 0;
  std::size_t item_pos = 0;  ///< index into MDItemList::items()
  bool is_arrival = false;
};

/// A validated multi-dimensional item list with vector capacity.
///
/// Validation is ItemList-grade (core/item_list.h): every capacity entry
/// finite and > 0; every demand entry finite and in (0, capacity_d] — a
/// zero or negative demand in any dimension is rejected, exactly as the
/// scalar list rejects non-positive sizes; finite non-empty activity
/// interval. Errors are ValidationError and name the offending row
/// (position in the input vector) and item id.
class MDItemList {
 public:
  MDItemList() = default;
  MDItemList(std::vector<MDItem> items, std::vector<double> capacity);

  [[nodiscard]] const std::vector<MDItem>& items() const noexcept { return items_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] const MDItem& operator[](std::size_t i) const noexcept {
    return items_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }
  [[nodiscard]] const std::vector<double>& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t dimensions() const noexcept { return capacity_.size(); }

  /// The canonical event schedule (built once at construction): time
  /// ascending; departures before arrivals at equal times; id order within
  /// a kind — ItemList::schedule(), verbatim. Every consumer (batch
  /// driver, bounds sweeps, streaming feeders) walks this order, which is
  /// what makes their floating-point results bitwise comparable.
  [[nodiscard]] const std::vector<MDScheduledEvent>& schedule() const noexcept {
    return schedule_;
  }

  [[nodiscard]] double mu() const noexcept;
  [[nodiscard]] Time span() const;

  /// Lower bound on OPT_total: ∫ max(max_d ceil(load_d(t)/cap_d),
  /// 1{active}) dt (one md_lower_bounds() sweep; md_bounds.h).
  [[nodiscard]] double load_ceiling_bound() const;

 private:
  std::vector<MDItem> items_;
  std::vector<double> capacity_;
  std::vector<MDScheduledEvent> schedule_;
};

struct MDBinSnapshot {
  BinIndex index = 0;
  std::vector<double> level;     ///< per-dimension usage
  std::vector<double> capacity;  ///< per-dimension capacity
  Time open_time = 0.0;
  std::size_t item_count = 0;
};

struct MDArrivalView {
  ItemId id = 0;
  std::span<const double> demand;
  Time time = 0.0;
};

/// The shared per-dimension fit predicate (the scalar fits() arithmetic,
/// per dimension: level + demand <= capacity + epsilon).
[[nodiscard]] bool md_fits(const MDBinSnapshot& bin, std::span<const double> demand,
                           double fit_epsilon = kDefaultFitEpsilon) noexcept;

/// The online vector packing algorithm interface — PackingAlgorithm
/// (core/algorithm.h) with vector levels. Snapshot path by default;
/// incremental kernels answer needs_snapshots() == false and maintain
/// their own state (a VectorCapacityTree) through the hooks.
class MDPackingAlgorithm {
 public:
  virtual ~MDPackingAlgorithm() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual Placement place(const MDArrivalView& item,
                                        std::span<const MDBinSnapshot> open_bins) = 0;
  [[nodiscard]] virtual bool needs_snapshots() const noexcept { return true; }
  virtual void on_simulation_begin(std::span<const double> /*capacity*/,
                                   double /*fit_epsilon*/) {}
  virtual void on_bin_opened(BinIndex /*bin*/, const MDArrivalView& /*first*/) {}
  virtual void on_bin_closed(BinIndex /*bin*/, Time /*close_time*/) {}
  /// After `item` was placed into the already-open `bin` (the opening
  /// placement is on_bin_opened instead — the scalar hook contract).
  virtual void on_item_placed(BinIndex /*bin*/, const MDArrivalView& /*item*/,
                              std::span<const double> /*new_levels*/) {}
  /// After an item of demand `demand` left `bin` (called even when the
  /// departure closes the bin; on_bin_closed follows in that case).
  virtual void on_item_departed(BinIndex /*bin*/, std::span<const double> /*demand*/,
                                std::span<const double> /*new_levels*/, Time /*t*/) {}
  virtual void reset() {}
};

/// Differential-testing adapter, mirroring WithSnapshots<> for the scalar
/// family: forces an incremental vector algorithm back onto the snapshot
/// reference path.
template <class Algorithm>
class MDWithSnapshots final : public Algorithm {
 public:
  using Algorithm::Algorithm;
  [[nodiscard]] bool needs_snapshots() const noexcept override { return true; }
};

/// One item's stay in a bin: the vector PlacementRecord.
struct MDPlacementRecord {
  ItemId item = 0;
  std::vector<double> demand;
  Interval active;
};

/// One packed bin's record: usage period + placements in arrival order.
struct MDBinRecord {
  BinIndex index = 0;
  Interval usage;
  std::vector<MDPlacementRecord> items;

  [[nodiscard]] Time usage_time() const noexcept { return usage.length(); }
  [[nodiscard]] std::vector<ItemId> item_ids() const {
    std::vector<ItemId> ids;
    ids.reserve(items.size());
    for (const auto& placement : items) ids.push_back(placement.item);
    return ids;
  }
};

struct MDPackingResult {
  std::vector<MDBinRecord> bins;

  [[nodiscard]] Time total_usage_time() const noexcept {
    Time total = 0.0;
    for (const auto& bin : bins) total += bin.usage_time();
    return total;
  }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins.size(); }
};

/// Order-sensitive FNV-1a digest over the complete vector packing: per bin
/// its index and usage-interval bit patterns, then per placement the item
/// id, every demand component's bit pattern, and the activity interval's
/// bit patterns. At dims == 1 this hashes the exact byte sequence of the
/// scalar packing_digest() (core/packing_result.h), so 1-D vector runs and
/// scalar runs are directly digest-comparable.
[[nodiscard]] std::uint64_t md_packing_digest(const MDPackingResult& result);

struct MDSimulationOptions {
  /// Per-dimension bin capacity. Must be non-empty for direct MDSimulation
  /// use; md_simulate() fills it from the item list.
  std::vector<double> capacity;
  double fit_epsilon = kDefaultFitEpsilon;
  /// Maintain the live VectorLowerBoundAccumulator (md_bounds.h). Costs
  /// O(D) per event; the live ratio view and telemetry need it.
  bool track_bounds = true;
  /// Optional sink: wires the vector run into the metrics counters and the
  /// live ratio monitor (externally-computed vector bounds; see
  /// RatioMonitor::on_vector_event). Never serialized.
  telemetry::Telemetry* telemetry = nullptr;
};

/// The live competitive-ratio view of a vector run.
struct MDBoundsState {
  double usage = 0.0;  ///< ∫ open_bins dt so far
  double prop1 = 0.0;
  double prop2 = 0.0;
  double load_ceiling = 0.0;
  double lower_bound = 0.0;  ///< max of the three
  double ratio = 0.0;        ///< usage / lower_bound (0 while LB is 0)
};

/// The incremental vector engine — Simulation (core/simulation.h) with
/// vector items. Events must arrive in time-monotone order (the caller
/// owns merge discipline; MDStreamingSimulation buffers and merges).
/// Validates every placement per dimension: SimulationError on algorithm
/// misbehavior, ValidationError on bad input.
class MDSimulation {
 public:
  MDSimulation(MDPackingAlgorithm& algorithm, MDSimulationOptions options);
  ~MDSimulation();
  MDSimulation(MDSimulation&&) noexcept;

  /// Processes one arrival; returns the bin it was placed in.
  BinIndex arrive(ItemId id, std::span<const double> demand, Time t);
  /// Processes one departure; closes the bin when it empties.
  void depart(ItemId id, Time t);

  /// Completes the run (every item must have departed).
  [[nodiscard]] MDPackingResult finish();
  /// The packing so far: open bins and still-active placements are
  /// truncated at now(). The run continues unaffected.
  [[nodiscard]] MDPackingResult partial_result() const;

  void reserve(std::size_t expected_items);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::size_t dimensions() const noexcept {
    return options_.capacity.size();
  }
  [[nodiscard]] std::size_t open_bin_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t active_items() const noexcept { return active_.size(); }
  [[nodiscard]] std::size_t max_concurrent_bins() const noexcept {
    return max_concurrent_;
  }
  [[nodiscard]] const MDSimulationOptions& options() const noexcept {
    return options_;
  }
  /// Live bounds/ratio state (all zeros when track_bounds is off).
  [[nodiscard]] MDBoundsState bounds_state() const noexcept;
  [[nodiscard]] const VectorLowerBoundAccumulator& bounds() const noexcept {
    return bounds_;
  }

 private:
  static constexpr BinIndex kNoBin = static_cast<BinIndex>(-1);

  struct BinState {
    BinIndex index = 0;
    Time open_time = 0.0;
    Time close_time = 0.0;
    std::vector<double> level;
    std::size_t active_count = 0;
    bool open = false;
    BinIndex open_prev = kNoBin;
    BinIndex open_next = kNoBin;
  };
  struct ActiveRef {
    BinIndex bin = 0;
    std::size_t placement_pos = 0;
  };
  struct PooledPlacement {
    BinIndex bin = 0;
    MDPlacementRecord record;
  };

  void advance_time(Time t);
  void close_bin(BinState& bin, Time t);
  void report_bounds(Time t);
  [[nodiscard]] MDPackingResult materialize(bool final) const;

  MDPackingAlgorithm& algorithm_;
  MDSimulationOptions options_;
  bool use_snapshots_ = true;
  Time now_;
  bool finished_ = false;

  std::vector<BinState> bins_;
  BinIndex open_head_ = kNoBin;
  BinIndex open_tail_ = kNoBin;
  std::size_t open_count_ = 0;
  std::size_t max_concurrent_ = 0;
  std::vector<PooledPlacement> placements_;
  std::unordered_map<ItemId, ActiveRef> active_;

  std::vector<MDBinSnapshot> snapshot_scratch_;
  VectorLowerBoundAccumulator bounds_;
  double usage_integral_ = 0.0;
  Time usage_prev_t_;

  // Telemetry counter handles (registered once at construction when a sink
  // is attached; zero-cost otherwise).
  telemetry::CounterHandle ctr_items_placed_{};
  telemetry::CounterHandle ctr_items_departed_{};
  telemetry::CounterHandle ctr_bins_opened_{};
  telemetry::CounterHandle ctr_bins_closed_{};
};

/// Batch driver: one pass over items.schedule() through an MDSimulation —
/// the vector simulate(). Departures before arrivals at equal times;
/// placements validated per dimension.
[[nodiscard]] MDPackingResult md_simulate(const MDItemList& items,
                                          MDPackingAlgorithm& algorithm,
                                          double fit_epsilon = kDefaultFitEpsilon,
                                          telemetry::Telemetry* telemetry = nullptr);

}  // namespace mutdbp::md
