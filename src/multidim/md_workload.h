// Multi-dimensional workload generation: items demand several resources
// (e.g. CPU + memory) with a tunable cross-dimension correlation — the knob
// that decides whether multi-dimensional packing behaves like the scalar
// problem (correlation 1) or strands capacity (correlation 0 or negative).
#pragma once

#include <cstdint>

#include "multidim/md_core.h"

namespace mutdbp::md {

struct MDWorkloadSpec {
  std::size_t num_items = 500;
  std::size_t dimensions = 2;
  std::uint64_t seed = 1;
  double arrival_rate = 2.0;     ///< Poisson arrivals
  double duration_min = 1.0;
  double duration_max = 4.0;
  double demand_min = 0.05;
  double demand_max = 0.6;
  /// 1: all dimensions equal (scalar-like); 0: independent; -1: one
  /// dimension high means the others are low (anti-correlated).
  double correlation = 0.0;
};

[[nodiscard]] MDItemList generate_md(const MDWorkloadSpec& spec);

}  // namespace mutdbp::md
