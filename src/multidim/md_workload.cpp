#include "multidim/md_workload.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace mutdbp::md {

MDItemList generate_md(const MDWorkloadSpec& spec) {
  if (spec.dimensions == 0) throw std::invalid_argument("generate_md: 0 dimensions");
  if (!(spec.demand_min > 0.0) || spec.demand_min > spec.demand_max ||
      spec.demand_max > 1.0) {
    throw std::invalid_argument("generate_md: bad demand range");
  }
  if (!(spec.duration_min > 0.0) || spec.duration_min > spec.duration_max) {
    throw std::invalid_argument("generate_md: bad duration range");
  }
  if (spec.correlation < -1.0 || spec.correlation > 1.0) {
    throw std::invalid_argument("generate_md: correlation in [-1, 1]");
  }

  Rng rng(spec.seed);
  std::vector<MDItem> items;
  items.reserve(spec.num_items);
  double clock = 0.0;
  const double range = spec.demand_max - spec.demand_min;
  for (ItemId id = 0; id < spec.num_items; ++id) {
    clock += rng.exponential(spec.arrival_rate);
    const double duration = rng.uniform(spec.duration_min, spec.duration_max);
    // Base draw in [0,1]; each dimension mixes the base with an independent
    // (or mirrored, for negative correlation) draw.
    const double base = rng.next_double();
    std::vector<double> demand(spec.dimensions);
    const double c = std::abs(spec.correlation);
    for (std::size_t d = 0; d < spec.dimensions; ++d) {
      double independent = rng.next_double();
      if (spec.correlation < 0.0 && d % 2 == 1) independent = 1.0 - base;
      const double mixed = c * (spec.correlation < 0.0 && d % 2 == 1
                                    ? 1.0 - base
                                    : base) +
                           (1.0 - c) * independent;
      demand[d] = spec.demand_min + range * std::clamp(mixed, 0.0, 1.0);
    }
    items.push_back(make_md_item(id, std::move(demand), clock, clock + duration));
  }
  return MDItemList(std::move(items), std::vector<double>(spec.dimensions, 1.0));
}

}  // namespace mutdbp::md
