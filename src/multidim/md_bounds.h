// Vector generalizations of the §III.C lower bounds on OPT_total, in both
// incremental (live) and batch form — the multidim counterpart of
// telemetry/ratio_monitor.h's LowerBoundAccumulator + opt/lower_bounds.h.
//
//  * Proposition 1 (time–space):  LB₁ = max_d ∫ load_d(t) dt / cap_d —
//    every dimension's time–space product must be served, so the tightest
//    dimension bounds the fleet.
//  * Proposition 2 (span):        LB₂ = span(R) — unchanged: whenever any
//    item is active at least one server is on, whatever its demand vector.
//  * Load ceiling:                LB₃ = ∫ max(max_d ceil(load_d(t)/cap_d),
//    1{active}) dt — the max over dimensions is taken INSIDE the integral
//    (at every instant the bin count must cover the worst dimension at
//    that instant), which dominates the max-of-integrals form.
//
// Exactness contract: at dims == 1, VectorLowerBoundAccumulator executes
// the identical floating-point operations in the identical order as the
// scalar LowerBoundAccumulator, so a 1-D vector run's bounds are bitwise
// equal to the scalar monitor's and to opt/lower_bounds.cpp's batch sweep
// (the multidim differential suite pins this). The batch functions below
// feed the canonical MDItemList::schedule() order — time ascending,
// departures before arrivals at equal times, id order within a kind — the
// same discipline that makes streaming ≡ batch everywhere else.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace mutdbp::md {

class MDItemList;

/// Incremental sweep maintaining the three vector lower bounds. Feed
/// events in canonical schedule order (advance_to(t), then apply the load
/// delta); read any bound at any point. MDSimulation keeps one of these
/// live; the batch functions below run the same class over a whole list,
/// so live ≡ batch holds bitwise by construction.
class VectorLowerBoundAccumulator {
 public:
  VectorLowerBoundAccumulator() { reset({&kUnitCapacity, 1}); }
  explicit VectorLowerBoundAccumulator(std::span<const double> capacity) {
    reset(capacity);
  }

  void reset(std::span<const double> capacity) {
    capacity_.assign(capacity.begin(), capacity.end());
    load_.assign(capacity_.size(), 0.0);
    load_integral_.assign(capacity_.size(), 0.0);
    active_ = 0;
    span_ = 0.0;
    ceiling_integral_ = 0.0;
    prev_t_ = -std::numeric_limits<double>::infinity();
  }

  /// Accrues all three integrals over [prev event time, t) with the current
  /// load vector, constant between events. Idle stretches contribute
  /// nothing. Mirrors the scalar accumulator's arithmetic op-for-op.
  void advance_to(double t) noexcept {
    if (t > prev_t_) {
      if (active_ > 0) {
        const double dt = t - prev_t_;
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          load_integral_[d] += load_[d] * dt;
        }
        span_ += dt;
        // The same 1e-9 ceiling slack as the scalar sweep, per dimension;
        // the fold starts at 1.0 exactly like std::max(1.0, ceil(...)).
        double bins = 1.0;
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          const double needed = std::ceil(load_[d] / capacity_[d] - 1e-9);
          if (needed > bins) bins = needed;
        }
        ceiling_integral_ += bins * dt;
      }
      prev_t_ = t;
    }
  }

  void apply_arrival(std::span<const double> demand) noexcept {
    for (std::size_t d = 0; d < capacity_.size(); ++d) load_[d] += demand[d];
    ++active_;
  }
  void apply_departure(std::span<const double> demand) noexcept {
    for (std::size_t d = 0; d < capacity_.size(); ++d) load_[d] -= demand[d];
    --active_;
    if (active_ == 0) {
      // Cancel floating-point residue, exactly like the scalar accumulator.
      for (double& l : load_) l = 0.0;
    }
  }

  /// Proposition 1 (vector): max_d ∫ load_d dt / cap_d.
  [[nodiscard]] double prop1() const noexcept {
    double best = load_integral_[0] / capacity_[0];
    for (std::size_t d = 1; d < capacity_.size(); ++d) {
      const double lb = load_integral_[d] / capacity_[d];
      if (lb > best) best = lb;
    }
    return best;
  }
  /// Proposition 2: span(R) accumulated so far.
  [[nodiscard]] double prop2() const noexcept { return span_; }
  /// ∫ max(max_d ceil(load_d/cap_d), 1{active}) dt accumulated so far.
  [[nodiscard]] double load_ceiling() const noexcept { return ceiling_integral_; }
  /// max of the three: the certified lower bound on OPT_total.
  [[nodiscard]] double combined() const noexcept {
    double best = prop1();
    if (span_ > best) best = span_;
    if (ceiling_integral_ > best) best = ceiling_integral_;
    return best;
  }

  [[nodiscard]] std::size_t dims() const noexcept { return capacity_.size(); }
  [[nodiscard]] std::span<const double> capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::span<const double> load() const noexcept { return load_; }
  [[nodiscard]] std::size_t active() const noexcept { return active_; }

 private:
  static constexpr double kUnitCapacity = 1.0;

  std::vector<double> capacity_;
  std::vector<double> load_;           ///< total active demand per dimension
  std::vector<double> load_integral_;  ///< ∫ load_d dt per dimension
  std::size_t active_ = 0;
  double span_ = 0.0;
  double ceiling_integral_ = 0.0;
  double prev_t_ = -std::numeric_limits<double>::infinity();
};

/// The three bounds of one batch sweep (md_lower_bounds).
struct MDLowerBounds {
  double prop1 = 0.0;
  double prop2 = 0.0;
  double load_ceiling = 0.0;
  [[nodiscard]] double combined() const noexcept {
    double best = prop1;
    if (prop2 > best) best = prop2;
    if (load_ceiling > best) best = load_ceiling;
    return best;
  }
};

/// One canonical-order sweep computing all three batch bounds.
[[nodiscard]] MDLowerBounds md_lower_bounds(const MDItemList& items);

[[nodiscard]] double md_prop1_bound(const MDItemList& items);
[[nodiscard]] double md_prop2_bound(const MDItemList& items);
[[nodiscard]] double md_load_ceiling_bound(const MDItemList& items);
[[nodiscard]] double md_combined_lower_bound(const MDItemList& items);

}  // namespace mutdbp::md
