#include "multidim/md_streaming.h"

#include <algorithm>
#include <string>

#include "core/checkpoint.h"
#include "core/error.h"
#include "core/streaming.h"

namespace mutdbp::md {

namespace {

MDSimulationOptions to_simulation_options(const MDStreamingOptions& options) {
  MDSimulationOptions sim;
  sim.capacity = options.capacity;
  sim.fit_epsilon = options.fit_epsilon;
  sim.track_bounds = options.track_bounds;
  sim.telemetry = options.telemetry;
  return sim;
}

}  // namespace

MDStreamingSimulation::MDStreamingSimulation(MDPackingAlgorithm& algorithm,
                                             MDStreamingOptions options)
    : algorithm_(algorithm), options_(std::move(options)) {
  // Same contract as md_simulate(): the engine resets the algorithm to its
  // fresh state, so streaming and batch runs decide identically.
  sim_ = std::make_unique<MDSimulation>(algorithm_,
                                        to_simulation_options(options_));
}

void MDStreamingSimulation::reserve(std::size_t expected_items) {
  sim_->reserve(expected_items);
  // Arrival + departure per item: the applied log sees about twice as many
  // events as there are items.
  log_.reserve(log_.size() + 2 * expected_items);
}

void MDStreamingSimulation::throw_frontier_violation(Time t) const {
  throw ValidationError(
      "MDStreamingSimulation: batch event at t=" + std::to_string(t) +
      " lies before the applied frontier t=" + std::to_string(sim_->now()) +
      " (batches may be internally unordered, but never reach back "
      "across a flush)");
}

void MDStreamingSimulation::apply(const MDStreamEvent& event) {
  switch (event.kind) {
    case MDStreamEvent::Kind::kArrival:
      (void)sim_->arrive(event.id, event.demand, event.t);
      break;
    case MDStreamEvent::Kind::kDeparture:
      sim_->depart(event.id, event.t);
      break;
  }
  log_.push_back(event);
  crash_after_events_kill_point();
}

std::size_t MDStreamingSimulation::flush() {
  if (pending_.size() == 1) {
    // A one-event batch is already in canonical order; only the frontier
    // check remains.
    const MDStreamEvent& event = pending_.front();
    if (event.t < sim_->now()) throw_frontier_violation(event.t);
    apply(event);
    pending_.clear();
    return 1;
  }
  return flush_batch();
}

std::size_t MDStreamingSimulation::flush_batch() {
  if (pending_.empty()) return 0;
  // Validate the batch boundary before touching the engine: a rejected
  // batch leaves the applied state exactly as it was.
  const Time frontier = sim_->now();
  for (const MDStreamEvent& event : pending_) {
    if (event.t < frontier) throw_frontier_violation(event.t);
  }
  // Canonical merge: time, then departures before arrivals (half-open
  // activity intervals), then id — MDItemList::schedule() order, which is
  // what makes streaming bit-identical to batch md_simulate().
  const auto canonical_order = [](const MDStreamEvent& a, const MDStreamEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind == MDStreamEvent::Kind::kDeparture;
    return a.id < b.id;
  };
  if (!std::is_sorted(pending_.begin(), pending_.end(), canonical_order)) {
    std::sort(pending_.begin(), pending_.end(), canonical_order);
  }
  const std::size_t applied = pending_.size();
  for (const MDStreamEvent& event : pending_) apply(event);
  pending_.clear();
  return applied;
}

MDPackingResult MDStreamingSimulation::partial_result() {
  (void)flush();
  return sim_->partial_result();
}

MDPackingResult MDStreamingSimulation::finish() {
  (void)flush();
  return sim_->finish();
}

void MDStreamingSimulation::snapshot(std::ostream& out) {
  (void)flush();
  MDStreamingCheckpoint checkpoint;
  checkpoint.algorithm = std::string(algorithm_.name());
  checkpoint.options = options_;
  checkpoint.options.telemetry = nullptr;
  checkpoint.events = log_;
  checkpoint.write(out);
}

void MDStreamingCheckpoint::write(std::ostream& out) const {
  BinaryWriter payload;
  payload.string(algorithm);
  payload.u64(options.capacity.size());
  for (const double c : options.capacity) payload.f64(c);
  payload.f64(options.fit_epsilon);
  payload.boolean(options.track_bounds);
  payload.u64(events.size());
  for (const MDStreamEvent& event : events) {
    payload.u8(static_cast<std::uint8_t>(event.kind));
    payload.u64(event.id);
    payload.u64(event.demand.size());
    for (const double d : event.demand) payload.f64(d);
    payload.f64(event.t);
  }
  write_checkpoint_frame(out, CheckpointKind::kVectorStreamingSimulation, payload);
}

MDStreamingCheckpoint MDStreamingCheckpoint::read(std::istream& in) {
  const std::vector<std::uint8_t> payload =
      read_checkpoint_frame(in, CheckpointKind::kVectorStreamingSimulation);
  BinaryReader reader(payload);
  MDStreamingCheckpoint checkpoint;
  checkpoint.algorithm = reader.string();
  const std::size_t dims = reader.count(/*min_element_bytes=*/8);
  if (dims == 0) {
    throw ValidationError("checkpoint: vector run with zero dimensions");
  }
  checkpoint.options.capacity.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    checkpoint.options.capacity.push_back(reader.f64());
  }
  checkpoint.options.fit_epsilon = reader.f64();
  checkpoint.options.track_bounds = reader.boolean();
  const std::size_t n = reader.count(/*min_element_bytes=*/1 + 8 + 8 + 8);
  checkpoint.events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MDStreamEvent event;
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(MDStreamEvent::Kind::kDeparture)) {
      throw ValidationError("checkpoint: invalid vector stream event kind " +
                            std::to_string(kind));
    }
    event.kind = static_cast<MDStreamEvent::Kind>(kind);
    event.id = reader.u64();
    const std::size_t demand_dims = reader.count(/*min_element_bytes=*/8);
    if (event.kind == MDStreamEvent::Kind::kArrival && demand_dims != dims) {
      throw ValidationError(
          "checkpoint: arrival demand dimensionality mismatch");
    }
    event.demand.reserve(demand_dims);
    for (std::size_t d = 0; d < demand_dims; ++d) {
      event.demand.push_back(reader.f64());
    }
    event.t = reader.f64();
    checkpoint.events.push_back(std::move(event));
  }
  reader.expect_end();
  return checkpoint;
}

MDStreamingSimulation MDStreamingSimulation::restore(
    const MDStreamingCheckpoint& checkpoint, MDPackingAlgorithm& algorithm,
    telemetry::Telemetry* telemetry) {
  if (algorithm.name() != checkpoint.algorithm) {
    throw ValidationError(
        "MDStreamingSimulation::restore: checkpoint was taken with algorithm "
        "'" +
        checkpoint.algorithm + "' but '" + std::string(algorithm.name()) +
        "' was supplied");
  }
  MDStreamingOptions options = checkpoint.options;
  options.telemetry = telemetry;
  MDStreamingSimulation stream(algorithm, std::move(options));
  // Deterministic replay in the recorded application order: the engine, the
  // kernel trees, per-algorithm state, and the telemetry counters all
  // rebuild to exactly the pre-snapshot state.
  for (const MDStreamEvent& event : checkpoint.events) stream.apply(event);
  return stream;
}

MDStreamingSimulation MDStreamingSimulation::restore(
    std::istream& in, MDPackingAlgorithm& algorithm,
    telemetry::Telemetry* telemetry) {
  return restore(MDStreamingCheckpoint::read(in), algorithm, telemetry);
}

}  // namespace mutdbp::md
