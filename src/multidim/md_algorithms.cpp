#include "multidim/md_algorithms.h"

#include <stdexcept>

namespace mutdbp::md {
namespace {

double normalized_fill(const MDBinSnapshot& bin) {
  double total = 0.0;
  for (std::size_t d = 0; d < bin.level.size(); ++d) {
    total += bin.level[d] / bin.capacity[d];
  }
  return total / static_cast<double>(bin.level.size());
}

}  // namespace

Placement MDAnyFit::place(const MDArrivalView& item,
                          std::span<const MDBinSnapshot> open_bins) {
  fitting_.clear();
  for (const auto& bin : open_bins) {
    if (md_fits(bin, item.demand, fit_epsilon_)) fitting_.push_back(bin);
  }
  if (fitting_.empty()) return std::nullopt;
  return pick(item, fitting_);
}

BinIndex MDBestFit::pick(const MDArrivalView&,
                         std::span<const MDBinSnapshot> fitting) {
  BinIndex best = fitting.front().index;
  double best_fill = normalized_fill(fitting.front());
  for (const auto& bin : fitting.subspan(1)) {
    const double fill = normalized_fill(bin);
    if (fill > best_fill) {
      best_fill = fill;
      best = bin.index;
    }
  }
  return best;
}

BinIndex MDDotProduct::pick(const MDArrivalView& item,
                            std::span<const MDBinSnapshot> fitting) {
  // Maximize dot(normalized demand, normalized residual capacity): prefer
  // the bin with room exactly where this item needs it, so complementary
  // items share bins and no dimension is stranded.
  BinIndex best = fitting.front().index;
  double best_score = -1.0;
  for (const auto& bin : fitting) {
    double score = 0.0;
    for (std::size_t d = 0; d < item.demand.size(); ++d) {
      const double residual = (bin.capacity[d] - bin.level[d]) / bin.capacity[d];
      score += (item.demand[d] / bin.capacity[d]) * residual;
    }
    if (score > best_score) {
      best_score = score;
      best = bin.index;
    }
  }
  return best;
}

Placement MDNextFit::place(const MDArrivalView& item,
                           std::span<const MDBinSnapshot> open_bins) {
  if (available_.has_value()) {
    for (const auto& bin : open_bins) {
      if (bin.index == *available_) {
        if (md_fits(bin, item.demand, fit_epsilon_)) return bin.index;
        break;
      }
    }
    available_.reset();
  }
  return std::nullopt;
}

std::vector<std::string> md_algorithm_names() {
  return {"MDFirstFit", "MDBestFit", "MDDotProduct", "MDNextFit"};
}

std::unique_ptr<MDPackingAlgorithm> make_md_algorithm(std::string_view name,
                                                      double fit_epsilon) {
  if (name == "MDFirstFit") return std::make_unique<MDFirstFit>(fit_epsilon);
  if (name == "MDBestFit") return std::make_unique<MDBestFit>(fit_epsilon);
  if (name == "MDDotProduct") return std::make_unique<MDDotProduct>(fit_epsilon);
  if (name == "MDNextFit") return std::make_unique<MDNextFit>(fit_epsilon);
  throw std::invalid_argument("unknown MD algorithm: " + std::string(name));
}

}  // namespace mutdbp::md
