#include "multidim/md_algorithms.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mutdbp::md {
namespace {

/// The reference-path fill, matching VectorCapacityTree::fill_from bitwise:
/// raw level at dims == 1, otherwise the configured measure with uniform
/// 1/D weights (the only weighting the registry exposes).
double snapshot_fill(const MDBinSnapshot& bin, FitMeasure measure) {
  const std::size_t dims = bin.level.size();
  if (dims == 1) return bin.level[0];
  switch (measure) {
    case FitMeasure::kWeightedSum: {
      const double w = 1.0 / static_cast<double>(dims);
      double fill = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        fill += w * (bin.level[d] / bin.capacity[d]);
      }
      return fill;
    }
    case FitMeasure::kDominant: {
      double fill = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        fill = std::max(fill, bin.level[d] / bin.capacity[d]);
      }
      return fill;
    }
    case FitMeasure::kL2: {
      double fill = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        const double u = bin.level[d] / bin.capacity[d];
        fill += u * u;
      }
      return fill;
    }
  }
  return 0.0;  // unreachable
}

double dot_product_score(std::span<const double> demand,
                         std::span<const double> level,
                         std::span<const double> capacity) {
  double score = 0.0;
  for (std::size_t d = 0; d < demand.size(); ++d) {
    const double residual = (capacity[d] - level[d]) / capacity[d];
    score += (demand[d] / capacity[d]) * residual;
  }
  return score;
}

}  // namespace

Placement VectorAnyFit::place(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> open_bins) {
  fitting_.clear();
  for (const auto& bin : open_bins) {
    if (md_fits(bin, item.demand, fit_epsilon_)) fitting_.push_back(bin);
  }
  if (fitting_.empty()) return std::nullopt;
  return pick(item, fitting_);
}

Placement TreeVectorAnyFit::place(const MDArrivalView& item,
                                  std::span<const MDBinSnapshot> open_bins) {
  // An attached instance is driven by an MDSimulation that passes an empty
  // span (needs_snapshots() == false) — answer from the tree. Explicit
  // snapshots (tests, MDWithSnapshots<>) take the reference scan path.
  if (open_bins.empty() && attached_) {
    std::optional<BinIndex> hit;
    switch (query_) {
      case TreeQuery::kFirstFit:
        hit = tree_.first_fit(item.demand);
        break;
      case TreeQuery::kBestFit:
        hit = tree_.best_fit(item.demand);
        break;
      case TreeQuery::kWorstFit:
        hit = tree_.worst_fit(item.demand);
        break;
      case TreeQuery::kLastFit:
        hit = tree_.last_fit(item.demand);
        break;
      case TreeQuery::kDotProduct: {
        fitting_scratch_.clear();
        tree_.collect_fitting(item.demand, fitting_scratch_);
        double best_score = -std::numeric_limits<double>::infinity();
        for (const BinIndex bin : fitting_scratch_) {
          const double score = dot_product_score(item.demand, tree_.levels(bin),
                                                 tree_.capacity());
          // Strict >: the enumeration is index-ascending, so ties keep the
          // lowest-indexed bin — same rule as the reference scan.
          if (score > best_score) {
            best_score = score;
            hit = bin;
          }
        }
        break;
      }
    }
    if (!hit.has_value()) return std::nullopt;  // the Any Fit property
    return *hit;
  }
  return VectorAnyFit::place(item, open_bins);
}

void TreeVectorAnyFit::on_simulation_begin(std::span<const double> capacity,
                                           double /*fit_epsilon*/) {
  // The tree applies this instance's own epsilon, exactly as the snapshot
  // scan applies it in md_fits().
  tree_.begin(capacity, fit_epsilon(), track_fill_order_, measure_);
  attached_ = true;
}

void TreeVectorAnyFit::on_bin_opened(BinIndex bin, const MDArrivalView& first_item) {
  if (!attached_) return;
  const BinIndex assigned = tree_.append(first_item.demand);
  if (assigned != bin) {
    throw std::logic_error(
        "TreeVectorAnyFit: bin indices out of sync with the simulation");
  }
}

void TreeVectorAnyFit::on_item_placed(BinIndex bin, const MDArrivalView& /*item*/,
                                      std::span<const double> new_levels) {
  if (attached_) tree_.set_levels(bin, new_levels);
}

void TreeVectorAnyFit::on_item_departed(BinIndex bin,
                                        std::span<const double> /*demand*/,
                                        std::span<const double> new_levels,
                                        Time /*t*/) {
  if (attached_) tree_.set_levels(bin, new_levels);
}

void TreeVectorAnyFit::on_bin_closed(BinIndex bin, Time /*close_time*/) {
  if (attached_) tree_.close(bin);
}

void TreeVectorAnyFit::reset() { attached_ = false; }

BinIndex VectorFirstFit::pick(const MDArrivalView& /*item*/,
                              std::span<const MDBinSnapshot> fitting) {
  return fitting.front().index;  // fitting is sorted by opening order
}

BinIndex VectorBestFit::pick(const MDArrivalView& /*item*/,
                             std::span<const MDBinSnapshot> fitting) {
  BinIndex best = fitting.front().index;
  double best_fill = snapshot_fill(fitting.front(), measure());
  for (const auto& bin : fitting.subspan(1)) {
    const double fill = snapshot_fill(bin, measure());
    if (fill > best_fill) {
      best_fill = fill;
      best = bin.index;
    }
  }
  return best;
}

BinIndex VectorWorstFit::pick(const MDArrivalView& /*item*/,
                              std::span<const MDBinSnapshot> fitting) {
  BinIndex best = fitting.front().index;
  double best_fill = snapshot_fill(fitting.front(), measure());
  for (const auto& bin : fitting.subspan(1)) {
    const double fill = snapshot_fill(bin, measure());
    if (fill < best_fill) {
      best_fill = fill;
      best = bin.index;
    }
  }
  return best;
}

BinIndex VectorLastFit::pick(const MDArrivalView& /*item*/,
                             std::span<const MDBinSnapshot> fitting) {
  return fitting.back().index;
}

BinIndex VectorDotProduct::pick(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> fitting) {
  BinIndex best = fitting.front().index;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& bin : fitting) {
    const double score = dot_product_score(item.demand, bin.level, bin.capacity);
    if (score > best_score) {
      best_score = score;
      best = bin.index;
    }
  }
  return best;
}

Placement VectorNextFit::place(const MDArrivalView& item,
                               std::span<const MDBinSnapshot> open_bins) {
  // Kernel path: answer in O(D) from the hook-tracked levels of the
  // available bin, with the identical fit predicate.
  if (open_bins.empty() && attached_) {
    if (available_.has_value()) {
      bool fits = true;
      for (std::size_t d = 0; d < item.demand.size(); ++d) {
        if (available_levels_[d] + item.demand[d] > capacity_[d] + fit_epsilon_) {
          fits = false;
          break;
        }
      }
      if (fits) return *available_;
      // Doesn't fit: the available bin becomes unavailable forever.
      available_.reset();
    }
    return std::nullopt;  // open a new bin; on_bin_opened marks it available
  }

  // Reference path (explicit snapshots: tests, MDWithSnapshots<>).
  if (available_.has_value()) {
    for (const auto& bin : open_bins) {
      if (bin.index == *available_) {
        if (md_fits(bin, item.demand, fit_epsilon_)) return bin.index;
        break;
      }
    }
    available_.reset();
  }
  return std::nullopt;
}

void VectorNextFit::on_simulation_begin(std::span<const double> capacity,
                                        double /*fit_epsilon*/) {
  capacity_.assign(capacity.begin(), capacity.end());
  attached_ = true;
}

void VectorNextFit::on_bin_opened(BinIndex bin, const MDArrivalView& first_item) {
  available_ = bin;
  available_levels_.assign(first_item.demand.begin(), first_item.demand.end());
}

void VectorNextFit::on_item_placed(BinIndex bin, const MDArrivalView& /*item*/,
                                   std::span<const double> new_levels) {
  if (available_ == bin) {
    available_levels_.assign(new_levels.begin(), new_levels.end());
  }
}

void VectorNextFit::on_item_departed(BinIndex bin, std::span<const double> /*demand*/,
                                     std::span<const double> new_levels,
                                     Time /*t*/) {
  if (available_ == bin) {
    available_levels_.assign(new_levels.begin(), new_levels.end());
  }
}

void VectorNextFit::on_bin_closed(BinIndex bin, Time /*close_time*/) {
  // An available bin can close (all its items depart); the next arrival
  // then opens a fresh bin.
  if (available_ == bin) available_.reset();
}

void VectorNextFit::reset() {
  available_.reset();
  available_levels_.clear();
  attached_ = false;
}

std::vector<std::string> md_algorithm_names() {
  return {"VectorFirstFit", "VectorBestFit",  "VectorWorstFit",
          "VectorLastFit",  "VectorNextFit",  "DominantBestFit",
          "L2BestFit",      "DotProduct"};
}

std::unique_ptr<MDPackingAlgorithm> make_md_algorithm(std::string_view name,
                                                      double fit_epsilon) {
  if (name == "VectorFirstFit") return std::make_unique<VectorFirstFit>(fit_epsilon);
  if (name == "VectorBestFit") {
    return std::make_unique<VectorBestFit>(FitMeasure::kWeightedSum,
                                           "VectorBestFit", fit_epsilon);
  }
  if (name == "VectorWorstFit") {
    return std::make_unique<VectorWorstFit>(FitMeasure::kWeightedSum,
                                            "VectorWorstFit", fit_epsilon);
  }
  if (name == "VectorLastFit") return std::make_unique<VectorLastFit>(fit_epsilon);
  if (name == "VectorNextFit") return std::make_unique<VectorNextFit>(fit_epsilon);
  if (name == "DominantBestFit") {
    return std::make_unique<VectorBestFit>(FitMeasure::kDominant,
                                           "DominantBestFit", fit_epsilon);
  }
  if (name == "L2BestFit") {
    return std::make_unique<VectorBestFit>(FitMeasure::kL2, "L2BestFit",
                                           fit_epsilon);
  }
  if (name == "DotProduct") return std::make_unique<VectorDotProduct>(fit_epsilon);
  throw std::invalid_argument("unknown MD algorithm: " + std::string(name));
}

std::optional<std::string> md_scalar_counterpart(std::string_view name) {
  if (name == "VectorFirstFit") return "FirstFit";
  if (name == "VectorBestFit") return "BestFit";
  if (name == "VectorWorstFit") return "WorstFit";
  if (name == "VectorLastFit") return "LastFit";
  if (name == "VectorNextFit") return "NextFit";
  // The fill measures reduce to the raw level in 1-D, so the norm-based
  // Best Fit variants all degenerate to scalar Best Fit.
  if (name == "DominantBestFit") return "BestFit";
  if (name == "L2BestFit") return "BestFit";
  return std::nullopt;  // DotProduct
}

}  // namespace mutdbp::md
