// VectorCapacityTree: the multi-resource counterpart of the scalar
// CapacityTree (core/capacity_tree.h) — a tournament tree over the
// per-dimension levels of the bins opened so far, answering the vector
// Any Fit placement queries without the prototype's full linear scan:
//
//   * first_fit(d)  — lowest-indexed open bin with room in every dimension,
//   * last_fit(d)   — highest-indexed such bin,
//   * best_fit(d)   — fullest fitting bin under the configured fill measure,
//   * worst_fit(d)  — emptiest fitting bin under the configured fill measure,
//   * collect_fitting(d) — every fitting bin in index order (what the
//     score-maximizing rules, e.g. the dot-product heuristic, iterate).
//
// Each internal node caches the *component-wise minimum* of its subtree's
// level vectors. The per-dimension predicate `level[d] + demand[d] <=
// capacity[d] + fit_epsilon` (md_fits, verbatim) holding on a node's
// minima is a necessary condition for the subtree to contain a fitting
// bin — the minima of different dimensions may come from different bins —
// so first/last fit run a pruned backtracking descent. In one dimension
// the condition is exact, no backtracking ever happens, and the walk
// degenerates to the scalar CapacityTree descent: every query returns the
// same bin the scalar tree would, which is what makes the dims=1
// differential suite bit-exact. With d dimensions the pruning still skips
// every subtree that is saturated in *some* dimension, which is the common
// case that makes the linear scan expensive.
//
// Fill measures (best_fit/worst_fit ordering) are pluggable at begin():
//
//   * kWeightedSum — Σ_d w_d · level_d / cap_d  (default, w_d = 1/D; the
//     natural generalization of the scalar level and the measure the
//     vector Best Fit of Lee & Tang's DVBP evaluation uses),
//   * kDominant    — max_d level_d / cap_d  (dominant-resource / max-norm:
//     a bin is as full as its most loaded dimension),
//   * kL2          — Σ_d (level_d / cap_d)²  (quadratic norm: penalizes
//     imbalance between dimensions).
//
// Exactness contract at dims == 1: every measure reduces to the *raw
// level* (no normalization is applied in 1-D), so the (fill ↑, index ↓)
// order coincides bitwise with the scalar tree's (level ↑, index ↓) order
// and best/worst fit select the scalar bin, ties included. For dims > 1
// ties are broken toward the lowest bin index, mirroring the scalar rules.
//
// Like the scalar tree, closed bins keep their index forever and are
// marked with +infinity levels (which fail every fit test); dead slots are
// reclaimed by the same amortized compaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/algorithm.h"

namespace mutdbp::md {

/// How best_fit/worst_fit order bins by "fullness". See the file comment;
/// all measures coincide (raw level) at dims == 1.
enum class FitMeasure : std::uint8_t {
  kWeightedSum = 0,
  kDominant = 1,
  kL2 = 2,
};

class VectorCapacityTree {
 public:
  VectorCapacityTree() = default;

  /// (Re)initializes for a fresh run: forgets all bins, stores the vector
  /// capacity and fit epsilon used by every subsequent query.
  /// `track_fill_order` enables the auxiliary sorted index best_fit() and
  /// worst_fit() require (First/Last Fit pay nothing for it). `weights`
  /// applies to kWeightedSum only; empty means uniform 1/D.
  void begin(std::span<const double> capacity, double fit_epsilon,
             bool track_fill_order = false,
             FitMeasure measure = FitMeasure::kWeightedSum,
             std::span<const double> weights = {});

  /// Registers the next bin (indices assigned 0,1,2,... in call order,
  /// mirroring opening-order bin indices). O(D log m) amortized.
  BinIndex append(std::span<const double> level);

  /// Updates an open bin's level vector after a placement or departure.
  /// O(D log m).
  void set_levels(BinIndex bin, std::span<const double> level);

  /// Marks a bin closed; no query can return it again. O(D log m).
  void close(BinIndex bin);

  [[nodiscard]] std::optional<BinIndex> first_fit(std::span<const double> demand) const;
  [[nodiscard]] std::optional<BinIndex> last_fit(std::span<const double> demand) const;
  /// Require begin(..., track_fill_order = true).
  [[nodiscard]] std::optional<BinIndex> best_fit(std::span<const double> demand) const;
  [[nodiscard]] std::optional<BinIndex> worst_fit(std::span<const double> demand) const;

  /// Appends every open bin the demand fits into to `out`, in ascending
  /// index order (pruned subtree walk). The enumeration hook for
  /// query-dependent scoring rules (dot-product et al.).
  void collect_fitting(std::span<const double> demand,
                       std::vector<BinIndex>& out) const;

  [[nodiscard]] std::span<const double> levels(BinIndex bin) const {
    return {levels_.data() + bin * dims_, dims_};
  }
  [[nodiscard]] double level(BinIndex bin, std::size_t dim) const {
    return levels_[bin * dims_ + dim];
  }
  /// The configured fill measure evaluated on an open bin's current levels.
  [[nodiscard]] double fill_of(BinIndex bin) const {
    return fill_from(levels_.data() + bin * dims_);
  }
  [[nodiscard]] bool is_open(BinIndex bin) const {
    return bin * dims_ < levels_.size() && levels_[bin * dims_] != kClosed;
  }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return dims_ == 0 ? 0 : levels_.size() / dims_;
  }
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] std::span<const double> capacity() const noexcept { return capacity_; }
  [[nodiscard]] double fit_epsilon() const noexcept { return fit_epsilon_; }
  [[nodiscard]] FitMeasure measure() const noexcept { return measure_; }

 private:
  static constexpr double kClosed = std::numeric_limits<double>::infinity();

  /// The shared fit predicate over a level vector, verbatim md_fits()
  /// arithmetic (closed/padding slots hold +inf levels and always fail).
  [[nodiscard]] bool fits_levels(const double* level,
                                 std::span<const double> demand) const noexcept {
    for (std::size_t d = 0; d < dims_; ++d) {
      if (!(level[d] + demand[d] <= capacity_[d] + fit_epsilon_)) return false;
    }
    return true;
  }
  [[nodiscard]] bool node_may_fit(std::size_t node,
                                  std::span<const double> demand) const noexcept {
    return fits_levels(min_.data() + node * dims_, demand);
  }

  [[nodiscard]] double fill_from(const double* level) const noexcept;

  void update_slot(std::size_t slot, const double* level);
  [[noreturn]] void throw_not_open(const char* op, BinIndex bin) const;

  using FillEntry = std::pair<double, BinIndex>;  // (fill, bin)
  /// (fill ascending, index descending) — the scalar LevelOrder, verbatim,
  /// over the configured fill measure.
  struct FillOrder {
    bool operator()(const FillEntry& a, const FillEntry& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };
  void fill_index_insert(const FillEntry& e);
  void fill_index_erase(const FillEntry& e) noexcept;

  void rebuild(std::size_t new_leaf_cap);
  void compact();

  std::size_t dims_ = 0;
  std::vector<double> capacity_;
  std::vector<double> weights_;  ///< kWeightedSum multipliers (size dims_)
  double fit_epsilon_ = kDefaultFitEpsilon;
  bool track_fill_order_ = false;
  FitMeasure measure_ = FitMeasure::kWeightedSum;
  std::size_t open_count_ = 0;

  // Implicit tournament tree over slots, exactly as the scalar tree
  // (core/capacity_tree.h's layout comment applies) except every node
  // carries dims_ contiguous minima: node i's vector lives at
  // min_[i*dims_ .. (i+1)*dims_).
  std::size_t leaf_cap_ = 0;
  std::size_t slot_count_ = 0;
  std::vector<double> min_;
  std::vector<BinIndex> slot_bin_;
  std::vector<std::size_t> bin_slot_;
  std::vector<double> levels_;  ///< bin-major flat levels; +inf once closed
  std::vector<double> fills_;  ///< cached fill per bin (track_fill_order_ only)

  std::vector<FillEntry> by_fill_;  ///< sorted by FillOrder
  mutable std::vector<std::size_t> dfs_stack_;  ///< query scratch (single-threaded)
};

}  // namespace mutdbp::md
