#include "multidim/vector_capacity_tree.h"

#include <algorithm>
#include <string>

#include "core/error.h"

namespace mutdbp::md {

namespace {
// Same small floor as the scalar tree: depth hugs the concurrently-open
// bin count, and every update walks leaf-to-root.
constexpr std::size_t kMinLeafCap = 16;

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = kMinLeafCap;
  while (cap < n) cap *= 2;
  return cap;
}
}  // namespace

void VectorCapacityTree::begin(std::span<const double> capacity, double fit_epsilon,
                               bool track_fill_order, FitMeasure measure,
                               std::span<const double> weights) {
  if (capacity.empty()) {
    throw ValidationError("VectorCapacityTree: no dimensions");
  }
  for (const double c : capacity) {
    if (!(c > 0.0)) {
      throw ValidationError("VectorCapacityTree: capacity must be > 0 in every "
                            "dimension");
    }
  }
  if (fit_epsilon < 0.0) {
    throw ValidationError("VectorCapacityTree: fit_epsilon must be >= 0");
  }
  if (!weights.empty() && weights.size() != capacity.size()) {
    throw ValidationError("VectorCapacityTree: weights must match dimensions");
  }
  dims_ = capacity.size();
  capacity_.assign(capacity.begin(), capacity.end());
  if (weights.empty()) {
    weights_.assign(dims_, 1.0 / static_cast<double>(dims_));
  } else {
    weights_.assign(weights.begin(), weights.end());
  }
  fit_epsilon_ = fit_epsilon;
  track_fill_order_ = track_fill_order;
  measure_ = measure;
  open_count_ = 0;
  leaf_cap_ = 0;
  slot_count_ = 0;
  min_.clear();
  slot_bin_.clear();
  bin_slot_.clear();
  levels_.clear();
  fills_.clear();
  by_fill_.clear();
}

double VectorCapacityTree::fill_from(const double* level) const noexcept {
  // 1-D specialization: the raw level, bitwise, whatever the measure — the
  // exactness contract the dims=1 differential suite rests on (file
  // comment).
  if (dims_ == 1) return level[0];
  switch (measure_) {
    case FitMeasure::kWeightedSum: {
      double fill = 0.0;
      for (std::size_t d = 0; d < dims_; ++d) {
        fill += weights_[d] * (level[d] / capacity_[d]);
      }
      return fill;
    }
    case FitMeasure::kDominant: {
      double fill = 0.0;
      for (std::size_t d = 0; d < dims_; ++d) {
        fill = std::max(fill, level[d] / capacity_[d]);
      }
      return fill;
    }
    case FitMeasure::kL2: {
      double fill = 0.0;
      for (std::size_t d = 0; d < dims_; ++d) {
        const double u = level[d] / capacity_[d];
        fill += u * u;
      }
      return fill;
    }
  }
  return 0.0;  // unreachable
}

void VectorCapacityTree::fill_index_insert(const FillEntry& e) {
  by_fill_.insert(
      std::lower_bound(by_fill_.begin(), by_fill_.end(), e, FillOrder{}), e);
}

void VectorCapacityTree::fill_index_erase(const FillEntry& e) noexcept {
  // Unique and always present: callers erase exactly what they inserted
  // (fills_ caches the inserted key so it is found bitwise).
  const auto it = std::lower_bound(by_fill_.begin(), by_fill_.end(), e, FillOrder{});
  by_fill_.erase(it);
}

void VectorCapacityTree::update_slot(std::size_t slot, const double* level) {
  std::size_t node = leaf_cap_ + slot;
  for (std::size_t d = 0; d < dims_; ++d) min_[node * dims_ + d] = level[d];
  for (node /= 2; node >= 1; node /= 2) {
    const std::size_t l = 2 * node, r = 2 * node + 1;
    bool changed = false;
    for (std::size_t d = 0; d < dims_; ++d) {
      const double a = min_[l * dims_ + d], b = min_[r * dims_ + d];
      const double m = a <= b ? a : b;
      if (min_[node * dims_ + d] != m) {
        min_[node * dims_ + d] = m;
        changed = true;
      }
    }
    // Unchanged in every dimension means every higher ancestor recombines
    // identical inputs (levels are stored, never recomputed): stop.
    if (!changed) break;
  }
}

void VectorCapacityTree::rebuild(std::size_t new_leaf_cap) {
  min_.assign(2 * new_leaf_cap * dims_, kClosed);
  leaf_cap_ = new_leaf_cap;
  for (std::size_t s = 0; s < slot_count_; ++s) {
    const double* level = levels_.data() + slot_bin_[s] * dims_;
    for (std::size_t d = 0; d < dims_; ++d) {
      min_[(leaf_cap_ + s) * dims_ + d] = level[d];
    }
  }
  for (std::size_t i = leaf_cap_ - 1; i >= 1; --i) {
    const std::size_t l = 2 * i, r = 2 * i + 1;
    for (std::size_t d = 0; d < dims_; ++d) {
      const double a = min_[l * dims_ + d], b = min_[r * dims_ + d];
      min_[i * dims_ + d] = a <= b ? a : b;
    }
  }
}

void VectorCapacityTree::compact() {
  std::size_t live = 0;
  for (std::size_t s = 0; s < slot_count_; ++s) {
    const BinIndex bin = slot_bin_[s];
    if (levels_[bin * dims_] == kClosed) continue;
    slot_bin_[live] = bin;  // relative order preserved: index order intact
    bin_slot_[bin] = live;
    ++live;
  }
  slot_bin_.resize(live);
  slot_count_ = live;
  rebuild(pow2_at_least(2 * live));
}

void VectorCapacityTree::throw_not_open(const char* op, BinIndex bin) const {
  throw SimulationError("VectorCapacityTree: " + std::string(op) +
                        " on unknown or closed bin " + std::to_string(bin));
}

BinIndex VectorCapacityTree::append(std::span<const double> level) {
  if (level.size() != dims_) {
    throw SimulationError("VectorCapacityTree: append with wrong dimensionality");
  }
  const BinIndex bin = bin_count();
  levels_.insert(levels_.end(), level.begin(), level.end());
  if (slot_count_ == leaf_cap_) {
    // Same amortization as the scalar tree: reclaim when mostly dead,
    // otherwise genuinely grow.
    if (open_count_ + 1 <= leaf_cap_ / 2) {
      compact();
    } else {
      rebuild(leaf_cap_ == 0 ? kMinLeafCap : leaf_cap_ * 2);
    }
  }
  const std::size_t slot = slot_count_++;
  slot_bin_.push_back(bin);
  bin_slot_.push_back(slot);
  update_slot(slot, levels_.data() + bin * dims_);
  ++open_count_;
  if (track_fill_order_) {
    const double fill = fill_from(levels_.data() + bin * dims_);
    fills_.push_back(fill);
    fill_index_insert({fill, bin});
  } else {
    fills_.push_back(0.0);
  }
  return bin;
}

void VectorCapacityTree::set_levels(BinIndex bin, std::span<const double> level) {
  if (!is_open(bin)) throw_not_open("set_levels", bin);
  if (level.size() != dims_) {
    throw SimulationError("VectorCapacityTree: set_levels with wrong dimensionality");
  }
  double* stored = levels_.data() + bin * dims_;
  if (track_fill_order_) {
    fill_index_erase({fills_[bin], bin});
    std::copy(level.begin(), level.end(), stored);
    const double fill = fill_from(stored);
    fills_[bin] = fill;
    fill_index_insert({fill, bin});
  } else {
    std::copy(level.begin(), level.end(), stored);
  }
  update_slot(bin_slot_[bin], stored);
}

void VectorCapacityTree::close(BinIndex bin) {
  if (!is_open(bin)) throw_not_open("close", bin);
  if (track_fill_order_) fill_index_erase({fills_[bin], bin});
  double* stored = levels_.data() + bin * dims_;
  for (std::size_t d = 0; d < dims_; ++d) stored[d] = kClosed;
  update_slot(bin_slot_[bin], stored);
  --open_count_;
  if (leaf_cap_ > kMinLeafCap && open_count_ * 4 <= slot_count_) compact();
}

std::optional<BinIndex> VectorCapacityTree::first_fit(
    std::span<const double> demand) const {
  if (slot_count_ == 0 || !node_may_fit(1, demand)) return std::nullopt;
  // Backtracking DFS, left child first: leaves are visited in slot order —
  // which agrees with bin-index order — and the leaf test is exact (a
  // leaf's minima ARE its bin's levels), so the first fitting leaf is the
  // lowest-indexed fitting bin. In 1-D node_may_fit is exact and no
  // subtree is ever entered in vain.
  dfs_stack_.clear();
  dfs_stack_.push_back(1);
  while (!dfs_stack_.empty()) {
    const std::size_t node = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (!node_may_fit(node, demand)) continue;
    if (node >= leaf_cap_) return slot_bin_[node - leaf_cap_];
    dfs_stack_.push_back(2 * node + 1);  // right explored after left
    dfs_stack_.push_back(2 * node);
  }
  return std::nullopt;
}

std::optional<BinIndex> VectorCapacityTree::last_fit(
    std::span<const double> demand) const {
  if (slot_count_ == 0 || !node_may_fit(1, demand)) return std::nullopt;
  dfs_stack_.clear();
  dfs_stack_.push_back(1);
  while (!dfs_stack_.empty()) {
    const std::size_t node = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (!node_may_fit(node, demand)) continue;
    if (node >= leaf_cap_) return slot_bin_[node - leaf_cap_];
    dfs_stack_.push_back(2 * node);  // left explored after right
    dfs_stack_.push_back(2 * node + 1);
  }
  return std::nullopt;
}

std::optional<BinIndex> VectorCapacityTree::best_fit(
    std::span<const double> demand) const {
  if (!track_fill_order_) {
    throw SimulationError("VectorCapacityTree: best_fit requires track_fill_order");
  }
  // Scan from the full end of the (fill ↑, index ↓) order. The first entry
  // passing the exact vector fit test has the maximal fill among fitting
  // bins; within a fill tie class the reversed order is index-ascending,
  // so the lowest index wins ties — the scalar Best Fit rule. At dims=1
  // fitting entries form a prefix of the order (the predicate is monotone
  // in the level), making this the scalar boundary search's answer.
  for (auto it = by_fill_.rbegin(); it != by_fill_.rend(); ++it) {
    if (fits_levels(levels_.data() + it->second * dims_, demand)) {
      return it->second;
    }
  }
  return std::nullopt;
}

std::optional<BinIndex> VectorCapacityTree::worst_fit(
    std::span<const double> demand) const {
  if (!track_fill_order_) {
    throw SimulationError("VectorCapacityTree: worst_fit requires track_fill_order");
  }
  // Scan from the empty end. Within a fill tie class entries are stored
  // index-descending, so after the first fitting entry the scan continues
  // through the rest of its class taking the last fitting one — the lowest
  // index among equally-empty fitting bins, the scalar Worst Fit tie rule.
  for (auto it = by_fill_.begin(); it != by_fill_.end(); ++it) {
    if (!fits_levels(levels_.data() + it->second * dims_, demand)) continue;
    BinIndex chosen = it->second;
    const double fill = it->first;
    for (++it; it != by_fill_.end() && it->first == fill; ++it) {
      if (fits_levels(levels_.data() + it->second * dims_, demand)) {
        chosen = it->second;
      }
    }
    return chosen;
  }
  return std::nullopt;
}

void VectorCapacityTree::collect_fitting(std::span<const double> demand,
                                         std::vector<BinIndex>& out) const {
  if (slot_count_ == 0 || !node_may_fit(1, demand)) return;
  dfs_stack_.clear();
  dfs_stack_.push_back(1);
  while (!dfs_stack_.empty()) {
    const std::size_t node = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (!node_may_fit(node, demand)) continue;
    if (node >= leaf_cap_) {
      out.push_back(slot_bin_[node - leaf_cap_]);
      continue;
    }
    dfs_stack_.push_back(2 * node + 1);
    dfs_stack_.push_back(2 * node);
  }
}

}  // namespace mutdbp::md
