#include "multidim/md_core.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>

#include "core/checkpoint.h"
#include "core/error.h"
#include "telemetry/telemetry.h"

namespace mutdbp::md {

namespace {

[[noreturn]] void throw_item_error(std::size_t row, ItemId id, const std::string& what) {
  throw ValidationError("MDItemList: item " + std::to_string(id) + " (row " +
                        std::to_string(row) + "): " + what);
}

}  // namespace

MDItemList::MDItemList(std::vector<MDItem> items, std::vector<double> capacity)
    : items_(std::move(items)), capacity_(std::move(capacity)) {
  if (capacity_.empty()) throw ValidationError("MDItemList: no dimensions");
  for (const double c : capacity_) {
    if (!std::isfinite(c) || !(c > 0.0)) {
      throw ValidationError(
          "MDItemList: capacity must be finite and > 0 in every dimension");
    }
  }
  for (std::size_t row = 0; row < items_.size(); ++row) {
    const MDItem& item = items_[row];
    if (item.demand.size() != capacity_.size()) {
      throw_item_error(row, item.id,
                       "has " + std::to_string(item.demand.size()) +
                           " dimensions, expected " +
                           std::to_string(capacity_.size()));
    }
    for (std::size_t d = 0; d < capacity_.size(); ++d) {
      // ItemList-grade validation, per dimension: demand must be finite and
      // in (0, capacity]. The `!(x > 0)` form also rejects NaN, which the
      // old prototype let straight through.
      if (!std::isfinite(item.demand[d]) || !(item.demand[d] > 0.0) ||
          item.demand[d] > capacity_[d]) {
        throw_item_error(
            row, item.id,
            "demand[" + std::to_string(d) + "] must be in (0, capacity]");
      }
    }
    if (!std::isfinite(item.active.left) || !std::isfinite(item.active.right) ||
        !(item.active.left < item.active.right)) {
      throw_item_error(row, item.id, "departure must be after arrival");
    }
  }
  // Canonical schedule: time ascending; departures before arrivals at equal
  // times; id order within a kind — ItemList::schedule(), verbatim.
  schedule_.reserve(items_.size() * 2);
  for (std::size_t pos = 0; pos < items_.size(); ++pos) {
    const MDItem& item = items_[pos];
    schedule_.push_back({item.arrival(), item.id, pos, true});
    schedule_.push_back({item.departure(), item.id, pos, false});
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const MDScheduledEvent& a, const MDScheduledEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.is_arrival != b.is_arrival) return !a.is_arrival;
              return a.id < b.id;
            });
}

double MDItemList::mu() const noexcept {
  if (items_.empty()) return 1.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& item : items_) {
    lo = std::min(lo, item.duration());
    hi = std::max(hi, item.duration());
  }
  return hi / lo;
}

Time MDItemList::span() const {
  std::vector<Interval> intervals;
  intervals.reserve(items_.size());
  for (const auto& item : items_) intervals.push_back(item.active);
  // Sorted insertion keeps IntervalSet::insert O(1) amortized, as the
  // scalar active_union() does.
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.left < b.left; });
  IntervalSet set;
  for (const auto& iv : intervals) set.insert(iv);
  return set.total_length();
}

double MDItemList::load_ceiling_bound() const {
  return md_lower_bounds(*this).load_ceiling;
}

MDLowerBounds md_lower_bounds(const MDItemList& items) {
  if (items.empty()) return {};
  VectorLowerBoundAccumulator acc(items.capacity());
  for (const MDScheduledEvent& event : items.schedule()) {
    acc.advance_to(event.t);
    if (event.is_arrival) {
      acc.apply_arrival(items[event.item_pos].demand);
    } else {
      acc.apply_departure(items[event.item_pos].demand);
    }
  }
  return {acc.prop1(), acc.prop2(), acc.load_ceiling()};
}

double md_prop1_bound(const MDItemList& items) { return md_lower_bounds(items).prop1; }
double md_prop2_bound(const MDItemList& items) { return md_lower_bounds(items).prop2; }
double md_load_ceiling_bound(const MDItemList& items) {
  return md_lower_bounds(items).load_ceiling;
}
double md_combined_lower_bound(const MDItemList& items) {
  return md_lower_bounds(items).combined();
}

bool md_fits(const MDBinSnapshot& bin, std::span<const double> demand,
             double fit_epsilon) noexcept {
  for (std::size_t d = 0; d < demand.size(); ++d) {
    if (bin.level[d] + demand[d] > bin.capacity[d] + fit_epsilon) return false;
  }
  return true;
}

std::uint64_t md_packing_digest(const MDPackingResult& result) {
  // Byte-compatible with the scalar packing_digest() at dims == 1 (header
  // comment): the only difference is the demand loop, which emits exactly
  // one word — the size — in 1-D.
  std::uint64_t h = fnv1a64(nullptr, 0);
  const auto mix = [&h](std::uint64_t v) { h = fnv1a64(&v, sizeof(v), h); };
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (const MDBinRecord& bin : result.bins) {
    mix(bin.index);
    mix(bits(bin.usage.left));
    mix(bits(bin.usage.right));
    for (const MDPlacementRecord& placement : bin.items) {
      mix(placement.item);
      for (const double demand : placement.demand) mix(bits(demand));
      mix(bits(placement.active.left));
      mix(bits(placement.active.right));
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// MDSimulation

MDSimulation::MDSimulation(MDPackingAlgorithm& algorithm, MDSimulationOptions options)
    : algorithm_(algorithm),
      options_(std::move(options)),
      now_(-std::numeric_limits<double>::infinity()),
      usage_prev_t_(-std::numeric_limits<double>::infinity()) {
  if (options_.capacity.empty()) {
    throw ValidationError("MDSimulation: capacity must name at least one dimension");
  }
  for (const double c : options_.capacity) {
    if (!std::isfinite(c) || !(c > 0.0)) {
      throw ValidationError(
          "MDSimulation: capacity must be finite and > 0 in every dimension");
    }
  }
  if (options_.fit_epsilon < 0.0) {
    throw ValidationError("MDSimulation: fit_epsilon must be >= 0");
  }
  // Same contract as the scalar engine: start from the algorithm's fresh
  // state so any two runs over identical events decide identically.
  algorithm_.reset();
  use_snapshots_ = algorithm_.needs_snapshots();
  algorithm_.on_simulation_begin(options_.capacity, options_.fit_epsilon);
  if (options_.track_bounds) bounds_.reset(options_.capacity);
  if (options_.telemetry != nullptr) {
    options_.telemetry->on_run_begin(this, algorithm_.name(), options_.capacity[0]);
    auto& metrics = options_.telemetry->metrics();
    ctr_items_placed_ = metrics.counter("mutdbp_md_items_placed_total",
                                        "vector items placed across MD runs");
    ctr_items_departed_ = metrics.counter("mutdbp_md_items_departed_total",
                                          "vector items departed across MD runs");
    ctr_bins_opened_ = metrics.counter("mutdbp_md_bins_opened_total",
                                       "bins opened across MD runs");
    ctr_bins_closed_ = metrics.counter("mutdbp_md_bins_closed_total",
                                       "bins closed across MD runs");
  }
}

MDSimulation::~MDSimulation() = default;
MDSimulation::MDSimulation(MDSimulation&&) noexcept = default;

void MDSimulation::advance_time(Time t) {
  if (t < now_) {
    throw ValidationError("MDSimulation: time moved backwards (event at t=" +
                          std::to_string(t) + " < now=" + std::to_string(now_) + ")");
  }
  now_ = t;
  // Usage integral accrues with the open-bin count as it stood before the
  // event at t (the count only changes at events).
  if (t > usage_prev_t_) {
    if (open_count_ > 0) {
      usage_integral_ += static_cast<double>(open_count_) * (t - usage_prev_t_);
    }
    usage_prev_t_ = t;
  }
}

void MDSimulation::report_bounds(Time t) {
  if (options_.telemetry == nullptr || !options_.track_bounds) return;
  options_.telemetry->monitor().on_vector_event(this, t, open_count_,
                                                bounds_.prop1(), bounds_.prop2(),
                                                bounds_.load_ceiling());
}

BinIndex MDSimulation::arrive(ItemId id, std::span<const double> demand, Time t) {
  if (finished_) throw SimulationError("MDSimulation: arrive() after finish()");
  if (demand.size() != options_.capacity.size()) {
    throw ValidationError("MDSimulation: item " + std::to_string(id) + " has " +
                          std::to_string(demand.size()) + " dimensions, expected " +
                          std::to_string(options_.capacity.size()));
  }
  for (std::size_t d = 0; d < demand.size(); ++d) {
    if (!std::isfinite(demand[d]) || !(demand[d] > 0.0) ||
        demand[d] > options_.capacity[d]) {
      throw ValidationError("MDSimulation: item " + std::to_string(id) +
                            " demand[" + std::to_string(d) +
                            "] must be in (0, capacity]");
    }
  }
  advance_time(t);
  const auto [slot, inserted] =
      active_.try_emplace(id, ActiveRef{0, placements_.size()});
  if (!inserted) {
    throw ValidationError("MDSimulation: item id " + std::to_string(id) +
                          " is already active");
  }

  const MDArrivalView view{id, demand, t};
  Placement choice;
  if (use_snapshots_) {
    snapshot_scratch_.clear();
    for (BinIndex idx = open_head_; idx != kNoBin; idx = bins_[idx].open_next) {
      const BinState& bin = bins_[idx];
      snapshot_scratch_.push_back(MDBinSnapshot{idx, bin.level, options_.capacity,
                                                bin.open_time, bin.active_count});
    }
    choice = algorithm_.place(view, snapshot_scratch_);
  } else {
    choice = algorithm_.place(view, {});
  }

  BinIndex target = 0;
  if (choice.has_value()) {
    target = *choice;
    if (target >= bins_.size() || !bins_[target].open) {
      active_.erase(id);
      throw SimulationError(std::string(algorithm_.name()) + " placed item " +
                            std::to_string(id) + " in bin " +
                            std::to_string(target) + " which is not open");
    }
    BinState& bin = bins_[target];
    for (std::size_t d = 0; d < demand.size(); ++d) {
      if (bin.level[d] + demand[d] > options_.capacity[d] + options_.fit_epsilon) {
        active_.erase(id);
        throw SimulationError(std::string(algorithm_.name()) + " overfilled bin " +
                              std::to_string(target) + " dimension " +
                              std::to_string(d) + " with item " +
                              std::to_string(id));
      }
    }
    // Validate every dimension first, then mutate: a throw leaves the bin
    // untouched.
    for (std::size_t d = 0; d < demand.size(); ++d) bin.level[d] += demand[d];
    ++bin.active_count;
    slot->second.bin = target;
    placements_.push_back(
        {target,
         {id,
          std::vector<double>(demand.begin(), demand.end()),
          {t, std::numeric_limits<double>::infinity()}}});
    algorithm_.on_item_placed(target, view, bin.level);
    if (options_.telemetry != nullptr) {
      options_.telemetry->metrics().add(ctr_items_placed_);
    }
  } else {
    target = static_cast<BinIndex>(bins_.size());
    BinState bin;
    bin.index = target;
    bin.open_time = t;
    bin.open = true;
    bin.level.assign(demand.begin(), demand.end());
    bin.active_count = 1;
    bin.open_prev = open_tail_;
    bins_.push_back(std::move(bin));
    if (open_tail_ != kNoBin) {
      bins_[open_tail_].open_next = target;
    } else {
      open_head_ = target;
    }
    open_tail_ = target;
    ++open_count_;
    max_concurrent_ = std::max(max_concurrent_, open_count_);
    slot->second.bin = target;
    placements_.push_back(
        {target,
         {id,
          std::vector<double>(demand.begin(), demand.end()),
          {t, std::numeric_limits<double>::infinity()}}});
    algorithm_.on_bin_opened(target, view);
    if (options_.telemetry != nullptr) {
      auto& metrics = options_.telemetry->metrics();
      metrics.add(ctr_items_placed_);
      metrics.add(ctr_bins_opened_);
    }
  }
  if (options_.track_bounds) {
    bounds_.advance_to(t);
    bounds_.apply_arrival(demand);
  }
  report_bounds(t);
  return target;
}

void MDSimulation::close_bin(BinState& bin, Time t) {
  bin.open = false;
  bin.close_time = t;
  if (bin.open_prev != kNoBin) {
    bins_[bin.open_prev].open_next = bin.open_next;
  } else {
    open_head_ = bin.open_next;
  }
  if (bin.open_next != kNoBin) {
    bins_[bin.open_next].open_prev = bin.open_prev;
  } else {
    open_tail_ = bin.open_prev;
  }
  bin.open_prev = bin.open_next = kNoBin;
  --open_count_;
  algorithm_.on_bin_closed(bin.index, t);
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().add(ctr_bins_closed_);
  }
}

void MDSimulation::depart(ItemId id, Time t) {
  if (finished_) throw SimulationError("MDSimulation: depart() after finish()");
  advance_time(t);
  const auto it = active_.find(id);
  if (it == active_.end()) {
    throw ValidationError("MDSimulation: departing item " + std::to_string(id) +
                          " is not active");
  }
  const ActiveRef ref = it->second;
  active_.erase(it);
  BinState& bin = bins_[ref.bin];
  MDPlacementRecord& record = placements_[ref.placement_pos].record;
  record.active.right = t;
  const std::vector<double>& demand = record.demand;
  for (std::size_t d = 0; d < demand.size(); ++d) bin.level[d] -= demand[d];
  --bin.active_count;
  if (bin.active_count == 0) {
    // Cancel floating-point residue before the hook, exactly like the
    // scalar engine, so hooks observe the zeroed levels.
    std::fill(bin.level.begin(), bin.level.end(), 0.0);
  }
  algorithm_.on_item_departed(ref.bin, demand, bin.level, t);
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().add(ctr_items_departed_);
  }
  if (bin.active_count == 0) close_bin(bin, t);
  if (options_.track_bounds) {
    bounds_.advance_to(t);
    bounds_.apply_departure(demand);
  }
  report_bounds(t);
}

MDPackingResult MDSimulation::materialize(bool final) const {
  MDPackingResult result;
  result.bins.reserve(bins_.size());
  for (const BinState& bin : bins_) {
    MDBinRecord record;
    record.index = bin.index;
    record.usage = {bin.open_time, bin.open ? now_ : bin.close_time};
    result.bins.push_back(std::move(record));
  }
  for (const PooledPlacement& placement : placements_) {
    MDPlacementRecord record = placement.record;
    if (record.active.right == std::numeric_limits<double>::infinity()) {
      // Only reachable from partial_result(): still-active placements are
      // cut at the frontier. finish() requires every item to have departed.
      record.active.right = now_;
    }
    result.bins[placement.bin].items.push_back(std::move(record));
  }
  (void)final;
  return result;
}

MDPackingResult MDSimulation::finish() {
  if (finished_) throw SimulationError("MDSimulation: finish() called twice");
  if (!active_.empty()) {
    throw SimulationError("MDSimulation: finish() with " +
                          std::to_string(active_.size()) + " items still active");
  }
  finished_ = true;
  if (options_.telemetry != nullptr) {
    options_.telemetry->on_run_finished(this, std::isfinite(now_) ? now_ : 0.0);
  }
  return materialize(/*final=*/true);
}

MDPackingResult MDSimulation::partial_result() const {
  if (finished_) {
    throw SimulationError("MDSimulation: partial_result() after finish()");
  }
  return materialize(/*final=*/false);
}

void MDSimulation::reserve(std::size_t expected_items) {
  placements_.reserve(placements_.size() + expected_items);
  active_.reserve(expected_items);
}

MDBoundsState MDSimulation::bounds_state() const noexcept {
  MDBoundsState state;
  state.usage = usage_integral_;
  if (options_.track_bounds) {
    state.prop1 = bounds_.prop1();
    state.prop2 = bounds_.prop2();
    state.load_ceiling = bounds_.load_ceiling();
    state.lower_bound = bounds_.combined();
    state.ratio = state.lower_bound > 0.0 ? state.usage / state.lower_bound : 0.0;
  }
  return state;
}

MDPackingResult md_simulate(const MDItemList& items, MDPackingAlgorithm& algorithm,
                            double fit_epsilon, telemetry::Telemetry* telemetry) {
  MDSimulationOptions options;
  options.capacity = items.capacity();
  options.fit_epsilon = fit_epsilon;
  options.telemetry = telemetry;
  MDSimulation sim(algorithm, std::move(options));
  sim.reserve(items.size());
  for (const MDScheduledEvent& event : items.schedule()) {
    if (event.is_arrival) {
      (void)sim.arrive(event.id, items[event.item_pos].demand, event.t);
    } else {
      sim.depart(event.id, event.t);
    }
  }
  return sim.finish();
}

}  // namespace mutdbp::md
