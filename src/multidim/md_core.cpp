#include "multidim/md_core.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace mutdbp::md {

MDItemList::MDItemList(std::vector<MDItem> items, std::vector<double> capacity)
    : items_(std::move(items)), capacity_(std::move(capacity)) {
  if (capacity_.empty()) throw std::invalid_argument("MDItemList: no dimensions");
  for (const double c : capacity_) {
    if (!(c > 0.0)) throw std::invalid_argument("MDItemList: capacity must be > 0");
  }
  for (const auto& item : items_) {
    if (item.demand.size() != capacity_.size()) {
      throw std::invalid_argument("MDItemList: item " + std::to_string(item.id) +
                                  " has wrong dimensionality");
    }
    bool positive = false;
    for (std::size_t d = 0; d < capacity_.size(); ++d) {
      if (item.demand[d] < 0.0 || item.demand[d] > capacity_[d]) {
        throw std::invalid_argument("MDItemList: item " + std::to_string(item.id) +
                                    " demand outside [0, capacity]");
      }
      positive = positive || item.demand[d] > 0.0;
    }
    if (!positive) {
      throw std::invalid_argument("MDItemList: item " + std::to_string(item.id) +
                                  " has zero demand");
    }
    if (!(item.active.left < item.active.right)) {
      throw std::invalid_argument("MDItemList: item " + std::to_string(item.id) +
                                  " has empty activity interval");
    }
  }
}

double MDItemList::mu() const noexcept {
  if (items_.empty()) return 1.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& item : items_) {
    lo = std::min(lo, item.duration());
    hi = std::max(hi, item.duration());
  }
  return hi / lo;
}

Time MDItemList::span() const {
  IntervalSet set;
  std::vector<Interval> intervals;
  intervals.reserve(items_.size());
  for (const auto& item : items_) intervals.push_back(item.active);
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.left < b.left; });
  for (const auto& iv : intervals) set.insert(iv);
  return set.total_length();
}

double MDItemList::load_ceiling_bound() const {
  if (items_.empty()) return 0.0;
  struct Event {
    Time t;
    const MDItem* item;
    bool arrival;
  };
  std::vector<Event> events;
  events.reserve(items_.size() * 2);
  for (const auto& item : items_) {
    events.push_back({item.arrival(), &item, true});
    events.push_back({item.departure(), &item, false});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.arrival < b.arrival;  // departures first
  });

  std::vector<double> load(capacity_.size(), 0.0);
  std::size_t active = 0;
  double integral = 0.0;
  Time prev = events.front().t;
  for (const auto& event : events) {
    if (event.t > prev) {
      if (active > 0) {
        double bins = 1.0;
        for (std::size_t d = 0; d < capacity_.size(); ++d) {
          bins = std::max(bins, std::ceil(load[d] / capacity_[d] - 1e-9));
        }
        integral += bins * (event.t - prev);
      }
      prev = event.t;
    }
    for (std::size_t d = 0; d < capacity_.size(); ++d) {
      load[d] += event.arrival ? event.item->demand[d] : -event.item->demand[d];
    }
    if (event.arrival) {
      ++active;
    } else {
      --active;
    }
    if (active == 0) std::fill(load.begin(), load.end(), 0.0);
  }
  return integral;
}

bool md_fits(const MDBinSnapshot& bin, std::span<const double> demand,
             double fit_epsilon) noexcept {
  for (std::size_t d = 0; d < demand.size(); ++d) {
    if (bin.level[d] + demand[d] > bin.capacity[d] + fit_epsilon) return false;
  }
  return true;
}

MDPackingResult md_simulate(const MDItemList& items, MDPackingAlgorithm& algorithm,
                            double fit_epsilon) {
  algorithm.reset();

  struct BinState {
    BinIndex index = 0;
    Time open_time = 0.0;
    std::vector<double> level;
    std::size_t active_count = 0;
    std::vector<ItemId> members;
    bool open = false;
    Time close_time = 0.0;
  };
  std::vector<BinState> bins;
  std::vector<BinIndex> open_bins;
  std::unordered_map<ItemId, BinIndex> bin_of;

  struct Event {
    Time t;
    bool arrival;
    const MDItem* item;
  };
  std::vector<Event> events;
  events.reserve(items.size() * 2);
  for (const auto& item : items) {
    events.push_back({item.arrival(), true, &item});
    events.push_back({item.departure(), false, &item});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.arrival != b.arrival) return !a.arrival;
    return a.item->id < b.item->id;
  });

  for (const auto& event : events) {
    const MDItem& item = *event.item;
    if (event.arrival) {
      std::vector<MDBinSnapshot> snaps;
      snaps.reserve(open_bins.size());
      for (const BinIndex idx : open_bins) {
        snaps.push_back(MDBinSnapshot{idx, bins[idx].level, items.capacity(),
                                      bins[idx].open_time, bins[idx].active_count});
      }
      const Placement choice =
          algorithm.place(MDArrivalView{item.id, item.demand, event.t}, snaps);
      if (choice.has_value()) {
        const BinIndex target = *choice;
        if (!std::binary_search(open_bins.begin(), open_bins.end(), target)) {
          throw std::logic_error(std::string(algorithm.name()) +
                                 ": placement into a bin that is not open");
        }
        BinState& bin = bins[target];
        for (std::size_t d = 0; d < item.demand.size(); ++d) {
          if (bin.level[d] + item.demand[d] > items.capacity()[d] + fit_epsilon) {
            throw std::logic_error(std::string(algorithm.name()) +
                                   ": overfilled dimension " + std::to_string(d));
          }
          bin.level[d] += item.demand[d];
        }
        ++bin.active_count;
        bin.members.push_back(item.id);
        bin_of[item.id] = target;
      } else {
        BinState bin;
        bin.index = bins.size();
        bin.open_time = event.t;
        bin.level = item.demand;
        bin.active_count = 1;
        bin.members.push_back(item.id);
        bin.open = true;
        bin_of[item.id] = bin.index;
        open_bins.push_back(bin.index);
        bins.push_back(std::move(bin));
        algorithm.on_bin_opened(bins.back().index,
                                MDArrivalView{item.id, item.demand, event.t});
      }
    } else {
      const BinIndex target = bin_of.at(item.id);
      BinState& bin = bins[target];
      for (std::size_t d = 0; d < item.demand.size(); ++d) {
        bin.level[d] -= item.demand[d];
      }
      --bin.active_count;
      if (bin.active_count == 0) {
        std::fill(bin.level.begin(), bin.level.end(), 0.0);
        bin.open = false;
        bin.close_time = event.t;
        open_bins.erase(
            std::lower_bound(open_bins.begin(), open_bins.end(), target));
        algorithm.on_bin_closed(target, event.t);
      }
    }
  }

  MDPackingResult result;
  result.bins.reserve(bins.size());
  for (const auto& bin : bins) {
    result.bins.push_back(
        MDBinRecord{bin.index, {bin.open_time, bin.close_time}, bin.members});
  }
  return result;
}

}  // namespace mutdbp::md
