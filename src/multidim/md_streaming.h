// MDStreamingSimulation: the streaming/checkpointable face of the vector
// engine — StreamingSimulation (core/streaming.h) with vector demands.
//
// Same contract, same guarantees: events pushed between two flush() calls
// may come in any order and are merged into the canonical event order
// (time; departures before arrivals at equal times; id order within a
// kind), so feeding a trace through any batch granularity produces an
// MDPackingResult bit-identical to one-shot md_simulate() — the multidim
// differential suite enforces this for every registered vector algorithm.
// Checkpoints are the applied event log in a kVectorStreamingSimulation
// MUTDBPC1 frame; restore() replays it through a fresh engine, rebuilding
// open bins, VectorCapacityTree kernel state, per-algorithm state, and
// (when a sink is attached) telemetry, bit-for-bit. The scalar
// crash-injection kill point (MUTDBP_CRASH_AFTER_EVENTS) fires on vector
// events too — the counter is process-global.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "multidim/md_core.h"

namespace mutdbp::md {

/// One buffered vector streaming event. Departures carry an empty demand
/// (the engine knows the vector from the arrival).
struct MDStreamEvent {
  enum class Kind : std::uint8_t {
    kArrival = 0,
    kDeparture = 1,
  };
  Kind kind = Kind::kArrival;
  ItemId id = 0;
  std::vector<double> demand;  ///< kArrival only
  Time t = 0.0;

  [[nodiscard]] bool operator==(const MDStreamEvent&) const noexcept = default;
};

struct MDStreamingOptions {
  std::vector<double> capacity;  ///< per-dimension bin capacity
  double fit_epsilon = kDefaultFitEpsilon;
  bool track_bounds = true;
  /// Telemetry sink (not serialized — pointers don't survive processes;
  /// pass a sink to restore() and replay regenerates every counter).
  telemetry::Telemetry* telemetry = nullptr;
};

/// Payload of a vector streaming checkpoint in parsed form, exposed so
/// registry-driven consumers (trace_replay --dims) can read the header,
/// build the algorithm by name, and then restore.
struct MDStreamingCheckpoint {
  std::string algorithm;         ///< MDPackingAlgorithm::name() of the run
  MDStreamingOptions options{};  ///< telemetry pointer is always null here
  std::vector<MDStreamEvent> events;  ///< applied log, in application order

  /// Parses and validates one kVectorStreamingSimulation frame. Throws
  /// ValidationError on any corruption.
  [[nodiscard]] static MDStreamingCheckpoint read(std::istream& in);
  void write(std::ostream& out) const;
};

class MDStreamingSimulation {
 public:
  explicit MDStreamingSimulation(MDPackingAlgorithm& algorithm,
                                 MDStreamingOptions options);

  MDStreamingSimulation(MDStreamingSimulation&&) = default;

  /// Buffers one event; nothing is applied until flush().
  void push(MDStreamEvent event) { pending_.push_back(std::move(event)); }
  void push_arrival(ItemId id, std::vector<double> demand, Time t) {
    push({MDStreamEvent::Kind::kArrival, id, std::move(demand), t});
  }
  void push_departure(ItemId id, Time t) {
    push({MDStreamEvent::Kind::kDeparture, id, {}, t});
  }

  /// Merges the buffered batch into canonical event order and applies it.
  /// Every buffered event must be at or after the last applied time
  /// (ValidationError otherwise, checked before anything is applied).
  /// Returns the number of events applied.
  std::size_t flush();

  void reserve(std::size_t expected_items);

  /// Materializes the packing so far (flushes first); the run continues.
  [[nodiscard]] MDPackingResult partial_result();

  /// Completes the run (flushes first; every item must have departed).
  [[nodiscard]] MDPackingResult finish();

  /// Serializes the run to one checkpoint frame (flushes first).
  void snapshot(std::ostream& out);

  /// Rebuilds a run from a parsed checkpoint. `algorithm` must be a fresh
  /// (or resettable) instance equivalent to the one that produced the
  /// checkpoint — same name (validated), same constructor parameters.
  [[nodiscard]] static MDStreamingSimulation restore(
      const MDStreamingCheckpoint& checkpoint, MDPackingAlgorithm& algorithm,
      telemetry::Telemetry* telemetry = nullptr);
  /// Convenience: read + restore in one call.
  [[nodiscard]] static MDStreamingSimulation restore(
      std::istream& in, MDPackingAlgorithm& algorithm,
      telemetry::Telemetry* telemetry = nullptr);

  [[nodiscard]] const MDSimulation& engine() const noexcept { return *sim_; }
  [[nodiscard]] const MDStreamingOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::string_view algorithm_name() const noexcept {
    return algorithm_.name();
  }
  [[nodiscard]] std::size_t events_applied() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t buffered_events() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] Time now() const noexcept { return sim_->now(); }
  [[nodiscard]] std::size_t open_bin_count() const noexcept {
    return sim_->open_bin_count();
  }
  [[nodiscard]] std::size_t bins_opened() const noexcept {
    return sim_->bins_opened();
  }
  [[nodiscard]] std::size_t active_items() const noexcept {
    return sim_->active_items();
  }

 private:
  void apply(const MDStreamEvent& event);
  std::size_t flush_batch();
  [[noreturn]] void throw_frontier_violation(Time t) const;

  MDPackingAlgorithm& algorithm_;
  MDStreamingOptions options_;
  std::unique_ptr<MDSimulation> sim_;
  std::vector<MDStreamEvent> pending_;  ///< current unflushed batch
  std::vector<MDStreamEvent> log_;      ///< applied events, application order
};

}  // namespace mutdbp::md
