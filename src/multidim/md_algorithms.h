// Multi-dimensional packing rules: the natural generalizations of the
// scalar Any Fit family plus the dot-product heuristic from the vector
// bin packing literature.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "multidim/md_core.h"

namespace mutdbp::md {

/// Any Fit base: never opens a bin while some open bin fits the item in
/// every dimension.
class MDAnyFit : public MDPackingAlgorithm {
 public:
  explicit MDAnyFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : fit_epsilon_(fit_epsilon) {}
  [[nodiscard]] Placement place(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> open_bins) final;

 protected:
  [[nodiscard]] virtual BinIndex pick(const MDArrivalView& item,
                                      std::span<const MDBinSnapshot> fitting) = 0;
  [[nodiscard]] double fit_epsilon() const noexcept { return fit_epsilon_; }

 private:
  double fit_epsilon_;
  std::vector<MDBinSnapshot> fitting_;
};

/// Lowest-indexed fitting bin (First Fit).
class MDFirstFit final : public MDAnyFit {
 public:
  using MDAnyFit::MDAnyFit;
  [[nodiscard]] std::string_view name() const noexcept override { return "MDFirstFit"; }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView&,
                              std::span<const MDBinSnapshot> fitting) override {
    return fitting.front().index;
  }
};

/// Fullest fitting bin by normalized aggregate level (Best Fit analogue).
class MDBestFit final : public MDAnyFit {
 public:
  using MDAnyFit::MDAnyFit;
  [[nodiscard]] std::string_view name() const noexcept override { return "MDBestFit"; }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView&,
                              std::span<const MDBinSnapshot> fitting) override;
};

/// Dot-product heuristic (Panigrahy et al.): place in the fitting bin
/// maximizing the dot product of the item's normalized demand with the
/// bin's normalized residual capacity — complementary items share bins so
/// no single dimension strands the rest.
class MDDotProduct final : public MDAnyFit {
 public:
  using MDAnyFit::MDAnyFit;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MDDotProduct";
  }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;
};

/// One bin available at a time (Next Fit analogue).
class MDNextFit final : public MDPackingAlgorithm {
 public:
  explicit MDNextFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : fit_epsilon_(fit_epsilon) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "MDNextFit"; }
  [[nodiscard]] Placement place(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> open_bins) override;
  void on_bin_opened(BinIndex bin, const MDArrivalView&) override { available_ = bin; }
  void on_bin_closed(BinIndex bin, Time) override {
    if (available_ == bin) available_.reset();
  }
  void reset() override { available_.reset(); }

 private:
  double fit_epsilon_;
  std::optional<BinIndex> available_;
};

[[nodiscard]] std::vector<std::string> md_algorithm_names();
[[nodiscard]] std::unique_ptr<MDPackingAlgorithm> make_md_algorithm(
    std::string_view name, double fit_epsilon = kDefaultFitEpsilon);

}  // namespace mutdbp::md
