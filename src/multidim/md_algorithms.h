// The vector Any Fit family (VFF/VBF/VWF/VNF) plus the DVBP-paper rules:
// the dominant-resource and norm-based Best Fit variants Lee & Tang's
// evaluation covers, and the dot-product heuristic from the vector bin
// packing literature (Panigrahy et al.).
//
// Mirrors algorithms/any_fit.h structure exactly:
//  * VectorAnyFit — the snapshot reference path: place() filters the open
//    bins per-dimension (md_fits) and delegates to pick().
//  * TreeVectorAnyFit — the incremental kernel: maintains a
//    VectorCapacityTree through the engine hooks and answers place() from
//    a tree query without materializing snapshots. Handed explicit
//    snapshots (tests, the MDWithSnapshots<> adapter) it falls back to the
//    reference scan; the kernel tests assert both paths pick identical
//    bins.
//
// Exactness contract at dims == 1: every registered algorithm with a
// scalar counterpart (md_scalar_counterpart) makes bit-identical decisions
// to it — the fill measures all reduce to the raw level in 1-D (see
// vector_capacity_tree.h), so e.g. DominantBestFit degenerates to BestFit.
// tests/multidim_differential_test.cpp pins the digests.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "multidim/md_core.h"
#include "multidim/vector_capacity_tree.h"

namespace mutdbp::md {

/// Any Fit base: never opens a bin while some open bin fits the item in
/// every dimension. Snapshot (reference) path.
class VectorAnyFit : public MDPackingAlgorithm {
 public:
  explicit VectorAnyFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : fit_epsilon_(fit_epsilon) {}

  [[nodiscard]] Placement place(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> open_bins) override;

  [[nodiscard]] double fit_epsilon() const noexcept { return fit_epsilon_; }

 protected:
  /// Chooses among `fitting` (non-empty, sorted by bin index).
  [[nodiscard]] virtual BinIndex pick(const MDArrivalView& item,
                                      std::span<const MDBinSnapshot> fitting) = 0;

 private:
  double fit_epsilon_;
  std::vector<MDBinSnapshot> fitting_;  // reused across calls
};

/// Any Fit on the vector placement kernel (see file comment).
class TreeVectorAnyFit : public VectorAnyFit {
 public:
  /// Which VectorCapacityTree query answers place(); fixed per instance so
  /// place() dispatches through one predictable switch (the scalar
  /// TreeAnyFit rationale). kDotProduct enumerates fitting bins
  /// (collect_fitting) and scores them — still one pruned subtree walk.
  enum class TreeQuery { kFirstFit, kBestFit, kWorstFit, kLastFit, kDotProduct };

  TreeVectorAnyFit(TreeQuery query, FitMeasure measure,
                   double fit_epsilon = kDefaultFitEpsilon,
                   bool track_fill_order = false) noexcept
      : VectorAnyFit(fit_epsilon),
        query_(query),
        measure_(measure),
        track_fill_order_(track_fill_order) {}

  [[nodiscard]] bool needs_snapshots() const noexcept override { return false; }

  [[nodiscard]] Placement place(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> open_bins) override;

  void on_simulation_begin(std::span<const double> capacity,
                           double fit_epsilon) override;
  void on_bin_opened(BinIndex bin, const MDArrivalView& first_item) override;
  void on_item_placed(BinIndex bin, const MDArrivalView& item,
                      std::span<const double> new_levels) override;
  void on_item_departed(BinIndex bin, std::span<const double> demand,
                        std::span<const double> new_levels, Time t) override;
  void on_bin_closed(BinIndex bin, Time close_time) override;
  void reset() override;

  /// The kernel state (exposed for tests).
  [[nodiscard]] const VectorCapacityTree& tree() const noexcept { return tree_; }
  [[nodiscard]] FitMeasure measure() const noexcept { return measure_; }

 private:
  VectorCapacityTree tree_;
  TreeQuery query_;
  FitMeasure measure_;
  bool track_fill_order_;
  bool attached_ = false;  ///< an MDSimulation has bound this instance
  std::vector<BinIndex> fitting_scratch_;  ///< kDotProduct enumeration
};

/// Vector First Fit (VFF): lowest-indexed bin with room in every dimension.
class VectorFirstFit : public TreeVectorAnyFit {
 public:
  explicit VectorFirstFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : TreeVectorAnyFit(TreeQuery::kFirstFit, FitMeasure::kWeightedSum,
                         fit_epsilon) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "VectorFirstFit";
  }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;
};

/// Vector Best Fit (VBF): fullest fitting bin under a pluggable fill
/// measure (ties: lowest index). The registered variants are this class
/// under different measures/names: VectorBestFit (weighted sum, the Lee &
/// Tang default), DominantBestFit (dominant resource / max-norm),
/// L2BestFit (quadratic norm).
class VectorBestFit : public TreeVectorAnyFit {
 public:
  explicit VectorBestFit(FitMeasure measure = FitMeasure::kWeightedSum,
                         std::string name = "VectorBestFit",
                         double fit_epsilon = kDefaultFitEpsilon)
      : TreeVectorAnyFit(TreeQuery::kBestFit, measure, fit_epsilon,
                         /*track_fill_order=*/true),
        name_(std::move(name)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;

 private:
  std::string name_;
};

/// Vector Worst Fit (VWF): emptiest fitting bin under the fill measure
/// (ties: lowest index).
class VectorWorstFit : public TreeVectorAnyFit {
 public:
  explicit VectorWorstFit(FitMeasure measure = FitMeasure::kWeightedSum,
                          std::string name = "VectorWorstFit",
                          double fit_epsilon = kDefaultFitEpsilon)
      : TreeVectorAnyFit(TreeQuery::kWorstFit, measure, fit_epsilon,
                         /*track_fill_order=*/true),
        name_(std::move(name)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;

 private:
  std::string name_;
};

/// Vector Last Fit: most recently opened fitting bin.
class VectorLastFit : public TreeVectorAnyFit {
 public:
  explicit VectorLastFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : TreeVectorAnyFit(TreeQuery::kLastFit, FitMeasure::kWeightedSum,
                         fit_epsilon) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "VectorLastFit";
  }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;
};

/// Dot-product heuristic: among fitting bins, maximize
/// Σ_d (demand_d/cap_d) · (residual_d/cap_d) — prefer the bin with room
/// exactly where this item needs it, so complementary items share bins and
/// no single dimension strands the rest. No scalar counterpart (in 1-D it
/// degenerates to Worst Fit's preference but scores, not levels, break
/// ties), so it is excluded from the dims=1 differential suite.
class VectorDotProduct : public TreeVectorAnyFit {
 public:
  explicit VectorDotProduct(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : TreeVectorAnyFit(TreeQuery::kDotProduct, FitMeasure::kWeightedSum,
                         fit_epsilon) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "DotProduct";
  }

 protected:
  [[nodiscard]] BinIndex pick(const MDArrivalView& item,
                              std::span<const MDBinSnapshot> fitting) override;
};

/// Vector Next Fit (VNF): one bin available at a time — mirrors the scalar
/// NextFit hook-tracked O(D) kernel path exactly.
class VectorNextFit : public MDPackingAlgorithm {
 public:
  explicit VectorNextFit(double fit_epsilon = kDefaultFitEpsilon) noexcept
      : fit_epsilon_(fit_epsilon) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "VectorNextFit";
  }
  [[nodiscard]] bool needs_snapshots() const noexcept override { return false; }

  [[nodiscard]] Placement place(const MDArrivalView& item,
                                std::span<const MDBinSnapshot> open_bins) override;
  void on_simulation_begin(std::span<const double> capacity,
                           double fit_epsilon) override;
  void on_bin_opened(BinIndex bin, const MDArrivalView& first_item) override;
  void on_item_placed(BinIndex bin, const MDArrivalView& item,
                      std::span<const double> new_levels) override;
  void on_item_departed(BinIndex bin, std::span<const double> demand,
                        std::span<const double> new_levels, Time t) override;
  void on_bin_closed(BinIndex bin, Time close_time) override;
  void reset() override;

  [[nodiscard]] std::optional<BinIndex> available_bin() const noexcept {
    return available_;
  }

 private:
  double fit_epsilon_;
  std::optional<BinIndex> available_;
  std::vector<double> available_levels_;  ///< hook-tracked levels of available_
  std::vector<double> capacity_;          ///< from on_simulation_begin
  bool attached_ = false;
};

/// Names accepted by make_md_algorithm, in canonical comparison order.
[[nodiscard]] std::vector<std::string> md_algorithm_names();

[[nodiscard]] std::unique_ptr<MDPackingAlgorithm> make_md_algorithm(
    std::string_view name, double fit_epsilon = kDefaultFitEpsilon);

/// The scalar registry name a vector algorithm is bit-identical to at
/// dims == 1 (the differential suite's pairing); nullopt when there is
/// none (DotProduct).
[[nodiscard]] std::optional<std::string> md_scalar_counterpart(
    std::string_view name);

}  // namespace mutdbp::md
