#include "multidim/md_trace.h"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/error.h"
#include "util/csv.h"

namespace mutdbp::md {

// Same round-trip guarantee as workload/trace.cpp: max_digits10 output
// makes read(write(items)) reproduce identical IEEE-754 bit patterns.
static_assert(std::numeric_limits<double>::max_digits10 == 17,
              "write_md_trace precision assumes IEEE-754 binary64");

void write_md_trace(std::ostream& out, const MDItemList& items) {
  constexpr int kPrecision = std::numeric_limits<double>::max_digits10;
  out << "id";
  for (std::size_t d = 0; d < items.dimensions(); ++d) out << ",size" << d;
  out << ",arrival,departure\n";
  char buf[64];
  for (const auto& item : items) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, item.id);
    out << buf;
    for (const double demand : item.demand) {
      std::snprintf(buf, sizeof(buf), ",%.*g", kPrecision, demand);
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.*g,%.*g\n", kPrecision, item.arrival(),
                  kPrecision, item.departure());
    out << buf;
  }
}

void write_md_trace_file(const std::string& path, const MDItemList& items) {
  std::ofstream out(path);
  if (!out) throw ValidationError("write_md_trace_file: cannot open " + path);
  write_md_trace(out, items);
}

namespace {

ItemId parse_item_id(const std::string& field, const std::string& context) {
  ItemId id = 0;
  const auto* begin = field.data();
  const auto* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, id);
  if (ec != std::errc() || ptr != end) {
    throw ValidationError(context + ": item id '" + field +
                          "' is not a non-negative integer");
  }
  return id;
}

double parse_finite(const std::string& field, const std::string& context,
                    const char* what) {
  // Reject "nan"/"inf" spellings with the row number, exactly as the scalar
  // reader does (workload/trace.cpp rationale).
  double value = 0.0;
  try {
    value = parse_double(field, context);
  } catch (const std::invalid_argument& e) {
    throw ValidationError(e.what());
  }
  if (!std::isfinite(value)) {
    throw ValidationError(context + ": " + what + " '" + field +
                          "' is not finite");
  }
  return value;
}

}  // namespace

MDItemList read_md_trace(std::istream& in, std::vector<double> capacity) {
  if (capacity.empty()) {
    throw ValidationError("read_md_trace: capacity names no dimensions");
  }
  const std::size_t dims = capacity.size();
  const CsvDocument doc = read_csv(in);
  std::vector<MDItem> items;
  items.reserve(doc.rows.size());
  std::unordered_set<ItemId> seen;
  seen.reserve(doc.rows.size());
  std::size_t line = 0;
  for (const auto& row : doc.rows) {
    ++line;
    const std::string context = "vector trace row " + std::to_string(line);
    if (row.size() != dims + 3) {
      throw ValidationError(context + ": expected " + std::to_string(dims + 3) +
                            " fields (id,size0..size" + std::to_string(dims - 1) +
                            ",arrival,departure), got " +
                            std::to_string(row.size()));
    }
    const ItemId id = parse_item_id(row[0], context);
    std::vector<double> demand;
    demand.reserve(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      demand.push_back(
          parse_finite(row[1 + d], context, ("size" + std::to_string(d)).c_str()));
    }
    const double arrival = parse_finite(row[1 + dims], context, "arrival");
    const double departure = parse_finite(row[2 + dims], context, "departure");
    // Range checks here too (MDItemList re-validates, but its row numbers
    // are vector positions; the CSV reader's errors must name the CSV row).
    for (std::size_t d = 0; d < dims; ++d) {
      if (!(demand[d] > 0.0) || demand[d] > capacity[d]) {
        throw ValidationError(context + ": size" + std::to_string(d) +
                              " must be in (0, capacity]");
      }
    }
    if (!(arrival < departure)) {
      throw ValidationError(context + ": departure must be after arrival");
    }
    if (!seen.insert(id).second) {
      throw ValidationError(context + ": duplicate item id " + std::to_string(id));
    }
    items.push_back(make_md_item(id, std::move(demand), arrival, departure));
  }
  return MDItemList(std::move(items), std::move(capacity));
}

MDItemList read_md_trace_file(const std::string& path,
                              std::vector<double> capacity) {
  std::ifstream in(path);
  if (!in) throw ValidationError("read_md_trace_file: cannot open " + path);
  return read_md_trace(in, std::move(capacity));
}

}  // namespace mutdbp::md
