#include "opt/opt_integral.h"

#include <algorithm>
#include <vector>

namespace mutdbp::opt {

OptIntegral opt_total(const ItemList& items, const OptIntegralOptions& options) {
  OptIntegral result;
  if (items.empty()) return result;

  const auto times = items.event_times();
  // Items sorted by arrival; a sweep keeps the active set incrementally.
  const auto sorted = items.sorted_by_arrival();

  BinPackingOptions bp;
  bp.capacity = items.capacity();
  bp.fit_epsilon = options.fit_epsilon;
  bp.max_nodes = options.max_nodes_per_segment;

  std::size_t next_arrival = 0;
  // Active items as (departure, size), kept as a vector we compact lazily.
  std::vector<std::pair<Time, double>> active;
  std::vector<double> sizes;

  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    const Time segment_start = times[i];
    const Time segment_end = times[i + 1];
    // Departures at segment_start leave before the segment (half-open).
    std::erase_if(active, [&](const auto& entry) { return entry.first <= segment_start; });
    while (next_arrival < sorted.size() && sorted[next_arrival].arrival() <= segment_start) {
      const Item& item = sorted[next_arrival++];
      if (item.departure() > segment_start) {
        active.emplace_back(item.departure(), item.size);
      }
    }
    const Time len = segment_end - segment_start;
    if (active.empty() || len <= 0.0) continue;
    ++result.segments;
    result.max_active_items = std::max(result.max_active_items, active.size());

    sizes.clear();
    for (const auto& [departure, size] : active) sizes.push_back(size);

    std::size_t lo = 0;
    std::size_t hi = 0;
    if (active.size() <= options.exact_item_limit) {
      const BinCountResult count = min_bin_count(sizes, bp);
      lo = count.lower;
      hi = count.upper;
      if (!count.exact) {
        result.exact = false;
        ++result.inexact_segments;
      }
    } else {
      lo = std::max(l2_lower_bound(sizes, bp), std::size_t{1});
      hi = ffd_bin_count(sizes, bp);
      if (lo != hi) {
        result.exact = false;
        ++result.inexact_segments;
      }
    }
    result.lower += static_cast<double>(lo) * len;
    result.upper += static_cast<double>(hi) * len;
  }
  return result;
}

}  // namespace mutdbp::opt
