// OPT_total(R) = ∫ OPT(R, t) dt over the packing period (§III.C): the cost
// of an optimal offline adversary that may repack everything at any time.
// The active item set is constant between consecutive event times, so the
// integral is a finite sum of (segment length) × (bin-packing optimum).
#pragma once

#include <cstddef>

#include "core/item_list.h"
#include "opt/bin_packing.h"

namespace mutdbp::opt {

struct OptIntegralOptions {
  /// Segments with more active items than this are bracketed with
  /// [max(L2, ceil), FFD] instead of solved exactly.
  std::size_t exact_item_limit = 28;
  /// Branch-and-bound node budget per segment.
  std::size_t max_nodes_per_segment = 500'000;
  double fit_epsilon = 1e-9;
};

struct OptIntegral {
  double lower = 0.0;  ///< proven lower bound on OPT_total
  double upper = 0.0;  ///< achievable by a concrete repacking schedule
  bool exact = true;   ///< lower == upper (every segment solved exactly)
  std::size_t segments = 0;
  std::size_t inexact_segments = 0;
  std::size_t max_active_items = 0;

  /// Midpoint, for reporting when exact.
  [[nodiscard]] double value() const noexcept { return (lower + upper) / 2.0; }
};

[[nodiscard]] OptIntegral opt_total(const ItemList& items,
                                    const OptIntegralOptions& options = {});

}  // namespace mutdbp::opt
