#include "opt/lower_bounds.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mutdbp::opt {

double prop1_time_space_bound(const ItemList& items) {
  return items.total_time_space_demand() / items.capacity();
}

double prop2_span_bound(const ItemList& items) { return items.span(); }

double load_ceiling_bound(const ItemList& items) {
  if (items.empty()) return 0.0;
  // Sweep arrivals/departures; load is constant between events.
  struct Event {
    Time t;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(items.size() * 2);
  for (const auto& item : items) {
    events.push_back({item.arrival(), item.size});
    events.push_back({item.departure(), -item.size});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // departures first at equal times
  });

  double integral = 0.0;
  double load = 0.0;
  std::size_t active = 0;
  Time prev = events.front().t;
  for (const auto& event : events) {
    if (event.t > prev) {
      if (active > 0) {
        const double bins =
            std::max(1.0, std::ceil(load / items.capacity() - 1e-9));
        integral += bins * (event.t - prev);
      }
      prev = event.t;
    }
    load += event.delta;
    if (event.delta > 0) {
      ++active;
    } else {
      --active;
    }
    if (active == 0) load = 0.0;  // cancel floating-point residue
  }
  return integral;
}

double combined_lower_bound(const ItemList& items) {
  return std::max({prop1_time_space_bound(items), prop2_span_bound(items),
                   load_ceiling_bound(items)});
}

}  // namespace mutdbp::opt
