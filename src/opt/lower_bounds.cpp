#include "opt/lower_bounds.h"

#include "telemetry/ratio_monitor.h"

namespace mutdbp::opt {

namespace {

// All four bounds are one sweep of the shared LowerBoundAccumulator over
// the canonical event schedule. This is the SAME class, fed in the SAME
// order, as the live RatioMonitor sees through the engine hooks during a
// simulation of `items` — which is what makes the monitor's incremental
// bounds bit-for-bit equal to these batch values (telemetry/ratio_monitor.h;
// pinned by tests/differential_test.cpp and tests/ratio_monitor_test.cpp).
// Do not "optimize" any bound back to a per-item closed form: the values
// would stay mathematically equal but stop being bitwise reproducible
// against the incremental path.
telemetry::LowerBoundAccumulator sweep(const ItemList& items) {
  telemetry::LowerBoundAccumulator acc(items.capacity());
  for (const ScheduledEvent& event : items.schedule()) {
    acc.advance_to(event.t);
    if (event.is_arrival) {
      acc.apply_arrival(event.size);
    } else {
      acc.apply_departure(event.size);
    }
  }
  return acc;
}

}  // namespace

double prop1_time_space_bound(const ItemList& items) { return sweep(items).prop1(); }

double prop2_span_bound(const ItemList& items) { return sweep(items).prop2(); }

double load_ceiling_bound(const ItemList& items) {
  return sweep(items).load_ceiling();
}

double combined_lower_bound(const ItemList& items) { return sweep(items).combined(); }

}  // namespace mutdbp::opt
