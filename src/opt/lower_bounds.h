// Lower bounds on OPT_total(R) (§III.C, Propositions 1 and 2), plus the
// stronger pointwise bound ∫ max(ceil(load(t)/cap), [load(t)>0]) dt used by
// large-scale benches where the repacking integral is too expensive.
//
// The DVBP track generalizes all three per-dimension (multidim/md_bounds.h);
// the vector accumulator replays this module's exact operation order so its
// dims=1 values are bitwise-equal — any change to the arithmetic here must
// be mirrored there (the multidim differential suite will catch a drift).
#pragma once

#include "core/item_list.h"

namespace mutdbp::opt {

/// Proposition 1: OPT_total(R) >= Σ_r s(r)·|I(r)| / capacity
/// (no bin capacity is ever wasted).
[[nodiscard]] double prop1_time_space_bound(const ItemList& items);

/// Proposition 2: OPT_total(R) >= span(R)
/// (at least one bin is in use whenever an item is active).
[[nodiscard]] double prop2_span_bound(const ItemList& items);

/// ∫ max(ceil(load(t)/capacity), 1{load(t)>0}) dt. Pointwise
/// OPT(R,t) >= ceil(load(t)/cap) and OPT(R,t) >= 1 when anything is active,
/// so this dominates both propositions.
[[nodiscard]] double load_ceiling_bound(const ItemList& items);

/// max of the three bounds above.
[[nodiscard]] double combined_lower_bound(const ItemList& items);

}  // namespace mutdbp::opt
