#include "opt/bin_packing.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace mutdbp::opt {
namespace {

void validate(std::span<const double> sizes, const BinPackingOptions& options) {
  if (!(options.capacity > 0.0)) {
    throw std::invalid_argument("bin packing: capacity must be > 0");
  }
  for (const double s : sizes) {
    if (!(s > 0.0) || s > options.capacity + options.fit_epsilon) {
      throw std::invalid_argument("bin packing: item size outside (0, capacity]");
    }
  }
}

std::vector<double> sorted_desc(std::span<const double> sizes) {
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

/// ceil with a tolerance so that e.g. 3 * (1/3) counts as 1 bin, not 2.
std::size_t ceil_div(double total, double capacity, double eps) {
  const double q = total / capacity;
  const double r = std::ceil(q - eps);
  return r <= 0.0 ? 0 : static_cast<std::size_t>(r);
}

}  // namespace

std::size_t ffd_bin_count(std::span<const double> sizes, const BinPackingOptions& options) {
  validate(sizes, options);
  const auto sorted = sorted_desc(sizes);
  std::vector<double> levels;
  for (const double s : sorted) {
    bool placed = false;
    for (double& level : levels) {
      if (level + s <= options.capacity + options.fit_epsilon) {
        level += s;
        placed = true;
        break;
      }
    }
    if (!placed) levels.push_back(s);
  }
  return levels.size();
}

std::size_t continuous_lower_bound(std::span<const double> sizes,
                                   const BinPackingOptions& options) {
  validate(sizes, options);
  double total = 0.0;
  for (const double s : sizes) total += s;
  return ceil_div(total, options.capacity, options.fit_epsilon);
}

std::size_t l2_lower_bound(std::span<const double> sizes, const BinPackingOptions& options) {
  validate(sizes, options);
  if (sizes.empty()) return 0;
  const double cap = options.capacity;
  const double eps = options.fit_epsilon;
  const auto sorted = sorted_desc(sizes);

  std::size_t best = continuous_lower_bound(sizes, options);
  // Candidate thresholds: 0 plus all distinct sizes <= capacity/2. (alpha=0
  // covers instances where every item is large: each >cap/2 item then counts
  // a full bin.)
  std::vector<double> candidates{0.0};
  for (std::size_t c = 0; c < sorted.size(); ++c) {
    if (sorted[c] > cap / 2.0 + eps) continue;
    if (c > 0 && sorted[c] == sorted[c - 1]) continue;
    candidates.push_back(sorted[c]);
  }
  for (const double alpha : candidates) {
    // J1: size > cap - alpha; J2: cap/2 < size <= cap - alpha;
    // J3: alpha <= size <= cap/2.
    std::size_t j1 = 0;
    std::size_t j2 = 0;
    double sum_j2 = 0.0;
    double sum_j3 = 0.0;
    for (const double s : sorted) {
      if (s > cap - alpha + eps) {
        ++j1;
      } else if (s > cap / 2.0 + eps) {
        ++j2;
        sum_j2 += s;
      } else if (s >= alpha - eps) {
        sum_j3 += s;
      }
    }
    const double slack_in_j2_bins = static_cast<double>(j2) * cap - sum_j2;
    const double overflow = sum_j3 - slack_in_j2_bins;
    const std::size_t extra = overflow > 0.0 ? ceil_div(overflow, cap, eps) : 0;
    best = std::max(best, j1 + j2 + extra);
  }
  return best;
}

BinCountResult min_bin_count(std::span<const double> sizes, const BinPackingOptions& options) {
  validate(sizes, options);
  BinCountResult result;
  if (sizes.empty()) {
    result.exact = true;
    return result;
  }
  const auto sorted = sorted_desc(sizes);
  const double cap = options.capacity;
  const double eps = options.fit_epsilon;

  std::size_t best_upper = ffd_bin_count(sizes, options);
  const std::size_t global_lower = l2_lower_bound(sizes, options);
  if (best_upper == global_lower) {
    return {global_lower, best_upper, true};
  }

  double remaining_total = 0.0;
  for (const double s : sorted) remaining_total += s;

  std::vector<double> levels;  // open bin levels in the current partial packing
  std::size_t nodes = 0;
  bool budget_exhausted = false;

  // DFS over items in decreasing size order; item k goes into one bin of each
  // distinct level, or a new bin.
  std::function<void(std::size_t, double)> dfs = [&](std::size_t k, double remaining) {
    if (nodes++ > options.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (k == sorted.size()) {
      best_upper = std::min(best_upper, levels.size());
      return;
    }
    if (levels.size() >= best_upper) return;  // cannot improve
    // Completion bound: remaining volume minus free space in open bins.
    double free_space = 0.0;
    for (const double level : levels) free_space += cap - level;
    const double overflow = remaining - free_space;
    const std::size_t completion =
        levels.size() + (overflow > 0.0 ? ceil_div(overflow, cap, eps) : 0);
    if (completion >= best_upper) return;
    if (budget_exhausted) return;

    const double s = sorted[k];
    // Dominance (Martello–Toth): if the item fills some bin exactly, that
    // placement dominates all others.
    for (std::size_t b = 0; b < levels.size(); ++b) {
      if (std::abs(cap - levels[b] - s) <= eps) {
        levels[b] += s;
        dfs(k + 1, remaining - s);
        levels[b] -= s;
        return;
      }
    }
    // Try each distinct existing level (bins with equal levels are
    // interchangeable, so branching into one of them suffices).
    for (std::size_t b = 0; b < levels.size(); ++b) {
      bool duplicate = false;
      for (std::size_t b2 = 0; b2 < b; ++b2) {
        if (levels[b2] == levels[b]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (levels[b] + s <= cap + eps) {
        const double old = levels[b];
        levels[b] += s;
        dfs(k + 1, remaining - s);
        levels[b] = old;
        if (budget_exhausted) return;
      }
    }
    // Or open a new bin.
    levels.push_back(s);
    dfs(k + 1, remaining - s);
    levels.pop_back();
  };
  dfs(0, remaining_total);

  result.upper = best_upper;
  result.exact = !budget_exhausted;
  result.lower = result.exact ? best_upper : std::max(global_lower, std::size_t{1});
  return result;
}

}  // namespace mutdbp::opt
