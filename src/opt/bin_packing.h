// Classical one-dimensional bin packing solvers, used to evaluate
// OPT(R, t) — the minimum number of bins into which the items active at
// time t can be repacked (§III.C). Exact solving is branch-and-bound with
// the Martello–Toth L2 lower bound; FFD provides upper bounds and the
// fallback when the node budget is exhausted.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mutdbp::opt {

struct BinPackingOptions {
  double capacity = 1.0;
  double fit_epsilon = 1e-9;
  /// Branch-and-bound node budget; beyond it the result is inexact.
  std::size_t max_nodes = 1'000'000;
};

/// First Fit Decreasing: a valid upper bound on the optimal bin count.
[[nodiscard]] std::size_t ffd_bin_count(std::span<const double> sizes,
                                        const BinPackingOptions& options = {});

/// ceil(total size / capacity) — the continuous lower bound.
[[nodiscard]] std::size_t continuous_lower_bound(std::span<const double> sizes,
                                                 const BinPackingOptions& options = {});

/// Martello–Toth L2 lower bound (dominates the continuous bound).
[[nodiscard]] std::size_t l2_lower_bound(std::span<const double> sizes,
                                         const BinPackingOptions& options = {});

struct BinCountResult {
  std::size_t lower = 0;   ///< proven lower bound
  std::size_t upper = 0;   ///< achieved by an actual packing
  bool exact = false;      ///< lower == upper proven within the node budget

  [[nodiscard]] std::size_t bins() const noexcept { return upper; }
};

/// Minimum number of unit bins for `sizes`. If the search completes within
/// the node budget, result.exact is true and lower == upper.
[[nodiscard]] BinCountResult min_bin_count(std::span<const double> sizes,
                                           const BinPackingOptions& options = {});

}  // namespace mutdbp::opt
