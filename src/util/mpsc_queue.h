// Bounded, mutex-light MPSC queue for the sharded allocator fleet
// (core/sharded.h): one single-producer/single-consumer ring per registered
// producer, drained in producer order by one consumer.
//
// Design (docs/performance.md, "Sharded scaling"):
//  * Each producer owns a fixed-capacity power-of-two ring. try_push() and
//    the consumer's drain() touch only two atomics with acquire/release
//    ordering — no locks, no allocation, no CAS loops — and both sides
//    cache the opposite cursor so the common case reads one atomic.
//  * Overflow policy is bounded backpressure: try_push() returns false when
//    the ring is full and push() spins (with yields) until space frees up.
//    Events are never silently dropped — a slow shard slows its producers,
//    which is exactly what an ingest tier under overload should do.
//  * The consumer drains every ring in producer-index order, so for a
//    single producer the drained order IS the push order (the determinism
//    contract the sharded fleet builds on). The only mutex in the file
//    guards consumer parking: an idle consumer sleeps on a condition
//    variable, and producers lock it only when they observe the parked
//    flag (one relaxed load per push while the consumer is active).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.h"

namespace mutdbp {

/// Fixed-capacity single-producer/single-consumer ring. Exactly one thread
/// may call the push side and one thread the drain side at a time.
template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) throw ValidationError("SpscRing: capacity must be > 0");
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 *= 2;
    slots_.resize(pow2);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. False when the ring is full (the value is not stored).
  bool try_push(const T& value) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ >= slots_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= slots_.size()) return false;
    }
    slots_[head & (slots_.size() - 1)] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: applies fn to every currently visible element, in push
  /// order, and returns how many were consumed.
  template <class F>
  std::size_t drain(F&& fn) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    for (std::size_t i = tail; i != head; ++i) {
      fn(slots_[i & (slots_.size() - 1)]);
    }
    tail_.store(head, std::memory_order_release);
    return head - tail;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Elements currently enqueued. Exact when both sides are quiescent; a
  /// racy-but-monotonic estimate otherwise (health introspection, never
  /// control flow).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

 private:
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer cursor
  alignas(64) std::size_t tail_cache_ = 0;        ///< producer's view of tail_
};

/// MPSC queue: `producers` SPSC rings + one consumer. Producers are
/// identified by their slot index (0-based, assigned by the caller); the
/// consumer drains rings in slot order.
template <class T>
class MpscQueue {
 public:
  MpscQueue(std::size_t producers, std::size_t ring_capacity) {
    if (producers == 0) {
      throw ValidationError("MpscQueue: at least one producer slot required");
    }
    rings_.reserve(producers);
    for (std::size_t i = 0; i < producers; ++i) {
      rings_.push_back(std::make_unique<SpscRing<T>>(ring_capacity));
    }
  }

  [[nodiscard]] std::size_t producers() const noexcept { return rings_.size(); }

  /// Non-blocking push from producer slot `producer`. False when that
  /// producer's ring is full.
  bool try_push(std::size_t producer, const T& value) {
    const bool pushed = rings_[producer]->try_push(value);
    if (pushed && parked_.load(std::memory_order_acquire)) wake();
    return pushed;
  }

  /// Blocking push: spins (yielding) until the ring has space — the bounded
  /// backpressure policy. Throws ValidationError if the queue was closed
  /// (events pushed after close() would never be consumed).
  void push(std::size_t producer, const T& value) {
    while (!try_push(producer, value)) {
      if (closed_.load(std::memory_order_acquire)) {
        throw ValidationError("MpscQueue: push() after close()");
      }
      std::this_thread::yield();
    }
  }

  /// Bounded-wait push: like push(), but gives up once `timeout` has
  /// elapsed and returns false (the value is not enqueued). True on
  /// success. The admission-control building block: a producer that must
  /// not block forever behind a slow consumer sheds explicitly instead.
  /// Throws ValidationError if the queue was closed while waiting.
  bool push_for(std::size_t producer, const T& value,
                std::chrono::microseconds timeout) {
    if (try_push(producer, value)) return true;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!try_push(producer, value)) {
      if (closed_.load(std::memory_order_acquire)) {
        throw ValidationError("MpscQueue: push_for() after close()");
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    return true;
  }

  /// Consumer side: drains every ring in slot order; returns the total
  /// number of elements consumed.
  template <class F>
  std::size_t drain(F&& fn) {
    std::size_t n = 0;
    for (auto& ring : rings_) n += ring->drain(fn);
    return n;
  }

  /// Consumer side: parks until an element is (probably) available or the
  /// queue is closed. Spurious returns are fine — callers loop on drain().
  /// The timeout bounds the race window between a producer's emptiness
  /// check and the park, so a lost wakeup only costs one timeout period.
  void wait(std::chrono::microseconds timeout = std::chrono::milliseconds(1)) {
    parked_.store(true, std::memory_order_release);
    if (!empty() || closed_.load(std::memory_order_acquire)) {
      parked_.store(false, std::memory_order_release);
      return;
    }
    std::unique_lock lock(park_mutex_);
    park_cv_.wait_for(lock, timeout, [this] {
      return !empty() || closed_.load(std::memory_order_acquire);
    });
    parked_.store(false, std::memory_order_release);
  }

  /// Marks the queue closed: no further push() succeeds and the consumer
  /// stops waiting once the rings are drained.
  void close() {
    closed_.store(true, std::memory_order_release);
    wake();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept {
    for (const auto& ring : rings_) {
      if (!ring->empty()) return false;
    }
    return true;
  }

  /// Sum of the per-ring approx_size() estimates (same caveats).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    std::size_t total = 0;
    for (const auto& ring : rings_) total += ring->approx_size();
    return total;
  }

 private:
  void wake() {
    const std::scoped_lock lock(park_mutex_);
    park_cv_.notify_one();
  }

  std::vector<std::unique_ptr<SpscRing<T>>> rings_;  ///< one per producer
  std::atomic<bool> closed_{false};
  std::atomic<bool> parked_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

}  // namespace mutdbp
