#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace mutdbp {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!arg.starts_with("--")) {
      throw std::invalid_argument("unexpected positional argument: " + std::string(arg));
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    values_[name] = value;
    order_.push_back(name);
  }
}

std::optional<std::string> Flags::raw(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double Flags::get_double(const std::string& name, double fallback, const std::string& help) {
  registered_.emplace_back(name, help);
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": expected number, got '" + *v + "'");
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback,
                            const std::string& help) {
  registered_.emplace_back(name, help);
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": expected integer, got '" + *v + "'");
  }
}

std::string Flags::get_string(const std::string& name, std::string fallback,
                              const std::string& help) {
  registered_.emplace_back(name, help);
  const auto v = raw(name);
  return v ? *v : std::move(fallback);
}

bool Flags::get_bool(const std::string& name, bool fallback, const std::string& help) {
  registered_.emplace_back(name, help);
  const auto v = raw(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": expected boolean, got '" + *v + "'");
}

bool Flags::finish(const std::string& program_description) {
  if (help_requested_) {
    std::printf("%s\n\nFlags:\n", program_description.c_str());
    for (const auto& [name, help] : registered_) {
      std::printf("  --%-20s %s\n", name.c_str(), help.c_str());
    }
    return true;
  }
  for (const auto& name : order_) {
    bool known = false;
    for (const auto& [reg, help] : registered_) {
      (void)help;
      if (reg == name) {
        known = true;
        break;
      }
    }
    if (!known) throw std::invalid_argument("unknown flag --" + name);
  }
  return false;
}

}  // namespace mutdbp
