// Aligned console tables: every bench binary prints its paper-style rows
// through this, so outputs are uniform and machine-greppable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mutdbp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule; numeric-looking cells are right-aligned.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (cells containing commas or quotes are
  /// double-quoted), for downstream plotting.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Formats a double with `digits` significant decimal places.
  [[nodiscard]] static std::string num(double value, int digits = 4);
  [[nodiscard]] static std::string num(std::size_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace mutdbp
