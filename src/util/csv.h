// Minimal CSV reading/writing for item traces and bench outputs.
// Supports comments (#...), blank lines, and unquoted fields only — traces
// are purely numeric so quoting is unnecessary.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mutdbp {

/// Splits one CSV line on commas and trims surrounding whitespace.
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Reads all data rows (skipping blanks and '#' comments). If the first
/// non-comment row contains any non-numeric field it is treated as a header
/// and returned separately.
struct CsvDocument {
  std::vector<std::string> header;              // empty if none detected
  std::vector<std::vector<std::string>> rows;
};

[[nodiscard]] CsvDocument read_csv(std::istream& in);

void write_csv_row(std::ostream& out, const std::vector<std::string>& cells);

/// Parses a double, throwing std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(const std::string& field, std::string_view context);

}  // namespace mutdbp
