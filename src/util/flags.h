// Tiny command-line flag parser for examples and bench binaries.
// Supports --name=value and --name value; unknown flags are an error so
// typos in experiment parameters cannot silently produce wrong sweeps.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mutdbp {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Registers a flag (for --help and unknown-flag checking) and returns its
  /// value, or `fallback` if absent.
  [[nodiscard]] double get_double(const std::string& name, double fallback,
                                  const std::string& help = "");
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback,
                                     const std::string& help = "");
  [[nodiscard]] std::string get_string(const std::string& name, std::string fallback,
                                       const std::string& help = "");
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback,
                              const std::string& help = "");

  /// Call after all get_* registrations: prints help / rejects unknown flags.
  /// Returns true if the program should exit (because --help was given).
  [[nodiscard]] bool finish(const std::string& program_description);

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name);

  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;                      // seen on command line
  std::vector<std::pair<std::string, std::string>> registered_;  // name, help
  bool help_requested_ = false;
};

}  // namespace mutdbp
