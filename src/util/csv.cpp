#include "util/csv.h"

#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mutdbp {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_numeric_field(const std::string& s) {
  if (s.empty()) return false;
  double value = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

}  // namespace

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    const std::string_view piece = (comma == std::string_view::npos)
                                       ? line.substr(start)
                                       : line.substr(start, comma - start);
    fields.emplace_back(trim(piece));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = split_csv_line(trimmed);
    if (first_data_line) {
      first_data_line = false;
      bool any_non_numeric = false;
      for (const auto& f : fields) {
        if (!is_numeric_field(f)) {
          any_non_numeric = true;
          break;
        }
      }
      if (any_non_numeric) {
        doc.header = std::move(fields);
        continue;
      }
    }
    doc.rows.push_back(std::move(fields));
  }
  return doc;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    out << cells[i];
  }
  out << '\n';
}

double parse_double(const std::string& field, std::string_view context) {
  double value = 0.0;
  const auto* begin = field.data();
  const auto* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw std::invalid_argument("failed to parse number '" + field + "' in " +
                                std::string(context));
  }
  return value;
}

}  // namespace mutdbp
