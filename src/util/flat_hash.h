// FlatMap: a minimal open-addressing hash map for the simulation hot path.
//
// std::unordered_map allocates one node per insert, which shows up directly
// in the packer's per-item cost (the active-item table churns one
// insert+erase per item). This map stores entries inline in a power-of-two
// table with linear probing and backward-shift deletion (no tombstones), so
// steady-state arrive/depart traffic allocates nothing.
//
// Deliberately not a general-purpose container: keys must be integral
// (hashed with the splitmix64 finalizer), iteration is a cold-path-only
// for_each in unspecified order, and inserting a present key is reported
// rather than overwritten — exactly the operations Simulation needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mutdbp {

template <class Key, class Value>
class FlatMap {
  static_assert(sizeof(Key) <= sizeof(std::uint64_t), "FlatMap keys are hashed as u64");

 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    states_.assign(states_.size(), kEmpty);
    size_ = 0;
  }

  /// Grows the table so that `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kMaxLoadDen) want *= 2;
    if (want > capacity()) rehash(want);
  }

  /// Pointer to the value for `key`, or nullptr. Never invalidated by
  /// erase() of *other* keys between rehashes, but treat it as transient.
  [[nodiscard]] Value* find(const Key& key) noexcept {
    if (size_ == 0) return nullptr;
    const std::size_t mask = capacity() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return nullptr;
      if (entries_[i].first == key) return &entries_[i].second;
    }
  }
  [[nodiscard]] const Value* find(const Key& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  [[nodiscard]] bool contains(const Key& key) const noexcept { return find(key) != nullptr; }

  /// Inserts `value` if `key` is absent and returns the stored value's
  /// address; returns nullptr (map unchanged) if `key` is present. A single
  /// probe replaces the contains()+insert() pair. The pointer stays valid
  /// until the next insert (which may rehash).
  Value* try_insert(const Key& key, Value value) {
    if (capacity() == 0 || (size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      rehash(capacity() == 0 ? kMinCapacity : capacity() * 2);
    }
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    for (; states_[i] == kFull; i = (i + 1) & mask) {
      if (entries_[i].first == key) return nullptr;
    }
    states_[i] = kFull;
    entries_[i] = {key, std::move(value)};
    ++size_;
    return &entries_[i].second;
  }

  /// Inserts; returns false (leaving the map unchanged) if `key` is present.
  bool insert(const Key& key, Value value) {
    return try_insert(key, std::move(value)) != nullptr;
  }

  /// Removes `key`, moving its value into `out` first; returns false (and
  /// leaves `out` untouched) if `key` was absent. A single probe replaces
  /// the find()+erase() pair.
  bool take(const Key& key, Value& out) noexcept {
    if (size_ == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    for (; ; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return false;
      if (entries_[i].first == key) break;
    }
    out = std::move(entries_[i].second);
    erase_slot(i);
    return true;
  }

  /// Visits every (key, value) pair in unspecified (table) order. Cold path
  /// only — fault handling and audits, never the per-event hot loop; callers
  /// needing a stable order must sort what they collect.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) fn(entries_[i].first, entries_[i].second);
    }
  }

  /// Removes; returns false if `key` was absent.
  bool erase(const Key& key) noexcept {
    if (size_ == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    for (; ; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return false;
      if (entries_[i].first == key) break;
    }
    erase_slot(i);
    return true;
  }

 private:
  enum State : std::uint8_t { kEmpty = 0, kFull = 1 };
  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays fast and growth is rare.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  [[nodiscard]] std::size_t capacity() const noexcept { return states_.size(); }

  /// Backward-shift deletion at slot `i`: pull displaced entries of the
  /// probe chain back one slot until a hole or a home-positioned entry (no
  /// tombstones).
  void erase_slot(std::size_t i) noexcept {
    const std::size_t mask = capacity() - 1;
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask; states_[j] == kFull; j = (j + 1) & mask) {
      const std::size_t home = hash(entries_[j].first) & mask;
      // Move j into the hole unless j lies on its own probe path before the
      // hole (i.e. the hole is not between home and j, cyclically).
      const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        entries_[hole] = std::move(entries_[j]);
        hole = j;
      }
    }
    states_[hole] = kEmpty;
    --size_;
  }

  [[nodiscard]] static std::uint64_t hash(const Key& key) noexcept {
    // splitmix64 finalizer: cheap and well-distributed for sequential ids.
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::pair<Key, Value>> old_entries = std::move(entries_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    entries_.assign(new_capacity, {});
    states_.assign(new_capacity, kEmpty);
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t j = hash(old_entries[i].first) & mask;
      while (states_[j] == kFull) j = (j + 1) & mask;
      states_[j] = kFull;
      entries_[j] = std::move(old_entries[i]);
    }
  }

  std::vector<std::pair<Key, Value>> entries_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;
};

}  // namespace mutdbp
