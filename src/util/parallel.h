// Thread-based parallel_for for embarrassingly parallel sweeps (seed sweeps,
// µ sweeps). Static block partitioning: tasks in our benches are uniform, so
// dynamic scheduling would only add synchronization cost.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mutdbp {

[[nodiscard]] inline std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(i) for i in [begin, end) across up to `threads` threads.
/// The first exception thrown by any task is rethrown on the caller.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t threads = default_thread_count()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  threads = std::min(threads == 0 ? std::size_t{1} : threads, n);
  if (threads == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (n + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t lo = begin + t * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mutdbp
