// Persistent thread pool + templated parallel_for for embarrassingly
// parallel sweeps (seed sweeps, µ sweeps).
//
// The original implementation spawned std::thread per call and erased the
// body behind std::function, so every sweep paid thread creation plus an
// indirect call per index. The pool below is created once (lazily, sized to
// the hardware) and parks its workers on a condition variable between jobs;
// parallel_for hands it a statically partitioned job through a function
// pointer + context, so the per-call cost is one wakeup and the body stays
// inlinable inside each block. Static block partitioning is kept: tasks in
// our benches are uniform, so dynamic scheduling would only add
// synchronization cost.
//
// Nested parallel_for calls (from inside a pool task) run serially inline —
// correct, deadlock-free, and the outer level already owns the cores.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace mutdbp {

[[nodiscard]] inline std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Names the calling thread for profilers, `top -H`, and trace viewers.
/// Linux caps thread names at 15 characters + NUL; longer names are
/// truncated. A no-op on platforms without pthread naming.
inline void set_current_thread_name(const char* name) noexcept {
#if defined(__linux__)
  char truncated[16];
  std::size_t n = 0;
  for (; n + 1 < sizeof(truncated) && name[n] != '\0'; ++n) truncated[n] = name[n];
  truncated[n] = '\0';
  (void)::pthread_setname_np(::pthread_self(), truncated);
#else
  (void)name;
#endif
}

/// Shard count for the sharded allocator fleet (core/sharded.h): the
/// MUTDBP_SHARDS environment override when set to a positive integer, else
/// one shard per hardware core. Read once and cached for the process.
[[nodiscard]] inline std::size_t hardware_shard_count() noexcept {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("MUTDBP_SHARDS")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 4096) {
        return static_cast<std::size_t>(v);
      }
    }
    return default_thread_count();
  }();
  return cached;
}

class ThreadPool {
 public:
  using ChunkFn = void (*)(void* context, std::size_t chunk);

  /// A pool with `workers` parked threads (the caller of run() always
  /// participates too, so parallelism() == workers + 1).
  explicit ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] {
        // Shard-numbered names: the pool is what runs the sharded fleet's
        // batch mode, and numbered lanes read naturally in profilers.
        char name[16];
        std::snprintf(name, sizeof(name), "mutdbp-shard-%zu", i);
        set_current_thread_name(name);
        worker_loop();
      });
    }
  }

  ~ThreadPool() {
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    wake_workers_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with one thread per
  /// hardware core (including the caller).
  [[nodiscard]] static ThreadPool& global() {
    static ThreadPool pool(default_thread_count() - 1);
    return pool;
  }

  [[nodiscard]] std::size_t parallelism() const noexcept { return workers_.size() + 1; }

  /// True while the current thread is executing a pool task; used to run
  /// nested parallel constructs inline.
  [[nodiscard]] static bool in_task() noexcept { return in_task_flag(); }

  /// Runs fn(context, c) for every chunk c in [0, chunks), distributing the
  /// chunks over the workers and the calling thread; returns when all chunks
  /// finished. `fn` must not throw (parallel_for wraps bodies accordingly).
  /// Concurrent run() calls from distinct threads serialize.
  void run(std::size_t chunks, ChunkFn fn, void* context) {
    if (chunks == 0) return;
    if (workers_.empty() || in_task()) {
      run_inline(chunks, fn, context);
      return;
    }
    const std::scoped_lock job_lock(job_mutex_);
    {
      const std::scoped_lock lock(mutex_);
      fn_ = fn;
      context_ = context;
      chunks_ = chunks;
      next_chunk_ = 0;
      done_ = 0;
      ++generation_;
    }
    wake_workers_.notify_all();
    participate();
    std::unique_lock lock(mutex_);
    job_done_.wait(lock, [this] { return done_ == chunks_; });
    fn_ = nullptr;
  }

 private:
  static bool& in_task_flag() noexcept {
    thread_local bool flag = false;
    return flag;
  }

  void run_inline(std::size_t chunks, ChunkFn fn, void* context) {
    in_task_flag() = true;
    for (std::size_t c = 0; c < chunks; ++c) fn(context, c);
    in_task_flag() = false;
  }

  /// Claims and executes chunks until none remain (caller side).
  void participate() {
    in_task_flag() = true;
    while (true) {
      std::size_t c;
      {
        const std::scoped_lock lock(mutex_);
        if (next_chunk_ >= chunks_) break;
        c = next_chunk_++;
      }
      fn_(context_, c);
      finish_chunk();
    }
    in_task_flag() = false;
  }

  void finish_chunk() {
    bool all_done = false;
    {
      const std::scoped_lock lock(mutex_);
      all_done = ++done_ == chunks_;
    }
    if (all_done) job_done_.notify_all();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      ChunkFn fn = nullptr;
      void* context = nullptr;
      {
        std::unique_lock lock(mutex_);
        wake_workers_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
        if (stop_) return;
        seen_generation = generation_;
        fn = fn_;
        context = context_;
      }
      in_task_flag() = true;
      while (true) {
        std::size_t c;
        {
          const std::scoped_lock lock(mutex_);
          if (generation_ != seen_generation || next_chunk_ >= chunks_) break;
          c = next_chunk_++;
        }
        fn(context, c);
        finish_chunk();
      }
      in_task_flag() = false;
    }
  }

  std::vector<std::thread> workers_;
  std::mutex job_mutex_;  ///< serializes concurrent run() callers

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable job_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  ChunkFn fn_ = nullptr;
  void* context_ = nullptr;
  std::size_t chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t done_ = 0;
};

/// Runs fn(i) for i in [begin, end) across up to `threads` threads (capped
/// by the global pool's parallelism). The first exception thrown by any
/// block is rethrown on the caller after all blocks finish.
template <class F>
inline void parallel_for(std::size_t begin, std::size_t end, F&& fn,
                         std::size_t threads = default_thread_count()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads == 0) threads = 1;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t blocks = std::min({threads, pool.parallelism(), n});

  struct Context {
    F* fn;
    std::size_t begin, end, chunk;
    std::mutex error_mutex;
    std::exception_ptr first_error;
  } context{&fn, begin, end, (n + blocks - 1) / blocks, {}, nullptr};

  const auto run_block = [](void* raw, std::size_t block) {
    auto* ctx = static_cast<Context*>(raw);
    const std::size_t lo = ctx->begin + block * ctx->chunk;
    const std::size_t hi = std::min(ctx->end, lo + ctx->chunk);
    try {
      for (std::size_t i = lo; i < hi; ++i) (*ctx->fn)(i);
    } catch (...) {
      const std::scoped_lock lock(ctx->error_mutex);
      if (!ctx->first_error) ctx->first_error = std::current_exception();
    }
  };

  if (blocks <= 1) {
    run_block(&context, 0);
  } else {
    pool.run(blocks, run_block, &context);
  }
  if (context.first_error) std::rethrow_exception(context.first_error);
}

}  // namespace mutdbp
