// Small statistics helpers used by benches and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace mutdbp {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile with linear interpolation; `p` in [0, 100]. Sorts a copy.
/// NaN anywhere — in `p` or in the data — is rejected with a clear error
/// rather than silently poisoning the sort order (NaN breaks strict weak
/// ordering, making the result placement-dependent garbage).
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  // Negated comparison so NaN p falls through to the throw (all ordered
  // comparisons against NaN are false).
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in [0, 100] (got " +
                                std::to_string(p) + ")");
  }
  for (const double v : values) {
    if (std::isnan(v)) {
      throw std::invalid_argument("percentile: input contains NaN");
    }
  }
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // Exact ranks return the value itself: `frac * (hi - lo)` would be
  // 0 * inf = NaN when the data legitimately contains infinities.
  if (frac == 0.0) return values[lo];
  return values[lo] + frac * (values[hi] - values[lo]);
}

/// Convenience wrappers for the quantiles every report uses.
[[nodiscard]] inline double p50(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}
[[nodiscard]] inline double p90(std::vector<double> values) {
  return percentile(std::move(values), 90.0);
}
[[nodiscard]] inline double p99(std::vector<double> values) {
  return percentile(std::move(values), 99.0);
}

}  // namespace mutdbp
