// Small statistics helpers used by benches and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mutdbp {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile with linear interpolation; `p` in [0, 100]. Sorts a copy.
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace mutdbp
