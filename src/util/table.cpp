#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace mutdbp {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != 'x' && c != '%' && c != 'i' && c != 'n' && c != 'f') {
      return false;
    }
  }
  return digit || s == "inf" || s == "-inf" || s == "nan";
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << (c + 1 == row.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"") != std::string::npos) {
        os << '"';
        for (const char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string Table::num(std::size_t value) { return std::to_string(value); }

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

}  // namespace mutdbp
