// Deterministic, platform-independent pseudo-random number generation.
//
// Standard-library distributions are implementation-defined, which would make
// workloads (and therefore every measured competitive ratio) differ between
// standard libraries. We implement xoshiro256** seeded via SplitMix64 and
// derive all distributions from it with fixed algorithms, so a (spec, seed)
// pair names exactly one workload everywhere.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <stdexcept>

namespace mutdbp {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1): 53 random mantissa bits.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_u64: lo > hi");
    const std::uint64_t range = hi - lo;
    if (range == max()) return next_u64();
    const std::uint64_t bound = range + 1;
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + v % bound;
  }

  std::size_t index(std::size_t size) {
    if (size == 0) throw std::invalid_argument("Rng::index: empty range");
    return static_cast<std::size_t>(uniform_u64(0, size - 1));
  }

  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) {
    if (rate <= 0) throw std::invalid_argument("exponential: rate must be > 0");
    // 1 - U in (0, 1], so the log argument is never zero.
    return -std::log(1.0 - next_double()) / rate;
  }

  /// Standard normal via Box-Muller (one value per call; simple and exact).
  double normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = 1.0 - next_double();  // (0, 1]
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double lognormal(double log_mean, double log_stddev) {
    return std::exp(normal(log_mean, log_stddev));
  }

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi) {
    if (!(alpha > 0) || !(lo > 0) || !(hi > lo)) {
      throw std::invalid_argument("bounded_pareto: need alpha>0, 0<lo<hi");
    }
    const double u = next_double();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Derive an independent child generator (for per-task streams).
  Rng split() noexcept { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mutdbp
