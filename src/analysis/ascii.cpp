#include "analysis/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mutdbp::analysis {
namespace {

class TimeScale {
 public:
  TimeScale(Interval period, std::size_t width) : period_(period), width_(width) {}

  [[nodiscard]] std::size_t column(Time t) const {
    if (period_.length() <= 0.0) return 0;
    const double frac = (t - period_.left) / period_.length();
    const auto col = static_cast<long>(std::floor(frac * static_cast<double>(width_)));
    return static_cast<std::size_t>(std::clamp(col, 0L, static_cast<long>(width_) - 1));
  }

  /// Paints [from, to) with `fill` into the row.
  void paint(std::string& row, Interval iv, char fill) const {
    if (iv.empty()) return;
    const std::size_t lo = column(iv.left);
    std::size_t hi = column(iv.right);
    if (iv.right < period_.right && hi > lo) --hi;  // right end exclusive
    for (std::size_t c = lo; c <= hi && c < row.size(); ++c) row[c] = fill;
  }

 private:
  Interval period_;
  std::size_t width_;
};

char level_char(double level, double capacity) {
  const double frac = level / capacity;
  if (frac >= 0.999) return 'X';
  const int digit = static_cast<int>(std::floor(frac * 10.0));
  return static_cast<char>('0' + std::clamp(digit, 0, 9));
}

}  // namespace

std::string render_bins(const ItemList& items, const PackingResult& result,
                        const RenderOptions& options) {
  std::ostringstream out;
  const Interval period = items.packing_period();
  const TimeScale scale(period, options.width);
  out << "time " << to_string(period) << ", one row per bin\n";
  for (const auto& bin : result.bins()) {
    std::string row(options.width, ' ');
    scale.paint(row, bin.usage, '=');
    row[scale.column(bin.usage.left)] = '[';
    row[scale.column(bin.usage.right)] = ')';
    char label[32];
    std::snprintf(label, sizeof(label), "b%-3zu |", bin.index + 1);
    out << label << row << "|\n";
    if (options.show_levels && !bin.timeline.times.empty()) {
      std::string levels(options.width, ' ');
      for (std::size_t i = 0; i < bin.timeline.times.size(); ++i) {
        const Time from = bin.timeline.times[i];
        const Time to = (i + 1 < bin.timeline.times.size()) ? bin.timeline.times[i + 1]
                                                            : bin.usage.right;
        if (bin.timeline.levels[i] <= 0.0) continue;
        scale.paint(levels, {from, to},
                    level_char(bin.timeline.levels[i], items.capacity()));
      }
      out << "     |" << levels << "| level (0-9 tenths, X=full)\n";
    }
  }
  return out.str();
}

std::string render_usage_split(const ItemList& items, const PackingResult& result,
                               const RenderOptions& options) {
  std::ostringstream out;
  const Interval period = items.packing_period();
  const TimeScale scale(period, options.width);
  const UsagePeriodDecomposition decomposition(result);
  out << "V_k ('v') and W_k ('w') split per bin (eq. (1): total = sum V + span)\n";
  for (const auto& bin : decomposition.bins()) {
    std::string row(options.width, ' ');
    scale.paint(row, bin.v, 'v');
    scale.paint(row, bin.w, 'w');
    char label[32];
    std::snprintf(label, sizeof(label), "b%-3zu |", bin.index + 1);
    out << label << row << "|\n";
  }
  return out.str();
}

}  // namespace mutdbp::analysis
