#include "analysis/bounds_catalog.h"

#include <cstdio>

namespace mutdbp::analysis {

const std::vector<PublishedBound>& bounds_catalog() {
  // Constants the OCR source lost are reconstructed per DESIGN.md §6.
  static const std::vector<PublishedBound> catalog{
      // This paper's contribution.
      {"FirstFit", BoundKind::kUpper, 1.0, 4.0, "Theorem 1 (this paper)", false},
      // Prior First Fit bound it improves on.
      {"FirstFit", BoundKind::kUpper, 2.0, 7.0, "[16] SPAA'14 (superseded)", false},
      // Universal lower bound for every online algorithm.
      {"Any", BoundKind::kLower, 1.0, 0.0, "[12] Kamali, [16]", false},
      // Any Fit family lower bound.
      {"AnyFit", BoundKind::kLower, 1.0, 1.0, "[16]", false},
      // Next Fit.
      {"NextFit", BoundKind::kUpper, 2.0, 1.0, "[12] Kamali & Lopez-Ortiz", false},
      {"NextFit", BoundKind::kLower, 2.0, 0.0, "Section VIII (this paper)", false},
      // Best Fit: no f(mu) bound exists.
      {"BestFit", BoundKind::kUnbounded, 0.0, 0.0, "[15],[16]", false},
      // Hybrid (size-classified) First Fit.
      {"HybridFirstFit", BoundKind::kUpper, 8.0 / 7.0, 2.0, "[16] (approx.)", false},
      // Semi-online classified algorithms (mu known a priori).
      {"ClassifiedFirstFit", BoundKind::kUpper, 1.0, 5.0, "[5] (semi-online)", true},
      {"ClassifiedNextFit", BoundKind::kUpper, 2.0, 2.0, "[12] (semi-online, approx.)",
       true},
  };
  return catalog;
}

std::optional<double> best_upper_bound(std::string_view algorithm, double mu) {
  std::optional<double> best;
  auto consider = [&](std::string_view name) {
    for (const auto& bound : bounds_catalog()) {
      if (bound.algorithm != name || bound.kind != BoundKind::kUpper) continue;
      const double value = bound.at(mu);
      if (!best || value < *best) best = value;
    }
  };
  consider(algorithm);
  // Every algorithm is also an online algorithm; Any-Fit members share the
  // family's bounds (none are upper bounds today, but keep the lookup
  // uniform).
  return best;
}

std::string bound_label(std::string_view algorithm, double mu) {
  std::optional<const PublishedBound*> chosen;
  for (const auto& bound : bounds_catalog()) {
    if (bound.algorithm != algorithm) continue;
    if (bound.kind == BoundKind::kUnbounded) return "unbounded " + std::string(bound.source);
    if (bound.kind != BoundKind::kUpper) continue;
    if (!chosen || bound.at(mu) < (*chosen)->at(mu)) chosen = &bound;
  }
  if (!chosen) {
    // Members of the Any Fit family inherit the family lower bound.
    const bool is_any_fit = algorithm == "FirstFit" || algorithm == "BestFit" ||
                            algorithm == "WorstFit" || algorithm == "LastFit" ||
                            algorithm == "RandomFit";
    if (is_any_fit) {
      for (const auto& bound : bounds_catalog()) {
        if (bound.algorithm == "AnyFit" && bound.kind == BoundKind::kLower) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), ">= %.1f (AnyFit LB %s)", bound.at(mu),
                        std::string(bound.source).c_str());
          return buf;
        }
      }
    }
    return "-";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.1f %s%s", (*chosen)->at(mu),
                std::string((*chosen)->source).c_str(),
                (*chosen)->semi_online ? " [semi-online]" : "");
  return buf;
}

}  // namespace mutdbp::analysis
