// One-call evaluation of an algorithm on an item list against the offline
// optimum: the quantity every bench reports.
#pragma once

#include <string>

#include "core/item_list.h"
#include "core/simulation.h"
#include "opt/opt_integral.h"

namespace mutdbp::analysis {

struct EvalOptions {
  /// Compute the exact repacking integral (expensive) instead of using the
  /// closed-form lower bounds only.
  bool exact_opt = false;
  opt::OptIntegralOptions opt_options{};
  SimulationOptions sim{};
};

struct Evaluation {
  std::string algorithm;
  double total_usage = 0.0;          ///< the MinUsageTime objective
  std::size_t bins_opened = 0;
  std::size_t max_concurrent = 0;    ///< classic DBP objective
  double average_utilization = 0.0;
  double mu = 1.0;

  /// Quantiles of the per-bin usage-period lengths (0 when no bins opened):
  /// how skewed the rental durations are, not just their sum.
  double usage_p50 = 0.0;
  double usage_p90 = 0.0;
  double usage_p99 = 0.0;

  double opt_lower = 0.0;  ///< proven lower bound on OPT_total
  double opt_upper = 0.0;  ///< proven upper bound on OPT_total
  bool opt_exact = false;  ///< opt_lower == opt_upper

  /// total_usage / opt_lower: an upper estimate of the achieved ratio
  /// (the number to compare against the µ+4 guarantee).
  [[nodiscard]] double ratio_upper_estimate() const noexcept {
    return opt_lower > 0.0 ? total_usage / opt_lower : 1.0;
  }
  /// total_usage / opt_upper: a certified lower estimate of the ratio
  /// (what lower-bound constructions report).
  [[nodiscard]] double ratio_lower_estimate() const noexcept {
    return opt_upper > 0.0 ? total_usage / opt_upper : 1.0;
  }
};

[[nodiscard]] Evaluation evaluate(const ItemList& items, PackingAlgorithm& algorithm,
                                  const EvalOptions& options = {});

}  // namespace mutdbp::analysis
