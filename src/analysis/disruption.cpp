#include "analysis/disruption.h"

#include <cmath>
#include <string>

#include "core/error.h"

namespace mutdbp::analysis {

DisruptionReport summarize_disruption(const DisruptionInputs& in) {
  if (in.replacements + in.drops > in.evictions) {
    throw ValidationError(
        "summarize_disruption: replacements (" + std::to_string(in.replacements) +
        ") + drops (" + std::to_string(in.drops) + ") exceed evictions (" +
        std::to_string(in.evictions) + ")");
  }
  const double totals[] = {in.usage, in.fault_free_usage, in.cost,
                           in.fault_free_cost};
  for (const double value : totals) {
    if (!std::isfinite(value) || value < 0.0) {
      throw ValidationError("summarize_disruption: usage/cost totals must be "
                            "finite and >= 0, got " +
                            std::to_string(value));
    }
  }
  return DisruptionReport{in};
}

}  // namespace mutdbp::analysis
