// Section IV machinery: usage periods U_k, the latest-earlier-closing times
// E_k, and the V_k / W_k split of each usage period.
//
//   E_k = max{ U_i^+ : i < k }          (E_1 = U_1^-)
//   V_k = [U_k^-, min(U_k^+, E_k))      (empty if E_k <= U_k^-)
//   W_k = U_k \ V_k
//
// Identities proved in the paper and verified by tests:
//   * the W_k are pairwise disjoint,
//   * Σ|W_k| = span(R),
//   * FF_total(R) = Σ|V_k| + span(R)   (equation (1)).
#pragma once

#include <cstddef>
#include <vector>

#include "core/interval.h"
#include "core/packing_result.h"

namespace mutdbp::analysis {

struct BinUsageSplit {
  BinIndex index = 0;
  Interval usage;  ///< U_k
  Time e_k = 0.0;  ///< latest closing time of bins opened before this one
  Interval v;      ///< V_k (may be empty)
  Interval w;      ///< W_k (may be empty)
};

class UsagePeriodDecomposition {
 public:
  explicit UsagePeriodDecomposition(const PackingResult& result);

  [[nodiscard]] const std::vector<BinUsageSplit>& bins() const noexcept { return bins_; }
  [[nodiscard]] Time total_v() const noexcept;
  [[nodiscard]] Time total_w() const noexcept;
  [[nodiscard]] Time total_usage() const noexcept;

 private:
  std::vector<BinUsageSplit> bins_;
};

}  // namespace mutdbp::analysis
