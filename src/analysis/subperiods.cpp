#include "analysis/subperiods.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mutdbp::analysis {
namespace {

struct SmallArrival {
  ItemId id = 0;
  double size = 0.0;
  Time arrival = 0.0;
  std::size_t order = 0;  // placement order within the bin
};

}  // namespace

std::vector<Subperiod> BinSubperiods::l_subperiods() const {
  std::vector<Subperiod> out;
  for (const auto& sp : subperiods) {
    if (sp.kind == SubperiodKind::kLow) out.push_back(sp);
  }
  return out;
}

std::vector<Subperiod> BinSubperiods::h_subperiods() const {
  std::vector<Subperiod> out;
  for (const auto& sp : subperiods) {
    if (sp.kind == SubperiodKind::kHigh) out.push_back(sp);
  }
  return out;
}

SubperiodAnalysis::SubperiodAnalysis(const ItemList& items, const PackingResult& result,
                                     SubperiodConfig config)
    : usage_(result) {
  window_ = std::isnan(config.window) ? items.mu() * items.min_duration() : config.window;
  if (!(window_ > 0.0)) {
    throw std::invalid_argument("SubperiodAnalysis: window must be > 0");
  }
  small_abs_ = config.small_threshold * items.capacity();

  per_bin_.reserve(result.bins().size());
  for (std::size_t k = 0; k < result.bins().size(); ++k) {
    const auto& record = result.bins()[k];
    const Interval v = usage_.bins()[k].v;

    BinSubperiods bin;
    bin.bin = record.index;
    bin.v = v;
    if (v.empty()) {
      per_bin_.push_back(std::move(bin));
      continue;
    }

    // Small items placed in this bin during V_k, in placement order
    // (placements are recorded in arrival order).
    std::vector<SmallArrival> smalls;
    for (std::size_t pos = 0; pos < record.items.size(); ++pos) {
      const auto& placed = record.items[pos];
      if (placed.size < small_abs_ && v.contains(placed.active.left)) {
        smalls.push_back({placed.item, placed.size, placed.active.left, pos});
      }
    }

    // ---- selection (§V, Figure 3) ----
    std::vector<SmallArrival> selected;
    if (!smalls.empty()) {
      std::size_t cur = 0;  // index into `smalls`
      while (true) {
        selected.push_back(smalls[cur]);
        // Condition (i): selected item arrives within `window` (inclusive)
        // of the end of V_k.
        if (smalls[cur].arrival >= v.right - window_) break;
        // Condition (ii): selected item is the last small arrival in V_k.
        if (cur + 1 == smalls.size()) break;
        // Small items placed after `cur` within (arrival, arrival+window].
        std::size_t last_in_window = cur;
        for (std::size_t j = cur + 1; j < smalls.size(); ++j) {
          if (smalls[j].arrival <= smalls[cur].arrival + window_) {
            last_in_window = j;
          } else {
            break;  // arrivals are non-decreasing in placement order
          }
        }
        cur = (last_in_window > cur) ? last_in_window : cur + 1;
      }
    }
    for (const auto& s : selected) bin.selected.push_back(s.id);

    // ---- period split (x_0, x_1, ...) and l/h subdivision ----
    auto emit = [&](SubperiodKind kind, Interval period, std::size_t origin,
                    const SmallArrival* sel) {
      if (period.empty()) return;
      Subperiod sp;
      sp.bin = record.index;
      sp.kind = kind;
      sp.period = period;
      sp.origin_index = origin;
      if (sel != nullptr) {
        sp.selected_item = sel->id;
        sp.selected_size = sel->size;
      }
      bin.subperiods.push_back(sp);
    };

    if (selected.empty()) {
      // No small item during V_k: x_0 = V_k, entirely an h-subperiod.
      emit(SubperiodKind::kHigh, v, 0, nullptr);
    } else {
      emit(SubperiodKind::kHigh, {v.left, selected.front().arrival}, 0, nullptr);
      for (std::size_t i = 0; i < selected.size(); ++i) {
        const Time start = selected[i].arrival;
        const Time end = (i + 1 < selected.size()) ? selected[i + 1].arrival : v.right;
        const Interval x{start, end};
        if (x.length() > window_) {
          emit(SubperiodKind::kLow, {start, start + window_}, i + 1, &selected[i]);
          emit(SubperiodKind::kHigh, {start + window_, end}, i + 1, &selected[i]);
        } else {
          emit(SubperiodKind::kLow, x, i + 1, &selected[i]);
        }
      }
    }
    per_bin_.push_back(std::move(bin));
  }
}

std::vector<Subperiod> SubperiodAnalysis::all_l_subperiods() const {
  std::vector<Subperiod> out;
  for (const auto& bin : per_bin_) {
    for (const auto& sp : bin.subperiods) {
      if (sp.kind == SubperiodKind::kLow) out.push_back(sp);
    }
  }
  return out;
}

std::vector<Subperiod> SubperiodAnalysis::all_h_subperiods() const {
  std::vector<Subperiod> out;
  for (const auto& bin : per_bin_) {
    for (const auto& sp : bin.subperiods) {
      if (sp.kind == SubperiodKind::kHigh) out.push_back(sp);
    }
  }
  return out;
}

}  // namespace mutdbp::analysis
