// Section V machinery: small/large item classification, selection of small
// items, and the split of each V_k into l-subperiods and h-subperiods
// (Figure 3), executable so Propositions 3-7 become testable properties.
//
// Selection (per bin b_k, within V_k): start from the first small item ever
// placed in b_k; from the current selected item r, if other small items are
// placed in b_k within (r.arrival, r.arrival + window], the next selected is
// the LAST of them, otherwise the FIRST small item placed after the window.
// Selection stops once a selected item arrives within `window` of V_k's end
// (condition i) or is the last small arrival in V_k (condition ii).
//
// The selected arrivals cut V_k into x_0, x_1, ...; every x_i longer than
// the window is split into an l-subperiod of length `window` and an
// h-subperiod holding the rest; x_0 is entirely an h-subperiod.
//
// Parameters (paper values): small threshold 1/2 (of capacity), window µ.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "analysis/usage_periods.h"
#include "core/item_list.h"
#include "core/packing_result.h"

namespace mutdbp::analysis {

struct SubperiodConfig {
  /// Items with size < small_threshold * capacity are "small".
  double small_threshold = 0.5;
  /// Selection window and l-subperiod cap; the paper uses µ (max duration).
  /// NaN means "use µ of the item list".
  double window = std::numeric_limits<double>::quiet_NaN();
};

enum class SubperiodKind { kLow, kHigh };  // l-subperiod / h-subperiod

struct Subperiod {
  BinIndex bin = 0;
  SubperiodKind kind = SubperiodKind::kLow;
  Interval period;
  /// Index i of the period x_i this subperiod came from (0 = before the
  /// first selected small item).
  std::size_t origin_index = 0;
  /// For l-subperiods: the selected small item arriving at period.left.
  ItemId selected_item = 0;
  double selected_size = 0.0;
};

struct BinSubperiods {
  BinIndex bin = 0;
  Interval v;                         ///< the V_k that was subdivided
  std::vector<ItemId> selected;       ///< selected small items, in order
  std::vector<Subperiod> subperiods;  ///< in temporal order

  [[nodiscard]] std::vector<Subperiod> l_subperiods() const;
  [[nodiscard]] std::vector<Subperiod> h_subperiods() const;
};

class SubperiodAnalysis {
 public:
  SubperiodAnalysis(const ItemList& items, const PackingResult& result,
                    SubperiodConfig config = {});

  [[nodiscard]] const std::vector<BinSubperiods>& per_bin() const noexcept {
    return per_bin_;
  }
  [[nodiscard]] const UsagePeriodDecomposition& usage_periods() const noexcept {
    return usage_;
  }
  [[nodiscard]] double window() const noexcept { return window_; }
  [[nodiscard]] double small_threshold_abs() const noexcept { return small_abs_; }

  /// All l-subperiods of all bins, in (bin, time) order.
  [[nodiscard]] std::vector<Subperiod> all_l_subperiods() const;
  [[nodiscard]] std::vector<Subperiod> all_h_subperiods() const;

 private:
  UsagePeriodDecomposition usage_;
  std::vector<BinSubperiods> per_bin_;
  double window_ = 0.0;
  double small_abs_ = 0.0;
};

}  // namespace mutdbp::analysis
