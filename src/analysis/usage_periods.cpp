#include "analysis/usage_periods.h"

#include <algorithm>
#include <stdexcept>

namespace mutdbp::analysis {

UsagePeriodDecomposition::UsagePeriodDecomposition(const PackingResult& result) {
  const auto& records = result.bins();
  bins_.reserve(records.size());
  // PackingResult bins are sorted by index = opening order, which is also
  // non-decreasing opening time (the paper's b_1 ... b_m).
  Time latest_close = 0.0;
  for (std::size_t k = 0; k < records.size(); ++k) {
    const auto& record = records[k];
    if (k > 0 && record.usage.left < records[k - 1].usage.left) {
      throw std::logic_error("UsagePeriodDecomposition: bins not in opening order");
    }
    BinUsageSplit split;
    split.index = record.index;
    split.usage = record.usage;
    split.e_k = (k == 0) ? record.usage.left : latest_close;

    const Time v_end = std::min(record.usage.right, split.e_k);
    split.v = {record.usage.left, v_end};          // empty when E_k <= U_k^-
    split.w = {std::max(record.usage.left, v_end), record.usage.right};
    if (split.v.empty()) split.v = {record.usage.left, record.usage.left};
    if (split.w.empty()) split.w = {record.usage.right, record.usage.right};

    latest_close = (k == 0) ? record.usage.right
                            : std::max(latest_close, record.usage.right);
    bins_.push_back(split);
  }
}

Time UsagePeriodDecomposition::total_v() const noexcept {
  Time total = 0.0;
  for (const auto& bin : bins_) total += bin.v.length();
  return total;
}

Time UsagePeriodDecomposition::total_w() const noexcept {
  Time total = 0.0;
  for (const auto& bin : bins_) total += bin.w.length();
  return total;
}

Time UsagePeriodDecomposition::total_usage() const noexcept {
  Time total = 0.0;
  for (const auto& bin : bins_) total += bin.usage.length();
  return total;
}

}  // namespace mutdbp::analysis
