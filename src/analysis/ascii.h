// ASCII rendering of packings: the textual counterpart of the paper's
// Figures 1 and 2, used by the examples.
#pragma once

#include <string>

#include "analysis/usage_periods.h"
#include "core/item_list.h"
#include "core/packing_result.h"

namespace mutdbp::analysis {

struct RenderOptions {
  std::size_t width = 72;   ///< characters across the packing period
  bool show_levels = true;  ///< digit rows encoding 10*level under each bin
};

/// One row per bin: its usage period drawn over the packing period, with
/// '[' at opening, ')' at closing, and '=' in between. With show_levels, a
/// second row renders the bin level (0-9, 'X' for full) over time.
[[nodiscard]] std::string render_bins(const ItemList& items, const PackingResult& result,
                                      const RenderOptions& options = {});

/// Figure 2 style: V_k / W_k split per bin ('v' and 'w' runs).
[[nodiscard]] std::string render_usage_split(const ItemList& items,
                                             const PackingResult& result,
                                             const RenderOptions& options = {});

}  // namespace mutdbp::analysis
