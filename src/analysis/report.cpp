#include "analysis/report.h"

#include <algorithm>
#include <vector>

#include "opt/lower_bounds.h"
#include "util/stats.h"

namespace mutdbp::analysis {

Evaluation evaluate(const ItemList& items, PackingAlgorithm& algorithm,
                    const EvalOptions& options) {
  Evaluation eval;
  eval.algorithm = std::string(algorithm.name());
  eval.mu = items.mu();

  const PackingResult result = simulate(items, algorithm, options.sim);
  eval.total_usage = result.total_usage_time();
  eval.bins_opened = result.bins_opened();
  eval.max_concurrent = result.max_concurrent_bins();
  eval.average_utilization = result.average_utilization();
  if (!result.bins().empty()) {
    std::vector<double> usage_times;
    usage_times.reserve(result.bins().size());
    for (const BinRecord& bin : result.bins()) {
      usage_times.push_back(bin.usage_time());
    }
    eval.usage_p50 = p50(usage_times);
    eval.usage_p90 = p90(usage_times);
    eval.usage_p99 = p99(std::move(usage_times));
  }

  eval.opt_lower = opt::combined_lower_bound(items);
  // OPT can never cost more than any online algorithm's packing.
  eval.opt_upper = eval.total_usage;
  if (options.exact_opt) {
    const opt::OptIntegral integral = opt::opt_total(items, options.opt_options);
    eval.opt_lower = std::max(eval.opt_lower, integral.lower);
    eval.opt_upper = std::min(eval.opt_upper, integral.upper);
  }
  eval.opt_exact = eval.opt_lower >= eval.opt_upper - 1e-9;
  return eval;
}

}  // namespace mutdbp::analysis
