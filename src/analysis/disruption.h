// Disruption metrics: how much a fault-injected run degraded versus its
// fault-free baseline. The analysis layer is below the cloud layer, so the
// inputs are plain counters and totals — the caller (a bench or test)
// copies them out of whatever fault driver it ran (cloud::FaultyRunReport,
// dispatcher counters, ...).
#pragma once

#include <cstddef>

#include "core/interval.h"

namespace mutdbp::analysis {

/// Raw observations of one faulty run plus its fault-free baseline.
struct DisruptionInputs {
  std::size_t jobs = 0;              ///< jobs in the trace
  std::size_t faults_injected = 0;   ///< faults that hit a rented server
  std::size_t evictions = 0;         ///< job-eviction events
  std::size_t replacements = 0;      ///< successful re-placements
  std::size_t drops = 0;             ///< jobs never re-placed
  Time usage = 0.0;                  ///< total usage of the faulty run
  Time fault_free_usage = 0.0;       ///< same trace, same algorithm, no faults
  double cost = 0.0;                 ///< billed cost of the faulty run
  double fault_free_cost = 0.0;
};

/// Derived disruption metrics. Throws ValidationError if the inputs are
/// inconsistent (replacements + drops exceeding evictions, negative
/// usage/cost, or non-finite totals).
struct DisruptionReport {
  DisruptionInputs in;

  /// Fraction of jobs that were lost (dropped) instead of finishing.
  [[nodiscard]] double loss_rate() const noexcept {
    return in.jobs > 0 ? static_cast<double>(in.drops) / static_cast<double>(in.jobs)
                       : 0.0;
  }
  /// Mean evictions suffered per job in the trace.
  [[nodiscard]] double evictions_per_job() const noexcept {
    return in.jobs > 0
               ? static_cast<double>(in.evictions) / static_cast<double>(in.jobs)
               : 0.0;
  }
  /// Extra usage paid relative to the fault-free baseline (0 = no
  /// degradation; may be negative when drops shed load).
  [[nodiscard]] Time extra_usage() const noexcept {
    return in.usage - in.fault_free_usage;
  }
  /// usage / fault_free_usage: the degradation factor benches plot against
  /// the failure rate.
  [[nodiscard]] double usage_ratio() const noexcept {
    return in.fault_free_usage > 0.0 ? in.usage / in.fault_free_usage : 1.0;
  }
  [[nodiscard]] double extra_cost() const noexcept {
    return in.cost - in.fault_free_cost;
  }
  [[nodiscard]] double cost_ratio() const noexcept {
    return in.fault_free_cost > 0.0 ? in.cost / in.fault_free_cost : 1.0;
  }
};

[[nodiscard]] DisruptionReport summarize_disruption(const DisruptionInputs& in);

}  // namespace mutdbp::analysis
