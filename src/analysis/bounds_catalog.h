// The §I/§II competitive-ratio catalogue for MinUsageTime DBP as data:
// every published bound the paper states or cites, evaluable at a given µ.
// Benches print these next to measured ratios; tests pin the values.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mutdbp::analysis {

enum class BoundKind { kUpper, kLower, kUnbounded };

struct PublishedBound {
  std::string_view algorithm;  ///< registry name or family ("AnyFit", "Any")
  BoundKind kind = BoundKind::kUpper;
  /// ratio(µ) = slope*µ + offset (ignored for kUnbounded).
  double slope = 0.0;
  double offset = 0.0;
  std::string_view source;  ///< citation, paper's numbering
  bool semi_online = false; ///< requires µ known a priori

  [[nodiscard]] double at(double mu) const noexcept {
    return kind == BoundKind::kUnbounded
               ? std::numeric_limits<double>::infinity()
               : slope * mu + offset;
  }
};

/// All bounds discussed in the paper, Theorem 1 included.
[[nodiscard]] const std::vector<PublishedBound>& bounds_catalog();

/// The best (smallest) published upper bound for a registry algorithm name
/// at a given µ; nullopt if none is known (e.g. Best Fit: unbounded).
[[nodiscard]] std::optional<double> best_upper_bound(std::string_view algorithm,
                                                     double mu);

/// Human-readable bound label for tables ("mu+4 (Thm 1)" style).
[[nodiscard]] std::string bound_label(std::string_view algorithm, double mu);

}  // namespace mutdbp::analysis
