// Sections V-VI machinery: supplier bins, supplier periods, the pair
// relation (Definition 1), consolidation (Definition 2), and the
// non-intersection property (Lemma 2) as checkable data.
//
// Supplier bin of an l-subperiod with left endpoint t produced from bin b_k:
// the highest-indexed bin opened before b_k that is open at t. It must exist
// (otherwise b_k would be the lowest-indexed open bin at t and the period
// would lie in W_k, not V_k) — tests assert missing_suppliers() == 0.
//
// Supplier period of a single l-subperiod (left endpoint t, length L):
//   u = [t - rho*L, t + rho*L)
// The OCR of the paper loses the scaling factor, so rho is a parameter
// (DESIGN.md "OCR reconstructions"); the default rho = d_min / (2*window)
// (= 1/(2µ) with the paper's normalization d_min = 1, window = µ) is the
// value for which Lemma 2 is provable from the paper's ingredients:
// same-supplier l-subperiods in different bins have left endpoints >= d_min
// apart (inequality (5)), and lengths are <= window (Proposition 3).
//
// Definition 1 (pair), stated in §V as "the condition for the supplier
// periods of two consecutive l-subperiods to overlap if they were single":
// consecutive l-subperiods pair iff they share a supplier bin and their
// single-form supplier periods overlap. Maximal chains of pairs are
// consolidated; a consolidated supplier period is the union of its members'
// (one interval, because consecutive members overlap).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "analysis/subperiods.h"

namespace mutdbp::analysis {

struct SupplierConfig {
  /// Supplier period half-width as a fraction of the l-subperiod length.
  /// NaN -> d_min / (2 * window), the provable default.
  double rho = std::numeric_limits<double>::quiet_NaN();
};

struct LSubperiodInfo {
  Subperiod sub;
  std::optional<BinIndex> supplier;  ///< nullopt = violation (tests assert none)
  Interval single_supplier_period;   ///< the would-be single-form period
  bool pairs_with_next = false;      ///< Definition 1 w.r.t. the next l-subperiod
};

/// A single l-subperiod or a consolidated chain, with its supplier period.
struct SupplierGroup {
  BinIndex bin = 0;       ///< the bin the l-subperiods came from
  BinIndex supplier = 0;  ///< their common supplier bin
  std::vector<Subperiod> members;
  Interval supplier_period;

  [[nodiscard]] bool consolidated() const noexcept { return members.size() > 1; }
  [[nodiscard]] Time members_length() const noexcept;
};

class SupplierAnalysis {
 public:
  SupplierAnalysis(const ItemList& items, const PackingResult& result,
                   const SubperiodAnalysis& subperiods, SupplierConfig config = {});

  [[nodiscard]] const std::vector<SupplierGroup>& groups() const noexcept {
    return groups_;
  }
  /// Per-bin l-subperiod details, ordered as in SubperiodAnalysis.
  [[nodiscard]] const std::vector<std::vector<LSubperiodInfo>>& per_bin() const noexcept {
    return per_bin_;
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] std::size_t missing_suppliers() const noexcept { return missing_; }

  /// Lemma 2: number of intersecting supplier-period pairs (same supplier
  /// bin + overlapping intervals). The paper proves this is 0.
  [[nodiscard]] std::size_t count_intersections() const;

  /// §VII accounting: aggregated time-space demand over every group's
  /// l-subperiods (in the group's own bin) plus its supplier period (in the
  /// supplier bin), against the aggregated period lengths. The ratio
  /// demand/length is the amortized bin level the paper bounds from below
  /// to obtain Theorem 1.
  struct AmortizedDemand {
    double demand = 0.0;
    double length = 0.0;
    [[nodiscard]] double level() const noexcept {
      return length > 0.0 ? demand / length : 0.0;
    }
  };
  [[nodiscard]] AmortizedDemand low_period_demand(const PackingResult& result) const;

 private:
  std::vector<std::vector<LSubperiodInfo>> per_bin_;
  std::vector<SupplierGroup> groups_;
  double rho_ = 0.0;
  std::size_t missing_ = 0;
};

}  // namespace mutdbp::analysis
