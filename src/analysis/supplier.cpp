#include "analysis/supplier.h"

#include <algorithm>
#include <cmath>

namespace mutdbp::analysis {

Time SupplierGroup::members_length() const noexcept {
  Time total = 0.0;
  for (const auto& m : members) total += m.period.length();
  return total;
}

SupplierAnalysis::SupplierAnalysis(const ItemList& items, const PackingResult& result,
                                   const SubperiodAnalysis& subperiods,
                                   SupplierConfig config) {
  const double window = subperiods.window();
  rho_ = std::isnan(config.rho) ? items.min_duration() / (2.0 * window) : config.rho;

  // ---- supplier bin of every l-subperiod ----
  const auto& bins = result.bins();
  for (const auto& bin_sub : subperiods.per_bin()) {
    std::vector<LSubperiodInfo> infos;
    for (const auto& sp : bin_sub.subperiods) {
      if (sp.kind != SubperiodKind::kLow) continue;
      LSubperiodInfo info;
      info.sub = sp;
      const Time t = sp.period.left;
      // Highest-indexed earlier-opened bin open at t. Bin indices equal the
      // positions in `bins` (PackingResult sorts by index).
      for (std::size_t j = sp.bin; j-- > 0;) {
        if (bins[j].usage.contains(t)) {
          info.supplier = bins[j].index;
          break;
        }
      }
      if (!info.supplier.has_value()) ++missing_;
      const double half = rho_ * sp.period.length();
      info.single_supplier_period = {t - half, t + half};
      infos.push_back(info);
    }
    // Definition 1: consecutive l-subperiods pair iff same supplier bin and
    // single-form supplier periods overlap.
    for (std::size_t i = 0; i + 1 < infos.size(); ++i) {
      infos[i].pairs_with_next =
          infos[i].supplier.has_value() && infos[i + 1].supplier.has_value() &&
          *infos[i].supplier == *infos[i + 1].supplier &&
          infos[i].single_supplier_period.overlaps(infos[i + 1].single_supplier_period);
    }
    per_bin_.push_back(std::move(infos));
  }

  // ---- Definition 2: maximal pair chains -> consolidated groups ----
  for (const auto& infos : per_bin_) {
    std::size_t i = 0;
    while (i < infos.size()) {
      std::size_t j = i;
      while (j + 1 < infos.size() && infos[j].pairs_with_next) ++j;
      if (infos[i].supplier.has_value()) {
        SupplierGroup group;
        group.bin = infos[i].sub.bin;
        group.supplier = *infos[i].supplier;
        for (std::size_t k = i; k <= j; ++k) group.members.push_back(infos[k].sub);
        // Union of the members' single-form periods; consecutive members
        // overlap, so this is one interval.
        group.supplier_period = {infos[i].single_supplier_period.left,
                                 infos[j].single_supplier_period.right};
        groups_.push_back(std::move(group));
      }
      i = j + 1;
    }
  }
}

SupplierAnalysis::AmortizedDemand SupplierAnalysis::low_period_demand(
    const PackingResult& result) const {
  AmortizedDemand total;
  for (const auto& group : groups_) {
    const auto& own_bin = result.bins()[group.bin];
    const auto& supplier_bin = result.bins()[group.supplier];
    for (const auto& member : group.members) {
      total.demand += own_bin.demand_over(member.period);
      total.length += member.period.length();
    }
    // Clip the supplier period to the supplier bin's usage (the paper's
    // accounting only needs the demand inside the bin's life).
    const Interval clipped = group.supplier_period.intersect(supplier_bin.usage);
    total.demand += supplier_bin.demand_over(clipped);
    total.length += group.supplier_period.length();
  }
  return total;
}

std::size_t SupplierAnalysis::count_intersections() const {
  // Two supplier periods intersect iff they belong to the same supplier bin
  // and their intervals overlap (§VI).
  std::size_t violations = 0;
  for (std::size_t a = 0; a < groups_.size(); ++a) {
    for (std::size_t b = a + 1; b < groups_.size(); ++b) {
      if (groups_[a].supplier != groups_[b].supplier) continue;
      if (groups_[a].supplier_period.overlaps(groups_[b].supplier_period)) ++violations;
    }
  }
  return violations;
}

}  // namespace mutdbp::analysis
