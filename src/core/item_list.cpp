#include "core/item_list.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/error.h"
#include "core/item.h"

namespace mutdbp {

ItemList::ItemList(std::vector<Item> items, double capacity)
    : items_(std::move(items)), capacity_(capacity) {
  if (!(capacity_ > 0.0)) throw ValidationError("ItemList: capacity must be > 0");
  for (const auto& item : items_) validate(item);
}

void ItemList::push_back(const Item& item) {
  validate(item);
  items_.push_back(item);
  invalidate_schedule();
}

const std::vector<ScheduledEvent>& ItemList::schedule() const {
  const std::scoped_lock lock(schedule_mutex_);
  if (!schedule_built_) {
    if (items_.size() > std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("ItemList::schedule: too many items");
    }
    schedule_.clear();
    schedule_.reserve(items_.size() * 2);
    for (std::uint32_t pos = 0; pos < items_.size(); ++pos) {
      const Item& item = items_[pos];
      schedule_.push_back({item.arrival(), item.id, item.size, pos, true});
      schedule_.push_back({item.departure(), item.id, item.size, pos, false});
    }
    std::sort(schedule_.begin(), schedule_.end(),
              [](const ScheduledEvent& a, const ScheduledEvent& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.is_arrival != b.is_arrival) return !a.is_arrival;  // departures first
                return a.id < b.id;
              });
    schedule_built_ = true;
  }
  return schedule_;
}

void ItemList::validate(const Item& item) const {
  if (!(item.size > 0.0) || item.size > capacity_) {
    throw ValidationError("Item " + std::to_string(item.id) +
                                ": size must be in (0, capacity]");
  }
  if (!(item.active.left < item.active.right)) {
    throw ValidationError("Item " + std::to_string(item.id) +
                                ": departure must be after arrival");
  }
}

double ItemList::min_duration() const noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& item : items_) m = std::min(m, item.duration());
  return m;
}

double ItemList::max_duration() const noexcept {
  double m = 0.0;
  for (const auto& item : items_) m = std::max(m, item.duration());
  return m;
}

double ItemList::mu() const noexcept {
  if (items_.empty()) return 1.0;
  return max_duration() / min_duration();
}

IntervalSet ItemList::active_union() const {
  IntervalSet set;
  // Inserting in sorted order keeps IntervalSet::insert O(1) amortized.
  auto sorted = sorted_by_arrival();
  for (const auto& item : sorted) set.insert(item.active);
  return set;
}

Time ItemList::span() const { return active_union().total_length(); }

Interval ItemList::packing_period() const noexcept {
  if (items_.empty()) return {};
  Time first = std::numeric_limits<double>::infinity();
  Time last = -std::numeric_limits<double>::infinity();
  for (const auto& item : items_) {
    first = std::min(first, item.arrival());
    last = std::max(last, item.departure());
  }
  return {first, last};
}

double ItemList::total_time_space_demand() const noexcept {
  double total = 0.0;
  for (const auto& item : items_) total += item.time_space_demand();
  return total;
}

double ItemList::load_at(Time t) const noexcept {
  double load = 0.0;
  for (const auto& item : items_) {
    if (item.active_at(t)) load += item.size;
  }
  return load;
}

std::vector<Item> ItemList::sorted_by_arrival() const {
  std::vector<Item> sorted = items_;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Item& a, const Item& b) {
    if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
    return a.id < b.id;
  });
  return sorted;
}

std::vector<Time> ItemList::event_times() const {
  std::vector<Time> times;
  times.reserve(items_.size() * 2);
  for (const auto& item : items_) {
    times.push_back(item.arrival());
    times.push_back(item.departure());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::string to_string(const Item& item) {
  return "item{id=" + std::to_string(item.id) + ", size=" + std::to_string(item.size) +
         ", " + to_string(item.active) + "}";
}

}  // namespace mutdbp
