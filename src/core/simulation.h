// The online Dynamic Bin Packing simulation engine.
//
// Two entry points:
//  * Simulation — incremental: callers feed arrivals/departures one at a
//    time. This is what adaptive adversaries and the cloud dispatcher use;
//    it is also what makes "departures unknown at arrival" structural (the
//    departure is simply not known to anyone until depart() is called).
//  * simulate() — batch: runs a full ItemList through a Simulation with the
//    paper's event ordering (at equal timestamps departures are processed
//    before arrivals, matching half-open activity intervals).
#pragma once

#include <cstddef>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"
#include "core/item_list.h"
#include "core/packing_result.h"

namespace mutdbp {

struct SimulationOptions {
  double capacity = 1.0;
  double fit_epsilon = kDefaultFitEpsilon;
  bool record_timelines = true;
};

class Simulation {
 public:
  explicit Simulation(PackingAlgorithm& algorithm, SimulationOptions options = {});

  /// Places an arriving item; returns the bin it went to. Time must be
  /// non-decreasing across all arrive/depart calls. Throws std::logic_error
  /// if the algorithm returns an invalid placement (closed bin / no fit).
  BinIndex arrive(ItemId id, double size, Time t);

  /// Removes an item; closes its bin if the bin becomes empty. The caller
  /// decides departure times — this is where "unknown at arrival" lives.
  void depart(ItemId id, Time t);

  [[nodiscard]] std::size_t open_bin_count() const noexcept { return open_bins_.size(); }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t active_items() const noexcept { return active_.size(); }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const SimulationOptions& options() const noexcept { return options_; }

  /// Snapshots of currently open bins, sorted by bin index (what the packing
  /// algorithm sees).
  [[nodiscard]] std::vector<BinSnapshot> open_snapshots() const;

  /// Bin index of a currently active item (throws if unknown).
  [[nodiscard]] BinIndex bin_of_active(ItemId id) const;

  /// Completes the run. All items must have departed.
  [[nodiscard]] PackingResult finish();

 private:
  struct BinState {
    BinIndex index = 0;
    Time open_time = 0.0;
    Time close_time = 0.0;
    bool open = false;
    double level = 0.0;
    std::size_t active_count = 0;
    std::vector<PlacementRecord> placements;
    LevelTimeline timeline;
  };
  struct ActiveRef {
    BinIndex bin = 0;
    std::size_t placement_pos = 0;
    double size = 0.0;
  };

  void record_level(BinState& bin, Time t);
  void advance_time(Time t);

  PackingAlgorithm& algorithm_;
  SimulationOptions options_;
  std::vector<BinState> bins_;
  std::vector<BinIndex> open_bins_;  // sorted ascending
  std::unordered_map<ItemId, ActiveRef> active_;
  Time now_ = -std::numeric_limits<double>::infinity();
  std::size_t max_concurrent_ = 0;
  bool finished_ = false;
};

/// Runs the whole item list through `algorithm` (which is reset() first).
[[nodiscard]] PackingResult simulate(const ItemList& items, PackingAlgorithm& algorithm,
                                     SimulationOptions options = {});

}  // namespace mutdbp
