// The online Dynamic Bin Packing simulation engine.
//
// Two entry points:
//  * Simulation — incremental: callers feed arrivals/departures one at a
//    time. This is what adaptive adversaries and the cloud dispatcher use;
//    it is also what makes "departures unknown at arrival" structural (the
//    departure is simply not known to anyone until depart() is called).
//  * simulate() — batch: runs a full ItemList through a Simulation with the
//    paper's event ordering (at equal timestamps departures are processed
//    before arrivals, matching half-open activity intervals).
//
// Hot-path design (see docs/performance.md): the open-bin set is an
// intrusive doubly-linked list threaded through the bin states (O(1) open
// and close, index-ordered traversal), the active-item table is an
// open-addressing FlatMap, and for algorithms that answer
// needs_snapshots() == false no per-arrival snapshot vector is built at
// all; when one is needed it is materialized into a reused scratch buffer.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/algorithm.h"
#include "core/item_list.h"
#include "core/packing_result.h"
#include "util/flat_hash.h"

namespace mutdbp {

class InvariantAuditor;

namespace telemetry {
class Telemetry;
}  // namespace telemetry

struct SimulationOptions {
  /// Bin capacity. For simulate(), the default 1.0 means "inherit the
  /// ItemList's capacity"; an explicitly different value that contradicts
  /// the list's capacity is an error (see simulate()).
  double capacity = 1.0;
  double fit_epsilon = kDefaultFitEpsilon;
  bool record_timelines = true;
  /// Attach an InvariantAuditor that re-checks the engine's invariants
  /// after every event (see core/auditor.h). Independently of this flag,
  /// exporting MUTDBP_AUDIT=1 audits every Simulation in the process.
  bool audit = false;
  /// Attach a telemetry sink (metrics + decision trace, see
  /// telemetry/telemetry.h and docs/observability.md). Independently of
  /// this pointer, exporting MUTDBP_METRICS=1 attaches the process-global
  /// Telemetry to every Simulation. When neither is set the engine's hot
  /// path pays one null check per event and nothing else.
  telemetry::Telemetry* telemetry = nullptr;
};

/// One item removed by Simulation::force_close_bin, in arrival order.
/// `placed_at` is the time the item entered the bin (its truncated activity
/// interval is [placed_at, fault time)).
struct EvictedItem {
  ItemId id = 0;
  double size = 0.0;
  Time placed_at = 0.0;
};

class Simulation {
 public:
  explicit Simulation(PackingAlgorithm& algorithm, SimulationOptions options = {});
  ~Simulation();

  /// Places an arriving item; returns the bin it went to. Time must be
  /// non-decreasing across all arrive/depart calls. Throws SimulationError
  /// if the algorithm returns an invalid placement (closed bin / no fit).
  BinIndex arrive(ItemId id, double size, Time t);

  /// Removes an item; closes its bin if the bin becomes empty. The caller
  /// decides departure times — this is where "unknown at arrival" lives.
  void depart(ItemId id, Time t);

  /// Crash primitive for fault injection: evicts every item still resident
  /// in `bin` and closes its usage period at `t`, exactly as if the server
  /// died. The evicted items are returned in arrival order (deterministic —
  /// fault replays are reproducible) with their activity intervals truncated
  /// to `t`; the caller decides their fate (re-submission under a fresh
  /// arrive(), or dropping them). The algorithm sees the same hook sequence
  /// as a natural drain (on_item_departed per item, then on_bin_closed), so
  /// incremental kernels stay in sync. Throws SimulationError if `bin` is
  /// not open or the run is finished.
  std::vector<EvictedItem> force_close_bin(BinIndex bin, Time t);

  /// Pre-sizes internal storage for a run expected to touch about
  /// `expected_items` items (optional; amortized growth otherwise).
  void reserve(std::size_t expected_items);

  [[nodiscard]] std::size_t open_bin_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t active_items() const noexcept { return active_.size(); }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const SimulationOptions& options() const noexcept { return options_; }
  /// True when an InvariantAuditor is attached (options.audit or
  /// MUTDBP_AUDIT, see core/auditor.h).
  [[nodiscard]] bool auditing() const noexcept { return auditor_ != nullptr; }
  /// The attached telemetry sink (options.telemetry or the process-global
  /// instance under MUTDBP_METRICS), or null when telemetry is off.
  [[nodiscard]] telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  /// Snapshots of currently open bins, sorted by bin index (what a
  /// snapshot-based packing algorithm sees).
  [[nodiscard]] std::vector<BinSnapshot> open_snapshots() const;

  /// Bin index of a currently active item (throws if unknown).
  [[nodiscard]] BinIndex bin_of_active(ItemId id) const;

  /// Non-throwing variant: nullopt when the item is not active (the daemon
  /// resolves acked placements with this — a departed item is not an error
  /// there, see daemon/server.h).
  [[nodiscard]] std::optional<BinIndex> find_active_bin(ItemId id) const noexcept;

  /// Completes the run. All items must have departed.
  [[nodiscard]] PackingResult finish();

  /// Materializes the packing *as of now* without ending the run: open
  /// bins' usage periods and still-active placements are truncated at
  /// now(), exactly as if the run were cut at this instant. Copies state
  /// (cold path — this is the streaming layer's on-demand partial view,
  /// see core/streaming.h), so the run continues unaffected.
  [[nodiscard]] PackingResult partial_result() const;

 private:
  static constexpr BinIndex kNoBin = std::numeric_limits<BinIndex>::max();

  struct BinState {
    BinIndex index = 0;
    Time open_time = 0.0;
    Time close_time = 0.0;
    bool open = false;
    double level = 0.0;
    std::size_t active_count = 0;
    // Intrusive open-bin list links (kNoBin = end). The list is threaded in
    // opening order, which equals index order since bins never reopen.
    BinIndex open_prev = kNoBin;
    BinIndex open_next = kNoBin;
    LevelTimeline timeline;
  };
  // Placement records for all bins live in one pooled vector (arrival
  // order — see PooledPlacement in packing_result.h) instead of one heap
  // vector per bin; finish() hands the pool to PackingResult, which buckets
  // it into per-bin records lazily on first access.
  struct ActiveRef {
    BinIndex bin = 0;
    std::size_t placement_pos = 0;  ///< index into placements_
    double size = 0.0;
  };

  // Hot/cold splits: the fast paths are inlined into every arrive/depart
  // (they would otherwise stay out of line — the cold halves build strings
  // or grow vectors, which makes the whole function too big to inline).
  void record_level(BinState& bin, Time t) {
    if (options_.record_timelines) record_level_slow(bin, t);
  }
  void advance_time(Time t) {
    if (t < now_) throw_time_backwards(t);
    now_ = t;
  }
  void record_level_slow(BinState& bin, Time t);
  [[noreturn]] void throw_time_backwards(Time t) const;
  /// Unlinks an open bin from the open list and fires the close hooks
  /// (shared by the natural drain in depart() and force_close_bin()).
  void close_bin(BinState& bin, Time t);

  PackingAlgorithm& algorithm_;
  SimulationOptions options_;
  bool use_snapshots_;  ///< cached algorithm_.needs_snapshots()
  std::vector<BinState> bins_;
  std::vector<PooledPlacement> placements_;
  BinIndex open_head_ = kNoBin;
  BinIndex open_tail_ = kNoBin;
  std::size_t open_count_ = 0;
  FlatMap<ItemId, ActiveRef> active_;
  std::vector<BinSnapshot> snapshot_scratch_;  ///< reused across arrivals
  Time now_ = -std::numeric_limits<double>::infinity();
  std::size_t max_concurrent_ = 0;
  bool finished_ = false;
  std::unique_ptr<InvariantAuditor> auditor_;  ///< null unless auditing
  telemetry::Telemetry* telemetry_ = nullptr;  ///< null unless attached
};

/// Runs the whole item list through `algorithm` (which is reset() first).
/// Capacity precedence: options.capacity left at its default (1.0) adopts
/// items.capacity(); an explicit different capacity that disagrees with the
/// list throws std::invalid_argument instead of being silently overridden.
[[nodiscard]] PackingResult simulate(const ItemList& items, PackingAlgorithm& algorithm,
                                     SimulationOptions options = {});

}  // namespace mutdbp
