#include "core/simulation.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/auditor.h"
#include "core/error.h"
#include "telemetry/telemetry.h"

namespace mutdbp {

Simulation::Simulation(PackingAlgorithm& algorithm, SimulationOptions options)
    : algorithm_(algorithm),
      options_(options),
      use_snapshots_(algorithm.needs_snapshots()) {
  if (!(options_.capacity > 0.0)) {
    throw ValidationError("Simulation: capacity must be > 0");
  }
  if (options_.fit_epsilon < 0.0) {
    throw ValidationError("Simulation: fit_epsilon must be >= 0");
  }
  if (options_.audit || audit_enabled_by_env()) {
    auditor_ = std::make_unique<InvariantAuditor>(options_.capacity,
                                                  options_.fit_epsilon);
  }
  telemetry_ = telemetry::Telemetry::resolve(options_.telemetry);
  // Bind the telemetry ratio monitor to this engine: `this` is the owner
  // tag on every subsequent hook, so a shared Telemetry can tell this run's
  // events apart from a concurrent engine's.
  if (telemetry_) {
    telemetry_->on_run_begin(this, algorithm_.name(), options_.capacity);
  }
  algorithm_.on_simulation_begin(options_.capacity, options_.fit_epsilon);
}

Simulation::~Simulation() = default;

void Simulation::reserve(std::size_t expected_items) {
  // Every item could open its own bin, but in practice far fewer do; cap the
  // eager reservations and let growth cover pathological runs. The active
  // table tracks *concurrent* items — a fraction of the total — and small
  // tables stay cache-resident, so its cap is much lower.
  bins_.reserve(std::min<std::size_t>(expected_items, 8192));
  placements_.reserve(expected_items);
  active_.reserve(std::min<std::size_t>(expected_items, 512));
  snapshot_scratch_.reserve(64);
}

void Simulation::throw_time_backwards(Time t) const {
  throw SimulationError("Simulation: time went backwards (" + std::to_string(t) +
                        " < " + std::to_string(now_) + ")");
}

void Simulation::record_level_slow(BinState& bin, Time t) {
  auto& tl = bin.timeline;
  // Coalescing contract: timeline entries are keyed by *exactly equal* Time
  // values (bitwise double equality, no tolerance). Same-instant changes —
  // e.g. a departure processed before an arrival at the identical t — must
  // collapse into one entry holding the final level, so a timeline never
  // contains two entries at one time and min_over()/at() see the settled
  // level. The batch scheduler guarantees identical t for simultaneous
  // events; do not weaken this to an epsilon comparison.
  if (!tl.times.empty() && tl.times.back() == t) {
    tl.levels.back() = bin.level;  // coalesce same-instant changes
  } else {
    tl.times.push_back(t);
    tl.levels.push_back(bin.level);
  }
}

std::vector<BinSnapshot> Simulation::open_snapshots() const {
  std::vector<BinSnapshot> snaps;
  snaps.reserve(open_count_);
  for (BinIndex idx = open_head_; idx != kNoBin; idx = bins_[idx].open_next) {
    const BinState& bin = bins_[idx];
    snaps.push_back(BinSnapshot{idx, bin.level, options_.capacity, bin.open_time,
                                bin.active_count});
  }
  return snaps;
}

BinIndex Simulation::bin_of_active(ItemId id) const {
  const ActiveRef* ref = active_.find(id);
  if (ref == nullptr) {
    throw std::out_of_range("Simulation: item " + std::to_string(id) + " is not active");
  }
  return ref->bin;
}

std::optional<BinIndex> Simulation::find_active_bin(ItemId id) const noexcept {
  const ActiveRef* ref = active_.find(id);
  if (ref == nullptr) return std::nullopt;
  return ref->bin;
}

BinIndex Simulation::arrive(ItemId id, double size, Time t) {
  if (finished_) throw SimulationError("Simulation: arrive() after finish()");
  if (!(size > 0.0) || size > options_.capacity) {
    throw ValidationError("Simulation: item size must be in (0, capacity]");
  }
  advance_time(t);
  // Claim the active-table slot up front: one probe serves both the
  // duplicate-id check and the insert (no inserts happen in between, so the
  // slot pointer stays valid until we fill it below).
  // The bin is filled in once the placement is known; position and size are
  // already final.
  ActiveRef* active_slot = active_.try_insert(id, ActiveRef{0, placements_.size(), size});
  if (active_slot == nullptr) {
    throw ValidationError("Simulation: item id " + std::to_string(id) +
                          " is already active");
  }

  const ArrivalView view{id, size, t};
  Placement choice;
  if (use_snapshots_) {
    snapshot_scratch_.clear();
    for (BinIndex idx = open_head_; idx != kNoBin; idx = bins_[idx].open_next) {
      const BinState& bin = bins_[idx];
      snapshot_scratch_.push_back(BinSnapshot{idx, bin.level, options_.capacity,
                                              bin.open_time, bin.active_count});
    }
    choice = algorithm_.place(view, snapshot_scratch_);
  } else {
    choice = algorithm_.place(view, {});
  }

  BinIndex target = 0;
  if (choice.has_value()) {
    target = *choice;
    if (target >= bins_.size() || !bins_[target].open) {
      active_.erase(id);  // release the claimed slot before reporting
      throw SimulationError(std::string(algorithm_.name()) + " placed item " +
                            std::to_string(id) + " in bin " + std::to_string(target) +
                            " which is not open");
    }
    BinState& bin = bins_[target];
    if (bin.level + size > options_.capacity + options_.fit_epsilon) {
      active_.erase(id);
      throw SimulationError(std::string(algorithm_.name()) + " overfilled bin " +
                            std::to_string(target) + " with item " + std::to_string(id));
    }
    bin.level += size;
    ++bin.active_count;
    active_slot->bin = target;
    placements_.push_back(
        {target, {id, size, {t, std::numeric_limits<double>::infinity()}}});
    record_level(bin, t);
    algorithm_.on_item_placed(target, view, bin.level);
    if (telemetry_) {
      telemetry_->on_item_placed(this, id, size, target, bin.level,
                                 options_.capacity, t,
                                 /*opened_new_bin=*/false, open_count_);
    }
  } else {
    target = bins_.size();
    BinState bin;
    bin.index = target;
    bin.open_time = t;
    bin.open = true;
    bin.level = size;
    bin.active_count = 1;
    bin.open_prev = open_tail_;
    bins_.push_back(std::move(bin));
    // Append to the open list: indices grow monotonically, so the list
    // stays in ascending index order.
    if (open_tail_ != kNoBin) {
      bins_[open_tail_].open_next = target;
    } else {
      open_head_ = target;
    }
    open_tail_ = target;
    ++open_count_;
    active_slot->bin = target;
    placements_.push_back(
        {target, {id, size, {t, std::numeric_limits<double>::infinity()}}});
    record_level(bins_.back(), t);
    algorithm_.on_bin_opened(target, view);
    max_concurrent_ = std::max(max_concurrent_, open_count_);
    if (telemetry_) {
      telemetry_->on_item_placed(this, id, size, target, size, options_.capacity,
                                 t, /*opened_new_bin=*/true, open_count_);
    }
  }
  if (auditor_) auditor_->on_arrive(id, size, target, t);
  return target;
}

void Simulation::close_bin(BinState& bin, Time t) {
  bin.open = false;
  bin.close_time = t;
  // Unlink from the open list: O(1), replacing the old sorted-vector
  // lower_bound + erase which shifted O(m) entries per bin close.
  if (bin.open_prev != kNoBin) {
    bins_[bin.open_prev].open_next = bin.open_next;
  } else {
    open_head_ = bin.open_next;
  }
  if (bin.open_next != kNoBin) {
    bins_[bin.open_next].open_prev = bin.open_prev;
  } else {
    open_tail_ = bin.open_prev;
  }
  bin.open_prev = bin.open_next = kNoBin;
  --open_count_;
  algorithm_.on_bin_closed(bin.index, t);
  if (auditor_) auditor_->on_bin_closed(bin.index, t);
  if (telemetry_) {
    telemetry_->on_bin_closed(this, bin.index, bin.open_time, t, open_count_);
  }
}

void Simulation::depart(ItemId id, Time t) {
  if (finished_) throw SimulationError("Simulation: depart() after finish()");
  advance_time(t);
  // Single probe: take() validates and removes in one pass.
  ActiveRef ref;
  if (!active_.take(id, ref)) {
    throw ValidationError("Simulation: departing item " + std::to_string(id) +
                          " is not active");
  }
  BinState& bin = bins_[ref.bin];
  placements_[ref.placement_pos].record.active.right = t;
  bin.level -= ref.size;
  --bin.active_count;
  if (bin.active_count == 0) bin.level = 0.0;  // cancel floating-point residue
  record_level(bin, t);
  algorithm_.on_item_departed(ref.bin, ref.size, bin.level, t);
  if (auditor_) auditor_->on_depart(id, ref.bin, t);
  if (telemetry_) {
    telemetry_->on_item_departed(this, id, ref.bin, ref.size, bin.level, t);
  }

  if (bin.active_count == 0) close_bin(bin, t);
}

std::vector<EvictedItem> Simulation::force_close_bin(BinIndex bin_index, Time t) {
  if (finished_) throw SimulationError("Simulation: force_close_bin() after finish()");
  if (bin_index >= bins_.size() || !bins_[bin_index].open) {
    throw SimulationError("Simulation: force_close_bin(" + std::to_string(bin_index) +
                          "): bin is not open");
  }
  advance_time(t);
  BinState& bin = bins_[bin_index];

  // Collect the bin's residents from the active table (cold path — faults
  // are rare, so the table carries no per-bin index), then evict in arrival
  // order: the eviction sequence is deterministic and platform-independent
  // regardless of the hash table's layout.
  std::vector<std::pair<std::size_t, ItemId>> victims;  // (placement_pos, id)
  victims.reserve(bin.active_count);
  active_.for_each([&](const ItemId& id, const ActiveRef& ref) {
    if (ref.bin == bin_index) victims.emplace_back(ref.placement_pos, id);
  });
  if (victims.size() != bin.active_count) {
    throw SimulationError("Simulation: force_close_bin(" + std::to_string(bin_index) +
                          "): active table out of sync with bin count");
  }
  std::sort(victims.begin(), victims.end());

  std::vector<EvictedItem> evicted;
  evicted.reserve(victims.size());
  for (const auto& [pos, id] : victims) {
    ActiveRef ref;
    active_.take(id, ref);
    placements_[pos].record.active.right = t;
    bin.level -= ref.size;
    --bin.active_count;
    if (bin.active_count == 0) bin.level = 0.0;  // cancel floating-point residue
    evicted.push_back({id, ref.size, placements_[pos].record.active.left});
    // Same hook sequence as a natural drain, so incremental kernels
    // (CapacityTree, NextFit) track the crash like any other departure.
    algorithm_.on_item_departed(bin_index, ref.size, bin.level, t);
    if (auditor_) auditor_->on_evict(id, bin_index, t);
    if (telemetry_) telemetry_->on_item_evicted(this, id, ref.size, bin_index, t);
  }
  record_level(bin, t);
  close_bin(bin, t);
  return evicted;
}

PackingResult Simulation::partial_result() const {
  if (finished_) throw SimulationError("Simulation: partial_result() after finish()");
  std::vector<BinRecord> records;
  records.reserve(bins_.size());
  for (const auto& bin : bins_) {
    BinRecord record;
    record.index = bin.index;
    record.usage = {bin.open_time, bin.open ? now_ : bin.close_time};
    record.timeline = bin.timeline;
    records.push_back(std::move(record));
  }
  std::vector<PooledPlacement> pooled = placements_;
  for (auto& placement : pooled) {
    // Still-active items (departure unknown) are cut at the frontier, giving
    // the half-open activity interval they have accumulated so far.
    if (placement.record.active.right == std::numeric_limits<double>::infinity()) {
      placement.record.active.right = now_;
    }
  }
  return PackingResult(std::move(records), std::move(pooled));
}

PackingResult Simulation::finish() {
  if (finished_) throw SimulationError("Simulation: finish() called twice");
  if (!active_.empty()) {
    throw SimulationError("Simulation: finish() with " + std::to_string(active_.size()) +
                          " items still active");
  }
  finished_ = true;
  if (telemetry_) telemetry_->on_run_finished(this, now_);

  std::vector<BinRecord> records;
  records.reserve(bins_.size());
  for (auto& bin : bins_) {
    BinRecord record;
    record.index = bin.index;
    record.usage = {bin.open_time, bin.close_time};
    record.timeline = std::move(bin.timeline);
    records.push_back(std::move(record));
  }
  // Skeleton records + the placement pool: per-bin item vectors and the
  // item→bin assignment are both derived lazily inside PackingResult.
  PackingResult result(std::move(records), std::move(placements_));
  if (auditor_) auditor_->on_finish(result);
  return result;
}

PackingResult simulate(const ItemList& items, PackingAlgorithm& algorithm,
                       SimulationOptions options) {
  algorithm.reset();
  // Capacity precedence (documented on SimulationOptions): the default value
  // means "inherit from the list"; an explicit conflicting value is an
  // error, never a silent override.
  if (options.capacity == SimulationOptions{}.capacity) {
    options.capacity = items.capacity();
  } else if (options.capacity != items.capacity()) {
    throw ValidationError(
        "simulate: options.capacity (" + std::to_string(options.capacity) +
        ") contradicts items.capacity() (" + std::to_string(items.capacity()) +
        "); leave options.capacity at its default to adopt the list capacity");
  }
  Simulation sim(algorithm, options);
  sim.reserve(items.size());

  telemetry::Telemetry* tel = sim.telemetry();
  // The list knows its duration spread; hand µ to the monitor so the
  // (µ+4)·LB envelope gauge is live for this run.
  if (tel) tel->set_reference_mu(&sim, items.mu());
  telemetry::Profiler* prof = tel ? &tel->profiler() : nullptr;
  {
    telemetry::ScopedTimer timer(
        prof, tel ? tel->handles().simulate_events : telemetry::SectionHandle{});
    // Event schedule: precomputed and cached by the ItemList (time-ordered,
    // departures before arrivals at equal times, id order within a kind).
    for (const ScheduledEvent& event : items.schedule()) {
      if (event.is_arrival) {
        sim.arrive(event.id, event.size, event.t);
      } else {
        sim.depart(event.id, event.t);
      }
    }
  }
  telemetry::ScopedTimer timer(
      prof, tel ? tel->handles().simulate_finish : telemetry::SectionHandle{});
  return sim.finish();
}

}  // namespace mutdbp
