#include "core/simulation.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace mutdbp {

Simulation::Simulation(PackingAlgorithm& algorithm, SimulationOptions options)
    : algorithm_(algorithm), options_(options) {
  if (!(options_.capacity > 0.0)) {
    throw std::invalid_argument("Simulation: capacity must be > 0");
  }
  if (options_.fit_epsilon < 0.0) {
    throw std::invalid_argument("Simulation: fit_epsilon must be >= 0");
  }
}

void Simulation::advance_time(Time t) {
  if (t < now_) {
    throw std::logic_error("Simulation: time went backwards (" + std::to_string(t) +
                           " < " + std::to_string(now_) + ")");
  }
  now_ = t;
}

void Simulation::record_level(BinState& bin, Time t) {
  if (!options_.record_timelines) return;
  auto& tl = bin.timeline;
  if (!tl.times.empty() && tl.times.back() == t) {
    tl.levels.back() = bin.level;  // coalesce same-instant changes
  } else {
    tl.times.push_back(t);
    tl.levels.push_back(bin.level);
  }
}

std::vector<BinSnapshot> Simulation::open_snapshots() const {
  std::vector<BinSnapshot> snaps;
  snaps.reserve(open_bins_.size());
  for (const BinIndex idx : open_bins_) {
    const BinState& bin = bins_[idx];
    snaps.push_back(BinSnapshot{idx, bin.level, options_.capacity, bin.open_time,
                                bin.active_count});
  }
  return snaps;
}

BinIndex Simulation::bin_of_active(ItemId id) const {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    throw std::out_of_range("Simulation: item " + std::to_string(id) + " is not active");
  }
  return it->second.bin;
}

BinIndex Simulation::arrive(ItemId id, double size, Time t) {
  if (finished_) throw std::logic_error("Simulation: arrive() after finish()");
  if (!(size > 0.0) || size > options_.capacity) {
    throw std::invalid_argument("Simulation: item size must be in (0, capacity]");
  }
  if (active_.contains(id)) {
    throw std::invalid_argument("Simulation: item id " + std::to_string(id) +
                                " is already active");
  }
  advance_time(t);

  const ArrivalView view{id, size, t};
  const auto snapshots = open_snapshots();
  const Placement choice = algorithm_.place(view, snapshots);

  BinIndex target = 0;
  if (choice.has_value()) {
    target = *choice;
    const bool is_open = std::binary_search(open_bins_.begin(), open_bins_.end(), target);
    if (!is_open) {
      throw std::logic_error(std::string(algorithm_.name()) + " placed item " +
                             std::to_string(id) + " in bin " + std::to_string(target) +
                             " which is not open");
    }
    BinState& bin = bins_[target];
    if (bin.level + size > options_.capacity + options_.fit_epsilon) {
      throw std::logic_error(std::string(algorithm_.name()) + " overfilled bin " +
                             std::to_string(target) + " with item " + std::to_string(id));
    }
    bin.level += size;
    ++bin.active_count;
    bin.placements.push_back(
        {id, size, {t, std::numeric_limits<double>::infinity()}});
    active_[id] = ActiveRef{target, bin.placements.size() - 1, size};
    record_level(bin, t);
  } else {
    target = bins_.size();
    BinState bin;
    bin.index = target;
    bin.open_time = t;
    bin.open = true;
    bin.level = size;
    bin.active_count = 1;
    bin.placements.push_back(
        {id, size, {t, std::numeric_limits<double>::infinity()}});
    bins_.push_back(std::move(bin));
    open_bins_.push_back(target);  // indices grow monotonically: stays sorted
    active_[id] = ActiveRef{target, 0, size};
    record_level(bins_.back(), t);
    algorithm_.on_bin_opened(target, view);
    max_concurrent_ = std::max(max_concurrent_, open_bins_.size());
  }
  return target;
}

void Simulation::depart(ItemId id, Time t) {
  if (finished_) throw std::logic_error("Simulation: depart() after finish()");
  const auto it = active_.find(id);
  if (it == active_.end()) {
    throw std::invalid_argument("Simulation: departing item " + std::to_string(id) +
                                " is not active");
  }
  advance_time(t);

  const ActiveRef ref = it->second;
  active_.erase(it);
  BinState& bin = bins_[ref.bin];
  bin.placements[ref.placement_pos].active.right = t;
  bin.level -= ref.size;
  --bin.active_count;
  if (bin.active_count == 0) bin.level = 0.0;  // cancel floating-point residue
  record_level(bin, t);

  if (bin.active_count == 0) {
    bin.open = false;
    bin.close_time = t;
    const auto pos = std::lower_bound(open_bins_.begin(), open_bins_.end(), ref.bin);
    open_bins_.erase(pos);
    algorithm_.on_bin_closed(ref.bin, t);
  }
}

PackingResult Simulation::finish() {
  if (finished_) throw std::logic_error("Simulation: finish() called twice");
  if (!active_.empty()) {
    throw std::logic_error("Simulation: finish() with " + std::to_string(active_.size()) +
                           " items still active");
  }
  finished_ = true;

  std::vector<BinRecord> records;
  records.reserve(bins_.size());
  std::unordered_map<ItemId, BinIndex> assignment;
  for (auto& bin : bins_) {
    BinRecord record;
    record.index = bin.index;
    record.usage = {bin.open_time, bin.close_time};
    record.items = std::move(bin.placements);
    record.timeline = std::move(bin.timeline);
    for (const auto& placed : record.items) assignment[placed.item] = bin.index;
    records.push_back(std::move(record));
  }
  return PackingResult(std::move(records), std::move(assignment));
}

PackingResult simulate(const ItemList& items, PackingAlgorithm& algorithm,
                       SimulationOptions options) {
  algorithm.reset();
  if (options.capacity != items.capacity()) options.capacity = items.capacity();
  Simulation sim(algorithm, options);

  // Event schedule: primary key time; at equal times departures precede
  // arrivals (half-open activity intervals); ties within a kind keep the
  // id order, which defines the online arrival sequence.
  struct Event {
    Time t;
    bool is_arrival;
    const Item* item;
  };
  std::vector<Event> events;
  events.reserve(items.size() * 2);
  for (const auto& item : items) {
    events.push_back({item.arrival(), true, &item});
    events.push_back({item.departure(), false, &item});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.is_arrival != b.is_arrival) return !a.is_arrival;  // departures first
    return a.item->id < b.item->id;
  });

  for (const auto& event : events) {
    if (event.is_arrival) {
      sim.arrive(event.item->id, event.item->size, event.t);
    } else {
      sim.depart(event.item->id, event.t);
    }
  }
  return sim.finish();
}

}  // namespace mutdbp
