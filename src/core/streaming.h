// StreamingSimulation: the long-running, service-style face of the engine.
//
// The batch simulate() entry point needs the whole trace up front; a cloud
// allocator never gets that luxury — jobs arrive and depart forever. This
// layer accepts arrival/departure events incrementally in *batches*: events
// pushed between two flush() calls may come in any order and are merged
// deterministically into the engine's canonical event order (primary key
// time; departures before arrivals at equal times; ties within a kind in id
// order — exactly ItemList::schedule()). Feeding a trace through any batch
// granularity therefore produces a PackingResult bit-identical to one-shot
// simulate(), which the differential test layer enforces for every
// registered algorithm (tests/differential_test.cpp).
//
// Checkpoint/restore: snapshot() serializes the run to a versioned binary
// frame (core/checkpoint.h). Because every component of the engine is
// deterministic — seeded RNG streams, reset()-to-fresh algorithm contract,
// deterministic eviction order — the checkpoint is the applied *event log*,
// and restore() replays it through a fresh engine. That reconstructs the
// complete state bit-for-bit: open bins and levels, CapacityTree kernel
// state, placement pools, per-algorithm state (Next Fit's available-bin
// pointer, HybridFirstFit's class trees, RandomFit's RNG stream), the
// auditor's shadow model, and (when a sink is attached) telemetry counters.
// A restored run continues producing exactly the placements and usage
// totals of an uninterrupted one. Format and recovery semantics:
// docs/streaming.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/packing_result.h"
#include "core/simulation.h"

namespace mutdbp {

/// Deterministic crash injection for the recovery tests and the CI kill-9
/// smoke job: when MUTDBP_CRASH_AFTER_EVENTS=N (N >= 1) is exported, the
/// process abort()s — a dirty death, no flush, no atexit, indistinguishable
/// from kill -9 — the instant the N-th streaming event of the process is
/// applied. The counter is process-global across every StreamingSimulation
/// (replayed restore events count too), so a given trace + N names one exact
/// kill point. Unset or 0 disables; the cost is one relaxed atomic load per
/// event.
void crash_after_events_kill_point() noexcept;

/// One buffered streaming event. Departures carry size 0 (the engine knows
/// the size from the arrival); force-closes live in the applied log only.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    kArrival = 0,
    kDeparture = 1,
    kForceClose = 2,  ///< log-only: id is the bin index (see force_close_bin)
  };
  Kind kind = Kind::kArrival;
  ItemId id = 0;      ///< item id; bin index for kForceClose
  double size = 0.0;  ///< kArrival only
  Time t = 0.0;

  [[nodiscard]] bool operator==(const StreamEvent&) const noexcept = default;
};

struct StreamingOptions {
  double capacity = 1.0;
  double fit_epsilon = kDefaultFitEpsilon;
  bool record_timelines = true;
  /// Attach the InvariantAuditor (core/auditor.h). Serialized into
  /// checkpoints: a restored run re-audits its whole history during replay.
  bool audit = false;
  /// Seed the algorithm instance was built with. Pure checkpoint metadata:
  /// restore validates nothing against it, but registry-driven consumers
  /// (trace_replay --restore) use it to rebuild the identical algorithm via
  /// make_algorithm(name, seed).
  std::uint64_t algorithm_seed = 1;
  /// Telemetry sink (not serialized — pointers don't survive processes;
  /// pass a sink to restore() and replay regenerates every counter).
  telemetry::Telemetry* telemetry = nullptr;
};

/// Payload of a streaming checkpoint in parsed form. Exposed so callers
/// that construct algorithms by registry name (examples/trace_replay) can
/// read the header, build the algorithm, and then restore.
struct StreamingCheckpoint {
  std::string algorithm;      ///< PackingAlgorithm::name() of the run
  StreamingOptions options{};  ///< telemetry pointer is always null here
  std::vector<StreamEvent> events;  ///< applied log, in application order

  /// Parses and validates one checkpoint frame (header, version, checksum,
  /// event semantics). Throws ValidationError on any corruption.
  [[nodiscard]] static StreamingCheckpoint read(std::istream& in);
  void write(std::ostream& out) const;
};

class StreamingSimulation {
 public:
  /// Binds to `algorithm` exactly like simulate(): the algorithm is
  /// reset() to its fresh state first, so a streaming run and a batch run
  /// over the same events see identical algorithm decisions.
  explicit StreamingSimulation(PackingAlgorithm& algorithm,
                               StreamingOptions options = {});

  StreamingSimulation(StreamingSimulation&&) = default;

  /// Buffers one event; nothing is applied until flush(). Events within a
  /// batch may arrive in any order.
  void push(const StreamEvent& event) {
    if (event.kind == StreamEvent::Kind::kForceClose) [[unlikely]] {
      reject_buffered_force_close();
    }
    pending_.push_back(event);
  }
  void push_arrival(ItemId id, double size, Time t) {
    push({StreamEvent::Kind::kArrival, id, size, t});
  }
  void push_departure(ItemId id, Time t) {
    push({StreamEvent::Kind::kDeparture, id, 0.0, t});
  }

  /// Merges the buffered batch into canonical event order and applies it.
  /// Every buffered event must be at or after the last applied time
  /// (ValidationError otherwise, checked before anything is applied).
  /// Returns the number of events applied. Single-event batches — the
  /// event-at-a-time streaming style — skip the merge entirely.
  std::size_t flush() {
    if (pending_.size() == 1) {
      // A one-event batch is already in canonical order; only the frontier
      // check remains.
      const StreamEvent& event = pending_.front();
      if (event.t < sim_->now()) throw_frontier_violation(event.t);
      apply(event);
      pending_.clear();
      return 1;
    }
    return flush_batch();
  }

  /// Pre-sizes the engine and the event log for a run expected to touch
  /// about `expected_items` items (optional; amortized growth otherwise).
  void reserve(std::size_t expected_items);

  /// Crash primitive (flushes buffered events first, then applies
  /// immediately — its evictions must be observable right away). Forwards
  /// to Simulation::force_close_bin and records the event in the log, so
  /// checkpoints replay the crash and its deterministic evictions.
  std::vector<EvictedItem> force_close_bin(BinIndex bin, Time t);

  /// Materializes the packing *so far* (flushes first): open bins' usage
  /// periods and still-active placements are truncated at now(), as if the
  /// run were cut at this instant. The run continues unaffected.
  [[nodiscard]] PackingResult partial_result();

  /// Completes the run (flushes first; every item must have departed).
  [[nodiscard]] PackingResult finish();

  /// Serializes the run to one checkpoint frame (flushes first).
  void snapshot(std::ostream& out);

  /// Rebuilds a run from a parsed checkpoint. `algorithm` must be a fresh
  /// (or resettable) instance equivalent to the one that produced the
  /// checkpoint — same name (validated), same constructor parameters such
  /// as seed and class boundaries (the caller's contract, exactly as for
  /// simulate()). `telemetry` optionally re-attaches a sink; replay then
  /// regenerates every counter of the uninterrupted run.
  [[nodiscard]] static StreamingSimulation restore(
      const StreamingCheckpoint& checkpoint, PackingAlgorithm& algorithm,
      telemetry::Telemetry* telemetry = nullptr);
  /// Convenience: read + restore in one call.
  [[nodiscard]] static StreamingSimulation restore(
      std::istream& in, PackingAlgorithm& algorithm,
      telemetry::Telemetry* telemetry = nullptr);

  [[nodiscard]] const Simulation& engine() const noexcept { return *sim_; }
  [[nodiscard]] const StreamingOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::string_view algorithm_name() const noexcept {
    return algorithm_.name();
  }
  /// Events applied so far (the checkpoint log length); buffered events
  /// don't count until flush().
  [[nodiscard]] std::size_t events_applied() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t buffered_events() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] Time now() const noexcept { return sim_->now(); }
  [[nodiscard]] std::size_t open_bin_count() const noexcept {
    return sim_->open_bin_count();
  }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return sim_->bins_opened(); }
  [[nodiscard]] std::size_t active_items() const noexcept {
    return sim_->active_items();
  }

 private:
  void apply(const StreamEvent& event) {
    switch (event.kind) {
      case StreamEvent::Kind::kArrival:
        sim_->arrive(event.id, event.size, event.t);
        break;
      case StreamEvent::Kind::kDeparture:
        sim_->depart(event.id, event.t);
        break;
      case StreamEvent::Kind::kForceClose:
        (void)sim_->force_close_bin(static_cast<BinIndex>(event.id), event.t);
        break;
    }
    log_.push_back(event);
    crash_after_events_kill_point();
  }
  std::size_t flush_batch();
  [[noreturn]] void throw_frontier_violation(Time t) const;
  [[noreturn]] static void reject_buffered_force_close();

  PackingAlgorithm& algorithm_;
  StreamingOptions options_;
  std::unique_ptr<Simulation> sim_;
  std::vector<StreamEvent> pending_;  ///< current unflushed batch
  std::vector<StreamEvent> log_;      ///< applied events, application order
};

}  // namespace mutdbp
