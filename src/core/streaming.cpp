#include "core/streaming.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/checkpoint.h"
#include "core/error.h"
#include "telemetry/flight_recorder.h"

namespace mutdbp {

namespace {

/// Events until the injected crash; -1 when MUTDBP_CRASH_AFTER_EVENTS is
/// unset, empty, non-numeric, or 0.
std::int64_t crash_after_events_budget() noexcept {
  const char* value = std::getenv("MUTDBP_CRASH_AFTER_EVENTS");
  if (value == nullptr || *value == '\0') return -1;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return -1;
  return static_cast<std::int64_t>(parsed);
}

SimulationOptions to_simulation_options(const StreamingOptions& options) {
  SimulationOptions sim;
  sim.capacity = options.capacity;
  sim.fit_epsilon = options.fit_epsilon;
  sim.record_timelines = options.record_timelines;
  sim.audit = options.audit;
  sim.telemetry = options.telemetry;
  return sim;
}

}  // namespace

void crash_after_events_kill_point() noexcept {
  static std::atomic<std::int64_t> remaining{crash_after_events_budget()};
  if (remaining.load(std::memory_order_relaxed) < 0) return;
  if (remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Dirty death on purpose: abort() skips every destructor and atexit
    // handler, so whatever checkpoint state is on disk is exactly what a
    // kill -9 would have left behind. The flight recorder is the one thing
    // allowed to survive: its postmortem dump is the whole reason the kill
    // point exists, and dump_armed() is a no-op unless a daemon armed it.
    telemetry::FlightRecorder::instance().dump_armed();
    std::fprintf(stderr,
                 "mutdbp: MUTDBP_CRASH_AFTER_EVENTS kill point reached — "
                 "aborting without cleanup\n");
    std::abort();
  }
}

StreamingSimulation::StreamingSimulation(PackingAlgorithm& algorithm,
                                         StreamingOptions options)
    : algorithm_(algorithm), options_(options) {
  // Same contract as simulate(): start from the algorithm's fresh state, so
  // streaming and batch runs over identical events make identical decisions.
  algorithm_.reset();
  sim_ = std::make_unique<Simulation>(algorithm_, to_simulation_options(options_));
}

void StreamingSimulation::reject_buffered_force_close() {
  throw ValidationError(
      "StreamingSimulation: force-close events cannot be buffered; call "
      "force_close_bin() (its evictions must be observable immediately)");
}

void StreamingSimulation::reserve(std::size_t expected_items) {
  sim_->reserve(expected_items);
  // Arrival + departure per item: the applied log sees about twice as many
  // events as there are items.
  log_.reserve(log_.size() + 2 * expected_items);
}

void StreamingSimulation::throw_frontier_violation(Time t) const {
  throw ValidationError(
      "StreamingSimulation: batch event at t=" + std::to_string(t) +
      " lies before the applied frontier t=" + std::to_string(sim_->now()) +
      " (batches may be internally unordered, but never reach back "
      "across a flush)");
}

std::size_t StreamingSimulation::flush_batch() {
  if (pending_.empty()) return 0;
  // Validate the batch boundary before touching the engine: a rejected
  // batch leaves the applied state exactly as it was.
  const Time frontier = sim_->now();
  for (const StreamEvent& event : pending_) {
    if (event.t < frontier) throw_frontier_violation(event.t);
  }
  // Canonical merge: time, then departures before arrivals (half-open
  // activity intervals), then id — the ItemList::schedule() order, which is
  // what makes streaming bit-identical to batch simulate(). Callers that
  // feed events already ordered (replaying a schedule) skip the sort.
  const auto canonical_order = [](const StreamEvent& a, const StreamEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind == StreamEvent::Kind::kDeparture;
    return a.id < b.id;
  };
  if (!std::is_sorted(pending_.begin(), pending_.end(), canonical_order)) {
    std::sort(pending_.begin(), pending_.end(), canonical_order);
  }
  const std::size_t applied = pending_.size();
  for (const StreamEvent& event : pending_) apply(event);
  pending_.clear();
  return applied;
}

std::vector<EvictedItem> StreamingSimulation::force_close_bin(BinIndex bin, Time t) {
  flush();
  std::vector<EvictedItem> evicted = sim_->force_close_bin(bin, t);
  log_.push_back({StreamEvent::Kind::kForceClose, bin, 0.0, t});
  return evicted;
}

PackingResult StreamingSimulation::partial_result() {
  flush();
  return sim_->partial_result();
}

PackingResult StreamingSimulation::finish() {
  flush();
  return sim_->finish();
}

void StreamingSimulation::snapshot(std::ostream& out) {
  flush();
  StreamingCheckpoint checkpoint;
  checkpoint.algorithm = std::string(algorithm_.name());
  checkpoint.options = options_;
  checkpoint.options.telemetry = nullptr;
  checkpoint.events = log_;
  checkpoint.write(out);
}

void StreamingCheckpoint::write(std::ostream& out) const {
  BinaryWriter payload;
  payload.string(algorithm);
  payload.f64(options.capacity);
  payload.f64(options.fit_epsilon);
  payload.boolean(options.record_timelines);
  payload.boolean(options.audit);
  payload.u64(options.algorithm_seed);
  payload.u64(events.size());
  for (const StreamEvent& event : events) {
    payload.u8(static_cast<std::uint8_t>(event.kind));
    payload.u64(event.id);
    payload.f64(event.size);
    payload.f64(event.t);
  }
  write_checkpoint_frame(out, CheckpointKind::kStreamingSimulation, payload);
}

StreamingCheckpoint StreamingCheckpoint::read(std::istream& in) {
  const std::vector<std::uint8_t> payload =
      read_checkpoint_frame(in, CheckpointKind::kStreamingSimulation);
  BinaryReader reader(payload);
  StreamingCheckpoint checkpoint;
  checkpoint.algorithm = reader.string();
  checkpoint.options.capacity = reader.f64();
  checkpoint.options.fit_epsilon = reader.f64();
  checkpoint.options.record_timelines = reader.boolean();
  checkpoint.options.audit = reader.boolean();
  checkpoint.options.algorithm_seed = reader.u64();
  const std::size_t n = reader.count(/*min_element_bytes=*/1 + 8 + 8 + 8);
  checkpoint.events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StreamEvent event;
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(StreamEvent::Kind::kForceClose)) {
      throw ValidationError("checkpoint: invalid stream event kind " +
                            std::to_string(kind));
    }
    event.kind = static_cast<StreamEvent::Kind>(kind);
    event.id = reader.u64();
    event.size = reader.f64();
    event.t = reader.f64();
    checkpoint.events.push_back(event);
  }
  reader.expect_end();
  return checkpoint;
}

StreamingSimulation StreamingSimulation::restore(
    const StreamingCheckpoint& checkpoint, PackingAlgorithm& algorithm,
    telemetry::Telemetry* telemetry) {
  if (algorithm.name() != checkpoint.algorithm) {
    throw ValidationError("StreamingSimulation::restore: checkpoint was taken "
                          "with algorithm '" +
                          checkpoint.algorithm + "' but '" +
                          std::string(algorithm.name()) + "' was supplied");
  }
  StreamingOptions options = checkpoint.options;
  options.telemetry = telemetry;
  StreamingSimulation stream(algorithm, options);
  // Deterministic replay in the recorded application order: the engine, the
  // algorithm's kernels and RNG streams, the auditor's shadow model, and the
  // telemetry counters all rebuild to exactly the pre-snapshot state.
  for (const StreamEvent& event : checkpoint.events) stream.apply(event);
  return stream;
}

StreamingSimulation StreamingSimulation::restore(std::istream& in,
                                                 PackingAlgorithm& algorithm,
                                                 telemetry::Telemetry* telemetry) {
  return restore(StreamingCheckpoint::read(in), algorithm, telemetry);
}

}  // namespace mutdbp
