// Items (jobs): size = resource demand, interval = [arrival, departure).
#pragma once

#include <cstdint>
#include <string>

#include "core/interval.h"

namespace mutdbp {

using ItemId = std::uint64_t;

struct Item {
  ItemId id = 0;
  double size = 0.0;        ///< resource demand, in (0, capacity]
  Interval active;          ///< [arrival, departure)

  [[nodiscard]] constexpr Time arrival() const noexcept { return active.left; }
  [[nodiscard]] constexpr Time departure() const noexcept { return active.right; }
  [[nodiscard]] constexpr Time duration() const noexcept { return active.length(); }
  /// Time-space demand s(r)*|I(r)| (Proposition 1's summand).
  [[nodiscard]] constexpr double time_space_demand() const noexcept {
    return size * active.length();
  }
  [[nodiscard]] constexpr bool active_at(Time t) const noexcept {
    return active.contains(t);
  }
  [[nodiscard]] constexpr bool operator==(const Item&) const noexcept = default;
};

[[nodiscard]] std::string to_string(const Item& item);

/// Convenience constructor used throughout tests and generators.
[[nodiscard]] constexpr Item make_item(ItemId id, double size, Time arrival,
                                       Time departure) noexcept {
  return Item{id, size, {arrival, departure}};
}

}  // namespace mutdbp
