#include "core/capacity_tree.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/error.h"

namespace mutdbp {

namespace {
// Small floor so tree depth hugs the concurrently-open bin count (often a
// handful) — every update walks leaf-to-root, so each level saved is paid
// back on every single event.
constexpr std::size_t kMinLeafCap = 16;

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = kMinLeafCap;
  while (cap < n) cap *= 2;
  return cap;
}
}  // namespace

void CapacityTree::begin(double capacity, double fit_epsilon, bool track_level_order) {
  if (!(capacity > 0.0)) {
    throw ValidationError("CapacityTree: capacity must be > 0");
  }
  if (fit_epsilon < 0.0) {
    throw ValidationError("CapacityTree: fit_epsilon must be >= 0");
  }
  capacity_ = capacity;
  fit_epsilon_ = fit_epsilon;
  track_level_order_ = track_level_order;
  open_count_ = 0;
  leaf_cap_ = 0;
  slot_count_ = 0;
  min_.clear();
  slot_bin_.clear();
  bin_slot_.clear();
  levels_.clear();
  by_level_.clear();
}

void CapacityTree::rebuild(std::size_t new_leaf_cap) {
  min_.assign(2 * new_leaf_cap, kClosed);
  leaf_cap_ = new_leaf_cap;
  // Leaves first, then pull the minima up level by level.
  for (std::size_t s = 0; s < slot_count_; ++s) {
    min_[leaf_cap_ + s] = levels_[slot_bin_[s]];
  }
  for (std::size_t i = leaf_cap_ - 1; i >= 1; --i) {
    const std::size_t l = 2 * i, r = 2 * i + 1;
    min_[i] = min_[l] <= min_[r] ? min_[l] : min_[r];
  }
}

void CapacityTree::compact() {
  std::size_t live = 0;
  for (std::size_t s = 0; s < slot_count_; ++s) {
    const BinIndex bin = slot_bin_[s];
    if (levels_[bin] == kClosed) continue;
    slot_bin_[live] = bin;  // relative order preserved: index order intact
    bin_slot_[bin] = live;
    ++live;
  }
  slot_bin_.resize(live);
  slot_count_ = live;
  rebuild(pow2_at_least(2 * live));
}

void CapacityTree::throw_not_open(const char* op, BinIndex bin) const {
  throw SimulationError("CapacityTree: " + std::string(op) +
                         " on unknown or closed bin " + std::to_string(bin));
}

BinIndex CapacityTree::append(double level) {
  const BinIndex bin = levels_.size();
  levels_.push_back(level);
  if (slot_count_ == leaf_cap_) {
    // Out of slots. If mostly dead, reclaim them (amortized O(1): at least
    // leaf_cap_/2 closes happened since the table was last this sparse);
    // otherwise genuinely grow.
    if (open_count_ + 1 <= leaf_cap_ / 2) {
      compact();
    } else {
      rebuild(leaf_cap_ == 0 ? kMinLeafCap : leaf_cap_ * 2);
    }
  }
  const std::size_t slot = slot_count_++;
  slot_bin_.push_back(bin);
  bin_slot_.push_back(slot);
  update_slot(slot, level);
  ++open_count_;
  if (track_level_order_) level_index_insert({level, bin});
  return bin;
}

void CapacityTree::close(BinIndex bin) {
  if (bin >= levels_.size() || levels_[bin] == kClosed) {
    throw_not_open("close", bin);
  }
  if (track_level_order_) level_index_erase({levels_[bin], bin});
  levels_[bin] = kClosed;
  update_slot(bin_slot_[bin], kClosed);
  --open_count_;
  // Keep the tree dense: once three quarters of the slots are dead, fold
  // them away so query/update depth tracks the open-bin count.
  if (leaf_cap_ > kMinLeafCap && open_count_ * 4 <= slot_count_) compact();
}

std::optional<BinIndex> CapacityTree::best_fit(double size) const {
  if (!track_level_order_) {
    throw SimulationError("CapacityTree: best_fit requires track_level_order");
  }
  // Entries satisfying the fit predicate form a prefix of the (level ↑,
  // index ↓) order; lower_bound with the heterogeneous comparator returns
  // the first non-fitting entry, so the one before it is the fullest
  // fitting bin, lowest index among equal levels.
  const auto it = std::lower_bound(by_level_.begin(), by_level_.end(),
                                   FitQuery{size, capacity_, fit_epsilon_}, LevelOrder{});
  if (it == by_level_.begin()) return std::nullopt;
  return std::prev(it)->second;
}

}  // namespace mutdbp
