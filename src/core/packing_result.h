// The record of one complete packing: per-bin usage periods, placements,
// level timelines, and the objectives (MinUsageTime and classic DBP).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"
#include "core/interval.h"
#include "core/item.h"

namespace mutdbp {

/// One placement event inside a bin.
struct PlacementRecord {
  ItemId item = 0;
  double size = 0.0;
  Interval active;  ///< [arrival, departure)
};

/// Piecewise-constant bin level: level is `level[i]` on [time[i], time[i+1])
/// and the bin is closed outside its usage period.
struct LevelTimeline {
  std::vector<Time> times;
  std::vector<double> levels;

  /// Level at time t; 0 outside the recorded range.
  [[nodiscard]] double at(Time t) const noexcept;
  /// Minimum level over [iv.left, iv.right); +inf for an empty interval.
  [[nodiscard]] double min_over(const Interval& iv) const noexcept;
};

/// A placement tagged with the bin it went to, as pooled by the simulation
/// engine in global arrival order (see Simulation::finish()).
struct PooledPlacement {
  BinIndex bin = 0;
  PlacementRecord record;
};

struct BinRecord {
  BinIndex index = 0;
  Interval usage;                        ///< U_k = [open, close)
  std::vector<PlacementRecord> items;    ///< in placement (arrival) order
  LevelTimeline timeline;                ///< recorded if requested

  [[nodiscard]] Time usage_time() const noexcept { return usage.length(); }

  /// Time-space demand of this bin's items over `iv`: the integral of the
  /// bin level, i.e. Σ size(r) * |active(r) ∩ iv| (the d(...) quantities
  /// of the paper's §VII).
  [[nodiscard]] double demand_over(const Interval& iv) const noexcept;
};

class PackingResult {
 public:
  PackingResult() = default;
  /// The item→bin assignment is derived lazily from the bin records on the
  /// first bin_of()/assignment() call, so producing a result stays cheap for
  /// consumers that only read aggregate objectives (the common hot path).
  explicit PackingResult(std::vector<BinRecord> bins);
  PackingResult(std::vector<BinRecord> bins,
                std::unordered_map<ItemId, BinIndex> assignment);
  /// Skeleton records (usage periods, timelines — no items) plus the pooled
  /// placements they came from. The per-bin item vectors are bucketed
  /// lazily on the first bins() call, so consumers reading only aggregate
  /// objectives never pay one allocation per bin. Requires the simulation's
  /// dense, index-ordered output (bins[i].index == i).
  PackingResult(std::vector<BinRecord> bins, std::vector<PooledPlacement> pooled);

  /// Lazily buckets pooled placements into per-bin `items` on first call
  /// (see the pooled constructor); like assignment(), not safe to call
  /// concurrently on a shared const instance before the first call returns.
  [[nodiscard]] const std::vector<BinRecord>& bins() const {
    if (!items_built_) materialize_items();
    return bins_;
  }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] BinIndex bin_of(ItemId item) const;
  /// Lazily built; not safe to call concurrently from multiple threads on a
  /// shared const instance (results are normally thread-local).
  [[nodiscard]] const std::unordered_map<ItemId, BinIndex>& assignment() const;

  /// The MinUsageTime objective: sum of |U_k| over all bins.
  [[nodiscard]] Time total_usage_time() const noexcept;

  /// The classic DBP objective: maximum number of concurrently open bins.
  [[nodiscard]] std::size_t max_concurrent_bins() const;

  /// Average level of open bins weighted by time:
  /// (integral of total level dt) / (total usage time).
  [[nodiscard]] double average_utilization() const noexcept;

 private:
  void materialize_items() const;

  mutable std::vector<BinRecord> bins_;  // sorted by index
  // Placements not yet bucketed into bins_[i].items (pooled construction
  // only; drained by materialize_items()).
  mutable std::vector<PooledPlacement> pooled_;
  mutable bool items_built_ = true;
  // item -> bin index, derived on demand (see assignment()).
  mutable std::unordered_map<ItemId, BinIndex> assignment_;
  mutable bool assignment_built_ = false;
};

/// Order-sensitive FNV-1a digest of the full packing: bin index, usage
/// interval (IEEE-754 bit patterns), then every placement (item, size,
/// activity interval) in placement order. Two runs produce the same digest
/// iff they made bit-identical decisions — the golden-master suite pins
/// these values and trace_replay prints one per run so CI can compare the
/// CSV and binary ingest paths end to end.
[[nodiscard]] std::uint64_t packing_digest(const PackingResult& result);

}  // namespace mutdbp
