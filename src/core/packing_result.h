// The record of one complete packing: per-bin usage periods, placements,
// level timelines, and the objectives (MinUsageTime and classic DBP).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"
#include "core/interval.h"
#include "core/item.h"

namespace mutdbp {

/// One placement event inside a bin.
struct PlacementRecord {
  ItemId item = 0;
  double size = 0.0;
  Interval active;  ///< [arrival, departure)
};

/// Piecewise-constant bin level: level is `level[i]` on [time[i], time[i+1])
/// and the bin is closed outside its usage period.
struct LevelTimeline {
  std::vector<Time> times;
  std::vector<double> levels;

  /// Level at time t; 0 outside the recorded range.
  [[nodiscard]] double at(Time t) const noexcept;
  /// Minimum level over [iv.left, iv.right); +inf for an empty interval.
  [[nodiscard]] double min_over(const Interval& iv) const noexcept;
};

struct BinRecord {
  BinIndex index = 0;
  Interval usage;                        ///< U_k = [open, close)
  std::vector<PlacementRecord> items;    ///< in placement (arrival) order
  LevelTimeline timeline;                ///< recorded if requested

  [[nodiscard]] Time usage_time() const noexcept { return usage.length(); }

  /// Time-space demand of this bin's items over `iv`: the integral of the
  /// bin level, i.e. Σ size(r) * |active(r) ∩ iv| (the d(...) quantities
  /// of the paper's §VII).
  [[nodiscard]] double demand_over(const Interval& iv) const noexcept;
};

class PackingResult {
 public:
  PackingResult() = default;
  PackingResult(std::vector<BinRecord> bins,
                std::unordered_map<ItemId, BinIndex> assignment);

  [[nodiscard]] const std::vector<BinRecord>& bins() const noexcept { return bins_; }
  [[nodiscard]] std::size_t bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] BinIndex bin_of(ItemId item) const;
  [[nodiscard]] const std::unordered_map<ItemId, BinIndex>& assignment() const noexcept {
    return assignment_;
  }

  /// The MinUsageTime objective: sum of |U_k| over all bins.
  [[nodiscard]] Time total_usage_time() const noexcept;

  /// The classic DBP objective: maximum number of concurrently open bins.
  [[nodiscard]] std::size_t max_concurrent_bins() const;

  /// Average level of open bins weighted by time:
  /// (integral of total level dt) / (total usage time).
  [[nodiscard]] double average_utilization() const noexcept;

 private:
  std::vector<BinRecord> bins_;                      // sorted by index
  std::unordered_map<ItemId, BinIndex> assignment_;  // item -> bin index
};

}  // namespace mutdbp
