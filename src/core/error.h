// The library's exception hierarchy.
//
// `mutdbp::Error` is the common root: `catch (const mutdbp::Error&)` handles
// any error the library raises deliberately. Each concrete type *also*
// derives from the std exception it historically was (ValidationError is a
// std::invalid_argument, SimulationError a std::logic_error, AuditError a
// std::runtime_error), so existing call sites — and the large body of tests
// asserting the std types — keep working unchanged. Error itself is a pure
// marker (it does not derive from std::exception), which keeps
// `catch (const std::exception&)` unambiguous: every thrown object has
// exactly one std::exception base subobject.
//
//  * ValidationError — rejected inputs: bad sizes/times/specs, malformed
//    traces, unopenable files, misuse of submit/complete.
//  * SimulationError — the simulation state machine was driven illegally or
//    an algorithm violated the model (time backwards, placement into a
//    closed bin, arrive() after finish(), force-closing an unknown bin).
//  * AuditError — the InvariantAuditor observed a broken invariant
//    (see core/auditor.h). These indicate a bug in the engine itself, not
//    in the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace mutdbp {

/// Root of the hierarchy. Abstract marker: catch it, never throw it.
class Error {
 public:
  virtual ~Error() = default;
  [[nodiscard]] virtual const char* what() const noexcept = 0;
};

class ValidationError : public std::invalid_argument, public Error {
 public:
  explicit ValidationError(const std::string& message)
      : std::invalid_argument(message) {}
  [[nodiscard]] const char* what() const noexcept override {
    return std::invalid_argument::what();
  }
};

class SimulationError : public std::logic_error, public Error {
 public:
  explicit SimulationError(const std::string& message) : std::logic_error(message) {}
  [[nodiscard]] const char* what() const noexcept override {
    return std::logic_error::what();
  }
};

class AuditError : public std::runtime_error, public Error {
 public:
  explicit AuditError(const std::string& message) : std::runtime_error(message) {}
  [[nodiscard]] const char* what() const noexcept override {
    return std::runtime_error::what();
  }
};

}  // namespace mutdbp
