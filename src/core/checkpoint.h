// Versioned binary checkpoint frames with end-to-end integrity checking.
//
// A checkpoint is one self-delimiting frame:
//
//   offset 0   magic     "MUTDBPC1" (8 bytes)
//   offset 8   version   u32 little-endian (kCheckpointVersion)
//   offset 12  kind      u32 little-endian (what the payload describes)
//   offset 16  size      u64 little-endian (payload byte count)
//   offset 24  payload   `size` bytes
//   tail       checksum  u64 little-endian FNV-1a over magic..payload
//
// The reader validates magic, version, kind, and length before the payload
// is ever parsed, and verifies the checksum before handing the payload to a
// deserializer — so any truncation or bit flip of a checkpoint surfaces as
// a ValidationError, never as a crash or a silently different packing (the
// fuzz suite flips bits to enforce exactly this, see tests/fuzz_test.cpp).
//
// All multi-byte values are little-endian regardless of host; doubles
// travel as their IEEE-754 bit patterns, so checkpoints restore
// bit-identically across platforms (docs/streaming.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace mutdbp {

/// Current checkpoint format version. Bump on any layout change; readers
/// reject other versions with a ValidationError naming both.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// What a checkpoint frame's payload describes.
enum class CheckpointKind : std::uint32_t {
  kStreamingSimulation = 1,
  kJobDispatcher = 2,
  kFleetDispatcher = 3,
  /// Header frame of a sharded fleet checkpoint; followed in the stream by
  /// one kStreamingSimulation frame per shard (core/sharded.h).
  kShardedSimulation = 4,
  /// Header frame of a mutdbpd daemon checkpoint (client acked-frontier
  /// table); followed in the stream by one kShardedSimulation fleet
  /// checkpoint (daemon/server.h, docs/daemon.md).
  kDaemonState = 5,
  /// One request of the mutdbpd wire protocol (daemon/protocol.h). Wire
  /// messages reuse the checkpoint frame format verbatim, so every frame on
  /// a socket carries the same magic/version/kind/size/FNV-1a armor as a
  /// frame on disk.
  kWireRequest = 6,
  /// One response of the mutdbpd wire protocol.
  kWireResponse = 7,
  /// Header frame of a MUTDBPT1 binary columnar trace file (trace/
  /// binary_trace.h, docs/traces.md): format version, capacity, block-size
  /// hint. Trace files reuse the checkpoint frame machinery verbatim, so
  /// every block on disk carries the same magic/version/kind/size/FNV-1a
  /// armor as a checkpoint frame.
  kTraceHeader = 8,
  /// One columnar block of a binary trace: SoA columns (ids, sizes,
  /// arrivals, departures) with delta/varint-encoded id and time columns.
  kTraceBlock = 9,
  /// Footer frame of a binary trace: event count, min/max times, content
  /// digest, and the per-block offset index enabling O(1) metadata queries
  /// and random block access.
  kTraceFooter = 10,
  /// Checkpoint of a vector (multi-dimensional) streaming run: algorithm
  /// name, dims + per-dimension capacity, and the applied event log with
  /// vector demands (multidim/md_streaming.h).
  kVectorStreamingSimulation = 11,
  /// Flight-recorder postmortem dump (telemetry/flight_recorder.h). The
  /// frame is written by telemetry — which cannot link this library — so
  /// the writer there re-implements this layout; keep the two in sync.
  kFlightRecorder = 12,
};

/// FNV-1a 64-bit over a byte range (also used by the golden-master tests to
/// digest placements).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Append-only little-endian payload builder.
class BinaryWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern via u64
  void boolean(bool v);
  void string(std::string_view v);  ///< u64 length + bytes
  /// Appends `size` raw bytes verbatim (columnar codecs build their encoded
  /// streams out-of-line and splice them in with one copy).
  void raw(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload parser. Every overrun throws
/// ValidationError (defense in depth behind the frame checksum).
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes) noexcept
      : BinaryReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string string();

  /// Bounds-checked view of the next `size` payload bytes; advances past
  /// them. The pointer stays valid as long as the underlying buffer does —
  /// the zero-copy counterpart of string() for columnar codecs.
  [[nodiscard]] const std::uint8_t* raw(std::size_t size);

  /// A u64 element count for a sequence whose elements occupy at least
  /// `min_element_bytes` each; rejects counts the remaining payload cannot
  /// possibly hold (so corrupted counts can never drive huge allocations).
  [[nodiscard]] std::size_t count(std::size_t min_element_bytes);

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Throws ValidationError unless the payload was consumed exactly.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Frame layout constants, exposed for incremental byte-stream parsers
/// (the wire protocol assembles frames from partial socket reads).
inline constexpr std::size_t kFrameHeaderBytes = 24;  ///< magic+version+kind+size
inline constexpr std::size_t kFrameChecksumBytes = 8;

/// Serializes one complete frame (header + payload + checksum) into bytes —
/// the buffer-level core write_checkpoint_frame() streams out.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(CheckpointKind kind,
                                                     const BinaryWriter& payload);

/// Result of one incremental parse attempt (see parse_frame).
struct FrameParse {
  /// Bytes consumed from the front of the buffer; 0 means "incomplete —
  /// feed more bytes and retry" (nothing was consumed).
  std::size_t consumed = 0;
  std::vector<std::uint8_t> payload;
};

/// Zero-copy result of one incremental parse attempt: the payload is a view
/// into the caller's buffer, not a copy (see parse_frame_view).
struct FrameRef {
  /// Bytes consumed from the front of the buffer; 0 means "incomplete".
  std::size_t consumed = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// Attempts to parse one complete frame of `kind` from the front of
/// `data..data+size`. Returns consumed == 0 when the buffer does not yet
/// hold the whole frame; otherwise consumes exactly one frame and returns
/// its validated payload. Malformed input — wrong magic (checked on the
/// available prefix, so garbage fails before a full header arrives),
/// unsupported version, wrong kind, a declared payload size above
/// `max_payload`, or a checksum mismatch — throws ValidationError and
/// consumes nothing, exactly like the stream reader.
[[nodiscard]] FrameParse parse_frame(
    const std::uint8_t* data, std::size_t size, CheckpointKind kind,
    std::uint64_t max_payload = std::numeric_limits<std::uint64_t>::max());

/// parse_frame without the payload copy: the returned view aliases `data`,
/// so the checksum-validated payload can be decoded in place. This is what
/// the mmap'd binary-trace reader runs per block (trace/binary_trace.h);
/// parse_frame is a thin copying wrapper over it.
[[nodiscard]] FrameRef parse_frame_view(
    const std::uint8_t* data, std::size_t size, CheckpointKind kind,
    std::uint64_t max_payload = std::numeric_limits<std::uint64_t>::max());

/// Writes one complete frame (header + payload + checksum) to `out`.
/// Throws SimulationError if the stream write fails.
void write_checkpoint_frame(std::ostream& out, CheckpointKind kind,
                            const BinaryWriter& payload);

/// Reads and fully validates one frame, returning its payload. Throws
/// ValidationError on bad magic, unsupported version, unexpected kind,
/// truncation, or checksum mismatch.
[[nodiscard]] std::vector<std::uint8_t> read_checkpoint_frame(std::istream& in,
                                                              CheckpointKind kind);

}  // namespace mutdbp
