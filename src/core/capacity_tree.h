// CapacityTree: a tournament (segment) tree over the remaining capacities of
// the bins opened so far, answering the Any Fit placement queries in
// O(log m) for m bins:
//
//   * first_fit(s) — lowest-indexed open bin the item fits in,
//   * last_fit(s)  — highest-indexed open bin the item fits in,
//   * worst_fit(s) — emptiest open bin (max gap), if the item fits there,
//   * best_fit(s)  — fullest open bin the item fits in (min gap ≥ s).
//
// Exactness contract: every query uses the *identical* floating-point
// predicate as the legacy snapshot scan, `level + size <= capacity +
// fit_epsilon` (see fits() in core/algorithm.h). For that reason the tree
// stores bin *levels* (fill), not gaps: computing gaps would introduce a
// subtraction whose rounding could flip epsilon-boundary fits relative to
// the reference implementation. Because fl(level + size) is monotone in
// level, a subtree contains a fitting bin iff the predicate holds for the
// subtree's minimum level — which is what each internal node caches.
//
// best_fit needs an order on levels rather than on indices; it is served
// from an auxiliary ordered index — a sorted flat vector keyed by (level ↑,
// index ↓) — that is only maintained when requested at begin(), so
// First/Worst/Last Fit pay nothing for it. A flat vector rather than a
// node-based set: the index holds the *open* bins (typically a handful), so
// a binary search plus a contiguous memmove beats per-event node
// allocation and pointer chasing, and steady-state updates allocate
// nothing. The index is searched with a heterogeneous comparator that
// applies the fit predicate directly — no derived threshold value, so it
// is exact by construction.
//
// Closed bins keep their index forever (bins never reopen); the tree marks
// them with a level of +infinity, which no query can select.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "core/algorithm.h"

namespace mutdbp {

class CapacityTree {
 public:
  CapacityTree() = default;

  /// (Re)initializes for a fresh simulation: forgets all bins and stores the
  /// bin capacity and the fit epsilon used by every subsequent query.
  /// `track_level_order` enables the auxiliary index best_fit() requires.
  void begin(double capacity, double fit_epsilon, bool track_level_order = false);

  /// Registers the next bin (indices are assigned 0,1,2,... in call order,
  /// mirroring the simulation's opening-order bin indices). O(log m) amortized.
  BinIndex append(double level);

  /// Updates an open bin's level after a placement or departure. O(log m).
  /// Defined inline below: with set_level and the tree walk visible in one
  /// translation unit, the compiler folds the whole per-event update into
  /// the caller (this is the hottest operation in a simulation).
  void set_level(BinIndex bin, double level);

  /// Marks a bin closed; it can never be returned by a query again. O(log m).
  void close(BinIndex bin);

  [[nodiscard]] std::optional<BinIndex> first_fit(double size) const;
  [[nodiscard]] std::optional<BinIndex> last_fit(double size) const;
  [[nodiscard]] std::optional<BinIndex> worst_fit(double size) const;
  /// Requires begin(..., track_level_order = true).
  [[nodiscard]] std::optional<BinIndex> best_fit(double size) const;

  [[nodiscard]] double level(BinIndex bin) const { return levels_[bin]; }
  [[nodiscard]] bool is_open(BinIndex bin) const {
    return bin < levels_.size() && levels_[bin] != kClosed;
  }
  [[nodiscard]] std::size_t bin_count() const noexcept { return levels_.size(); }
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double fit_epsilon() const noexcept { return fit_epsilon_; }

 private:
  static constexpr double kClosed = std::numeric_limits<double>::infinity();

  /// The shared fit predicate, verbatim (levels of closed bins are +inf and
  /// always fail it).
  [[nodiscard]] bool fits_level(double level, double size) const noexcept {
    return level + size <= capacity_ + fit_epsilon_;
  }

  void update_slot(std::size_t slot, double level);
  [[noreturn]] void throw_not_open(const char* op, BinIndex bin) const;

  using LevelEntry = std::pair<double, BinIndex>;  // (level, bin)
  struct FitQuery {
    double size;
    double capacity;
    double fit_epsilon;
  };
  /// Orders entries by (level ascending, index descending), so the last
  /// entry satisfying the fit predicate is the fullest fitting bin with the
  /// lowest index among equal levels — exactly the legacy Best Fit choice.
  /// The heterogeneous overloads let lower_bound locate the boundary
  /// between fitting and non-fitting entries using the exact predicate
  /// (fitting levels form a prefix of this order because fl(level + size)
  /// is monotone in level).
  struct LevelOrder {
    using is_transparent = void;
    bool operator()(const LevelEntry& a, const LevelEntry& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
    bool operator()(const LevelEntry& e, const FitQuery& q) const noexcept {
      return e.first + q.size <= q.capacity + q.fit_epsilon;
    }
    bool operator()(const FitQuery& q, const LevelEntry& e) const noexcept {
      return !(e.first + q.size <= q.capacity + q.fit_epsilon);
    }
  };

  /// Sorted-vector index maintenance (track_level_order_ only). Entries are
  /// unique: index is part of the key.
  void level_index_insert(const LevelEntry& e);
  void level_index_erase(const LevelEntry& e) noexcept;

  /// Rebuilds the tournament tree over the live slots with `new_leaf_cap`
  /// leaves (a power of two >= slot count).
  void rebuild(std::size_t new_leaf_cap);
  /// Drops dead slots, renumbering live bins into a dense prefix. Preserves
  /// slot order (and therefore every query's index-order semantics).
  void compact();

  double capacity_ = 1.0;
  double fit_epsilon_ = kDefaultFitEpsilon;
  bool track_level_order_ = false;
  std::size_t open_count_ = 0;

  // Implicit binary tournament tree over *slots*, not global bin indices:
  // bins keep their public index forever, but internally each open bin
  // occupies a slot, and slots of closed bins (level +inf) are reclaimed by
  // an amortized compaction (see compact()). Slot order always agrees with
  // global index order — compaction preserves relative order and appends go
  // to the right end with the largest index — so descending the slot tree
  // yields the same bin every index-ordered query would find, while the tree
  // depth tracks the number of *concurrently open* bins instead of the
  // total opened over the run.
  //
  // leaf_cap_ is a power of two, node i has children 2i and 2i+1, slot s
  // lives at node leaf_cap_ + s. min_[i] is the minimum level in node i's
  // subtree (dead and padding leaves hold +inf). No argmin is cached:
  // worst_fit() recovers the minimum's slot by descending, keeping the
  // per-update work to a single array with an early exit once an ancestor's
  // minimum is unchanged.
  std::size_t leaf_cap_ = 0;
  std::size_t slot_count_ = 0;  ///< slots in use (live + not-yet-compacted dead)
  std::vector<double> min_;
  std::vector<BinIndex> slot_bin_;   ///< slot -> global bin index
  std::vector<std::size_t> bin_slot_;  ///< global bin -> slot (stale once closed)
  std::vector<double> levels_;  ///< current level per bin (+inf once closed)

  std::vector<LevelEntry> by_level_;  ///< sorted by LevelOrder; only if track_level_order_
};

// ---- hot-path definitions (kept in the header so callers inline them) ----

inline void CapacityTree::level_index_insert(const LevelEntry& e) {
  by_level_.insert(std::lower_bound(by_level_.begin(), by_level_.end(), e, LevelOrder{}),
                   e);
}

inline void CapacityTree::level_index_erase(const LevelEntry& e) noexcept {
  const auto it = std::lower_bound(by_level_.begin(), by_level_.end(), e, LevelOrder{});
  // The entry is unique ((level, index) is the full key) and always present:
  // callers erase exactly what they previously inserted.
  by_level_.erase(it);
}

inline void CapacityTree::update_slot(std::size_t slot, double level) {
  std::size_t node = leaf_cap_ + slot;
  min_[node] = level;
  for (node /= 2; node >= 1; node /= 2) {
    const std::size_t l = 2 * node, r = 2 * node + 1;
    const double m = min_[l] <= min_[r] ? min_[l] : min_[r];
    // Once an ancestor's minimum is unchanged, every higher ancestor
    // recombines identical inputs: stop (bitwise comparison — levels are
    // stored, never recomputed, so unchanged means bit-identical).
    if (min_[node] == m) break;
    min_[node] = m;
  }
}

inline void CapacityTree::set_level(BinIndex bin, double level) {
  if (bin >= levels_.size() || levels_[bin] == kClosed) {
    throw_not_open("set_level", bin);
  }
  if (track_level_order_) {
    level_index_erase({levels_[bin], bin});
    level_index_insert({level, bin});
  }
  levels_[bin] = level;
  update_slot(bin_slot_[bin], level);
}

inline std::optional<BinIndex> CapacityTree::first_fit(double size) const {
  if (slot_count_ == 0 || !fits_level(min_[1], size)) return std::nullopt;
  std::size_t node = 1;
  while (node < leaf_cap_) {
    // The invariant "this subtree contains a fitting leaf" is preserved by
    // preferring the left child whenever its minimum fits.
    node = fits_level(min_[2 * node], size) ? 2 * node : 2 * node + 1;
  }
  return slot_bin_[node - leaf_cap_];
}

inline std::optional<BinIndex> CapacityTree::last_fit(double size) const {
  if (slot_count_ == 0 || !fits_level(min_[1], size)) return std::nullopt;
  std::size_t node = 1;
  while (node < leaf_cap_) {
    node = fits_level(min_[2 * node + 1], size) ? 2 * node + 1 : 2 * node;
  }
  return slot_bin_[node - leaf_cap_];
}

inline std::optional<BinIndex> CapacityTree::worst_fit(double size) const {
  // The emptiest open bin is the global minimum; if the item does not fit
  // there it fits nowhere (the predicate is monotone in level). Descend to
  // the minimum, preferring the left child on ties so the lowest slot — and
  // therefore the lowest bin index — wins.
  if (slot_count_ == 0 || !fits_level(min_[1], size)) return std::nullopt;
  std::size_t node = 1;
  while (node < leaf_cap_) {
    node = min_[2 * node] <= min_[2 * node + 1] ? 2 * node : 2 * node + 1;
  }
  return slot_bin_[node - leaf_cap_];
}

}  // namespace mutdbp
