#include "core/sharded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "core/error.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "util/flat_hash.h"
#include "util/mpsc_queue.h"
#include "util/parallel.h"

namespace mutdbp {

namespace {

/// Events per StreamingSimulation flush in the batch path: bounds pending_
/// memory without affecting results (flush ≡ batch at any granularity).
constexpr std::size_t kBatchFlushEvents = 8192;

/// Shard routing ceiling — matches the MUTDBP_SHARDS override cap.
constexpr std::size_t kMaxShards = 4096;

/// The canonical event order (ItemList::schedule(), StreamingSimulation's
/// flush_batch): time, departures before arrivals at equal times, id within
/// a kind. Sorting a drained batch with this comparator is what keeps the
/// per-shard sequence — and therefore the lower-bound sweep — bit-identical
/// to the batch path no matter how the drain chopped it up.
bool canonical_order(const StreamEvent& a, const StreamEvent& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  if (a.kind != b.kind) return a.kind == StreamEvent::Kind::kDeparture;
  return a.id < b.id;
}

ShardedOptions normalize(ShardedOptions options) {
  if (options.num_shards == 0) options.num_shards = hardware_shard_count();
  if (options.num_shards > kMaxShards) {
    throw ValidationError("sharded: num_shards " +
                          std::to_string(options.num_shards) + " exceeds the " +
                          std::to_string(kMaxShards) + " shard ceiling");
  }
  if (options.producers == 0) {
    throw ValidationError("sharded: at least one producer slot is required");
  }
  if (options.queue_capacity == 0) {
    throw ValidationError("sharded: queue_capacity must be > 0");
  }
  return options;
}

StreamingOptions to_streaming_options(const ShardedOptions& options,
                                      telemetry::Telemetry* telemetry) {
  StreamingOptions stream;
  stream.capacity = options.capacity;
  stream.fit_epsilon = options.fit_epsilon;
  stream.record_timelines = options.record_timelines;
  stream.audit = options.audit;
  stream.algorithm_seed = options.algorithm_seed;
  stream.telemetry = telemetry;
  return stream;
}

void fill_bounds(ShardOutcome& outcome,
                 const telemetry::LowerBoundAccumulator& bounds) {
  outcome.lb_prop1 = bounds.prop1();
  outcome.lb_prop2 = bounds.prop2();
  outcome.lb_load_ceiling = bounds.load_ceiling();
  outcome.lower_bound = bounds.combined();
}

/// The deterministic cross-shard merge both run paths share. Fills
/// bin_offset / merged / bounds / metrics / trace from the per-shard
/// outcomes (already stored in result.shards, shard order) and the
/// per-shard telemetry instances (entries may be null).
void merge_outcomes(ShardedResult& result, double mu_reference,
                    const std::vector<telemetry::Telemetry*>& shard_telemetry) {
  const std::size_t n = result.shards.size();

  // Shard-major global bin ids: prefix sums of per-shard bin counts.
  result.bin_offset.assign(n, 0);
  std::size_t total_bins = 0;
  for (std::size_t s = 0; s < n; ++s) {
    result.bin_offset[s] = total_bins;
    total_bins += result.shards[s].result.bins_opened();
  }
  std::vector<BinRecord> merged_bins;
  merged_bins.reserve(total_bins);
  for (std::size_t s = 0; s < n; ++s) {
    for (const BinRecord& bin : result.shards[s].result.bins()) {
      BinRecord copy = bin;
      copy.index = result.bin_offset[s] + bin.index;
      merged_bins.push_back(std::move(copy));
    }
  }
  result.merged = PackingResult(std::move(merged_bins));

  // Left folds in shard order: bitwise equal to summing N standalone batch
  // runs of the same partition in the same order (the invariance suite's
  // reference computation performs these exact operations).
  MergedLowerBounds bounds;
  for (const ShardOutcome& outcome : result.shards) {
    bounds.usage += outcome.usage;
    bounds.lb_prop1 += outcome.lb_prop1;
    bounds.lb_prop2 += outcome.lb_prop2;
    bounds.lb_load_ceiling += outcome.lb_load_ceiling;
    bounds.lower_bound += outcome.lower_bound;
  }
  bounds.ratio = bounds.lower_bound > 0.0 ? bounds.usage / bounds.lower_bound : 0.0;
  result.bounds = bounds;

  bool any_telemetry = false;
  for (const telemetry::Telemetry* t : shard_telemetry) {
    any_telemetry = any_telemetry || t != nullptr;
  }
  if (!any_telemetry) return;

  std::vector<telemetry::MetricsSnapshot> snapshots;
  snapshots.reserve(n);
  for (telemetry::Telemetry* t : shard_telemetry) {
    if (t != nullptr) snapshots.push_back(t->metrics().snapshot());
  }
  result.metrics = telemetry::merge_snapshots(snapshots);
  // Per-shard ratio gauges summed blindly would be meaningless; overwrite
  // them with the fleet-level values recomputed from the folded bounds.
  for (auto& gauge : result.metrics.gauges) {
    if (gauge.name == "mutdbp_ratio_current") {
      gauge.value = bounds.ratio;
    } else if (gauge.name == "mutdbp_lb_prop1") {
      gauge.value = bounds.lb_prop1;
    } else if (gauge.name == "mutdbp_lb_prop2") {
      gauge.value = bounds.lb_prop2;
    } else if (gauge.name == "mutdbp_lb_load_ceiling") {
      gauge.value = bounds.lb_load_ceiling;
    } else if (gauge.name == "mutdbp_bound_gap_mu_plus_4") {
      gauge.value = mu_reference > 0.0
                        ? (mu_reference + 4.0) * bounds.lower_bound - bounds.usage
                        : std::numeric_limits<double>::quiet_NaN();
    }
  }

  // Merged decision trace: concatenate in shard order (records are already
  // shard-tagged by each tracer), then a stable sort by time — ties keep
  // shard order, so the merged trace is deterministic.
  for (telemetry::Telemetry* t : shard_telemetry) {
    if (t == nullptr) continue;
    std::vector<telemetry::TraceEvent> events = t->tracer().events();
    result.trace.insert(result.trace.end(), events.begin(), events.end());
  }
  std::stable_sort(
      result.trace.begin(), result.trace.end(),
      [](const telemetry::TraceEvent& a, const telemetry::TraceEvent& b) {
        return a.t < b.t;
      });
}

void write_sharded_header(std::ostream& out, const std::string& algorithm,
                          const ShardedOptions& options) {
  BinaryWriter payload;
  payload.string(algorithm);
  payload.u64(options.num_shards);
  payload.f64(options.capacity);
  payload.f64(options.fit_epsilon);
  payload.boolean(options.record_timelines);
  payload.boolean(options.audit);
  payload.boolean(options.telemetry);
  payload.u64(options.algorithm_seed);
  payload.u64(options.producers);
  payload.u64(options.queue_capacity);
  write_checkpoint_frame(out, CheckpointKind::kShardedSimulation, payload);
}

std::pair<std::string, ShardedOptions> read_sharded_header(std::istream& in) {
  const std::vector<std::uint8_t> payload =
      read_checkpoint_frame(in, CheckpointKind::kShardedSimulation);
  BinaryReader reader(payload);
  std::string algorithm = reader.string();
  ShardedOptions options;
  options.num_shards = reader.u64();
  options.capacity = reader.f64();
  options.fit_epsilon = reader.f64();
  options.record_timelines = reader.boolean();
  options.audit = reader.boolean();
  options.telemetry = reader.boolean();
  options.algorithm_seed = reader.u64();
  options.producers = reader.u64();
  options.queue_capacity = reader.u64();
  reader.expect_end();
  if (options.num_shards == 0 || options.num_shards > kMaxShards) {
    throw ValidationError("sharded checkpoint: invalid shard count " +
                          std::to_string(options.num_shards));
  }
  if (options.producers == 0 || options.queue_capacity == 0) {
    throw ValidationError("sharded checkpoint: invalid queue configuration");
  }
  return {std::move(algorithm), options};
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedSimulation

struct ShardedSimulation::Shard {
  std::size_t index = 0;
  std::unique_ptr<PackingAlgorithm> algorithm;  ///< outlives stream (below)
  std::unique_ptr<telemetry::Telemetry> telemetry;  ///< null when disabled
  std::unique_ptr<StreamingSimulation> stream;
  telemetry::LowerBoundAccumulator bounds;
  FlatMap<ItemId, double> sizes;  ///< active sizes (departures carry 0)
  std::uint64_t items = 0;        ///< arrivals routed here (worker-owned)
  std::unique_ptr<MpscQueue<StreamEvent>> queue;
  std::vector<StreamEvent> batch;  ///< worker-local drain buffer
  std::thread worker;
  /// pushed advances on the producer side, applied on the worker side; the
  /// two agree exactly once producers have quiesced (drain()'s condition).
  alignas(64) std::atomic<std::uint64_t> pushed{0};
  alignas(64) std::atomic<std::uint64_t> applied{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  ///< set before failed, read after (acq/rel)
  // Health introspection (ShardHealth / kWireStats). high_water is
  // worker-owned (plain store); the stall counters are producer-side and
  // accumulate with relaxed adds — none of it steers control flow.
  alignas(64) std::atomic<std::uint64_t> queue_high_water{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> stall_nanos{0};
};

ShardedSimulation::ShardedSimulation(const AlgorithmFactory& factory,
                                     ShardedOptions options)
    : options_(normalize(std::move(options))) {
  build_shards(factory, nullptr);
  start_workers();
}

ShardedSimulation::ShardedSimulation(const ShardedCheckpoint& checkpoint,
                                     const AlgorithmFactory& factory)
    : options_(normalize(checkpoint.options)) {
  if (checkpoint.shards.size() != options_.num_shards) {
    throw ValidationError(
        "ShardedSimulation::restore: header announces " +
        std::to_string(options_.num_shards) + " shards but " +
        std::to_string(checkpoint.shards.size()) + " shard frames were parsed");
  }
  build_shards(factory, &checkpoint);
  start_workers();
}

ShardedSimulation::~ShardedSimulation() {
  for (auto& shard : shards_) {
    if (shard->queue) shard->queue->close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedSimulation::build_shards(const AlgorithmFactory& factory,
                                     const ShardedCheckpoint* checkpoint) {
  const std::size_t n = options_.num_shards;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->algorithm = factory(s);
    if (!shard->algorithm) {
      throw ValidationError("ShardedSimulation: factory returned a null "
                            "algorithm for shard " + std::to_string(s));
    }
    telemetry::Telemetry* telem = nullptr;
    if (options_.telemetry) {
      shard->telemetry = std::make_unique<telemetry::Telemetry>();
      shard->telemetry->tracer().set_shard(static_cast<std::uint32_t>(s));
      telem = shard->telemetry.get();
    }
    shard->bounds.reset(options_.capacity);

    if (checkpoint == nullptr) {
      shard->stream = std::make_unique<StreamingSimulation>(
          *shard->algorithm, to_streaming_options(options_, telem));
    } else {
      const StreamingCheckpoint& frame = checkpoint->shards[s];
      if (frame.algorithm != checkpoint->algorithm) {
        throw ValidationError("sharded checkpoint: shard " + std::to_string(s) +
                              " frame names algorithm '" + frame.algorithm +
                              "' but the header names '" +
                              checkpoint->algorithm + "'");
      }
      if (frame.options.capacity != options_.capacity ||
          frame.options.fit_epsilon != options_.fit_epsilon ||
          frame.options.record_timelines != options_.record_timelines ||
          frame.options.audit != options_.audit ||
          frame.options.algorithm_seed != options_.algorithm_seed) {
        throw ValidationError("sharded checkpoint: shard " + std::to_string(s) +
                              " frame options disagree with the header");
      }
      // Validate the log before replaying anything: force-closes cannot be
      // swept through the lower-bound accumulator (evicted sizes are not in
      // the event log), and a mis-routed id means the frame belongs to a
      // different shard count.
      for (const StreamEvent& event : frame.events) {
        if (event.kind == StreamEvent::Kind::kForceClose) {
          throw ValidationError(
              "sharded checkpoint: shard " + std::to_string(s) +
              " log contains a force-close event (unsupported in sharded runs)");
        }
        if (shard_of(event.id, n) != s) {
          throw ValidationError(
              "sharded checkpoint: item " + std::to_string(event.id) +
              " recorded on shard " + std::to_string(s) + " but routes to shard " +
              std::to_string(shard_of(event.id, n)) + " — frame/shard-count mismatch");
        }
      }
      shard->stream = std::make_unique<StreamingSimulation>(
          StreamingSimulation::restore(frame, *shard->algorithm, telem));
      // The engine replayed the log; run the same events through the
      // accumulator and the size map so the live bounds continue exactly
      // where the interrupted run's would have been.
      for (const StreamEvent& event : frame.events) {
        shard->bounds.advance_to(event.t);
        if (event.kind == StreamEvent::Kind::kArrival) {
          shard->bounds.apply_arrival(event.size);
          shard->sizes.insert(event.id, event.size);
          ++shard->items;
        } else {
          double size = 0.0;
          shard->sizes.take(event.id, size);
          shard->bounds.apply_departure(size);
        }
      }
      const auto applied = static_cast<std::uint64_t>(frame.events.size());
      shard->pushed.store(applied, std::memory_order_relaxed);
      shard->applied.store(applied, std::memory_order_relaxed);
    }

    shard->queue = std::make_unique<MpscQueue<StreamEvent>>(
        options_.producers, options_.queue_capacity);
    shards_.push_back(std::move(shard));
  }
  algorithm_name_ = std::string(shards_.front()->algorithm->name());
}

void ShardedSimulation::start_workers() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { worker_loop(s); });
  }
}

void ShardedSimulation::worker_loop(std::size_t shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "mutdbp-shard-%zu", shard_index);
  set_current_thread_name(name);
  Shard& shard = *shards_[shard_index];
  while (true) {
    shard.batch.clear();
    shard.queue->drain(
        [&shard](const StreamEvent& event) { shard.batch.push_back(event); });
    if (shard.batch.empty()) {
      if (shard.queue->closed() && shard.queue->empty()) return;
      shard.queue->wait();
      continue;
    }
    // Health bookkeeping before the apply: the drained batch size is the
    // queue depth the worker just observed, the best cheap proxy for how
    // far producers ran ahead.
    const std::size_t drained = shard.batch.size();
    if (drained > shard.queue_high_water.load(std::memory_order_relaxed)) {
      shard.queue_high_water.store(drained, std::memory_order_relaxed);
      if (shard.telemetry) shard.telemetry->on_shard_queue_high_water(drained);
    }
    if (shard.telemetry) shard.telemetry->on_shard_batch_drained(drained);
    telemetry::FlightRecorder::instance().record(
        telemetry::FlightKind::kShardDrain, shard.index, drained);
    // After a failure the worker keeps draining (and discarding) so
    // producers blocked on a full ring always make progress; the error
    // surfaces on the next drain()/finish().
    if (!shard.failed.load(std::memory_order_relaxed)) {
      try {
        apply_batch(shard);
      } catch (...) {
        shard.error = std::current_exception();
        shard.failed.store(true, std::memory_order_release);
      }
    }
    shard.applied.fetch_add(shard.batch.size(), std::memory_order_release);
  }
}

void ShardedSimulation::apply_batch(Shard& shard) {
  std::vector<StreamEvent>& batch = shard.batch;
  // Restore canonical order across producers. A single producer feeding
  // canonical order drains already sorted and skips this.
  if (!std::is_sorted(batch.begin(), batch.end(), canonical_order)) {
    std::sort(batch.begin(), batch.end(), canonical_order);
  }
  for (const StreamEvent& event : batch) shard.stream->push(event);
  shard.stream->flush();
  // Only after the engine accepted the whole batch: a rejected batch must
  // leave the bounds and the size map exactly as they were.
  for (const StreamEvent& event : batch) {
    shard.bounds.advance_to(event.t);
    if (event.kind == StreamEvent::Kind::kArrival) {
      shard.bounds.apply_arrival(event.size);
      shard.sizes.insert(event.id, event.size);
      ++shard.items;
    } else {
      double size = 0.0;
      shard.sizes.take(event.id, size);
      shard.bounds.apply_departure(size);
    }
  }
}

void ShardedSimulation::push_event(const StreamEvent& event, std::size_t producer) {
  if (finished_) {
    throw ValidationError("ShardedSimulation: push after finish()");
  }
  if (producer >= options_.producers) {
    throw ValidationError("ShardedSimulation: producer slot " +
                          std::to_string(producer) + " out of range (have " +
                          std::to_string(options_.producers) + ")");
  }
  Shard& shard = *shards_[shard_of(event.id, shards_.size())];
  shard.pushed.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue->try_push(producer, event)) {
    // Backpressure stall: measure how long this producer was held up, but
    // only on the miss path — the uncontended push stays clock-free.
    const auto stall_begin = std::chrono::steady_clock::now();
    shard.queue->push(producer, event);
    const auto stalled = std::chrono::steady_clock::now() - stall_begin;
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stalled).count());
    shard.stalls.fetch_add(1, std::memory_order_relaxed);
    shard.stall_nanos.fetch_add(nanos, std::memory_order_relaxed);
    if (shard.telemetry) {
      shard.telemetry->on_shard_stall(static_cast<double>(nanos) * 1e-9, event.t);
    }
    telemetry::FlightRecorder::instance().record(telemetry::FlightKind::kStall,
                                                 shard.index, nanos);
  }
}

bool ShardedSimulation::try_push_event(const StreamEvent& event,
                                       std::size_t producer) {
  if (finished_) {
    throw ValidationError("ShardedSimulation: push after finish()");
  }
  if (producer >= options_.producers) {
    throw ValidationError("ShardedSimulation: producer slot " +
                          std::to_string(producer) + " out of range (have " +
                          std::to_string(options_.producers) + ")");
  }
  Shard& shard = *shards_[shard_of(event.id, shards_.size())];
  // pushed advances only on success, and after the push: a drain() issued by
  // this producer after a successful try_push still sees the increment
  // (program order), and a failed push leaves the counters untouched.
  if (!shard.queue->try_push(producer, event)) return false;
  shard.pushed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedSimulation::push_arrival(ItemId id, double size, Time t,
                                     std::size_t producer) {
  push_event({StreamEvent::Kind::kArrival, id, size, t}, producer);
}

void ShardedSimulation::push_departure(ItemId id, Time t, std::size_t producer) {
  push_event({StreamEvent::Kind::kDeparture, id, 0.0, t}, producer);
}

bool ShardedSimulation::try_push_arrival(ItemId id, double size, Time t,
                                         std::size_t producer) {
  return try_push_event({StreamEvent::Kind::kArrival, id, size, t}, producer);
}

bool ShardedSimulation::try_push_departure(ItemId id, Time t,
                                           std::size_t producer) {
  return try_push_event({StreamEvent::Kind::kDeparture, id, 0.0, t}, producer);
}

void ShardedSimulation::drain() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::size_t spins = 0;
    while (shard.applied.load(std::memory_order_acquire) <
           shard.pushed.load(std::memory_order_relaxed)) {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  rethrow_failure();
}

void ShardedSimulation::rethrow_failure() {
  for (const auto& shard : shards_) {
    if (shard->failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(shard->error);
    }
  }
}

void ShardedSimulation::snapshot(std::ostream& out) {
  drain();
  write_sharded_header(out, algorithm_name_, options_);
  // Workers are parked (drained queues, no concurrent pushes by contract),
  // so the per-shard engines are safe to serialize from this thread.
  for (auto& shard : shards_) shard->stream->snapshot(out);
}

ShardedSimulation ShardedSimulation::restore(const ShardedCheckpoint& checkpoint,
                                             const AlgorithmFactory& factory) {
  return ShardedSimulation(checkpoint, factory);
}

std::unique_ptr<ShardedSimulation> ShardedSimulation::restore_unique(
    const ShardedCheckpoint& checkpoint, const AlgorithmFactory& factory) {
  return std::unique_ptr<ShardedSimulation>(
      new ShardedSimulation(checkpoint, factory));
}

ShardedResult ShardedSimulation::finish() {
  if (finished_) {
    throw ValidationError("ShardedSimulation::finish(): already finished");
  }
  drain();
  finished_ = true;
  for (auto& shard : shards_) shard->queue->close();
  for (auto& shard : shards_) shard->worker.join();
  rethrow_failure();

  ShardedResult result;
  result.num_shards = shards_.size();
  result.shards.reserve(shards_.size());
  std::vector<telemetry::Telemetry*> shard_telemetry;
  shard_telemetry.reserve(shards_.size());
  for (auto& shard : shards_) {
    ShardOutcome outcome;
    outcome.result = shard->stream->finish();
    outcome.usage = outcome.result.total_usage_time();
    fill_bounds(outcome, shard->bounds);
    outcome.events = shard->stream->events_applied();
    outcome.items = shard->items;
    result.shards.push_back(std::move(outcome));
    shard_telemetry.push_back(shard->telemetry.get());
  }
  merge_outcomes(result, mu_reference_, shard_telemetry);
  return result;
}

std::uint64_t ShardedSimulation::events_applied() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t ShardedSimulation::open_bin_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stream->open_bin_count();
  return total;
}

std::optional<BinIndex> ShardedSimulation::active_bin_of(ItemId id) const {
  const Shard& shard = *shards_[shard_of(id, shards_.size())];
  return shard.stream->engine().find_active_bin(id);
}

telemetry::Telemetry* ShardedSimulation::shard_telemetry(std::size_t shard) const {
  return shards_.at(shard)->telemetry.get();
}

std::vector<ShardHealth> ShardedSimulation::shard_health() const {
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardHealth health;
    health.shard = shard->index;
    health.events_pushed = shard->pushed.load(std::memory_order_relaxed);
    health.events_drained = shard->applied.load(std::memory_order_acquire);
    health.queue_depth = shard->queue ? shard->queue->approx_size() : 0;
    health.queue_depth_high_water =
        shard->queue_high_water.load(std::memory_order_relaxed);
    health.stalls = shard->stalls.load(std::memory_order_relaxed);
    health.stall_seconds =
        static_cast<double>(shard->stall_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    out.push_back(health);
  }
  return out;
}

telemetry::MetricsSnapshot ShardedSimulation::merged_metrics() const {
  std::vector<telemetry::MetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (shard->telemetry) snapshots.push_back(shard->telemetry->metrics().snapshot());
  }
  return telemetry::merge_snapshots(snapshots);
}

void ShardedSimulation::set_reference_mu(double mu) {
  mu_reference_ = mu;
  for (auto& shard : shards_) {
    if (shard->telemetry) {
      shard->telemetry->set_reference_mu(&shard->stream->engine(), mu);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedCheckpoint

void ShardedCheckpoint::write(std::ostream& out) const {
  if (shards.size() != options.num_shards) {
    throw ValidationError("ShardedCheckpoint::write: header announces " +
                          std::to_string(options.num_shards) + " shards but " +
                          std::to_string(shards.size()) + " frames are present");
  }
  write_sharded_header(out, algorithm, options);
  for (const StreamingCheckpoint& shard : shards) shard.write(out);
}

ShardedCheckpoint ShardedCheckpoint::read(std::istream& in) {
  ShardedCheckpoint checkpoint;
  auto [algorithm, options] = read_sharded_header(in);
  checkpoint.algorithm = std::move(algorithm);
  checkpoint.options = options;
  checkpoint.shards.reserve(checkpoint.options.num_shards);
  for (std::size_t s = 0; s < checkpoint.options.num_shards; ++s) {
    checkpoint.shards.push_back(StreamingCheckpoint::read(in));
  }
  return checkpoint;
}

// ---------------------------------------------------------------------------
// Batch path

ShardedResult run_sharded(const ItemList& items, const AlgorithmFactory& factory,
                          ShardedOptions options) {
  // The workload defines the bin capacity, exactly as simulate(items, ...).
  options.capacity = items.capacity();
  options = normalize(std::move(options));
  const std::size_t n = options.num_shards;

  // Partition the canonical schedule by routing hash. Each part is a
  // subsequence of a canonically ordered list, hence canonically ordered.
  std::vector<std::vector<ScheduledEvent>> parts(n);
  for (const ScheduledEvent& event : items.schedule()) {
    parts[shard_of(event.id, n)].push_back(event);
  }
  const double mu = items.mu();

  ShardedResult result;
  result.num_shards = n;
  result.shards.resize(n);
  std::vector<std::unique_ptr<telemetry::Telemetry>> owned_telemetry(n);

  parallel_for(0, n, [&](std::size_t s) {
    std::unique_ptr<PackingAlgorithm> algorithm = factory(s);
    if (!algorithm) {
      throw ValidationError("run_sharded: factory returned a null algorithm "
                            "for shard " + std::to_string(s));
    }
    telemetry::Telemetry* telem = nullptr;
    if (options.telemetry) {
      owned_telemetry[s] = std::make_unique<telemetry::Telemetry>();
      owned_telemetry[s]->tracer().set_shard(static_cast<std::uint32_t>(s));
      telem = owned_telemetry[s].get();
    }
    StreamingSimulation stream(*algorithm, to_streaming_options(options, telem));
    if (telem != nullptr) telem->set_reference_mu(&stream.engine(), mu);

    telemetry::LowerBoundAccumulator bounds(options.capacity);
    ShardOutcome& outcome = result.shards[s];
    stream.reserve(parts[s].size() / 2 + 1);
    for (const ScheduledEvent& event : parts[s]) {
      bounds.advance_to(event.t);
      if (event.is_arrival) {
        bounds.apply_arrival(event.size);
        stream.push_arrival(event.id, event.size, event.t);
        ++outcome.items;
      } else {
        // ScheduledEvent denormalizes the size into departures too, so the
        // accumulator needs no active-size map here.
        bounds.apply_departure(event.size);
        stream.push_departure(event.id, event.t);
      }
      if (stream.buffered_events() >= kBatchFlushEvents) (void)stream.flush();
    }
    outcome.result = stream.finish();
    outcome.usage = outcome.result.total_usage_time();
    fill_bounds(outcome, bounds);
    outcome.events = stream.events_applied();
  });

  std::vector<telemetry::Telemetry*> shard_telemetry;
  shard_telemetry.reserve(n);
  for (const auto& t : owned_telemetry) shard_telemetry.push_back(t.get());
  merge_outcomes(result, mu, shard_telemetry);
  return result;
}

}  // namespace mutdbp
