#include "core/checkpoint.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "core/error.h"

namespace mutdbp {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'M', 'U', 'T', 'D',
                                                'B', 'P', 'C', '1'};
constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 4 + 8;
constexpr std::size_t kChecksumBytes = 8;
static_assert(kHeaderBytes == kFrameHeaderBytes &&
              kChecksumBytes == kFrameChecksumBytes,
              "exposed frame layout constants drifted from the writer");

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void BinaryWriter::u8(std::uint8_t v) { bytes_.push_back(v); }
void BinaryWriter::u32(std::uint32_t v) { put_u32(bytes_, v); }
void BinaryWriter::u64(std::uint64_t v) { put_u64(bytes_, v); }
void BinaryWriter::f64(double v) { put_u64(bytes_, std::bit_cast<std::uint64_t>(v)); }
void BinaryWriter::boolean(bool v) { bytes_.push_back(v ? 1 : 0); }

void BinaryWriter::string(std::string_view v) {
  put_u64(bytes_, v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void BinaryWriter::raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void BinaryReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw ValidationError("checkpoint: payload truncated (need " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(size_ - pos_) + ")");
  }
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BinaryReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(data_ + pos_);
  pos_ += 8;
  return v;
}

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

bool BinaryReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw ValidationError("checkpoint: invalid boolean byte " + std::to_string(v));
  }
  return v == 1;
}

std::string BinaryReader::string() {
  const std::uint64_t len = u64();
  if (len > remaining()) {
    throw ValidationError("checkpoint: string length " + std::to_string(len) +
                          " exceeds remaining payload");
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

const std::uint8_t* BinaryReader::raw(std::size_t size) {
  need(size);
  const std::uint8_t* view = data_ + pos_;
  pos_ += size;
  return view;
}

std::size_t BinaryReader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = u64();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes) {
    throw ValidationError("checkpoint: sequence count " + std::to_string(n) +
                          " exceeds remaining payload");
  }
  return static_cast<std::size_t>(n);
}

void BinaryReader::expect_end() const {
  if (pos_ != size_) {
    throw ValidationError("checkpoint: " + std::to_string(size_ - pos_) +
                          " trailing payload bytes");
  }
}

std::vector<std::uint8_t> encode_frame(CheckpointKind kind,
                                       const BinaryWriter& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.bytes().size() + kChecksumBytes);
  frame.insert(frame.end(), kMagic.begin(), kMagic.end());
  put_u32(frame, kCheckpointVersion);
  put_u32(frame, static_cast<std::uint32_t>(kind));
  put_u64(frame, payload.bytes().size());
  frame.insert(frame.end(), payload.bytes().begin(), payload.bytes().end());
  put_u64(frame, fnv1a64(frame.data(), frame.size()));
  return frame;
}

FrameRef parse_frame_view(const std::uint8_t* data, std::size_t size,
                          CheckpointKind kind, std::uint64_t max_payload) {
  FrameRef out;
  // Reject a wrong magic on the available prefix: garbage on a socket fails
  // immediately instead of waiting for a full header that never comes.
  const std::size_t magic_check = std::min(size, kMagic.size());
  if (!std::equal(kMagic.begin(), kMagic.begin() + magic_check, data)) {
    throw ValidationError("frame: bad magic (not a mutdbp frame)");
  }
  if (size < kHeaderBytes) return out;
  const std::uint32_t version = get_u32(data + 8);
  if (version != kCheckpointVersion) {
    throw ValidationError("frame: unsupported format version " +
                          std::to_string(version) + " (this build reads version " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint32_t raw_kind = get_u32(data + 12);
  if (raw_kind != static_cast<std::uint32_t>(kind)) {
    throw ValidationError("frame: kind " + std::to_string(raw_kind) +
                          " does not match the expected kind " +
                          std::to_string(static_cast<std::uint32_t>(kind)));
  }
  const std::uint64_t payload_size = get_u64(data + 16);
  if (payload_size > max_payload) {
    throw ValidationError("frame: declared payload size " +
                          std::to_string(payload_size) + " exceeds the " +
                          std::to_string(max_payload) + " byte cap");
  }
  const std::uint64_t total =
      kHeaderBytes + payload_size + kChecksumBytes;
  if (size < total) return out;
  const std::uint64_t stored_checksum =
      get_u64(data + kHeaderBytes + static_cast<std::size_t>(payload_size));
  const std::uint64_t computed =
      fnv1a64(data, kHeaderBytes + static_cast<std::size_t>(payload_size));
  if (stored_checksum != computed) {
    throw ValidationError("frame: checksum mismatch (corrupted frame)");
  }
  out.consumed = static_cast<std::size_t>(total);
  out.payload = data + kHeaderBytes;
  out.payload_size = static_cast<std::size_t>(payload_size);
  return out;
}

FrameParse parse_frame(const std::uint8_t* data, std::size_t size,
                       CheckpointKind kind, std::uint64_t max_payload) {
  const FrameRef view = parse_frame_view(data, size, kind, max_payload);
  FrameParse out;
  out.consumed = view.consumed;
  if (view.consumed != 0) {
    out.payload.assign(view.payload, view.payload + view.payload_size);
  }
  return out;
}

void write_checkpoint_frame(std::ostream& out, CheckpointKind kind,
                            const BinaryWriter& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(kind, payload);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  if (!out) throw SimulationError("checkpoint: stream write failed");
}

std::vector<std::uint8_t> read_checkpoint_frame(std::istream& in,
                                                CheckpointKind kind) {
  std::array<std::uint8_t, kHeaderBytes> header{};
  in.read(reinterpret_cast<char*>(header.data()), kHeaderBytes);
  if (static_cast<std::size_t>(in.gcount()) != kHeaderBytes) {
    throw ValidationError("checkpoint: truncated header (" +
                          std::to_string(in.gcount()) + " of " +
                          std::to_string(kHeaderBytes) + " bytes)");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), header.begin())) {
    throw ValidationError("checkpoint: bad magic (not a mutdbp checkpoint)");
  }
  const std::uint32_t version = get_u32(header.data() + 8);
  if (version != kCheckpointVersion) {
    throw ValidationError("checkpoint: unsupported format version " +
                          std::to_string(version) + " (this build reads version " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint32_t raw_kind = get_u32(header.data() + 12);
  if (raw_kind != static_cast<std::uint32_t>(kind)) {
    throw ValidationError("checkpoint: frame kind " + std::to_string(raw_kind) +
                          " does not match the expected kind " +
                          std::to_string(static_cast<std::uint32_t>(kind)));
  }
  const std::uint64_t payload_size = get_u64(header.data() + 16);

  // Stream the payload + checksum in chunks, capping reads at what the
  // header claims: a corrupted size field can only produce "truncated", not
  // an attempt to allocate the corrupted value up front.
  std::vector<std::uint8_t> body;
  std::uint64_t want = payload_size + kChecksumBytes;
  body.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(want, 1 << 20)));
  std::array<char, 65536> chunk;
  while (want > 0 && in) {
    const std::size_t step =
        static_cast<std::size_t>(std::min<std::uint64_t>(want, chunk.size()));
    in.read(chunk.data(), static_cast<std::streamsize>(step));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    body.insert(body.end(), chunk.data(), chunk.data() + got);
    want -= got;
    if (got < step) break;
  }
  if (want > 0) {
    throw ValidationError("checkpoint: truncated (payload declares " +
                          std::to_string(payload_size) + " bytes, stream ended " +
                          std::to_string(want) + " bytes early)");
  }

  const std::uint64_t stored_checksum =
      get_u64(body.data() + static_cast<std::size_t>(payload_size));
  std::uint64_t computed = fnv1a64(header.data(), header.size());
  computed = fnv1a64(body.data(), static_cast<std::size_t>(payload_size), computed);
  if (stored_checksum != computed) {
    throw ValidationError("checkpoint: checksum mismatch (corrupted frame)");
  }
  body.resize(static_cast<std::size_t>(payload_size));
  return body;
}

}  // namespace mutdbp
