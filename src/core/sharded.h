// ShardedSimulation: the multi-core face of the allocator — N placement
// shards, each owning its own engine state, fed by bounded per-producer
// rings and folded into one run-level view by a deterministic merge.
//
// Routing. Every item id is hashed (splitmix64 finalizer) to one of N
// shards; an item's arrival and departure always land on the same shard, so
// each shard sees a self-contained sub-workload. Because the hash depends
// only on the id, the partition — and therefore every shard's event stream
// and every placement — is a pure function of (trace, N): re-running the
// same trace at the same shard count reproduces the run bit-for-bit, no
// matter how the threads interleave.
//
// Per-shard state. Each shard owns a fresh PackingAlgorithm instance (built
// by the caller's factory), a StreamingSimulation (so drain batching can
// never change results — flush ≡ batch at any granularity, the PR 4
// property — and so per-shard checkpoints fall out of the existing event
// log machinery), and a lock-free LowerBoundAccumulator fed in canonical
// order (so the merged OPT lower bounds are bit-identical to the batch
// opt:: sweep over each shard's sub-workload). With telemetry enabled each
// shard also gets a private Telemetry instance — counters, tracer ring
// (records tagged with the shard id), ratio monitor — so the placement hot
// path never shares a cache line, let alone a lock, across shards.
//
// Ingest. Producers push arrivals/departures through per-producer SPSC
// rings (util/mpsc_queue.h, bounded backpressure); each shard's worker
// thread ("mutdbp-shard-N") drains its rings in batches and applies them.
// The determinism contract: each shard must receive its events in
// non-decreasing time order. A single producer feeding events in global
// canonical order (a trace replay) satisfies this trivially; multiple
// producers must partition time or items among themselves.
//
// Merge. finish() folds the per-shard outcomes in shard-index order:
//  * PackingResults concatenate with shard-major global bin ids
//    (global = bin_offset[shard] + local index);
//  * usage and the three OPT lower bounds accumulate as left folds, so the
//    merged aggregates are bitwise equal to summing N independent batch
//    runs of the same partition in the same order;
//  * MetricsRegistry snapshots merge by name (telemetry/metrics.h), tracer
//    rings merge timestamp-ordered with shard tags, and the merged ratio
//    gauges are recomputed from the folded bounds.
// The merged lower bound certifies the *fleet* optimum — the best any
// allocator honoring this routing could do (Σ_s OPT(R_s)) — and the prop-1
// component is additionally a valid bound on the unrestricted global OPT
// (time–space demand is partition-invariant). The load-bearing invariant,
// pinned by tests/sharded_test.cpp: N = 1 is bit-identical to the
// single-threaded Simulation, and for any N the merged aggregates equal
// the shard-order fold of N standalone batch runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/item_list.h"
#include "core/packing_result.h"
#include "core/streaming.h"
#include "telemetry/metrics.h"
#include "telemetry/ratio_monitor.h"
#include "telemetry/trace.h"

namespace mutdbp {

namespace telemetry {
class Telemetry;
}  // namespace telemetry

/// splitmix64 finalizer — the fleet's routing hash. Deterministic and
/// well-distributed even for the sequential ids real traces use.
[[nodiscard]] constexpr std::uint64_t shard_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The shard an item/tenant id routes to. Pure function of (id, num_shards).
[[nodiscard]] constexpr std::size_t shard_of(ItemId id,
                                             std::size_t num_shards) noexcept {
  return num_shards <= 1 ? 0 : shard_mix64(id) % num_shards;
}

/// Builds one algorithm instance per shard. Called once per shard at
/// construction (shard index passed in); must be safe to call from multiple
/// threads concurrently (run_sharded constructs shards in parallel).
using AlgorithmFactory =
    std::function<std::unique_ptr<PackingAlgorithm>(std::size_t shard)>;

/// Factory over the algorithm registry: every shard gets
/// make_algorithm(name, seed, fit_epsilon). All shards share the seed, so
/// shard 0 of a 1-shard fleet is the same instance a plain Simulation
/// would run — the N = 1 equivalence needs exactly that.
[[nodiscard]] AlgorithmFactory registry_factory(
    std::string name, std::uint64_t seed = 1,
    double fit_epsilon = kDefaultFitEpsilon);

struct ShardedOptions {
  /// Number of placement shards; 0 means hardware_shard_count()
  /// (one per core, MUTDBP_SHARDS override — util/parallel.h).
  std::size_t num_shards = 0;
  double capacity = 1.0;
  double fit_epsilon = kDefaultFitEpsilon;
  bool record_timelines = true;
  /// Attach an InvariantAuditor to every shard engine (core/auditor.h).
  bool audit = false;
  /// Give each shard a private Telemetry instance (merged at finish()).
  /// Off by default: the placement hot path then takes no locks at all.
  bool telemetry = false;
  /// Seed the factory's algorithms were built with — checkpoint metadata,
  /// exactly as StreamingOptions::algorithm_seed.
  std::uint64_t algorithm_seed = 1;
  /// Producer slots on each shard's ingest queue (ShardedSimulation only).
  std::size_t producers = 1;
  /// Slots per producer ring per shard (rounded up to a power of two).
  std::size_t queue_capacity = 1 << 12;
};

/// Outcome of one shard: its packing (shard-local bin indices 0..m_s-1) and
/// the final OPT lower bounds over its sub-workload.
struct ShardOutcome {
  PackingResult result;
  double usage = 0.0;  ///< result.total_usage_time(), cached pre-merge
  double lb_prop1 = 0.0;
  double lb_prop2 = 0.0;
  double lb_load_ceiling = 0.0;
  double lower_bound = 0.0;  ///< max of the three (this shard's certified LB)
  std::size_t events = 0;    ///< events applied to this shard
  std::size_t items = 0;     ///< items routed to this shard
};

/// Shard-order left fold of the per-shard bounds: the fleet-level ratio
/// view. `lower_bound` is Σ_s max(prop1_s, prop2_s, ceiling_s) — a bound on
/// the fleet optimum under this routing; `lb_prop1` alone also bounds the
/// unrestricted global OPT.
struct MergedLowerBounds {
  double usage = 0.0;
  double lb_prop1 = 0.0;
  double lb_prop2 = 0.0;
  double lb_load_ceiling = 0.0;
  double lower_bound = 0.0;
  double ratio = 0.0;  ///< usage / lower_bound (0 while the LB is 0)
};

/// Live health view of one shard, for introspection (kWireStats,
/// docs/daemon.md). Reads are exact when the fleet is quiescent and
/// racy-but-monotonic estimates otherwise — never used for control flow.
struct ShardHealth {
  std::size_t shard = 0;
  std::uint64_t events_pushed = 0;   ///< accepted by push/try_push
  std::uint64_t events_drained = 0;  ///< applied by the worker
  std::uint64_t queue_depth = 0;     ///< events currently in the MPSC queue
  /// Largest drain batch the worker has consumed (≈ peak queue depth).
  std::uint64_t queue_depth_high_water = 0;
  /// Producer-side backpressure: how often and for how long push_arrival /
  /// push_departure blocked on a full ring.
  std::uint64_t stalls = 0;
  double stall_seconds = 0.0;
};

/// The merged run-level view a sharded run produces.
struct ShardedResult {
  std::size_t num_shards = 0;
  std::vector<ShardOutcome> shards;  ///< indexed by shard
  /// Global bin id of shard s's local bin 0 (prefix sums of per-shard bin
  /// counts; global id = bin_offset[s] + local).
  std::vector<std::size_t> bin_offset;
  /// All shards' bins under global ids, shard-major. Aggregate objectives on
  /// this object may differ from the folded `bounds` in the last ulp
  /// (different FP summation grouping); the folds are the committed
  /// aggregates.
  PackingResult merged;
  MergedLowerBounds bounds;
  /// Merged metrics (empty unless ShardedOptions::telemetry): counters and
  /// histograms summed across shards, ratio gauges recomputed from `bounds`.
  telemetry::MetricsSnapshot metrics;
  /// Merged decision trace (empty unless telemetry): all shards' retained
  /// events, timestamp-ordered, ties in shard order, shard-tagged.
  std::vector<telemetry::TraceEvent> trace;

  /// Global bin id of the item's placement (looked up in `merged`).
  [[nodiscard]] BinIndex bin_of(ItemId id) const { return merged.bin_of(id); }
};

/// Parsed sharded checkpoint: one MUTDBPC1 header frame followed by every
/// shard's StreamingSimulation frame (docs/streaming.md).
struct ShardedCheckpoint {
  std::string algorithm;
  ShardedOptions options{};  ///< num_shards/capacity/epsilon/flags/seed
  std::vector<StreamingCheckpoint> shards;  ///< one per shard, shard order

  [[nodiscard]] static ShardedCheckpoint read(std::istream& in);
  void write(std::ostream& out) const;
};

class ShardedSimulation {
 public:
  /// Spawns one worker thread per shard ("mutdbp-shard-N"), each binding a
  /// factory-built algorithm to its own StreamingSimulation.
  ShardedSimulation(const AlgorithmFactory& factory, ShardedOptions options = {});
  ~ShardedSimulation();  ///< stops and joins the workers (discarding queues)

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  /// Routes the event to its shard's queue (bounded backpressure: blocks
  /// while the ring is full). `producer` is the caller's slot on every
  /// queue; each slot must be used by at most one thread at a time, and
  /// each shard must receive its events in non-decreasing time order (a
  /// single producer feeding canonical order satisfies this).
  void push_arrival(ItemId id, double size, Time t, std::size_t producer = 0);
  void push_departure(ItemId id, Time t, std::size_t producer = 0);

  /// Non-blocking admission variants: false when the target shard's ring is
  /// full — the event is NOT enqueued and the caller sheds it explicitly
  /// (the daemon's admission-control path, docs/daemon.md) instead of
  /// riding the blocking backpressure of push_arrival/push_departure.
  [[nodiscard]] bool try_push_arrival(ItemId id, double size, Time t,
                                      std::size_t producer = 0);
  [[nodiscard]] bool try_push_departure(ItemId id, Time t,
                                        std::size_t producer = 0);

  /// Blocks until every pushed event has been applied (no pushes may be
  /// concurrent with the drain). Rethrows the first shard failure.
  void drain();

  /// Drains, serializes one ShardedCheckpoint (header frame + one frame per
  /// shard) to `out`. The run continues unaffected.
  void snapshot(std::ostream& out);

  /// Rebuilds a fleet from a parsed checkpoint: the factory must produce
  /// algorithm instances equivalent to the originals (same name — validated
  /// — and constructor parameters; registry_factory(checkpoint.algorithm,
  /// checkpoint.options.algorithm_seed, checkpoint.options.fit_epsilon)
  /// is the canonical way). Each shard replays its event log through the
  /// public API, reconstructing engines, accumulators, and (when `options.
  /// telemetry` is set) every counter of the uninterrupted run.
  [[nodiscard]] static ShardedSimulation restore(const ShardedCheckpoint& checkpoint,
                                                 const AlgorithmFactory& factory);

  /// Heap-allocating restore() for owners that hold the fleet behind a
  /// pointer (the daemon swaps fleets on --restore). Same contract.
  [[nodiscard]] static std::unique_ptr<ShardedSimulation> restore_unique(
      const ShardedCheckpoint& checkpoint, const AlgorithmFactory& factory);

  /// Drains, stops the workers, finishes every shard engine (all items must
  /// have departed) and folds the merged view. Rethrows the first shard
  /// failure. The instance is spent afterwards.
  [[nodiscard]] ShardedResult finish();

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const ShardedOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::string_view algorithm_name() const noexcept {
    return algorithm_name_;
  }
  /// Events applied across all shards (quiescent reads are exact; reads
  /// concurrent with ingest are a lower bound).
  [[nodiscard]] std::uint64_t events_applied() const noexcept;
  /// Open bins across all shards (same caveat as events_applied()).
  [[nodiscard]] std::size_t open_bin_count() const noexcept;
  /// Bin of a currently active item on its shard's engine (shard-local
  /// index), or nullopt when the item is not active. Quiescent-only: call
  /// after drain() with no concurrent pushes (the daemon's post-drain ack
  /// resolution), exactly like snapshot().
  [[nodiscard]] std::optional<BinIndex> active_bin_of(ItemId id) const;
  /// Shard s's private telemetry, or null when telemetry is off.
  [[nodiscard]] telemetry::Telemetry* shard_telemetry(std::size_t shard) const;
  /// Per-shard health gauges, shard order (see ShardHealth for the read
  /// consistency contract). Works with telemetry on or off.
  [[nodiscard]] std::vector<ShardHealth> shard_health() const;
  /// Snapshots of every shard's private metrics (telemetry runs only),
  /// merged by name — the live fleet-level counter view. Quiescent-only,
  /// like active_bin_of().
  [[nodiscard]] telemetry::MetricsSnapshot merged_metrics() const;
  /// Forwards µ of the driving workload to every shard's ratio monitor.
  void set_reference_mu(double mu);

 private:
  struct Shard;

  /// Restore core: restore() returns this prvalue (no move needed).
  ShardedSimulation(const ShardedCheckpoint& checkpoint,
                    const AlgorithmFactory& factory);
  void build_shards(const AlgorithmFactory& factory,
                    const ShardedCheckpoint* checkpoint);
  void start_workers();
  void worker_loop(std::size_t shard_index);
  void apply_batch(Shard& shard);
  void rethrow_failure();
  void push_event(const StreamEvent& event, std::size_t producer);
  [[nodiscard]] bool try_push_event(const StreamEvent& event,
                                    std::size_t producer);

  ShardedOptions options_;
  std::string algorithm_name_;
  double mu_reference_ = 0.0;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool finished_ = false;
};

/// Batch convenience: partitions the items' canonical schedule by shard and
/// runs every shard's sub-stream to completion on the persistent thread
/// pool (util/parallel.h), then applies the same deterministic merge as
/// ShardedSimulation::finish(). Results are bit-identical to the pipelined
/// path at the same shard count (tests/sharded_test.cpp pins this).
[[nodiscard]] ShardedResult run_sharded(const ItemList& items,
                                        const AlgorithmFactory& factory,
                                        ShardedOptions options = {});

}  // namespace mutdbp
